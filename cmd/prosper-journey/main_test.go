package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prosper/internal/journey"
)

// sampleJournal builds a two-journey journal on disk and returns its path.
func sampleJournal(t *testing.T) string {
	t.Helper()
	r := journey.NewRecorder("unit", 1, 1)
	jid := r.Start(0, false, 0x1000, 8, 1)
	r.Span(jid, journey.StageL1, journey.CauseMiss, 0, 60)
	r.Span(jid, journey.StageDevService, journey.CauseDRAM, 20, 50)
	r.SegDone(jid, 60)
	jid = r.Start(100, true, 0x2000, 8, 1)
	r.Span(jid, journey.StageL1, journey.CauseHit, 100, 103)
	r.SegDone(jid, 103)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-top", "2", sampleJournal(t)}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"journey journal v1", "== unit", "dev_service", "top 2 slowest", "anatomy of the slowest access"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunStageTableOnly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-stage-table", sampleJournal(t)}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "top ") || strings.Contains(stdout.String(), "anatomy") {
		t.Fatalf("-stage-table leaked the top-K section:\n%s", stdout.String())
	}
}

func TestRunJSONFromStdin(t *testing.T) {
	data, err := os.ReadFile(sampleJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json"}, bytes.NewReader(data), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{`"journey_journal": 1`, `"run": "unit"`, `"dominant": "l1"`} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("JSON missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunExitCodes pins the failure contract: usage errors, unreadable
// files, malformed journals, and invariant violations all exit 2.
func TestRunExitCodes(t *testing.T) {
	badVec := "{\"journey_journal\":1}\n" +
		`{"run":"x","rate":1,"seed":1,"accesses":1,"sampled":1,"finished":1}` + "\n" +
		`{"jid":1,"seq":1,"kind":"load","vaddr":1,"size":8,"start":0,"end":10,"latency":10,"stages":[],"vec":{"l1":3}}` + "\n"
	cases := []struct {
		name  string
		args  []string
		stdin string
	}{
		{"two args", []string{"a.jsonl", "b.jsonl"}, ""},
		{"bad flag", []string{"-nope"}, ""},
		{"missing file", []string{filepath.Join(t.TempDir(), "absent.jsonl")}, ""},
		{"malformed", nil, "garbage\n"},
		{"invariant violation", nil, badVec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, strings.NewReader(tc.stdin), &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
		})
	}
}

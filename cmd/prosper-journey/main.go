// Command prosper-journey explores a per-access journey journal written
// by prosper-experiments -journey-out (or any runner harness wired to a
// journey.Journal): sampled end-to-end access traces through core issue,
// cache lookup, MSHR wait, page walk, device queueing, bank service, and
// persistence-domain drain (DESIGN.md §15).
//
// Usage:
//
//	prosper-journey [-json] [-top k] [-stage-table] [journal.jsonl]
//
// With no file argument the journal is read from stdin. The default
// output is, per run: the sampling counters, the aggregate stage-latency
// table, the top-K slowest accesses with their dominant stage, and a
// stage-latency waterfall of the single slowest access ("anatomy of a
// slow access", EXPERIMENTS.md). -stage-table suppresses everything but
// the stage tables; -json emits the full analysis as one JSON document.
//
// Every journal is re-validated on load: each journey's per-stage
// attribution vector must sum exactly to its measured latency, and every
// stage span must lie inside the journey's [start, end] window.
//
// Output is deterministic for identical input. Exit status: 0 success,
// 2 usage error, malformed journal, or invariant violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"prosper/internal/journey"
)

// run is the testable entry point.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prosper-journey", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the analysis as a JSON document")
	topK := fs.Int("top", 10, "number of slowest accesses to list per run")
	stageTable := fs.Bool("stage-table", false, "print only the per-run aggregate stage tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var in io.Reader
	switch fs.NArg() {
	case 0:
		in = stdin
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "prosper-journey:", err)
			return 2
		}
		defer f.Close()
		in = f
	default:
		fmt.Fprintln(stderr, "usage: prosper-journey [-json] [-top k] [-stage-table] [journal.jsonl]")
		return 2
	}
	p, err := journey.Parse(in)
	if err != nil {
		fmt.Fprintln(stderr, "prosper-journey:", err)
		return 2
	}
	if err := p.CheckInvariants(); err != nil {
		fmt.Fprintln(stderr, "prosper-journey:", err)
		return 2
	}
	a := journey.Analyze(p, *topK)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			fmt.Fprintln(stderr, "prosper-journey:", err)
			return 2
		}
		return 0
	}
	if err := a.WriteText(stdout, *stageTable); err != nil {
		fmt.Fprintln(stderr, "prosper-journey:", err)
		return 2
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

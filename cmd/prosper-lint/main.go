// Command prosper-lint runs the project's determinism and invariant
// analyzers (internal/analysis) over the module and exits non-zero on
// findings. It is a CI gate: the simulator's byte-identical-output
// guarantee is enforced here, not by review.
//
// Usage:
//
//	prosper-lint [-json] [-list] [-graph-out file] [-baseline old.json] [pattern ...]
//
// Patterns are module-relative package patterns ("./...", the default,
// or directories like "internal/kernel" or "internal/..."). Output is
// one "file:line:col: [pass] message" per finding, or a deterministic
// JSON report with -json (CI archives it as an artifact).
//
// -graph-out writes the interprocedural debug artifact: the
// deterministic call graph (nodes, edges, hot-path roots, reachability)
// plus the component→state ownership write map.
//
// -baseline diffs the run against a previously archived -json report:
// only findings absent from the baseline (matched by pass/file/message,
// line-insensitive) fail the build, enabling incremental adoption of
// noisy passes.
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check error.
//
// Suppress a finding with a justified directive on the offending line
// or the line directly above:
//
//	//prosperlint:ignore <pass>[,<pass>...] <reason>
//
// Declare a hot-path root for the hotalloc pass on a function
// declaration the same way:
//
//	//prosperlint:hotpath <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prosper/internal/analysis"
)

// run is the testable entry point; dir anchors module discovery.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prosper-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as deterministic JSON")
	list := fs.Bool("list", false, "list the available passes and exit")
	graphOut := fs.String("graph-out", "", "write the call-graph + ownership-map debug dump to `file`")
	baseline := fs.String("baseline", "", "diff against a previous -json report `file`; only new findings fail")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, p := range analysis.AllPasses() {
			fmt.Fprintf(stdout, "%-12s %s\n", p.Name(), p.Doc())
		}
		fmt.Fprintf(stdout, "%-12s %s\n", analysis.DirectivePass,
			"(reserved) malformed //prosperlint:ignore directives")
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	runner, err := analysis.NewRunner(dir)
	if err != nil {
		fmt.Fprintln(stderr, "prosper-lint:", err)
		return 2
	}
	rep, err := runner.Run(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "prosper-lint:", err)
		return 2
	}

	if *graphOut != "" {
		if runner.Program == nil {
			fmt.Fprintln(stderr, "prosper-lint: no interprocedural pass ran; nothing to dump")
			return 2
		}
		f, err := os.Create(*graphOut)
		if err != nil {
			fmt.Fprintln(stderr, "prosper-lint:", err)
			return 2
		}
		werr := runner.Program.WriteGraph(f, runner.Loader.Root)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "prosper-lint:", werr)
			return 2
		}
	}

	if *jsonOut {
		if err := rep.WriteJSON(stdout, runner.Loader.Root); err != nil {
			fmt.Fprintln(stderr, "prosper-lint:", err)
			return 2
		}
	} else {
		rep.WriteText(stdout, runner.Loader.Root)
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "prosper-lint:", err)
			return 2
		}
		base, err := analysis.ReadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "prosper-lint:", err)
			return 2
		}
		fresh := analysis.DiffBaseline(rep.Relativized(runner.Loader.Root), base)
		fmt.Fprintf(stderr, "prosper-lint: %d finding(s) not in baseline %s\n", len(fresh), *baseline)
		for _, f := range fresh {
			fmt.Fprintf(stderr, "  new: %s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Pass, f.Message)
		}
		if len(fresh) > 0 {
			return 1
		}
		return 0
	}

	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

func main() {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "prosper-lint:", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], dir, os.Stdout, os.Stderr))
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPasses(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, ".", &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"maprange", "wallclock", "concurrency", "statskeys", "directive"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing %q:\n%s", name, out.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"internal/stats"}, ".", &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d on a clean package\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Errorf("summary missing from output: %s", out.String())
	}
}

func TestFindingsExitOne(t *testing.T) {
	// The wallclock fixture analyzed under its on-disk import path
	// still violates the wallclock pass (which scans every package
	// outside the host-side allowlist), so pointing the CLI straight
	// at the testdata directory must fail the gate.
	var out, errb bytes.Buffer
	code := run([]string{"internal/analysis/testdata/src/wallclock"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[wallclock]") {
		t.Errorf("findings missing from text output: %s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "internal/analysis/testdata/src/wallclock"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var rep struct {
		Module   string
		Packages int
		Findings []struct {
			Pass, File, Message string
			Line, Col           int
		}
		Suppressed int
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Module != "prosper" || len(rep.Findings) == 0 {
		t.Errorf("report = %+v", rep)
	}
	for _, f := range rep.Findings {
		if strings.Contains(f.File, "\\") {
			t.Errorf("file path %q is not slash-separated", f.File)
		}
		if f.Line == 0 || f.Pass == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestGraphOut(t *testing.T) {
	dir := t.TempDir()
	graph := filepath.Join(dir, "graph.txt")
	var out, errb bytes.Buffer
	code := run([]string{"-graph-out", graph, "internal/stats"}, ".", &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	data, err := os.ReadFile(graph)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "# prosper-lint interprocedural graph v1\n") {
		t.Errorf("graph dump missing version header:\n%.200s", text)
	}
	for _, section := range []string{"[roots]", "[nodes]", "[ownership]"} {
		if !strings.Contains(text, section) {
			t.Errorf("graph dump missing %s section", section)
		}
	}
	if !strings.Contains(text, "node (*internal/stats.Counters).Inc") {
		t.Errorf("graph dump missing a known node:\n%.400s", text)
	}
}

func TestGraphOutUnwritablePathExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-graph-out", filepath.Join(t.TempDir(), "no", "such", "dir", "g.txt"),
		"internal/stats"}, ".", &out, &errb)
	if code != 2 {
		t.Errorf("exit = %d, want 2 when the graph file cannot be created", code)
	}
}

func TestBaselineAbsorbsKnownFindings(t *testing.T) {
	target := "internal/analysis/testdata/src/wallclock"

	// First run archives the findings as the baseline.
	var base, errb bytes.Buffer
	if code := run([]string{"-json", target}, ".", &base, &errb); code != 1 {
		t.Fatalf("baseline run: exit = %d, stderr: %s", code, errb.String())
	}
	dir := t.TempDir()
	baseFile := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseFile, base.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second run against the baseline: same findings, so exit 0.
	var out bytes.Buffer
	errb.Reset()
	code := run([]string{"-baseline", baseFile, target}, ".", &out, &errb)
	if code != 0 {
		t.Fatalf("diff run: exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "0 finding(s) not in baseline") {
		t.Errorf("diff summary missing: %s", errb.String())
	}
}

func TestBaselineFreshFindingsExitOne(t *testing.T) {
	// An empty report as baseline: every current finding is fresh.
	dir := t.TempDir()
	baseFile := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(baseFile, []byte(`{"module":"prosper","findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", baseFile, "internal/analysis/testdata/src/wallclock"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "new: ") {
		t.Errorf("fresh findings not listed on stderr: %s", errb.String())
	}
}

func TestBaselineMissingFileExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", "no-such-baseline.json", "internal/stats"}, ".", &out, &errb)
	if code != 2 {
		t.Errorf("exit = %d, want 2 when the baseline file is missing", code)
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, ".", &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit = %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"no/such/dir"}, ".", &out, &errb); code != 2 {
		t.Errorf("missing dir: exit = %d, want 2; stdout: %s", code, out.String())
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListPasses(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, ".", &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"maprange", "wallclock", "concurrency", "statskeys", "directive"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing %q:\n%s", name, out.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"internal/stats"}, ".", &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d on a clean package\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Errorf("summary missing from output: %s", out.String())
	}
}

func TestFindingsExitOne(t *testing.T) {
	// The wallclock fixture analyzed under its on-disk import path
	// still violates the wallclock pass (which scans every package
	// outside the host-side allowlist), so pointing the CLI straight
	// at the testdata directory must fail the gate.
	var out, errb bytes.Buffer
	code := run([]string{"internal/analysis/testdata/src/wallclock"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[wallclock]") {
		t.Errorf("findings missing from text output: %s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "internal/analysis/testdata/src/wallclock"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var rep struct {
		Module   string
		Packages int
		Findings []struct {
			Pass, File, Message string
			Line, Col           int
		}
		Suppressed int
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Module != "prosper" || len(rep.Findings) == 0 {
		t.Errorf("report = %+v", rep)
	}
	for _, f := range rep.Findings {
		if strings.Contains(f.File, "\\") {
			t.Errorf("file path %q is not slash-separated", f.File)
		}
		if f.Line == 0 || f.Pass == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestBadUsageExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, ".", &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit = %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"no/such/dir"}, ".", &out, &errb); code != 2 {
		t.Errorf("missing dir: exit = %d, want 2; stdout: %s", code, out.String())
	}
}

// Command prosper-run executes one workload under a chosen combination
// of persistence mechanisms on the simulated machine and reports the run
// statistics — the general-purpose driver for exploring configurations
// outside the fixed experiment harnesses.
//
// Usage:
//
//	prosper-run -workload gapbs_pr -stack prosper -heap ssp \
//	            -interval 200 -duration 2000 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

func mechFactory(name string, consolidationUS int) (persist.Factory, bool) {
	cons := sim.Time(consolidationUS) * sim.Microsecond
	switch name {
	case "", "none":
		return nil, true
	case "prosper":
		return persist.NewProsper(persist.ProsperConfig{}), true
	case "prosper-adaptive":
		return persist.NewAdaptiveProsper(persist.AdaptiveConfig{}), true
	case "dirtybit":
		return persist.NewDirtybit(persist.DirtybitConfig{}), true
	case "writeprotect":
		return persist.NewWriteProtect(persist.DirtybitConfig{}), true
	case "romulus":
		return persist.NewRomulus(), true
	case "ssp":
		return persist.NewSSP(persist.SSPConfig{ConsolidationInterval: cons}), true
	default:
		return nil, false
	}
}

func workloadByName(name string, arg int) workload.Program {
	switch name {
	case "gapbs_pr":
		return workload.NewApp(workload.GapbsPR())
	case "g500_sssp":
		return workload.NewApp(workload.G500SSSP())
	case "ycsb_mem":
		return workload.NewApp(workload.YcsbMem())
	case "mcf":
		return workload.NewApp(workload.SpecMCF())
	case "omnetpp":
		return workload.NewApp(workload.SpecOmnetpp())
	case "perlbench":
		return workload.NewApp(workload.SpecPerlbench())
	case "leela":
		return workload.NewApp(workload.SpecLeela())
	case "random":
		return workload.NewRandom(workload.MicroParams{})
	case "stream":
		return workload.NewStream(workload.MicroParams{})
	case "sparse":
		return workload.NewSparse(workload.MicroParams{})
	case "quicksort":
		return workload.NewQuicksort(arg)
	case "recursive":
		return workload.NewRecursive(arg)
	case "normal":
		return workload.NewNormal()
	case "poisson":
		return workload.NewPoisson()
	case "counter":
		return workload.NewCounter(arg)
	default:
		return nil
	}
}

func main() {
	wl := flag.String("workload", "gapbs_pr", "workload name")
	wlArg := flag.Int("arg", 4096, "workload parameter (elements/depth/iterations)")
	stack := flag.String("stack", "prosper", "stack mechanism: none|prosper|prosper-adaptive|dirtybit|writeprotect|romulus|ssp")
	heap := flag.String("heap", "none", "heap mechanism (same choices)")
	cons := flag.Int("consolidation", 10, "SSP consolidation interval (µs)")
	intervalUS := flag.Int("interval", 200, "checkpoint interval (simulated µs; 0 disables)")
	durationUS := flag.Int("duration", 2000, "run duration (simulated µs)")
	threads := flag.Int("threads", 1, "threads (one workload instance each)")
	cores := flag.Int("cores", 1, "simulated cores")
	seed := flag.Uint64("seed", 1, "workload seed")
	parallel := flag.Bool("parallel-ckpt", false, "checkpoint thread stacks concurrently")
	dumpStats := flag.Bool("stats", false, "dump all simulator counters at the end")
	flag.Parse()

	stackF, ok := mechFactory(*stack, *cons)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown stack mechanism %q\n", *stack)
		os.Exit(2)
	}
	heapF, ok := mechFactory(*heap, *cons)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown heap mechanism %q\n", *heap)
		os.Exit(2)
	}

	k := kernel.New(kernel.Config{
		Machine:                 machine.Config{Cores: *cores},
		Quantum:                 100 * sim.Microsecond,
		ParallelStackCheckpoint: *parallel,
	})
	progs := make([]workload.Program, *threads)
	for i := range progs {
		progs[i] = workloadByName(*wl, *wlArg)
		if progs[i] == nil {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
			os.Exit(2)
		}
	}
	p := k.Spawn(kernel.ProcessConfig{
		Name:               *wl,
		StackMech:          stackF,
		HeapMech:           heapF,
		CheckpointInterval: sim.Time(*intervalUS) * sim.Microsecond,
		PremapHeap:         true,
		Seed:               *seed,
	}, progs...)

	k.RunFor(sim.Time(*durationUS) * sim.Microsecond)
	p.Shutdown()

	fmt.Printf("workload           %s x%d (stack=%s heap=%s)\n", *wl, *threads, *stack, *heap)
	fmt.Printf("simulated          %d µs (%d cycles, %d events)\n",
		*durationUS, k.Eng.Now(), k.Eng.Fired())
	var ops, cycles uint64
	for _, t := range p.Threads {
		ops += t.UserOps
		cycles += t.UserCycles
	}
	fmt.Printf("user ops           %d (IPC %.4f)\n", ops, float64(ops)/float64(cycles+1))
	fmt.Printf("checkpoints        %d\n", p.CheckpointCount)
	fmt.Printf("persisted bytes    %d (stack %d)\n", p.CheckpointBytes, p.StackCkptBytes)
	if p.CheckpointCount > 0 {
		fmt.Printf("mean ckpt cycles   %d\n", uint64(p.CheckpointTime)/p.CheckpointCount)
	}
	if rep := kernel.Fsck(k.Mach.Storage); !rep.OK() {
		fmt.Println("FSCK PROBLEMS:", rep.Problems)
		os.Exit(1)
	}
	fmt.Println("fsck               clean")

	if *dumpStats {
		fmt.Println()
		k.DumpStats(os.Stdout)
	}
}

// Command prosper-crashdemo demonstrates end-to-end process persistence:
// it boots the simulated machine, runs a checkpointable workload with
// periodic Prosper-backed checkpoints, kills the machine at a random
// point (power failure: DRAM and caches lost, NVM survives), reboots a
// fresh kernel on the surviving NVM, recovers the process, and verifies
// that it resumes from its last committed checkpoint and runs to
// completion — the same correctness test the paper performs by killing
// the gem5 process.
package main

import (
	"flag"
	"fmt"
	"os"

	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

func main() {
	iterations := flag.Int("iterations", 200_000, "counter iterations the workload must complete")
	intervalUS := flag.Int("interval", 200, "checkpoint interval in simulated microseconds")
	crashAfterUS := flag.Int("crash-after", 1500, "simulated microseconds before the power failure")
	dumpStats := flag.Bool("stats", false, "dump all simulator counters (gem5 stats.txt style) at the end")
	flag.Parse()

	cfg := kernel.ProcessConfig{
		Name:               "demo-service",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: sim.Time(*intervalUS) * sim.Microsecond,
	}

	fmt.Println("=== boot 1: running with periodic Prosper checkpoints ===")
	k1 := kernel.New(kernel.Config{Machine: machine.Config{Cores: 1}})
	prog1 := workload.NewCounter(*iterations)
	p1 := k1.Spawn(cfg, prog1)
	k1.RunFor(sim.Time(*crashAfterUS) * sim.Microsecond)

	fmt.Printf("progress at crash: %d/%d iterations, %d checkpoints committed (%d bytes)\n",
		prog1.Progress(), *iterations, p1.CheckpointCount, p1.CheckpointBytes)
	if p1.CheckpointCount == 0 {
		fmt.Fprintln(os.Stderr, "no checkpoint committed before the crash; increase -crash-after")
		os.Exit(1)
	}

	fmt.Println("\n=== POWER FAILURE: dropping DRAM and caches ===")
	k1.Mach.Crash()

	fmt.Println("\n=== boot 2: recovering from NVM ===")
	k2 := kernel.New(kernel.Config{Machine: machine.Config{Cores: 1, Storage: k1.Mach.Storage}})
	prog2 := workload.NewCounter(*iterations)
	var recovered *kernel.Process
	if err := k2.RecoverProcess(cfg, []workload.Program{prog2}, func(p *kernel.Process) { recovered = p }); err != nil {
		fmt.Fprintln(os.Stderr, "recovery failed:", err)
		os.Exit(1)
	}
	k2.Eng.RunWhile(func() bool { return recovered == nil })
	fmt.Printf("recovered execution position: iteration %d (crash was at %d)\n",
		prog2.Progress(), prog1.Progress())
	if prog2.Progress() == 0 || prog2.Progress() > prog1.Progress() {
		fmt.Fprintln(os.Stderr, "FAIL: recovery position implausible")
		os.Exit(1)
	}

	if !k2.RunUntilDone(10 * sim.Second) {
		fmt.Fprintln(os.Stderr, "FAIL: recovered process never completed")
		os.Exit(1)
	}
	fmt.Printf("\nrecovered process ran to completion: %d/%d iterations\n", prog2.Progress(), *iterations)
	fmt.Println("OK: process persisted across the crash and resumed from its last checkpoint")

	if *dumpStats {
		fmt.Println("\n=== simulator counters (post-recovery kernel) ===")
		k2.DumpStats(os.Stdout)
	}
}

// Command prosper-fsck demonstrates the NVM checkpoint-area integrity
// checker: it builds a checkpointed system, optionally injects corruption
// or a crash, and prints the validator's report. In a real deployment the
// equivalent check runs at boot before any recovery is trusted.
package main

import (
	"flag"
	"fmt"
	"os"

	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

func main() {
	corrupt := flag.Bool("corrupt", false, "inject metadata corruption before checking")
	crash := flag.Bool("crash", true, "power-fail the machine before checking")
	flag.Parse()

	k := kernel.New(kernel.Config{Machine: machine.Config{Cores: 1}})
	p := k.Spawn(kernel.ProcessConfig{
		Name:               "fsck-demo",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 200 * sim.Microsecond,
	}, workload.NewCounter(10_000_000))
	k.RunFor(900 * sim.Microsecond)
	fmt.Printf("ran %d checkpoints (%d bytes persisted)\n", p.CheckpointCount, p.CheckpointBytes)
	p.Shutdown()

	if *crash {
		k.Mach.Crash()
		fmt.Println("machine crashed (DRAM dropped)")
	}
	if *corrupt {
		k.Mach.Storage.WriteU64(p.Threads[0].StackSeg.MetaBase, 9)
		fmt.Println("injected: invalid commit phase in thread 0's stack metadata")
	}

	rep := kernel.Fsck(k.Mach.Storage)
	fmt.Printf("\nfsck: %d processes, %d segments\n", rep.Processes, rep.Segments)
	if rep.OK() {
		fmt.Println("NVM checkpoint areas are consistent")
		return
	}
	fmt.Println("PROBLEMS FOUND:")
	for _, pr := range rep.Problems {
		fmt.Println("  -", pr)
	}
	os.Exit(1)
}

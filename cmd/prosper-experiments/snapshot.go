package main

import (
	"errors"
	"fmt"
	"os"

	"prosper/internal/persist"
	"prosper/internal/runner"
	"prosper/internal/sim"
	"prosper/internal/snapshot"
	"prosper/internal/workload"
)

// snapshotSpec is the CLI's canonical snapshot workload: a small
// deterministic random-store microbenchmark checkpointing at the given
// interval. -snapshot-out and -resume-from must be given the same flags
// — the snapshot's embedded fingerprint refuses anything else.
func snapshotSpec(mech string, seed uint64, interval sim.Time, checkpoints int) (runner.Spec, error) {
	sp := runner.Spec{
		Name: "cli-snap-" + mech,
		Prog: func() workload.Program {
			return workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 128})
		},
		Checkpoint:  true,
		Interval:    interval,
		Checkpoints: checkpoints,
		Seed:        seed,
	}
	switch mech {
	case "prosper":
		sp.StackMech = persist.NewProsper(persist.ProsperConfig{})
	case "dirtybit":
		sp.StackMech = persist.NewDirtybit(persist.DirtybitConfig{})
	case "ssp":
		sp.StackMech = persist.NewSSP(persist.SSPConfig{})
	case "romulus":
		sp.StackMech = persist.NewRomulus()
	case "writeprotect":
		sp.StackMech = persist.NewWriteProtect(persist.DirtybitConfig{})
	default:
		return runner.Spec{}, fmt.Errorf("unknown snapshot mechanism %q (want prosper, dirtybit, ssp, romulus, or writeprotect)", mech)
	}
	return sp, nil
}

// snapshotExit maps snapshot-path errors to exit codes: the typed
// snapshot contract errors (bad magic, corrupt sections, wrong spec,
// unsupported configuration, ...) exit 2 like other usage errors; plain
// I/O failures exit 1.
func snapshotExit(context string, err error) int {
	fmt.Fprintf(os.Stderr, "prosper-experiments: %s: %v\n", context, err)
	for _, typed := range []error{
		snapshot.ErrBadMagic, snapshot.ErrVersion, snapshot.ErrTruncated,
		snapshot.ErrCorrupt, snapshot.ErrNotQuiescent,
		runner.ErrSnapshotUnsupported, runner.ErrSpecMismatch, runner.ErrNoCommit,
	} {
		if errors.Is(err, typed) {
			return 2
		}
	}
	return 1
}

// printRunStats renders the deterministic headline numbers of a run so
// a saved-then-resumed pair can be diffed by eye (or by cmp: the full
// RunStats equality is pinned by the resume gate tests).
func printRunStats(res runner.RunStats) {
	fmt.Printf("%s: user_ops=%d user_cycles=%d checkpoints=%d checkpoint_bytes=%d events_fired=%d sim_end=%d\n",
		res.Name, res.UserOps, res.UserCycles, res.Checkpoints, res.CheckpointBytes, res.EventsFired, res.SimEnd)
}

// runSnapshotSave runs the snapshot spec, saving a machine snapshot to
// path at the snapAt-th checkpoint commit, and prints the run's stats.
func runSnapshotSave(path, mech string, seed uint64, interval sim.Time, checkpoints, snapAt int) int {
	sp, err := snapshotSpec(mech, seed, interval, checkpoints)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prosper-experiments:", err)
		return 2
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prosper-experiments:", err)
		return 1
	}
	res, err := sp.RunSnapshot(f, snapAt)
	if err != nil {
		f.Close()
		return snapshotExit("snapshot", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "prosper-experiments:", err)
		return 1
	}
	printRunStats(res)
	fmt.Fprintf(os.Stderr, "[snapshot of commit %d written to %s]\n", snapAt, path)
	return 0
}

// runResume restores a snapshot saved by runSnapshotSave into a fresh
// kernel, finishes the measured window, and prints the run's stats —
// byte-identical to what the saving run printed.
func runResume(path, mech string, seed uint64, interval sim.Time, checkpoints int) int {
	sp, err := snapshotSpec(mech, seed, interval, checkpoints)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prosper-experiments:", err)
		return 2
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prosper-experiments:", err)
		return 1
	}
	defer f.Close()
	res, err := sp.ResumeRun(f)
	if err != nil {
		return snapshotExit("resume", err)
	}
	printRunStats(res)
	return 0
}

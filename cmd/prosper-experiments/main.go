// Command prosper-experiments regenerates the paper's tables and figures
// on the simulated machine. Each experiment prints a paper-style ASCII
// table; DESIGN.md §5 maps experiment ids to the paper.
//
// Usage:
//
//	prosper-experiments [-interval us] [-checkpoints n] [-ops n]
//	                    [-parallel n] [-progress] [-list]
//	                    [-journey-out FILE [-journey-sample-rate n]
//	                    [-journey-seed s]]
//	                    [fig1 fig2 ... | all | quick]
//	prosper-experiments -crash-sweep [-crash-points n] [-crash-seed s]
//	                    [-parallel n]
//	prosper-experiments -snapshot-out FILE [-snapshot-at n]
//	                    [-snapshot-mech m] [-snapshot-seed s]
//	prosper-experiments -resume-from FILE [-snapshot-mech m]
//	                    [-snapshot-seed s]
//
// "quick" runs the trace-driven motivation figures only (seconds);
// "all" also runs the full-machine figures (minutes at default scale).
//
// -crash-sweep runs the differential power-failure sweep instead of the
// figures: every mechanism is crashed at -crash-points seeded cycles and
// recovered from the surviving NVM image, and any recovery-invariant
// violation makes the command exit non-zero (see EXPERIMENTS.md).
//
// -snapshot-out runs a deterministic checkpointing workload, saves the
// full machine state at a chosen commit, and prints the run's headline
// stats; -resume-from (same flags) restores that snapshot into a fresh
// kernel, finishes the window, and prints identical stats. Malformed or
// mismatched snapshots exit 2 with a typed diagnostic (DESIGN.md §14).
//
// Every figure is a declarative run plan executed on a bounded worker
// pool (-parallel, default GOMAXPROCS). Each run owns a private
// deterministic simulation, and results are assembled in plan order, so
// tables on stdout are byte-identical for any -parallel value; progress
// and timing go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"prosper/internal/crash"
	"prosper/internal/experiments"
	"prosper/internal/journey"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/telemetry"
)

type experiment struct {
	name  string
	heavy bool
	run   func() *stats.Table
}

func main() {
	intervalUS := flag.Int("interval", 200, "checkpoint interval in simulated microseconds (paper: 10000)")
	checkpoints := flag.Int("checkpoints", 10, "checkpoints per measured run")
	traceOps := flag.Int("ops", 150000, "trace length for motivation figures")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of ASCII tables")
	chartOut := flag.Bool("chart", false, "also render each figure as an ASCII bar chart")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulation runs per experiment")
	list := flag.Bool("list", false, "print the experiment registry and exit")
	progress := flag.Bool("progress", true, "report per-run progress (spec, sim cycles, wall seconds) on stderr")
	progressJSON := flag.String("progress-json", "", "also append per-run progress records as JSON lines to FILE")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event / Perfetto JSON trace of every run to FILE")
	journeyOut := flag.String("journey-out", "", "write sampled per-access journey records (JSON lines) of every run to FILE")
	journeyRate := flag.Uint64("journey-sample-rate", 4096, "sample 1-in-N accesses for -journey-out (deterministic in the access sequence number)")
	journeySeed := flag.Uint64("journey-seed", 1, "seed for -journey-out access sampling")
	metricsOut := flag.String("metrics-out", "", "write periodic metrics-registry snapshots as JSON lines to FILE")
	sampleEvery := flag.Int64("sample-every", 30_000, "telemetry sampling cadence in simulated cycles (30000 = 10 µs)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator to FILE")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to FILE at exit")
	crashSweep := flag.Bool("crash-sweep", false, "run the power-failure crash sweep over every mechanism instead of the figures")
	crashPoints := flag.Int("crash-points", 64, "crash points per mechanism for -crash-sweep")
	crashSeed := flag.Int64("crash-seed", 1, "PRNG seed for -crash-sweep point sampling")
	snapshotOut := flag.String("snapshot-out", "", "run the snapshot spec and save a machine snapshot to FILE instead of the figures")
	snapshotAt := flag.Int("snapshot-at", 2, "measured-window commit to snapshot at for -snapshot-out (counts from 1)")
	resumeFrom := flag.String("resume-from", "", "resume the machine snapshot in FILE and finish its measured window instead of the figures")
	snapshotMech := flag.String("snapshot-mech", "prosper", "stack mechanism for -snapshot-out / -resume-from")
	snapshotSeed := flag.Uint64("snapshot-seed", 1, "workload seed for -snapshot-out / -resume-from")
	flag.Parse()

	if *crashSweep {
		os.Exit(runCrashSweep(*crashPoints, *crashSeed, *parallel))
	}
	if *snapshotOut != "" && *resumeFrom != "" {
		fmt.Fprintln(os.Stderr, "prosper-experiments: -snapshot-out and -resume-from are mutually exclusive")
		os.Exit(2)
	}
	if *snapshotOut != "" {
		os.Exit(runSnapshotSave(*snapshotOut, *snapshotMech, *snapshotSeed,
			sim.Time(*intervalUS)*sim.Microsecond, *checkpoints, *snapshotAt))
	}
	if *resumeFrom != "" {
		os.Exit(runResume(*resumeFrom, *snapshotMech, *snapshotSeed,
			sim.Time(*intervalUS)*sim.Microsecond, *checkpoints))
	}

	scale := experiments.DefaultScale()
	scale.Interval = sim.Time(*intervalUS) * sim.Microsecond
	scale.Checkpoints = *checkpoints
	scale.TraceOps = *traceOps
	scale.Workers = *parallel
	if *progress {
		scale.Log = stats.NewRunLog(os.Stderr)
	} else if *progressJSON != "" {
		scale.Log = stats.NewRunLog(nil)
	}
	if *progressJSON != "" {
		f := mustCreate(*progressJSON)
		defer f.Close()
		scale.Log.StreamJSON(f)
	}
	if *traceOut != "" || *metricsOut != "" {
		scale.Trace = telemetry.NewTrace()
		scale.SampleEvery = sim.Time(*sampleEvery)
	}
	if *journeyOut != "" {
		scale.Journal = journey.NewJournal()
		scale.JourneySampleRate = *journeyRate
		scale.JourneySeed = *journeySeed
	}
	if *cpuprofile != "" {
		f := mustCreate(*cpuprofile)
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "prosper-experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	exps := []experiment{
		{"table1", false, func() *stats.Table { return experiments.Table1() }},
		{"fig1", false, func() *stats.Table { _, tb := experiments.Fig1(scale); return tb }},
		{"fig2", false, func() *stats.Table { _, tb := experiments.Fig2(scale); return tb }},
		{"fig3", false, func() *stats.Table { _, tb := experiments.Fig3(scale); return tb }},
		{"fig4", false, func() *stats.Table { _, tb := experiments.Fig4(scale); return tb }},
		{"fig8", true, func() *stats.Table { _, tb := experiments.Fig8(scale); return tb }},
		{"fig9", true, func() *stats.Table { _, tb := experiments.Fig9(scale); return tb }},
		{"fig10", true, func() *stats.Table { _, tb := experiments.Fig10(scale); return tb }},
		{"fig11", true, func() *stats.Table { _, tb := experiments.Fig11(scale); return tb }},
		{"fig12", true, func() *stats.Table { _, tb := experiments.Fig12(scale); return tb }},
		{"fig13", true, func() *stats.Table { _, tb := experiments.Fig13(scale); return tb }},
		{"ablation", true, func() *stats.Table { _, tb := experiments.Ablation(scale); return tb }},
		{"tracking", true, func() *stats.Table { _, tb := experiments.TrackingCost(scale); return tb }},
		{"adaptive", true, func() *stats.Table { _, tb := experiments.Adaptive(scale); return tb }},
		{"pause", true, func() *stats.Table { _, tb := experiments.PauseBreakdown(scale); return tb }},
		{"ctxswitch", false, func() *stats.Table { _, tb := experiments.ContextSwitch(scale); return tb }},
		{"energy", false, func() *stats.Table { _, tb := experiments.Energy(scale); return tb }},
	}

	if *list {
		printRegistry(os.Stdout, exps)
		return
	}

	byName := map[string]experiment{}
	for _, e := range exps {
		byName[e.name] = e
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"quick"}
	}
	var selected []experiment
	for _, a := range args {
		switch a {
		case "all":
			selected = append(selected, exps...)
		case "quick":
			for _, e := range exps {
				if !e.heavy {
					selected = append(selected, e)
				}
			}
		default:
			e, ok := byName[a]
			if !ok {
				fmt.Fprintf(os.Stderr, "prosper-experiments: unknown experiment %q\n\n", a)
				printRegistry(os.Stderr, exps)
				fmt.Fprintln(os.Stderr, "\n(run 'prosper-experiments -list' to see this registry again)")
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now() //prosperlint:ignore wallclock host metric: per-experiment wall time is stderr progress only, not part of the table
		tb := e.run()
		if *jsonOut {
			if err := tb.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			fmt.Println(tb.String())
			if *chartOut {
				if ch := chartFor(e.name, tb); ch != nil && ch.NumRows() > 0 {
					fmt.Println(ch.String())
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v wall time, %d workers]\n",
			e.name, time.Since(start).Round(time.Millisecond), *parallel) //prosperlint:ignore wallclock host metric: per-experiment wall time is stderr progress only, not part of the table
	}

	if *traceOut != "" {
		f := mustCreate(*traceOut)
		check(scale.Trace.WriteJSON(f))
		check(f.Close())
		fmt.Fprintf(os.Stderr, "[trace written to %s — open it at https://ui.perfetto.dev]\n", *traceOut)
	}
	if *metricsOut != "" {
		f := mustCreate(*metricsOut)
		check(scale.Trace.WriteMetricsJSONL(f))
		check(f.Close())
	}
	if *journeyOut != "" {
		f := mustCreate(*journeyOut)
		check(scale.Journal.WriteJSONL(f))
		check(f.Close())
		fmt.Fprintf(os.Stderr, "[journey journal written to %s — explore it with prosper-journey]\n", *journeyOut)
	}
	if *memprofile != "" {
		f := mustCreate(*memprofile)
		runtime.GC()
		check(pprof.WriteHeapProfile(f))
		check(f.Close())
	}
}

// runCrashSweep crashes every persistence mechanism at `points` seeded
// cycles, recovers each surviving NVM image, and prints one summary line
// per mechanism. Violations are listed individually; any violation makes
// the exit status 1.
func runCrashSweep(points int, seed int64, workers int) int {
	status := 0
	for _, mech := range crash.Mechanisms() {
		start := time.Now() //prosperlint:ignore wallclock host metric: sweep wall time is stderr progress only, verdicts come from sim state
		res, err := crash.Sweep(crash.Config{
			Mechanism: mech,
			Points:    points,
			Seed:      seed,
			Workers:   workers,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "prosper-experiments: crash sweep %s: %v\n", mech, err)
			return 1
		}
		fmt.Println(res.Summary())
		for _, v := range res.Violations() {
			fmt.Printf("  VIOLATION at cycle %d (P=%d S=%d): %s\n", v.Cycle, v.Commit, v.Epoch, v.Violation)
			status = 1
		}
		fmt.Fprintf(os.Stderr, "[crash-sweep %s completed in %v wall time, %d workers]\n",
			mech, time.Since(start).Round(time.Millisecond), workers) //prosperlint:ignore wallclock host metric: sweep wall time is stderr progress only, verdicts come from sim state
	}
	return status
}

// mustCreate opens an output file or exits with a diagnostic.
func mustCreate(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prosper-experiments:", err)
		os.Exit(1)
	}
	return f
}

// check exits with a diagnostic on a failed output write.
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "prosper-experiments:", err)
		os.Exit(1)
	}
}

// printRegistry lists every experiment with its cost class, plus the two
// pseudo-targets.
func printRegistry(w *os.File, exps []experiment) {
	fmt.Fprintln(w, "experiments (quick = seconds; heavy = minutes at default scale):")
	for _, e := range exps {
		marker := "quick"
		if e.heavy {
			marker = "heavy"
		}
		fmt.Fprintf(w, "  %-10s %s\n", e.name, marker)
	}
	fmt.Fprintf(w, "  %-10s every experiment\n", "all")
	fmt.Fprintf(w, "  %-10s every quick experiment (default)\n", "quick")
}

// chartFor maps each figure to its headline series for bar rendering.
func chartFor(name string, tb *stats.Table) *stats.Chart {
	switch name {
	case "fig1":
		return stats.ChartFromTable(tb, "stack fraction", "", "stack_total", "benchmark")
	case "fig3":
		return stats.ChartFromTable(tb, "normalized time (no SP awareness)", "x", "no_sp_aware", "benchmark", "mechanism")
	case "fig4":
		return stats.ChartFromTable(tb, "page/8B checkpoint-size reduction", "x", "reduction", "benchmark")
	case "fig8":
		return stats.ChartFromTable(tb, "normalized execution time", "x", "normalized_time", "benchmark", "mechanism")
	case "fig9":
		return stats.ChartFromTable(tb, "normalized execution time", "x", "normalized_time", "benchmark", "combination", "ssp_interval")
	case "fig10":
		return stats.ChartFromTable(tb, "mean checkpoint bytes", "B", "mean_ckpt_bytes", "benchmark", "granularity")
	case "fig11":
		return stats.ChartFromTable(tb, "mean checkpoint bytes", "B", "mean_ckpt_bytes", "benchmark", "interval")
	case "fig12":
		return stats.ChartFromTable(tb, "user-IPC speedup", "", "speedup", "benchmark", "granularity")
	case "fig13":
		return stats.ChartFromTable(tb, "bitmap loads", "", "bitmap_loads", "benchmark", "param", "value")
	case "tracking":
		return stats.ChartFromTable(tb, "normalized time", "x", "normalized_time", "benchmark", "technique")
	default:
		return nil
	}
}

package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// Capture a small trace, analyze it, and verify the table reports sane
// motivation numbers (records captured, non-trivial stack fraction).
func TestTraceCaptureAndAnalyze(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workload", "gapbs_pr", "-ops", "5000"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Trace analysis", "records", "stack fraction"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// The -out/-in round trip: a written binary trace must analyze to the
// same table a direct capture produces.
func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	var direct, stderr bytes.Buffer
	if code := run([]string{"-workload", "random", "-ops", "3000", "-out", path}, &direct, &stderr); code != 0 {
		t.Fatalf("capture exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(direct.String(), "wrote 3000 records to") {
		t.Fatalf("capture did not report the written trace:\n%s", direct.String())
	}
	var replay bytes.Buffer
	if code := run([]string{"-in", path}, &replay, &stderr); code != 0 {
		t.Fatalf("replay exit %d, stderr:\n%s", code, stderr.String())
	}
	// Strip the "wrote ..." line; the analysis tables must match exactly.
	table := direct.String()[strings.Index(direct.String(), "Trace analysis"):]
	if replay.String() != table {
		t.Fatalf("replayed analysis differs from direct capture:\n--- direct ---\n%s--- replay ---\n%s", table, replay.String())
	}
}

// Unknown workloads and unreadable inputs must fail with a diagnostic,
// not a zero exit.
func TestTraceBadInputs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", "nonesuch"}, &stdout, &stderr); code == 0 {
		t.Error("unknown workload exited 0")
	}
	if !strings.Contains(stderr.String(), "unknown workload") {
		t.Errorf("missing diagnostic, stderr:\n%s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-in", filepath.Join(t.TempDir(), "missing.bin")}, &stdout, &stderr); code == 0 {
		t.Error("missing input file exited 0")
	}
}

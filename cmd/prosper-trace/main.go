// Command prosper-trace captures memory-access traces of the built-in
// workloads (the role Intel Pin / SniP play for the paper) and runs the
// motivation analyses on them: operation breakdown, beyond-SP writes, and
// per-granularity checkpoint sizes.
//
// Usage:
//
//	prosper-trace -workload gapbs_pr -ops 200000 [-out trace.bin]
//	prosper-trace -in trace.bin -analyze
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/trace"
	"prosper/internal/workload"
)

// captureOnMachine runs the workload on the full simulated machine and
// records its traffic through the core's tracer tap (the SniP role, with
// real timing instead of nominal op costs).
func captureOnMachine(prog workload.Program, name string, ops int, seed uint64) *trace.Trace {
	k := kernel.New(kernel.Config{Machine: machine.Config{Cores: 1}})
	p := k.Spawn(kernel.ProcessConfig{Name: name, Seed: seed, PremapHeap: true}, prog)
	th := p.Threads[0]
	rec := trace.NewRecorder(k.Eng, th.StackSeg.Lo, th.StackSeg.Hi, ops)
	rec.SP = th.SP
	rec.Attach(k.Mach.Cores[0])
	for !rec.Full() && !p.Done() && k.Eng.Now() < 100*sim.Millisecond {
		k.RunFor(100 * sim.Microsecond)
	}
	p.Shutdown()
	return rec.Trace
}

func workloadByName(name string) workload.Program {
	switch name {
	case "gapbs_pr":
		return workload.NewApp(workload.GapbsPR())
	case "g500_sssp":
		return workload.NewApp(workload.G500SSSP())
	case "ycsb_mem":
		return workload.NewApp(workload.YcsbMem())
	case "mcf":
		return workload.NewApp(workload.SpecMCF())
	case "omnetpp":
		return workload.NewApp(workload.SpecOmnetpp())
	case "perlbench":
		return workload.NewApp(workload.SpecPerlbench())
	case "leela":
		return workload.NewApp(workload.SpecLeela())
	case "random":
		return workload.NewRandom(workload.MicroParams{})
	case "stream":
		return workload.NewStream(workload.MicroParams{})
	case "sparse":
		return workload.NewSparse(workload.MicroParams{})
	case "quicksort":
		return workload.NewQuicksort(4096)
	case "recursive":
		return workload.NewRecursive(8)
	case "normal":
		return workload.NewNormal()
	case "poisson":
		return workload.NewPoisson()
	default:
		return nil
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its process-global edges (flags, exit status, output
// streams) injected, so tests can drive the command in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prosper-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("workload", "gapbs_pr", "workload to trace")
	ops := fs.Int("ops", 200_000, "memory operations to capture")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("out", "", "write binary trace to file")
	in := fs.String("in", "", "read binary trace from file instead of capturing")
	intervals := fs.Int("intervals", 20, "consistency intervals for the analyses")
	onMachine := fs.Bool("machine", false, "capture from the cycle-level machine (real timing) instead of the nominal-cost capturer")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tr *trace.Trace
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		prog := workloadByName(*name)
		if prog == nil {
			fmt.Fprintf(stderr, "unknown workload %q\n", *name)
			return 2
		}
		if *onMachine {
			tr = captureOnMachine(prog, *name, *ops, *seed)
		} else {
			cfg := trace.DefaultCaptureConfig()
			cfg.MaxOps = *ops
			cfg.Ctx.Seed = *seed
			tr = trace.Capture(prog, cfg)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := tr.Write(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		f.Close()
		fmt.Fprintf(stdout, "wrote %d records to %s\n", len(tr.Records), *out)
	}

	interval := tr.Duration() / sim.Time(*intervals)
	if interval == 0 {
		interval = 1
	}
	b := trace.Breakdown(tr)
	tb := stats.NewTable("Trace analysis", "metric", "value")
	tb.AddRow("records", len(tr.Records))
	tb.AddRow("virtual duration (cycles)", tr.Duration())
	tb.AddRow("stack fraction", b.StackFraction())
	tb.AddRow("stack writes", b.StackWrites)
	tb.AddRow("beyond-final-SP write fraction", trace.BeyondSPFraction(tr, interval))
	page := trace.CheckpointSizes(tr, interval, 4096)
	fine := trace.CheckpointSizes(tr, interval, 8)
	tb.AddRow("ckpt bytes/interval @page", page.MeanBytes())
	tb.AddRow("ckpt bytes/interval @8B", fine.MeanBytes())
	tb.AddRow("page/8B reduction", trace.ReductionFactor(tr, interval, 8))
	fmt.Fprintln(stdout, tb.String())
	return 0
}

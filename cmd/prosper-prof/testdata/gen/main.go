// Command gen regenerates the committed prosper-prof test fixture
// (testdata/cpu.pb.gz): a small synthetic CPU profile with realistic
// simulator stacks, built with hostprof.Builder so the bytes depend only
// on this build sequence. Run it from the repository root:
//
//	go run ./cmd/prosper-prof/testdata/gen
//
// The fixture is generated once and committed; the golden outputs next
// to it (golden.table.txt, golden.json) are what prosper-prof must
// produce for it, byte for byte. If you change the fixture, regenerate
// the goldens with:
//
//	go run ./cmd/prosper-prof testdata/cpu.pb.gz > testdata/golden.table.txt
//	go run ./cmd/prosper-prof -json testdata/cpu.pb.gz > testdata/golden.json
package main

import (
	"fmt"
	"os"

	"prosper/internal/hostprof"
)

func main() {
	b := hostprof.NewBuilder(
		hostprof.ValueType{Type: "samples", Unit: "count"},
		hostprof.ValueType{Type: "cpu", Unit: "nanoseconds"},
	)
	b.SetPeriod(hostprof.ValueType{Type: "cpu", Unit: "nanoseconds"}, 10_000_000)
	b.SetTimes(1_754_000_000_000_000_000, 3_000_000_000)

	step := "prosper/internal/sim.(*Engine).Step"
	runFor := "prosper/internal/kernel.(*Kernel).RunFor"
	specRun := "prosper/internal/runner.Spec.Run"

	// Stacks are leaf-first, mirroring what runtime/pprof records for a
	// bench run: device completions, cache fills, core pipeline steps,
	// tracker polls, checkpoint copy loops, and runtime memmove under a
	// persist copy.
	b.Sample([]string{"prosper/internal/mem.(*Device).complete", step, runFor, specRun}, 14, 140_000_000)
	b.Sample([]string{"prosper/internal/cache.(*Cache).fill", step, runFor, specRun}, 9, 90_000_000)
	b.Sample([]string{"prosper/internal/machine.(*Core).step", step, runFor, specRun}, 31, 310_000_000)
	b.Sample([]string{"prosper/internal/vm.(*PageTable).Walk", "prosper/internal/machine.(*seqWalk).step", step, runFor, specRun}, 4, 40_000_000)
	b.Sample([]string{"prosper/internal/prosper.(*Tracker).poll", step, runFor, specRun}, 6, 60_000_000)
	b.Sample([]string{"prosper/internal/persist.(*prosperMech).Checkpoint", step, runFor, specRun}, 8, 80_000_000)
	b.Sample([]string{"runtime.memmove", "prosper/internal/persist.(*prosperMech).copyRange", step, runFor, specRun}, 5, 50_000_000)
	b.Sample([]string{"prosper/internal/kernel.(*Kernel).contextSwitch", step, runFor, specRun}, 3, 30_000_000)
	b.Sample([]string{"prosper/internal/workload.(*gapbsPR).Next", "prosper/internal/machine.(*Core).step", step, runFor, specRun}, 12, 120_000_000)
	b.Sample([]string{"prosper/internal/sim.(*Engine).pop", step, runFor, specRun}, 7, 70_000_000)
	b.Sample([]string{"runtime.mallocgc", "prosper/internal/telemetry.(*Tracer).Begin", specRun}, 2, 20_000_000)

	if err := os.WriteFile("cmd/prosper-prof/testdata/cpu.pb.gz", b.EncodeGzip(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
	fmt.Println("wrote cmd/prosper-prof/testdata/cpu.pb.gz")
}

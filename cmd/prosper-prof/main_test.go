package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = "testdata/cpu.pb.gz"

// TestGoldenTable pins prosper-prof's table output for the committed
// fixture byte-for-byte: the attribution of a given profile is part of
// the tool's contract, not an implementation detail.
func TestGoldenTable(t *testing.T) {
	want, err := os.ReadFile("testdata/golden.table.txt")
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{fixture}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != string(want) {
		t.Fatalf("table drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

func TestGoldenJSON(t *testing.T) {
	want, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", fixture}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.String() != string(want) {
		t.Fatalf("json drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

// TestOutputStableAcrossRuns re-runs the attribution several times:
// identical input must produce identical bytes every time.
func TestOutputStableAcrossRuns(t *testing.T) {
	var first string
	for i := 0; i < 3; i++ {
		var out, errb bytes.Buffer
		if code := run([]string{"-json", fixture}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		if i == 0 {
			first = out.String()
		} else if out.String() != first {
			t.Fatal("output varied across runs on identical input")
		}
	}
}

func TestSampleTypeSelection(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sample-type", "samples", fixture}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "sample type: samples/count, total 101 over 11 samples") {
		t.Fatalf("samples dimension not selected:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-sample-type", "bogus", fixture}, &out, &errb); code != 2 {
		t.Fatalf("unknown sample type: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no sample type") {
		t.Fatalf("stderr = %s", errb.String())
	}
}

// TestMalformedProfilesExit2 feeds truncated and corrupt inputs; each
// must exit 2 with a diagnostic on stderr, never a panic or silence.
func TestMalformedProfilesExit2(t *testing.T) {
	good, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cases := map[string][]byte{
		"empty.pb.gz":     {},
		"truncated.pb.gz": good[:len(good)/3],
		"garbage.pb.gz":   []byte("\x1f\x8b not actually gzip"),
		"text.pb":         []byte("component flat cum\n"),
	}
	for name, data := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		if code := run([]string{path}, &out, &errb); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %q)", name, code, errb.String())
		}
		if errb.Len() == 0 {
			t.Errorf("%s: no diagnostic on stderr", name)
		}
	}
}

func TestUsageErrorsExit2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"a", "b"}, &out, &errb); code != 2 {
		t.Fatalf("two args: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.pb.gz")}, &out, &errb); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
}

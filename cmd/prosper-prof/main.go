// Command prosper-prof attributes a pprof CPU or heap profile to
// simulated components (mem, cache, vm, kernel, prosper, persist,
// workload, sim, other) by package path, answering "where is host time
// going?" for the throughput campaign without any module dependencies.
//
// Usage:
//
//	prosper-prof [-json] [-sample-type name] profile.pb.gz
//
// The input is what runtime/pprof writes: prosper-bench -cpuprofile or
// -memprofile output, or any Go profile. By default the last sample
// dimension is attributed (cpu/nanoseconds for CPU profiles,
// inuse_space/bytes for heap profiles); -sample-type selects another by
// name (e.g. "alloc_space", "samples").
//
// Output is deterministic for identical input: a fixed-width table
// sorted by flat value descending, or a JSON report with one entry per
// component in declaration order (-json).
//
// Exit status: 0 success, 2 usage error or malformed/truncated profile.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prosper/internal/hostprof"
)

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prosper-prof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the attribution as a JSON report")
	sampleType := fs.String("sample-type", "", "sample dimension to attribute (default: the profile's last)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: prosper-prof [-json] [-sample-type name] profile.pb.gz")
		return 2
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "prosper-prof:", err)
		return 2
	}
	p, err := hostprof.Parse(data)
	if err != nil {
		fmt.Fprintln(stderr, "prosper-prof:", err)
		return 2
	}
	idx := -1
	if *sampleType != "" {
		if idx = p.SampleTypeIndex(*sampleType); idx < 0 {
			fmt.Fprintf(stderr, "prosper-prof: profile has no sample type %q (has:", *sampleType)
			for _, vt := range p.SampleTypes {
				fmt.Fprintf(stderr, " %s", vt.Type)
			}
			fmt.Fprintln(stderr, ")")
			return 2
		}
	}
	a, err := hostprof.Attribute(p, idx)
	if err != nil {
		fmt.Fprintln(stderr, "prosper-prof:", err)
		return 2
	}
	if *jsonOut {
		js, err := a.JSON()
		if err != nil {
			fmt.Fprintln(stderr, "prosper-prof:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(js))
		return 0
	}
	fmt.Fprint(stdout, a.Table())
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

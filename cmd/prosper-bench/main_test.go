package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prosper/internal/hostprof"
)

// TestQuickSuiteDeterministic runs the quick suite twice (serial and
// 4-way parallel) and asserts the deterministic sections are identical —
// the contract that makes -compare meaningful.
func TestQuickSuiteDeterministic(t *testing.T) {
	a := runSuite(true, 1)
	b := runSuite(true, 4)
	aj, _ := json.Marshal(a.Deterministic)
	bj, _ := json.Marshal(b.Deterministic)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("deterministic sections differ between workers=1 and workers=4:\n%s\n--- vs ---\n%s", aj, bj)
	}
	if len(a.Deterministic) == 0 {
		t.Fatal("quick suite produced no runs")
	}
	for name, m := range a.Deterministic {
		if m["user_ops"] == 0 {
			t.Errorf("%s: no user ops recorded", name)
		}
		if m["pause_count"] == 0 {
			t.Errorf("%s: no pauses recorded", name)
		}
		var causes uint64
		for k, v := range m {
			if strings.HasPrefix(k, "pause_") {
				switch k {
				case "pause_count", "pause_cycles", "pause_max", "pause_p50", "pause_p95", "pause_p99":
				default:
					causes += v
				}
			}
		}
		if causes != m["pause_cycles"] {
			t.Errorf("%s: pause causes sum %d != pause_cycles %d", name, causes, m["pause_cycles"])
		}
	}
}

// TestCompareSelfAndRegression writes a quick-suite baseline via run(),
// proves a self-compare exits zero, and proves an injected regression in
// one deterministic metric makes -compare exit non-zero and name the
// offending metric.
func TestCompareSelfAndRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")

	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-out", baseline}, &out, &errb); code != 0 {
		t.Fatalf("baseline run exited %d: %s", code, errb.String())
	}

	out.Reset()
	if code := run([]string{"-quick", "-compare", baseline}, &out, &errb); code != 0 {
		t.Fatalf("self-compare exited %d:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "match") {
		t.Fatalf("self-compare did not report a match:\n%s", out.String())
	}

	// Inject a regression into one metric of the baseline.
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	var victim string
	for name := range rep.Deterministic {
		victim = name
		break
	}
	rep.Deterministic[victim]["user_ops"] += 12345
	doctored, _ := json.Marshal(rep)
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, doctored, 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	code := run([]string{"-quick", "-compare", bad}, &out, &errb)
	if code == 0 {
		t.Fatalf("compare against doctored baseline exited 0:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "user_ops") {
		t.Fatalf("regression report missing metric name:\n%s", out.String())
	}

	// A generous tolerance must absorb the injected drift.
	out.Reset()
	if code := run([]string{"-quick", "-compare", bad, "-tolerance", "100"}, &out, &errb); code != 0 {
		t.Fatalf("compare with 100%% tolerance exited %d:\n%s", code, out.String())
	}
}

// TestProfileFlags runs the quick suite with -cpuprofile and
// -memprofile and checks both outputs decode with internal/hostprof —
// the same path prosper-prof takes, so the bench → prof pipeline is
// covered end to end without depending on sample counts (a fast suite
// may catch few or no CPU samples).
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-cpuprofile", cpu, "-memprofile", mem, "-out", filepath.Join(dir, "rep.json")}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		p, err := hostprof.Parse(raw)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(p.SampleTypes) == 0 {
			t.Fatalf("%s: no sample types", path)
		}
		if _, err := hostprof.Attribute(p, -1); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
}

// TestCompareSuiteMismatch ensures a full-suite report cannot silently
// pass against a quick baseline.
func TestCompareSuiteMismatch(t *testing.T) {
	old := report{Schema: schemaVersion, Suite: "quick",
		Deterministic: map[string]map[string]uint64{}}
	cur := report{Schema: schemaVersion, Suite: "full",
		Deterministic: map[string]map[string]uint64{}}
	if problems := compare(old, cur, 0, 20); len(problems) == 0 {
		t.Fatal("suite mismatch not reported")
	}
}

// TestThroughputRatchet exercises the host-throughput gate: regressions
// beyond tolerance fail, improvements and in-tolerance noise pass, and a
// sim_cycles difference is flagged even when the rates look fine.
func TestThroughputRatchet(t *testing.T) {
	base := report{Schema: schemaVersion, Suite: "quick",
		Deterministic: map[string]map[string]uint64{},
		Throughput: throughputStats{
			SimCycles:       1_000_000,
			EventsFired:     50_000,
			AllocsPerMcycle: 100,
			BytesPerMcycle:  4096,
		}}
	cur := base

	if problems := compare(base, cur, 0, 20); len(problems) != 0 {
		t.Fatalf("identical throughput flagged: %v", problems)
	}

	cur.Throughput.AllocsPerMcycle = 150 // +50%
	problems := compare(base, cur, 0, 20)
	if len(problems) != 1 || !strings.Contains(problems[0], "allocs_per_mcycle") {
		t.Fatalf("50%% alloc-rate regression not flagged: %v", problems)
	}
	if problems := compare(base, cur, 0, 60); len(problems) != 0 {
		t.Fatalf("60%% tolerance did not absorb +50%%: %v", problems)
	}

	cur.Throughput.AllocsPerMcycle = 10 // large improvement
	cur.Throughput.EventsFired = 1_000
	if problems := compare(base, cur, 0, 20); len(problems) != 0 {
		t.Fatalf("improvement flagged as regression: %v", problems)
	}

	cur = base
	cur.Throughput.EventsFired = 80_000 // +60%
	problems = compare(base, cur, 0, 20)
	if len(problems) != 1 || !strings.Contains(problems[0], "events_fired") {
		t.Fatalf("event-count regression not flagged: %v", problems)
	}

	cur = base
	cur.Throughput.SimCycles = 999_999
	problems = compare(base, cur, 0, 20)
	if len(problems) != 1 || !strings.Contains(problems[0], "sim_cycles") {
		t.Fatalf("sim_cycles mismatch not flagged: %v", problems)
	}

	// A pre-ratchet baseline (no host_throughput section) must not be
	// ratcheted against zeros; only its schema mismatch is reported.
	v1 := report{Schema: "prosper-bench/1", Suite: "quick",
		Deterministic: map[string]map[string]uint64{}}
	cur = base
	problems = compare(v1, cur, 0, 20)
	if len(problems) != 1 || !strings.Contains(problems[0], "schema mismatch") {
		t.Fatalf("pre-ratchet baseline: want only schema mismatch, got %v", problems)
	}
}

// TestBaselineContinuity pins the no-cycle-drift invariant of the event
// core and profiling refactors in the repository itself: the committed
// BENCH_0004.json (prosper-bench/1), BENCH_0006.json (prosper-bench/2),
// and BENCH_0007.json (prosper-bench/3) must all carry byte-identical
// deterministic sections.
func TestBaselineContinuity(t *testing.T) {
	read := func(name string) json.RawMessage {
		raw, err := os.ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Deterministic json.RawMessage `json:"deterministic"`
		}
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Deterministic) == 0 {
			t.Fatalf("%s: no deterministic section", name)
		}
		return rep.Deterministic
	}
	v1 := read("BENCH_0004.json")
	v2 := read("BENCH_0006.json")
	v3 := read("BENCH_0007.json")
	if !bytes.Equal(v1, v2) {
		t.Fatalf("deterministic sections diverged between BENCH_0004 and BENCH_0006:\n%s\n--- vs ---\n%s", v1, v2)
	}
	if !bytes.Equal(v2, v3) {
		t.Fatalf("deterministic sections diverged between BENCH_0006 and BENCH_0007:\n%s\n--- vs ---\n%s", v2, v3)
	}
}

// TestAttributionInvariant runs the pinned quick suite at -parallel 1
// and 4 and checks the host_attribution contract: the per-component
// event counts are identical for any worker count and sum exactly to
// events_fired (which itself equals the sum of each run's
// Engine.Fired()).
func TestAttributionInvariant(t *testing.T) {
	a := runSuite(true, 1)
	b := runSuite(true, 4)
	for _, rep := range []report{a, b} {
		var sum uint64
		for _, v := range rep.Attribution.EventCounts {
			sum += v
		}
		if sum != rep.Throughput.EventsFired {
			t.Fatalf("event_counts sum to %d, want events_fired = %d", sum, rep.Throughput.EventsFired)
		}
	}
	aj, _ := json.Marshal(a.Attribution.EventCounts)
	bj, _ := json.Marshal(b.Attribution.EventCounts)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("event_counts differ between workers=1 and workers=4:\n%s\n--- vs ---\n%s", aj, bj)
	}
	if a.Throughput.EventsFired != b.Throughput.EventsFired {
		t.Fatalf("events_fired differ between workers=1 and workers=4: %d vs %d",
			a.Throughput.EventsFired, b.Throughput.EventsFired)
	}
}

// TestCompareAttributionRegression proves a drifted per-component event
// count fails -compare exactly (no tolerance), and that a pre-schema-3
// baseline without the section is skipped rather than compared against
// an empty map.
func TestCompareAttributionRegression(t *testing.T) {
	base := report{Schema: schemaVersion, Suite: "quick",
		Deterministic: map[string]map[string]uint64{},
		Throughput:    throughputStats{SimCycles: 1_000_000, EventsFired: 100},
		Attribution: attributionStats{
			EventCounts: map[string]uint64{"mem": 60, "cache": 40},
		}}
	cur := base
	if problems := compare(base, cur, 0, 20); len(problems) != 0 {
		t.Fatalf("identical attribution flagged: %v", problems)
	}

	cur.Attribution = attributionStats{EventCounts: map[string]uint64{"mem": 61, "cache": 40}}
	problems := compare(base, cur, 0, 20)
	if len(problems) != 1 || !strings.Contains(problems[0], "event_counts.mem") {
		t.Fatalf("event-count drift not flagged exactly: %v", problems)
	}

	cur.Attribution = attributionStats{EventCounts: map[string]uint64{"mem": 60}}
	problems = compare(base, cur, 0, 20)
	if len(problems) != 1 || !strings.Contains(problems[0], "event_counts.cache missing") {
		t.Fatalf("missing component not flagged: %v", problems)
	}

	// Schema-2 baseline: no attribution section, no spurious findings
	// beyond the schema mismatch.
	v2 := base
	v2.Schema = "prosper-bench/2"
	v2.Attribution = attributionStats{}
	problems = compare(v2, base, 0, 20)
	if len(problems) != 1 || !strings.Contains(problems[0], "schema mismatch") {
		t.Fatalf("schema-2 baseline: want only schema mismatch, got %v", problems)
	}
}

// TestCLIDeterministicAcrossParallel exercises the full CLI path (flag
// parsing, suite run, -out serialization) at two worker counts and
// byte-compares the "deterministic" JSON sections as written to disk.
// TestQuickSuiteDeterministic covers the in-process structs; this test
// pins the artifact CI actually archives and diffs.
func TestCLIDeterministicAcrossParallel(t *testing.T) {
	dir := t.TempDir()
	var sections [][]byte
	for _, workers := range []string{"1", "3"} {
		path := filepath.Join(dir, "bench-p"+workers+".json")
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-quick", "-parallel", workers, "-out", path}, &stdout, &stderr); code != 0 {
			t.Fatalf("-parallel %s: exit %d\nstderr: %s", workers, code, stderr.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Deterministic json.RawMessage `json:"deterministic"`
		}
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("-parallel %s: report is not JSON: %v", workers, err)
		}
		if len(rep.Deterministic) == 0 {
			t.Fatalf("-parallel %s: report has no deterministic section", workers)
		}
		sections = append(sections, rep.Deterministic)
	}
	if !bytes.Equal(sections[0], sections[1]) {
		t.Errorf("deterministic sections differ between -parallel 1 and -parallel 3:\n%s\n--- vs ---\n%s",
			sections[0], sections[1])
	}
}

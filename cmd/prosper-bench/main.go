// Command prosper-bench runs a pinned benchmark suite on the simulated
// machine and emits a machine-readable report for regression tracking.
//
// Usage:
//
//	prosper-bench [-quick] [-out FILE] [-parallel n] [-cpuprofile FILE] [-memprofile FILE]
//	prosper-bench -compare OLD.json [-tolerance pct] [-quick] [-parallel n]
//
// The report has four sections. "deterministic" holds simulation
// metrics (user ops/cycles and the IPC proxy, checkpoint counts and
// bytes, and the checkpoint-pause distribution with its quantiles) —
// these are byte-for-byte reproducible for a given suite on any machine
// and any -parallel value, so every out-of-tolerance difference against
// a baseline is a real behavior change. "host_throughput" tracks how
// efficiently the simulator itself runs: simulated kilocycles per
// wall-second (informational), and heap allocations/bytes per simulated
// megacycle, which are stable enough across hosts to ratchet — -compare
// fails when they regress beyond -throughput-tolerance percent, while
// improvements always pass. "host_attribution" decomposes the suite's
// dispatched events by owning simulated component (sim.Component): the
// per-component event counts are deterministic — they sum exactly to
// events_fired and -compare checks them exactly — while the
// per-component wall-time shares are informational. "host_nondeterministic"
// holds raw wall-clock time and allocation totals: useful for
// eyeballing, excluded from -compare entirely because they vary run to
// run.
//
// -cpuprofile/-memprofile write pprof profiles covering the suite (the
// heap profile after a runtime.GC so it reflects live data); feed them
// to prosper-prof for the package-level component attribution.
//
// -compare loads a previous report and exits non-zero if any
// deterministic metric drifted beyond -tolerance percent (default 0:
// exact match), if the allocation-throughput ratchet regressed, or if
// the two reports cover different runs. Compare like-for-like: a -quick
// run against a -quick baseline (the committed BENCH_0007.json is the
// -quick suite; BENCH_0004.json and BENCH_0006.json are the same suite
// in earlier schemas, kept so the deterministic sections can be diffed
// across the event-core and profiling refactors).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"prosper/internal/crash"
	"prosper/internal/persist"
	"prosper/internal/runner"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

const schemaVersion = "prosper-bench/3"

// report is the serialized benchmark outcome. encoding/json marshals
// maps with sorted keys, so the emitted bytes are deterministic for the
// deterministic section.
type report struct {
	Schema string `json:"schema"`
	Suite  string `json:"suite"`
	// Deterministic maps "bench/mechanism" to integral simulation
	// metrics. Identical for every run of the same binary and suite.
	Deterministic map[string]map[string]uint64 `json:"deterministic"`
	// Throughput tracks simulator efficiency; -compare ratchets the
	// allocation-rate metrics (see compare) and exact-checks sim_cycles.
	Throughput throughputStats `json:"host_throughput"`
	// Attribution decomposes dispatched events by owning component;
	// -compare exact-checks the event counts (deterministic) and ignores
	// the wall shares.
	Attribution attributionStats `json:"host_attribution"`
	// Host metrics vary run to run; -compare ignores this section.
	Host hostStats `json:"host_nondeterministic"`
}

// throughputStats normalizes host cost by simulated work, which is what
// makes it comparable across commits: sim_cycles is deterministic,
// events_fired is deterministic per binary (batching optimizations may
// lower it), and the per-megacycle allocation rates divide host totals
// by deterministic work so they are stable enough to gate on.
// kcycles_per_sec depends on raw wall-clock and is never compared.
type throughputStats struct {
	Note            string  `json:"note"`
	SimCycles       uint64  `json:"sim_cycles"`
	EventsFired     uint64  `json:"events_fired"`
	KCyclesPerSec   float64 `json:"kcycles_per_sec"`
	AllocsPerMcycle float64 `json:"allocs_per_mcycle"`
	BytesPerMcycle  float64 `json:"bytes_per_mcycle"`
}

// attributionStats is the per-component decomposition of the suite's
// dispatched events. EventCounts (keyed by sim.Component name) is on the
// deterministic side of the contract: byte-identical across runs and
// -parallel values, summing exactly to host_throughput.events_fired.
// WallSharePct spreads batched host time over components and varies run
// to run.
type attributionStats struct {
	Note         string             `json:"note"`
	EventCounts  map[string]uint64  `json:"event_counts"`
	WallSharePct map[string]float64 `json:"wall_share_pct"`
}

type hostStats struct {
	Note       string `json:"note"`
	WallMillis int64  `json:"wall_ms"`
	HeapAllocs uint64 `json:"heap_allocs"`
	HeapBytes  uint64 `json:"heap_bytes"`
	// The crash-sweep pair times the same seeded sweep with crash points
	// forked from golden commit snapshots (the default) and with the
	// legacy replay-from-zero path. Both are wall-clock and excluded
	// from -compare; forking exists to make sweeps cheaper, and this is
	// where to eyeball that it still does (the verdict equivalence
	// itself is gated by internal/crash's TestForkedSweepMatchesLegacy).
	SweepNote         string `json:"sweep_note"`
	SweepForkedMillis int64  `json:"sweep_forked_wall_ms"`
	SweepLegacyMillis int64  `json:"sweep_legacy_wall_ms"`
}

// suite returns the pinned run plan. The specs (workloads, mechanisms,
// intervals, seeds) are part of the benchmark contract: changing any of
// them invalidates committed baselines.
func suite(quick bool) (string, []runner.Spec) {
	type mech struct {
		name    string
		factory persist.Factory
	}
	var (
		name     string
		benches  []workload.AppParams
		mechs    []mech
		interval sim.Time
		ckpts    int
	)
	if quick {
		name = "quick"
		benches = []workload.AppParams{workload.GapbsPR()}
		mechs = []mech{
			{"prosper", persist.NewProsper(persist.ProsperConfig{})},
			{"dirtybit", persist.NewDirtybit(persist.DirtybitConfig{})},
		}
		interval, ckpts = 100*sim.Microsecond, 4
	} else {
		name = "full"
		benches = []workload.AppParams{workload.GapbsPR(), workload.G500SSSP(), workload.YcsbMem()}
		mechs = []mech{
			{"prosper", persist.NewProsper(persist.ProsperConfig{})},
			{"dirtybit", persist.NewDirtybit(persist.DirtybitConfig{})},
			{"ssp-10us", persist.NewSSP(persist.SSPConfig{ConsolidationInterval: 10 * sim.Microsecond})},
		}
		interval, ckpts = 200*sim.Microsecond, 6
	}
	var specs []runner.Spec
	for _, params := range benches {
		params := params
		prog := func() workload.Program { return workload.NewApp(params) }
		for _, m := range mechs {
			specs = append(specs, runner.Spec{
				Name:        params.Name,
				Label:       params.Name + "/" + m.name,
				Prog:        prog,
				StackMech:   m.factory,
				Checkpoint:  true,
				Interval:    interval,
				Checkpoints: ckpts,
				Warmup:      interval / 2,
				Seed:        1,
				Profile:     true,
			})
		}
	}
	return name, specs
}

// metrics flattens one run's deterministic simulation metrics.
func metrics(r runner.RunStats) map[string]uint64 {
	ipcMilli := uint64(0)
	if r.UserCycles > 0 {
		ipcMilli = r.UserOps * 1000 / r.UserCycles
	}
	m := map[string]uint64{
		"user_ops":         r.UserOps,
		"user_cycles":      r.UserCycles,
		"ipc_milli":        ipcMilli,
		"checkpoints":      r.Checkpoints,
		"checkpoint_bytes": r.CheckpointBytes,
		"stack_ckpt_bytes": r.StackCkptBytes,
		"pause_count":      r.PauseCount,
		"pause_cycles":     r.PauseTotal,
		"pause_max":        r.PauseMax,
		"pause_p50":        r.PauseP50,
		"pause_p95":        r.PauseP95,
		"pause_p99":        r.PauseP99,
	}
	for c, v := range r.PauseCauses {
		m["pause_"+persist.Cause(c).String()] = v
	}
	return m
}

// runSuite executes the pinned plan and assembles the report.
func runSuite(quick bool, workers int) report {
	name, specs := suite(quick)
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now() //prosperlint:ignore wallclock host metric: suite wall time goes in the report's host section, never into sim results
	ex := runner.Executor{Workers: workers}
	res, err := ex.Run(runner.Plan{Name: "bench-" + name, Specs: specs})
	if err != nil {
		panic(err)
	}
	wall := time.Since(start) //prosperlint:ignore wallclock host metric: suite wall time goes in the report's host section, never into sim results
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	sweepForked, sweepLegacy := timeSweeps(workers)

	rep := report{
		Schema:        schemaVersion,
		Suite:         name,
		Deterministic: map[string]map[string]uint64{},
		Host: hostStats{
			Note:              "host-dependent; varies run to run; excluded from -compare",
			WallMillis:        wall.Milliseconds(),
			HeapAllocs:        ms1.Mallocs - ms0.Mallocs,
			HeapBytes:         ms1.TotalAlloc - ms0.TotalAlloc,
			SweepNote:         "same seeded crash sweep, snapshot-forked vs legacy replay-from-zero; wall-clock, excluded from -compare; forked should stay at or below legacy",
			SweepForkedMillis: sweepForked.Milliseconds(),
			SweepLegacyMillis: sweepLegacy.Milliseconds(),
		},
	}
	var simCycles, eventsFired uint64
	var counts [sim.NumComponents]uint64
	var nanos [sim.NumComponents]int64
	for i, sp := range specs {
		rep.Deterministic[sp.DisplayLabel()] = metrics(res[i])
		simCycles += uint64(res[i].SimEnd)
		eventsFired += res[i].EventsFired
		for c := range counts {
			counts[c] += res[i].EventCounts[c]
			nanos[c] += res[i].EventNanos[c]
		}
	}
	rep.Attribution = attributionStats{
		Note:         "event_counts is deterministic (sums to events_fired, exact-checked by -compare); wall_share_pct varies run to run",
		EventCounts:  map[string]uint64{},
		WallSharePct: map[string]float64{},
	}
	var totalNanos int64
	for _, n := range nanos {
		totalNanos += n
	}
	for _, c := range sim.Components() {
		rep.Attribution.EventCounts[c.String()] = counts[c]
		share := 0.0
		if totalNanos > 0 {
			share = round2(100 * float64(nanos[c]) / float64(totalNanos))
		}
		rep.Attribution.WallSharePct[c.String()] = share
	}
	rep.Throughput = throughputStats{
		Note:        "allocation rates per simulated megacycle are ratcheted by -compare; kcycles_per_sec is informational",
		SimCycles:   simCycles,
		EventsFired: eventsFired,
	}
	mcycles := float64(simCycles) / 1e6
	if mcycles > 0 {
		rep.Throughput.AllocsPerMcycle = round2(float64(rep.Host.HeapAllocs) / mcycles)
		rep.Throughput.BytesPerMcycle = round2(float64(rep.Host.HeapBytes) / mcycles)
	}
	if secs := wall.Seconds(); secs > 0 {
		rep.Throughput.KCyclesPerSec = round2(float64(simCycles) / 1e3 / secs)
	}
	return rep
}

// timeSweeps runs one pinned crash-sweep config through the
// snapshot-forked path and the legacy replay-from-zero path and returns
// the two wall times for the report's host section. It runs after the
// suite's memory-stat window so it cannot perturb the allocation
// ratchet. Sweep errors are fatal: the bench must not silently report
// a sweep that never ran.
func timeSweeps(workers int) (forked, legacy time.Duration) {
	cfg := crash.Config{Mechanism: "dirtybit", Points: 16, Seed: 1, Workers: workers}
	timeOne := func(c crash.Config) time.Duration {
		start := time.Now() //prosperlint:ignore wallclock host metric: sweep wall time goes in the report's host section, never into sim results
		if _, err := crash.Sweep(c); err != nil {
			panic(err)
		}
		return time.Since(start) //prosperlint:ignore wallclock host metric: sweep wall time goes in the report's host section, never into sim results
	}
	forked = timeOne(cfg)
	cfg.Legacy = true
	legacy = timeOne(cfg)
	return forked, legacy
}

// round2 keeps the throughput rates readable in committed baselines
// (two decimal places carry more precision than the ratchet needs).
func round2(v float64) float64 { return math.Round(v*100) / 100 }

// compare reports every deterministic metric of new that drifted beyond
// tolerance percent from old, plus runs or metrics present on only one
// side, plus host-throughput ratchet violations: sim_cycles must match
// exactly (it is deterministic), and events_fired, allocs_per_mcycle and
// bytes_per_mcycle may improve freely but must not regress beyond
// throughputTolPct percent. An empty result means the reports agree.
func compare(old, cur report, tolerancePct, throughputTolPct float64) []string {
	var problems []string
	if old.Schema != cur.Schema {
		problems = append(problems, fmt.Sprintf("schema mismatch: baseline %q vs current %q", old.Schema, cur.Schema))
	}
	if old.Suite != cur.Suite {
		problems = append(problems, fmt.Sprintf("suite mismatch: baseline %q vs current %q (compare like-for-like)", old.Suite, cur.Suite))
	}
	var runs []string
	for name := range old.Deterministic {
		runs = append(runs, name)
	}
	sort.Strings(runs)
	for _, name := range runs {
		curM, ok := cur.Deterministic[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("run %q missing from current report", name))
			continue
		}
		oldM := old.Deterministic[name]
		var keys []string
		for k := range oldM {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			nv, ok := curM[k]
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: metric %q missing from current report", name, k))
				continue
			}
			ov := oldM[k]
			if ov == nv {
				continue
			}
			base := float64(ov)
			if base == 0 {
				base = 1
			}
			deltaPct := (float64(nv) - float64(ov)) / base * 100
			if deltaPct < 0 {
				if -deltaPct <= tolerancePct {
					continue
				}
			} else if deltaPct <= tolerancePct {
				continue
			}
			problems = append(problems, fmt.Sprintf("REGRESSION %s.%s: baseline %d, current %d (%+.2f%%)", name, k, ov, nv, deltaPct))
		}
	}
	for name := range cur.Deterministic {
		if _, ok := old.Deterministic[name]; !ok {
			problems = append(problems, fmt.Sprintf("run %q absent from baseline", name))
		}
	}

	// Host-throughput ratchet. A prosper-bench/1 baseline predates the
	// ratchet and carries no host_throughput section; skip it rather than
	// compare against zeros (the schema mismatch above already flags the
	// cross-version comparison).
	if old.Throughput.SimCycles == 0 && old.Throughput.EventsFired == 0 {
		return problems
	}
	// sim_cycles is deterministic, so any difference is a behavior change
	// the deterministic section will also flag — but check it here too so
	// a ratchet comparison against the wrong baseline cannot silently
	// normalize by different work.
	if old.Throughput.SimCycles != cur.Throughput.SimCycles {
		problems = append(problems, fmt.Sprintf(
			"host_throughput.sim_cycles: baseline %d, current %d (deterministic; must match exactly)",
			old.Throughput.SimCycles, cur.Throughput.SimCycles))
	}
	ratchet := func(metric string, ov, nv float64) {
		if ov <= 0 || nv <= ov*(1+throughputTolPct/100) {
			return
		}
		problems = append(problems, fmt.Sprintf(
			"THROUGHPUT REGRESSION host_throughput.%s: baseline %.2f, current %.2f (+%.2f%%, tolerance %.2f%%)",
			metric, ov, nv, (nv-ov)/ov*100, throughputTolPct))
	}
	ratchet("events_fired", float64(old.Throughput.EventsFired), float64(cur.Throughput.EventsFired))
	ratchet("allocs_per_mcycle", old.Throughput.AllocsPerMcycle, cur.Throughput.AllocsPerMcycle)
	ratchet("bytes_per_mcycle", old.Throughput.BytesPerMcycle, cur.Throughput.BytesPerMcycle)

	// Per-component event counts are deterministic, so they compare
	// exactly, like sim_cycles. A pre-schema-3 baseline carries no
	// host_attribution section; skip rather than compare against an empty
	// map (the schema mismatch above already flags it).
	if len(old.Attribution.EventCounts) > 0 {
		var comps []string
		for name := range old.Attribution.EventCounts {
			comps = append(comps, name)
		}
		sort.Strings(comps)
		for _, name := range comps {
			ov := old.Attribution.EventCounts[name]
			nv, ok := cur.Attribution.EventCounts[name]
			if !ok {
				problems = append(problems, fmt.Sprintf("host_attribution.event_counts.%s missing from current report", name))
				continue
			}
			if ov != nv {
				problems = append(problems, fmt.Sprintf(
					"REGRESSION host_attribution.event_counts.%s: baseline %d, current %d (deterministic; must match exactly)",
					name, ov, nv))
			}
		}
		for name := range cur.Attribution.EventCounts {
			if _, ok := old.Attribution.EventCounts[name]; !ok {
				problems = append(problems, fmt.Sprintf("host_attribution.event_counts.%s absent from baseline", name))
			}
		}
	}
	return problems
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prosper-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run the small pinned suite (the committed baseline's suite)")
	out := fs.String("out", "", "write the JSON report to FILE (default stdout)")
	comparePath := fs.String("compare", "", "compare deterministic metrics against a previous report; non-zero exit on drift")
	tolerance := fs.Float64("tolerance", 0, "allowed per-metric drift for -compare, in percent")
	throughputTol := fs.Float64("throughput-tolerance", 20, "allowed host-throughput regression for -compare, in percent (improvements always pass)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent runs (results identical for any value)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the suite to FILE (feed to prosper-prof)")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to FILE after the suite (preceded by runtime.GC)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "prosper-bench: unexpected arguments %v\n", fs.Args())
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "prosper-bench:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "prosper-bench:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	rep := runSuite(*quick, *parallel)

	if *cpuprofile != "" {
		pprof.StopCPUProfile() // flush before any compare exit; the deferred stop becomes a no-op
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, "prosper-bench:", err)
			return 2
		}
		runtime.GC() // heap profile reflects live data, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "prosper-bench:", err)
			return 2
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "prosper-bench:", err)
			return 2
		}
	}

	if *comparePath != "" {
		raw, err := os.ReadFile(*comparePath)
		if err != nil {
			fmt.Fprintln(stderr, "prosper-bench:", err)
			return 2
		}
		var old report
		if err := json.Unmarshal(raw, &old); err != nil {
			fmt.Fprintf(stderr, "prosper-bench: parsing %s: %v\n", *comparePath, err)
			return 2
		}
		problems := compare(old, rep, *tolerance, *throughputTol)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(stdout, p)
			}
			fmt.Fprintf(stdout, "prosper-bench: %d deterministic metric(s) drifted from %s\n", len(problems), *comparePath)
			return 1
		}
		fmt.Fprintf(stdout, "prosper-bench: deterministic metrics match %s (tolerance %.2f%%)\n", *comparePath, *tolerance)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "prosper-bench:", err)
		return 2
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(stderr, "prosper-bench:", err)
			return 2
		}
	} else if *comparePath == "" {
		stdout.Write(enc)
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

package prosper

// One benchmark per table and figure of the paper (DESIGN.md §5). Each
// bench runs the corresponding experiment harness at a reduced scale and
// reports the figure's headline metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation.

import (
	"testing"

	"prosper/internal/experiments"
	"prosper/internal/sim"
)

// benchScale keeps benchmark iterations affordable while exercising the
// full machine.
func benchScale() experiments.Scale {
	s := experiments.TestScale()
	return s
}

// perfBenchScale matches the interval the Fig 8/9 comparisons need to
// amortize per-checkpoint fixed costs.
func perfBenchScale() experiments.Scale {
	s := experiments.TestScale()
	s.Interval = 300 * sim.Microsecond
	s.Checkpoints = 2
	s.Warmup = 50 * sim.Microsecond
	return s
}

func BenchmarkFig1StackFraction(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig1(benchScale())
		frac = rows[0].StackReads + rows[0].StackWrites
	}
	b.ReportMetric(frac, "gapbs_stack_frac")
}

func BenchmarkFig2BeyondSP(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig2(benchScale())
		frac = res.AvgBeyondSPFrac
	}
	b.ReportMetric(frac, "ycsb_beyond_sp_frac")
}

func BenchmarkFig3SPAwareness(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig3(benchScale())
		// Average SP-awareness improvement across all mechanisms/apps.
		byKey := map[string]float64{}
		for _, r := range rows {
			key := r.Benchmark + "/" + r.Mechanism
			if r.SPAware {
				byKey[key+"/a"] = r.Normalized
			} else {
				byKey[key+"/u"] = r.Normalized
			}
		}
		sum, n := 0.0, 0
		for _, r := range rows {
			if r.SPAware {
				continue
			}
			key := r.Benchmark + "/" + r.Mechanism
			sum += 1 - byKey[key+"/a"]/byKey[key+"/u"]
			n++
		}
		improvement = sum / float64(n)
	}
	b.ReportMetric(improvement, "mean_sp_aware_gain")
}

func BenchmarkFig4CopySize(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig4(benchScale())
		for _, r := range rows {
			if r.Benchmark == "gapbs_pr" {
				gap = r.ReductionRatio
			}
		}
	}
	b.ReportMetric(gap, "gapbs_page_vs_8B_x")
}

func BenchmarkFig8StackPersistence(b *testing.B) {
	var prosperNorm, sspNorm float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig8(perfBenchScale())
		for _, r := range rows {
			if r.Benchmark == "ycsb_mem" && r.Mechanism == "prosper" {
				prosperNorm = r.Normalized
			}
			if r.Benchmark == "ycsb_mem" && r.Mechanism == "ssp-10us" {
				sspNorm = r.Normalized
			}
		}
	}
	b.ReportMetric(prosperNorm, "ycsb_prosper_norm")
	b.ReportMetric(sspNorm, "ycsb_ssp10us_norm")
}

func BenchmarkFig9MemoryPersistence(b *testing.B) {
	var all, combo float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig9(perfBenchScale())
		for _, r := range rows {
			if r.Benchmark == "ycsb_mem" && r.SSPInterval == "10us" {
				switch r.Combination {
				case "ssp":
					all = r.Normalized
				case "ssp+prosper":
					combo = r.Normalized
				}
			}
		}
	}
	b.ReportMetric(all/combo, "ycsb_overhead_reduction_x")
}

func BenchmarkFig10Granularity(b *testing.B) {
	var sparseReduction float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig10(benchScale())
		var page, fine float64
		for _, r := range rows {
			if r.Benchmark == "sparse" && r.Granularity == "page" {
				page = r.MeanBytes
			}
			if r.Benchmark == "sparse" && r.Granularity == "8B" {
				fine = r.MeanBytes
			}
		}
		if fine > 0 {
			sparseReduction = page / fine
		}
	}
	b.ReportMetric(sparseReduction, "sparse_size_reduction_x")
}

func BenchmarkFig11Interval(b *testing.B) {
	var rec16 float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig11(benchScale())
		for _, r := range rows {
			if r.Benchmark == "rec-16" && r.IntervalName == "10ms" {
				rec16 = r.MeanBytes
			}
		}
	}
	b.ReportMetric(rec16, "rec16_ckpt_bytes")
}

func BenchmarkFig12TrackingOverhead(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig12(benchScale())
		worst = 1.0
		for _, r := range rows {
			if r.Speedup < worst {
				worst = r.Speedup
			}
		}
	}
	b.ReportMetric(worst, "worst_tracking_speedup")
}

func BenchmarkFig13HwmLwm(b *testing.B) {
	var ssspHwm8, ssspHwm32 float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig13(benchScale())
		for _, r := range rows {
			if r.Benchmark == "g500_sssp" && r.Param == "hwm" {
				if r.Value == 8 {
					ssspHwm8 = float64(r.BitmapStores)
				}
				if r.Value == 32 {
					ssspHwm32 = float64(r.BitmapStores)
				}
			}
		}
	}
	b.ReportMetric(ssspHwm8, "sssp_stores_hwm8")
	b.ReportMetric(ssspHwm32, "sssp_stores_hwm32")
}

func BenchmarkContextSwitchOverhead(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.ContextSwitch(benchScale())
		mean = res.MeanTotal
	}
	b.ReportMetric(mean, "cycles_per_switch")
}

func BenchmarkEnergyModel(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rep, _ := experiments.Energy(benchScale())
		total = rep.TotalNJ
	}
	b.ReportMetric(total, "total_nJ")
}

func BenchmarkAblationAllocPolicy(b *testing.B) {
	var accLoads, luLoads float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Ablation(benchScale())
		for _, r := range rows {
			if r.Benchmark == "mcf" {
				if r.Policy == "accumulate-apply" {
					accLoads = float64(r.BitmapLoads)
				} else {
					luLoads = float64(r.BitmapLoads)
				}
			}
		}
	}
	b.ReportMetric(accLoads, "mcf_loads_accumulate")
	b.ReportMetric(luLoads, "mcf_loads_loadupdate")
}

// BenchmarkEndToEndCheckpoint measures a full process checkpoint through
// the public API (not a paper figure; a library-level throughput number).
func BenchmarkEndToEndCheckpoint(b *testing.B) {
	sys := NewSystem(SystemConfig{Cores: 1})
	proc := sys.Launch(ProcessSpec{
		Name:  "bench",
		Stack: MechProsper,
		Seed:  5,
	}, NewRandomWorkload())
	sys.Run(100 * Microsecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(20 * Microsecond)
		proc.Checkpoint(sys)
	}
	b.StopTimer()
	proc.Shutdown()
	b.ReportMetric(float64(proc.CheckpointedBytes())/float64(proc.Checkpoints()), "bytes/checkpoint")
}

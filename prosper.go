// Package prosper is the public facade of the Prosper reproduction: a
// hardware–OS co-designed checkpoint mechanism for program-stack
// persistence in hybrid DRAM+NVM memory systems (HPCA 2024).
//
// The facade wraps the full simulated system — machine (cores, caches,
// hybrid memory), kernel (processes, scheduler, checkpoint engine), the
// Prosper dirty tracker, and the baseline persistence mechanisms — behind
// a small API:
//
//	sys := prosper.NewSystem(prosper.SystemConfig{Cores: 2})
//	p := sys.Launch(prosper.ProcessSpec{
//	        Name:               "svc",
//	        Stack:              prosper.MechProsper,
//	        CheckpointInterval: 200 * prosper.Microsecond,
//	}, workloadProgram)
//	sys.Run(5 * prosper.Millisecond)
//	sys.Crash()                  // power failure: DRAM lost, NVM survives
//	sys2 := sys.Reboot()
//	sys2.Recover(spec, prog2)    // resume from the last checkpoint
//
// Deeper control (custom mechanisms, tracker parameters, raw machine
// access) is available through the internal packages re-exported fields.
package prosper

import (
	"fmt"

	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/prosper"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// Re-exported time units (cycles at the simulated 3 GHz clock).
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Time is a simulated duration/timestamp in cycles.
type Time = sim.Time

// Mechanism selects a persistence mechanism for a memory segment.
type Mechanism int

// Available mechanisms.
const (
	MechNone Mechanism = iota
	// MechProsper is the paper's contribution: DRAM-resident segment,
	// hardware sub-page dirty tracking, two-step checkpoint to NVM.
	MechProsper
	// MechDirtybit is the page-granularity baseline (LDT-style PTE
	// dirty bits).
	MechDirtybit
	// MechWriteProtect tracks via write-protection faults (SoftDirty).
	MechWriteProtect
	// MechRomulus keeps twin copies in NVM with hardware-logged stack
	// modifications.
	MechRomulus
	// MechSSP is sub-page shadow paging with a background consolidation
	// thread (10 µs default invocation interval).
	MechSSP
	// MechProsperAdaptive is Prosper with OS-driven dynamic tracking
	// granularity (the paper's stated future work): dense intervals
	// escalate the granularity, sparse intervals refine it.
	MechProsperAdaptive
)

func (m Mechanism) String() string {
	switch m {
	case MechProsper:
		return "prosper"
	case MechDirtybit:
		return "dirtybit"
	case MechWriteProtect:
		return "writeprotect"
	case MechRomulus:
		return "romulus"
	case MechSSP:
		return "ssp"
	case MechProsperAdaptive:
		return "prosper-adaptive"
	default:
		return "none"
	}
}

func (m Mechanism) factory(gran uint64, consolidation Time) persist.Factory {
	switch m {
	case MechProsper:
		return persist.NewProsper(persist.ProsperConfig{Granularity: gran})
	case MechDirtybit:
		return persist.NewDirtybit(persist.DirtybitConfig{})
	case MechWriteProtect:
		return persist.NewWriteProtect(persist.DirtybitConfig{})
	case MechRomulus:
		return persist.NewRomulus()
	case MechSSP:
		return persist.NewSSP(persist.SSPConfig{ConsolidationInterval: consolidation})
	case MechProsperAdaptive:
		return persist.NewAdaptiveProsper(persist.AdaptiveConfig{
			Prosper: persist.ProsperConfig{Granularity: gran},
			MinGran: gran,
		})
	default:
		return nil
	}
}

// SystemConfig sizes a simulated persistent system.
type SystemConfig struct {
	Cores int
	// TrackerTableSize, HWM, LWM override the Prosper tracker's lookup
	// table parameters (defaults: 16 / 24 / 8, the paper's settings).
	TrackerTableSize int
	TrackerHWM       int
	TrackerLWM       int
}

// System is one booted machine+kernel instance.
type System struct {
	cfg  SystemConfig
	kern *kernel.Kernel
}

// NewSystem boots a fresh system with empty memory.
func NewSystem(cfg SystemConfig) *System {
	kcfg := kernel.Config{
		Machine: machine.Config{Cores: cfg.Cores},
		Quantum: 100 * Microsecond,
		TrackerCfg: prosper.Config{
			TableSize: cfg.TrackerTableSize,
			HWM:       cfg.TrackerHWM,
			LWM:       cfg.TrackerLWM,
		},
	}
	return &System{cfg: cfg, kern: kernel.New(kcfg)}
}

// Kernel exposes the underlying kernel for advanced use.
func (s *System) Kernel() *kernel.Kernel { return s.kern }

// Now returns the current simulated time.
func (s *System) Now() Time { return s.kern.Eng.Now() }

// Run advances the simulation by d.
func (s *System) Run(d Time) { s.kern.RunFor(d) }

// RunUntilDone runs until all processes finish or the deadline elapses.
func (s *System) RunUntilDone(deadline Time) bool { return s.kern.RunUntilDone(deadline) }

// Crash models a power failure: caches and DRAM are lost; NVM survives.
// After Crash, use Reboot to construct the successor system.
func (s *System) Crash() { s.kern.Mach.Crash() }

// Reboot builds a fresh system over the surviving NVM contents.
func (s *System) Reboot() *System {
	kcfg := kernel.Config{
		Machine: machine.Config{Cores: s.cfg.Cores, Storage: s.kern.Mach.Storage},
		Quantum: 100 * Microsecond,
		TrackerCfg: prosper.Config{
			TableSize: s.cfg.TrackerTableSize,
			HWM:       s.cfg.TrackerHWM,
			LWM:       s.cfg.TrackerLWM,
		},
	}
	return &System{cfg: s.cfg, kern: kernel.New(kcfg)}
}

// ProcessSpec describes a process to launch or recover.
type ProcessSpec struct {
	Name string
	// Stack selects the per-thread stack persistence mechanism; Heap the
	// process-wide heap mechanism.
	Stack Mechanism
	Heap  Mechanism
	// Granularity is Prosper's tracking granularity in bytes (default 8).
	Granularity uint64
	// SSPConsolidation is the SSP background-thread invocation interval
	// (default 10 µs).
	SSPConsolidation Time
	// CheckpointInterval enables periodic checkpoints when non-zero.
	CheckpointInterval Time
	// StackReserve / HeapSize size the segments (defaults 1 MiB / 64 MiB).
	StackReserve uint64
	HeapSize     uint64
	Seed         uint64
}

func (spec ProcessSpec) kernelConfig() kernel.ProcessConfig {
	cons := spec.SSPConsolidation
	if cons == 0 {
		cons = 10 * Microsecond
	}
	return kernel.ProcessConfig{
		Name:               spec.Name,
		StackMech:          spec.Stack.factory(spec.Granularity, cons),
		HeapMech:           spec.Heap.factory(spec.Granularity, cons),
		StackReserve:       spec.StackReserve,
		HeapSize:           spec.HeapSize,
		CheckpointInterval: spec.CheckpointInterval,
		Seed:               spec.Seed,
	}
}

// Process is a handle on a launched or recovered process.
type Process struct {
	inner *kernel.Process
}

// Launch spawns a process running one thread per workload.
func (s *System) Launch(spec ProcessSpec, workloads ...Workload) *Process {
	progs := make([]workload.Program, len(workloads))
	for i, w := range workloads {
		progs[i] = w
	}
	return &Process{inner: s.kern.Spawn(spec.kernelConfig(), progs...)}
}

// Recover rebuilds a crashed process from its NVM checkpoint area and
// resumes it; the spec must match the original launch, and one fresh
// workload per original thread must be supplied. It blocks (in simulated
// time) until recovery completes.
func (s *System) Recover(spec ProcessSpec, workloads ...Workload) (*Process, error) {
	progs := make([]workload.Program, len(workloads))
	for i, w := range workloads {
		progs[i] = w
	}
	var recovered *kernel.Process
	err := s.kern.RecoverProcess(spec.kernelConfig(), progs, func(p *kernel.Process) { recovered = p })
	if err != nil {
		return nil, err
	}
	s.kern.Eng.RunWhile(func() bool { return recovered == nil })
	if recovered == nil {
		return nil, fmt.Errorf("prosper: recovery did not complete")
	}
	return &Process{inner: recovered}, nil
}

// Checkpoint takes one synchronous checkpoint of the process.
func (p *Process) Checkpoint(s *System) {
	done := false
	p.inner.Checkpoint(func() { done = true })
	s.kern.Eng.RunWhile(func() bool { return !done })
}

// Done reports whether every thread has finished.
func (p *Process) Done() bool { return p.inner.Done() }

// Checkpoints returns how many checkpoints have committed.
func (p *Process) Checkpoints() uint64 { return p.inner.CheckpointCount }

// CheckpointedBytes returns the cumulative persisted payload.
func (p *Process) CheckpointedBytes() uint64 { return p.inner.CheckpointBytes }

// UserIPC returns the process's aggregate user-mode IPC.
func (p *Process) UserIPC() float64 { return p.inner.UserIPC() }

// Shutdown stops the process's tickers and generators (end of run).
func (p *Process) Shutdown() { p.inner.Shutdown() }

// Inner exposes the kernel-level process for advanced use.
func (p *Process) Inner() *kernel.Process { return p.inner }

// Workload is a runnable instruction stream (see the workloads below and
// internal/workload for the full set).
type Workload = workload.Program

// NewCounterWorkload returns a finite, checkpoint-restorable counter
// workload (the quickstart and crash demos use it).
func NewCounterWorkload(iterations int) *workload.CounterProgram {
	return workload.NewCounter(iterations)
}

// Workload constructors for the paper's benchmarks.

// NewGapbsPR models PageRank from GAPBS (stack-op heavy).
func NewGapbsPR() Workload { return workload.NewApp(workload.GapbsPR()) }

// NewG500SSSP models SSSP from Graph500.
func NewG500SSSP() Workload { return workload.NewApp(workload.G500SSSP()) }

// NewYcsbMem models Memcached under YCSB (call-churn heavy).
func NewYcsbMem() Workload { return workload.NewApp(workload.YcsbMem()) }

// NewRandomWorkload / NewStreamWorkload / NewSparseWorkload /
// NewQuicksortWorkload / NewRecursiveWorkload construct the Table III
// micro-benchmarks.
func NewRandomWorkload() Workload { return workload.NewRandom(workload.MicroParams{}) }

// NewStreamWorkload writes the whole stack array sequentially.
func NewStreamWorkload() Workload { return workload.NewStream(workload.MicroParams{}) }

// NewSparseWorkload dirties 4 bytes per stack page.
func NewSparseWorkload() Workload { return workload.NewSparse(workload.MicroParams{}) }

// NewQuicksortWorkload sorts a heap array with real recursion.
func NewQuicksortWorkload(elems int) Workload { return workload.NewQuicksort(elems) }

// NewRecursiveWorkload recurses to the given depth repeatedly.
func NewRecursiveWorkload(depth int) Workload { return workload.NewRecursive(depth) }

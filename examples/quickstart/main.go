// Quickstart: the smallest end-to-end use of the prosper library — build
// a persistent machine, run a workload with Prosper stack checkpoints,
// crash it, and recover.
package main

import (
	"fmt"
	"io"
	"os"

	"prosper"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	// A persistent system with Prosper protecting thread stacks,
	// checkpointing every 200 simulated microseconds.
	sys := prosper.NewSystem(prosper.SystemConfig{Cores: 1})

	counter := prosper.NewCounterWorkload(80_000)
	proc := sys.Launch(prosper.ProcessSpec{
		Name:               "quickstart",
		Stack:              prosper.MechProsper,
		CheckpointInterval: 200 * prosper.Microsecond,
	}, counter)

	// Run a while, then simulate a power failure.
	sys.Run(1200 * prosper.Microsecond)
	fmt.Fprintf(w, "progress before crash: %d iterations, %d checkpoints, %d bytes persisted\n",
		counter.Progress(), proc.Checkpoints(), proc.CheckpointedBytes())

	sys.Crash()

	// Reboot on the surviving NVM and recover the process.
	sys2 := sys.Reboot()
	counter2 := prosper.NewCounterWorkload(80_000)
	proc2, err := sys2.Recover(prosper.ProcessSpec{
		Name:               "quickstart",
		Stack:              prosper.MechProsper,
		CheckpointInterval: 200 * prosper.Microsecond,
	}, counter2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "recovered at iteration %d; resuming...\n", counter2.Progress())

	if !sys2.RunUntilDone(10 * prosper.Second) {
		return fmt.Errorf("recovered process did not finish")
	}
	fmt.Fprintf(w, "done: %d iterations completed across one power failure\n", counter2.Progress())
	_ = proc2
	return nil
}

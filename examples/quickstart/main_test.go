package main

import (
	"bytes"
	"strings"
	"testing"
)

// The quickstart must survive its power failure end to end: some progress
// before the crash, recovery to a committed iteration, and completion of
// all 80 000 iterations afterwards.
func TestQuickstartSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("quickstart failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"progress before crash:",
		"recovered at iteration",
		"done: 80000 iterations completed across one power failure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// graphrank: a PageRank-style graph-analytics scenario (Gapbs_pr) — the
// paper's most stack-intensive workload (~70% of memory operations hit
// the stack). The example sweeps Prosper's tracking granularity from 8 to
// 128 bytes and reports checkpoint size and time per granularity against
// the page-level Dirtybit baseline, the Figure 10 experiment on a real
// application model.
package main

import (
	"fmt"
	"io"
	"os"

	"prosper"
)

func measure(w io.Writer, name string, stack prosper.Mechanism, gran uint64) (bytesPerCkpt float64) {
	sys := prosper.NewSystem(prosper.SystemConfig{Cores: 1})
	proc := sys.Launch(prosper.ProcessSpec{
		Name:               "pr",
		Stack:              stack,
		Granularity:        gran,
		CheckpointInterval: 200 * prosper.Microsecond,
		HeapSize:           8 << 20,
		Seed:               3,
	}, prosper.NewGapbsPR())
	sys.Run(1200 * prosper.Microsecond)
	ckpts := proc.Checkpoints()
	if ckpts == 0 {
		proc.Shutdown()
		return 0
	}
	mean := float64(proc.CheckpointedBytes()) / float64(ckpts)
	fmt.Fprintf(w, "%-18s %10.0f bytes/checkpoint  (%d checkpoints)\n", name, mean, ckpts)
	proc.Shutdown()
	return mean
}

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphrank:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	fmt.Fprintln(w, "graphrank: PageRank-style stack checkpointing, granularity sweep")
	fmt.Fprintln(w)
	page := measure(w, "dirtybit (4KiB)", prosper.MechDirtybit, 0)
	var best float64
	for _, gran := range []uint64{8, 16, 32, 64, 128} {
		m := measure(w, fmt.Sprintf("prosper %3dB", gran), prosper.MechProsper, gran)
		if gran == 8 {
			best = m
		}
	}
	if best > 0 && page > 0 {
		fmt.Fprintf(w, "\n8-byte tracking shrinks PageRank stack checkpoints %.0fx vs page tracking\n", page/best)
	}
	return nil
}

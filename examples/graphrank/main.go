// graphrank: a PageRank-style graph-analytics scenario (Gapbs_pr) — the
// paper's most stack-intensive workload (~70% of memory operations hit
// the stack). The example sweeps Prosper's tracking granularity from 8 to
// 128 bytes and reports checkpoint size and time per granularity against
// the page-level Dirtybit baseline, the Figure 10 experiment on a real
// application model.
package main

import (
	"fmt"

	"prosper"
)

func measure(name string, stack prosper.Mechanism, gran uint64) (bytesPerCkpt float64) {
	sys := prosper.NewSystem(prosper.SystemConfig{Cores: 1})
	proc := sys.Launch(prosper.ProcessSpec{
		Name:               "pr",
		Stack:              stack,
		Granularity:        gran,
		CheckpointInterval: 200 * prosper.Microsecond,
		HeapSize:           8 << 20,
		Seed:               3,
	}, prosper.NewGapbsPR())
	sys.Run(1200 * prosper.Microsecond)
	ckpts := proc.Checkpoints()
	if ckpts == 0 {
		proc.Shutdown()
		return 0
	}
	mean := float64(proc.CheckpointedBytes()) / float64(ckpts)
	fmt.Printf("%-18s %10.0f bytes/checkpoint  (%d checkpoints)\n", name, mean, ckpts)
	proc.Shutdown()
	return mean
}

func main() {
	fmt.Println("graphrank: PageRank-style stack checkpointing, granularity sweep")
	fmt.Println()
	page := measure("dirtybit (4KiB)", prosper.MechDirtybit, 0)
	var best float64
	for _, gran := range []uint64{8, 16, 32, 64, 128} {
		m := measure(fmt.Sprintf("prosper %3dB", gran), prosper.MechProsper, gran)
		if gran == 8 {
			best = m
		}
	}
	if best > 0 && page > 0 {
		fmt.Printf("\n8-byte tracking shrinks PageRank stack checkpoints %.0fx vs page tracking\n", page/best)
	}
}

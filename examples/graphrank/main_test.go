package main

import (
	"bytes"
	"strings"
	"testing"
)

// The granularity sweep must produce a line per configuration and find
// fine-grained tracking strictly smaller than page tracking.
func TestGraphrankSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("graphrank failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"dirtybit (4KiB)",
		"prosper   8B",
		"prosper 128B",
		"shrinks PageRank stack checkpoints",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// multithread: per-thread stack tracking with context switches. Two
// threads share one core; the kernel saves and restores the Prosper
// tracker state (flush + quiesce + MSR reload) at every switch — the
// Section V context-switch study (paper: ~870 cycles per switch). The
// example also shows each thread's stack persisting independently.
package main

import (
	"fmt"
	"io"
	"os"

	"prosper"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "multithread:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	fmt.Fprintln(w, "multithread: two threads, one core, per-thread Prosper tracking")
	sys := prosper.NewSystem(prosper.SystemConfig{Cores: 1})
	proc := sys.Launch(prosper.ProcessSpec{
		Name:               "mt",
		Stack:              prosper.MechProsper,
		CheckpointInterval: 300 * prosper.Microsecond,
		Seed:               11,
	}, prosper.NewRandomWorkload(), prosper.NewRandomWorkload())

	sys.Run(2000 * prosper.Microsecond)

	k := sys.Kernel()
	switches := k.Counters.Get("kernel.context_switches")
	in := k.Counters.Get("kernel.ctxswitch_in_cycles")
	out := k.Counters.Get("kernel.ctxswitch_out_cycles")
	fmt.Fprintf(w, "context switches: %d\n", switches)
	if switches > 0 {
		fmt.Fprintf(w, "tracker save/restore overhead: %.0f cycles per switch (paper: ~870)\n",
			float64(in+out)/float64(switches))
	}
	fmt.Fprintf(w, "checkpoints: %d, persisted %d bytes across both stacks\n",
		proc.Checkpoints(), proc.CheckpointedBytes())

	for i, th := range proc.Inner().Threads {
		fmt.Fprintf(w, "thread %d: %d user ops, stack segment [%#x, %#x)\n",
			i, th.UserOps, th.StackSeg.Lo, th.StackSeg.Hi)
	}
	proc.Shutdown()
	return nil
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// Two threads on one core must actually context-switch, and both stacks
// must be tracked and reported.
func TestMultithreadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multithread example simulates 2 ms of two-thread contention")
	}
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("multithread failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"context switches:",
		"thread 0:",
		"thread 1:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "context switches: 0\n") {
		t.Errorf("two threads on one core never context-switched:\n%s", out)
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// The kvstore scenario must produce both throughput lines and carry the
// service across the injected power failure.
func TestKvstoreSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("kvstore failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"SSP heap + SSP stack",
		"SSP heap + Prosper",
		"service completed all 120000 requests across the failure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

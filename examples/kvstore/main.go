// kvstore: a YCSB/Memcached-style scenario — the workload the paper's
// introduction motivates. A key-value service model (Ycsb_mem) runs with
// full memory-state persistence: SSP protects the heap while Prosper
// protects the stack, the combination Figure 9 shows winning. The example
// compares it against SSP-everywhere on the same workload and prints the
// throughput cost of each, then crashes and recovers the winning setup.
package main

import (
	"fmt"
	"io"
	"os"

	"prosper"
)

func measure(w io.Writer, name string, stack prosper.Mechanism) (opsPerMs float64) {
	sys := prosper.NewSystem(prosper.SystemConfig{Cores: 1})
	proc := sys.Launch(prosper.ProcessSpec{
		Name:               "kv",
		Stack:              stack,
		Heap:               prosper.MechSSP,
		SSPConsolidation:   2 * prosper.Microsecond,
		CheckpointInterval: 200 * prosper.Microsecond,
		HeapSize:           8 << 20,
		Seed:               7,
	}, prosper.NewYcsbMem())
	const window = 1000 * prosper.Microsecond
	sys.Run(window)
	ipc := proc.UserIPC()
	fmt.Fprintf(w, "%-22s checkpoints=%2d persisted=%6d B  userIPC=%.4f\n",
		name, proc.Checkpoints(), proc.CheckpointedBytes(), ipc)
	proc.Shutdown()
	return ipc
}

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	fmt.Fprintln(w, "kvstore: YCSB-style service with whole-memory persistence")
	fmt.Fprintln(w)
	sspIPC := measure(w, "SSP heap + SSP stack", prosper.MechSSP)
	proIPC := measure(w, "SSP heap + Prosper", prosper.MechProsper)
	if sspIPC > 0 {
		fmt.Fprintf(w, "\nProsper-stack combination delivers %.2fx the SSP-everywhere IPC\n", proIPC/sspIPC)
	}

	// The service must also survive power failures end to end.
	fmt.Fprintln(w, "\ncrash/recovery check with the Prosper-stack combination:")
	sys := prosper.NewSystem(prosper.SystemConfig{Cores: 1})
	counter := prosper.NewCounterWorkload(120_000)
	sys.Launch(prosper.ProcessSpec{
		Name:               "kv",
		Stack:              prosper.MechProsper,
		CheckpointInterval: 150 * prosper.Microsecond,
	}, counter)
	sys.Run(900 * prosper.Microsecond)
	before := counter.Progress()
	sys.Crash()
	sys2 := sys.Reboot()
	counter2 := prosper.NewCounterWorkload(120_000)
	if _, err := sys2.Recover(prosper.ProcessSpec{
		Name:               "kv",
		Stack:              prosper.MechProsper,
		CheckpointInterval: 150 * prosper.Microsecond,
	}, counter2); err != nil {
		return err
	}
	fmt.Fprintf(w, "crash at request %d; recovered to request %d; resuming...\n", before, counter2.Progress())
	if !sys2.RunUntilDone(10 * prosper.Second) {
		return fmt.Errorf("recovered service did not finish")
	}
	fmt.Fprintf(w, "service completed all %d requests across the failure\n", counter2.Progress())
	return nil
}

package machine

import (
	"testing"
)

// These tests pin the allocation cost of the simulator's hot access
// paths after the flat-event-core refactor: steady-state loads must not
// allocate on the Go heap, whichever level of the memory system they
// resolve in. testing.AllocsPerRun runs each body once to warm pools and
// lazily-grown queues before measuring, so the bounds here are true
// steady-state figures, not cold-start ones.

// allocEnv builds a machine, pre-faults the page under test so the TLB
// and page tables are warm, and returns a reusable read-completion
// callback (bound once, like the kernel's per-thread callbacks).
func allocEnv(t *testing.T) (m *Machine, core *Core, readDone func([]byte)) {
	t.Helper()
	m, core, _ = testEnv(t)
	core.Write(addrUnderTest, []byte{1}, nil)
	m.Eng.Run()
	return m, core, func([]byte) {}
}

const addrUnderTest = uint64(0x10000)

func TestAllocsL1Hit(t *testing.T) {
	m, core, readDone := allocEnv(t)
	core.Read(addrUnderTest, 8, readDone) // populate L1
	m.Eng.Run()
	allocs := testing.AllocsPerRun(200, func() {
		core.Read(addrUnderTest, 8, readDone)
		m.Eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("L1 hit load allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsL1MissL2Hit(t *testing.T) {
	m, core, readDone := allocEnv(t)
	core.Read(addrUnderTest, 8, readDone) // populate L1+L2+L3
	m.Eng.Run()
	allocs := testing.AllocsPerRun(200, func() {
		core.L1().Flush() // line is read-only clean: invalidate, no writeback
		m.Eng.Run()
		core.Read(addrUnderTest, 8, readDone)
		m.Eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("TLB hit + L1 miss -> L2 hit allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAllocsFullMissDeviceRoundTrip(t *testing.T) {
	m, core, readDone := allocEnv(t)
	core.Read(addrUnderTest, 8, readDone)
	m.Eng.Run()
	allocs := testing.AllocsPerRun(200, func() {
		core.L1().Flush()
		core.L2().Flush()
		m.Hier.L3.Flush()
		m.Eng.Run()
		core.Read(addrUnderTest, 8, readDone) // full miss: L1->L2->L3->DRAM
		m.Eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("full miss -> device round trip allocates %.1f objects/op, want 0", allocs)
	}
}

package machine

import (
	"bytes"
	"testing"
	"testing/quick"

	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/vm"
)

// testEnv wires a machine with one user address space bound to core 0 and
// a kernel-style demand-paging fault handler.
func testEnv(t *testing.T) (*Machine, *Core, *vm.AddressSpace) {
	if t != nil {
		t.Helper()
	}
	m := New(Config{Cores: 2})
	as := vm.NewAddressSpace(m.DRAMFrames, m.NVMFrames)
	if err := as.AddVMA(&vm.VMA{Lo: 0x10000, Hi: 0x100000, Kind: vm.KindHeap, Writable: true, ThreadID: -1}); err != nil {
		panic(err)
	}
	if err := as.AddVMA(&vm.VMA{Lo: 0x7000_0000, Hi: 0x7010_0000, Kind: vm.KindStack, Writable: true, GrowsDown: true, ThreadID: 0}); err != nil {
		panic(err)
	}
	core := m.Cores[0]
	core.AS = as
	core.OnFault = func(vaddr uint64, write bool) error {
		_, err := as.HandleFault(vaddr, write)
		return err
	}
	return m, core, as
}

func TestCoreWriteReadRoundTrip(t *testing.T) {
	m, core, _ := testEnv(t)
	var got []byte
	core.Write(0x10040, []byte("prosper"), func() {
		core.Read(0x10040, 7, func(b []byte) { got = b })
	})
	m.Eng.Run()
	if !bytes.Equal(got, []byte("prosper")) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestCoreDemandFaultCharged(t *testing.T) {
	m, core, as := testEnv(t)
	doneAt := sim.Time(-1)
	core.Write(0x20000, []byte{1}, nil)
	m.Eng.Run()
	if as.DemandFaults() != 1 {
		t.Fatalf("demand faults = %d", as.DemandFaults())
	}
	// A second access to the same page must not fault.
	start := m.Eng.Now()
	core.Write(0x20008, []byte{2}, func() { doneAt = m.Eng.Now() - start })
	m.Eng.Run()
	if as.DemandFaults() != 1 {
		t.Fatal("second access faulted")
	}
	if doneAt < 0 {
		t.Fatal("write never accepted")
	}
	if doneAt > int64(m.Cfg.PageFaultCycles) {
		t.Fatalf("warm write took %d cycles (looks like a fault)", doneAt)
	}
}

func TestCoreReadBlocksForMemory(t *testing.T) {
	m, core, _ := testEnv(t)
	var coldT sim.Time
	start := m.Eng.Now()
	core.Read(0x10000, 8, func([]byte) { coldT = m.Eng.Now() - start })
	m.Eng.Run()
	// Cold read: fault (3000) + walks + caches + DRAM; must exceed DRAM latency.
	if coldT < 135 {
		t.Fatalf("cold read too fast: %d", coldT)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	m, core, _ := testEnv(t)
	// Prime the page so stores don't fault.
	core.Write(0x10000, []byte{0}, nil)
	m.Eng.Run()
	accepted := 0
	// Burst of stores to distinct lines in one page: more than the buffer.
	for i := 0; i < 200; i++ {
		addr := 0x10000 + uint64(i%60)*mem.LineSize
		core.Write(addr, []byte{byte(i)}, func() { accepted++ })
	}
	if core.Counters.Get("core.store_buffer_stalls") == 0 {
		t.Fatal("expected store buffer stalls")
	}
	m.Eng.Run()
	if accepted != 200 {
		t.Fatalf("accepted = %d", accepted)
	}
}

func TestDirtySetWalkOnCleanPage(t *testing.T) {
	m, core, as := testEnv(t)
	core.Write(0x10000, []byte{1}, nil)
	m.Eng.Run()
	// Clear the dirty bit (tracking interval start) and the TLB's cached
	// dirty state.
	as.PT.ClearFlagsRange(0x10000, 0x20000, vm.FlagDirty)
	core.TLB.Flush()
	walksBefore := core.Counters.Get("core.page_walks")
	core.Write(0x10000, []byte{2}, nil)
	m.Eng.Run()
	if !as.PT.Lookup(0x10000).Dirty() {
		t.Fatal("dirty bit not re-set by walker")
	}
	if core.Counters.Get("core.page_walks") == walksBefore {
		t.Fatal("no walk charged for dirty-bit update")
	}
	// Subsequent stores to the same page: no more walks.
	walksAfter := core.Counters.Get("core.page_walks")
	core.Write(0x10008, []byte{3}, nil)
	m.Eng.Run()
	if core.Counters.Get("core.page_walks") != walksAfter {
		t.Fatal("store to already-dirty page charged a walk")
	}
}

func TestStackGrowthThroughCore(t *testing.T) {
	m, core, as := testEnv(t)
	sp := uint64(0x7000_0000) - 64
	core.Write(sp, []byte{42}, nil)
	m.Eng.Run()
	stack := as.StackVMA(0)
	if stack.Lo > sp {
		t.Fatalf("stack did not grow: lo=%#x sp=%#x", stack.Lo, sp)
	}
}

func TestObserverSeesVirtualAddresses(t *testing.T) {
	m, core, _ := testEnv(t)
	var seen []uint64
	core.Observer = observerFunc(func(vaddr uint64, size int) { seen = append(seen, vaddr) })
	core.Write(0x10010, []byte{1, 2}, nil)
	core.Write(0x7000_0000-8, make([]byte, 8), nil)
	m.Eng.Run()
	if len(seen) != 2 || seen[0] != 0x10010 || seen[1] != 0x7000_0000-8 {
		t.Fatalf("observer saw %#v", seen)
	}
}

type observerFunc func(uint64, int)

func (f observerFunc) ObserveStore(vaddr uint64, size int) { f(vaddr, size) }

func TestStoreHookReceivesPhysical(t *testing.T) {
	m, core, as := testEnv(t)
	var gotV, gotP uint64
	core.StoreHook = func(vaddr, paddr uint64, size int) sim.Time { gotV, gotP = vaddr, paddr; return 0 }
	core.Write(0x10020, []byte{9}, nil)
	m.Eng.Run()
	paddr, _, _ := as.PT.Translate(0x10020)
	if gotV != 0x10020 || gotP != paddr {
		t.Fatalf("hook got %#x/%#x want %#x/%#x", gotV, gotP, 0x10020, paddr)
	}
}

func TestCrossLineWriteSplits(t *testing.T) {
	m, core, _ := testEnv(t)
	addr := uint64(0x10000 + mem.LineSize - 4)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	done := false
	core.Write(addr, data, func() { done = true })
	m.Eng.Run()
	if !done {
		t.Fatal("cross-line write never completed")
	}
	var got []byte
	core.Read(addr, 8, func(b []byte) { got = b })
	m.Eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-line data = %v", got)
	}
}

func TestSegmentationAtLineBoundaries(t *testing.T) {
	m, core, _ := testEnv(t)
	type seg struct {
		va uint64
		n  int
	}
	var segs []seg

	// Pre-touch the page so the segments below translate via TLB hits;
	// a cold first touch faults on the leading segment and reorders it
	// behind the trailing one (fault retry costs PageFaultCycles).
	core.Write(0x10000, []byte{0}, nil)
	m.Eng.Run()

	core.StoreHook = func(va, _ uint64, n int) sim.Time {
		segs = append(segs, seg{va, n})
		return 0
	}

	core.Write(0x10000+60, make([]byte, 10), nil)
	m.Eng.Run()
	if len(segs) != 2 || segs[0].n != 4 || segs[1].n != 6 || segs[1].va != 0x10000+64 {
		t.Fatalf("segs = %+v", segs)
	}

	segs = nil
	core.Write(0x10000+64, make([]byte, 64), nil)
	m.Eng.Run()
	if len(segs) != 1 || segs[0].n != 64 {
		t.Fatalf("aligned full line segs = %+v", segs)
	}

	segs = nil
	core.Write(0x10000, nil, nil)
	m.Eng.Run()
	if segs != nil {
		t.Fatalf("empty write produced segs = %+v", segs)
	}
}

func TestDrainStores(t *testing.T) {
	m, core, _ := testEnv(t)
	core.Write(0x10000, []byte{1}, nil)
	drained := false
	m.Eng.Schedule(sim.CompOther, 1, func() { core.DrainStores(func() { drained = true }) })
	m.Eng.Run()
	if !drained {
		t.Fatal("drain never completed")
	}
	if core.storeCredits != m.Cfg.StoreBuffer {
		t.Fatalf("credits = %d after drain", core.storeCredits)
	}
}

func TestCopyPhysMovesDataAndTakesTime(t *testing.T) {
	m, _, _ := testEnv(t)
	src, dst := uint64(0x4000), mem.NVMBase+0x4000
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	m.Storage.Write(src, payload)
	var doneAt sim.Time
	m.CopyPhys(dst, src, len(payload), func() { doneAt = m.Eng.Now() })
	m.Eng.Run()
	got := make([]byte, len(payload))
	m.Storage.Read(dst, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("copy corrupted data")
	}
	// 64 lines to NVM: must cost at least one NVM write latency and more
	// than a single DRAM access.
	if doneAt < 1500 {
		t.Fatalf("4 KiB copy to NVM finished in %d cycles", doneAt)
	}
}

func TestCopyPhysZeroBytes(t *testing.T) {
	m, _, _ := testEnv(t)
	called := false
	m.CopyPhys(0x100, 0x200, 0, func() { called = true })
	m.Eng.Run()
	if !called {
		t.Fatal("done not called for empty copy")
	}
}

func TestWriteReadPhys(t *testing.T) {
	m, _, _ := testEnv(t)
	var got []byte
	m.WritePhys(mem.NVMBase+128, []byte("persist me"), func() {
		m.ReadPhys(mem.NVMBase+128, 10, func(b []byte) { got = b })
	})
	m.Eng.Run()
	if string(got) != "persist me" {
		t.Fatalf("phys round trip = %q", got)
	}
}

func TestCrashDropsDRAMKeepsNVM(t *testing.T) {
	m, core, _ := testEnv(t)
	core.Write(0x10000, []byte{7}, nil)
	m.Eng.Run()
	// A write whose timed device access completed is inside the
	// persistence domain and survives.
	m.WritePhys(mem.NVMBase+0x100, []byte{0xed, 0xfe}, nil)
	m.Eng.Run()
	// A functional-only NVM update never went through the device: it is
	// still on the volatile side of the domain and must NOT survive.
	m.Storage.WriteU64(mem.NVMBase+0x200, 0xdead)
	m.Crash()
	buf := make([]byte, 1)
	// All DRAM pages are zero after crash.
	m.Storage.Read(0x10000, buf)
	if buf[0] != 0 {
		t.Fatal("DRAM survived crash")
	}
	if got := m.Storage.ReadU64(mem.NVMBase + 0x100); got&0xffff != 0xfeed {
		t.Fatalf("durable NVM lost at crash: %#x", got)
	}
	if m.Storage.ReadU64(mem.NVMBase+0x200) != 0 {
		t.Fatal("volatile NVM write survived crash")
	}
}

// Property: arbitrary write/read sequences through the core behave like a
// flat memory (reads observe the most recent write per byte).
func TestCoreMemoryConsistencyProperty(t *testing.T) {
	f := func(ops []struct {
		Off  uint16
		Val  byte
		Load bool
	}) bool {
		m, core, _ := testEnv(nil)
		ref := make(map[uint64]byte)
		okAll := true
		base := uint64(0x10000)
		var step func(i int)
		step = func(i int) {
			if i >= len(ops) {
				return
			}
			op := ops[i]
			addr := base + uint64(op.Off)%0x8000
			if op.Load {
				core.Read(addr, 1, func(b []byte) {
					want := ref[addr]
					if b[0] != want {
						okAll = false
					}
					step(i + 1)
				})
			} else {
				ref[addr] = op.Val
				core.Write(addr, []byte{op.Val}, func() { step(i + 1) })
			}
		}
		step(0)
		m.Eng.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

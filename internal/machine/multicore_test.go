package machine

import (
	"testing"

	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/vm"
)

// twoCoreEnv binds two cores to one shared address space.
func twoCoreEnv(t *testing.T) (*Machine, *Core, *Core) {
	t.Helper()
	m := New(Config{Cores: 2})
	as := vm.NewAddressSpace(m.DRAMFrames, m.NVMFrames)
	if err := as.AddVMA(&vm.VMA{Lo: 0x10000, Hi: 0x40_0000, Kind: vm.KindHeap, Writable: true, ThreadID: -1}); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Cores {
		c := c
		c.AS = as
		c.OnFault = func(vaddr uint64, write bool) error {
			_, err := as.HandleFault(vaddr, write)
			return err
		}
	}
	return m, m.Cores[0], m.Cores[1]
}

func TestTwoCoresShareL3(t *testing.T) {
	m, c0, c1 := twoCoreEnv(t)
	// Core 0 brings a line into the shared L3 via its private L1/L2.
	done := false
	c0.Read(0x20000, 8, func([]byte) { done = true })
	m.Eng.RunWhile(func() bool { return !done })
	m.Eng.RunUntil(m.Eng.Now() + 10_000)

	// Core 1's first access: private L1/L2 miss, shared L3 hit — far
	// faster than a DRAM round trip.
	l3HitsBefore := m.Hier.L3.Counters.Get("l3.hits")
	start := m.Eng.Now()
	var elapsed sim.Time
	done = false
	c1.Read(0x20000, 8, func([]byte) { elapsed = m.Eng.Now() - start; done = true })
	m.Eng.RunWhile(func() bool { return !done })
	if m.Hier.L3.Counters.Get("l3.hits") == l3HitsBefore {
		t.Fatal("second core missed the shared L3")
	}
	// L1(3)+L2(12)+L3(20) plus core 1's own page walk (~4 dependent L2
	// reads): well under the ~600-cycle cold chain that ends in DRAM.
	if elapsed > 350 {
		t.Fatalf("cross-core L3 hit took %d cycles", elapsed)
	}
}

func TestTwoCoresContendOnDRAM(t *testing.T) {
	// The same burst takes longer when a second core saturates the
	// memory system concurrently.
	burst := func(withNoise bool) sim.Time {
		m, c0, c1 := twoCoreEnv(t)
		if withNoise {
			// Core 1 floods DRAM with independent line reads.
			for i := 0; i < 2000; i++ {
				m.Ctl.DRAM.Access(false, uint64(0x100_0000+i*mem.LineSize), sim.Done{})
			}
			_ = c1
		}
		start := m.Eng.Now()
		const n = 64
		remaining := n
		done := false
		for i := 0; i < n; i++ {
			c0.Read(uint64(0x20000+i*4096), 8, func([]byte) {
				remaining--
				if remaining == 0 {
					done = true
				}
			})
		}
		m.Eng.RunWhile(func() bool { return !done })
		return m.Eng.Now() - start
	}
	quiet := burst(false)
	noisy := burst(true)
	if noisy <= quiet {
		t.Fatalf("no contention visible: quiet %d vs noisy %d", quiet, noisy)
	}
}

func TestPerCoreTLBsIndependent(t *testing.T) {
	m, c0, c1 := twoCoreEnv(t)
	done := false
	c0.Read(0x30000, 8, func([]byte) { done = true })
	m.Eng.RunWhile(func() bool { return !done })
	if c0.TLB.Lookup(0x30000) == nil {
		t.Fatal("core 0 TLB missing entry")
	}
	if c1.TLB.Lookup(0x30000) != nil {
		t.Fatal("core 1 TLB polluted by core 0's access")
	}
	// Context switch flushes only the switching core.
	as2 := vm.NewAddressSpace(m.DRAMFrames, m.NVMFrames)
	c1.SwitchContext(as2)
	if c0.TLB.Lookup(0x30000) == nil {
		t.Fatal("core 0 TLB flushed by core 1's switch")
	}
}

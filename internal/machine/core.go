package machine

import (
	"fmt"

	"prosper/internal/cache"
	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/vm"
)

// StoreObserver sees every store the core issues, with its virtual
// address, before it enters the cache hierarchy. The Prosper dirty
// tracker and Romulus's hardware logger implement this.
type StoreObserver interface {
	ObserveStore(vaddr uint64, size int)
}

// FaultHandler resolves a page fault in kernel context; the machine
// charges Config.PageFaultCycles around the call. Returning an error
// kills the access (simulated segfault).
type FaultHandler func(vaddr uint64, write bool) error

// Core is one in-order simulated CPU. The kernel binds an address space,
// fault handler, and optional observers before running code on it.
type Core struct {
	ID   int
	mach *Machine
	eng  *sim.Engine

	TLB *vm.TLB
	l1  *cache.Cache
	l2  *cache.Cache

	// Context, owned by the kernel.
	AS       *vm.AddressSpace
	OnFault  FaultHandler
	Observer StoreObserver
	// StoreHook, when set, interposes extra persistence work per store
	// (Romulus logging, SSP shadow remapping); it runs after the
	// functional write, may issue its own timed traffic, and returns a
	// stall the store pipeline must absorb before the store retires
	// (e.g. SSP's shadow-line remap resolution from NVM).
	StoreHook func(vaddr, paddr uint64, size int) sim.Time
	// Tracer, when set, observes every program-issued memory operation at
	// issue time (the SniP-style tracing tap used by internal/trace).
	Tracer func(write bool, vaddr uint64, size int)

	storeCredits int
	storeWaiters []func()

	Counters *stats.Counters
}

func newCore(m *Machine, id int) *Core {
	return &Core{
		ID:           id,
		mach:         m,
		eng:          m.Eng,
		TLB:          vm.NewTLB(fmt.Sprintf("core%d.tlb", id), m.Cfg.TLBEntries),
		l1:           m.Hier.L1D[id],
		l2:           m.Hier.L2[id],
		storeCredits: m.Cfg.StoreBuffer,
		Counters:     stats.NewCounters(),
	}
}

// L1 returns the core's private L1D (the Prosper tracker taps the port in
// front of it).
func (c *Core) L1() *cache.Cache { return c.l1 }

// L2 returns the core's private L2; tracker-generated bitmap traffic is
// injected here so it does not pollute L1 but still contends below it.
func (c *Core) L2() *cache.Cache { return c.l2 }

// StoreBufferInUse returns how many store-buffer entries are occupied
// right now; telemetry samples it against Config.StoreBuffer.
func (c *Core) StoreBufferInUse() int { return c.mach.Cfg.StoreBuffer - c.storeCredits }

// SwitchContext rebinds the core to a new address space, flushing the TLB
// like a CR3 write.
func (c *Core) SwitchContext(as *vm.AddressSpace) {
	c.AS = as
	c.TLB.Flush()
	c.Counters.Inc("core.context_switches")
}

// translate resolves vaddr and calls k with the physical address. It
// models TLB lookup, hardware page walks (timed reads through L2 of the
// real walk addresses), dirty-bit setting walks on first store to a clean
// page, and page faults through the kernel handler.
func (c *Core) translate(vaddr uint64, write bool, k func(paddr uint64)) {
	if e := c.TLB.Lookup(vaddr); e != nil {
		if write && !e.Write {
			c.fault(vaddr, write, k)
			return
		}
		if write && !e.Dirty {
			// First store since the PTE's dirty bit was cleared: the page
			// walker must set it in memory (this is what gives the
			// Dirtybit tracking baseline its per-page cost).
			c.walk(vaddr, func() {
				pte := c.AS.PT.Lookup(vaddr)
				if pte == nil || !pte.Present() {
					c.fault(vaddr, write, k)
					return
				}
				pte.Flags |= vm.FlagDirty | vm.FlagAccess
				e.Dirty = true
				c.Counters.Inc("core.dirty_set_walks")
				k(e.Frame | (vaddr & (mem.PageSize - 1)))
			})
			return
		}
		k(e.Frame | (vaddr & (mem.PageSize - 1)))
		return
	}
	// TLB miss: hardware walk.
	c.walk(vaddr, func() {
		paddr, pte, ok := c.AS.PT.Translate(vaddr)
		if !ok || (write && !pte.Writable()) {
			c.fault(vaddr, write, k)
			return
		}
		pte.Flags |= vm.FlagAccess
		if write {
			pte.Flags |= vm.FlagDirty
		}
		c.TLB.Insert(vaddr, paddr&^uint64(mem.PageSize-1), pte.Writable(), pte.Dirty())
		k(paddr)
	})
}

// walk issues the dependent chain of page-table reads through L2 and
// records the end-to-end walk latency into the TLB's distribution.
func (c *Core) walk(vaddr uint64, done func()) {
	c.Counters.Inc("core.page_walks")
	addrs := c.AS.PT.WalkAddrs(vaddr)
	began := c.eng.Now()
	i := 0
	var step func()
	step = func() {
		if i >= len(addrs) {
			c.TLB.WalkLatency.Observe(uint64(c.eng.Now() - began))
			done()
			return
		}
		a := addrs[i]
		i++
		c.l2.Access(false, a, step)
	}
	step()
}

// fault invokes the kernel fault handler, charges the fault cost, and
// retries the translation. An unresolvable fault panics: simulated
// workloads are not supposed to segfault.
func (c *Core) fault(vaddr uint64, write bool, k func(uint64)) {
	c.Counters.Inc("core.page_faults")
	if c.OnFault == nil {
		panic("machine: page fault with no handler")
	}
	if err := c.OnFault(vaddr, write); err != nil {
		panic("machine: " + err.Error())
	}
	c.TLB.Invalidate(vaddr)
	c.eng.Schedule(c.mach.Cfg.PageFaultCycles, func() {
		c.translate(vaddr, write, k)
	})
}

// Read performs a timed load of size bytes at vaddr; done receives the
// data once the slowest line completes. Loads block the core (the kernel
// run loop waits for done before issuing the next op).
func (c *Core) Read(vaddr uint64, size int, done func([]byte)) {
	c.Counters.Inc("core.loads")
	if c.Tracer != nil {
		c.Tracer(false, vaddr, size)
	}
	buf := make([]byte, size)
	lines := splitLines(vaddr, size)
	remaining := len(lines)
	for _, seg := range lines {
		seg := seg
		c.translate(seg.va, false, func(paddr uint64) {
			c.mach.Storage.Read(paddr, buf[seg.off:seg.off+seg.n])
			c.l1.Access(false, paddr, func() {
				remaining--
				if remaining == 0 && done != nil {
					done(buf)
				}
			})
		})
	}
}

// Write performs a store of data at vaddr. done fires when the store has
// been accepted into the store buffer (program order can continue), not
// when it completes in the memory system; completion returns the buffer
// credit asynchronously, so a full store buffer stalls the core exactly
// like real hardware.
func (c *Core) Write(vaddr uint64, data []byte, done func()) {
	c.Counters.Inc("core.stores")
	if c.Tracer != nil {
		c.Tracer(true, vaddr, len(data))
	}
	if c.Observer != nil {
		c.Observer.ObserveStore(vaddr, len(data))
	}
	lines := splitLines(vaddr, len(data))
	remaining := len(lines)
	for _, seg := range lines {
		seg := seg
		c.translate(seg.va, true, func(paddr uint64) {
			c.mach.Storage.Write(paddr, data[seg.off:seg.off+seg.n])
			var stall sim.Time
			if c.StoreHook != nil {
				stall = c.StoreHook(seg.va, paddr, seg.n)
			}
			issue := func() {
				c.acquireStoreCredit(func() {
					c.l1.Access(true, paddr, c.releaseStoreCredit)
					remaining--
					if remaining == 0 && done != nil {
						done()
					}
				})
			}
			if stall > 0 {
				c.Counters.Inc("core.store_hook_stalls")
				c.eng.Schedule(stall, issue)
			} else {
				issue()
			}
		})
	}
}

func (c *Core) acquireStoreCredit(k func()) {
	if c.storeCredits > 0 {
		c.storeCredits--
		k()
		return
	}
	c.Counters.Inc("core.store_buffer_stalls")
	c.storeWaiters = append(c.storeWaiters, k)
}

func (c *Core) releaseStoreCredit() {
	if len(c.storeWaiters) > 0 {
		k := c.storeWaiters[0]
		c.storeWaiters = c.storeWaiters[1:]
		k()
		return
	}
	c.storeCredits++
}

// DrainStores calls done once every in-flight store has left the store
// buffer (a store fence, used around checkpoints and context switches).
func (c *Core) DrainStores(done func()) {
	if c.storeCredits == c.mach.Cfg.StoreBuffer && len(c.storeWaiters) == 0 {
		c.eng.Schedule(0, done)
		return
	}
	c.eng.Schedule(20, func() { c.DrainStores(done) })
}

type lineSeg struct {
	va  uint64
	off int
	n   int
}

// splitLines cuts [vaddr, vaddr+size) at cache-line boundaries.
func splitLines(vaddr uint64, size int) []lineSeg {
	if size <= 0 {
		return nil
	}
	segs := make([]lineSeg, 0, mem.LinesSpanned(vaddr, size))
	off := 0
	for size > 0 {
		space := int(mem.LineSize - (vaddr & (mem.LineSize - 1)))
		n := size
		if n > space {
			n = space
		}
		segs = append(segs, lineSeg{va: vaddr, off: off, n: n})
		vaddr += uint64(n)
		off += n
		size -= n
	}
	return segs
}

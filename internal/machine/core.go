package machine

import (
	"fmt"

	"prosper/internal/cache"
	"prosper/internal/journey"
	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/vm"
)

// StoreObserver sees every store the core issues, with its virtual
// address, before it enters the cache hierarchy. The Prosper dirty
// tracker and Romulus's hardware logger implement this.
type StoreObserver interface {
	ObserveStore(vaddr uint64, size int)
}

// FaultHandler resolves a page fault in kernel context; the machine
// charges Config.PageFaultCycles around the call. Returning an error
// kills the access (simulated segfault).
type FaultHandler func(vaddr uint64, write bool) error

// Core is one in-order simulated CPU. The kernel binds an address space,
// fault handler, and optional observers before running code on it.
//
// The access path is closure-free: each in-flight Read/Write is tracked
// by pooled continuation records (memOp/segOp/walkOp) whose callbacks are
// method values bound once when the record is first created, so the
// steady-state load/store path allocates nothing.
type Core struct {
	ID   int      //prosperlint:ignore snapshot identity, fixed at construction; SaveSnap only names it in diagnostics
	mach *Machine //prosperlint:ignore snapshot boot-time wiring; SaveSnap only reads its config for the quiescence check
	eng  *sim.Engine

	TLB *vm.TLB
	l1  *cache.Cache
	l2  *cache.Cache

	// Context, owned by the kernel.
	AS       *vm.AddressSpace
	OnFault  FaultHandler
	Observer StoreObserver
	// StoreHook, when set, interposes extra persistence work per store
	// (Romulus logging, SSP shadow remapping); it runs after the
	// functional write, may issue its own timed traffic, and returns a
	// stall the store pipeline must absorb before the store retires
	// (e.g. SSP's shadow-line remap resolution from NVM).
	StoreHook func(vaddr, paddr uint64, size int) sim.Time
	// Tracer, when set, observes every program-issued memory operation at
	// issue time (the SniP-style tracing tap used by internal/trace).
	Tracer func(write bool, vaddr uint64, size int)

	storeCredits int      //prosperlint:ignore snapshot SaveSnap asserts the store buffer drained; a fresh boot's full credit pool needs no restoring
	storeWaiters []func() //prosperlint:ignore snapshot SaveSnap asserts no waiters; a fresh boot's empty list needs no restoring
	//prosperlint:ignore snapshot SaveSnap asserts it equals len(storeWaiters); implied by the drained store buffer
	swHead int // oldest waiting credit requester

	// relCreditTok returns one store-buffer credit on L1 completion; the
	// method value is materialized once here instead of per store.
	relCreditTok sim.Done
	// relCreditJFn is the sampled-store variant: it releases the credit
	// and retires the store's journey segment (the journey ID rides the
	// token's bound argument). Materialized once; only sampled stores
	// bind it, so the tracing-off path never touches it.
	relCreditJFn func(uint64)

	// journeys, when attached, samples and records per-access journeys.
	// Boot-time wiring like mach/eng: the snapshot runner rejects
	// journey-enabled specs, so there is no state to save (§15).
	journeys *journey.Recorder

	// Continuation free lists. Records cycle between the pools and the
	// in-flight sets; their bound callbacks are created at record birth.
	opFree   []*memOp
	segFree  []*segOp
	walkFree []*walkOp

	Counters *stats.Counters
}

func newCore(m *Machine, id int) *Core {
	c := &Core{
		ID:           id,
		mach:         m,
		eng:          m.Eng,
		TLB:          vm.NewTLB(fmt.Sprintf("core%d.tlb", id), m.Cfg.TLBEntries),
		l1:           m.Hier.L1D[id],
		l2:           m.Hier.L2[id],
		storeCredits: m.Cfg.StoreBuffer,
		Counters:     stats.NewCounters(),
	}
	c.relCreditTok = sim.Thunk(sim.CompWorkload, c.releaseStoreCredit)
	c.relCreditJFn = c.releaseStoreCreditJourney
	return c
}

// memOp is one in-flight Read or Write: the shared buffer, the caller's
// completion, and the count of line segments still outstanding.
type memOp struct {
	buf       []byte // read destination, reused across ops (see Read)
	data      []byte // store payload (caller-owned, released on free)
	readDone  func([]byte)
	writeDone func()
	remaining int
}

// segOp is one cache-line segment of a memOp, with its continuations
// bound once at record birth: translatedFn resumes after address
// translation, lineDoneTok after the L1 access, issueFn after a
// store-hook stall, creditFn after a store-buffer credit is granted.
type segOp struct {
	core   *Core
	op     *memOp
	va     uint64
	off, n int
	write  bool
	paddr  uint64
	jid    uint32   // journey of the parent access (0: unsampled)
	sbWait sim.Time // when the segment began waiting for a store credit

	translatedFn func(uint64)
	lineDoneTok  sim.Done
	issueFn      func()
	creditFn     func()
}

// walkOp is one hardware page walk: the dependent chain of table reads
// plus the translation continuation that runs when it finishes.
type walkKind uint8

const (
	walkTLBMiss walkKind = iota
	walkDirtySet
)

type walkOp struct {
	core  *Core
	kind  walkKind
	vaddr uint64
	write bool
	jid   uint32 // journey of the access that triggered the walk
	k     func(uint64)
	entry *vm.TLBEntry // dirty-set walks: the hitting TLB entry
	addrs [4]uint64
	n, i  int
	began sim.Time

	stepFn sim.Done
}

func (c *Core) allocOp() *memOp {
	if n := len(c.opFree); n > 0 {
		op := c.opFree[n-1]
		c.opFree = c.opFree[:n-1]
		return op
	}
	return &memOp{} //prosperlint:ignore hotalloc pool-miss only: freeOp recycles memOps, so steady state allocates nothing
}

func (c *Core) freeOp(op *memOp) {
	op.data = nil
	op.readDone = nil
	op.writeDone = nil
	c.opFree = append(c.opFree, op) //prosperlint:ignore hotalloc amortized: free-list growth is bounded by peak concurrency
}

func (c *Core) allocSeg() *segOp {
	if n := len(c.segFree); n > 0 {
		s := c.segFree[n-1]
		c.segFree = c.segFree[:n-1]
		return s
	}
	s := &segOp{core: c}                                    //prosperlint:ignore hotalloc pool-miss only: freeSeg recycles segOps, so steady state allocates nothing
	s.translatedFn = s.translated                           //prosperlint:ignore hotalloc pool-miss only: bound once per pooled segOp and reused for its lifetime
	s.lineDoneTok = sim.Thunk(sim.CompWorkload, s.lineDone) //prosperlint:ignore hotalloc pool-miss only: bound once per pooled segOp and reused for its lifetime
	s.issueFn = s.issue                                     //prosperlint:ignore hotalloc pool-miss only: bound once per pooled segOp and reused for its lifetime
	s.creditFn = s.credited                                 //prosperlint:ignore hotalloc pool-miss only: bound once per pooled segOp and reused for its lifetime
	return s
}

func (c *Core) freeSeg(s *segOp) {
	s.op = nil
	c.segFree = append(c.segFree, s) //prosperlint:ignore hotalloc amortized: free-list growth is bounded by peak concurrency
}

func (c *Core) allocWalk() *walkOp {
	if n := len(c.walkFree); n > 0 {
		w := c.walkFree[n-1]
		c.walkFree = c.walkFree[:n-1]
		return w
	}
	w := &walkOp{core: c}                    //prosperlint:ignore hotalloc pool-miss only: freeWalk recycles walkOps, so steady state allocates nothing
	w.stepFn = sim.Thunk(sim.CompVM, w.step) //prosperlint:ignore hotalloc pool-miss only: bound once per pooled walkOp and reused for its lifetime
	return w
}

func (c *Core) freeWalk(w *walkOp) {
	w.k = nil
	w.entry = nil
	c.walkFree = append(c.walkFree, w) //prosperlint:ignore hotalloc amortized: free-list growth is bounded by peak concurrency
}

// L1 returns the core's private L1D (the Prosper tracker taps the port in
// front of it).
func (c *Core) L1() *cache.Cache { return c.l1 }

// L2 returns the core's private L2; tracker-generated bitmap traffic is
// injected here so it does not pollute L1 but still contends below it.
func (c *Core) L2() *cache.Cache { return c.l2 }

// StoreBufferInUse returns how many store-buffer entries are occupied
// right now; telemetry samples it against Config.StoreBuffer.
func (c *Core) StoreBufferInUse() int { return c.mach.Cfg.StoreBuffer - c.storeCredits }

// SwitchContext rebinds the core to a new address space, flushing the TLB
// like a CR3 write.
func (c *Core) SwitchContext(as *vm.AddressSpace) {
	c.AS = as
	c.TLB.Flush()
	c.Counters.Inc("core.context_switches")
}

// translate resolves vaddr and calls k with the physical address. It
// models TLB lookup, hardware page walks (timed reads through L2 of the
// real walk addresses), dirty-bit setting walks on first store to a clean
// page, and page faults through the kernel handler.
func (c *Core) translate(vaddr uint64, write bool, jid uint32, k func(paddr uint64)) {
	if e := c.TLB.Lookup(vaddr); e != nil {
		if write && !e.Write {
			c.fault(vaddr, write, jid, k)
			return
		}
		if write && !e.Dirty {
			// First store since the PTE's dirty bit was cleared: the page
			// walker must set it in memory (this is what gives the
			// Dirtybit tracking baseline its per-page cost).
			w := c.allocWalk()
			w.kind = walkDirtySet
			w.vaddr, w.write, w.k, w.entry = vaddr, write, k, e
			w.jid = jid
			c.startWalk(w)
			return
		}
		k(e.Frame | (vaddr & (mem.PageSize - 1)))
		return
	}
	// TLB miss: hardware walk.
	w := c.allocWalk()
	w.kind = walkTLBMiss
	w.vaddr, w.write, w.k = vaddr, write, k
	w.jid = jid
	c.startWalk(w)
}

// startWalk issues the dependent chain of page-table reads through L2 and
// records the end-to-end walk latency into the TLB's distribution.
func (c *Core) startWalk(w *walkOp) {
	c.Counters.Inc("core.page_walks")
	w.n = c.AS.PT.WalkAddrsInto(w.vaddr, &w.addrs)
	w.began = c.eng.Now()
	w.i = 0
	w.step()
}

func (w *walkOp) step() {
	c := w.core
	if w.i >= w.n {
		c.TLB.WalkLatency.Observe(uint64(c.eng.Now() - w.began))
		w.finish()
		return
	}
	a := w.addrs[w.i]
	w.i++
	c.l2.Access(false, a, w.stepFn.WithJourney(w.jid))
}

// finish completes the walk: it re-reads the page table functionally and
// resumes the translation continuation (or faults). The walkOp is retired
// before the continuation runs so it can be reused by walks the
// continuation itself triggers.
func (w *walkOp) finish() {
	c := w.core
	vaddr, write, jid := w.vaddr, w.write, w.jid
	k := w.k
	if jid != 0 {
		cause := journey.CauseWalk
		if w.kind == walkDirtySet {
			cause = journey.CauseDirtySet
		}
		c.journeys.Span(jid, journey.StageTLB, cause, w.began, c.eng.Now())
	}
	if w.kind == walkDirtySet {
		e := w.entry
		c.freeWalk(w)
		pte := c.AS.PT.Lookup(vaddr)
		if pte == nil || !pte.Present() {
			c.fault(vaddr, write, jid, k)
			return
		}
		pte.Flags |= vm.FlagDirty | vm.FlagAccess
		e.Dirty = true
		c.Counters.Inc("core.dirty_set_walks")
		k(e.Frame | (vaddr & (mem.PageSize - 1)))
		return
	}
	c.freeWalk(w)
	paddr, pte, ok := c.AS.PT.Translate(vaddr)
	if !ok || (write && !pte.Writable()) {
		c.fault(vaddr, write, jid, k)
		return
	}
	pte.Flags |= vm.FlagAccess
	if write {
		pte.Flags |= vm.FlagDirty
	}
	c.TLB.Insert(vaddr, paddr&^uint64(mem.PageSize-1), pte.Writable(), pte.Dirty())
	k(paddr)
}

// fault invokes the kernel fault handler, charges the fault cost, and
// retries the translation. An unresolvable fault panics: simulated
// workloads are not supposed to segfault. Faults are rare, so the retry
// closure is the one place the translation path still allocates.
func (c *Core) fault(vaddr uint64, write bool, jid uint32, k func(uint64)) {
	c.Counters.Inc("core.page_faults")
	if c.OnFault == nil {
		panic("machine: page fault with no handler")
	}
	if err := c.OnFault(vaddr, write); err != nil {
		panic("machine: " + err.Error()) //prosperlint:ignore hotalloc panic path: the concat feeds a fatal error on an unhandled fault
	}
	if jid != 0 {
		now := c.eng.Now()
		c.journeys.Span(jid, journey.StageTLB, journey.CauseFault, now, now+c.mach.Cfg.PageFaultCycles)
	}
	c.TLB.Invalidate(vaddr)
	c.eng.Schedule(sim.CompVM, c.mach.Cfg.PageFaultCycles, func() { //prosperlint:ignore hotalloc fault path: page faults are rare by design; the retry closure is documented above
		c.translate(vaddr, write, jid, k)
	})
}

// Read performs a timed load of size bytes at vaddr; done receives the
// data once the slowest line completes. Loads block the core (the kernel
// run loop waits for done before issuing the next op), so the buffer
// handed to done is only valid until the core issues its next load — it
// is reused, not reallocated.
//
//prosperlint:hotpath per-access load entry: every workload load funnels through here
func (c *Core) Read(vaddr uint64, size int, done func([]byte)) {
	c.Counters.Inc("core.loads")
	if c.Tracer != nil {
		c.Tracer(false, vaddr, size)
	}
	if size <= 0 {
		return
	}
	op := c.allocOp()
	op.readDone = done
	if cap(op.buf) < size {
		op.buf = make([]byte, size) //prosperlint:ignore hotalloc growth-only: the op buffer is reused across loads and grows to the high-water mark
	} else {
		op.buf = op.buf[:size]
	}
	op.remaining = mem.LinesSpanned(vaddr, size)
	jid := c.journeys.Start(c.eng.Now(), false, vaddr, size, op.remaining)
	c.issueSegs(op, vaddr, size, false, jid)
}

// Write performs a store of data at vaddr. done fires when the store has
// been accepted into the store buffer (program order can continue), not
// when it completes in the memory system; completion returns the buffer
// credit asynchronously, so a full store buffer stalls the core exactly
// like real hardware.
//
//prosperlint:hotpath per-access store entry: every workload store funnels through here
func (c *Core) Write(vaddr uint64, data []byte, done func()) {
	c.Counters.Inc("core.stores")
	if c.Tracer != nil {
		c.Tracer(true, vaddr, len(data))
	}
	if c.Observer != nil {
		c.Observer.ObserveStore(vaddr, len(data))
	}
	if len(data) == 0 {
		return
	}
	op := c.allocOp()
	op.data = data
	op.writeDone = done
	op.remaining = mem.LinesSpanned(vaddr, len(data))
	jid := c.journeys.Start(c.eng.Now(), true, vaddr, len(data), op.remaining)
	c.issueSegs(op, vaddr, len(data), true, jid)
}

// issueSegs cuts [vaddr, vaddr+size) at cache-line boundaries and starts
// one segment record per line, in address order.
func (c *Core) issueSegs(op *memOp, vaddr uint64, size int, write bool, jid uint32) {
	off := 0
	for size > 0 {
		space := int(mem.LineSize - (vaddr & (mem.LineSize - 1)))
		n := size
		if n > space {
			n = space
		}
		s := c.allocSeg()
		s.op = op
		s.va, s.off, s.n, s.write = vaddr, off, n, write
		s.jid = jid
		c.translate(vaddr, write, jid, s.translatedFn)
		vaddr += uint64(n)
		off += n
		size -= n
	}
}

// translated resumes a segment once its physical address is known: the
// functional data movement happens immediately, then the timed cache
// access (reads) or the store pipeline (writes) takes over.
func (s *segOp) translated(paddr uint64) {
	c := s.core
	if !s.write {
		c.mach.Storage.Read(paddr, s.op.buf[s.off:s.off+s.n])
		c.l1.Access(false, paddr, s.lineDoneTok.WithJourney(s.jid))
		return
	}
	c.mach.Storage.Write(paddr, s.op.data[s.off:s.off+s.n])
	var stall sim.Time
	if c.StoreHook != nil {
		stall = c.StoreHook(s.va, paddr, s.n)
	}
	s.paddr = paddr
	if stall > 0 {
		c.Counters.Inc("core.store_hook_stalls")
		if s.jid != 0 {
			now := c.eng.Now()
			c.journeys.Span(s.jid, journey.StageHook, journey.CauseStoreHook, now, now+stall)
		}
		c.eng.Schedule(sim.CompWorkload, stall, s.issueFn)
	} else {
		s.issue()
	}
}

// lineDone retires one read segment at L1 completion.
func (s *segOp) lineDone() {
	c := s.core
	op := s.op
	if s.jid != 0 {
		c.journeys.SegDone(s.jid, c.eng.Now())
	}
	c.freeSeg(s)
	op.remaining--
	if op.remaining == 0 {
		if op.readDone != nil {
			op.readDone(op.buf)
		}
		c.freeOp(op)
	}
}

// issue enters a write segment into the store-credit queue.
func (s *segOp) issue() {
	if s.jid != 0 {
		s.sbWait = s.core.eng.Now()
	}
	s.core.acquireStoreCredit(s.creditFn)
}

// credited runs once the store buffer accepts the segment: the timed L1
// write goes out carrying the credit-release token, and the segment
// retires (program order continues at acceptance, not completion).
// A sampled store's journey runs to memory-system completion, not
// acceptance: its token retires the journey segment when the credit
// comes back.
func (s *segOp) credited() {
	c := s.core
	op := s.op
	tok := c.relCreditTok
	if s.jid != 0 {
		now := c.eng.Now()
		if now > s.sbWait {
			c.journeys.Span(s.jid, journey.StageStoreBuf, journey.CauseSBFull, s.sbWait, now)
		}
		tok = sim.Bind(sim.CompWorkload, c.relCreditJFn, uint64(s.jid)).WithJourney(s.jid)
	}
	c.l1.Access(true, s.paddr, tok)
	c.freeSeg(s)
	op.remaining--
	if op.remaining == 0 {
		if op.writeDone != nil {
			op.writeDone()
		}
		c.freeOp(op)
	}
}

func (c *Core) acquireStoreCredit(k func()) {
	if c.storeCredits > 0 {
		c.storeCredits--
		k()
		return
	}
	c.Counters.Inc("core.store_buffer_stalls")
	c.storeWaiters = append(c.storeWaiters, k) //prosperlint:ignore hotalloc amortized: the credit-waiter list is drained and reused under backpressure
}

// releaseStoreCreditJourney is the sampled-store completion: the credit
// returns and the journey's segment retires at true completion time.
func (c *Core) releaseStoreCreditJourney(jid uint64) {
	c.releaseStoreCredit()
	c.journeys.SegDone(uint32(jid), c.eng.Now())
}

func (c *Core) releaseStoreCredit() {
	if c.swHead < len(c.storeWaiters) {
		k := c.storeWaiters[c.swHead]
		c.storeWaiters[c.swHead] = nil
		c.swHead++
		if c.swHead == len(c.storeWaiters) {
			c.storeWaiters = c.storeWaiters[:0]
			c.swHead = 0
		}
		k()
		return
	}
	c.storeCredits++
}

// DrainStores calls done once every in-flight store has left the store
// buffer (a store fence, used around checkpoints and context switches).
func (c *Core) DrainStores(done func()) {
	if c.storeCredits == c.mach.Cfg.StoreBuffer && c.swHead == len(c.storeWaiters) {
		c.eng.Schedule(sim.CompKernel, 0, done)
		return
	}
	c.eng.Schedule(sim.CompKernel, 20, func() { c.DrainStores(done) })
}

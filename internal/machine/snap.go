package machine

import (
	"fmt"

	"prosper/internal/sim"
	"prosper/internal/snapbuf"
)

// SaveSnap encodes the full machine-level state: functional storage, the
// persistence domain, frame allocators, copy/fan engine slots, both
// memory devices, the cache hierarchy, and per-core TLBs and counters.
// claims accumulates the pending engine events the devices own.
func (m *Machine) SaveSnap(w *snapbuf.Writer, claims *sim.EventClaims) error {
	m.Counters.SaveSnap(w)
	m.Storage.SaveSnap(w)
	m.Domain.SaveSnap(w)
	m.DRAMFrames.SaveSnap(w)
	m.NVMFrames.SaveSnap(w)

	w.U64(uint64(len(m.copyAll)))
	for _, op := range m.copyAll {
		w.U64(op.srcLine)
		w.U64(op.dstLine)
		w.Int(op.lines)
		w.Int(op.window)
		w.Int(op.issued)
		w.Int(op.completed)
		w.Int(op.inFlight)
		w.U64(op.persistBase)
		w.U64(op.persistLen)
		if err := sim.SaveDone(w, op.done); err != nil {
			return fmt.Errorf("copy engine slot %d: %w", op.slot, err)
		}
	}
	w.U64(uint64(len(m.copyFree)))
	for _, op := range m.copyFree {
		w.Int(op.slot)
	}

	w.U64(uint64(len(m.fanAll)))
	for _, f := range m.fanAll {
		if f.readDone != nil {
			return fmt.Errorf("machine: fan slot %d has a read continuation in flight at snapshot point", f.slot)
		}
		w.Int(f.remaining)
		if err := sim.SaveDone(w, f.done); err != nil {
			return fmt.Errorf("fan engine slot %d: %w", f.slot, err)
		}
	}
	w.U64(uint64(len(m.fanFree)))
	for _, f := range m.fanFree {
		w.Int(f.slot)
	}

	if err := m.Ctl.DRAM.SaveSnap(w, claims); err != nil {
		return err
	}
	if err := m.Ctl.NVM.SaveSnap(w, claims); err != nil {
		return err
	}
	if err := m.Hier.SaveSnap(w); err != nil {
		return err
	}
	for _, c := range m.Cores {
		if err := c.SaveSnap(w); err != nil {
			return err
		}
	}
	return nil
}

// ResumeTokens registers the keyed continuation prototypes of every
// copy/fan engine slot, materializing slots up to the saved counts
// first. Call before LoadSnap so parked tokens in device queues can
// re-bind.
func (m *Machine) ResumeTokens(reg map[uint64]sim.Done) {
	for _, op := range m.copyAll {
		reg[op.srcDoneTok.Key()] = op.srcDoneTok
		reg[op.dstDoneTok.Key()] = op.dstDoneTok
	}
	for _, f := range m.fanAll {
		reg[f.lineDoneTok.Key()] = f.lineDoneTok
	}
}

// ensureSlots materializes engine records so that slot indices present
// in a snapshot exist in this machine. Allocations are held until the
// target count is reached — the allocators reuse free-listed records and
// only grow past them — then released; LoadSnap overwrites the free
// lists with the snapshot's anyway.
func (m *Machine) ensureSlots(copies, fans int) {
	var heldCopies []*copyOp
	for len(m.copyAll) < copies {
		heldCopies = append(heldCopies, m.allocCopy())
	}
	for _, op := range heldCopies {
		m.freeCopy(op)
	}
	var heldFans []*fanOp
	for len(m.fanAll) < fans {
		heldFans = append(heldFans, m.allocFan())
	}
	for _, f := range heldFans {
		m.freeFan(f)
	}
}

// LoadSnap restores machine state saved by SaveSnap. reg must already
// contain every resume key the snapshot's parked tokens may reference —
// including this machine's own engine slots, which LoadSnap materializes
// and registers into reg as it discovers the saved slot counts.
func (m *Machine) LoadSnap(r *snapbuf.Reader, reg map[uint64]sim.Done) error {
	if err := m.Counters.LoadSnap(r); err != nil {
		return err
	}
	if err := m.Storage.LoadSnap(r); err != nil {
		return err
	}
	if err := m.Domain.LoadSnap(r); err != nil {
		return err
	}
	if err := m.DRAMFrames.LoadSnap(r); err != nil {
		return err
	}
	if err := m.NVMFrames.LoadSnap(r); err != nil {
		return err
	}

	ncopy := r.Count(8)
	if r.Err() != nil {
		return r.Err()
	}
	m.ensureSlots(ncopy, 0)
	m.ResumeTokens(reg)
	if ncopy != len(m.copyAll) {
		return fmt.Errorf("machine: %d copy slots in snapshot, %d live", ncopy, len(m.copyAll))
	}
	for _, op := range m.copyAll {
		op.srcLine = r.U64()
		op.dstLine = r.U64()
		op.lines = r.Int()
		op.window = r.Int()
		op.issued = r.Int()
		op.completed = r.Int()
		op.inFlight = r.Int()
		op.persistBase = r.U64()
		op.persistLen = r.U64()
		done, err := sim.LoadDone(r, reg)
		if err != nil {
			return fmt.Errorf("copy engine slot %d: %w", op.slot, err)
		}
		op.done = done
	}
	nfree := r.Count(8)
	m.copyFree = m.copyFree[:0]
	for i := 0; i < nfree; i++ {
		slot := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if slot < 0 || slot >= len(m.copyAll) {
			return fmt.Errorf("machine: free copy slot %d out of range", slot)
		}
		m.copyFree = append(m.copyFree, m.copyAll[slot])
	}

	nfan := r.Count(2)
	if r.Err() != nil {
		return r.Err()
	}
	m.ensureSlots(0, nfan)
	m.ResumeTokens(reg)
	if nfan != len(m.fanAll) {
		return fmt.Errorf("machine: %d fan slots in snapshot, %d live", nfan, len(m.fanAll))
	}
	for _, f := range m.fanAll {
		f.remaining = r.Int()
		done, err := sim.LoadDone(r, reg)
		if err != nil {
			return fmt.Errorf("fan engine slot %d: %w", f.slot, err)
		}
		f.done = done
		f.readDone = nil
		f.buf = nil
	}
	nffree := r.Count(8)
	m.fanFree = m.fanFree[:0]
	for i := 0; i < nffree; i++ {
		slot := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if slot < 0 || slot >= len(m.fanAll) {
			return fmt.Errorf("machine: free fan slot %d out of range", slot)
		}
		m.fanFree = append(m.fanFree, m.fanAll[slot])
	}

	if err := m.Ctl.DRAM.LoadSnap(r, reg); err != nil {
		return err
	}
	if err := m.Ctl.NVM.LoadSnap(r, reg); err != nil {
		return err
	}
	if err := m.Hier.LoadSnap(r); err != nil {
		return err
	}
	for _, c := range m.Cores {
		if err := c.LoadSnap(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// ResumeFiring continues whichever device (at most one — the engine is
// single-threaded) a snapshot interrupted mid-completion-batch. Call
// last in the resume sequence, after all higher-level state is live.
func (m *Machine) ResumeFiring() {
	m.Ctl.DRAM.ResumeFiring()
	m.Ctl.NVM.ResumeFiring()
}

// SaveSnap encodes the core's TLB and counters. The core itself must be
// idle — snapshots happen at checkpoint commits, where every thread is
// paused at an operation boundary and the store buffer has drained.
func (c *Core) SaveSnap(w *snapbuf.Writer) error {
	if c.storeCredits != c.mach.Cfg.StoreBuffer || c.swHead != len(c.storeWaiters) {
		return fmt.Errorf("machine: core %d store buffer busy at snapshot point", c.ID)
	}
	c.TLB.SaveSnap(w)
	c.Counters.SaveSnap(w)
	return nil
}

// LoadSnap restores the core's TLB and counters.
func (c *Core) LoadSnap(r *snapbuf.Reader) error {
	if err := c.TLB.LoadSnap(r); err != nil {
		return err
	}
	return c.Counters.LoadSnap(r)
}

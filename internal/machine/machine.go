// Package machine assembles the simulated hardware: cores with TLBs and
// store buffers in front of the cache hierarchy, the hybrid DRAM+NVM
// memory system, and timed physical-memory copy engines. The kernel
// package drives cores by binding address spaces and instruction streams
// to them; machine knows nothing about processes.
package machine

import (
	"prosper/internal/cache"
	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/stats"
)

// Config sizes the machine. Zero fields take the defaults of Table II.
type Config struct {
	Cores           int
	TLBEntries      int
	StoreBuffer     int      // store-buffer entries per core
	PageFaultCycles sim.Time // kernel entry/exit + handler cost per fault
	CopyWindow      int      // outstanding lines per physical copy engine

	// Storage, when non-nil, backs the machine with an existing
	// functional store — the post-crash reboot path: NVM contents
	// survive in the shared Storage while the new machine starts with
	// cold caches and TLBs.
	Storage *mem.Storage
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.TLBEntries <= 0 {
		c.TLBEntries = 64
	}
	if c.StoreBuffer <= 0 {
		c.StoreBuffer = 32
	}
	if c.PageFaultCycles <= 0 {
		c.PageFaultCycles = 3000 // ~1 µs kernel fault path
	}
	if c.CopyWindow <= 0 {
		c.CopyWindow = 8
	}
	return c
}

// Machine is one simulated host.
type Machine struct {
	Cfg     Config
	Eng     *sim.Engine
	Storage *mem.Storage
	Ctl     *mem.Controller
	Hier    *cache.Hierarchy
	Cores   []*Core

	DRAMFrames *mem.FrameAllocator
	NVMFrames  *mem.FrameAllocator

	Counters *stats.Counters
}

// New builds a machine with the paper's memory system.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine()
	ctl := mem.NewController(eng)
	storage := cfg.Storage
	if storage == nil {
		storage = mem.NewStorage()
	}
	m := &Machine{
		Cfg:     cfg,
		Eng:     eng,
		Storage: storage,
		Ctl:     ctl,
		Hier:    cache.NewHierarchy(eng, cfg.Cores, cache.PortFunc(ctl.Access)),
		// DRAM frames cover the whole device. The NVM frame pool covers
		// only the upper half: the lower half is reserved for the
		// kernel's checkpoint areas (superblock-managed; see
		// internal/kernel), so page placement and checkpoint images can
		// never collide.
		DRAMFrames: mem.NewFrameAllocator(mem.DRAMBase, mem.DRAMSize),
		NVMFrames:  mem.NewFrameAllocator(mem.NVMBase+mem.NVMSize/2, mem.NVMSize/2),
		Counters:   stats.NewCounters(),
	}
	for i := 0; i < cfg.Cores; i++ {
		m.Cores = append(m.Cores, newCore(m, i))
	}
	return m
}

// Crash models a power failure: all caches and DRAM contents are lost;
// NVM contents survive. Pending simulation events are abandoned by the
// caller constructing a fresh Machine for the post-crash boot; this
// method only applies the data-loss semantics to the shared Storage.
func (m *Machine) Crash() {
	// Dirty lines in caches never reached memory; since Storage is
	// functional-first, we approximate cache loss by dropping DRAM, which
	// subsumes it for all user data (NVM persists only what the
	// checkpoint engine explicitly copied and fenced).
	m.Storage.DropRange(mem.DRAMBase, mem.DRAMSize)
	m.Counters.Inc("machine.crashes")
}

// CopyPhys performs a timed, pipelined physical-memory copy of n bytes
// from src to dst at cache-line granularity, bypassing the caches (a
// streaming kernel copy with non-temporal semantics). The functional copy
// happens immediately; done fires when the last line write completes at
// the destination device — for NVM destinations this is the persistence
// point.
func (m *Machine) CopyPhys(dst, src uint64, n int, done func()) {
	if n <= 0 {
		if done != nil {
			m.Eng.Schedule(0, done)
		}
		return
	}
	m.Storage.Copy(dst, src, n)
	m.Counters.Add("machine.copy_bytes", uint64(n))

	lines := mem.LinesSpanned(src, n)
	window := m.Cfg.CopyWindow
	issued, completed := 0, 0
	var pump func()
	inFlight := 0
	pump = func() {
		for inFlight < window && issued < lines {
			i := issued
			issued++
			inFlight++
			srcLine := mem.LineOf(src) + uint64(i)*mem.LineSize
			dstLine := mem.LineOf(dst) + uint64(i)*mem.LineSize
			m.Ctl.Access(false, srcLine, func() {
				m.Ctl.Access(true, dstLine, func() {
					inFlight--
					completed++
					if completed == lines {
						if done != nil {
							done()
						}
						return
					}
					pump()
				})
			})
		}
	}
	pump()
}

// WritePhys performs a timed write of data to physical addr through the
// memory controller (bypassing caches), updating functional storage
// immediately. done fires at device completion.
func (m *Machine) WritePhys(addr uint64, data []byte, done func()) {
	m.Storage.Write(addr, data)
	lines := mem.LinesSpanned(addr, len(data))
	if lines == 0 {
		if done != nil {
			m.Eng.Schedule(0, done)
		}
		return
	}
	remaining := lines
	for i := 0; i < lines; i++ {
		m.Ctl.Access(true, mem.LineOf(addr)+uint64(i)*mem.LineSize, func() {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		})
	}
}

// ReadPhys performs a timed read of n bytes at physical addr through the
// memory controller; done receives the data at device completion.
func (m *Machine) ReadPhys(addr uint64, n int, done func([]byte)) {
	buf := make([]byte, n)
	m.Storage.Read(addr, buf)
	lines := mem.LinesSpanned(addr, n)
	if lines == 0 {
		if done != nil {
			m.Eng.Schedule(0, func() { done(buf) })
		}
		return
	}
	remaining := lines
	for i := 0; i < lines; i++ {
		m.Ctl.Access(false, mem.LineOf(addr)+uint64(i)*mem.LineSize, func() {
			remaining--
			if remaining == 0 && done != nil {
				done(buf)
			}
		})
	}
}

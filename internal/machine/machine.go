// Package machine assembles the simulated hardware: cores with TLBs and
// store buffers in front of the cache hierarchy, the hybrid DRAM+NVM
// memory system, and timed physical-memory copy engines. The kernel
// package drives cores by binding address spaces and instruction streams
// to them; machine knows nothing about processes.
package machine

import (
	"prosper/internal/cache"
	"prosper/internal/journey"
	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/stats"
)

// Config sizes the machine. Zero fields take the defaults of Table II.
type Config struct {
	Cores           int
	TLBEntries      int
	StoreBuffer     int      // store-buffer entries per core
	PageFaultCycles sim.Time // kernel entry/exit + handler cost per fault
	CopyWindow      int      // outstanding lines per physical copy engine

	// Storage, when non-nil, backs the machine with an existing
	// functional store — the post-crash reboot path: NVM contents
	// survive in the shared Storage while the new machine starts with
	// cold caches and TLBs. The surviving NVM content seeds the new
	// machine's persistence domain as already-durable.
	Storage *mem.Storage

	// ADR enables asynchronous-DRAM-refresh-style flush-on-fail
	// hardware in the NVM persistence domain: writes already admitted
	// to the device drain to durable media on power loss. The default
	// (false) models the harsher no-ADR domain, where only writes whose
	// device latency completed before the failure survive.
	ADR bool
}

func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.TLBEntries <= 0 {
		c.TLBEntries = 64
	}
	if c.StoreBuffer <= 0 {
		c.StoreBuffer = 32
	}
	if c.PageFaultCycles <= 0 {
		c.PageFaultCycles = 3000 // ~1 µs kernel fault path
	}
	if c.CopyWindow <= 0 {
		c.CopyWindow = 8
	}
	return c
}

// Machine is one simulated host.
type Machine struct {
	Cfg     Config
	Eng     *sim.Engine
	Storage *mem.Storage
	Domain  *mem.Domain
	Ctl     *mem.Controller
	Hier    *cache.Hierarchy
	Cores   []*Core

	DRAMFrames *mem.FrameAllocator
	NVMFrames  *mem.FrameAllocator

	// Pooled continuation records for the physical copy/write/read
	// engines; their callbacks are bound once at record birth. copyAll
	// and fanAll hold every record ever created at its permanent slot
	// index — the slot is the record's resume identity, so a snapshot
	// can serialize in-flight engine state as (key, arg) pairs and
	// re-bind them on load.
	copyAll  []*copyOp
	copyFree []*copyOp
	fanAll   []*fanOp
	fanFree  []*fanOp

	Counters *stats.Counters
}

// Resume-key kinds for the machine's pooled continuation records; the
// top byte selects the kind, the low bits carry the slot index (see
// DESIGN.md §14 for the full key map).
const (
	keyKindCopySrc uint64 = 1
	keyKindCopyDst uint64 = 2
	keyKindFanLine uint64 = 3
)

func slotKey(kind uint64, slot int) uint64 { return kind<<56 | uint64(slot) }

// New builds a machine with the paper's memory system.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	eng := sim.NewEngine()
	ctl := mem.NewController(eng)
	storage := cfg.Storage
	if storage == nil {
		storage = mem.NewStorage()
	}
	m := &Machine{
		Cfg:     cfg,
		Eng:     eng,
		Storage: storage,
		Domain:  mem.NewDomain(storage, cfg.ADR),
		Ctl:     ctl,
		Hier:    cache.NewHierarchy(eng, cfg.Cores, ctl),
		// DRAM frames cover the whole device. The NVM frame pool covers
		// only the upper half: the lower half is reserved for the
		// kernel's checkpoint areas (superblock-managed; see
		// internal/kernel), so page placement and checkpoint images can
		// never collide.
		DRAMFrames: mem.NewFrameAllocator(mem.DRAMBase, mem.DRAMSize),
		NVMFrames:  mem.NewFrameAllocator(mem.NVMBase+mem.NVMSize/2, mem.NVMSize/2),
		Counters:   stats.NewCounters(),
	}
	ctl.NVM.SetPersistSink(m.Domain)
	for i := 0; i < cfg.Cores; i++ {
		m.Cores = append(m.Cores, newCore(m, i))
	}
	return m
}

// AttachJourneys wires a journey recorder through every component on the
// access path: cores (issue/TLB/store-buffer spans), all three cache
// levels, and both memory devices. Call once right after New, before any
// traffic; a nil recorder is a no-op (tracing off).
func (m *Machine) AttachJourneys(r *journey.Recorder) {
	if r == nil {
		return
	}
	for _, c := range m.Cores {
		c.journeys = r
	}
	for _, l1 := range m.Hier.L1D {
		l1.AttachJourneys(r, journey.StageL1)
	}
	for _, l2 := range m.Hier.L2 {
		l2.AttachJourneys(r, journey.StageL2)
	}
	m.Hier.L3.AttachJourneys(r, journey.StageL3)
	m.Ctl.DRAM.AttachJourneys(r, false)
	m.Ctl.NVM.AttachJourneys(r, true)
}

// Crash models a power failure in place on the shared Storage: all
// caches and DRAM contents are lost, and NVM reverts to the persistence
// domain's durable shadow — only writes whose timed device access had
// completed (plus, in ADR mode, writes already admitted to the device)
// survive; everything else, including functional-only NVM updates that
// never went through the controller, is rolled back. Pending simulation
// events are abandoned by the caller constructing a fresh Machine for
// the post-crash boot (see CrashImage for the non-mutating variant).
func (m *Machine) Crash() {
	m.Domain.Crash()
	m.Storage.DropRange(mem.DRAMBase, mem.DRAMSize)
	m.Counters.Inc("machine.crashes")
}

// CrashImage returns the Storage a power failure at this instant would
// leave behind — the durable NVM shadow only, with DRAM absent — without
// disturbing the running machine. Handing it to a fresh Machine (via
// Config.Storage) boots the post-crash survivor.
func (m *Machine) CrashImage() *mem.Storage {
	return m.Domain.CrashImage()
}

// PersistNVM functionally promotes [addr, addr+size) to the durable NVM
// shadow with no timing cost; see mem.Domain.Persist for when this is
// legitimate (tiny synchronously-fenced kernel metadata only).
func (m *Machine) PersistNVM(addr, size uint64) {
	m.Domain.Persist(addr, size)
}

// copyOp is one in-flight CopyPhys: a windowed pipeline of line reads
// each followed by a line write, with the line index threaded through the
// completion tokens instead of captured closures.
type copyOp struct {
	m                *Machine
	slot             int
	srcLine, dstLine uint64
	lines            int
	window           int
	issued           int
	completed        int
	inFlight         int
	persistBase      uint64
	persistLen       uint64
	done             sim.Done

	srcDoneTok sim.Done // keyed prototype; per-line tokens are WithArg copies
	dstDoneTok sim.Done
}

func (m *Machine) allocCopy() *copyOp {
	if n := len(m.copyFree); n > 0 {
		op := m.copyFree[n-1]
		m.copyFree = m.copyFree[:n-1]
		return op
	}
	op := &copyOp{m: m, slot: len(m.copyAll)}
	op.srcDoneTok = sim.KeyedBind(sim.CompPersist, slotKey(keyKindCopySrc, op.slot), op.srcDone, 0)
	op.dstDoneTok = sim.KeyedBind(sim.CompPersist, slotKey(keyKindCopyDst, op.slot), op.dstDone, 0)
	m.copyAll = append(m.copyAll, op)
	return op
}

func (m *Machine) freeCopy(op *copyOp) {
	op.done = sim.Done{}
	m.copyFree = append(m.copyFree, op)
}

func (op *copyOp) pump() {
	for op.inFlight < op.window && op.issued < op.lines {
		i := uint64(op.issued)
		op.issued++
		op.inFlight++
		op.m.Ctl.Access(false, op.srcLine+i*mem.LineSize, op.srcDoneTok.WithArg(i))
	}
}

func (op *copyOp) srcDone(i uint64) {
	op.m.Ctl.Access(true, op.dstLine+i*mem.LineSize, op.dstDoneTok.WithArg(i))
}

func (op *copyOp) dstDone(uint64) {
	op.inFlight--
	op.completed++
	if op.completed == op.lines {
		m := op.m
		// The line count is derived from the source alignment; when src
		// and dst straddle lines differently the last destination line
		// gets no timed write of its own, so promote the exact copied
		// range now that the engine is done — mid-copy crashes still
		// tear at line boundaries.
		m.Domain.Persist(op.persistBase, op.persistLen)
		done := op.done
		m.freeCopy(op)
		done.Run()
		return
	}
	op.pump()
}

// CopyPhys performs a timed, pipelined physical-memory copy of n bytes
// from src to dst at cache-line granularity, bypassing the caches (a
// streaming kernel copy with non-temporal semantics). The functional copy
// happens immediately; done fires when the last line write completes at
// the destination device — for NVM destinations this is the persistence
// point.
func (m *Machine) CopyPhys(dst, src uint64, n int, done func()) {
	var tok sim.Done
	if done != nil {
		tok = sim.Thunk(sim.CompPersist, done)
	}
	m.CopyPhysTok(dst, src, n, tok)
}

// CopyPhysTok is CopyPhys with a completion token instead of a closure.
// Callers whose completions may be in flight across a simulator snapshot
// must use this form with a keyed token so the continuation has a
// resume identity.
func (m *Machine) CopyPhysTok(dst, src uint64, n int, done sim.Done) {
	if n <= 0 {
		if done.Valid() {
			m.Eng.ScheduleDone(0, done)
		}
		return
	}
	m.Storage.Copy(dst, src, n)
	m.Counters.Add("machine.copy_bytes", uint64(n))

	op := m.allocCopy()
	op.srcLine = mem.LineOf(src)
	op.dstLine = mem.LineOf(dst)
	op.lines = mem.LinesSpanned(src, n)
	op.window = m.Cfg.CopyWindow
	op.issued, op.completed, op.inFlight = 0, 0, 0
	op.persistBase, op.persistLen = dst, uint64(n)
	op.done = done
	op.pump()
}

// fanOp joins a fan-out of line accesses back into one completion; one
// record (and one bound method value, at birth) replaces the per-line
// closures WritePhys/ReadPhys used to allocate.
type fanOp struct {
	m         *Machine
	slot      int
	remaining int
	done      sim.Done
	readDone  func([]byte)
	buf       []byte

	lineDoneTok sim.Done
}

func (m *Machine) allocFan() *fanOp {
	if n := len(m.fanFree); n > 0 {
		f := m.fanFree[n-1]
		m.fanFree = m.fanFree[:n-1]
		return f
	}
	f := &fanOp{m: m, slot: len(m.fanAll)}
	f.lineDoneTok = sim.KeyedThunk(sim.CompPersist, slotKey(keyKindFanLine, f.slot), f.lineDone)
	m.fanAll = append(m.fanAll, f)
	return f
}

func (m *Machine) freeFan(f *fanOp) {
	f.done = sim.Done{}
	f.readDone = nil
	f.buf = nil
	m.fanFree = append(m.fanFree, f)
}

func (f *fanOp) lineDone() {
	f.remaining--
	if f.remaining != 0 {
		return
	}
	m := f.m
	done, readDone, buf := f.done, f.readDone, f.buf
	m.freeFan(f)
	done.Run()
	if readDone != nil {
		readDone(buf)
	}
}

// WritePhys performs a timed write of data to physical addr through the
// memory controller (bypassing caches), updating functional storage
// immediately. done fires at device completion.
func (m *Machine) WritePhys(addr uint64, data []byte, done func()) {
	var tok sim.Done
	if done != nil {
		tok = sim.Thunk(sim.CompPersist, done)
	}
	m.WritePhysTok(addr, data, tok)
}

// WritePhysTok is WritePhys with a completion token instead of a
// closure; see CopyPhysTok for when the keyed form is required.
func (m *Machine) WritePhysTok(addr uint64, data []byte, done sim.Done) {
	m.Storage.Write(addr, data)
	lines := mem.LinesSpanned(addr, len(data))
	if lines == 0 {
		if done.Valid() {
			m.Eng.ScheduleDone(0, done)
		}
		return
	}
	f := m.allocFan()
	f.remaining = lines
	f.done = done
	for i := 0; i < lines; i++ {
		m.Ctl.Access(true, mem.LineOf(addr)+uint64(i)*mem.LineSize, f.lineDoneTok)
	}
}

// ReadPhys performs a timed read of n bytes at physical addr through the
// memory controller; done receives the data at device completion.
func (m *Machine) ReadPhys(addr uint64, n int, done func([]byte)) {
	buf := make([]byte, n)
	m.Storage.Read(addr, buf)
	lines := mem.LinesSpanned(addr, n)
	if lines == 0 {
		if done != nil {
			m.Eng.Schedule(sim.CompPersist, 0, func() { done(buf) })
		}
		return
	}
	f := m.allocFan()
	f.remaining = lines
	f.readDone = done
	f.buf = buf
	for i := 0; i < lines; i++ {
		m.Ctl.Access(false, mem.LineOf(addr)+uint64(i)*mem.LineSize, f.lineDoneTok)
	}
}

package machine

import (
	"testing"

	"prosper/internal/journey"
)

// unsampledRecorder returns a live recorder whose rate is so high that
// no access in these short tests is ever selected: the "journeys on,
// this access unsampled" hot path, which must stay as cheap as tracing
// off entirely.
func unsampledRecorder() *journey.Recorder {
	return journey.NewRecorder("allocs", 1<<40, 1)
}

// TestAllocsJourneyOffUnsampled extends the PR 6 steady-state pins to
// the journey plumbing: with a recorder attached but the access not
// sampled, the L1-hit, L1-miss→L2-hit, and full-miss→device paths must
// still allocate nothing — the journey ID is a packed slot in the Done
// token and every recording site is behind a jid != 0 branch.
func TestAllocsJourneyOffUnsampled(t *testing.T) {
	shapes := []struct {
		name string
		prep func(m *Machine, core *Core)
	}{
		{"l1-hit", func(m *Machine, core *Core) {}},
		{"l1-miss-l2-hit", func(m *Machine, core *Core) {
			core.L1().Flush()
			m.Eng.Run()
		}},
		{"full-miss-device", func(m *Machine, core *Core) {
			core.L1().Flush()
			core.L2().Flush()
			m.Hier.L3.Flush()
			m.Eng.Run()
		}},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			m, core, readDone := allocEnv(t)
			r := unsampledRecorder()
			m.AttachJourneys(r)
			core.Read(addrUnderTest, 8, readDone) // populate the hierarchy
			m.Eng.Run()
			allocs := testing.AllocsPerRun(200, func() {
				sh.prep(m, core)
				core.Read(addrUnderTest, 8, readDone)
				m.Eng.Run()
			})
			if allocs != 0 {
				t.Fatalf("%s with unsampled journeys allocates %.1f objects/op, want 0", sh.name, allocs)
			}
			if _, sampled, _ := r.Counts(); sampled != 0 {
				t.Fatalf("rate 2^40 sampled %d accesses — the pin measured the wrong path", sampled)
			}
			if r.Accesses() == 0 {
				t.Fatal("recorder observed no accesses — journey plumbing not attached")
			}
		})
	}
}

// TestJourneySampledThroughMachine drives sampled loads and stores
// through the full machine and checks each finished journey's contract:
// the per-stage vector sums exactly to the measured latency, every span
// lies inside the journey window, and misses actually reach the deeper
// stages.
func TestJourneySampledThroughMachine(t *testing.T) {
	m, core, readDone := allocEnv(t)
	r := journey.NewRecorder("machine", 1, 1) // sample everything
	m.AttachJourneys(r)

	// The allocEnv pre-fault left the line cached: flush the whole
	// hierarchy so the first read is a genuine full miss.
	core.L1().Flush()
	core.L2().Flush()
	m.Hier.L3.Flush()
	m.Eng.Run()

	core.Read(addrUnderTest, 8, readDone) // full miss: L1→L2→L3→DRAM
	m.Eng.Run()
	core.Read(addrUnderTest, 8, readDone) // L1 hit
	m.Eng.Run()
	core.Write(addrUnderTest+64, []byte{1, 2, 3, 4, 5, 6, 7, 8}, nil)
	m.Eng.Run()

	js := r.Journeys()
	if len(js) != 3 {
		t.Fatalf("recorded %d journeys, want 3", len(js))
	}
	for _, j := range js {
		if !j.Finished() {
			t.Fatalf("jid %d unfinished after engine drain", j.JID)
		}
		if j.Latency() <= 0 {
			t.Fatalf("jid %d: non-positive latency %d", j.JID, j.Latency())
		}
		var sum int64
		for s := 0; s < journey.NumStages; s++ {
			sum += int64(j.Vec[s])
		}
		if sum != int64(j.Latency()) {
			t.Fatalf("jid %d: vector sums to %d, latency %d (%+v)", j.JID, sum, j.Latency(), j.Vec)
		}
		for _, sp := range j.Spans {
			if sp.Enter < j.Start || sp.Exit > j.End {
				t.Fatalf("jid %d: span %s [%d,%d) outside journey [%d,%d]",
					j.JID, sp.Stage, sp.Enter, sp.Exit, j.Start, j.End)
			}
		}
	}
	miss, hit := js[0], js[1]
	if miss.Vec[journey.StageDevService] == 0 {
		t.Fatalf("full miss charged no device-service cycles: %+v", miss.Vec)
	}
	if miss.Latency() <= hit.Latency() {
		t.Fatalf("miss latency %d not above hit latency %d", miss.Latency(), hit.Latency())
	}
	if hit.DominantStage() != journey.StageL1 {
		t.Fatalf("L1 hit dominated by %s", hit.DominantStage())
	}
}

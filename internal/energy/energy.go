// Package energy models the Prosper lookup table's energy and area using
// the CACTI-P (7 nm FinFET) figures the paper publishes for a 16-entry
// table with two read ports and one write port, and computes per-run
// energy from tracker event counts.
package energy

// The paper's published constants (Section V, "Energy and area overhead").
const (
	// ReadEnergyPerAccessNJ is the dynamic read energy per lookup-table
	// access in nanojoules.
	ReadEnergyPerAccessNJ = 0.000773194
	// WriteEnergyPerAccessNJ is the dynamic write energy per access.
	WriteEnergyPerAccessNJ = 0.000128375
	// LeakagePowerMW is the leakage power of one bank in milliwatts.
	LeakagePowerMW = 0.01067596
	// AreaMM2 is the cache area of the 16-entry lookup table.
	AreaMM2 = 0.000704786
)

// Activity summarizes the tracker events that exercise the lookup table
// during a run.
type Activity struct {
	SOIs         uint64 // each SOI searches the table (read)
	TableUpdates uint64 // bit-set or entry allocation (write)
	Writebacks   uint64 // HWM writebacks + evictions + flushes (read)
	Cycles       uint64 // run length for leakage
	FreqHz       float64
}

// Report is the computed energy breakdown.
type Report struct {
	DynamicReadNJ  float64
	DynamicWriteNJ float64
	LeakageNJ      float64
	TotalNJ        float64
	AreaMM2        float64
}

// Compute derives a Report from tracker activity. Every SOI performs one
// parallel search (read); every search that records a bit performs one
// write; every writeback reads the victim entry.
func Compute(a Activity) Report {
	if a.FreqHz == 0 {
		a.FreqHz = 3e9
	}
	r := Report{AreaMM2: AreaMM2}
	reads := a.SOIs + a.Writebacks
	r.DynamicReadNJ = float64(reads) * ReadEnergyPerAccessNJ
	r.DynamicWriteNJ = float64(a.TableUpdates) * WriteEnergyPerAccessNJ
	seconds := float64(a.Cycles) / a.FreqHz
	// mW * s = mJ; convert to nJ.
	r.LeakageNJ = LeakagePowerMW * seconds * 1e6
	r.TotalNJ = r.DynamicReadNJ + r.DynamicWriteNJ + r.LeakageNJ
	return r
}

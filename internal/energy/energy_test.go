package energy

import (
	"math"
	"testing"
)

func TestComputeZero(t *testing.T) {
	r := Compute(Activity{})
	if r.TotalNJ != 0 {
		t.Fatalf("zero activity energy = %f", r.TotalNJ)
	}
	if r.AreaMM2 != AreaMM2 {
		t.Fatal("area not reported")
	}
}

func TestComputeDynamic(t *testing.T) {
	r := Compute(Activity{SOIs: 1000, TableUpdates: 1000, Writebacks: 100})
	wantRead := 1100 * ReadEnergyPerAccessNJ
	wantWrite := 1000 * WriteEnergyPerAccessNJ
	if math.Abs(r.DynamicReadNJ-wantRead) > 1e-12 {
		t.Fatalf("read energy = %g want %g", r.DynamicReadNJ, wantRead)
	}
	if math.Abs(r.DynamicWriteNJ-wantWrite) > 1e-12 {
		t.Fatalf("write energy = %g want %g", r.DynamicWriteNJ, wantWrite)
	}
}

func TestComputeLeakage(t *testing.T) {
	// One second at 3 GHz: leakage = 0.01067596 mW * 1 s = 0.01067596 mJ
	// = 1.067596e4 nJ.
	r := Compute(Activity{Cycles: 3_000_000_000})
	want := LeakagePowerMW * 1e6
	if math.Abs(r.LeakageNJ-want) > 1e-6 {
		t.Fatalf("leakage = %g want %g", r.LeakageNJ, want)
	}
	if r.TotalNJ != r.LeakageNJ {
		t.Fatal("total != leakage for pure-leakage run")
	}
}

func TestReadDominatesWritePerAccess(t *testing.T) {
	// The published constants have read energy > write energy; the model
	// must preserve that relation (it drives the HWM/LWM discussion).
	if ReadEnergyPerAccessNJ <= WriteEnergyPerAccessNJ {
		t.Fatal("constants transcribed wrong")
	}
}

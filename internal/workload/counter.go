package workload

import (
	"encoding/binary"

	"prosper/internal/sim"
)

// CounterProgram is a finite, checkpointable workload used by the crash /
// recovery tests and the quickstart example: it increments a counter,
// writing the value into both a stack slot and a rotating heap log. Its
// execution position (the iteration index) can be snapshotted into a
// process checkpoint and restored after a crash, letting the process
// resume from the last checkpoint rather than from scratch.
type CounterProgram struct {
	Iterations int
	PerIterOps int

	ctx  Context
	i    int
	step int
	sp   uint64
}

// NewCounter builds a counter workload running for iterations iterations.
func NewCounter(iterations int) *CounterProgram {
	if iterations <= 0 {
		iterations = 1000
	}
	return &CounterProgram{Iterations: iterations, PerIterOps: 4}
}

// Name implements Program.
func (c *CounterProgram) Name() string { return "counter" }

// Start implements Program.
func (c *CounterProgram) Start(ctx Context) {
	c.ctx = ctx
	c.sp = ctx.StackHi - 4096 // one fixed frame
}

// Next implements Program as an explicit state machine (no goroutine), so
// the execution position is exactly (i, step) and trivially restorable.
func (c *CounterProgram) Next() Op {
	if c.i >= c.Iterations {
		return Op{Kind: End}
	}
	op := Op{SP: c.sp}
	switch c.step {
	case 0: // write counter to a stack slot (slot varies over a small window)
		op.Kind = Store
		op.Addr = c.sp + uint64(c.i%64)*8
		op.Size = 8
	case 1: // append to heap log
		op.Kind = Store
		op.Addr = c.ctx.HeapLo + uint64(c.i%1024)*8
		op.Size = 8
	case 2: // read back the stack slot
		op.Kind = Load
		op.Addr = c.sp + uint64(c.i%64)*8
		op.Size = 8
	default:
		op.Kind = Compute
		op.Cycles = sim.Time(50)
	}
	c.step++
	if c.step >= c.PerIterOps {
		c.step = 0
		c.i++
	}
	return op
}

// Close implements Program.
func (c *CounterProgram) Close() {}

// Progress returns the current iteration, for tests and demos.
func (c *CounterProgram) Progress() int { return c.i }

// Snapshot implements Checkpointable.
func (c *CounterProgram) Snapshot() []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, uint64(c.i))
	binary.LittleEndian.PutUint64(buf[8:], uint64(c.step))
	return buf
}

// Restore implements Checkpointable.
func (c *CounterProgram) Restore(b []byte) {
	if len(b) < 16 {
		return
	}
	c.i = int(binary.LittleEndian.Uint64(b))
	c.step = int(binary.LittleEndian.Uint64(b[8:]))
}

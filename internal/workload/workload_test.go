package workload

import (
	"testing"
)

func testCtx() Context {
	return Context{
		StackHi:      0x7fff_f000,
		StackReserve: 8 << 20,
		HeapLo:       0x1000_0000,
		HeapSize:     256 << 20,
		Seed:         42,
	}
}

// runOps pulls n ops from a fresh instance of the program.
func runOps(t *testing.T, p Program, n int) []Op {
	t.Helper()
	p.Start(testCtx())
	defer p.Close()
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		op := p.Next()
		if op.Kind == End {
			break
		}
		ops = append(ops, op)
	}
	return ops
}

// validateOps checks universal invariants: stack ops lie in the stack
// reserve, SP stays within bounds, sizes are positive for memory ops.
func validateOps(t *testing.T, ops []Op) (stackOps, heapOps, stores int) {
	t.Helper()
	ctx := testCtx()
	stackLo := ctx.StackHi - ctx.StackReserve
	for i, op := range ops {
		switch op.Kind {
		case Load, Store:
			if op.Size <= 0 {
				t.Fatalf("op %d: non-positive size", i)
			}
			if op.SP != 0 && (op.SP > ctx.StackHi || op.SP < stackLo) {
				t.Fatalf("op %d: SP %#x out of bounds", i, op.SP)
			}
			inStack := op.Addr >= stackLo && op.Addr < ctx.StackHi
			inHeap := op.Addr >= ctx.HeapLo && op.Addr < ctx.HeapLo+ctx.HeapSize
			if !inStack && !inHeap {
				t.Fatalf("op %d: address %#x in neither stack nor heap", i, op.Addr)
			}
			if inStack {
				stackOps++
			} else {
				heapOps++
			}
			if op.Kind == Store {
				stores++
			}
		case Compute:
			if op.Cycles <= 0 {
				t.Fatalf("op %d: non-positive compute", i)
			}
		}
	}
	return
}

func TestMicroBenchmarksProduceValidOps(t *testing.T) {
	progs := []Program{
		NewRandom(MicroParams{}),
		NewStream(MicroParams{}),
		NewSparse(MicroParams{}),
		NewQuicksort(256),
		NewRecursive(8),
		NewNormal(),
		NewPoisson(),
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			ops := runOps(t, p, 20000)
			if len(ops) < 1000 {
				t.Fatalf("only %d ops generated", len(ops))
			}
			stackOps, _, stores := validateOps(t, ops)
			if stackOps == 0 {
				t.Fatal("no stack operations")
			}
			if stores == 0 {
				t.Fatal("no stores")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	ops1 := runOps(t, NewApp(GapbsPR()), 5000)
	ops2 := runOps(t, NewApp(GapbsPR()), 5000)
	if len(ops1) != len(ops2) {
		t.Fatalf("lengths differ: %d vs %d", len(ops1), len(ops2))
	}
	for i := range ops1 {
		if ops1[i] != ops2[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, ops1[i], ops2[i])
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	p1, p2 := NewApp(YcsbMem()), NewApp(YcsbMem())
	ctx1, ctx2 := testCtx(), testCtx()
	ctx2.Seed = 43
	p1.Start(ctx1)
	p2.Start(ctx2)
	defer p1.Close()
	defer p2.Close()
	same := true
	for i := 0; i < 2000; i++ {
		if p1.Next() != p2.Next() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestAppStackFractionCalibration(t *testing.T) {
	cases := []struct {
		params   AppParams
		min, max float64
	}{
		{GapbsPR(), 0.60, 0.80},  // paper: ~70%
		{G500SSSP(), 0.35, 0.55}, // ~45%
		{YcsbMem(), 0.08, 0.25},  // ~15%
	}
	for _, c := range cases {
		c := c
		t.Run(c.params.Name, func(t *testing.T) {
			p := NewApp(c.params)
			ops := runOps(t, p, 60000)
			stackOps, heapOps, _ := validateOps(t, ops)
			frac := float64(stackOps) / float64(stackOps+heapOps)
			if frac < c.min || frac > c.max {
				t.Fatalf("stack fraction = %.3f, want [%.2f, %.2f]", frac, c.min, c.max)
			}
		})
	}
}

func TestRecursiveDepthBoundsSP(t *testing.T) {
	for _, depth := range []int{4, 8, 16} {
		p := NewRecursive(depth)
		ops := runOps(t, p, 20000)
		ctx := testCtx()
		minSP := ctx.StackHi
		for _, op := range ops {
			if op.SP != 0 && op.SP < minSP {
				minSP = op.SP
			}
		}
		depthBytes := ctx.StackHi - minSP
		want := uint64(depth) * 256
		if depthBytes < want || depthBytes > want+4096 {
			t.Fatalf("depth %d: stack extent %d, want ~%d", depth, depthBytes, want)
		}
	}
}

func TestSparseTouchesDistinctPages(t *testing.T) {
	p := NewSparse(MicroParams{ArrayBytes: 16 * 4096})
	ops := runOps(t, p, 5000)
	pages := map[uint64]bool{}
	for _, op := range ops {
		if op.Kind == Store && op.Size == 4 {
			pages[op.Addr>>12] = true
		}
	}
	if len(pages) < 8 {
		t.Fatalf("sparse touched only %d pages", len(pages))
	}
}

func TestStreamCoversArray(t *testing.T) {
	p := NewStream(MicroParams{ArrayBytes: 4096})
	ops := runOps(t, p, 3000)
	words := map[uint64]bool{}
	for _, op := range ops {
		if op.Kind == Store && op.Size == 8 {
			words[op.Addr] = true
		}
	}
	if len(words) < 4096/8 {
		t.Fatalf("stream wrote %d distinct words, want >= 512", len(words))
	}
}

func TestQuicksortActuallySorts(t *testing.T) {
	// The generator sorts an internal array; here we verify the call
	// depth varies (recursion) and ops keep flowing across re-sorts.
	p := NewQuicksort(128)
	ops := runOps(t, p, 30000)
	depths := map[uint64]bool{}
	for _, op := range ops {
		if op.SP != 0 {
			depths[op.SP] = true
		}
	}
	if len(depths) < 5 {
		t.Fatalf("quicksort used %d distinct SPs, want recursion", len(depths))
	}
}

func TestCloseTerminatesGenerator(t *testing.T) {
	p := NewStream(MicroParams{})
	p.Start(testCtx())
	p.Next()
	p.Close() // must not hang
	// Double close is safe.
	p.Close()
}

func TestCounterProgram(t *testing.T) {
	c := NewCounter(10)
	c.Start(testCtx())
	n := 0
	for {
		op := c.Next()
		if op.Kind == End {
			break
		}
		n++
		if n > 1000 {
			t.Fatal("counter never ended")
		}
	}
	if c.Progress() != 10 {
		t.Fatalf("progress = %d", c.Progress())
	}
	if got := c.Next(); got.Kind != End {
		t.Fatal("Next after End must return End")
	}
}

func TestCounterSnapshotRestore(t *testing.T) {
	c := NewCounter(100)
	c.Start(testCtx())
	for i := 0; i < 42; i++ {
		c.Next()
	}
	snap := c.Snapshot()
	want := []Op{}
	probe := NewCounter(100)
	probe.Start(testCtx())
	probe.Restore(snap)
	for i := 0; i < 20; i++ {
		want = append(want, probe.Next())
	}
	// Continue the original; streams must match.
	for i := 0; i < 20; i++ {
		got := c.Next()
		if got != want[i] {
			t.Fatalf("op %d after restore differs: %+v vs %+v", i, got, want[i])
		}
	}
}

func TestEndAfterBodyReturns(t *testing.T) {
	p := NewProgram("finite", func(g *G) {
		g.Store(g.Ctx.HeapLo, 8)
	})
	p.Start(testCtx())
	if op := p.Next(); op.Kind != Store {
		t.Fatalf("first op = %+v", op)
	}
	if op := p.Next(); op.Kind != End {
		t.Fatalf("second op = %+v", op)
	}
	if op := p.Next(); op.Kind != End {
		t.Fatal("End not sticky")
	}
}

func TestCallRetBalance(t *testing.T) {
	p := NewProgram("callret", func(g *G) {
		start := g.SP()
		g.Call(128)
		g.StoreLocal(8, 8)
		g.Ret(128)
		if g.SP() != start {
			panic("unbalanced")
		}
		g.Compute(1)
	})
	p.Start(testCtx())
	defer p.Close()
	ops := []Op{}
	for {
		op := p.Next()
		if op.Kind == End {
			break
		}
		ops = append(ops, op)
	}
	// Call emits the return-address push; Ret emits its load.
	if len(ops) != 4 {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Kind != Store || ops[2].Kind != Load {
		t.Fatalf("call/ret shape wrong: %+v", ops)
	}
}

func TestStartTwicePanics(t *testing.T) {
	p := NewStream(MicroParams{})
	p.Start(testCtx())
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Start(testCtx())
}

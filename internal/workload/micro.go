package workload

import "prosper/internal/sim"

// Table III micro-benchmarks. Each operates on an array allocated in
// function scope (i.e., on the stack) and loops forever; experiment runs
// bound them by simulated time.

// MicroParams sizes the micro-benchmarks.
type MicroParams struct {
	ArrayBytes   uint64   // stack array the access-pattern benches operate on
	WritesPerRun int      // stores per iteration for Random
	ComputeBlock sim.Time // compute cycles between bursts
}

// DefaultMicroParams returns sizes that exercise multiple stack pages but
// remain small enough for dense simulation.
func DefaultMicroParams() MicroParams {
	return MicroParams{ArrayBytes: 64 << 10, WritesPerRun: 1024, ComputeBlock: 1000}
}

func (p MicroParams) withDefaults() MicroParams {
	d := DefaultMicroParams()
	if p.ArrayBytes == 0 {
		p.ArrayBytes = d.ArrayBytes
	}
	if p.WritesPerRun == 0 {
		p.WritesPerRun = d.WritesPerRun
	}
	if p.ComputeBlock == 0 {
		p.ComputeBlock = d.ComputeBlock
	}
	return p
}

// NewRandom writes to random 8-byte elements of a stack-allocated array
// ("Random" in Table III — the average case for Prosper).
func NewRandom(p MicroParams) Program {
	p = p.withDefaults()
	return NewProgram("random", func(g *G) {
		frame := p.ArrayBytes + 64
		base := g.Call(frame)
		for {
			for i := 0; i < p.WritesPerRun; i++ {
				off := g.Rng.Uint64n(p.ArrayBytes/8) * 8
				g.Store(base+off, 8)
			}
			g.Compute(p.ComputeBlock)
		}
	})
}

// NewStream writes every element of a stack-allocated array sequentially
// ("Stream" — the worst case: everything is dirty, so fine-grained
// tracking cannot shrink the checkpoint).
func NewStream(p MicroParams) Program {
	p = p.withDefaults()
	return NewProgram("stream", func(g *G) {
		frame := p.ArrayBytes + 64
		base := g.Call(frame)
		for {
			for off := uint64(0); off < p.ArrayBytes; off += 8 {
				g.Store(base+off, 8)
			}
			g.Compute(p.ComputeBlock)
		}
	})
}

// NewSparse dirties four bytes of each 4 KiB page of a stack array across
// recursive invocations ("Sparse" — the best case: page-granularity
// tracking copies 1024x more than needed).
func NewSparse(p MicroParams) Program {
	p = p.withDefaults()
	return NewProgram("sparse", func(g *G) {
		pages := p.ArrayBytes / 4096
		if pages == 0 {
			pages = 1
		}
		var recurse func(depth uint64)
		recurse = func(depth uint64) {
			const frame = 4096 + 64
			base := g.Call(frame)
			g.Store(base+8, 4) // four bytes in this call's page
			if depth+1 < pages {
				recurse(depth + 1)
			}
			g.Ret(frame)
		}
		for {
			recurse(0)
			g.Compute(p.ComputeBlock)
		}
	})
}

// NewQuicksort sorts an array allocated in the heap using real recursion;
// the stack sees the call frames ("Quicksort" in Table III). The sort
// operates on a deterministic pseudo-random key array held inside the
// generator; loads/stores are emitted for every key comparison and swap.
func NewQuicksort(elems int) Program {
	if elems <= 0 {
		elems = 4096
	}
	return NewProgram("quicksort", func(g *G) {
		keys := make([]uint64, elems)
		addr := func(i int) uint64 { return g.Ctx.HeapLo + uint64(i)*8 }
		reset := func() {
			for i := range keys {
				keys[i] = g.Rng.Uint64()
				g.Store(addr(i), 8)
			}
		}
		var sort func(lo, hi int)
		sort = func(lo, hi int) {
			const frame = 96 // lo, hi, pivot, saved regs, return address
			base := g.Call(frame)
			g.StoreLocal(8, 8)  // spill lo
			g.StoreLocal(16, 8) // spill hi
			_ = base
			if hi-lo > 1 {
				pivot := keys[hi-1]
				g.Load(addr(hi-1), 8)
				store := lo
				for i := lo; i < hi-1; i++ {
					g.Load(addr(i), 8)
					if keys[i] < pivot {
						keys[i], keys[store] = keys[store], keys[i]
						g.Store(addr(i), 8)
						g.Store(addr(store), 8)
						store++
					}
				}
				keys[store], keys[hi-1] = keys[hi-1], keys[store]
				g.Store(addr(store), 8)
				g.Store(addr(hi-1), 8)
				g.Compute(sim.Time(hi - lo)) // comparison ALU work
				sort(lo, store)
				sort(store+1, hi)
			}
			g.Ret(frame)
		}
		for {
			reset()
			sort(0, elems)
			g.Compute(1000)
		}
	})
}

// NewRecursive performs recursive invocations with a parameterized call
// depth ("Recursive" / Rec-4 / Rec-8 / Rec-16). Each call writes its
// frame's locals, recurses, and returns.
func NewRecursive(depth int) Program {
	if depth <= 0 {
		depth = 8
	}
	return NewProgram("recursive", func(g *G) {
		var rec func(d int)
		rec = func(d int) {
			const frame = 256
			g.Call(frame)
			for off := uint64(8); off < 64; off += 8 {
				g.StoreLocal(off, 8)
			}
			if d > 1 {
				rec(d - 1)
			}
			g.LoadLocal(8, 8)
			g.Ret(frame)
		}
		for {
			rec(depth)
			g.Compute(200)
		}
	})
}

// NewNormal emits stack writes whose per-block count is drawn from a
// normal distribution with mean 63 and stddev 20, between compute blocks
// of one thousand register increments ("Normal" in Table III).
func NewNormal() Program {
	return newDistributed("normal", func(g *G) int {
		n := int(g.Rng.Normal(63, 20) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	})
}

// NewPoisson is NewNormal with a Poisson(63) count ("Poisson").
func NewPoisson() Program {
	return newDistributed("poisson", func(g *G) int { return g.Rng.Poisson(63) })
}

func newDistributed(name string, draw func(*G) int) Program {
	return NewProgram(name, func(g *G) {
		const arrayBytes = 32 << 10
		base := g.Call(arrayBytes + 64)
		for {
			n := draw(g)
			for i := 0; i < n; i++ {
				off := g.Rng.Uint64n(arrayBytes/8) * 8
				g.Store(base+off, 8)
			}
			// One thousand register increments: one cycle each.
			g.Compute(1000)
		}
	})
}

package workload

import "prosper/internal/sim"

// AppParams parameterize the synthetic application models. The presets
// below are calibrated so that the statistics the paper reports for each
// benchmark — fraction of memory operations hitting the stack (Fig 1),
// fraction of stack writes landing beyond the final SP of an interval
// (Fig 2), and the page-vs-byte checkpoint-size ratio (Fig 4) — emerge
// from the generated stream. The evaluated persistence mechanisms only
// observe the memory-access stream, so matching these statistics is what
// preserves each experiment's behaviour (see DESIGN.md §4).
type AppParams struct {
	Name string

	// StackOpFrac is the fraction of memory operations that target the
	// stack; StoreFrac is the fraction of those that are writes.
	StackOpFrac float64
	StoreFrac   float64

	// HotLocals is the number of distinct hot 8-byte slots in the current
	// frame that absorb most stack writes (loop variables, spilled
	// registers): more hot locals -> more coalescing.
	HotLocals int

	// ScatterRegions/ScatterSlots, when non-zero, replace the hot-local
	// pattern with a poor-spatial-locality one: writes pick a random
	// region (256 B, one bitmap word at 8 B granularity) and one of a few
	// fixed 32 B-spaced slots in it. With more regions than lookup-table
	// entries this produces the eviction-churned bitmap traffic real
	// pointer-chasing code (mcf) exhibits in Figure 13.
	ScatterRegions int
	ScatterSlots   int

	// SparsePages and WordsPerPage shape a large stack-resident buffer
	// that is touched sparsely each burst (e.g., per-vertex temporaries):
	// they control the page-vs-byte checkpoint-size ratio.
	SparsePages  int
	WordsPerPage int

	// ExcursionEvery and ExcursionDepth drive call-chain excursions that
	// grow the stack and fully return, producing writes beyond the
	// interval-final SP (SP-unawareness waste).
	ExcursionEvery int
	ExcursionDepth int
	FrameBytes     uint64

	// HeapBytes is the heap working set touched uniformly at random.
	HeapBytes uint64

	// ComputePerOp approximates non-memory work per memory operation.
	ComputePerOp sim.Time

	// BurstOps is the number of memory operations between compute blocks.
	BurstOps int
}

// GapbsPR models PageRank from GAPBS: ~70% of operations hit the stack,
// writes are concentrated in very few granules per touched page (the
// paper measures a 300x page-vs-byte checkpoint ratio).
func GapbsPR() AppParams {
	// Calibration: with excursions of depth d every E burst ops, an
	// excursion contributes 7d stack ops (5d writes); the burst
	// contributes E*StackOpFrac stack ops. The parameters below solve for
	// ~70% overall stack ops and ~20% of stack writes beyond the final SP.
	return AppParams{
		Name:        "gapbs_pr",
		StackOpFrac: 0.67, StoreFrac: 0.45,
		HotLocals:   6,
		SparsePages: 48, WordsPerPage: 1,
		ExcursionEvery: 384, ExcursionDepth: 6, FrameBytes: 192,
		HeapBytes:    8 << 20,
		ComputePerOp: 2, BurstOps: 256,
	}
}

// G500SSSP models SSSP from Graph500: ~45% stack operations with spatial
// locality in its stack accesses (its bitmap traffic falls as HWM rises,
// Fig 13) and a ~56x page-vs-byte ratio.
func G500SSSP() AppParams {
	// ~45% overall stack ops, ~25% of stack writes beyond final SP.
	return AppParams{
		Name:        "g500_sssp",
		StackOpFrac: 0.40, StoreFrac: 0.50,
		HotLocals:   24,
		SparsePages: 24, WordsPerPage: 8,
		ExcursionEvery: 608, ExcursionDepth: 8, FrameBytes: 160,
		HeapBytes:    16 << 20,
		ComputePerOp: 2, BurstOps: 256,
	}
}

// YcsbMem models Memcached under YCSB: only ~15% stack operations, but
// call-heavy request handling puts ~36% of stack writes beyond the final
// SP of a 10 ms interval, and a ~33x page-vs-byte ratio.
func YcsbMem() AppParams {
	// ~15% overall stack ops, ~36% of stack writes beyond final SP
	// (Fig 2: Ycsb_mem is the most call-churned of the three).
	return AppParams{
		Name:        "ycsb_mem",
		StackOpFrac: 0.11, StoreFrac: 0.55,
		HotLocals:   48,
		SparsePages: 12, WordsPerPage: 16,
		ExcursionEvery: 2048, ExcursionDepth: 14, FrameBytes: 320,
		HeapBytes:    32 << 20,
		ComputePerOp: 3, BurstOps: 128,
	}
}

// SPEC CPU 2017-like models for the tracking-overhead study (Fig 12/13).

// SpecMCF models 605.mcf_s: pointer chasing with poor stack spatial
// locality (bitmap traffic rises with HWM in Fig 13).
func SpecMCF() AppParams {
	return AppParams{
		Name:        "mcf",
		StackOpFrac: 0.30, StoreFrac: 0.40,
		HotLocals: 4,
		// 24 scatter regions exceed the 16-entry lookup table, so entries
		// are eviction-churned; 8 slots per region keep popcounts in the
		// LWM..HWM band where the HWM/LWM policies matter.
		ScatterRegions: 24, ScatterSlots: 8,
		SparsePages: 64, WordsPerPage: 2,
		ExcursionEvery: 512, ExcursionDepth: 4, FrameBytes: 128,
		HeapBytes:    64 << 20,
		ComputePerOp: 3, BurstOps: 128,
	}
}

// SpecOmnetpp models 620.omnetpp_s: discrete-event simulation, call-heavy.
func SpecOmnetpp() AppParams {
	return AppParams{
		Name:        "omnetpp",
		StackOpFrac: 0.40, StoreFrac: 0.50,
		HotLocals:   16,
		SparsePages: 16, WordsPerPage: 6,
		ExcursionEvery: 256, ExcursionDepth: 10, FrameBytes: 256,
		HeapBytes:    32 << 20,
		ComputePerOp: 2, BurstOps: 192,
	}
}

// SpecPerlbench models 600.perlbench_s: interpreter loop, deep calls.
func SpecPerlbench() AppParams {
	return AppParams{
		Name:        "perlbench",
		StackOpFrac: 0.55, StoreFrac: 0.50,
		HotLocals:   32,
		SparsePages: 8, WordsPerPage: 12,
		ExcursionEvery: 128, ExcursionDepth: 12, FrameBytes: 224,
		HeapBytes:    16 << 20,
		ComputePerOp: 2, BurstOps: 192,
	}
}

// SpecLeela models 641.leela_s: game-tree search, recursive.
func SpecLeela() AppParams {
	return AppParams{
		Name:        "leela",
		StackOpFrac: 0.50, StoreFrac: 0.45,
		HotLocals:   12,
		SparsePages: 16, WordsPerPage: 4,
		ExcursionEvery: 192, ExcursionDepth: 16, FrameBytes: 192,
		HeapBytes:    8 << 20,
		ComputePerOp: 3, BurstOps: 160,
	}
}

// NewApp builds the generator for an application model.
func NewApp(p AppParams) Program {
	return NewProgram(p.Name, func(g *G) {
		// Main function frame: hot locals + scatter regions + the sparse
		// buffer.
		sparseBytes := uint64(p.SparsePages) * 4096
		hotBytes := uint64(p.HotLocals+2) * 8
		scatterBytes := uint64(p.ScatterRegions) * 256
		mainFrame := sparseBytes + hotBytes + scatterBytes + 64
		base := g.Call(mainFrame)
		hotBase := base
		scatterBase := base + hotBytes
		sparseBase := base + hotBytes + scatterBytes

		// The model's heap working set never exceeds the heap arena the
		// process actually has.
		heapWS := p.HeapBytes
		if g.Ctx.HeapSize > 0 && heapWS > g.Ctx.HeapSize {
			heapWS = g.Ctx.HeapSize
		}
		heapAddr := func() uint64 {
			return g.Ctx.HeapLo + g.Rng.Uint64n(heapWS/8)*8
		}

		// One excursion: a call chain that grows the stack, writes its
		// frames, and fully unwinds. Writes inside it are below any SP
		// observed at burst boundaries.
		excursion := func() {
			var rec func(d int)
			rec = func(d int) {
				fb := g.Call(p.FrameBytes)
				for off := uint64(8); off < 40; off += 8 {
					g.Store(fb+off, 8)
				}
				if d > 1 {
					rec(d - 1)
				}
				g.Ret(p.FrameBytes)
			}
			rec(p.ExcursionDepth)
		}

		sinceExcursion := 0
		sparseCursor := 0
		for {
			for i := 0; i < p.BurstOps; i++ {
				sinceExcursion++
				if p.ExcursionEvery > 0 && sinceExcursion >= p.ExcursionEvery {
					sinceExcursion = 0
					excursion()
				}
				stack := g.Rng.Float64() < p.StackOpFrac
				write := g.Rng.Float64() < p.StoreFrac
				if stack {
					// Mostly hot locals; occasionally a sparse-buffer touch.
					if write && p.SparsePages > 0 && g.Rng.Intn(16) == 0 {
						page := sparseCursor % p.SparsePages
						sparseCursor++
						word := g.Rng.Intn(p.WordsPerPage)
						addr := sparseBase + uint64(page)*4096 + uint64(word)*8
						g.Store(addr, 8)
						continue
					}
					var slot uint64
					if p.ScatterRegions > 0 {
						region := uint64(g.Rng.Intn(p.ScatterRegions))
						s := uint64(g.Rng.Intn(p.ScatterSlots))
						slot = scatterBase + region*256 + s*32
					} else {
						slot = hotBase + uint64(g.Rng.Intn(p.HotLocals))*8
					}
					if write {
						g.Store(slot, 8)
					} else {
						g.Load(slot, 8)
					}
				} else {
					if write {
						g.Store(heapAddr(), 8)
					} else {
						g.Load(heapAddr(), 8)
					}
				}
			}
			g.Compute(sim.Time(p.BurstOps) * p.ComputePerOp)
		}
	})
}

// Package workload provides the simulated programs that drive the
// machine: the paper's Table III micro-benchmarks (Random, Stream,
// Sparse, Quicksort, Recursive, Normal, Poisson), synthetic models of the
// application benchmarks (Gapbs_pr, G500_sssp, Ycsb_mem) calibrated to
// the stack-usage characteristics the paper reports, and SPEC CPU
// 2017-like access-pattern models used in the tracking-overhead study.
//
// Programs are pull-based op generators: the kernel (or the trace
// capturer) repeatedly calls Next and executes the returned operation.
// Generators are written as ordinary Go code — including real recursion
// for Quicksort — running in a producer goroutine synchronized through an
// unbuffered channel, which keeps them deterministic.
package workload

import "prosper/internal/sim"

// Kind discriminates operation types.
type Kind uint8

// Operation kinds.
const (
	Compute Kind = iota // advance time by Cycles
	Load                // read Size bytes at Addr
	Store               // write Size bytes at Addr
	End                 // program finished
)

// Op is one operation of a simulated instruction stream. SP carries the
// program's stack pointer after the operation, which the tracing and
// SP-awareness analyses consume.
type Op struct {
	Kind   Kind
	Addr   uint64
	Size   int32
	Cycles sim.Time
	SP     uint64
}

// Context tells a program where its segments live.
type Context struct {
	StackHi      uint64 // initial stack pointer (exclusive top of stack)
	StackReserve uint64 // maximum stack depth available below StackHi
	HeapLo       uint64 // base of the program's heap arena
	HeapSize     uint64
	Seed         uint64
}

// Program is a runnable instruction stream.
type Program interface {
	Name() string
	// Start initializes the program; it must be called exactly once
	// before the first Next.
	Start(ctx Context)
	// Next returns the next operation. After returning End it keeps
	// returning End.
	Next() Op
	// Close releases the generator's resources. Safe to call at any time
	// after Start; Next must not be called afterwards.
	Close()
}

// Checkpointable is implemented by programs whose execution position can
// be saved into a process checkpoint and restored after a crash.
type Checkpointable interface {
	Snapshot() []byte
	Restore([]byte)
}

// stopped is the sentinel used to unwind a generator goroutine on Close.
type stoppedErr struct{}

func (stoppedErr) Error() string { return "workload: generator stopped" }

// G is the helper state passed to generator bodies: it tracks the stack
// pointer, owns the deterministic RNG, and provides emit primitives.
type G struct {
	Ctx Context
	Rng *sim.Rand

	sp      uint64
	ops     chan Op       //prosperlint:ignore concurrency unbuffered handoff: the producer only runs while the consumer blocks, so op order is deterministic
	stop    chan struct{} //prosperlint:ignore concurrency unbuffered handoff: the producer only runs while the consumer blocks, so op order is deterministic
	stopped bool
}

// SP returns the current simulated stack pointer.
func (g *G) SP() uint64 { return g.sp }

func (g *G) send(op Op) {
	op.SP = g.sp
	select { //prosperlint:ignore concurrency unbuffered handoff: the producer only runs while the consumer blocks, so op order is deterministic
	case g.ops <- op: //prosperlint:ignore concurrency unbuffered handoff: the producer only runs while the consumer blocks, so op order is deterministic
	case <-g.stop: //prosperlint:ignore concurrency stop is closed exactly once by Close; the panic unwinds the producer deterministically
		panic(stoppedErr{})
	}
}

// Compute advances simulated time.
func (g *G) Compute(cycles sim.Time) { g.send(Op{Kind: Compute, Cycles: cycles}) }

// Load reads size bytes at addr.
func (g *G) Load(addr uint64, size int32) { g.send(Op{Kind: Load, Addr: addr, Size: size}) }

// Store writes size bytes at addr.
func (g *G) Store(addr uint64, size int32) { g.send(Op{Kind: Store, Addr: addr, Size: size}) }

// Call opens a stack frame of frameBytes (8-byte aligned): it pushes the
// return address and returns the new frame base (== new SP).
func (g *G) Call(frameBytes uint64) uint64 {
	if frameBytes < 8 {
		frameBytes = 8
	}
	g.sp -= frameBytes
	// Return address push at the top of the new frame.
	g.Store(g.sp+frameBytes-8, 8)
	return g.sp
}

// Ret closes the current frame of frameBytes: it loads the return address
// and pops.
func (g *G) Ret(frameBytes uint64) {
	if frameBytes < 8 {
		frameBytes = 8
	}
	g.Load(g.sp+frameBytes-8, 8)
	g.sp += frameBytes
}

// StoreLocal writes size bytes at offset off in the current frame.
func (g *G) StoreLocal(off uint64, size int32) { g.Store(g.sp+off, size) }

// LoadLocal reads size bytes at offset off in the current frame.
func (g *G) LoadLocal(off uint64, size int32) { g.Load(g.sp+off, size) }

// genProgram adapts a generator body into a Program. The body runs in its
// own goroutine; when it returns, the program emits End forever.
type genProgram struct {
	name string
	body func(*G)
	g    *G
	done bool
}

// NewProgram builds a Program from a generator body. The body receives a
// ready G and emits operations until it returns (or forever for steady-
// state workloads, which are terminated by Close).
func NewProgram(name string, body func(*G)) Program {
	return &genProgram{name: name, body: body}
}

func (p *genProgram) Name() string { return p.name }

func (p *genProgram) Start(ctx Context) {
	if p.g != nil {
		panic("workload: Start called twice")
	}
	g := &G{
		Ctx:  ctx,
		Rng:  sim.NewRand(ctx.Seed),
		sp:   ctx.StackHi,
		ops:  make(chan Op),       //prosperlint:ignore concurrency unbuffered handoff: the producer only runs while the consumer blocks, so op order is deterministic
		stop: make(chan struct{}), //prosperlint:ignore concurrency unbuffered handoff: the producer only runs while the consumer blocks, so op order is deterministic
	}
	p.g = g
	go func() { //prosperlint:ignore concurrency one producer goroutine per program, lockstep with its consumer; no shared sim state
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stoppedErr); !ok {
					panic(r)
				}
			}
			close(g.ops) //prosperlint:ignore concurrency close signals end-of-ops to the single consumer
		}()
		p.body(g)
	}()
}

func (p *genProgram) Next() Op {
	if p.done {
		return Op{Kind: End}
	}
	op, ok := <-p.g.ops //prosperlint:ignore concurrency unbuffered handoff: the producer only runs while the consumer blocks, so op order is deterministic
	if !ok {
		p.done = true
		return Op{Kind: End}
	}
	return op
}

func (p *genProgram) Close() {
	if p.g == nil || p.g.stopped {
		return
	}
	p.g.stopped = true
	close(p.g.stop) //prosperlint:ignore concurrency close signals stop to the single producer exactly once
	// Drain until the producer exits so its goroutine is collected.
	for range p.g.ops { //prosperlint:ignore concurrency drain after stop: values are discarded, order is irrelevant
	}
	p.done = true
}

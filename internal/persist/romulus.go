package persist

import (
	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/sim"
)

// Romulus implements the twin-copy persistence scheme of Correia et al.
// adapted for the stack the way the paper describes (Section IV-A): both
// the main and backup copies live in NVM; a hardware component logs the
// address and size of every stack modification; at each consistency
// interval the software copies the modifications from main to backup by
// replaying the log entries — without coalescing, so overlapping
// addresses are copied repeatedly, which is what makes it expensive.
type Romulus struct {
	base
	logEntries []extent
	logBytes   uint64
	maxEntries int
}

// NewRomulus returns a factory for the Romulus mechanism.
func NewRomulus() Factory { return func() Mechanism { return &Romulus{} } }

// Name implements Mechanism.
func (r *Romulus) Name() string { return "romulus" }

// PlaceInNVM implements Mechanism: both copies live in NVM.
func (r *Romulus) PlaceInNVM() bool { return true }

// Attach implements Mechanism.
func (r *Romulus) Attach(env *Env, seg Segment) {
	r.attach(env, seg)
	// Each log record is 16 bytes in the meta area (after the header).
	r.maxEntries = int((seg.MetaSize - metaEntries) / 16)
}

// OnStore implements Mechanism: the hardware component appends a log
// entry per stack modification. Log appends hit NVM; consecutive entries
// share cache lines, so one NVM line write is issued per 64 bytes of log.
func (r *Romulus) OnStore(core *machine.Core, vaddr, paddr uint64, size int) sim.Time {
	if len(r.logEntries) >= r.maxEntries {
		// Log full mid-interval: drop to a coarse full-segment record.
		// (Real Romulus would block; the experiments size the log to
		// avoid this, and the counter makes overflow visible.)
		r.Counters.Inc("romulus.log_overflow")
		return 0
	}
	r.logEntries = append(r.logEntries, extent{off: vaddr - r.seg.Lo, size: uint64(size)})
	r.Counters.Inc("romulus.log_entries")
	before := r.logBytes / mem.LineSize
	r.logBytes += 16
	if r.logBytes/mem.LineSize != before {
		// A fresh log line became full: write it back to NVM.
		lineAddr := r.seg.MetaBase + metaEntries + before*mem.LineSize
		r.env.Mach.Ctl.Access(true, lineAddr, sim.Done{})
		r.Counters.Inc("romulus.log_line_writes")
	}
	// The hardware log write buffers; the store itself is not stalled.
	return 0
}

// OnScheduleIn implements Mechanism.
func (r *Romulus) OnScheduleIn(core *machine.Core, done func()) { done() }

// OnScheduleOut implements Mechanism.
func (r *Romulus) OnScheduleOut(core *machine.Core, done func()) { done() }

// BeginInterval implements Mechanism.
func (r *Romulus) BeginInterval() {}

// Checkpoint implements Mechanism: replay every log entry main -> backup,
// one NVM read + NVM write per entry, with no coalescing of overlapping
// addresses. The window of in-flight copies is small, like a software
// copy loop.
func (r *Romulus) Checkpoint(done func(Result)) {
	// Log replay main -> backup is pure payload copy.
	r.env.Attrib.Switch(CauseCopy)
	entries := r.logEntries
	r.logEntries = r.logEntries[:0]
	r.logBytes = 0

	var res Result
	res.Ranges = uint64(len(entries))
	res.MetaScanned = uint64(len(entries))
	if len(entries) == 0 {
		r.env.Eng().Schedule(sim.CompPersist, 0, func() { done(res) })
		return
	}
	m := r.env.Mach
	const window = 4
	issued, completed, inFlight := 0, 0, 0
	var pump func()
	pump = func() {
		for inFlight < window && issued < len(entries) {
			e := entries[issued]
			issued++
			inFlight++
			res.BytesCopied += e.size
			vaddr := r.seg.Lo + e.off
			paddr, _, ok := r.env.AS.PT.Translate(vaddr)
			if !ok {
				panic("persist: romulus log entry not mapped")
			}
			// main (NVM) -> backup (NVM image area).
			m.CopyPhys(r.seg.ImageBase+e.off, paddr, int(e.size), func() {
				inFlight--
				completed++
				if completed == len(entries) {
					done(res)
					return
				}
				pump()
			})
		}
	}
	pump()
}

// Recover implements Mechanism: the backup twin in the image area is the
// consistent copy (the main copy may hold stores from the interrupted
// interval, and a fresh boot hands the segment new NVM frames anyway),
// so recovery maps the segment and copies the backup into the new main
// frames. The backup is offset-contiguous, and lines never logged are
// zero in both twins, so a whole-segment copy is exact.
func (r *Romulus) Recover(done func()) {
	r.env.AS.EnsureRange(r.seg.Lo, r.seg.Hi)
	pending := 0
	fired := false
	complete := func() {
		pending--
		if pending == 0 && fired {
			done()
		}
	}
	for va := r.seg.Lo; va < r.seg.Hi; va += mem.PageSize {
		paddr, _, ok := r.env.AS.PT.Translate(va)
		if !ok {
			panic("persist: romulus recovery mapping failed")
		}
		pending++
		r.env.Mach.CopyPhys(paddr, r.seg.ImageBase+(va-r.seg.Lo), mem.PageSize, complete)
	}
	fired = true
	if pending == 0 {
		r.env.Eng().Schedule(sim.CompPersist, 0, done)
	}
}

package persist

import (
	"math/bits"
	"slices"

	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/sim"
)

// SSPConfig parameterizes sub-page shadow paging.
type SSPConfig struct {
	// ConsolidationInterval is the period of the background OS thread
	// that merges the two physical pages of inactive virtual pages
	// (the paper sweeps 10 µs, 100 µs, and 1 ms).
	ConsolidationInterval sim.Time
}

func (c SSPConfig) withDefaults() SSPConfig {
	if c.ConsolidationInterval == 0 {
		c.ConsolidationInterval = 10 * sim.Microsecond
	}
	return c
}

// SSP implements the sub-page shadow-paging scheme (Ni et al. [41]): the
// segment lives in NVM; hardware-assisted cache-line remapping spreads
// each virtual page's writes across two physical pages, tracked by a
// per-page line bitmap in an extended TLB; a background OS thread
// consolidates the two pages of inactive virtual pages; and each
// consistency interval writes back modified lines (clwb) and applies the
// TLB bitmaps onto the commit bitmap kept in NVM.
//
// Functionally our store path keeps a single authoritative copy; SSP here
// reproduces the scheme's traffic and timing: NVM-resident data, shadow
// allocation, consolidation reads/writes, per-line writebacks, and
// per-page commit-bitmap updates.
type SSP struct {
	base
	cfg SSPConfig

	shadow  map[uint64]uint64 // virtual page -> shadow NVM frame
	working map[uint64]uint64 // virtual page -> line bitmap this interval
	hot     map[uint64]bool   // pages written since the last consolidation tick
	pending map[uint64]uint64 // pages awaiting consolidation -> unconsolidated lines

	ticker *sim.Ticker
}

// NewSSP returns a factory for the SSP mechanism.
func NewSSP(cfg SSPConfig) Factory {
	return func() Mechanism { return &SSP{cfg: cfg.withDefaults()} }
}

// Name implements Mechanism.
func (s *SSP) Name() string { return "ssp" }

// PlaceInNVM implements Mechanism: shadow paging keeps data in NVM.
func (s *SSP) PlaceInNVM() bool { return true }

// Attach implements Mechanism: start the consolidation thread.
func (s *SSP) Attach(env *Env, seg Segment) {
	s.attach(env, seg)
	s.shadow = make(map[uint64]uint64)
	s.working = make(map[uint64]uint64)
	s.hot = make(map[uint64]bool)
	s.pending = make(map[uint64]uint64)
	s.ticker = env.Eng().NewTicker(sim.CompPersist, s.cfg.ConsolidationInterval, s.consolidateTick)
}

// Detach stops the consolidation thread (process exit).
func (s *SSP) Detach() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

// remapPenalty is the base stall the first store to a line pays in each
// consistency interval: a sub-line store to a line whose committed
// version lives in the other physical twin must fetch-merge that version
// from NVM before the redirected write can complete — one NVM read in the
// store pipeline, stretched by whatever congestion the NVM is under
// (which is how the consolidation thread's invocation frequency shows up
// in application performance).
const remapPenalty = 450

// OnStore implements Mechanism: record the modified line in the extended
// TLB bitmap, lazily allocate the page's shadow twin, and charge the
// shadow-remap resolution on the first touch of each line per interval.
func (s *SSP) OnStore(core *machine.Core, vaddr, paddr uint64, size int) sim.Time {
	firstLine := (vaddr >> mem.LineShift) & 63
	lastLine := ((vaddr + uint64(size) - 1) >> mem.LineShift) & 63
	page := vaddr &^ (mem.PageSize - 1)
	if _, ok := s.shadow[page]; !ok {
		f, err := s.env.Mach.NVMFrames.Alloc()
		if err != nil {
			panic("persist: ssp out of NVM frames: " + err.Error())
		}
		s.shadow[page] = f
		s.Counters.Inc("ssp.shadow_pages")
	}
	var stall sim.Time
	for l := firstLine; ; l++ {
		bit := uint64(1) << l
		if s.working[page]&bit == 0 {
			// First store to this line this interval: fetch the committed
			// version from the other twin (timed traffic + pipeline stall,
			// stretched by current NVM congestion).
			s.Counters.Inc("ssp.remap_fetches")
			s.env.Mach.Ctl.Access(false, s.shadow[page]+uint64(l)*mem.LineSize, sim.Done{})
			stall = remapPenalty + s.env.Mach.Ctl.NVM.EstimatedWait()
		}
		s.working[page] |= bit
		if l == lastLine {
			break
		}
	}
	s.hot[page] = true
	return stall
}

// consolidateTick merges inactive pages' twins: for each pending page not
// written since the previous tick, read the remapped lines from one twin
// and write them to the other — real NVM traffic that contends with the
// application, which is exactly the interference the paper measures when
// sweeping the invocation interval.
func (s *SSP) consolidateTick() {
	// The OS thread walks its pending-page list every invocation: one NVM
	// line read per 8 pending-page records (plus one for the list head).
	if n := len(s.pending); n > 0 {
		metaLines := (n*8+mem.LineSize-1)/mem.LineSize + 1
		for i := 0; i < metaLines; i++ {
			s.env.Mach.Ctl.Access(false, s.seg.MetaBase+uint64(i)*mem.LineSize, sim.Done{})
		}
		s.Counters.Add("ssp.metadata_reads", uint64(metaLines))
	}
	// Walk pending pages in address order: these accesses contend with
	// the application on the timed NVM device, so map-iteration order
	// would leak nondeterminism into every co-running measurement.
	pages := make([]uint64, 0, len(s.pending))
	for page := range s.pending {
		pages = append(pages, page)
	}
	slices.Sort(pages)
	for _, page := range pages {
		if s.hot[page] {
			continue
		}
		lines := s.pending[page]
		delete(s.pending, page)
		n := bits.OnesCount64(lines)
		s.Counters.Add("ssp.consolidated_lines", uint64(n))
		shadowFrame := s.shadow[page]
		for l := 0; l < 64; l++ {
			if lines&(1<<uint(l)) == 0 {
				continue
			}
			lineAddr := shadowFrame + uint64(l)*mem.LineSize
			s.env.Mach.Ctl.Access(false, lineAddr, sim.Done{}) // read one twin
			s.env.Mach.Ctl.Access(true, lineAddr, sim.Done{})  // write the other
		}
	}
	// Pages written during this tick become pending for the next. The
	// merge is commutative, so map order is harmless here.
	for page := range s.hot {
		s.pending[page] |= s.working[page]
		delete(s.hot, page)
	}
}

// OnScheduleIn implements Mechanism.
func (s *SSP) OnScheduleIn(core *machine.Core, done func()) { done() }

// OnScheduleOut implements Mechanism.
func (s *SSP) OnScheduleOut(core *machine.Core, done func()) { done() }

// BeginInterval implements Mechanism.
func (s *SSP) BeginInterval() {}

// Checkpoint implements Mechanism: clwb every modified line, send the
// extended-TLB bitmaps to the SSP cache, and apply them onto the commit
// bitmap in NVM (one line write per touched page's bitmap entry).
func (s *SSP) Checkpoint(done func(Result)) {
	// The pause is dominated by the clwb sweep and commit-bitmap writes
	// draining through the NVM write buffers.
	s.env.Attrib.Switch(CauseNVMDrain)
	var res Result
	m := s.env.Mach
	type pageWork struct {
		page  uint64
		lines uint64
	}
	var work []pageWork
	for page, lines := range s.working {
		work = append(work, pageWork{page, lines})
	}
	// Deterministic order.
	slices.SortFunc(work, func(a, b pageWork) int {
		switch {
		case a.page < b.page:
			return -1
		case a.page > b.page:
			return 1
		}
		return 0
	})
	pendingOps := 0
	fired := false
	complete := func() {
		pendingOps--
		if pendingOps == 0 && fired {
			s.commitEpoch()
			done(res)
		}
	}
	completeTok := sim.Thunk(sim.CompPersist, complete)
	for _, w := range work {
		res.Ranges++
		paddr, _, ok := s.env.AS.PT.Translate(w.page)
		if !ok {
			continue
		}
		n := bits.OnesCount64(w.lines)
		res.BytesCopied += uint64(n) * mem.LineSize
		for l := 0; l < 64; l++ {
			if w.lines&(1<<uint(l)) == 0 {
				continue
			}
			pendingOps++
			m.Ctl.Access(true, paddr+uint64(l)*mem.LineSize, completeTok) // clwb
		}
		// Commit-bitmap update in NVM: one line write per page entry. The
		// entry functionally records the page's main NVM frame so recovery
		// can rebuild the virtual->frame mapping; the durability of that
		// record rides this same timed line write through the persistence
		// domain (no extra traffic).
		pendingOps++
		commitAddr := s.seg.MetaBase + metaEntries + ((w.page-s.seg.Lo)/mem.PageSize)*8
		m.Storage.WriteU64(commitAddr, paddr&^(mem.PageSize-1))
		m.Ctl.Access(true, commitAddr, completeTok)
		res.MetaScanned++
	}
	s.working = make(map[uint64]uint64)
	fired = true
	if pendingOps == 0 {
		s.env.Eng().Schedule(sim.CompPersist, 0, func() {
			s.commitEpoch()
			done(res)
		})
	}
}

// commitEpoch records the completed interval's sequence number in the
// segment's commit record. SSP has no single atomic commit point (lines
// persist in place as their writebacks complete); the sequence word is a
// tiny metadata update promoted across the persistence domain when the
// interval's last writeback has already completed.
func (s *SSP) commitEpoch() {
	s.env.Attrib.Switch(CauseCommitFence)
	s.seq++
	st := s.env.Mach.Storage
	st.WriteU64(s.seg.MetaBase+metaPhase, phaseApplied)
	st.WriteU64(s.seg.MetaBase+metaSeq, s.seq)
	s.env.Mach.PersistNVM(s.seg.MetaBase, 16)
}

// Recover implements Mechanism: the durable commit-bitmap entries name
// the NVM frame that held each committed virtual page. The fresh address
// space hands out new frames, so recovery first gathers every surviving
// page's bytes from its old frame (before any remapping can reuse those
// frames), then maps the pages and writes the contents into the new
// frames. Lines never written before the crash are zero in both the old
// and the new frame, so whole-page copies are safe.
func (s *SSP) Recover(done func()) {
	m := s.env.Mach
	st := m.Storage
	if st.ReadU64(s.seg.MetaBase+metaPhase) == phaseEmpty {
		s.env.Eng().Schedule(sim.CompPersist, 0, done)
		return
	}
	type page struct {
		va   uint64
		data []byte
	}
	var pages []page
	nPages := s.seg.Size() / mem.PageSize
	for i := uint64(0); i < nPages; i++ {
		frame := st.ReadU64(s.seg.MetaBase + metaEntries + i*8)
		if frame == 0 {
			continue
		}
		buf := make([]byte, mem.PageSize)
		st.Read(frame, buf)
		pages = append(pages, page{va: s.seg.Lo + i*mem.PageSize, data: buf})
	}
	if len(pages) == 0 {
		s.env.Eng().Schedule(sim.CompPersist, 0, done)
		return
	}
	pending := len(pages)
	for _, pg := range pages {
		s.env.AS.EnsureRange(pg.va, pg.va+mem.PageSize)
		paddr, _, ok := s.env.AS.PT.Translate(pg.va)
		if !ok {
			panic("persist: ssp recovery mapping failed")
		}
		m.WritePhys(paddr, pg.data, func() {
			pending--
			if pending == 0 {
				done()
			}
		})
	}
}

package persist

import (
	"fmt"
	"slices"

	"prosper/internal/sim"
	"prosper/internal/snapbuf"
)

// Snapshotter is the per-mechanism snapshot contract. Every mechanism in
// this package implements it (mostly by promotion from base). Snapshots
// are taken at checkpoint-commit quiescent points, where the only
// checkpoint machinery that may still be in flight is the background
// step-2 apply — whose state is plain data on base and whose parked
// continuation tokens carry the resume keys SetSnapshotID assigned.
type Snapshotter interface {
	SetSnapshotID(pid, segIdx int)
	SaveSnap(w *snapbuf.Writer, claims *sim.EventClaims) error
	LoadSnap(r *snapbuf.Reader) error
	ResumeTokens(reg map[uint64]sim.Done)
}

// saveBase encodes the state every mechanism shares: the commit
// sequence, the background-apply progress, and counters.
func (b *base) saveBase(w *snapbuf.Writer) error {
	if len(b.applyWaiters) != 0 {
		return fmt.Errorf("persist: %d checkpoints serialized behind an apply at snapshot point", len(b.applyWaiters))
	}
	w.U64(b.seq)
	w.Bool(b.applying)
	w.U64(b.apply.seq)
	w.U64(b.apply.count)
	w.U64(b.apply.total)
	w.Int(b.apply.pending)
	b.Counters.SaveSnap(w)
	return nil
}

func (b *base) loadBase(r *snapbuf.Reader) error {
	b.seq = r.U64()
	b.applying = r.Bool()
	b.apply.seq = r.U64()
	b.apply.count = r.U64()
	b.apply.total = r.U64()
	b.apply.pending = r.Int()
	b.applyWaiters = nil
	if r.Err() != nil {
		return r.Err()
	}
	return b.Counters.LoadSnap(r)
}

// SaveSnap implements Snapshotter for mechanisms with no state beyond
// base (None, Dirtybit, WriteProtect, brokenFence — their tracking lives
// in PTEs and TLBs, which the vm layer serializes).
func (b *base) SaveSnap(w *snapbuf.Writer, claims *sim.EventClaims) error {
	return b.saveBase(w)
}

// LoadSnap implements Snapshotter.
func (b *base) LoadSnap(r *snapbuf.Reader) error { return b.loadBase(r) }

// ResumeTokens implements Snapshotter: register the keyed continuation
// prototypes parked device queues and engine slots may reference.
func (b *base) ResumeTokens(reg map[uint64]sim.Done) {
	if k := b.applyStepTok.Key(); k != 0 {
		reg[k] = b.applyStepTok
	}
	if k := b.applyHdrTok.Key(); k != 0 {
		reg[k] = b.applyHdrTok
	}
}

// SaveSnap implements Snapshotter: Prosper adds the bitmap placement and
// the saved tracker MSR/window state. The kernel checkpoints through
// OnScheduleOut, so the tracker context is off-core (cur == nil) at
// every commit; an on-core tracker rejects the snapshot point.
func (p *Prosper) SaveSnap(w *snapbuf.Writer, claims *sim.EventClaims) error {
	if p.cur != nil {
		return fmt.Errorf("persist: prosper tracker still on core %d at snapshot point", p.curCore)
	}
	if err := p.saveBase(w); err != nil {
		return err
	}
	w.U64(p.bitmapPhys)
	w.U64(p.bitmapBytes)
	w.U64(p.state.MSRs.StackLo)
	w.U64(p.state.MSRs.StackHi)
	w.U64(p.state.MSRs.BitmapBase)
	w.U64(p.state.MSRs.Gran)
	w.Bool(p.state.MSRs.Enabled)
	w.U64(p.state.TouchedLo)
	w.U64(p.state.TouchedHi)
	w.Bool(p.state.AnyTouched)
	return nil
}

// LoadSnap implements Snapshotter.
func (p *Prosper) LoadSnap(r *snapbuf.Reader) error {
	if err := p.loadBase(r); err != nil {
		return err
	}
	p.bitmapPhys = r.U64()
	p.bitmapBytes = r.U64()
	p.state.MSRs.StackLo = r.U64()
	p.state.MSRs.StackHi = r.U64()
	p.state.MSRs.BitmapBase = r.U64()
	p.state.MSRs.Gran = r.U64()
	p.state.MSRs.Enabled = r.Bool()
	p.state.TouchedLo = r.U64()
	p.state.TouchedHi = r.U64()
	p.state.AnyTouched = r.Bool()
	p.cur = nil
	p.curCore = -1
	return r.Err()
}

// SaveSnap implements Snapshotter: SSP adds its four page maps (in
// sorted page order — snapshot bytes must be deterministic) and its
// consolidation ticker's pending engine event.
func (s *SSP) SaveSnap(w *snapbuf.Writer, claims *sim.EventClaims) error {
	if err := s.saveBase(w); err != nil {
		return err
	}
	saveU64Map(w, s.shadow)
	saveU64Map(w, s.working)
	pages := make([]uint64, 0, len(s.hot))
	for page := range s.hot {
		pages = append(pages, page)
	}
	slices.Sort(pages)
	w.U64(uint64(len(pages)))
	for _, page := range pages {
		w.U64(page)
	}
	saveU64Map(w, s.pending)
	stopped := s.ticker == nil || s.ticker.Stopped()
	w.Bool(stopped)
	if !stopped {
		when, seq := s.ticker.NextFire()
		w.I64(int64(when))
		w.U64(seq)
		claims.Claim(when, seq)
	}
	return nil
}

// LoadSnap implements Snapshotter. The freshly attached ticker's
// boot-time event was discarded with the rest of the queue; rearm it at
// the saved (when, seq) identity.
func (s *SSP) LoadSnap(r *snapbuf.Reader) error {
	if err := s.loadBase(r); err != nil {
		return err
	}
	var err error
	if s.shadow, err = loadU64Map(r); err != nil {
		return err
	}
	if s.working, err = loadU64Map(r); err != nil {
		return err
	}
	nh := r.Count(8)
	s.hot = make(map[uint64]bool, nh)
	for i := 0; i < nh; i++ {
		s.hot[r.U64()] = true
	}
	if s.pending, err = loadU64Map(r); err != nil {
		return err
	}
	stopped := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if stopped {
		if s.ticker != nil {
			s.ticker.Stop()
		}
		return nil
	}
	when := sim.Time(r.I64())
	seq := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if s.ticker == nil {
		return fmt.Errorf("persist: ssp snapshot has a live consolidation ticker but the mechanism has none")
	}
	if when < s.env.Eng().Now() {
		return fmt.Errorf("persist: ssp ticker event at %d is in the past (now %d)", when, s.env.Eng().Now())
	}
	s.ticker.Rearm(when, seq)
	return nil
}

// SaveSnap implements Snapshotter: Romulus adds the hardware store log.
func (ro *Romulus) SaveSnap(w *snapbuf.Writer, claims *sim.EventClaims) error {
	if err := ro.saveBase(w); err != nil {
		return err
	}
	w.U64(uint64(len(ro.logEntries)))
	for _, e := range ro.logEntries {
		w.U64(e.off)
		w.U64(e.size)
	}
	w.U64(ro.logBytes)
	return nil
}

// LoadSnap implements Snapshotter.
func (ro *Romulus) LoadSnap(r *snapbuf.Reader) error {
	if err := ro.loadBase(r); err != nil {
		return err
	}
	n := r.Count(16)
	ro.logEntries = ro.logEntries[:0]
	for i := 0; i < n; i++ {
		ro.logEntries = append(ro.logEntries, extent{off: r.U64(), size: r.U64()})
	}
	ro.logBytes = r.U64()
	return r.Err()
}

// saveU64Map encodes a map in sorted key order.
func saveU64Map(w *snapbuf.Writer, m map[uint64]uint64) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.U64(k)
		w.U64(m[k])
	}
}

func loadU64Map(r *snapbuf.Reader) (map[uint64]uint64, error) {
	n := r.Count(16)
	m := make(map[uint64]uint64, n)
	for i := 0; i < n; i++ {
		k := r.U64()
		m[k] = r.U64()
	}
	return m, r.Err()
}

// Every mechanism must survive a snapshot boundary.
var (
	_ Snapshotter = (*None)(nil)
	_ Snapshotter = (*Dirtybit)(nil)
	_ Snapshotter = (*WriteProtect)(nil)
	_ Snapshotter = (*Prosper)(nil)
	_ Snapshotter = (*AdaptiveProsper)(nil)
	_ Snapshotter = (*SSP)(nil)
	_ Snapshotter = (*Romulus)(nil)
	_ Snapshotter = (*brokenFence)(nil)
)

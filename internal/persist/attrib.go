package persist

import (
	"prosper/internal/sim"
)

// Cause names one contributor to a checkpoint pause. The kernel begins
// an attribution epoch when it starts pausing a process; mechanisms
// switch the active cause as the critical path moves through their
// phases; the kernel ends the epoch at the commit point.
type Cause int

const (
	// CauseQuiesce is the wait for threads to reach an op boundary,
	// drain their store buffers, and park off-core.
	CauseQuiesce Cause = iota
	// CauseTrackerFlush is the Prosper lookup-table flush and the poll
	// for bitmap-traffic quiescence.
	CauseTrackerFlush
	// CauseInspectClear is dirty-metadata inspection and clearing:
	// bitmap scan (Prosper) or PTE walk (Dirtybit/WriteProtect).
	CauseInspectClear
	// CauseCopy is payload movement: register/stack gathers into the
	// temp buffer, or log replay (Romulus).
	CauseCopy
	// CauseNVMDrain is waiting on NVM write traffic to complete (temp
	// blob burst, SSP clwb sweep).
	CauseNVMDrain
	// CauseCommitFence is the final ordered commit-record write.
	CauseCommitFence
	// NumCauses bounds per-cause arrays.
	NumCauses
)

// String returns the stable snake_case name used in metrics and tables.
func (c Cause) String() string {
	switch c {
	case CauseQuiesce:
		return "quiesce"
	case CauseTrackerFlush:
		return "tracker_flush"
	case CauseInspectClear:
		return "inspect_clear"
	case CauseCopy:
		return "copy"
	case CauseNVMDrain:
		return "nvm_drain"
	case CauseCommitFence:
		return "commit_fence"
	default:
		return "unknown"
	}
}

// CauseNames returns every cause name in Cause order.
func CauseNames() []string {
	out := make([]string, NumCauses)
	for c := Cause(0); c < NumCauses; c++ {
		out[c] = c.String()
	}
	return out
}

// Attrib is a per-process cause register for checkpoint-stall
// attribution. Between Begin and End exactly one cause is active at any
// sim time, and every elapsed cycle is charged to the cause that was
// active — so the per-cause cycles sum *exactly* to the measured pause,
// by construction. This is critical-path attribution: phases that
// overlap in the memory system (e.g. register saves racing the stack
// copy) are charged to whichever cause the checkpoint sequencer was
// waiting on.
//
// All methods are nil-safe, and Switch is a no-op outside an epoch, so
// mechanism code can call it unconditionally (ordinary context-switch
// flushes happen outside Begin/End and record nothing).
type Attrib struct {
	eng    *sim.Engine
	active bool
	cur    Cause
	since  sim.Time
	cycles [NumCauses]uint64
}

// NewAttrib returns an attribution register on the given engine.
func NewAttrib(eng *sim.Engine) *Attrib { return &Attrib{eng: eng} }

// Begin opens an attribution epoch with the given initial cause,
// discarding any per-cause state from the previous epoch.
func (a *Attrib) Begin(c Cause) {
	if a == nil {
		return
	}
	a.cycles = [NumCauses]uint64{}
	a.active = true
	a.cur = c
	a.since = a.eng.Now()
}

// Switch charges the cycles since the last transition to the outgoing
// cause and makes c the active cause. No-op outside an epoch.
func (a *Attrib) Switch(c Cause) {
	if a == nil || !a.active {
		return
	}
	now := a.eng.Now()
	a.cycles[a.cur] += uint64(now - a.since)
	a.cur = c
	a.since = now
}

// Active reports whether an epoch is open.
func (a *Attrib) Active() bool { return a != nil && a.active }

// End closes the epoch, charging the tail to the active cause, and
// returns the per-cause cycle totals.
func (a *Attrib) End() [NumCauses]uint64 {
	if a == nil {
		return [NumCauses]uint64{}
	}
	if a.active {
		a.cycles[a.cur] += uint64(a.eng.Now() - a.since)
		a.active = false
	}
	return a.cycles
}

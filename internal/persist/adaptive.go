package persist

// AdaptiveConfig bounds the dynamic-granularity extension. The paper
// leaves OS-driven granularity adjustment as future work ("Granularity
// setting should be dynamically adjusted (from the OS layer) to reduce
// the overhead for workloads like Stream"); this implements the obvious
// scheme: escalate the tracking granularity when intervals are dense
// (most of the touched window is dirty, so fine bits only add metadata
// cost) and refine it when they are sparse.
type AdaptiveConfig struct {
	Prosper ProsperConfig
	// MinGran..MaxGran bound the granularity (defaults 8..4096; 4096
	// makes dense phases behave like the page-level Dirtybit scheme).
	MinGran uint64
	MaxGran uint64
	// DenseFrac and SparseFrac are the dirty-density thresholds that
	// trigger escalation and refinement (defaults 0.5 and 0.125).
	DenseFrac  float64
	SparseFrac float64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	c.Prosper = c.Prosper.withDefaults()
	if c.MinGran == 0 {
		c.MinGran = 8
	}
	if c.MaxGran == 0 {
		c.MaxGran = 4096
	}
	if c.DenseFrac == 0 {
		c.DenseFrac = 0.5
	}
	if c.SparseFrac == 0 {
		c.SparseFrac = 0.125
	}
	return c
}

// AdaptiveProsper wraps Prosper with per-interval granularity feedback.
// The granularity change takes effect at the interval boundary, where the
// bitmap is clear, so intervals remain independent.
type AdaptiveProsper struct {
	Prosper
	acfg AdaptiveConfig
}

// NewAdaptiveProsper returns a factory for the adaptive mechanism.
func NewAdaptiveProsper(cfg AdaptiveConfig) Factory {
	cfg = cfg.withDefaults()
	return func() Mechanism {
		a := &AdaptiveProsper{acfg: cfg}
		a.cfg = cfg.Prosper
		// The bitmap must be sized for the finest granularity it may
		// ever use.
		a.cfg.Granularity = cfg.MinGran
		a.curCore = -1
		return a
	}
}

// Name implements Mechanism.
func (a *AdaptiveProsper) Name() string { return "prosper-adaptive" }

// Gran returns the currently selected tracking granularity.
func (a *AdaptiveProsper) Gran() uint64 { return a.state.MSRs.Gran }

// Checkpoint implements Mechanism: run the normal Prosper checkpoint,
// then adjust granularity from the interval's dirty density.
func (a *AdaptiveProsper) Checkpoint(done func(Result)) {
	winLo, winHi, any := a.state.TouchedLo, a.state.TouchedHi, a.state.AnyTouched
	a.Prosper.Checkpoint(func(r Result) {
		a.adjust(r, winLo, winHi, any)
		done(r)
	})
}

func (a *AdaptiveProsper) adjust(r Result, winLo, winHi uint64, any bool) {
	if !any || winHi <= winLo {
		return
	}
	density := float64(r.BytesCopied) / float64(winHi-winLo)
	gran := a.state.MSRs.Gran
	switch {
	case density > a.acfg.DenseFrac && gran < a.acfg.MaxGran:
		gran *= 2
		a.Counters.Inc("adaptive.escalations")
	case density < a.acfg.SparseFrac && gran > a.acfg.MinGran:
		gran /= 2
		a.Counters.Inc("adaptive.refinements")
	default:
		return
	}
	// Reprogram the MSR state at the interval boundary (the bitmap is
	// clear here, so past and future intervals do not mix granularities).
	a.state.MSRs.Gran = gran
	if a.cur != nil {
		a.cur.SetGranularity(gran)
	}
}

var _ Mechanism = (*AdaptiveProsper)(nil)

package persist

import (
	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/vm"
)

// DirtybitConfig parameterizes the page-granularity baseline.
type DirtybitConfig struct {
	// ScanPerPTE is the OS cost of examining one page-table entry while
	// collecting dirty pages (LDT-style walk).
	ScanPerPTE sim.Time
}

func (c DirtybitConfig) withDefaults() DirtybitConfig {
	if c.ScanPerPTE == 0 {
		c.ScanPerPTE = 4
	}
	return c
}

// Dirtybit is the page-level baseline (LDT [45]): the segment lives in
// DRAM; the hardware page walker sets PTE dirty bits; the OS walks the
// segment's PTEs at checkpoint end, copies whole dirty pages through the
// same two-step NVM path, clears the dirty bits, and invalidates TLBs so
// the next interval's first store per page walks again.
type Dirtybit struct {
	base
	cfg DirtybitConfig
}

// NewDirtybit returns a factory for the Dirtybit mechanism.
func NewDirtybit(cfg DirtybitConfig) Factory {
	return func() Mechanism { return &Dirtybit{cfg: cfg.withDefaults()} }
}

// Name implements Mechanism.
func (d *Dirtybit) Name() string { return "dirtybit" }

// PlaceInNVM implements Mechanism.
func (d *Dirtybit) PlaceInNVM() bool { return false }

// Attach implements Mechanism.
func (d *Dirtybit) Attach(env *Env, seg Segment) { d.attach(env, seg) }

// OnStore implements Mechanism: the page walker does the tracking.
func (d *Dirtybit) OnStore(core *machine.Core, vaddr, paddr uint64, size int) sim.Time { return 0 }

// OnScheduleIn implements Mechanism.
func (d *Dirtybit) OnScheduleIn(core *machine.Core, done func()) { done() }

// OnScheduleOut implements Mechanism.
func (d *Dirtybit) OnScheduleOut(core *machine.Core, done func()) { done() }

// BeginInterval implements Mechanism: clear D bits and TLB cached state.
func (d *Dirtybit) BeginInterval() {
	d.env.AS.PT.ClearFlagsRange(d.seg.Lo, d.seg.Hi, vm.FlagDirty)
	for _, c := range d.env.Mach.Cores {
		c.TLB.InvalidateRange(d.seg.Lo, d.seg.Hi)
	}
}

// Checkpoint implements Mechanism: walk the segment's PTEs, copy dirty
// pages, clear for the next interval.
func (d *Dirtybit) Checkpoint(done func(Result)) {
	d.env.Attrib.Switch(CauseInspectClear)
	var extents []extent
	var scanned uint64
	d.env.AS.PT.VisitRange(d.seg.Lo, d.seg.Hi, func(va uint64, pte *vm.PTE) {
		scanned++
		if pte.Dirty() {
			// Whole page: page-granularity tracking cannot do better.
			if n := len(extents); n > 0 && extents[n-1].off+extents[n-1].size == va-d.seg.Lo {
				extents[n-1].size += mem.PageSize
			} else {
				extents = append(extents, extent{off: va - d.seg.Lo, size: mem.PageSize})
			}
			pte.Flags &^= vm.FlagDirty
		}
	})
	for _, c := range d.env.Mach.Cores {
		c.TLB.InvalidateRange(d.seg.Lo, d.seg.Hi)
	}
	d.Counters.Add("dirtybit.ckpt_ptes_scanned", scanned)
	// Charge the PTE walk: the entries live in page-table node frames;
	// approximate their footprint as scanned*8 bytes of sequential reads.
	timedScan(d.env.Mach, d.seg.ImageBase, scanned*8, scanned, d.cfg.ScanPerPTE, func() {
		d.persistExtents(extents, func(r Result) {
			r.MetaScanned = scanned
			done(r)
		})
	})
}

// Recover implements Mechanism.
func (d *Dirtybit) Recover(done func()) { d.recoverImage(done) }

// WriteProtect is the write-protection-based tracker (SoftDirty [18]):
// identical to Dirtybit at checkpoint time, but tracking is implemented
// by dropping write permission at interval start so the first store to
// each page takes a full page fault (the overhead LDT showed this scheme
// suffers).
type WriteProtect struct {
	Dirtybit
}

// NewWriteProtect returns a factory for the write-protection tracker.
func NewWriteProtect(cfg DirtybitConfig) Factory {
	return func() Mechanism {
		w := &WriteProtect{}
		w.cfg = cfg.withDefaults()
		return w
	}
}

// Name implements Mechanism.
func (w *WriteProtect) Name() string { return "writeprotect" }

// BeginInterval implements Mechanism: drop write permission so stores
// fault; the fault handler restores FlagWrite and sets FlagDirty.
func (w *WriteProtect) BeginInterval() {
	w.env.AS.PT.ClearFlagsRange(w.seg.Lo, w.seg.Hi, vm.FlagWrite|vm.FlagDirty)
	for _, c := range w.env.Mach.Cores {
		c.TLB.InvalidateRange(w.seg.Lo, w.seg.Hi)
	}
}

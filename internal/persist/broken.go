package persist

// NewBrokenFence returns a deliberately defective persistence mechanism:
// the page-granularity Dirtybit baseline with the classic missing
// clwb+sfence pair — the commit record is issued before the payload it is
// supposed to order after, and the payload blob's write-back is forgotten
// outright (see base.persistExtents). The temp-valid commit record
// becomes durable while the durable temp blob still holds the previous
// interval's bytes, so a power failure inside the window makes recovery
// roll stale data forward.
//
// It exists purely as a planted bug for the crash-sweep harness's
// self-test: a sweep that does not flag this mechanism is not checking
// anything. Never use it in experiments.
func NewBrokenFence(cfg DirtybitConfig) Factory {
	return func() Mechanism {
		m := &brokenFence{}
		m.cfg = cfg.withDefaults()
		m.brokenFence = true
		return m
	}
}

type brokenFence struct {
	Dirtybit
}

// Name implements Mechanism.
func (m *brokenFence) Name() string { return "brokenfence" }

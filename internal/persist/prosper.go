package persist

import (
	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/prosper"
	"prosper/internal/sim"
)

// ProsperConfig parameterizes the Prosper checkpoint mechanism.
type ProsperConfig struct {
	Granularity uint64 // tracking granularity, multiple of 8 (default 8)
	// ScanPerWord is the OS cost of examining one bitmap word during
	// inspection (coalescing within every eight bytes of bitmap).
	ScanPerWord sim.Time
}

func (c ProsperConfig) withDefaults() ProsperConfig {
	if c.Granularity == 0 {
		c.Granularity = 8
	}
	if c.ScanPerWord == 0 {
		c.ScanPerWord = 2
	}
	return c
}

// Prosper is the paper's mechanism: the segment stays in DRAM; the
// per-core hardware tracker records dirty granules into a DRAM bitmap;
// checkpoints flush the tracker, inspect only the touched window, and run
// the two-step copy into NVM.
type Prosper struct {
	base
	cfg ProsperConfig

	bitmapPhys  uint64
	bitmapBytes uint64
	state       prosper.State
	cur         *prosper.Tracker // tracker of the core we're scheduled on
	curCore     int              // core the tracker lives on (-1 when off-core)
}

// NewProsper returns a factory for the Prosper mechanism.
func NewProsper(cfg ProsperConfig) Factory {
	return func() Mechanism { return &Prosper{cfg: cfg.withDefaults(), curCore: -1} }
}

// Name implements Mechanism.
func (p *Prosper) Name() string { return "prosper" }

// PlaceInNVM implements Mechanism: Prosper keeps the stack in DRAM.
func (p *Prosper) PlaceInNVM() bool { return false }

// Attach implements Mechanism: allocate and zero the DRAM bitmap area and
// prepare the tracker MSR state.
func (p *Prosper) Attach(env *Env, seg Segment) {
	p.attach(env, seg)
	if env.Trackers == nil {
		panic("persist: Prosper mechanism on a machine without trackers")
	}
	p.bitmapBytes = prosper.BitmapBytes(seg.Size(), p.cfg.Granularity)
	pages := int((p.bitmapBytes + mem.PageSize - 1) / mem.PageSize)
	base, err := env.Mach.DRAMFrames.AllocContiguous(pages)
	if err != nil {
		panic("persist: " + err.Error())
	}
	p.bitmapPhys = base
	p.state = prosper.State{MSRs: prosper.MSRs{
		StackLo:    seg.Lo,
		StackHi:    seg.Hi,
		BitmapBase: base,
		Gran:       p.cfg.Granularity,
		Enabled:    true,
	}}
}

// OnStore implements Mechanism: stores issued on the core the owning
// thread runs on are observed by that core's tracker hardware, off the
// critical path. Inter-thread stack writes — stores from a different core
// (or while the owner is descheduled) — cannot be seen by the owner's
// tracker MSR range, so they take the paper's §III-C path: a
// write-permission fault lets the OS record the dirty granules in the
// bitmap before allowing the write, at page-fault cost.
func (p *Prosper) OnStore(core *machine.Core, vaddr, paddr uint64, size int) sim.Time {
	if p.cur != nil && core.ID == p.curCore {
		p.cur.ObserveStore(vaddr, size)
		return 0 // tracking is off the critical path by design
	}
	p.recordSoftware(vaddr, size)
	p.Counters.Inc("prosper.interthread_faults")
	return p.env.Mach.Cfg.PageFaultCycles
}

// recordSoftware is the OS fault handler's bitmap update for writes the
// tracker hardware cannot observe: set the granule bits directly and
// widen the live touched window.
func (p *Prosper) recordSoftware(vaddr uint64, size int) {
	msrs := p.state.MSRs
	if p.cur != nil {
		msrs = p.cur.MSRState()
	}
	if size <= 0 || vaddr >= msrs.StackHi || vaddr+uint64(size) <= msrs.StackLo {
		return
	}
	lo, hi := vaddr, vaddr+uint64(size)
	if lo < msrs.StackLo {
		lo = msrs.StackLo
	}
	if hi > msrs.StackHi {
		hi = msrs.StackHi
	}
	st := p.env.Mach.Storage
	firstG := (lo - msrs.StackLo) / msrs.Gran
	lastG := (hi - 1 - msrs.StackLo) / msrs.Gran
	for g := firstG; g <= lastG; g++ {
		wordAddr := msrs.BitmapBase + (g/32)*4
		st.WriteU32(wordAddr, st.ReadU32(wordAddr)|1<<(g%32))
	}
	// Timed bitmap update from the fault path.
	p.env.Mach.Ctl.Access(true, msrs.BitmapBase+(firstG/32)*4, sim.Done{})
	if p.cur != nil {
		p.cur.WidenTouched(lo, hi)
		return
	}
	if !p.state.AnyTouched || lo < p.state.TouchedLo {
		p.state.TouchedLo = lo
	}
	if !p.state.AnyTouched || hi > p.state.TouchedHi {
		p.state.TouchedHi = hi
	}
	p.state.AnyTouched = true
}

// msrWriteCost is charged per scheduling transition for programming the
// tracker's five MSRs (~10 cycles per WRMSR).
const msrWriteCost = 50

// OnScheduleIn implements Mechanism: restore tracker context on the core.
func (p *Prosper) OnScheduleIn(core *machine.Core, done func()) {
	tr := p.env.Trackers[core.ID]
	tr.RestoreState(p.state)
	p.cur = tr
	p.curCore = core.ID
	p.Counters.Inc("prosper.schedule_in")
	p.env.Eng().Schedule(sim.CompPersist, msrWriteCost, done)
}

// OnScheduleOut implements Mechanism: flush the lookup table, wait for
// quiescence, and save the tracker context.
func (p *Prosper) OnScheduleOut(core *machine.Core, done func()) {
	tr := p.cur
	if tr == nil {
		p.env.Eng().Schedule(sim.CompPersist, 0, done)
		return
	}
	// Inside a checkpoint epoch the table flush is its own pause cause;
	// outside one (ordinary context switch) the switches are no-ops.
	p.env.Attrib.Switch(CauseTrackerFlush)
	tr.FlushAndWait(func() {
		p.state = tr.SaveState()
		tr.Disable()
		p.cur = nil
		p.curCore = -1
		p.Counters.Inc("prosper.schedule_out")
		p.env.Attrib.Switch(CauseQuiesce)
		p.env.Eng().Schedule(sim.CompPersist, msrWriteCost, done)
	})
}

// BeginInterval implements Mechanism.
func (p *Prosper) BeginInterval() {
	if p.cur != nil {
		p.cur.ResetInterval()
		return
	}
	p.state.AnyTouched = false
	p.state.TouchedLo, p.state.TouchedHi = 0, 0
}

// Checkpoint implements Mechanism. The kernel calls it after
// OnScheduleOut, so the tracker state is saved and the bitmap quiescent.
func (p *Prosper) Checkpoint(done func(Result)) {
	p.env.Attrib.Switch(CauseInspectClear)
	msrs := p.state.MSRs
	winLo, winHi, any := p.state.TouchedLo, p.state.TouchedHi, p.state.AnyTouched
	res := prosper.Inspect(p.env.Mach.Storage, msrs, winLo, winHi, any)
	p.Counters.Add("prosper.ckpt_dirty_bytes", res.DirtyBytes)
	p.Counters.Add("prosper.ckpt_words_read", res.WordsRead)

	extents := make([]extent, len(res.Ranges))
	for i, r := range res.Ranges {
		extents[i] = extent{off: r.Addr - p.seg.Lo, size: r.Size}
	}
	// Charge the bitmap inspection (touched window only, thanks to the
	// hardware-reported max active region), then clear the set words and
	// run the two-step copy.
	scanBase, scanBytes := p.scanWindow(msrs, winLo, winHi, any)
	timedScan(p.env.Mach, scanBase, scanBytes, res.WordsRead, p.cfg.ScanPerWord, func() {
		cleared := prosper.Clear(p.env.Mach.Storage, msrs, winLo, winHi, any)
		p.Counters.Add("prosper.ckpt_words_cleared", cleared)
		clearDone := func() {
			p.persistExtents(extents, func(r Result) {
				r.MetaScanned = res.WordsRead
				done(r)
			})
		}
		if cleared == 0 {
			clearDone()
			return
		}
		// The clearing stores go to the bitmap lines (DRAM).
		p.env.Mach.WritePhys(scanBase, make([]byte, cleared*4), clearDone)
	})
}

func (p *Prosper) scanWindow(msrs prosper.MSRs, winLo, winHi uint64, any bool) (base, bytes uint64) {
	if !any || winLo >= winHi {
		return p.bitmapPhys, 0
	}
	firstWord := ((winLo - msrs.StackLo) / msrs.Gran) / 32
	lastWord := ((winHi - 1 - msrs.StackLo) / msrs.Gran) / 32
	return p.bitmapPhys + firstWord*4, (lastWord - firstWord + 1) * 4
}

// Recover implements Mechanism.
func (p *Prosper) Recover(done func()) { p.recoverImage(done) }

package persist

import (
	"bytes"
	"testing"

	"prosper/internal/mem"
)

func adaptiveEnv(t *testing.T) (*Env, Segment, *AdaptiveProsper) {
	t.Helper()
	env, seg, core := newEnv(t)
	mech := NewAdaptiveProsper(AdaptiveConfig{})().(*AdaptiveProsper)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	mech.OnScheduleIn(core, func() {})
	settle(env)
	mech.BeginInterval()
	t.Cleanup(func() { _ = core })
	return env, seg, mech
}

func adaptiveCheckpoint(t *testing.T, env *Env, mech *AdaptiveProsper) Result {
	t.Helper()
	core := env.Mach.Cores[0]
	return checkpointSync(env, core, mech)
}

func TestAdaptiveStartsAtMinGran(t *testing.T) {
	_, _, mech := adaptiveEnv(t)
	if mech.Gran() != 8 {
		t.Fatalf("initial gran = %d", mech.Gran())
	}
}

func TestAdaptiveEscalatesOnDenseIntervals(t *testing.T) {
	env, _, mech := adaptiveEnv(t)
	core := env.Mach.Cores[0]
	// Stream-like: every byte of a 16 KiB window dirty, repeatedly.
	for ckpt := 0; ckpt < 6; ckpt++ {
		for off := uint64(0); off < 16<<10; off += 64 {
			writeSeg(env, core, segLo+off, bytes.Repeat([]byte{1}, 64))
		}
		adaptiveCheckpoint(t, env, mech)
	}
	if mech.Gran() <= 8 {
		t.Fatalf("gran = %d after dense intervals, expected escalation", mech.Gran())
	}
	if mech.Counters.Get("adaptive.escalations") == 0 {
		t.Fatal("no escalations counted")
	}
}

func TestAdaptiveRefinesBackOnSparseIntervals(t *testing.T) {
	env, _, mech := adaptiveEnv(t)
	core := env.Mach.Cores[0]
	// Dense phase to escalate.
	for ckpt := 0; ckpt < 4; ckpt++ {
		for off := uint64(0); off < 16<<10; off += 64 {
			writeSeg(env, core, segLo+off, bytes.Repeat([]byte{1}, 64))
		}
		adaptiveCheckpoint(t, env, mech)
	}
	escalated := mech.Gran()
	if escalated <= 8 {
		t.Fatalf("escalation did not happen (gran=%d)", escalated)
	}
	// Sparse phase: 8 bytes per page over a wide window.
	for ckpt := 0; ckpt < 8; ckpt++ {
		for pg := uint64(0); pg < 16; pg++ {
			writeSeg(env, core, segLo+pg*mem.PageSize, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		}
		adaptiveCheckpoint(t, env, mech)
	}
	if mech.Gran() >= escalated {
		t.Fatalf("gran = %d did not refine from %d on sparse intervals", mech.Gran(), escalated)
	}
}

func TestAdaptiveRespectsBounds(t *testing.T) {
	env, _, mech := adaptiveEnv(t)
	core := env.Mach.Cores[0]
	for ckpt := 0; ckpt < 20; ckpt++ {
		for off := uint64(0); off < 8<<10; off += 64 {
			writeSeg(env, core, segLo+off, bytes.Repeat([]byte{1}, 64))
		}
		adaptiveCheckpoint(t, env, mech)
	}
	if mech.Gran() > 4096 {
		t.Fatalf("gran = %d beyond MaxGran", mech.Gran())
	}
}

func TestAdaptiveCorrectnessAcrossGranChanges(t *testing.T) {
	// Escalate, then verify a later checkpoint still lands the right
	// bytes in the image (coarser granules copy supersets, never wrong
	// data).
	env, seg, mech := adaptiveEnv(t)
	core := env.Mach.Cores[0]
	for ckpt := 0; ckpt < 4; ckpt++ {
		for off := uint64(0); off < 16<<10; off += 64 {
			writeSeg(env, core, segLo+off, bytes.Repeat([]byte{byte(ckpt)}, 64))
		}
		adaptiveCheckpoint(t, env, mech)
	}
	writeSeg(env, core, segLo+0x9000, []byte("after escalation"))
	adaptiveCheckpoint(t, env, mech)
	got := make([]byte, 16)
	env.Mach.Storage.Read(seg.ImageBase+0x9000, got)
	if !bytes.Equal(got, []byte("after escalation")) {
		t.Fatalf("image after granularity change = %q", got)
	}
}

func TestAdaptiveIdleIntervalKeepsGran(t *testing.T) {
	env, _, mech := adaptiveEnv(t)
	before := mech.Gran()
	adaptiveCheckpoint(t, env, mech) // nothing dirty
	if mech.Gran() != before {
		t.Fatal("idle interval changed granularity")
	}
}

package persist

import (
	"strings"
	"testing"

	"prosper/internal/sim"
	"prosper/internal/snapbuf"
)

// attachedMech builds an attached mechanism instance with a keyed
// snapshot identity, the way the kernel wires one up.
func attachedMech(t *testing.T, f Factory) (*Env, Mechanism) {
	t.Helper()
	env, seg, _ := newEnv(t)
	m := f()
	m.Attach(env, seg)
	m.(Snapshotter).SetSnapshotID(1, 1)
	return env, m
}

func saveMechSnap(t *testing.T, m Mechanism) []byte {
	t.Helper()
	w := snapbuf.NewWriter()
	var claims sim.EventClaims
	if err := m.(Snapshotter).SaveSnap(w, &claims); err != nil {
		t.Fatalf("%s: SaveSnap: %v", m.Name(), err)
	}
	return w.Bytes()
}

// TestMechanismSnapTruncationSweep pins the decode contract for every
// mechanism encoding: a full payload round-trips to byte-identical
// re-saved state, and every truncated prefix yields an error — never a
// panic, never a silent partial load.
func TestMechanismSnapTruncationSweep(t *testing.T) {
	factories := map[string]Factory{
		"dirtybit": NewDirtybit(DirtybitConfig{}),
		"prosper":  NewProsper(ProsperConfig{}),
		"ssp":      NewSSP(SSPConfig{}),
		"romulus":  NewRomulus(),
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			_, m := attachedMech(t, f)
			// Populate mechanism-specific state so the loops that decode
			// it actually execute.
			switch v := m.(type) {
			case *SSP:
				v.shadow = map[uint64]uint64{0x1000: 0x9000, 0x2000: 0xa000}
				v.working = map[uint64]uint64{0x1000: 0xb000}
				v.hot = map[uint64]bool{0x1000: true, 0x3000: true}
				v.pending = map[uint64]uint64{0x4000: 0xc000}
			case *Romulus:
				v.logEntries = append(v.logEntries, extent{off: 64, size: 8}, extent{off: 256, size: 16})
				v.logBytes = 24
			}
			data := saveMechSnap(t, m)

			_, fresh := attachedMech(t, f)
			if err := fresh.(Snapshotter).LoadSnap(snapbuf.NewReader(data)); err != nil {
				t.Fatalf("full payload LoadSnap: %v", err)
			}
			if got := saveMechSnap(t, fresh); string(got) != string(data) {
				t.Fatal("re-saved snapshot differs from original")
			}
			for n := 0; n < len(data); n++ {
				_, victim := attachedMech(t, f)
				if err := victim.(Snapshotter).LoadSnap(snapbuf.NewReader(data[:n])); err == nil {
					t.Fatalf("LoadSnap accepted a %d/%d-byte prefix", n, len(data))
				}
			}
		})
	}
}

// TestSnapRejectsQueuedCheckpoints: a checkpoint serialized behind an
// in-flight apply is host-closure state and must reject the save for
// every mechanism that embeds base.
func TestSnapRejectsQueuedCheckpoints(t *testing.T) {
	poison := func(m Mechanism) {
		switch v := m.(type) {
		case *Dirtybit:
			v.applyWaiters = append(v.applyWaiters, func() {})
		case *Prosper:
			v.applyWaiters = append(v.applyWaiters, func() {})
		case *SSP:
			v.applyWaiters = append(v.applyWaiters, func() {})
		case *Romulus:
			v.applyWaiters = append(v.applyWaiters, func() {})
		default:
			panic("unhandled mechanism type")
		}
	}
	for name, f := range map[string]Factory{
		"dirtybit": NewDirtybit(DirtybitConfig{}),
		"prosper":  NewProsper(ProsperConfig{}),
		"ssp":      NewSSP(SSPConfig{}),
		"romulus":  NewRomulus(),
	} {
		_, m := attachedMech(t, f)
		poison(m)
		w := snapbuf.NewWriter()
		var claims sim.EventClaims
		err := m.(Snapshotter).SaveSnap(w, &claims)
		if err == nil || !strings.Contains(err.Error(), "serialized behind an apply") {
			t.Errorf("%s: err = %v, want queued-checkpoint rejection", name, err)
		}
	}
}

// TestProsperSnapRejectsOnCoreTracker: the tracker context must be
// off-core at every commit; an on-core tracker is a non-quiescent point.
func TestProsperSnapRejectsOnCoreTracker(t *testing.T) {
	env, m := attachedMech(t, NewProsper(ProsperConfig{}))
	p := m.(*Prosper)
	p.cur, p.curCore = env.Trackers[0], 0
	w := snapbuf.NewWriter()
	var claims sim.EventClaims
	err := p.SaveSnap(w, &claims)
	if err == nil || !strings.Contains(err.Error(), "still on core") {
		t.Fatalf("err = %v, want on-core tracker rejection", err)
	}
}

// TestSSPSnapTickerEdges covers the consolidation-ticker resume rules:
// a stopped ticker stays stopped, a live one must exist on the loading
// side and must not land in the engine's past.
func TestSSPSnapTickerEdges(t *testing.T) {
	_, m := attachedMech(t, NewSSP(SSPConfig{}))
	s := m.(*SSP)

	t.Run("stopped", func(t *testing.T) {
		s.ticker.Stop()
		data := saveMechSnap(t, s)
		_, fm := attachedMech(t, NewSSP(SSPConfig{}))
		fresh := fm.(*SSP)
		if err := fresh.LoadSnap(snapbuf.NewReader(data)); err != nil {
			t.Fatalf("LoadSnap: %v", err)
		}
		if !fresh.ticker.Stopped() {
			t.Fatal("loaded ticker is not stopped")
		}
	})

	_, m2 := attachedMech(t, NewSSP(SSPConfig{}))
	live := m2.(*SSP)
	liveData := saveMechSnap(t, live)

	t.Run("missing ticker", func(t *testing.T) {
		_, fm := attachedMech(t, NewSSP(SSPConfig{}))
		fresh := fm.(*SSP)
		fresh.ticker = nil
		err := fresh.LoadSnap(snapbuf.NewReader(liveData))
		if err == nil || !strings.Contains(err.Error(), "mechanism has none") {
			t.Fatalf("err = %v, want missing-ticker rejection", err)
		}
	})

	t.Run("past event", func(t *testing.T) {
		env, fm := attachedMech(t, NewSSP(SSPConfig{}))
		fresh := fm.(*SSP)
		// Advance the loading engine past the saved fire time; the stale
		// event must be refused, not silently rearmed in the past.
		when, _ := live.ticker.NextFire()
		env.Mach.Eng.RunWhile(func() bool { return env.Mach.Eng.Now() <= when })
		err := fresh.LoadSnap(snapbuf.NewReader(liveData))
		if err == nil || !strings.Contains(err.Error(), "in the past") {
			t.Fatalf("err = %v, want past-event rejection", err)
		}
	})
}

package persist

import (
	"prosper/internal/machine"
	"prosper/internal/sim"
)

// None is the no-persistence baseline every experiment normalizes
// against: the segment lives in DRAM and checkpoints copy nothing.
type None struct {
	base
}

// NewNone returns a factory for the baseline.
func NewNone() Factory { return func() Mechanism { return &None{} } }

// Name implements Mechanism.
func (n *None) Name() string { return "none" }

// PlaceInNVM implements Mechanism.
func (n *None) PlaceInNVM() bool { return false }

// Attach implements Mechanism.
func (n *None) Attach(env *Env, seg Segment) { n.attach(env, seg) }

// OnStore implements Mechanism.
func (n *None) OnStore(core *machine.Core, vaddr, paddr uint64, size int) sim.Time { return 0 }

// OnScheduleIn implements Mechanism.
func (n *None) OnScheduleIn(core *machine.Core, done func()) { done() }

// OnScheduleOut implements Mechanism.
func (n *None) OnScheduleOut(core *machine.Core, done func()) { done() }

// BeginInterval implements Mechanism.
func (n *None) BeginInterval() {}

// Checkpoint implements Mechanism.
func (n *None) Checkpoint(done func(Result)) {
	n.env.Eng().Schedule(sim.CompPersist, 0, func() { done(Result{}) })
}

// Recover implements Mechanism.
func (n *None) Recover(done func()) { n.env.Eng().Schedule(sim.CompPersist, 0, done) }

package persist

import (
	"bytes"
	"testing"
	"testing/quick"

	"prosper/internal/cache"
	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/prosper"
	"prosper/internal/sim"
	"prosper/internal/vm"
)

const (
	segLo = uint64(0x7000_0000)
	segHi = uint64(0x7008_0000) // 512 KiB segment
)

// testEnv builds a machine, an address space with the segment mapped
// on-demand, per-core trackers, and NVM areas for a mechanism under test.
func newEnv(t *testing.T) (*Env, Segment, *machine.Core) {
	if t != nil {
		t.Helper()
	}
	m := machine.New(machine.Config{Cores: 1})
	as := vm.NewAddressSpace(m.DRAMFrames, m.NVMFrames)
	core := m.Cores[0]
	core.AS = as
	core.OnFault = func(vaddr uint64, write bool) error {
		_, err := as.HandleFault(vaddr, write)
		return err
	}
	env := &Env{Mach: m, AS: as}
	for _, c := range m.Cores {
		env.Trackers = append(env.Trackers, prosper.New(m.Eng, c.L2(), m.Storage, prosper.Config{}))
	}
	segBytes := segHi - segLo
	imgPages := int(segBytes / mem.PageSize)
	img, err := m.NVMFrames.AllocContiguous(imgPages)
	if err != nil {
		panic(err)
	}
	meta, err := m.NVMFrames.AllocContiguous(imgPages + 8)
	if err != nil {
		panic(err)
	}
	seg := Segment{
		Lo: segLo, Hi: segHi, Kind: vm.KindStack,
		ImageBase: img, MetaBase: meta, MetaSize: uint64(imgPages+8) * mem.PageSize,
	}
	return env, seg, core
}

// attachVMA maps the segment as a writable stack VMA placed per the
// mechanism and wires the store hook the kernel would install.
func attachVMA(env *Env, seg Segment, core *machine.Core, mech Mechanism) {
	err := env.AS.AddVMA(&vm.VMA{
		Lo: seg.Lo, Hi: seg.Hi, Kind: vm.KindStack, Writable: true,
		InNVM: mech.PlaceInNVM(), ThreadID: 0,
	})
	if err != nil {
		panic(err)
	}
	core.StoreHook = func(vaddr, paddr uint64, size int) sim.Time {
		if vaddr >= seg.Lo && vaddr < seg.Hi {
			return mech.OnStore(core, vaddr, paddr, size)
		}
		return 0
	}
}

// runUntilFlag pumps the engine until the flag is set. Bounded iteration
// matters because SSP's consolidation ticker keeps the queue non-empty
// forever; plain Run() would never return.
func runUntilFlag(env *Env, flag *bool) {
	env.Mach.Eng.RunWhile(func() bool { return !*flag })
	if !*flag {
		panic("simulation drained without reaching the flag")
	}
}

// settle runs a little extra simulated time to let posted traffic land.
func settle(env *Env) {
	env.Mach.Eng.RunUntil(env.Mach.Eng.Now() + 50_000)
}

// writeSeg performs a synchronous-ish store through the core.
func writeSeg(env *Env, core *machine.Core, addr uint64, data []byte) {
	done := false
	core.Write(addr, data, func() { done = true })
	runUntilFlag(env, &done)
	settle(env)
}

// checkpointSync drives the kernel sequence: schedule-out, checkpoint,
// begin-interval, schedule-in.
func checkpointSync(env *Env, core *machine.Core, mech Mechanism) Result {
	var res Result
	doneAll := false
	mech.OnScheduleOut(core, func() {
		mech.Checkpoint(func(r Result) {
			res = r
			mech.BeginInterval()
			mech.OnScheduleIn(core, func() { doneAll = true })
		})
	})
	runUntilFlag(env, &doneAll)
	settle(env)
	return res
}

// segBytesAt reads the current functional contents of the segment range.
func readRange(env *Env, lo, hi uint64) []byte {
	buf := make([]byte, hi-lo)
	for va := lo; va < hi; {
		paddr, _, ok := env.AS.PT.Translate(va)
		n := mem.PageSize - (va & (mem.PageSize - 1))
		if va+n > hi {
			n = hi - va
		}
		if ok {
			env.Mach.Storage.Read(paddr, buf[va-lo:va-lo+n])
		}
		va += n
	}
	return buf
}

func allMechanisms() map[string]Factory {
	return map[string]Factory{
		"prosper":      NewProsper(ProsperConfig{}),
		"dirtybit":     NewDirtybit(DirtybitConfig{}),
		"writeprotect": NewWriteProtect(DirtybitConfig{}),
		"romulus":      NewRomulus(),
		"ssp":          NewSSP(SSPConfig{ConsolidationInterval: 100 * sim.Microsecond}),
		"none":         NewNone(),
	}
}

func TestMechanismsBasicCheckpoint(t *testing.T) {
	for name, factory := range allMechanisms() {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			env, seg, core := newEnv(t)
			mech := factory()
			mech.Attach(env, seg)
			attachVMA(env, seg, core, mech)
			mech.OnScheduleIn(core, func() {})
			settle(env)
			mech.BeginInterval()

			writeSeg(env, core, segLo+0x100, []byte("hello"))
			writeSeg(env, core, segLo+0x4000, bytes.Repeat([]byte{7}, 64))
			res := checkpointSync(env, core, mech)

			if name == "none" {
				if res.BytesCopied != 0 {
					t.Fatalf("none copied %d bytes", res.BytesCopied)
				}
				return
			}
			if res.BytesCopied == 0 {
				t.Fatal("no bytes persisted")
			}
			if s, ok := mech.(*SSP); ok {
				s.Detach()
			}
		})
	}
}

func TestProsperCopiesLessThanDirtybit(t *testing.T) {
	sizes := map[string]uint64{}
	for _, name := range []string{"prosper", "dirtybit"} {
		env, seg, core := newEnv(t)
		mech := allMechanisms()[name]()
		mech.Attach(env, seg)
		attachVMA(env, seg, core, mech)
		mech.OnScheduleIn(core, func() {})
		settle(env)
		mech.BeginInterval()
		// Sparse writes: 8 bytes in each of 10 pages.
		for i := 0; i < 10; i++ {
			writeSeg(env, core, segLo+uint64(i)*mem.PageSize+64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		}
		res := checkpointSync(env, core, mech)
		sizes[name] = res.BytesCopied
	}
	if sizes["dirtybit"] != 10*mem.PageSize {
		t.Fatalf("dirtybit copied %d, want 10 pages", sizes["dirtybit"])
	}
	if sizes["prosper"] != 10*8 {
		t.Fatalf("prosper copied %d, want 80", sizes["prosper"])
	}
}

func TestProsperImageMatchesSegment(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewProsper(ProsperConfig{})()
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	mech.OnScheduleIn(core, func() {})
	settle(env)
	mech.BeginInterval()

	writeSeg(env, core, segLo+0x1000, []byte("first interval"))
	checkpointSync(env, core, mech)
	writeSeg(env, core, segLo+0x1007, []byte("SECOND"))
	checkpointSync(env, core, mech)

	img := make([]byte, 32)
	env.Mach.Storage.Read(seg.ImageBase+0x1000, img)
	// "first interval" with "SECOND" overlaid at +7 ends in a single 'l'.
	want := []byte("first iSECONDl")
	if !bytes.Equal(img[:len(want)], want) {
		t.Fatalf("image = %q, want %q", img[:len(want)], want)
	}
}

func TestProsperSecondIntervalOnlyNewDirt(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewProsper(ProsperConfig{})()
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	mech.OnScheduleIn(core, func() {})
	settle(env)
	mech.BeginInterval()
	writeSeg(env, core, segLo+0x2000, bytes.Repeat([]byte{1}, 256))
	first := checkpointSync(env, core, mech)
	// No writes: next checkpoint must copy nothing.
	second := checkpointSync(env, core, mech)
	if first.BytesCopied != 256 {
		t.Fatalf("first = %d", first.BytesCopied)
	}
	if second.BytesCopied != 0 {
		t.Fatalf("second = %d, want 0", second.BytesCopied)
	}
}

func TestDirtybitIdleIntervalCopiesNothing(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewDirtybit(DirtybitConfig{})()
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	mech.BeginInterval()
	writeSeg(env, core, segLo, []byte{1})
	first := checkpointSync(env, core, mech)
	second := checkpointSync(env, core, mech)
	if first.BytesCopied != mem.PageSize {
		t.Fatalf("first = %d", first.BytesCopied)
	}
	if second.BytesCopied != 0 {
		t.Fatalf("second = %d (dirty bits not cleared?)", second.BytesCopied)
	}
}

func TestWriteProtectForcesFaults(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewWriteProtect(DirtybitConfig{})()
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	writeSeg(env, core, segLo+0x3000, []byte{1}) // demand fault maps the page
	checkpointSync(env, core, mech)
	wpf := env.AS.WriteFaults()
	writeSeg(env, core, segLo+0x3000, []byte{2}) // must take a wperm fault
	if env.AS.WriteFaults() != wpf+1 {
		t.Fatalf("write faults = %d, want %d", env.AS.WriteFaults(), wpf+1)
	}
	res := checkpointSync(env, core, mech)
	if res.BytesCopied != mem.PageSize {
		t.Fatalf("copied %d", res.BytesCopied)
	}
}

func TestRomulusReplaysEveryEntry(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewRomulus()()
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	// Three overlapping writes to the same 8 bytes: Romulus copies 3x
	// (no coalescing), Prosper would copy once.
	for i := 0; i < 3; i++ {
		writeSeg(env, core, segLo+0x100, []byte{byte(i), 1, 2, 3, 4, 5, 6, 7})
	}
	res := checkpointSync(env, core, mech)
	if res.Ranges != 3 {
		t.Fatalf("ranges = %d, want 3 (one per log entry)", res.Ranges)
	}
	if res.BytesCopied != 24 {
		t.Fatalf("copied %d, want 24", res.BytesCopied)
	}
	// Stack pages must be in NVM.
	paddr, _, _ := env.AS.PT.Translate(segLo + 0x100)
	if !mem.IsNVM(paddr) {
		t.Fatal("romulus stack page not in NVM")
	}
}

func TestSSPTracksLinesAndCommits(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewSSP(SSPConfig{ConsolidationInterval: 50 * sim.Microsecond})()
	ssp := mech.(*SSP)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	// Two lines in one page, one line in another.
	writeSeg(env, core, segLo, []byte{1})
	writeSeg(env, core, segLo+mem.LineSize, []byte{1})
	writeSeg(env, core, segLo+mem.PageSize, []byte{1})
	res := checkpointSync(env, core, mech)
	if res.BytesCopied != 3*mem.LineSize {
		t.Fatalf("copied %d, want 3 lines", res.BytesCopied)
	}
	if res.Ranges != 2 {
		t.Fatalf("pages = %d, want 2", res.Ranges)
	}
	if ssp.Counters.Get("ssp.shadow_pages") != 2 {
		t.Fatalf("shadow pages = %d", ssp.Counters.Get("ssp.shadow_pages"))
	}
	ssp.Detach()
}

func TestSSPConsolidationRuns(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewSSP(SSPConfig{ConsolidationInterval: 10 * sim.Microsecond})()
	ssp := mech.(*SSP)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	writeSeg(env, core, segLo, []byte{1})
	// Let several consolidation periods pass with the page inactive.
	env.Mach.Eng.RunUntil(env.Mach.Eng.Now() + 100*sim.Microsecond)
	if ssp.Counters.Get("ssp.consolidated_lines") == 0 {
		t.Fatal("consolidation thread never consolidated")
	}
	ssp.Detach()
}

func TestProsperRecoveryRestoresCheckpointedState(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewProsper(ProsperConfig{})()
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	mech.OnScheduleIn(core, func() {})
	settle(env)
	mech.BeginInterval()

	writeSeg(env, core, segLo+0x5000, []byte("durable data"))
	checkpointSync(env, core, mech)
	// Post-checkpoint write that must NOT survive the crash.
	writeSeg(env, core, segLo+0x5000, []byte("VOLATILE!!!!"))

	// Crash: drop DRAM (and the mapping state of a fresh boot).
	env.Mach.Crash()
	env.AS.ReleaseRange(seg.Lo, seg.Hi)
	for _, c := range env.Mach.Cores {
		c.TLB.Flush()
	}

	recovered := false
	mech.Recover(func() { recovered = true })
	runUntilFlag(env, &recovered)
	got := readRange(env, segLo+0x5000, segLo+0x5000+16)
	if !bytes.Equal(got[:12], []byte("durable data")) {
		t.Fatalf("recovered %q", got[:12])
	}
}

func TestProsperRecoveryReappliesTornApply(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewProsper(ProsperConfig{})()
	p := mech.(*Prosper)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	mech.OnScheduleIn(core, func() {})
	settle(env)
	mech.BeginInterval()
	writeSeg(env, core, segLo+0x6000, []byte("checkpoint-2"))
	checkpointSync(env, core, mech)

	// Simulate a crash mid-apply: corrupt the image and rewind the phase
	// to TempValid; the temp buffer still holds the payload.
	env.Mach.Storage.Write(seg.ImageBase+0x6000, []byte("GARBAGEGARBA"))
	env.Mach.Storage.WriteU64(seg.MetaBase+metaPhase, phaseTempValid)
	env.Mach.Crash()
	env.AS.ReleaseRange(seg.Lo, seg.Hi)

	done := false
	p.Recover(func() { done = true })
	runUntilFlag(env, &done)
	got := readRange(env, segLo+0x6000, segLo+0x6000+12)
	if !bytes.Equal(got, []byte("checkpoint-2")) {
		t.Fatalf("torn apply not repaired: %q", got)
	}
}

// Property: for arbitrary write sequences, after a checkpoint the Prosper
// NVM image of every dirtied granule equals the segment contents at
// checkpoint time, and recovery after a crash reproduces them.
func TestProsperCheckpointRecoveryProperty(t *testing.T) {
	f := func(writes []struct {
		Off uint16
		Val uint8
	}) bool {
		env, seg, core := newEnv(nil)
		mech := NewProsper(ProsperConfig{})()
		mech.Attach(env, seg)
		attachVMA(env, seg, core, mech)
		mech.OnScheduleIn(core, func() {})
		settle(env)
		mech.BeginInterval()
		for _, w := range writes {
			addr := segLo + uint64(w.Off)%0x10000
			core.Write(addr, []byte{w.Val, w.Val ^ 0xff}, nil)
		}
		settle(env)
		want := readRange(env, segLo, segLo+0x10008)
		checkpointSync(env, core, mech)

		env.Mach.Crash()
		env.AS.ReleaseRange(seg.Lo, seg.Hi)
		ok := false
		mech.Recover(func() { ok = true })
		runUntilFlag(env, &ok)
		got := readRange(env, segLo, segLo+0x10008)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSSPStackInNVMIsSlower(t *testing.T) {
	// Sanity for the Fig 8 driver: the same store burst takes longer with
	// SSP (NVM stack) than with Prosper (DRAM stack).
	elapsed := map[string]sim.Time{}
	for _, name := range []string{"prosper", "ssp"} {
		env, seg, core := newEnv(t)
		mech := allMechanisms()[name]()
		mech.Attach(env, seg)
		attachVMA(env, seg, core, mech)
		mech.OnScheduleIn(core, func() {})
		settle(env)
		mech.BeginInterval()
		start := env.Mach.Eng.Now()
		// Write a burst spanning many lines so misses reach the device,
		// then measure when the store stream fully drains.
		accepted := 0
		allAccepted := false
		for i := 0; i < 512; i++ {
			core.Write(segLo+uint64(i)*mem.LineSize, []byte{1, 2, 3, 4, 5, 6, 7, 8}, func() {
				accepted++
				allAccepted = accepted == 512
			})
		}
		runUntilFlag(env, &allAccepted)
		drained := false
		core.DrainStores(func() { drained = true })
		runUntilFlag(env, &drained)
		elapsed[name] = env.Mach.Eng.Now() - start
		if s, ok := mech.(*SSP); ok {
			s.Detach()
		}
	}
	if elapsed["ssp"] <= elapsed["prosper"] {
		t.Fatalf("ssp (%d) should be slower than prosper (%d)", elapsed["ssp"], elapsed["prosper"])
	}
}

var _ cache.Port = (*cache.Cache)(nil) // compile-time interface check used by Env.Trackers wiring

package persist

import (
	"bytes"
	"testing"

	"prosper/internal/mem"
	"prosper/internal/sim"
)

func TestRomulusLogOverflowCounted(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewRomulus()().(*Romulus)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	// Shrink the log drastically to force overflow.
	mech.maxEntries = 4
	for i := 0; i < 10; i++ {
		writeSeg(env, core, segLo+uint64(i)*64, []byte{1})
	}
	if mech.Counters.Get("romulus.log_overflow") == 0 {
		t.Fatal("overflow not counted")
	}
	// The checkpoint still replays the retained entries.
	res := checkpointSync(env, core, mech)
	if res.Ranges != 4 {
		t.Fatalf("ranges = %d, want 4 retained entries", res.Ranges)
	}
}

func TestRomulusLogLineWrites(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewRomulus()().(*Romulus)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	// 16-byte records: 4 per 64 B line; 9 stores fill 2 lines.
	for i := 0; i < 9; i++ {
		writeSeg(env, core, segLo+uint64(i)*8, []byte{1})
	}
	if got := mech.Counters.Get("romulus.log_line_writes"); got != 2 {
		t.Fatalf("log line writes = %d, want 2", got)
	}
}

func TestSSPRemapStallOncePerLinePerInterval(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewSSP(SSPConfig{ConsolidationInterval: sim.Millisecond})().(*SSP)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	defer mech.Detach()

	if s := mech.OnStore(core, segLo, 0, 8); s == 0 {
		t.Fatal("first touch must stall")
	}
	if s := mech.OnStore(core, segLo+8, 0, 8); s != 0 {
		t.Fatal("second store to same line must not stall")
	}
	if s := mech.OnStore(core, segLo+mem.LineSize, 0, 8); s == 0 {
		t.Fatal("new line must stall")
	}
	// After a checkpoint the interval resets: stalls return.
	checkpointSync(env, core, mech)
	if s := mech.OnStore(core, segLo, 0, 8); s == 0 {
		t.Fatal("first touch after checkpoint must stall again")
	}
}

func TestSSPDetachStopsConsolidation(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewSSP(SSPConfig{ConsolidationInterval: 10 * sim.Microsecond})().(*SSP)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	writeSeg(env, core, segLo, []byte{1})
	mech.Detach()
	before := mech.Counters.Get("ssp.consolidated_lines")
	env.Mach.Eng.RunUntil(env.Mach.Eng.Now() + 200*sim.Microsecond)
	if mech.Counters.Get("ssp.consolidated_lines") != before {
		t.Fatal("consolidation continued after Detach")
	}
}

func TestSSPCongestionStretchesStall(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewSSP(SSPConfig{ConsolidationInterval: sim.Millisecond})().(*SSP)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	defer mech.Detach()
	idle := mech.OnStore(core, segLo, 0, 8)
	// Flood the NVM with writes, then measure a fresh line's stall.
	for i := 0; i < 200; i++ {
		env.Mach.Ctl.Access(true, mem.NVMBase+uint64(i)*mem.LineSize, sim.Done{})
	}
	busy := mech.OnStore(core, segLo+mem.PageSize, 0, 8)
	if busy <= idle {
		t.Fatalf("congestion did not stretch the stall (%d vs %d)", busy, idle)
	}
	settle(env) // bounded: the consolidation ticker never drains the queue
}

func TestWriteProtectReportsFaultCost(t *testing.T) {
	// The §II-B comparison depends on writeprotect forcing full page
	// faults where dirtybit pays only a dirty-set walk; verify the fault
	// path is actually slower for the same single store.
	elapsed := map[string]sim.Time{}
	for _, name := range []string{"writeprotect", "dirtybit"} {
		env, seg, core := newEnv(t)
		mech := allMechanisms()[name]()
		mech.Attach(env, seg)
		attachVMA(env, seg, core, mech)
		// Map + dirty the page once, checkpoint (clears tracking state).
		writeSeg(env, core, segLo, []byte{1})
		checkpointSync(env, core, mech)
		// Measure the next store: writeprotect faults, dirtybit walks.
		start := env.Mach.Eng.Now()
		done := false
		core.Write(segLo+8, []byte{2}, func() { done = true })
		runUntilFlag(env, &done)
		elapsed[name] = env.Mach.Eng.Now() - start
	}
	if elapsed["writeprotect"] <= elapsed["dirtybit"] {
		t.Fatalf("writeprotect store (%d cy) should cost more than dirtybit (%d cy)",
			elapsed["writeprotect"], elapsed["dirtybit"])
	}
}

func TestDirtybitCoalescesAdjacentPages(t *testing.T) {
	env, seg, core := newEnv(t)
	mech := NewDirtybit(DirtybitConfig{})()
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	mech.BeginInterval()
	// Three adjacent dirty pages + one distant.
	for i := 0; i < 3; i++ {
		writeSeg(env, core, segLo+uint64(i)*mem.PageSize, []byte{1})
	}
	writeSeg(env, core, segLo+20*mem.PageSize, []byte{1})
	res := checkpointSync(env, core, mech)
	if res.Ranges != 2 {
		t.Fatalf("extents = %d, want 2 (adjacent pages coalesce)", res.Ranges)
	}
	if res.BytesCopied != 4*mem.PageSize {
		t.Fatalf("copied %d", res.BytesCopied)
	}
}

func TestApplyBackpressureSerializesCheckpoints(t *testing.T) {
	// Force the async apply to still be draining when the next checkpoint
	// starts; the second must wait (temp buffer reuse hazard) and both
	// must produce correct images.
	env, seg, core := newEnv(t)
	mech := NewProsper(ProsperConfig{})().(*Prosper)
	mech.Attach(env, seg)
	attachVMA(env, seg, core, mech)
	mech.OnScheduleIn(core, func() {})
	settle(env)
	mech.BeginInterval()

	writeSeg(env, core, segLo+0x100, bytes.Repeat([]byte{0xAA}, 4096))
	// First checkpoint: run only until its done fires (apply still async).
	var r1 Result
	got1 := false
	mech.OnScheduleOut(core, func() {
		mech.Checkpoint(func(r Result) { r1 = r; got1 = true })
	})
	runUntilFlag(env, &got1)
	// Immediately dirty again and checkpoint without draining.
	mech.BeginInterval()
	mech.OnScheduleIn(core, func() {})
	writeSeg(env, core, segLo+0x100, bytes.Repeat([]byte{0xBB}, 64))
	var r2 Result
	got2 := false
	mech.OnScheduleOut(core, func() {
		mech.Checkpoint(func(r Result) { r2 = r; got2 = true })
	})
	runUntilFlag(env, &got2)
	settle(env)
	settle(env)
	if r1.BytesCopied == 0 || r2.BytesCopied == 0 {
		t.Fatalf("results: %+v %+v", r1, r2)
	}
	img := make([]byte, 64)
	env.Mach.Storage.Read(seg.ImageBase+0x100, img)
	if !bytes.Equal(img, bytes.Repeat([]byte{0xBB}, 64)) {
		t.Fatalf("image lost the second checkpoint: %x", img[:8])
	}
	tail := make([]byte, 8)
	env.Mach.Storage.Read(seg.ImageBase+0x100+64, tail)
	if !bytes.Equal(tail, bytes.Repeat([]byte{0xAA}, 8)) {
		t.Fatalf("image lost the first checkpoint: %x", tail)
	}
}

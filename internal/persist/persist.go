// Package persist implements the memory-persistence mechanisms the paper
// evaluates and compares: the Prosper checkpoint mechanism (adapting the
// internal/prosper hardware tracker to the OS checkpoint flow), the
// page-granularity Dirtybit baseline (LDT-style), a write-protection
// tracker (SoftDirty-style), Romulus (twin-copy with hardware-logged
// stack modifications), and SSP (sub-page shadow paging with a background
// consolidation thread).
//
// A Mechanism persists one memory segment (a thread's stack or a
// process's heap). The kernel attaches mechanisms to segments, routes
// store notifications to them, sequences their checkpoint steps at every
// consistency interval, and drives their recovery path after a crash.
package persist

import (
	"encoding/binary"

	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/prosper"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/vm"
)

// Env is the hardware/OS environment mechanisms operate in.
type Env struct {
	Mach *machine.Machine
	AS   *vm.AddressSpace
	// Trackers are the per-core Prosper dirty trackers (nil when the
	// machine is built without them).
	Trackers []*prosper.Tracker
	// Attrib, when non-nil, is the owning process's checkpoint-stall
	// attribution register. Mechanisms switch the active cause as their
	// checkpoint phases progress; outside a kernel-opened epoch every
	// switch is a no-op.
	Attrib *Attrib
}

// Eng returns the simulation engine.
func (e *Env) Eng() *sim.Engine { return e.Mach.Eng }

// Segment describes the memory region a mechanism persists, plus the NVM
// areas the kernel assigned to it.
type Segment struct {
	Lo, Hi uint64     // virtual range
	Kind   vm.VMAKind // stack or heap

	// ImageBase is a physically contiguous NVM area of (Hi-Lo) bytes
	// holding the persistent image (or backup copy for Romulus).
	ImageBase uint64
	// MetaBase/MetaSize is a physically contiguous NVM area for commit
	// records, temp buffers, and logs.
	MetaBase uint64
	MetaSize uint64
}

// Size returns the segment length.
func (s Segment) Size() uint64 { return s.Hi - s.Lo }

// Result reports one checkpoint of one segment.
type Result struct {
	BytesCopied uint64 // dirty payload persisted
	Ranges      uint64 // contiguous extents copied
	MetaScanned uint64 // metadata units inspected (bitmap words or PTEs)
}

// Mechanism persists one segment across consistency intervals.
type Mechanism interface {
	Name() string
	// PlaceInNVM reports whether the segment's working pages must be
	// allocated from NVM (shadow-paging and twin-copy schemes) rather
	// than DRAM (checkpointing schemes).
	PlaceInNVM() bool
	// Attach binds the mechanism to its environment and segment. Called
	// once, before any store reaches the segment.
	Attach(env *Env, seg Segment)
	// OnStore observes one store into the segment (post-translation) and
	// returns any stall the store pipeline must absorb before the store
	// retires (zero for mechanisms that track out of the critical path).
	OnStore(core *machine.Core, vaddr, paddr uint64, size int) sim.Time
	// OnScheduleIn/OnScheduleOut bracket the owning thread's placement on
	// a core (context switches and checkpoint pauses). done fires when
	// the mechanism's hardware state is ready/quiescent.
	OnScheduleIn(core *machine.Core, done func())
	OnScheduleOut(core *machine.Core, done func())
	// BeginInterval resets tracking state for a new consistency interval.
	BeginInterval()
	// Checkpoint persists the interval's modifications to NVM; done fires
	// when the data is durable (commit record written).
	Checkpoint(done func(Result))
	// Recover rebuilds the segment's volatile state from NVM after a
	// crash (for DRAM-resident segments: copy the image back; for
	// NVM-resident segments: repair in place). done fires when complete.
	Recover(done func())
}

// Factory builds a fresh mechanism instance (one per segment).
type Factory func() Mechanism

// applyState is the explicit state of an in-flight step 2 (temp ->
// image apply). It replaces the closure captures the apply path once
// used: because apply drains in the background while the application
// runs, it is the one piece of checkpoint machinery that can be live at
// a checkpoint-commit snapshot point, so its state must be plain data.
type applyState struct {
	seq     uint64
	count   uint64
	total   uint64
	pending int
}

// base carries the fields every mechanism shares.
type base struct {
	env *Env
	seg Segment
	seq uint64

	// applying is true while a previous checkpoint's step 2 (temp ->
	// image) is still draining in the background; the next checkpoint
	// must wait before reusing the temp buffer.
	applying     bool
	applyWaiters []func()
	apply        applyState

	// applyStepTok completes one extent copy of step 2; applyHdrTok
	// completes the final phase-applied header write. Built unkeyed at
	// attach; SetSnapshotID upgrades them with stable resume identities.
	applyStepTok sim.Done
	applyHdrTok  sim.Done

	// brokenFence deliberately commits the step-1 record without waiting
	// for the payload to become durable. It exists only so the crash-sweep
	// harness can prove it detects a mis-fenced mechanism; see
	// NewBrokenFence.
	brokenFence bool

	Counters *stats.Counters
}

func (b *base) attach(env *Env, seg Segment) {
	b.env = env
	b.seg = seg
	// Resume the durable commit sequence: after a post-crash re-attach the
	// meta area carries the last sequence that reached NVM, and fresh
	// segments read zero from their never-touched area.
	b.seq = env.Mach.Storage.ReadU64(seg.MetaBase + metaSeq)
	b.applyStepTok = sim.Thunk(sim.CompPersist, b.applyStep)
	b.applyHdrTok = sim.Thunk(sim.CompPersist, b.applyHdrDone)
	b.Counters = stats.NewCounters()
}

// Snapshot resume-key kinds for persist-owned continuation tokens (the
// machine layer owns kinds 1..3; see DESIGN.md §14 for the registry).
const (
	keyKindApplyStep = uint64(0x10)
	keyKindApplyHdr  = uint64(0x11)
)

func snapKey(kind uint64, pid, segIdx int) uint64 {
	return kind<<56 | uint64(pid)<<16 | uint64(segIdx)
}

// SetSnapshotID gives the mechanism's parked continuation tokens stable
// resume identities derived from the owning process and segment index
// (heap is segment 0; stack thread i is segment i+1). The kernel calls
// it right after Attach; mechanisms constructed directly (tests) stay
// unkeyed and simply cannot cross a snapshot boundary.
func (b *base) SetSnapshotID(pid, segIdx int) {
	b.applyStepTok = sim.KeyedThunk(sim.CompPersist, snapKey(keyKindApplyStep, pid, segIdx), b.applyStep)
	b.applyHdrTok = sim.KeyedThunk(sim.CompPersist, snapKey(keyKindApplyHdr, pid, segIdx), b.applyHdrDone)
}

// DurableSegmentSeq reads a segment's durable commit sequence from its
// meta area on a (possibly crashed) storage image. ok is false when the
// segment has never written a commit record — mechanisms without a
// durable sequence, or segments that never checkpointed.
func DurableSegmentSeq(st *mem.Storage, metaBase uint64) (seq uint64, ok bool) {
	phase := st.ReadU64(metaBase + metaPhase)
	if phase == phaseEmpty || phase > phaseApplied {
		return 0, false
	}
	return st.ReadU64(metaBase + metaSeq), true
}

// --- shared checkpoint plumbing -------------------------------------------

// Commit-record phases stored in the first meta word.
const (
	phaseEmpty     = uint64(0)
	phaseTempValid = uint64(1) // temp buffer complete, apply may be partial
	phaseApplied   = uint64(2) // image consistent with checkpoint seq
)

// Meta layout (all offsets from Segment.MetaBase):
//
//	0	phase
//	8	seq
//	16	entry count
//	24	total payload bytes
//	32	minimum persisted offset ever (image extent low-water mark)
//	64	entry table: {offset uint64, size uint64} per entry
//	…	payload blob (64-byte aligned after the entry table)
const (
	metaPhase   = 0
	metaSeq     = 8
	metaCount   = 16
	metaBytes   = 24
	metaMinOff  = 32
	metaEntries = 64
)

type extent struct {
	off  uint64 // offset within the segment
	size uint64
}

// persistExtents runs the paper's two-step stack update for a set of
// dirty extents of a DRAM-resident segment:
//
//  1. copy each extent's bytes (and an entry table) into the temp buffer
//     in NVM and write a commit record marking the temp valid — this is
//     the durability point, after which done fires and the application
//     may resume;
//  2. apply the temp buffer onto the persistent image in NVM and mark the
//     record applied — a redo that runs in the background; the next
//     checkpoint waits for it before reusing the temp buffer.
//
// A crash before step 1's commit loses at most the current interval; a
// crash during (or before) step 2 is repaired by re-applying the
// (idempotent) temp buffer at recovery.
func (b *base) persistExtents(extents []extent, done func(Result)) {
	if b.applying {
		// Previous apply still draining (only possible under extreme
		// interval compression): serialize behind it.
		b.Counters.Inc("persist.apply_backpressure")
		b.applyWaiters = append(b.applyWaiters, func() { b.persistExtents(extents, done) })
		return
	}
	var res Result
	res.Ranges = uint64(len(extents))
	b.seq++
	seq := b.seq
	m := b.env.Mach
	attrib := b.env.Attrib
	attrib.Switch(CauseCopy)

	if len(extents) == 0 {
		// Nothing dirty: still write a commit record so recovery can see
		// the checkpoint happened.
		attrib.Switch(CauseCommitFence)
		hdr := b.makeHeader(phaseApplied, seq, 0, 0)
		m.WritePhys(b.seg.MetaBase, hdr, func() { done(res) })
		return
	}

	entryBytes := uint64(len(extents)) * 16
	dataBase := b.seg.MetaBase + metaEntries + ((entryBytes + 63) &^ 63)

	// Step 1a: entry table.
	table := make([]byte, entryBytes)
	var total uint64
	for i, e := range extents {
		binary.LittleEndian.PutUint64(table[i*16:], e.off)
		binary.LittleEndian.PutUint64(table[i*16+8:], e.size)
		total += e.size
	}
	res.BytesCopied = total
	if dataBase+total > b.seg.MetaBase+b.seg.MetaSize {
		panic("persist: temp buffer overflow — meta area too small")
	}

	// Step 1b: gather the payload into the temp blob. The sources are
	// scattered DRAM lines (timed reads); the temp blob is contiguous
	// NVM, written as one streaming burst.
	cursor := dataBase
	var srcLines []uint64
	for _, e := range extents {
		vaddr := b.seg.Lo + e.off
		remaining := e.size
		for remaining > 0 {
			paddr, _, ok := b.env.AS.PT.Translate(vaddr)
			if !ok {
				panic("persist: dirty extent not mapped")
			}
			n := mem.PageSize - (vaddr & (mem.PageSize - 1))
			if n > remaining {
				n = remaining
			}
			m.Storage.Copy(cursor, paddr, int(n)) // functional gather
			for l := mem.LineOf(paddr); l <= mem.LineOf(paddr+n-1); l += mem.LineSize {
				srcLines = append(srcLines, l)
			}
			cursor += n
			vaddr += n
			remaining -= n
		}
	}
	// Step 1c: commit record (temp valid). The low-water mark must be
	// updated before the header snapshot reads it back.
	commitRecord := func() {
		attrib.Switch(CauseCommitFence)
		minOff := extents[0].off
		for _, e := range extents {
			if e.off < minOff {
				minOff = e.off
			}
		}
		b.updateMinOff(minOff)
		hdr := b.makeHeader(phaseTempValid, seq, uint64(len(extents)), total)
		m.WritePhys(b.seg.MetaBase, hdr, func() {
			// Durability point: release the caller, then run step 2 in
			// the background.
			b.applying = true
			done(res)
			b.applyAsync(seq, uint64(len(extents)), total, dataBase, extents)
		})
	}
	pending := 3    // source reads + blob write + entry table write
	gatherLeft := 2 // source reads + entry table write (the copy phase)
	commit := func() {
		pending--
		if pending != 0 {
			return
		}
		commitRecord()
	}
	gatherCommit := func() {
		gatherLeft--
		if gatherLeft == 0 && pending > 1 {
			// Gather finished but the temp-blob NVM burst is still
			// draining: the critical path is now the write queue.
			attrib.Switch(CauseNVMDrain)
		}
		commit()
	}
	if b.brokenFence {
		// Broken on purpose: the commit record is issued BEFORE the
		// payload it is supposed to order after, and the blob's flush is
		// forgotten outright — the classic missing clwb+sfence pair. The
		// temp-valid record becomes durable while the durable temp blob
		// still holds the previous interval's bytes, so a power failure
		// inside the window makes recovery roll stale data forward. Only
		// NewBrokenFence sets this.
		commit = func() {}
		commitRecord()
	}
	// Timed traffic for the gather: scattered DRAM reads of the sources
	// (pipelined) and a contiguous NVM write of the blob.
	readPhysLines(m, srcLines, gatherCommit)
	m.WritePhys(b.seg.MetaBase+metaEntries, table, gatherCommit)
	if !b.brokenFence {
		// The functional blob is already in place; issue the timed burst.
		writePhysRange(m, dataBase, total, commit)
	}
}

// applyAsync is step 2: redo the temp buffer onto the image. Its
// progress lives in b.apply (plain data) and its completions ride the
// two reusable tokens, because an apply regularly straddles the
// checkpoint-commit boundary where simulator snapshots are taken.
func (b *base) applyAsync(seq, count, total uint64, dataBase uint64, extents []extent) {
	m := b.env.Mach
	b.apply = applyState{seq: seq, count: count, total: total, pending: len(extents)}
	if b.apply.pending == 0 {
		b.applyFinish()
		return
	}
	cursor := dataBase
	for _, e := range extents {
		m.CopyPhysTok(b.seg.ImageBase+e.off, cursor, int(e.size), b.applyStepTok)
		cursor += e.size
	}
}

// applyStep completes one extent copy of step 2.
func (b *base) applyStep() {
	b.apply.pending--
	if b.apply.pending == 0 {
		b.applyFinish()
	}
}

// applyFinish writes the phase-applied header once every extent copy of
// step 2 has drained.
func (b *base) applyFinish() {
	hdr2 := b.makeHeader(phaseApplied, b.apply.seq, b.apply.count, b.apply.total)
	b.env.Mach.WritePhysTok(b.seg.MetaBase, hdr2, b.applyHdrTok)
}

// applyHdrDone retires step 2 and releases any checkpoint serialized
// behind the temp buffer.
func (b *base) applyHdrDone() {
	b.applying = false
	waiters := b.applyWaiters
	b.applyWaiters = nil
	for _, w := range waiters {
		w()
	}
}

// lineGather pipelines timed reads of scattered line addresses through a
// fixed window; one record and one bound completion token replace the
// per-line closures (checkpoints gather thousands of lines).
type lineGather struct {
	m         *machine.Machine
	lines     []uint64
	issued    int
	completed int
	inFlight  int
	done      func()
	tok       sim.Done
}

// readPhysLines issues pipelined timed reads of the given line addresses
// (used to charge scattered source gathers).
func readPhysLines(m *machine.Machine, lines []uint64, done func()) {
	if len(lines) == 0 {
		m.Eng.Schedule(sim.CompPersist, 0, done)
		return
	}
	g := &lineGather{m: m, lines: lines, done: done}
	g.tok = sim.Thunk(sim.CompPersist, g.lineDone)
	g.pump()
}

func (g *lineGather) pump() {
	const window = 16
	for g.inFlight < window && g.issued < len(g.lines) {
		addr := g.lines[g.issued]
		g.issued++
		g.inFlight++
		g.m.Ctl.Access(false, addr, g.tok)
	}
}

func (g *lineGather) lineDone() {
	g.inFlight--
	g.completed++
	if g.completed == len(g.lines) {
		g.done()
		return
	}
	g.pump()
}

// rangeWrite joins the fan-out of line writes covering one contiguous
// range back into a single completion.
type rangeWrite struct {
	remaining int
	done      func()
	tok       sim.Done
}

func (w *rangeWrite) lineDone() {
	w.remaining--
	if w.remaining == 0 {
		w.done()
	}
}

// writePhysRange issues the timed line writes covering [base, base+n)
// without re-writing functional storage (already gathered).
func writePhysRange(m *machine.Machine, base uint64, n uint64, done func()) {
	lines := mem.LinesSpanned(base, int(n))
	if lines == 0 {
		m.Eng.Schedule(sim.CompPersist, 0, done)
		return
	}
	w := &rangeWrite{remaining: lines, done: done}
	w.tok = sim.Thunk(sim.CompPersist, w.lineDone)
	for i := 0; i < lines; i++ {
		m.Ctl.Access(true, mem.LineOf(base)+uint64(i)*mem.LineSize, w.tok)
	}
}

// makeHeader builds the 64-byte commit record, preserving the image
// extent low-water mark already in NVM.
func (b *base) makeHeader(phase, seq, count, total uint64) []byte {
	hdr := make([]byte, 64)
	binary.LittleEndian.PutUint64(hdr[metaPhase:], phase)
	binary.LittleEndian.PutUint64(hdr[metaSeq:], seq)
	binary.LittleEndian.PutUint64(hdr[metaCount:], count)
	binary.LittleEndian.PutUint64(hdr[metaBytes:], total)
	binary.LittleEndian.PutUint64(hdr[metaMinOff:], b.env.Mach.Storage.ReadU64(b.seg.MetaBase+metaMinOff))
	return hdr
}

func (b *base) updateMinOff(off uint64) {
	st := b.env.Mach.Storage
	cur := st.ReadU64(b.seg.MetaBase + metaMinOff)
	if cur == 0 {
		// 0 doubles as "never persisted"; store off+1 to disambiguate.
		st.WriteU64(b.seg.MetaBase+metaMinOff, off+1)
		return
	}
	if off+1 < cur {
		st.WriteU64(b.seg.MetaBase+metaMinOff, off+1)
	}
}

// recoverImage restores a DRAM-resident segment from its NVM image:
// re-apply a valid-but-unapplied temp buffer, then copy the persisted
// extent of the image back into freshly mapped DRAM pages.
func (b *base) recoverImage(done func()) {
	st := b.env.Mach.Storage
	phase := st.ReadU64(b.seg.MetaBase + metaPhase)
	minOffPlus1 := st.ReadU64(b.seg.MetaBase + metaMinOff)
	if minOffPlus1 == 0 {
		// Never checkpointed anything.
		b.env.Eng().Schedule(sim.CompPersist, 0, done)
		return
	}
	minOff := minOffPlus1 - 1

	finishCopyBack := func() {
		// Map the recovered extent and copy image -> DRAM.
		lo := b.seg.Lo + (minOff &^ (mem.PageSize - 1))
		b.env.AS.EnsureRange(lo, b.seg.Hi)
		pending := 0
		fired := false
		complete := func() {
			pending--
			if pending == 0 && fired {
				done()
			}
		}
		for va := lo; va < b.seg.Hi; va += mem.PageSize {
			paddr, _, ok := b.env.AS.PT.Translate(va)
			if !ok {
				panic("persist: recovery mapping failed")
			}
			pending++
			b.env.Mach.CopyPhys(paddr, b.seg.ImageBase+(va-b.seg.Lo), mem.PageSize, complete)
		}
		fired = true
		if pending == 0 {
			b.env.Eng().Schedule(sim.CompPersist, 0, done)
		}
	}

	if phase == phaseTempValid {
		// Crash during apply: redo temp -> image (idempotent).
		count := st.ReadU64(b.seg.MetaBase + metaCount)
		entryBytes := count * 16
		dataBase := b.seg.MetaBase + metaEntries + ((entryBytes + 63) &^ 63)
		pending := int(count)
		if pending == 0 {
			finishCopyBack()
			return
		}
		cursor := dataBase
		for i := uint64(0); i < count; i++ {
			off := st.ReadU64(b.seg.MetaBase + metaEntries + i*16)
			size := st.ReadU64(b.seg.MetaBase + metaEntries + i*16 + 8)
			b.env.Mach.CopyPhys(b.seg.ImageBase+off, cursor, int(size), func() {
				pending--
				if pending == 0 {
					finishCopyBack()
				}
			})
			cursor += size
		}
		return
	}
	finishCopyBack()
}

// timedScan charges the CPU+memory cost of scanning n metadata units that
// occupy the given physical range (bitmap words, PTE cachelines): a
// pipelined read of the underlying lines plus perUnit cycles of CPU work.
func timedScan(m *machine.Machine, physBase uint64, bytes uint64, n uint64, perUnit sim.Time, done func()) {
	cpu := sim.Time(n) * perUnit
	if bytes == 0 {
		m.Eng.Schedule(sim.CompPersist, cpu, done)
		return
	}
	m.ReadPhys(physBase, int(bytes), func([]byte) {
		m.Eng.Schedule(sim.CompPersist, cpu, done)
	})
}

package hostprof

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"prosper/internal/sim"
)

// pkgComponents maps a Go package path to the simulated component whose
// host cost its code represents. The roles mirror the event-owner tags in
// internal/sim: machine and workload code both execute the program's
// instruction stream (CompWorkload); runner/telemetry/stats are simulator
// infrastructure alongside the engine itself (CompSim).
var pkgComponents = map[string]sim.Component{
	"prosper/internal/mem":       sim.CompMem,
	"prosper/internal/cache":     sim.CompCache,
	"prosper/internal/vm":        sim.CompVM,
	"prosper/internal/kernel":    sim.CompKernel,
	"prosper/internal/prosper":   sim.CompProsper,
	"prosper/internal/persist":   sim.CompPersist,
	"prosper/internal/machine":   sim.CompWorkload,
	"prosper/internal/workload":  sim.CompWorkload,
	"prosper/internal/sim":       sim.CompSim,
	"prosper/internal/runner":    sim.CompSim,
	"prosper/internal/telemetry": sim.CompSim,
	"prosper/internal/stats":     sim.CompSim,
}

// funcPackage extracts the package path from a fully qualified function
// name as pprof records it, e.g.
// "prosper/internal/mem.(*Device).complete" → "prosper/internal/mem",
// "runtime.mallocgc" → "runtime".
func funcPackage(name string) string {
	slash := strings.LastIndexByte(name, '/')
	dot := strings.IndexByte(name[slash+1:], '.')
	if dot < 0 {
		return name
	}
	return name[:slash+1+dot]
}

// ComponentOf maps a function name to its owning component. Repository
// packages not listed explicitly (cmd tools, analysis, crash, energy,
// trace, experiments, hostprof itself) count as CompSim — they are host
// tooling around the simulator; everything else (runtime, stdlib) is
// CompOther.
func ComponentOf(funcName string) sim.Component {
	pkg := funcPackage(funcName)
	if c, ok := pkgComponents[pkg]; ok {
		return c
	}
	if strings.HasPrefix(pkg, "prosper/") || pkg == "prosper" || pkg == "main" {
		return sim.CompSim
	}
	return sim.CompOther
}

// Attribution is a per-component decomposition of one profile dimension.
// Flat charges each sample's value to the leaf frame's component; Cum
// charges it once to every distinct component on the stack, so a
// component's Cum includes work it caused lower in the call tree (e.g.
// runtime memmove under a persist copy loop stays CompOther flat but
// CompPersist cumulative).
type Attribution struct {
	SampleType ValueType
	Total      int64
	SampleN    int
	Flat       [sim.NumComponents]int64
	Cum        [sim.NumComponents]int64
}

// Attribute decomposes the profile's valueIndex-th sample dimension by
// component. valueIndex < 0 selects the last dimension, which for Go
// runtime profiles is the interesting one (cpu/nanoseconds,
// inuse_space/bytes).
func Attribute(p *Profile, valueIndex int) (Attribution, error) {
	if valueIndex < 0 {
		valueIndex = len(p.SampleTypes) - 1
	}
	if valueIndex >= len(p.SampleTypes) {
		return Attribution{}, fmt.Errorf("hostprof: sample value index %d out of range (profile has %d sample types)", valueIndex, len(p.SampleTypes))
	}
	a := Attribution{SampleType: p.SampleTypes[valueIndex]}
	for _, s := range p.Samples {
		v := s.Values[valueIndex]
		if v == 0 {
			continue
		}
		a.SampleN++
		a.Total += v
		stack := p.FuncStack(s)
		if len(stack) == 0 {
			a.Flat[sim.CompOther] += v
			a.Cum[sim.CompOther] += v
			continue
		}
		a.Flat[ComponentOf(stack[0])] += v
		var seen [sim.NumComponents]bool
		for _, fn := range stack {
			seen[ComponentOf(fn)] = true
		}
		for c, hit := range seen {
			if hit {
				a.Cum[c] += v
			}
		}
	}
	return a, nil
}

// SampleTypeIndex returns the index of the sample type with the given
// name, or -1 if absent.
func (p *Profile) SampleTypeIndex(name string) int {
	for i, vt := range p.SampleTypes {
		if vt.Type == name {
			return i
		}
	}
	return -1
}

func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// Table renders the attribution as a fixed-width text table, rows sorted
// by flat value descending (ties broken by component declaration order,
// so output is deterministic for identical input). All-zero components
// are omitted.
func (a Attribution) Table() string {
	order := make([]sim.Component, 0, sim.NumComponents)
	for _, c := range sim.Components() {
		if a.Flat[c] != 0 || a.Cum[c] != 0 {
			order = append(order, c)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return a.Flat[order[i]] > a.Flat[order[j]]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "sample type: %s/%s, total %d over %d samples\n",
		a.SampleType.Type, a.SampleType.Unit, a.Total, a.SampleN)
	fmt.Fprintf(&b, "%-10s %14s %7s %14s %7s\n", "component", "flat", "flat%", "cum", "cum%")
	for _, c := range order {
		fmt.Fprintf(&b, "%-10s %14d %6.1f%% %14d %6.1f%%\n",
			c.String(), a.Flat[c], pct(a.Flat[c], a.Total), a.Cum[c], pct(a.Cum[c], a.Total))
	}
	return b.String()
}

// componentJSON is one row of the JSON report.
type componentJSON struct {
	Component string  `json:"component"`
	Flat      int64   `json:"flat"`
	FlatPct   float64 `json:"flat_pct"`
	Cum       int64   `json:"cum"`
	CumPct    float64 `json:"cum_pct"`
}

type attributionJSON struct {
	SampleType string          `json:"sample_type"`
	Unit       string          `json:"unit"`
	Total      int64           `json:"total"`
	Samples    int             `json:"samples"`
	Components []componentJSON `json:"components"`
}

// JSON renders the attribution as an indented JSON report with one entry
// per component in declaration order (zero components included, so the
// shape is fixed).
func (a Attribution) JSON() ([]byte, error) {
	out := attributionJSON{
		SampleType: a.SampleType.Type,
		Unit:       a.SampleType.Unit,
		Total:      a.Total,
		Samples:    a.SampleN,
	}
	for _, c := range sim.Components() {
		out.Components = append(out.Components, componentJSON{
			Component: c.String(),
			Flat:      a.Flat[c],
			FlatPct:   round1(pct(a.Flat[c], a.Total)),
			Cum:       a.Cum[c],
			CumPct:    round1(pct(a.Cum[c], a.Total)),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// round1 rounds to one decimal place so the JSON stays readable and
// byte-stable for identical input.
func round1(x float64) float64 {
	if x < 0 {
		return -round1(-x)
	}
	return float64(int64(x*10+0.5)) / 10
}

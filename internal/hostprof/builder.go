package hostprof

import (
	"bytes"
	"compress/gzip"
)

// Builder constructs synthetic pprof profiles for tests and committed
// fixtures. It emits the same field subset Parse reads, with IDs and
// string-table entries assigned in first-use order, so a given build
// sequence always produces identical bytes — that is what lets
// cmd/prosper-prof commit a generated-once fixture and a golden report.
type Builder struct {
	sampleTypes []ValueType
	periodType  ValueType
	period      int64
	timeNanos   int64
	duration    int64

	strs    []string
	strIdx  map[string]uint64
	funcIDs map[string]uint64
	locIDs  map[string]uint64
	funcs   []uint64   // name string index per function, id = position+1
	locs    [][]uint64 // function ids (leaf-first) per location, id = position+1
	samples []builderSample
}

type builderSample struct {
	locIDs []uint64
	values []int64
}

// NewBuilder starts a profile with the given sample types.
func NewBuilder(types ...ValueType) *Builder {
	b := &Builder{
		sampleTypes: types,
		strIdx:      map[string]uint64{},
		funcIDs:     map[string]uint64{},
		locIDs:      map[string]uint64{},
	}
	b.str("") // string table entry 0 must be the empty string
	return b
}

// SetPeriod records the sampling period and its type.
func (b *Builder) SetPeriod(vt ValueType, period int64) { b.periodType, b.period = vt, period }

// SetTimes records profile start time and duration in nanoseconds.
func (b *Builder) SetTimes(timeNanos, durationNanos int64) {
	b.timeNanos, b.duration = timeNanos, durationNanos
}

func (b *Builder) str(s string) uint64 {
	if i, ok := b.strIdx[s]; ok {
		return i
	}
	i := uint64(len(b.strs))
	b.strs = append(b.strs, s)
	b.strIdx[s] = i
	return i
}

func (b *Builder) funcID(name string) uint64 {
	if id, ok := b.funcIDs[name]; ok {
		return id
	}
	b.funcs = append(b.funcs, b.str(name))
	id := uint64(len(b.funcs))
	b.funcIDs[name] = id
	return id
}

// locID returns a location covering the given functions leaf-first (more
// than one function models inlining).
func (b *Builder) locID(fns ...string) uint64 {
	key := ""
	for _, fn := range fns {
		key += fn + "\x00"
	}
	if id, ok := b.locIDs[key]; ok {
		return id
	}
	ids := make([]uint64, len(fns))
	for i, fn := range fns {
		ids[i] = b.funcID(fn)
	}
	b.locs = append(b.locs, ids)
	id := uint64(len(b.locs))
	b.locIDs[key] = id
	return id
}

// Sample adds one stack sample. stack is leaf-first function names; each
// element becomes one location. values must match the sample types.
func (b *Builder) Sample(stack []string, values ...int64) {
	s := builderSample{values: values}
	for _, fn := range stack {
		s.locIDs = append(s.locIDs, b.locID(fn))
	}
	b.samples = append(b.samples, s)
}

// SampleInlined is Sample with the leaf location carrying extra inlined
// frames (leafInline leaf-first), exercising multi-Line locations.
func (b *Builder) SampleInlined(leafInline []string, rest []string, values ...int64) {
	s := builderSample{values: values}
	s.locIDs = append(s.locIDs, b.locID(leafInline...))
	for _, fn := range rest {
		s.locIDs = append(s.locIDs, b.locID(fn))
	}
	b.samples = append(b.samples, s)
}

// protobuf writer helpers.

func putVarint(buf *bytes.Buffer, v uint64) {
	for v >= 0x80 {
		buf.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	buf.WriteByte(byte(v))
}

func putTag(buf *bytes.Buffer, field, wire int) {
	putVarint(buf, uint64(field)<<3|uint64(wire))
}

func putBytes(buf *bytes.Buffer, field int, body []byte) {
	putTag(buf, field, wireBytes)
	putVarint(buf, uint64(len(body)))
	buf.Write(body)
}

func putInt(buf *bytes.Buffer, field int, v uint64) {
	putTag(buf, field, wireVarint)
	putVarint(buf, v)
}

func putPacked(buf *bytes.Buffer, field int, vals []uint64) {
	var body bytes.Buffer
	for _, v := range vals {
		putVarint(&body, v)
	}
	putBytes(buf, field, body.Bytes())
}

func (b *Builder) valueTypeBytes(vt ValueType) []byte {
	var body bytes.Buffer
	putInt(&body, 1, b.str(vt.Type))
	putInt(&body, 2, b.str(vt.Unit))
	return body.Bytes()
}

// Encode serializes the profile as a raw (un-gzipped) protobuf message.
func (b *Builder) Encode() []byte {
	var out bytes.Buffer
	// Interning strings for sample/period types happens lazily in
	// valueTypeBytes, so run those first into scratch buffers.
	var typeBufs [][]byte
	for _, vt := range b.sampleTypes {
		typeBufs = append(typeBufs, b.valueTypeBytes(vt))
	}
	var periodBuf []byte
	if b.periodType != (ValueType{}) {
		periodBuf = b.valueTypeBytes(b.periodType)
	}
	for _, tb := range typeBufs {
		putBytes(&out, 1, tb)
	}
	for _, s := range b.samples {
		var body bytes.Buffer
		putPacked(&body, 1, s.locIDs)
		vals := make([]uint64, len(s.values))
		for i, v := range s.values {
			vals[i] = uint64(v)
		}
		putPacked(&body, 2, vals)
		putBytes(&out, 2, body.Bytes())
	}
	for i, fns := range b.locs {
		var body bytes.Buffer
		putInt(&body, 1, uint64(i+1))
		for _, fid := range fns {
			var line bytes.Buffer
			putInt(&line, 1, fid)
			putBytes(&body, 4, line.Bytes())
		}
		putBytes(&out, 4, body.Bytes())
	}
	for i, nameIdx := range b.funcs {
		var body bytes.Buffer
		putInt(&body, 1, uint64(i+1))
		putInt(&body, 2, nameIdx)
		putBytes(&out, 5, body.Bytes())
	}
	for _, s := range b.strs {
		putBytes(&out, 6, []byte(s))
	}
	if b.timeNanos != 0 {
		putInt(&out, 9, uint64(b.timeNanos))
	}
	if b.duration != 0 {
		putInt(&out, 10, uint64(b.duration))
	}
	if periodBuf != nil {
		putBytes(&out, 11, periodBuf)
	}
	if b.period != 0 {
		putInt(&out, 12, uint64(b.period))
	}
	return out.Bytes()
}

// EncodeGzip serializes the profile gzipped, as runtime/pprof writes it.
// The gzip header carries no timestamp, so output depends only on the
// build sequence.
func (b *Builder) EncodeGzip() []byte {
	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	if _, err := zw.Write(b.Encode()); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	if err := zw.Close(); err != nil {
		panic(err)
	}
	return out.Bytes()
}

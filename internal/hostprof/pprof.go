package hostprof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// The pprof wire format is a gzipped protobuf message
// (perftools.profiles.Profile). We decode only the fields the attributor
// needs — sample types, samples, the location→function graph, and the
// string table — with a hand-rolled varint reader, so the repository
// keeps its zero-dependency stance.
//
// Field numbers below match proto/profile.proto from the pprof project:
//
//	Profile:  sample_type=1 sample=2 location=4 function=5
//	          string_table=6 time_nanos=9 duration_nanos=10
//	          period_type=11 period=12
//	Sample:   location_id=1 value=2
//	Location: id=1 line=4
//	Line:     function_id=1
//	Function: id=1 name=2

// ValueType names one dimension of a profile's sample values, e.g.
// {Type: "cpu", Unit: "nanoseconds"}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack sample: location IDs leaf-first, one value per
// sample type.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
}

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ValueType

	// locFuncs maps a location ID to its function names leaf-first
	// (inlined frames expanded: the innermost inline first).
	locFuncs map[uint64][]string
}

// FuncStack returns the sample's function names leaf-first, expanding
// inlined frames. Unknown location IDs contribute nothing.
func (p *Profile) FuncStack(s Sample) []string {
	var out []string
	for _, id := range s.LocationIDs {
		out = append(out, p.locFuncs[id]...)
	}
	return out
}

// Parse decodes a pprof profile, transparently gunzipping if the input
// carries the gzip magic. It returns an error for truncated or malformed
// input rather than guessing.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("hostprof: bad gzip framing: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("hostprof: truncated gzip stream: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("hostprof: corrupt gzip stream: %w", err)
		}
		data = raw
	}
	return parseProfile(data)
}

// wire types used by the pprof encoding.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// reader walks a protobuf message buffer.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) done() bool { return r.pos >= len(r.data) }

// varint decodes one base-128 varint.
func (r *reader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.pos >= len(r.data) {
			return 0, fmt.Errorf("hostprof: truncated varint at offset %d", r.pos)
		}
		b := r.data[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("hostprof: varint overflows 64 bits at offset %d", r.pos)
}

// tag decodes a field tag into (field number, wire type).
func (r *reader) tag() (int, int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes decodes one length-delimited field body.
func (r *reader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos) {
		return nil, fmt.Errorf("hostprof: length-delimited field of %d bytes exceeds remaining %d", n, len(r.data)-r.pos)
	}
	out := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

// skip consumes a field body of the given wire type.
func (r *reader) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := r.varint()
		return err
	case wireFixed64:
		if len(r.data)-r.pos < 8 {
			return fmt.Errorf("hostprof: truncated fixed64 at offset %d", r.pos)
		}
		r.pos += 8
		return nil
	case wireBytes:
		_, err := r.bytes()
		return err
	case wireFixed32:
		if len(r.data)-r.pos < 4 {
			return fmt.Errorf("hostprof: truncated fixed32 at offset %d", r.pos)
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("hostprof: unsupported wire type %d at offset %d", wire, r.pos)
	}
}

// uint64s decodes a repeated integer field, accepting both packed
// (length-delimited) and unpacked (single varint) encodings.
func uint64s(r *reader, wire int, dst []uint64) ([]uint64, error) {
	if wire == wireVarint {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	}
	if wire != wireBytes {
		return nil, fmt.Errorf("hostprof: repeated int field has wire type %d", wire)
	}
	body, err := r.bytes()
	if err != nil {
		return nil, err
	}
	rr := reader{data: body}
	for !rr.done() {
		v, err := rr.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// rawValueType carries string-table indexes until resolution.
type rawValueType struct{ typ, unit uint64 }

func parseValueType(body []byte) (rawValueType, error) {
	r := reader{data: body}
	var vt rawValueType
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return vt, err
		}
		switch field {
		case 1:
			if vt.typ, err = r.varint(); err != nil {
				return vt, err
			}
		case 2:
			if vt.unit, err = r.varint(); err != nil {
				return vt, err
			}
		default:
			if err := r.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(body []byte) (Sample, error) {
	r := reader{data: body}
	var s Sample
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case 1:
			if s.LocationIDs, err = uint64s(&r, wire, s.LocationIDs); err != nil {
				return s, err
			}
		case 2:
			var vals []uint64
			if vals, err = uint64s(&r, wire, nil); err != nil {
				return s, err
			}
			for _, v := range vals {
				s.Values = append(s.Values, int64(v))
			}
		default:
			if err := r.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// rawLocation keeps the line list as function IDs leaf-first.
type rawLocation struct {
	id      uint64
	funcIDs []uint64
}

func parseLocation(body []byte) (rawLocation, error) {
	r := reader{data: body}
	var loc rawLocation
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return loc, err
		}
		switch field {
		case 1:
			if loc.id, err = r.varint(); err != nil {
				return loc, err
			}
		case 4:
			line, err := r.bytes()
			if err != nil {
				return loc, err
			}
			fid, err := parseLine(line)
			if err != nil {
				return loc, err
			}
			loc.funcIDs = append(loc.funcIDs, fid)
		default:
			if err := r.skip(wire); err != nil {
				return loc, err
			}
		}
	}
	return loc, nil
}

func parseLine(body []byte) (uint64, error) {
	r := reader{data: body}
	var fid uint64
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return 0, err
		}
		if field == 1 {
			if fid, err = r.varint(); err != nil {
				return 0, err
			}
			continue
		}
		if err := r.skip(wire); err != nil {
			return 0, err
		}
	}
	return fid, nil
}

type rawFunction struct {
	id   uint64
	name uint64 // string table index
}

func parseFunction(body []byte) (rawFunction, error) {
	r := reader{data: body}
	var fn rawFunction
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return fn, err
		}
		switch field {
		case 1:
			if fn.id, err = r.varint(); err != nil {
				return fn, err
			}
		case 2:
			if fn.name, err = r.varint(); err != nil {
				return fn, err
			}
		default:
			if err := r.skip(wire); err != nil {
				return fn, err
			}
		}
	}
	return fn, nil
}

func parseProfile(data []byte) (*Profile, error) {
	r := reader{data: data}
	var (
		rawTypes  []rawValueType
		rawPeriod rawValueType
		locs      []rawLocation
		funcs     []rawFunction
		strings   []string
	)
	p := &Profile{locFuncs: map[uint64][]string{}}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(body)
			if err != nil {
				return nil, err
			}
			rawTypes = append(rawTypes, vt)
		case 2: // sample
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			s, err := parseSample(body)
			if err != nil {
				return nil, err
			}
			p.Samples = append(p.Samples, s)
		case 4: // location
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(body)
			if err != nil {
				return nil, err
			}
			locs = append(locs, loc)
		case 5: // function
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			fn, err := parseFunction(body)
			if err != nil {
				return nil, err
			}
			funcs = append(funcs, fn)
		case 6: // string_table
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			strings = append(strings, string(body))
		case 9: // time_nanos
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64(v)
		case 10: // duration_nanos
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 11: // period_type
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			if rawPeriod, err = parseValueType(body); err != nil {
				return nil, err
			}
		case 12: // period
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(idx uint64) (string, error) {
		if idx >= uint64(len(strings)) {
			return "", fmt.Errorf("hostprof: string table index %d out of range (table has %d entries)", idx, len(strings))
		}
		return strings[idx], nil
	}
	for _, vt := range rawTypes {
		t, err := str(vt.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(vt.unit)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: t, Unit: u})
	}
	if t, err := str(rawPeriod.typ); err == nil {
		if u, err2 := str(rawPeriod.unit); err2 == nil {
			p.PeriodType = ValueType{Type: t, Unit: u}
		}
	}
	funcNames := make(map[uint64]string, len(funcs))
	for _, fn := range funcs {
		name, err := str(fn.name)
		if err != nil {
			return nil, err
		}
		funcNames[fn.id] = name
	}
	for _, loc := range locs {
		names := make([]string, 0, len(loc.funcIDs))
		for _, fid := range loc.funcIDs {
			names = append(names, funcNames[fid])
		}
		p.locFuncs[loc.id] = names
	}
	if len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("hostprof: profile declares no sample types (not a pprof profile?)")
	}
	for i, s := range p.Samples {
		if len(s.Values) != len(p.SampleTypes) {
			return nil, fmt.Errorf("hostprof: sample %d has %d values, want %d (one per sample type)", i, len(s.Values), len(p.SampleTypes))
		}
	}
	return p, nil
}

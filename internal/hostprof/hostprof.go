// Package hostprof owns the host-side profiling primitives: the sanctioned
// monotonic clock that sim.Profile batches against, and a stdlib-only
// decoder for pprof CPU/heap profiles that attributes samples to simulated
// components by package path.
//
// This is the one sim-adjacent package allowed to read the host clock
// (prosper-lint's wallclock allowlist): simulation code measures in
// sim.Time cycles, and anything here is host-side observability that never
// feeds back into simulated behavior.
//
// The decoder follows the same ethos as internal/analysis's Loader: no
// module dependencies, just enough of the format (gzip framing +
// protobuf varints) to read what the Go runtime writes.
package hostprof

import "time"

// base anchors Nanotime. Package init order makes this the process-start
// epoch for all profiling deltas.
var base = time.Now()

// Nanotime returns monotonic host nanoseconds since process start. It is
// the clock to pass to sim.Engine.EnableProfiling: time.Since reads the
// monotonic reading embedded in base, so the result never jumps with
// wall-clock adjustments.
func Nanotime() int64 { return int64(time.Since(base)) }

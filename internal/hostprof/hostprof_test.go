package hostprof

import (
	"strings"
	"testing"

	"prosper/internal/sim"
)

func cpuBuilder() *Builder {
	b := NewBuilder(
		ValueType{Type: "samples", Unit: "count"},
		ValueType{Type: "cpu", Unit: "nanoseconds"},
	)
	b.SetPeriod(ValueType{Type: "cpu", Unit: "nanoseconds"}, 10_000_000)
	b.SetTimes(1_700_000_000_000_000_000, 2_000_000_000)
	// Leaf-first stacks.
	b.Sample([]string{
		"prosper/internal/mem.(*Device).complete",
		"prosper/internal/sim.(*Engine).Step",
		"main.main",
	}, 3, 30_000_000)
	b.Sample([]string{
		"runtime.memmove",
		"prosper/internal/persist.(*prosperMech).copyRange",
		"prosper/internal/sim.(*Engine).Step",
	}, 2, 20_000_000)
	b.Sample([]string{
		"prosper/internal/cache.(*Cache).Access",
		"prosper/internal/machine.(*Core).step",
	}, 5, 50_000_000)
	return b
}

func TestParseRoundTrip(t *testing.T) {
	b := cpuBuilder()
	for _, data := range [][]byte{b.Encode(), b.EncodeGzip()} {
		p, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.SampleTypes) != 2 || p.SampleTypes[1] != (ValueType{Type: "cpu", Unit: "nanoseconds"}) {
			t.Fatalf("sample types = %+v", p.SampleTypes)
		}
		if p.Period != 10_000_000 || p.PeriodType.Type != "cpu" {
			t.Fatalf("period = %d %+v", p.Period, p.PeriodType)
		}
		if p.TimeNanos != 1_700_000_000_000_000_000 || p.DurationNanos != 2_000_000_000 {
			t.Fatalf("times = %d %d", p.TimeNanos, p.DurationNanos)
		}
		if len(p.Samples) != 3 {
			t.Fatalf("samples = %d", len(p.Samples))
		}
		stack := p.FuncStack(p.Samples[0])
		if len(stack) != 3 || stack[0] != "prosper/internal/mem.(*Device).complete" || stack[2] != "main.main" {
			t.Fatalf("stack = %v", stack)
		}
		if p.Samples[0].Values[1] != 30_000_000 {
			t.Fatalf("values = %v", p.Samples[0].Values)
		}
	}
}

func TestParseInlinedFrames(t *testing.T) {
	b := NewBuilder(ValueType{Type: "cpu", Unit: "nanoseconds"})
	b.SampleInlined(
		[]string{"prosper/internal/vm.(*TLB).Lookup", "prosper/internal/machine.(*walkOp).step"},
		[]string{"prosper/internal/sim.(*Engine).Step"},
		7)
	p, err := Parse(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	stack := p.FuncStack(p.Samples[0])
	want := []string{
		"prosper/internal/vm.(*TLB).Lookup",
		"prosper/internal/machine.(*walkOp).step",
		"prosper/internal/sim.(*Engine).Step",
	}
	if len(stack) != len(want) {
		t.Fatalf("stack = %v", stack)
	}
	for i := range want {
		if stack[i] != want[i] {
			t.Fatalf("stack[%d] = %q, want %q", i, stack[i], want[i])
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	good := cpuBuilder().EncodeGzip()
	cases := map[string][]byte{
		"empty":            {},
		"truncated gzip":   good[:len(good)/2],
		"bad gzip header":  {0x1f, 0x8b, 0xff, 0xff},
		"not a profile":    []byte("definitely not protobuf \xff\xff\xff\xff"),
		"truncated varint": {0x08, 0x80},
	}
	raw := cpuBuilder().Encode()
	cases["truncated protobuf"] = raw[:len(raw)-3]
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: Parse accepted malformed input", name)
		}
	}
}

func TestParseRejectsBadStringIndex(t *testing.T) {
	// A sample_type whose type index points past the string table.
	var b Builder
	_ = b
	bad := []byte{
		// field 1 (sample_type), bytes, len 4: {field1 varint 99, field2 varint 0}
		0x0a, 0x04, 0x08, 99, 0x10, 0x00,
		// field 6 (string_table): ""
		0x32, 0x00,
	}
	if _, err := Parse(bad); err == nil || !strings.Contains(err.Error(), "string table index") {
		t.Fatalf("want string-table error, got %v", err)
	}
}

func TestParseRejectsValueCountMismatch(t *testing.T) {
	b := NewBuilder(ValueType{Type: "cpu", Unit: "nanoseconds"})
	b.Sample([]string{"main.main"}, 1, 2) // two values, one sample type
	if _, err := Parse(b.Encode()); err == nil || !strings.Contains(err.Error(), "values") {
		t.Fatalf("want value-count error, got %v", err)
	}
}

func TestComponentOf(t *testing.T) {
	cases := map[string]sim.Component{
		"prosper/internal/mem.(*Device).complete":      sim.CompMem,
		"prosper/internal/cache.(*Cache).Access":       sim.CompCache,
		"prosper/internal/vm.(*TLB).Lookup":            sim.CompVM,
		"prosper/internal/kernel.(*Kernel).step":       sim.CompKernel,
		"prosper/internal/prosper.(*Tracker).Store":    sim.CompProsper,
		"prosper/internal/persist.(*prosperMech).ckpt": sim.CompPersist,
		"prosper/internal/machine.(*Core).step":        sim.CompWorkload,
		"prosper/internal/workload.(*gapbsPR).Next":    sim.CompWorkload,
		"prosper/internal/sim.(*Engine).Step":          sim.CompSim,
		"prosper/internal/runner.(*Executor).Run":      sim.CompSim,
		"prosper/internal/telemetry.(*Tracer).Begin":   sim.CompSim,
		"prosper/internal/stats.(*Histogram).Observe":  sim.CompSim,
		"prosper/internal/experiments.DefaultScale":    sim.CompSim,
		"main.main":                                 sim.CompSim,
		"runtime.mallocgc":                          sim.CompOther,
		"runtime.memmove":                           sim.CompOther,
		"compress/flate.(*compressor).deflate":      sim.CompOther,
		"github.com/other/dep.F":                    sim.CompOther,
		"prosper/internal/sim.(*Engine).Step.func1": sim.CompSim,
		"prosper/internal/mem.glob..func1":          sim.CompMem,
	}
	for name, want := range cases {
		if got := ComponentOf(name); got != want {
			t.Errorf("ComponentOf(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestAttributeFlatAndCum(t *testing.T) {
	b := cpuBuilder()
	p, err := Parse(b.EncodeGzip())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Attribute(p, -1)
	if err != nil {
		t.Fatal(err)
	}
	if a.SampleType.Type != "cpu" {
		t.Fatalf("picked sample type %+v, want cpu", a.SampleType)
	}
	if a.Total != 100_000_000 || a.SampleN != 3 {
		t.Fatalf("total = %d over %d", a.Total, a.SampleN)
	}
	// Flat: sample 1 leaf mem, sample 2 leaf runtime.memmove (other),
	// sample 3 leaf cache.
	if a.Flat[sim.CompMem] != 30_000_000 || a.Flat[sim.CompOther] != 20_000_000 || a.Flat[sim.CompCache] != 50_000_000 {
		t.Fatalf("flat = %v", a.Flat)
	}
	// Cum: sim appears on samples 1+2 (engine Step frames), persist on
	// sample 2, workload on sample 3.
	if a.Cum[sim.CompSim] != 50_000_000 {
		t.Fatalf("cum sim = %d", a.Cum[sim.CompSim])
	}
	if a.Cum[sim.CompPersist] != 20_000_000 {
		t.Fatalf("cum persist = %d", a.Cum[sim.CompPersist])
	}
	if a.Cum[sim.CompWorkload] != 50_000_000 {
		t.Fatalf("cum workload = %d", a.Cum[sim.CompWorkload])
	}
	// Flat sums to total; every cum entry <= total.
	var flatSum int64
	for c, v := range a.Flat {
		flatSum += v
		if a.Cum[c] > a.Total {
			t.Fatalf("cum[%d] = %d exceeds total", c, a.Cum[c])
		}
	}
	if flatSum != a.Total {
		t.Fatalf("flat sums to %d, want %d", flatSum, a.Total)
	}
}

func TestAttributeSampleTypeSelection(t *testing.T) {
	p, err := Parse(cpuBuilder().Encode())
	if err != nil {
		t.Fatal(err)
	}
	if idx := p.SampleTypeIndex("samples"); idx != 0 {
		t.Fatalf("SampleTypeIndex(samples) = %d", idx)
	}
	if idx := p.SampleTypeIndex("nope"); idx != -1 {
		t.Fatalf("SampleTypeIndex(nope) = %d", idx)
	}
	a, err := Attribute(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != 10 { // 3+2+5 sample counts
		t.Fatalf("total = %d, want 10", a.Total)
	}
	if _, err := Attribute(p, 5); err == nil {
		t.Fatal("want error for out-of-range value index")
	}
}

func TestTableAndJSONDeterministic(t *testing.T) {
	p, err := Parse(cpuBuilder().EncodeGzip())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Attribute(p, -1)
	if err != nil {
		t.Fatal(err)
	}
	tbl := a.Table()
	if !strings.Contains(tbl, "sample type: cpu/nanoseconds, total 100000000 over 3 samples") {
		t.Fatalf("table header wrong:\n%s", tbl)
	}
	// Rows sorted by flat descending: cache (50M) first.
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	if !strings.HasPrefix(lines[2], "cache") {
		t.Fatalf("first row should be cache:\n%s", tbl)
	}
	js, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		js2, _ := a.JSON()
		if string(js2) != string(js) {
			t.Fatal("JSON output not byte-stable")
		}
		if a.Table() != tbl {
			t.Fatal("table output not byte-stable")
		}
	}
	if !strings.Contains(string(js), `"component": "cache"`) || !strings.Contains(string(js), `"flat": 50000000`) {
		t.Fatalf("json missing cache row:\n%s", js)
	}
}

func TestNanotimeMonotonic(t *testing.T) {
	a := Nanotime()
	b := Nanotime()
	if b < a {
		t.Fatalf("Nanotime went backwards: %d then %d", a, b)
	}
}

func TestBuilderDeterministic(t *testing.T) {
	a := cpuBuilder().EncodeGzip()
	b := cpuBuilder().EncodeGzip()
	if string(a) != string(b) {
		t.Fatal("identical build sequences produced different bytes")
	}
}

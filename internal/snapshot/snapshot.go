// Package snapshot implements deterministic, versioned serialization of
// the full simulated machine: engine clock, memory system, caches, TLBs,
// page tables, persistence mechanisms, trackers, and kernel scheduler
// state. A snapshot is taken at a checkpoint commit hook — the machine's
// quiescent point, where every thread is parked at an op boundary and
// everything still in flight carries a stable resume identity — and a
// resumed run replays byte-identically to one that never stopped.
//
// Format (all little-endian):
//
//	magic   u64  "PROSNAP1"
//	version u32  format version (currently 1)
//	4 sections, in order USER, ENGINE, MACHINE, KERNEL, each:
//	  id  u32
//	  len u64   payload length
//	  crc u32   IEEE CRC-32 of the payload
//	  payload
//
// The USER payload is opaque to this package; the runner stores its
// experiment baselines there. Any structural damage — bad magic, an
// unknown version, a wrong section id, a CRC mismatch, truncation —
// yields a typed error, never a panic.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"slices"

	"prosper/internal/kernel"
	"prosper/internal/sim"
	"prosper/internal/snapbuf"
)

// Magic identifies a Prosper simulator snapshot ("PROSNAP1", little-endian).
const Magic = uint64(0x3150414e534f5250)

// Version is the current snapshot format version. Resume refuses any
// other version: the encoding has no compatibility shims — a snapshot is
// a same-binary, same-configuration artifact, and silent cross-version
// decoding would corrupt state instead of failing loudly.
const Version = uint32(1)

// Section ids, in their required file order.
const (
	secUser    = uint32(1)
	secEngine  = uint32(2)
	secMachine = uint32(3)
	secKernel  = uint32(4)
)

var (
	// ErrBadMagic reports input that is not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion reports a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated reports a snapshot cut short.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrCorrupt reports a snapshot that is structurally framed but whose
	// contents fail validation (CRC mismatch or undecodable section).
	ErrCorrupt = errors.New("snapshot: corrupt")
	// ErrNotQuiescent reports a Save attempted at a point where machine
	// state cannot be fully serialized: outside a checkpoint commit hook,
	// with host-side closures pending, or with in-flight continuations
	// that carry no resume identity.
	ErrNotQuiescent = errors.New("snapshot: machine not at a quiescent point")
)

// Save serializes the kernel and everything beneath it. user is an
// opaque payload stored verbatim (the runner keeps its experiment
// baselines there). Save must be called from inside a checkpoint commit
// hook (Process.CommitHook); anywhere else it fails with ErrNotQuiescent.
// Save is a pure read — the simulation continues unperturbed afterwards.
func Save(w io.Writer, k *kernel.Kernel, user []byte) error {
	var claims sim.EventClaims

	mw := snapbuf.NewWriter()
	if err := k.Mach.SaveSnap(mw, &claims); err != nil {
		return fmt.Errorf("%w: %w", ErrNotQuiescent, err)
	}
	kw := snapbuf.NewWriter()
	if err := k.SaveSnap(kw, &claims); err != nil {
		return fmt.Errorf("%w: %w", ErrNotQuiescent, err)
	}

	// Every pending engine event must be claimed by exactly one owner, or
	// the resumed queue would silently diverge from the saved one.
	claimed := claims.Keys()
	pending := k.Eng.PendingKeys()
	if !slices.Equal(claimed, pending) {
		return fmt.Errorf("%w: %d pending engine events, %d claimed by snapshot owners",
			ErrNotQuiescent, len(pending), len(claimed))
	}

	ew := snapbuf.NewWriter()
	now, seq, fired := k.Eng.Clock()
	ew.I64(now)
	ew.U64(seq)
	ew.U64(fired)

	out := snapbuf.NewWriter()
	out.U64(Magic)
	out.U32(Version)
	writeSection(out, secUser, user)
	writeSection(out, secEngine, ew.Bytes())
	writeSection(out, secMachine, mw.Bytes())
	writeSection(out, secKernel, kw.Bytes())
	_, err := w.Write(out.Bytes())
	return err
}

func writeSection(out *snapbuf.Writer, id uint32, payload []byte) {
	out.U32(id)
	out.U64(uint64(len(payload)))
	out.U32(crc32.ChecksumIEEE(payload))
	out.Raw(payload)
}

// Resumed is a successfully restored simulation, paused inside the
// checkpoint commit hook the snapshot was taken in. Read User (the
// opaque payload given to Save), then call Finish exactly once to run
// the interrupted commit's epilogue and continue execution.
type Resumed struct {
	// User is the opaque payload stored by Save.
	User []byte

	k *kernel.Kernel
}

// Finish completes the resume: the interrupted checkpoint commit's
// epilogue runs (threads re-enqueue, the new interval opens) and any
// device completion batch the snapshot interrupted mid-fire delivers its
// remaining callbacks. After Finish the engine is ready to run.
func (res *Resumed) Finish() error {
	if err := res.k.FinishResume(); err != nil {
		return err
	}
	res.k.Mach.ResumeFiring()
	return nil
}

// Resume restores a snapshot into k, which must be a freshly booted
// kernel of the identical configuration and spawn sequence as the one
// that saved it. On success the kernel is paused at the snapshot's
// commit hook; call Finish on the result to continue. On failure the
// kernel may be partially overwritten and must be discarded.
func Resume(r io.Reader, k *kernel.Kernel) (res *Resumed, err error) {
	data, rerr := io.ReadAll(r)
	if rerr != nil {
		return nil, fmt.Errorf("%w: %w", ErrTruncated, rerr)
	}
	sections, err := parse(data)
	if err != nil {
		return nil, err
	}

	// The decoders below validate counts, ranges, and cross-references
	// before acting on them, but state restored across package boundaries
	// can still trip an internal invariant (a deliberately inconsistent
	// snapshot passes every local check yet violates a global one). A
	// snapshot is external input: map any such panic to ErrCorrupt rather
	// than crashing the host.
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrCorrupt, p)
		}
	}()

	er := snapbuf.NewReader(sections[secEngine])
	now := er.I64()
	seq := er.U64()
	fired := er.U64()
	if er.Err() != nil {
		return nil, fmt.Errorf("%w: engine section: %w", ErrCorrupt, er.Err())
	}
	k.Eng.ResetQueue()
	k.Eng.RestoreClock(now, seq, fired)

	// Resume keys re-bind parked continuations anywhere in the machine,
	// so the full registry must exist before any section decodes: the
	// mechanisms' keyed tokens first, then the machine registers its
	// copy/fan engine slots as it materializes them.
	reg := make(map[uint64]sim.Done)
	k.RegisterResumeTokens(reg)
	if err := k.Mach.LoadSnap(snapbuf.NewReader(sections[secMachine]), reg); err != nil {
		return nil, fmt.Errorf("%w: machine section: %w", ErrCorrupt, err)
	}
	if err := k.LoadSnap(snapbuf.NewReader(sections[secKernel]), reg); err != nil {
		return nil, fmt.Errorf("%w: kernel section: %w", ErrCorrupt, err)
	}
	return &Resumed{User: sections[secUser], k: k}, nil
}

// parse validates framing and returns the four section payloads by id.
func parse(data []byte) (map[uint32][]byte, error) {
	r := snapbuf.NewReader(data)
	magic := r.U64()
	version := r.U32()
	if r.Err() != nil {
		return nil, ErrTruncated
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	if version != Version {
		return nil, fmt.Errorf("%w: snapshot v%d, binary supports v%d", ErrVersion, version, Version)
	}
	sections := make(map[uint32][]byte, 4)
	for _, want := range []uint32{secUser, secEngine, secMachine, secKernel} {
		id := r.U32()
		n := r.U64()
		crc := r.U32()
		if r.Err() != nil {
			return nil, ErrTruncated
		}
		if id != want {
			return nil, fmt.Errorf("%w: section %d where %d expected", ErrCorrupt, id, want)
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("%w: section %d claims %d bytes with %d remaining", ErrTruncated, id, n, r.Remaining())
		}
		payload := make([]byte, n)
		copy(payload, r.Raw(int(n)))
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("%w: section %d CRC mismatch", ErrCorrupt, id)
		}
		sections[id] = payload
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, r.Remaining())
	}
	return sections, nil
}

package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/snapshot"
	"prosper/internal/workload"
)

// bootFuzzKernel builds the small deterministic machine every fuzz
// iteration resumes into: one core, one checkpointing counter process.
func bootFuzzKernel() (*kernel.Kernel, *kernel.Process) {
	k := kernel.New(kernel.Config{Machine: machine.Config{Cores: 1}})
	p := k.Spawn(kernel.ProcessConfig{
		Name:               "fuzz",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		StackReserve:       16 << 10,
		HeapSize:           64 << 10,
		CheckpointInterval: 50 * sim.Microsecond,
	}, workload.NewCounter(1<<30))
	return k, p
}

// validSnapshot runs the fuzz machine to its first checkpoint commit
// and saves real snapshot bytes there.
func validSnapshot(f *testing.F) []byte {
	k, p := bootFuzzKernel()
	defer p.Shutdown()
	var buf bytes.Buffer
	saved := false
	p.CommitHook = func(*kernel.Process) {
		if saved {
			return
		}
		if err := snapshot.Save(&buf, k, []byte("fuzz-user-payload")); err != nil {
			f.Fatal(err)
		}
		saved = true
	}
	for i := 0; i < 16 && !saved; i++ {
		k.RunFor(50 * sim.Microsecond)
	}
	if !saved {
		f.Fatal("fuzz machine never committed a checkpoint")
	}
	return buf.Bytes()
}

// FuzzResumeSnapshot hardens Resume against malformed snapshots: for
// arbitrary input it must either restore a machine or return one of the
// typed contract errors (DESIGN.md §14) — never panic, never return an
// error outside the typed set.
func FuzzResumeSnapshot(f *testing.F) {
	good := validSnapshot(f)
	f.Add(good)

	// Truncations at the framing's interesting offsets: inside the
	// magic, inside a section header, inside a section payload.
	for _, n := range []int{0, 4, 11, 17, 40, len(good) / 2, len(good) - 1} {
		if n <= len(good) {
			f.Add(good[:n])
		}
	}
	// Bit flips across the whole file: header fields, CRCs, payloads.
	for _, off := range []int{0, 8, 12, 16, 24, len(good) / 3, 2 * len(good) / 3, len(good) - 1} {
		flipped := append([]byte(nil), good...)
		flipped[off] ^= 0x40
		f.Add(flipped)
	}
	// A future format version with a plausible body.
	futur := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(futur[8:], snapshot.Version+1)
	f.Add(futur)
	// A section claiming more payload than the file holds.
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(huge[16:], 1<<40)
	f.Add(huge)

	typed := []error{
		snapshot.ErrBadMagic, snapshot.ErrVersion, snapshot.ErrTruncated,
		snapshot.ErrCorrupt, snapshot.ErrNotQuiescent,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		k, p := bootFuzzKernel()
		defer p.Shutdown()
		resumed, err := snapshot.Resume(bytes.NewReader(data), k)
		if err != nil {
			for _, te := range typed {
				if errors.Is(err, te) {
					return
				}
			}
			t.Fatalf("Resume returned an error outside the typed set: %v", err)
		}
		// Accepted input: finishing the resume and re-saving must not
		// panic either (byte-idempotence of genuine snapshots is pinned
		// separately by the runner's TestSnapshotIdempotent).
		if err := snapshot.Save(&bytes.Buffer{}, k, resumed.User); err != nil {
			t.Fatalf("re-save of an accepted snapshot failed: %v", err)
		}
		if err := resumed.Finish(); err != nil {
			t.Fatalf("Finish of an accepted snapshot failed: %v", err)
		}
	})
}

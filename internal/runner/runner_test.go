package runner

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/telemetry"
	"prosper/internal/workload"
)

// testSpec is a small but non-trivial run: a seeded random writer with
// Prosper stack persistence and periodic checkpoints, so distinct seeds
// yield distinct dirty footprints.
func testSpec(name string, seed uint64) Spec {
	return Spec{
		Name: name,
		Prog: func() workload.Program {
			return workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 128})
		},
		StackMech:   persist.NewProsper(persist.ProsperConfig{}),
		Checkpoint:  true,
		Interval:    50 * sim.Microsecond,
		Checkpoints: 2,
		Seed:        seed,
	}
}

func TestExecutorDeterministicAcrossWorkerCounts(t *testing.T) {
	plan := Plan{Name: "det"}
	for i := 0; i < 4; i++ {
		plan.Specs = append(plan.Specs, testSpec("stream", uint64(i+1)))
	}
	serial, err := (&Executor{Workers: 1}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Executor{Workers: 4}).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("spec %d: workers=1 and workers=4 disagree:\n%+v\n%+v", i, serial[i], parallel[i])
		}
	}
	// Distinct seeds must actually produce distinct runs, or the
	// comparison above proves nothing.
	if serial[0] == serial[1] {
		t.Fatal("seeds 1 and 2 produced identical stats; test workloads degenerate")
	}
}

func TestExecutorResultsInPlanOrder(t *testing.T) {
	plan := Plan{Name: "order"}
	names := []string{"a", "b", "c", "d", "e"}
	for i, n := range names {
		plan.Specs = append(plan.Specs, testSpec(n, uint64(i+1)))
	}
	var done atomic.Int32
	ex := &Executor{Workers: 3, OnDone: func(r Result) {
		if r.Err != nil {
			t.Errorf("spec %d: %v", r.Index, r.Err)
		}
		done.Add(1)
	}}
	res := ex.Execute(plan)
	if int(done.Load()) != len(names) {
		t.Fatalf("OnDone fired %d times, want %d", done.Load(), len(names))
	}
	for i, r := range res {
		if r.Index != i || r.Stats.Name != names[i] {
			t.Fatalf("result %d out of plan order: index=%d name=%q", i, r.Index, r.Stats.Name)
		}
		if r.Wall <= 0 {
			t.Fatalf("result %d: no wall time recorded", i)
		}
	}
}

func TestExecutorRecoversWorkerPanics(t *testing.T) {
	plan := Plan{
		Name: "panics",
		Specs: []Spec{
			testSpec("ok-before", 1),
			{Name: "boom", Label: "boom/nil-prog"}, // nil Prog panics in Run
			testSpec("ok-after", 2),
		},
	}
	res := (&Executor{Workers: 2}).Execute(plan)
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("healthy specs errored: %v / %v", res[0].Err, res[2].Err)
	}
	if res[1].Err == nil {
		t.Fatal("panicking spec reported no error")
	}
	for _, want := range []string{"boom/nil-prog", "panics", "spec 1"} {
		if !strings.Contains(res[1].Err.Error(), want) {
			t.Fatalf("panic error %q does not mention %q", res[1].Err, want)
		}
	}
	if _, err := (&Executor{Workers: 2}).Run(plan); err == nil {
		t.Fatal("Run did not surface the panic as an error")
	}
}

func TestForEachRunsAllAndRepanics(t *testing.T) {
	const n = 17
	var hits [n]atomic.Int32
	ForEach(4, n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
		}
	}

	var mu sync.Mutex
	ran := map[int]bool{}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ForEach swallowed the panic")
		}
		if !strings.Contains(r.(string), "iteration 3") {
			t.Fatalf("panic %q does not name iteration 3", r)
		}
		// The panic must not have cancelled the other iterations.
		for i := 0; i < 6; i++ {
			if i != 3 && !ran[i] {
				t.Fatalf("iteration %d never ran", i)
			}
		}
	}()
	ForEach(2, 6, func(i int) {
		if i == 3 {
			panic("kaboom")
		}
		mu.Lock()
		ran[i] = true
		mu.Unlock()
	})
}

// TestEngineDrains pins the contract the executor relies on: a spec's
// private engine processes every event scheduled inside its window, and
// sim.Engine.AssertDrained distinguishes a wound-down machine from one
// with abandoned work.
func TestEngineDrains(t *testing.T) {
	eng := sim.NewEngine()
	fired := 0
	for i := 0; i < 10; i++ {
		eng.Schedule(sim.CompOther, sim.Time(i)*sim.Microsecond, func() { fired++ })
	}
	eng.Run()
	if fired != 10 {
		t.Fatalf("fired %d of 10", fired)
	}
	if err := eng.AssertDrained(); err != nil {
		t.Fatalf("drained engine reported pending work: %v", err)
	}
	eng.Schedule(sim.CompOther, sim.Microsecond, func() {})
	if err := eng.AssertDrained(); err == nil {
		t.Fatal("AssertDrained missed a pending event")
	}
}

// tracedPlanBytes runs the plan with fresh tracers allocated in plan
// order on the given worker count and returns the serialized trace and
// metrics bytes.
func tracedPlanBytes(t *testing.T, workers int) (trace, metrics []byte) {
	t.Helper()
	tr := telemetry.NewTrace()
	plan := Plan{Name: "traced"}
	for i := 0; i < 4; i++ {
		sp := testSpec("stream", uint64(i+1))
		sp.Label = fmt.Sprintf("traced/seed%d", i+1)
		sp.Tracer = tr.NewTracer(sp.DisplayLabel())
		sp.SampleEvery = 20 * sim.Microsecond
		plan.Specs = append(plan.Specs, sp)
	}
	if _, err := (&Executor{Workers: workers}).Run(plan); err != nil {
		t.Fatal(err)
	}
	var tb, mb bytes.Buffer
	if err := tr.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteMetricsJSONL(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestTraceDeterministicAcrossWorkerCounts is the -parallel half of the
// telemetry determinism guarantee: serialized trace and metrics bytes
// must be identical at 1 and 4 workers, because lanes are allocated in
// plan order before execution and each run only touches its own tracer.
func TestTraceDeterministicAcrossWorkerCounts(t *testing.T) {
	t1, m1 := tracedPlanBytes(t, 1)
	t4, m4 := tracedPlanBytes(t, 4)
	if !bytes.Equal(t1, t4) {
		t.Fatalf("trace bytes differ between workers=1 (%d B) and workers=4 (%d B)", len(t1), len(t4))
	}
	if !bytes.Equal(m1, m4) {
		t.Fatalf("metrics bytes differ between workers=1 (%d B) and workers=4 (%d B)", len(m1), len(m4))
	}
	if len(t1) == 0 || !bytes.Contains(t1, []byte(`"ph":"X"`)) {
		t.Fatal("trace suspiciously empty; determinism check proves nothing")
	}
	if !bytes.Contains(m1, []byte(`"metrics":{`)) {
		t.Fatal("metrics stream empty; determinism check proves nothing")
	}
}

// TestSpecProfileCounts pins the Spec.Profile contract: the
// per-component event counts cover every dispatched event (they sum
// exactly to EventsFired), they are identical across repeated runs, and
// an unprofiled spec leaves them zero.
func TestSpecProfileCounts(t *testing.T) {
	sp := testSpec("profiled", 1)
	sp.Profile = true
	a := sp.Run()
	var sum uint64
	for _, n := range a.EventCounts {
		sum += n
	}
	if sum == 0 {
		t.Fatal("profiled run recorded no events")
	}
	if sum != a.EventsFired {
		t.Fatalf("EventCounts sum to %d, want EventsFired = %d", sum, a.EventsFired)
	}
	b := sp.Run()
	if a.EventCounts != b.EventCounts {
		t.Fatalf("EventCounts differ across identical runs:\n%v\n--- vs ---\n%v", a.EventCounts, b.EventCounts)
	}

	sp.Profile = false
	c := sp.Run()
	if c.EventCounts != ([sim.NumComponents]uint64{}) {
		t.Fatalf("unprofiled run populated EventCounts: %v", c.EventCounts)
	}
	if c.EventsFired != a.EventsFired {
		t.Fatalf("profiling changed EventsFired: %d vs %d", c.EventsFired, a.EventsFired)
	}
}

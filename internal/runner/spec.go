// Package runner turns experiment configurations into declarative run
// plans and executes them on a bounded worker pool.
//
// A Spec is one independent simulation run: the workload, the
// persistence mechanisms under test, the machine shape, and the scaled
// measurement window. A Plan is a named list of Specs; an Executor fans
// a plan's specs out across workers (default GOMAXPROCS), each worker
// building its own kernel and machine so nothing is shared between
// runs. Results come back as RunStats in plan order, so rendered output
// is byte-identical regardless of the worker count: determinism is
// per-run (every spec owns a private sim.Engine), and the plan order —
// not completion order — defines the output order.
package runner

import (
	"prosper/internal/hostprof"
	"prosper/internal/journey"
	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/prosper"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/telemetry"
	"prosper/internal/workload"
)

// Spec describes one independent measured run of the standard
// single-process workload. It is a value type: copying a Spec is cheap
// and a Spec never owns live simulation state.
type Spec struct {
	// Name is the benchmark/process name, recorded as RunStats.Name.
	Name string
	// Label is the display name used by progress reporting; empty means
	// Name. Plans give each spec a distinct label (e.g. bench/mechanism)
	// while several specs share one benchmark Name.
	Label string
	// Prog constructs one workload program per thread. It is called from
	// the executor's worker goroutine, so it must not touch shared
	// mutable state (all constructors in internal/workload are pure).
	Prog func() workload.Program
	// StackMech/HeapMech are the persistence mechanisms under test; nil
	// means none (the no-persistence baseline).
	StackMech persist.Factory
	HeapMech  persist.Factory
	// Checkpoint enables periodic checkpoints every Interval.
	Checkpoint bool
	Cores      int
	Threads    int
	// Tracker configures the per-core Prosper dirty trackers (the Fig 13
	// HWM/LWM sweeps and the allocation-policy ablation); the zero value
	// is the default configuration.
	Tracker prosper.Config

	// Interval is the consistency/checkpoint interval; Checkpoints is
	// how many intervals the measured window covers; Warmup runs before
	// measurement starts.
	Interval    sim.Time
	Checkpoints int
	Warmup      sim.Time

	// StackReserve and HeapSize size the process segments.
	StackReserve uint64
	HeapSize     uint64
	Seed         uint64

	// Tracer, when non-nil, records this run's sim-time telemetry (one
	// Perfetto process lane per run: warmup/measured spans, checkpoint
	// epochs, tracker events, occupancy samples). Every spec needs its
	// own Tracer — runs never share one — typically allocated in plan
	// order from a telemetry.Trace so serialized output is identical for
	// any worker count.
	Tracer *telemetry.Tracer
	// SampleEvery is the telemetry sampling cadence in cycles
	// (0: the kernel's 10 µs default).
	SampleEvery sim.Time

	// Profile enables per-component event-owner accounting on the run's
	// engine (sim.Profile with the hostprof clock). The resulting
	// EventCounts are deterministic; EventNanos is host wall time and
	// informational. Off by default: the unprofiled dispatch path is the
	// one the allocation ratchet pins.
	Profile bool

	// Journey, when non-nil, samples end-to-end access journeys during
	// the run (internal/journey). Like Tracer, every spec needs its own
	// Recorder, allocated in plan order from a journey.Journal so the
	// serialized journal is identical for any worker count. When both
	// Journey and Tracer are set, the finished journeys are also exported
	// onto the tracer as per-stage span lanes with flow links.
	Journey *journey.Recorder
}

// DisplayLabel returns Label, falling back to Name.
func (sp Spec) DisplayLabel() string {
	if sp.Label != "" {
		return sp.Label
	}
	return sp.Name
}

// withDefaults fills zero fields with the same standard scaled-down
// configuration experiments.DefaultScale uses, so a bare Spec is
// runnable in tests. (Warmup deliberately has no default: zero warmup
// is a valid configuration.)
func (sp Spec) withDefaults() Spec {
	if sp.Cores <= 0 {
		sp.Cores = 1
	}
	if sp.Threads <= 0 {
		sp.Threads = 1
	}
	if sp.Interval == 0 {
		sp.Interval = 200 * sim.Microsecond
	}
	if sp.Checkpoints == 0 {
		sp.Checkpoints = 10
	}
	if sp.StackReserve == 0 {
		sp.StackReserve = 1 << 20
	}
	if sp.HeapSize == 0 {
		sp.HeapSize = 64 << 20
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	return sp
}

// RunStats is the outcome of one measured run.
type RunStats struct {
	Name      string
	Mechanism string

	UserOps    uint64
	UserCycles uint64

	Checkpoints     uint64
	CheckpointBytes uint64
	StackCkptBytes  uint64
	StackCkptCycles uint64
	StackCkptMeta   uint64
	HeapCkptBytes   uint64
	HeapCkptCycles  uint64

	TrackerBitmapLoads  uint64
	TrackerBitmapStores uint64
	TrackerSOIs         uint64
	TrackerUpdates      uint64
	TrackerWritebacks   uint64

	CtxSwitches  uint64
	CtxSwitchIn  uint64
	CtxSwitchOut uint64

	WriteFaults uint64 // write-permission faults (WriteProtect tracking)

	// Checkpoint-pause decomposition over the measured window: the
	// stop-the-world pause distribution (log2-bucketed quantiles, so the
	// values are integral and platform-independent) and the per-cause
	// stall attribution, whose entries sum exactly to PauseTotal.
	PauseCount  uint64
	PauseTotal  uint64
	PauseMax    uint64
	PauseP50    uint64
	PauseP95    uint64
	PauseP99    uint64
	PauseCauses [persist.NumCauses]uint64

	Elapsed sim.Time // measured window duration (warmup excluded)
	SimEnd  sim.Time // absolute simulated time when the run finished

	// EventsFired counts simulation events the engine dispatched over the
	// whole run (warmup included). It is deterministic for a given binary
	// but NOT part of the behavioral contract: optimizations that batch or
	// elide events legitimately change it without changing any simulated
	// cycle, so it belongs in throughput tracking, never in the
	// deterministic compare set.
	EventsFired uint64

	// EventCounts/EventNanos decompose the run's dispatched events by
	// owning component (only populated when Spec.Profile is set).
	// EventCounts is deterministic and sums exactly to EventsFired;
	// EventNanos is batched host wall time, informational only.
	EventCounts [sim.NumComponents]uint64
	EventNanos  [sim.NumComponents]int64
}

// IPC returns the user-mode instructions-per-cycle of the run.
func (r RunStats) IPC() float64 {
	if r.UserCycles == 0 {
		return 0
	}
	return float64(r.UserOps) / float64(r.UserCycles)
}

// MeanStackCkptBytes returns the average per-checkpoint stack copy size.
func (r RunStats) MeanStackCkptBytes() float64 {
	if r.Checkpoints == 0 {
		return 0
	}
	return float64(r.StackCkptBytes) / float64(r.Checkpoints)
}

// MeanStackCkptCycles returns the average stack checkpoint duration.
func (r RunStats) MeanStackCkptCycles() float64 {
	if r.Checkpoints == 0 {
		return 0
	}
	return float64(r.StackCkptCycles) / float64(r.Checkpoints)
}

// boot builds the spec's private kernel and machine and, when requested,
// enables event profiling on the fresh engine.
func (sp Spec) boot() (*kernel.Kernel, *sim.Profile) {
	k := kernel.New(kernel.Config{
		Machine:     machine.Config{Cores: sp.Cores},
		Quantum:     sp.Interval / 2,
		TrackerCfg:  sp.Tracker,
		Tracer:      sp.Tracer,
		SampleEvery: sp.SampleEvery,
		Journey:     sp.Journey,
	})
	var prof *sim.Profile
	if sp.Profile {
		// kernel.New schedules events but fires none, so enabling here
		// keeps the per-component counts summing exactly to Eng.Fired().
		prof = k.Eng.EnableProfiling(hostprof.Nanotime)
	}
	return k, prof
}

// spawn creates the spec's measured process on k. The spawn sequence is
// fully determined by the spec, which is what lets a snapshot resume
// into a freshly booted kernel: boot+spawn reproduce the identical
// object graph, and restoration then overwrites its state.
func (sp Spec) spawn(k *kernel.Kernel) *kernel.Process {
	pc := kernel.ProcessConfig{
		Name:         sp.Name,
		StackMech:    sp.StackMech,
		HeapMech:     sp.HeapMech,
		StackReserve: sp.StackReserve,
		HeapSize:     sp.HeapSize,
		PremapHeap:   true, // measure warmed-up steady state (paper warms 1 min)
		Seed:         sp.Seed,
	}
	if sp.Checkpoint {
		pc.CheckpointInterval = sp.Interval
	}
	progs := make([]workload.Program, sp.Threads)
	for i := range progs {
		progs[i] = sp.Prog()
	}
	return k.Spawn(pc, progs...)
}

// baselines captures every counter the measured window subtracts from,
// taken at warmup end. It rides inside snapshots (as the opaque user
// payload) so a resumed run computes the identical deltas.
type baselines struct {
	opsBase, cyclesBase            uint64
	ckptBase, ckptBytesBase        uint64
	stackBytesBase                 uint64
	stackCyclesBase, stackMetaBase uint64
	heapBytesBase, heapCyclesBase  uint64
	tr                             trackerSnap
	wfBase                         uint64
	start                          sim.Time
}

func captureBaselines(k *kernel.Kernel, p *kernel.Process) baselines {
	var b baselines
	for _, t := range p.Threads {
		b.opsBase += t.UserOps
		b.cyclesBase += t.UserCycles
	}
	b.ckptBase = p.CheckpointCount
	b.ckptBytesBase = p.CheckpointBytes
	b.stackBytesBase = p.Counters.Get("proc.stack_ckpt_bytes")
	b.stackCyclesBase = p.Counters.Get("proc.stack_ckpt_cycles")
	b.stackMetaBase = p.Counters.Get("proc.stack_ckpt_meta")
	b.heapBytesBase = p.Counters.Get("proc.heap_ckpt_bytes")
	b.heapCyclesBase = p.Counters.Get("proc.heap_ckpt_cycles")
	b.tr = trackerSnapshot(k)
	b.wfBase = uint64(p.AS.WriteFaults())
	b.start = k.Eng.Now()
	return b
}

// collect computes the measured window's RunStats as deltas from base.
func (sp Spec) collect(k *kernel.Kernel, p *kernel.Process, prof *sim.Profile, base baselines) RunStats {
	res := RunStats{Name: sp.Name, Elapsed: k.Eng.Now() - base.start}
	for _, t := range p.Threads {
		res.UserOps += t.UserOps
		res.UserCycles += t.UserCycles
	}
	res.UserOps -= base.opsBase
	res.UserCycles -= base.cyclesBase
	res.Checkpoints = p.CheckpointCount - base.ckptBase
	res.CheckpointBytes = p.CheckpointBytes - base.ckptBytesBase
	res.StackCkptBytes = p.Counters.Get("proc.stack_ckpt_bytes") - base.stackBytesBase
	res.StackCkptCycles = p.Counters.Get("proc.stack_ckpt_cycles") - base.stackCyclesBase
	res.StackCkptMeta = p.Counters.Get("proc.stack_ckpt_meta") - base.stackMetaBase
	res.HeapCkptBytes = p.Counters.Get("proc.heap_ckpt_bytes") - base.heapBytesBase
	res.HeapCkptCycles = p.Counters.Get("proc.heap_ckpt_cycles") - base.heapCyclesBase
	trEnd := trackerSnapshot(k)
	res.TrackerBitmapLoads = trEnd.loads - base.tr.loads
	res.TrackerBitmapStores = trEnd.stores - base.tr.stores
	res.TrackerSOIs = trEnd.sois - base.tr.sois
	res.TrackerWritebacks = trEnd.writebacks - base.tr.writebacks
	res.TrackerUpdates = res.TrackerSOIs // one table update per SOI granule (approx.)
	res.WriteFaults = uint64(p.AS.WriteFaults()) - base.wfBase
	// Pause decomposition: only epochs committed inside the measured
	// window (sequence numbers past the warmup-end count).
	pauseHist := stats.NewHistogram()
	for _, ep := range p.EpochPauses {
		if ep.Seq <= base.ckptBase {
			continue
		}
		pauseHist.Observe(uint64(ep.Pause))
		for c, v := range ep.Causes {
			res.PauseCauses[c] += v
		}
	}
	res.PauseCount = pauseHist.Count()
	res.PauseTotal = pauseHist.Sum()
	res.PauseMax = pauseHist.Max()
	res.PauseP50 = pauseHist.Quantile(0.50)
	res.PauseP95 = pauseHist.Quantile(0.95)
	res.PauseP99 = pauseHist.Quantile(0.99)
	res.CtxSwitches = k.Counters.Get("kernel.context_switches")
	res.CtxSwitchIn = k.Counters.Get("kernel.ctxswitch_in_cycles")
	res.CtxSwitchOut = k.Counters.Get("kernel.ctxswitch_out_cycles")
	res.SimEnd = k.Eng.Now()
	res.EventsFired = k.Eng.Fired()
	if prof != nil {
		snap := prof.Snapshot()
		res.EventCounts = snap.Counts
		res.EventNanos = snap.Nanos
	}
	return res
}

// Run executes the spec on a freshly built kernel and machine and
// collects stats over the measured window. Every call builds a private
// sim.Engine, so concurrent Runs of distinct Spec values never share
// state and each run's results depend only on the spec itself.
func (sp Spec) Run() RunStats {
	sp = sp.withDefaults()
	k, prof := sp.boot()
	runTrack := sp.Tracer.Track("run")
	runSpan := sp.Tracer.Begin(runTrack, "run:"+sp.DisplayLabel())
	p := sp.spawn(k)
	defer p.Shutdown()

	warmupSpan := sp.Tracer.Begin(runTrack, "warmup")
	k.RunFor(sp.Warmup)
	warmupSpan.End()
	base := captureBaselines(k, p)

	measured := sp.Tracer.Begin(runTrack, "measured")
	k.RunFor(sp.Interval * sim.Time(sp.Checkpoints))
	measured.End()

	res := sp.collect(k, p, prof, base)
	runSpan.End(
		telemetry.U("user_ops", res.UserOps),
		telemetry.U("checkpoints", res.Checkpoints),
		telemetry.U("checkpoint_bytes", res.CheckpointBytes),
	)
	journey.ExportTrace(sp.Journey, sp.Tracer)
	return res
}

type trackerSnap struct{ loads, stores, sois, writebacks uint64 }

func trackerSnapshot(k *kernel.Kernel) trackerSnap {
	var out trackerSnap
	for _, tr := range k.Trackers {
		out.loads += tr.Counters.Get("prosper.bitmap_loads")
		out.stores += tr.Counters.Get("prosper.bitmap_stores")
		out.sois += tr.Counters.Get("prosper.sois")
		out.writebacks += tr.Counters.Get("prosper.hwm_writebacks") +
			tr.Counters.Get("prosper.evictions") + tr.Counters.Get("prosper.flushes")
	}
	return out
}

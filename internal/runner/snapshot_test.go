package runner

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"prosper/internal/journey"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/snapshot"
	"prosper/internal/workload"
)

// snapSpec is the quick differential-resume suite: one spec per
// persistence mechanism, small enough to run every mechanism in seconds
// but checkpointing often enough that a mid-window snapshot interrupts
// real in-flight apply traffic.
func snapSpec(mech string, seed uint64) Spec {
	sp := Spec{
		Name: "snap-" + mech,
		Prog: func() workload.Program {
			return workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 128})
		},
		Checkpoint:  true,
		Interval:    50 * sim.Microsecond,
		Checkpoints: 4,
		Seed:        seed,
	}
	switch mech {
	case "prosper":
		sp.StackMech = persist.NewProsper(persist.ProsperConfig{})
	case "dirtybit":
		sp.StackMech = persist.NewDirtybit(persist.DirtybitConfig{})
	case "ssp":
		sp.StackMech = persist.NewSSP(persist.SSPConfig{})
	case "romulus":
		// Romulus replays its log uncoalesced, so one checkpoint epoch
		// takes ~5 ms of sim time regardless of the trigger interval;
		// the window must span several epochs for a mid-window commit
		// to exist at all.
		sp.StackMech = persist.NewRomulus()
		sp.Interval = 150 * sim.Microsecond
		sp.Checkpoints = 150
	default:
		panic("unknown mechanism " + mech)
	}
	return sp
}

var snapMechs = []string{"prosper", "dirtybit", "ssp", "romulus"}

// TestResumeByteIdentical is the resume gate: for every mechanism, a run
// that snapshots mid-window and keeps going must be reproduced
// byte-for-byte by a resume of that snapshot in a fresh kernel — the
// RunStats struct AND the full DumpStats text (every counter, histogram,
// and the engine's cycle/event clock).
func TestResumeByteIdentical(t *testing.T) {
	for _, mech := range snapMechs {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			t.Parallel()
			sp := snapSpec(mech, 1)
			var snap bytes.Buffer
			ref, krun, err := sp.runSnapshot(&snap, 2)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Len() == 0 {
				t.Fatal("no snapshot written")
			}
			var refDump bytes.Buffer
			krun.DumpStats(&refDump)

			got, kres, err := sp.resume(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("resumed RunStats differ from reference:\nref: %+v\ngot: %+v", ref, got)
			}
			var gotDump bytes.Buffer
			kres.DumpStats(&gotDump)
			if !bytes.Equal(refDump.Bytes(), gotDump.Bytes()) {
				t.Fatalf("DumpStats differ after resume:\n--- reference ---\n%s\n--- resumed ---\n%s",
					diffHead(refDump.String(), gotDump.String()), "")
			}
		})
	}
}

// diffHead returns the first differing line pair of two texts.
func diffHead(a, b string) string {
	la, lb := bytes.Split([]byte(a), []byte("\n")), bytes.Split([]byte(b), []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("line %d:\n  ref: %s\n  got: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("texts diverge in length: %d vs %d lines", len(la), len(lb))
}

// TestSnapshotIdempotent pins save/resume/save stability: resuming a
// snapshot and immediately re-saving (before the commit epilogue runs)
// must reproduce the snapshot byte-identically, across several seeds.
// The property is what makes snapshot chains trustworthy: resume loses
// nothing, not even encoding details.
func TestSnapshotIdempotent(t *testing.T) {
	for _, seed := range []uint64{1, 2, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sp := snapSpec("prosper", seed).withDefaults()
			var first bytes.Buffer
			if _, _, err := sp.runSnapshot(&first, 2); err != nil {
				t.Fatal(err)
			}

			// Resume, then re-save from inside the re-entered commit hook
			// without running a single event in between.
			k, _ := sp.boot()
			p := sp.spawn(k)
			defer p.Shutdown()
			resumed, err := snapshot.Resume(bytes.NewReader(first.Bytes()), k)
			if err != nil {
				t.Fatal(err)
			}
			var second bytes.Buffer
			if err := snapshot.Save(&second, k, resumed.User); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("save→resume→save is not byte-stable: %d vs %d bytes",
					first.Len(), second.Len())
			}
		})
	}
}

// TestResumeDeterministicAcrossWorkerCounts runs the resume gate through
// the executor at 1 and 4 workers: snapshot-resumed runs must stay
// deterministic under the same parallel execution the experiment plans
// use.
func TestResumeDeterministicAcrossWorkerCounts(t *testing.T) {
	snaps := make([]*bytes.Buffer, len(snapMechs))
	plan := Plan{Name: "resume-parallel"}
	for i, mech := range snapMechs {
		snaps[i] = &bytes.Buffer{}
		plan.Specs = append(plan.Specs, snapSpec(mech, 3))
	}
	for i := range plan.Specs {
		if _, err := plan.Specs[i].RunSnapshot(snaps[i], 2); err != nil {
			t.Fatal(err)
		}
	}
	resumeAll := func(workers int) []RunStats {
		out := make([]RunStats, len(plan.Specs))
		errs := make([]error, len(plan.Specs))
		ForEach(workers, len(plan.Specs), func(i int) {
			out[i], errs[i] = plan.Specs[i].ResumeRun(bytes.NewReader(snaps[i].Bytes()))
		})
		for i, err := range errs {
			if err != nil {
				t.Errorf("spec %d: %v", i, err)
			}
		}
		return out
	}
	serial := resumeAll(1)
	parallel := resumeAll(4)
	if t.Failed() {
		t.FailNow()
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("spec %d: resumed stats differ between workers=1 and workers=4", i)
		}
	}
}

// TestSnapshotRejectsUnsupportedSpecs pins the typed-error contract for
// host-side observers and mis-use.
func TestSnapshotRejectsUnsupportedSpecs(t *testing.T) {
	sp := snapSpec("prosper", 1)
	sp.Profile = true
	if _, err := sp.RunSnapshot(&bytes.Buffer{}, 1); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("profiled spec: got %v, want ErrSnapshotUnsupported", err)
	}
	sp.Profile = false
	sp.Journey = journey.NewRecorder("snap", 64, 1)
	if _, err := sp.RunSnapshot(&bytes.Buffer{}, 1); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("journey-enabled spec: got %v, want ErrSnapshotUnsupported", err)
	}
	if _, err := sp.ResumeRun(&bytes.Buffer{}); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("journey-enabled resume: got %v, want ErrSnapshotUnsupported", err)
	}
	sp.Journey = nil
	sp.Checkpoint = false
	if _, err := sp.RunSnapshot(&bytes.Buffer{}, 1); !errors.Is(err, snapshot.ErrNotQuiescent) {
		t.Fatalf("checkpoint-less spec: got %v, want ErrNotQuiescent", err)
	}

	// A commit count past the window's end cannot be satisfied.
	sp = snapSpec("prosper", 1)
	if _, err := sp.RunSnapshot(&bytes.Buffer{}, 1000); !errors.Is(err, ErrNoCommit) {
		t.Fatalf("unreachable commit: got %v, want ErrNoCommit", err)
	}

	// Resuming with a different spec is refused by fingerprint.
	sp = snapSpec("prosper", 1)
	var snap bytes.Buffer
	if _, err := sp.RunSnapshot(&snap, 2); err != nil {
		t.Fatal(err)
	}
	other := snapSpec("prosper", 1)
	other.Seed = 99
	if _, err := other.ResumeRun(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("wrong-spec resume: got %v, want ErrSpecMismatch", err)
	}
}

package runner

import (
	"errors"
	"fmt"
	"io"

	"prosper/internal/kernel"
	"prosper/internal/sim"
	"prosper/internal/snapbuf"
	"prosper/internal/snapshot"
)

// ErrSnapshotUnsupported reports a spec whose host-side observers cannot
// cross a snapshot: telemetry tracers, event profilers, and journey
// recorders hold host state (open spans, wall-clock accumulators,
// in-flight journeys keyed by live record identity) no snapshot can
// carry. This is the documented exclusion of journey state from the
// snapshot format (DESIGN.md §15): journey-enabled specs are rejected
// here instead of silently dropping trace state across a resume.
var ErrSnapshotUnsupported = errors.New(
	"runner: telemetry tracing, event profiling, and journey recording cannot cross a snapshot")

// ErrSpecMismatch reports a resume attempted with a spec that differs
// from the one that saved the snapshot.
var ErrSpecMismatch = errors.New("runner: snapshot was taken by a different spec")

// ErrNoCommit reports a RunSnapshot whose measured window ended before
// the requested checkpoint commit.
var ErrNoCommit = errors.New("runner: measured window ended before the requested commit")

// fingerprint captures everything that determines a run's trajectory.
// Mechanism factories are functions and cannot be compared, so the
// fingerprint records the booted mechanisms' names instead.
func (sp Spec) fingerprint(p *kernel.Process) string {
	return fmt.Sprintf("name=%s stack=%s heap=%s cores=%d threads=%d ckpt=%v interval=%d checkpoints=%d warmup=%d stack_reserve=%d heap=%d seed=%d tracker=%+v",
		sp.Name, p.StackMechName(), p.HeapMechName(), sp.Cores, sp.Threads,
		sp.Checkpoint, sp.Interval, sp.Checkpoints, sp.Warmup,
		sp.StackReserve, sp.HeapSize, sp.Seed, sp.Tracker)
}

// encodeUser packs the fingerprint and warmup-end baselines into the
// snapshot's opaque user payload.
func encodeUser(fp string, b baselines) []byte {
	w := snapbuf.NewWriter()
	w.String(fp)
	w.U64(b.opsBase)
	w.U64(b.cyclesBase)
	w.U64(b.ckptBase)
	w.U64(b.ckptBytesBase)
	w.U64(b.stackBytesBase)
	w.U64(b.stackCyclesBase)
	w.U64(b.stackMetaBase)
	w.U64(b.heapBytesBase)
	w.U64(b.heapCyclesBase)
	w.U64(b.tr.loads)
	w.U64(b.tr.stores)
	w.U64(b.tr.sois)
	w.U64(b.tr.writebacks)
	w.U64(b.wfBase)
	w.I64(b.start)
	return w.Bytes()
}

func decodeUser(data []byte, wantFP string) (baselines, error) {
	r := snapbuf.NewReader(data)
	fp := r.String()
	var b baselines
	b.opsBase = r.U64()
	b.cyclesBase = r.U64()
	b.ckptBase = r.U64()
	b.ckptBytesBase = r.U64()
	b.stackBytesBase = r.U64()
	b.stackCyclesBase = r.U64()
	b.stackMetaBase = r.U64()
	b.heapBytesBase = r.U64()
	b.heapCyclesBase = r.U64()
	b.tr.loads = r.U64()
	b.tr.stores = r.U64()
	b.tr.sois = r.U64()
	b.tr.writebacks = r.U64()
	b.wfBase = r.U64()
	b.start = sim.Time(r.I64())
	if r.Err() != nil {
		return baselines{}, fmt.Errorf("%w: user payload: %w", snapshot.ErrCorrupt, r.Err())
	}
	if fp != wantFP {
		return baselines{}, fmt.Errorf("%w:\n  snapshot: %s\n  resume:   %s", ErrSpecMismatch, fp, wantFP)
	}
	return b, nil
}

// RunSnapshot executes the spec like Run, additionally saving a full
// machine snapshot to w at the snapAt-th checkpoint commit of the
// measured window (snapAt counts from 1). Saving is a pure read: the
// run continues to completion and returns its normal RunStats, which a
// ResumeRun of the written snapshot reproduces byte-identically.
func (sp Spec) RunSnapshot(w io.Writer, snapAt int) (RunStats, error) {
	res, _, err := sp.runSnapshot(w, snapAt)
	return res, err
}

// runSnapshot is RunSnapshot, additionally returning the live kernel
// for callers that inspect post-run state (tests dump stats from it).
func (sp Spec) runSnapshot(w io.Writer, snapAt int) (RunStats, *kernel.Kernel, error) {
	sp = sp.withDefaults()
	if sp.Tracer.Enabled() || sp.Profile || sp.Journey != nil {
		return RunStats{}, nil, ErrSnapshotUnsupported
	}
	if !sp.Checkpoint {
		return RunStats{}, nil, fmt.Errorf("%w: snapshots are taken at checkpoint commits, and the spec's checkpoints are off", snapshot.ErrNotQuiescent)
	}
	if snapAt < 1 {
		snapAt = 1
	}
	k, _ := sp.boot()
	p := sp.spawn(k)
	defer p.Shutdown()

	k.RunFor(sp.Warmup)
	base := captureBaselines(k, p)

	var saveErr error
	saved := false
	commits := 0
	p.CommitHook = func(proc *kernel.Process) {
		if saved || saveErr != nil {
			return
		}
		commits++
		if commits < snapAt {
			return
		}
		saveErr = snapshot.Save(w, k, encodeUser(sp.fingerprint(proc), base))
		saved = true
	}
	k.RunFor(sp.Interval * sim.Time(sp.Checkpoints))
	if saveErr != nil {
		return RunStats{}, nil, saveErr
	}
	if !saved {
		return RunStats{}, nil, fmt.Errorf("%w: wanted commit %d, saw %d", ErrNoCommit, snapAt, commits)
	}
	return sp.collect(k, p, nil, base), k, nil
}

// ResumeRun boots a fresh kernel for the spec, restores the snapshot
// into it, and runs the remainder of the measured window. The spec must
// be the one that saved the snapshot (verified by fingerprint). The
// returned RunStats are byte-identical to those of the run that saved.
func (sp Spec) ResumeRun(r io.Reader) (RunStats, error) {
	res, _, err := sp.resume(r)
	if err != nil {
		return RunStats{}, err
	}
	return res, nil
}

// resume is ResumeRun, additionally returning the live kernel for
// callers that inspect post-run state (tests dump stats from it).
func (sp Spec) resume(r io.Reader) (RunStats, *kernel.Kernel, error) {
	sp = sp.withDefaults()
	if sp.Tracer.Enabled() || sp.Profile || sp.Journey != nil {
		return RunStats{}, nil, ErrSnapshotUnsupported
	}
	k, _ := sp.boot()
	p := sp.spawn(k)
	defer p.Shutdown()

	// Boot consumed the same engine sequence numbers and storage writes
	// as the original boot; restoration below overwrites all of it. The
	// warmup is NOT re-run — the snapshot carries its end state.
	resumed, err := snapshot.Resume(r, k)
	if err != nil {
		return RunStats{}, nil, err
	}
	base, err := decodeUser(resumed.User, sp.fingerprint(p))
	if err != nil {
		return RunStats{}, nil, err
	}
	if err := resumed.Finish(); err != nil {
		return RunStats{}, nil, err
	}
	k.Eng.RunUntil(base.start + sp.Interval*sim.Time(sp.Checkpoints))
	return sp.collect(k, p, nil, base), k, nil
}

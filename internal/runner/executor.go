package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Plan is a named list of run specs. The order of Specs defines the
// order of results, independent of execution interleaving.
type Plan struct {
	Name  string
	Specs []Spec
}

// Result is the outcome of one spec of a plan.
type Result struct {
	Index int // position in the plan
	Spec  Spec
	Stats RunStats
	Wall  time.Duration // real time the run took
	Err   error         // non-nil if the run panicked
}

// Executor fans a plan's specs out over a bounded worker pool. The zero
// value is ready to use and runs GOMAXPROCS specs at a time.
type Executor struct {
	// Workers bounds the number of concurrently executing specs;
	// values <= 0 mean runtime.GOMAXPROCS(0).
	Workers int
	// OnDone, when non-nil, is invoked as each spec completes — in
	// completion order, not plan order, and from worker goroutines, so
	// it must be safe for concurrent use.
	OnDone func(Result)
}

func (e *Executor) workers() int {
	if e == nil || e.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Workers
}

// Execute runs every spec of the plan and returns all results in plan
// order. A spec that panics is recovered and reported in its Result's
// Err (tagged with the spec's label); the remaining specs still run.
func (e *Executor) Execute(p Plan) []Result {
	n := len(p.Specs)
	results := make([]Result, n)
	w := e.workers()
	if w > n {
		w = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = e.runOne(p, i)
				if e.OnDone != nil {
					e.OnDone(results[i])
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Run is Execute reduced to the common case: it returns the RunStats in
// plan order, or an error joining every recovered panic.
func (e *Executor) Run(p Plan) ([]RunStats, error) {
	results := e.Execute(p)
	out := make([]RunStats, len(results))
	var errs []error
	for i, r := range results {
		out[i] = r.Stats
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return out, errors.Join(errs...)
}

func (e *Executor) runOne(p Plan, i int) (res Result) {
	sp := p.Specs[i]
	res = Result{Index: i, Spec: sp}
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("runner: plan %q spec %d (%s) panicked: %v",
				p.Name, i, sp.DisplayLabel(), r)
		}
	}()
	res.Stats = sp.Run()
	return res
}

// ForEach runs fn(0), ..., fn(n-1) across a pool of at most workers
// goroutines (<= 0 means GOMAXPROCS) and blocks until all complete.
// Iterations must be independent of each other; results should be
// written to per-index slots. If any iteration panics, the first panic
// (by index) is re-raised on the caller's goroutine after every other
// iteration has finished — matching what a plain sequential loop would
// have done. It is the escape hatch for measurement loops that do not
// produce RunStats (trace captures, IPC-window runs) but still fan out
// over independent deterministic simulations.
func ForEach(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	panics := make([]any, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() { panics[i] = recover() }()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("runner: ForEach iteration %d panicked: %v", i, p))
		}
	}
}

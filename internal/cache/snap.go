package cache

import (
	"fmt"

	"prosper/internal/snapbuf"
)

// SaveSnap encodes the level's tag arrays, LRU clock, and statistics.
// Snapshots are taken at checkpoint-commit quiescent points where no
// miss is in flight; a level with live MSHRs or stalled accesses rejects
// the snapshot point rather than serializing continuations.
func (c *Cache) SaveSnap(w *snapbuf.Writer) error {
	if len(c.mshrs) != 0 || len(c.blocked) != 0 {
		return fmt.Errorf("cache: %s has %d in-flight misses and %d blocked accesses at snapshot point",
			c.cfg.Name, len(c.mshrs), len(c.blocked))
	}
	w.String(c.cfg.Name)
	w.U64(uint64(len(c.sets)))
	w.U64(uint64(c.cfg.Ways))
	w.U64(c.lruClock)
	for si := range c.sets {
		for wi := range c.sets[si] {
			ln := &c.sets[si][wi]
			w.U64(ln.tag)
			w.Bool(ln.valid)
			w.Bool(ln.dirty)
			w.U64(ln.lru)
		}
	}
	c.Counters.SaveSnap(w)
	c.Histograms.SaveSnap(w)
	return nil
}

// LoadSnap restores a level of identical geometry.
func (c *Cache) LoadSnap(r *snapbuf.Reader) error {
	name := r.String()
	sets := r.U64()
	ways := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if name != c.cfg.Name || sets != uint64(len(c.sets)) || ways != uint64(c.cfg.Ways) {
		return fmt.Errorf("cache: geometry mismatch: snapshot %s %dx%d, machine %s %dx%d",
			name, sets, ways, c.cfg.Name, len(c.sets), c.cfg.Ways)
	}
	c.lruClock = r.U64()
	for si := range c.sets {
		for wi := range c.sets[si] {
			ln := &c.sets[si][wi]
			ln.tag = r.U64()
			ln.valid = r.Bool()
			ln.dirty = r.Bool()
			ln.lru = r.U64()
		}
	}
	if err := c.Counters.LoadSnap(r); err != nil {
		return err
	}
	return c.Histograms.LoadSnap(r)
}

// SaveSnap encodes every level of the hierarchy, L1s then L2s then L3.
func (h *Hierarchy) SaveSnap(w *snapbuf.Writer) error {
	for _, c := range h.L1D {
		if err := c.SaveSnap(w); err != nil {
			return err
		}
	}
	for _, c := range h.L2 {
		if err := c.SaveSnap(w); err != nil {
			return err
		}
	}
	return h.L3.SaveSnap(w)
}

// LoadSnap restores every level of an identically shaped hierarchy.
func (h *Hierarchy) LoadSnap(r *snapbuf.Reader) error {
	for _, c := range h.L1D {
		if err := c.LoadSnap(r); err != nil {
			return err
		}
	}
	for _, c := range h.L2 {
		if err := c.LoadSnap(r); err != nil {
			return err
		}
	}
	return h.L3.LoadSnap(r)
}

package cache

import (
	"testing"

	"prosper/internal/sim"
)

// BenchmarkCacheHit measures the hit hot path. Before counter handles
// were precomputed, every access allocated for the "<name>.hits" key
// concatenation; with handles the steady-state path is allocation-free.
func BenchmarkCacheHit(b *testing.B) {
	eng := sim.NewEngine()
	c, _ := testCache(eng, 4)
	c.Access(false, 0x1000, sim.Done{})
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(false, 0x1000, sim.Done{})
	}
}

// BenchmarkCacheMissCoalesced measures the coalescing miss path, which
// previously composed two counter keys per access.
func BenchmarkCacheMissCoalesced(b *testing.B) {
	eng := sim.NewEngine()
	c, _ := testCache(eng, 4)
	// Leave one fetch permanently in flight by never running the engine:
	// every further access to the line coalesces onto its MSHR.
	c.Access(false, 0x2000, sim.Done{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.access(false, 0x2000, sim.Done{})
	}
	b.StopTimer()
	if got := int(c.Counters.Get("t.mshr_coalesced")); got != b.N {
		b.Fatalf("coalesced = %d, want %d", got, b.N)
	}
}

// TestCacheHistograms checks the miss-latency and MSHR-occupancy
// distributions record what the counters say happened.
func TestCacheHistograms(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := testCache(eng, 4)
	c.Access(false, 0x1000, sim.Done{}) // miss
	c.Access(false, 0x4000, sim.Done{}) // second miss, occupancy 2
	eng.Run()
	c.Access(false, 0x1000, sim.Done{}) // hit: no new samples
	eng.Run()

	ml := c.Histograms.Get("miss_latency")
	if ml.Count() != 2 {
		t.Fatalf("miss_latency count = %d, want 2", ml.Count())
	}
	// Line fetch = below latency (100) + fill bookkeeping; at least 100.
	if ml.Min() < 100 {
		t.Fatalf("miss latency min = %d, want >= 100", ml.Min())
	}
	occ := c.Histograms.Get("mshr_occupancy")
	if occ.Count() != 2 || occ.Max() != 2 || occ.Min() != 1 {
		t.Fatalf("mshr_occupancy count/min/max = %d/%d/%d, want 2/1/2",
			occ.Count(), occ.Min(), occ.Max())
	}
}

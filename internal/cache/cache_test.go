package cache

import (
	"testing"
	"testing/quick"

	"prosper/internal/mem"
	"prosper/internal/sim"
)

// immediatePort completes every access instantly and counts them.
type immediatePort struct {
	reads, writes int
	eng           *sim.Engine
	latency       sim.Time
}

func (p *immediatePort) Access(write bool, addr uint64, done sim.Done) {
	if write {
		p.writes++
	} else {
		p.reads++
	}
	if done.Valid() {
		p.eng.ScheduleDone(p.latency, done)
	}
}

func testCache(eng *sim.Engine, mshrs int) (*Cache, *immediatePort) {
	below := &immediatePort{eng: eng, latency: 100}
	cfg := Config{Name: "t", Size: 8 * 1024, Ways: 4, Latency: 3, MSHRs: mshrs}
	return New(eng, cfg, below), below
}

func TestCacheMissThenHit(t *testing.T) {
	eng := sim.NewEngine()
	c, below := testCache(eng, 4)
	var missT, hitT sim.Time
	c.Access(false, 0x1000, sim.Thunk(sim.CompCache, func() { missT = eng.Now() }))
	eng.Run()
	c.Access(false, 0x1008, sim.Thunk(sim.CompCache, func() { hitT = eng.Now() - missT }))
	eng.Run()
	if missT < 100 {
		t.Fatalf("miss too fast: %d", missT)
	}
	if hitT != 3 {
		t.Fatalf("hit latency = %d, want 3", hitT)
	}
	if below.reads != 1 {
		t.Fatalf("below reads = %d, want 1 (second access must hit)", below.reads)
	}
	if c.Counters.Get("t.hits") != 1 || c.Counters.Get("t.misses") != 1 {
		t.Fatalf("counters: %v", c.Counters.Snapshot())
	}
}

func TestCacheMSHRCoalescing(t *testing.T) {
	eng := sim.NewEngine()
	c, below := testCache(eng, 4)
	completed := 0
	for i := 0; i < 5; i++ {
		c.Access(false, 0x2000+uint64(i*8), sim.Thunk(sim.CompCache, func() { completed++ }))
	}
	eng.Run()
	if completed != 5 {
		t.Fatalf("completed = %d", completed)
	}
	if below.reads != 1 {
		t.Fatalf("below reads = %d, want 1 (same line must coalesce)", below.reads)
	}
	if c.Counters.Get("t.mshr_coalesced") != 4 {
		t.Fatalf("coalesced = %d", c.Counters.Get("t.mshr_coalesced"))
	}
}

func TestCacheMSHRExhaustionStalls(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := testCache(eng, 2)
	completed := 0
	for i := 0; i < 6; i++ {
		c.Access(false, uint64(i)*mem.LineSize, sim.Thunk(sim.CompCache, func() { completed++ }))
	}
	if c.Counters.Get("t.mshr_stalls") == 0 {
		t.Fatal("expected MSHR stalls")
	}
	eng.Run()
	if completed != 6 {
		t.Fatalf("completed = %d, want 6", completed)
	}
}

func TestCacheDirtyEvictionWritesBack(t *testing.T) {
	eng := sim.NewEngine()
	c, below := testCache(eng, 8)
	// 8 KiB, 4-way, 64B lines -> 32 sets. Lines mapping to set 0 are
	// 32*64=2048 bytes apart. Fill set 0 with 4 dirty lines then a 5th.
	stride := uint64(32 * mem.LineSize)
	for i := 0; i < 4; i++ {
		c.Access(true, uint64(i)*stride, sim.Done{})
	}
	eng.Run()
	writesBefore := below.writes
	c.Access(true, 4*stride, sim.Done{})
	eng.Run()
	if below.writes != writesBefore+1 {
		t.Fatalf("expected exactly one writeback, got %d", below.writes-writesBefore)
	}
	if c.Counters.Get("t.writebacks") != 1 {
		t.Fatalf("writebacks counter = %d", c.Counters.Get("t.writebacks"))
	}
}

func TestCacheLRUVictimSelection(t *testing.T) {
	eng := sim.NewEngine()
	c, _ := testCache(eng, 8)
	stride := uint64(32 * mem.LineSize)
	for i := 0; i < 4; i++ {
		c.Access(false, uint64(i)*stride, sim.Done{})
	}
	eng.Run()
	// Touch line 0 so line 1 becomes LRU.
	c.Access(false, 0, sim.Done{})
	eng.Run()
	c.Access(false, 4*stride, sim.Done{}) // evicts line 1
	eng.Run()
	if !c.Contains(0) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(stride) {
		t.Fatal("LRU line survived")
	}
}

func TestCacheFlush(t *testing.T) {
	eng := sim.NewEngine()
	c, below := testCache(eng, 8)
	c.Access(true, 0x100, sim.Done{})
	c.Access(false, 0x200, sim.Done{})
	eng.Run()
	c.Flush()
	eng.Run()
	if c.Contains(0x100) || c.Contains(0x200) {
		t.Fatal("flush left lines resident")
	}
	if below.writes != 1 {
		t.Fatalf("flush writebacks = %d, want 1 (only the dirty line)", below.writes)
	}
}

func TestHierarchyEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	ctl := mem.NewController(eng)
	h := NewHierarchy(eng, 2, PortFunc(ctl.Access))
	var coldT, warmT sim.Time
	start := eng.Now()
	h.CorePort(0).Access(false, 0x4000, sim.Thunk(sim.CompCache, func() { coldT = eng.Now() - start }))
	eng.Run()
	start = eng.Now()
	h.CorePort(0).Access(false, 0x4000, sim.Thunk(sim.CompCache, func() { warmT = eng.Now() - start }))
	eng.Run()
	// Cold miss must traverse L1+L2+L3+DRAM; warm hit costs L1 latency.
	if coldT < 135 {
		t.Fatalf("cold access too fast: %d", coldT)
	}
	if warmT != 3 {
		t.Fatalf("warm hit = %d, want 3", warmT)
	}
	// Other core's L1 must not contain the line (private L1s).
	if h.CorePort(1).Contains(0x4000) {
		t.Fatal("line leaked into other core's L1")
	}
}

func TestHierarchyNVMSlower(t *testing.T) {
	eng := sim.NewEngine()
	ctl := mem.NewController(eng)
	h := NewHierarchy(eng, 1, PortFunc(ctl.Access))
	var dramT, nvmT sim.Time
	start := eng.Now()
	h.CorePort(0).Access(false, 0x10000, sim.Thunk(sim.CompCache, func() { dramT = eng.Now() - start }))
	eng.Run()
	start = eng.Now()
	h.CorePort(0).Access(false, mem.NVMBase+0x10000, sim.Thunk(sim.CompCache, func() { nvmT = eng.Now() - start }))
	eng.Run()
	if nvmT <= dramT {
		t.Fatalf("NVM miss (%d) should be slower than DRAM miss (%d)", nvmT, dramT)
	}
}

// Property: after any access sequence every valid line appears in exactly
// the set its address maps to, and no two ways of a set hold the same tag.
func TestCacheTagInvariantProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		eng := sim.NewEngine()
		c, _ := testCache(eng, 4)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(w, uint64(a)*8, sim.Done{})
		}
		eng.Run()
		for si, set := range c.sets {
			seen := map[uint64]bool{}
			for _, ln := range set {
				if !ln.valid {
					continue
				}
				if seen[ln.tag] {
					return false // duplicate tag in one set
				}
				seen[ln.tag] = true
				if int((ln.tag>>mem.LineShift)&c.setMask) != si {
					return false // line in the wrong set
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: reads after the hierarchy settles always complete, regardless
// of interleaving, and total hits+misses equals total accesses.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		eng := sim.NewEngine()
		c, _ := testCache(eng, 3)
		done := 0
		for _, a := range addrs {
			c.Access(false, uint64(a)*mem.LineSize, sim.Thunk(sim.CompCache, func() { done++ }))
		}
		eng.Run()
		total := c.Counters.Get("t.hits") + c.Counters.Get("t.misses")
		return done == len(addrs) && total == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

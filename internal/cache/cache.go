// Package cache implements the three-level write-back cache hierarchy of
// the simulated machine (Table II of the paper): per-core L1D and L2,
// a shared L3, LRU replacement, write-allocate, and a bounded number of
// MSHRs per level with miss coalescing.
//
// Caches are timing-only: they track tags and dirtiness, while data lives
// in mem.Storage. Every level implements Port, so levels chain naturally
// and the memory controller terminates the chain.
//
// Completion uses sim.Done tokens rather than func() closures, and each
// level's fetch/fill continuations are method values materialized once at
// construction, so the steady-state hit and miss paths allocate nothing.
// When the next level is another *Cache the chain is devirtualized: New
// detects the concrete type and calls it directly.
package cache

import (
	"prosper/internal/journey"
	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/stats"
)

// Port is anything that can service a line-granularity memory access.
// The zero Done token means "posted" — no completion callback.
type Port interface {
	Access(write bool, addr uint64, done sim.Done)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(write bool, addr uint64, done sim.Done)

// Access calls f.
func (f PortFunc) Access(write bool, addr uint64, done sim.Done) { f(write, addr, done) }

// Config describes one cache level.
type Config struct {
	Name    string
	Size    int      // capacity in bytes
	Ways    int      // associativity
	Latency sim.Time // hit latency in cycles
	MSHRs   int      // outstanding misses
}

// L1DConfig returns the paper's L1 data cache: 32 KiB, 8-way, 3 cycles,
// 16 MSHRs.
func L1DConfig() Config { return Config{Name: "l1d", Size: 32 << 10, Ways: 8, Latency: 3, MSHRs: 16} }

// L2Config returns the paper's L2: 512 KiB, 16-way, 12 cycles, 32 MSHRs.
func L2Config() Config { return Config{Name: "l2", Size: 512 << 10, Ways: 16, Latency: 12, MSHRs: 32} }

// L3Config returns the paper's shared L3 scaled by core count:
// 2 MiB/core, 16-way, 20 cycles, 32 MSHRs.
func L3Config(cores int) Config {
	if cores < 1 {
		cores = 1
	}
	return Config{Name: "l3", Size: cores * (2 << 20), Ways: 16, Latency: 20, MSHRs: 32}
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

type mshr struct {
	waiters []waiter
	issued  sim.Time // when the line fetch left this level
	jid     uint32   // first sampled waiter's journey; tags the downstream fetch
}

type waiter struct {
	write   bool
	done    sim.Done
	arrived sim.Time // when this waiter joined the miss (journey spans)
}

type deferredAccess struct {
	write   bool
	addr    uint64
	done    sim.Done
	arrived sim.Time // when MSHR exhaustion parked the access (journey spans)
}

// Cache is one set-associative write-back, write-allocate level.
type Cache struct {
	eng  *sim.Engine
	cfg  Config
	next Port
	// nextCache devirtualizes the common chain (L1→L2→L3): when the next
	// level is a concrete *Cache, Access goes straight to it instead of
	// through the interface.
	nextCache *Cache

	sets     [][]line
	setMask  uint64
	lruClock uint64

	mshrs    map[uint64]*mshr //prosperlint:ignore snapshot SaveSnap asserts no in-flight misses; a fresh boot's empty MSHR map needs no restoring
	mshrFree []*mshr          // retired MSHRs, reused with their waiter backing
	//prosperlint:ignore snapshot SaveSnap asserts none are stalled; a fresh boot's empty list needs no restoring
	blocked  []deferredAccess // accesses stalled on MSHR exhaustion
	retryBuf []deferredAccess // spare backing swapped with blocked on retry

	// fetchFn/fillFn are the miss-path continuations (method values bound
	// once here, rebound never): fetch asks the next level for the line
	// after the lookup latency; fill installs it on arrival.
	fetchFn func(uint64)
	fillFn  func(uint64)

	Counters   *stats.Counters
	Histograms *stats.Histograms

	// Precomputed counter handles: Access/access/miss run once per
	// memory reference, so composing "<name>.hits" there allocates on
	// every access. The handles pin each slot at construction instead.
	cHits          stats.Counter
	cMisses        stats.Counter
	cReadAccesses  stats.Counter
	cWriteAccesses stats.Counter
	cCoalesced     stats.Counter
	cMSHRStalls    stats.Counter
	cWritebacks    stats.Counter

	hMissLatency *stats.Histogram // line-fetch latency, issue to fill
	hMSHROcc     *stats.Histogram // MSHRs in use after each allocation

	// journeys, when attached, receives stage spans for sampled accesses
	// whose Done tokens carry a journey ID; stage is this level's lane.
	// Both are boot-time wiring, excluded from snapshots by design: a
	// journey-enabled spec is rejected by the snapshot runner (§15).
	journeys *journey.Recorder
	stage    journey.Stage
}

// New builds a cache level in front of next.
func New(eng *sim.Engine, cfg Config, next Port) *Cache {
	numLines := cfg.Size / mem.LineSize
	numSets := numLines / cfg.Ways
	if numSets == 0 || numSets&(numSets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	sets := make([][]line, numSets)
	backing := make([]line, numLines)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	c := &Cache{
		eng:        eng,
		cfg:        cfg,
		next:       next,
		sets:       sets,
		setMask:    uint64(numSets - 1),
		mshrs:      make(map[uint64]*mshr),
		Counters:   stats.NewCounters(),
		Histograms: stats.NewHistograms(),
	}
	if nc, ok := next.(*Cache); ok {
		c.nextCache = nc
	}
	c.fetchFn = c.fetch
	c.fillFn = c.fill
	c.cHits = c.Counters.Handle(cfg.Name + ".hits")
	c.cMisses = c.Counters.Handle(cfg.Name + ".misses")
	c.cReadAccesses = c.Counters.Handle(cfg.Name + ".read_accesses")
	c.cWriteAccesses = c.Counters.Handle(cfg.Name + ".write_accesses")
	c.cCoalesced = c.Counters.Handle(cfg.Name + ".mshr_coalesced")
	c.cMSHRStalls = c.Counters.Handle(cfg.Name + ".mshr_stalls")
	c.cWritebacks = c.Counters.Handle(cfg.Name + ".writebacks")
	c.hMissLatency = c.Histograms.New("miss_latency")
	c.hMSHROcc = c.Histograms.New("mshr_occupancy")
	return c
}

// Name returns the level's configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// AttachJourneys wires the journey recorder into the level, declaring
// which stage lane (L1/L2/L3) its spans land in.
func (c *Cache) AttachJourneys(r *journey.Recorder, stage journey.Stage) {
	c.journeys = r
	c.stage = stage
}

func (c *Cache) setFor(lineAddr uint64) []line {
	return c.sets[(lineAddr>>mem.LineShift)&c.setMask]
}

func (c *Cache) lookup(lineAddr uint64) *line {
	set := c.setFor(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// nextAccess forwards one access to the level below, devirtualized when
// that level is a concrete *Cache.
func (c *Cache) nextAccess(write bool, addr uint64, done sim.Done) {
	if c.nextCache != nil {
		c.nextCache.Access(write, addr, done)
		return
	}
	c.next.Access(write, addr, done)
}

// Access services one access to the line containing addr. The access is
// aligned internally; callers may pass arbitrary byte addresses.
//
//prosperlint:hotpath per-line cache access: the L1/L2 service path runs once per segment
func (c *Cache) Access(write bool, addr uint64, done sim.Done) {
	if write {
		c.cWriteAccesses.Inc()
	} else {
		c.cReadAccesses.Inc()
	}
	c.access(write, mem.LineOf(addr), done)
}

// access is the internal (non-counting-of-entry) path, reused verbatim by
// MSHR-stall retries so that one logical access is accounted exactly once
// as a hit or a miss.
func (c *Cache) access(write bool, lineAddr uint64, done sim.Done) {
	if ln := c.lookup(lineAddr); ln != nil {
		c.cHits.Inc()
		c.lruClock++
		ln.lru = c.lruClock
		if write {
			ln.dirty = true
		}
		if jid := done.Journey(); jid != 0 {
			now := c.eng.Now()
			c.journeys.Span(jid, c.stage, journey.CauseHit, now, now+c.cfg.Latency)
		}
		if done.Valid() {
			c.eng.ScheduleDone(c.cfg.Latency, done)
		}
		return
	}
	c.miss(write, lineAddr, done)
}

func (c *Cache) miss(write bool, lineAddr uint64, done sim.Done) {
	if m, ok := c.mshrs[lineAddr]; ok {
		// Coalesce with the in-flight fetch of the same line.
		c.cMisses.Inc()
		c.cCoalesced.Inc()
		m.waiters = append(m.waiters, waiter{write: write, done: done, arrived: c.eng.Now()}) //prosperlint:ignore hotalloc amortized: waiter slices are recycled with their MSHRs at steady state
		if m.jid == 0 {
			// A sampled coalescer adopts the fetch if the initiator was
			// unsampled, so the downstream levels still get tagged (the
			// fetch token reads m.jid when it departs, latency cycles on).
			m.jid = done.Journey()
		}
		return
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		// Not yet a hit or a miss: the retry will classify it.
		c.cMSHRStalls.Inc()
		c.blocked = append(c.blocked, deferredAccess{write: write, addr: lineAddr, done: done, arrived: c.eng.Now()}) //prosperlint:ignore hotalloc amortized: the blocked list is drained and reused; growth is bounded by offered load
		return
	}
	c.cMisses.Inc()
	m := c.allocMSHR()
	m.waiters = append(m.waiters, waiter{write: write, done: done, arrived: c.eng.Now()}) //prosperlint:ignore hotalloc amortized: waiter slices are recycled with their MSHRs at steady state
	m.issued = c.eng.Now()
	m.jid = done.Journey()
	c.mshrs[lineAddr] = m
	c.hMSHROcc.Observe(uint64(len(c.mshrs)))
	// Fetch the line from the level below after paying the lookup latency.
	c.eng.ScheduleDone(c.cfg.Latency, sim.Bind(sim.CompCache, c.fetchFn, lineAddr))
}

// fetch asks the next level for lineAddr; fill runs on its completion.
// The fill token carries the miss's journey ID so the levels below tag
// their spans against the same sampled access.
func (c *Cache) fetch(lineAddr uint64) {
	tok := sim.Bind(sim.CompCache, c.fillFn, lineAddr)
	if c.journeys != nil {
		if m, ok := c.mshrs[lineAddr]; ok && m.jid != 0 {
			tok = tok.WithJourney(m.jid)
		}
	}
	c.nextAccess(false, lineAddr, tok)
}

func (c *Cache) fill(lineAddr uint64) {
	m := c.mshrs[lineAddr]
	delete(c.mshrs, lineAddr)
	c.hMissLatency.Observe(uint64(c.eng.Now() - m.issued))

	victim := c.victimFor(lineAddr)
	if victim.valid && victim.dirty {
		c.cWritebacks.Inc()
		// Posted writeback: lower level absorbs it asynchronously.
		c.nextAccess(true, victim.tag, sim.Done{})
	}
	c.lruClock++
	*victim = line{tag: lineAddr, valid: true, lru: c.lruClock}
	now := c.eng.Now()
	for i := range m.waiters {
		w := m.waiters[i]
		if w.write {
			victim.dirty = true
		}
		if jid := w.done.Journey(); jid != 0 {
			// The level's whole share of the miss, waiter arrival to
			// fill; deeper levels' spans carve out their sub-intervals
			// in the attribution sweep.
			cause := journey.CauseMiss
			if i > 0 {
				cause = journey.CauseCoalesced
			}
			c.journeys.Span(jid, c.stage, cause, w.arrived, now)
		}
		w.done.Run()
	}
	// Retire the MSHR only after the waiter loop: callbacks above may
	// allocate MSHRs for new misses and must not be handed this one.
	c.freeMSHR(m)
	c.retryBlocked()
}

func (c *Cache) allocMSHR() *mshr {
	if n := len(c.mshrFree); n > 0 {
		m := c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
		return m
	}
	return &mshr{} //prosperlint:ignore hotalloc pool-miss only: freeMSHR recycles entries, so steady state allocates nothing
}

func (c *Cache) freeMSHR(m *mshr) {
	for i := range m.waiters {
		m.waiters[i] = waiter{} // drop completion references
	}
	m.waiters = m.waiters[:0]
	c.mshrFree = append(c.mshrFree, m)
}

func (c *Cache) victimFor(lineAddr uint64) *line {
	set := c.setFor(lineAddr)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

func (c *Cache) retryBlocked() {
	if len(c.blocked) == 0 {
		return
	}
	// Swap in the spare backing so retries re-deferred by still-full MSHRs
	// append to a distinct slice; the drained one becomes the next spare.
	pend := c.blocked
	c.blocked = c.retryBuf[:0]
	now := c.eng.Now()
	for i := range pend {
		p := pend[i]
		if jid := p.done.Journey(); jid != 0 {
			c.journeys.Span(jid, journey.StageMSHR, journey.CauseMSHRFull, p.arrived, now)
		}
		c.access(p.write, p.addr, p.done)
	}
	for i := range pend {
		pend[i] = deferredAccess{}
	}
	c.retryBuf = pend[:0]
}

// MSHRsInUse returns how many miss-status registers hold in-flight
// misses right now; telemetry samples it against cfg.MSHRs.
func (c *Cache) MSHRsInUse() int { return len(c.mshrs) }

// BlockedAccesses returns how many accesses are stalled on MSHR
// exhaustion right now.
func (c *Cache) BlockedAccesses() int { return len(c.blocked) }

// Contains reports whether the line holding addr is resident (test hook).
func (c *Cache) Contains(addr uint64) bool { return c.lookup(mem.LineOf(addr)) != nil }

// Flush writes back every dirty line and invalidates the cache, e.g. to
// model cache loss at power failure or explicit clwb sweeps.
func (c *Cache) Flush() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			ln := &c.sets[si][wi]
			if ln.valid && ln.dirty {
				c.cWritebacks.Inc()
				c.nextAccess(true, ln.tag, sim.Done{})
			}
			ln.valid = false
			ln.dirty = false
		}
	}
}

// Hierarchy bundles the per-core L1/L2 front ends with a shared L3 over
// the memory controller.
type Hierarchy struct {
	L1D []*Cache // one per core
	L2  []*Cache // one per core
	L3  *Cache
}

// NewHierarchy builds the Table II cache stack for the given core count.
func NewHierarchy(eng *sim.Engine, cores int, memory Port) *Hierarchy {
	h := &Hierarchy{L3: New(eng, L3Config(cores), memory)}
	for i := 0; i < cores; i++ {
		l2 := New(eng, L2Config(), h.L3)
		l1 := New(eng, L1DConfig(), l2)
		h.L2 = append(h.L2, l2)
		h.L1D = append(h.L1D, l1)
	}
	return h
}

// CorePort returns the L1D port for the given core.
func (h *Hierarchy) CorePort(core int) *Cache { return h.L1D[core] }

// FlushAll flushes every level, L1 outward, modelling a full cache sweep.
func (h *Hierarchy) FlushAll() {
	for _, c := range h.L1D {
		c.Flush()
	}
	for _, c := range h.L2 {
		c.Flush()
	}
	h.L3.Flush()
}

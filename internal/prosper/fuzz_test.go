package prosper

import (
	"testing"

	"prosper/internal/mem"
)

// FuzzInspectClear drives the OS-side bitmap inspection with arbitrary
// bitmap contents and windows: Inspect must never panic, its ranges must
// stay inside the tracked region and cover exactly the set bits, and
// Clear must zero precisely the inspected window.
func FuzzInspectClear(f *testing.F) {
	f.Add([]byte{0xff, 0, 0, 0}, uint16(0), uint16(512))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(8), uint16(64))
	f.Fuzz(func(t *testing.T, bitmap []byte, winLoOff, winHiOff uint16) {
		const gran = 8
		rangeBytes := uint64(64 << 10)
		msrs := MSRs{
			StackLo:    0x7000_0000,
			StackHi:    0x7000_0000 + rangeBytes,
			BitmapBase: 0x10_0000,
			Gran:       gran,
		}
		if len(bitmap) > int(BitmapBytes(rangeBytes, gran)) {
			bitmap = bitmap[:BitmapBytes(rangeBytes, gran)]
		}
		st := mem.NewStorage()
		st.Write(msrs.BitmapBase, bitmap)

		winLo := msrs.StackLo + uint64(winLoOff)%rangeBytes
		winHi := msrs.StackLo + uint64(winHiOff)%rangeBytes
		if winLo > winHi {
			winLo, winHi = winHi, winLo
		}
		if winHi == winLo {
			winHi = winLo + 1
		}
		res := Inspect(st, msrs, winLo, winHi, true)
		var covered uint64
		for _, r := range res.Ranges {
			if r.Addr < msrs.StackLo || r.Addr+r.Size > msrs.StackHi {
				t.Fatalf("range [%#x+%d] escapes the tracked region", r.Addr, r.Size)
			}
			if r.Size == 0 || r.Size%gran != 0 {
				t.Fatalf("range size %d not granule aligned", r.Size)
			}
			covered += r.Size
			// Every granule in the range must have its bit set.
			for g := (r.Addr - msrs.StackLo) / gran; g < (r.Addr+r.Size-msrs.StackLo)/gran; g++ {
				word := st.ReadU32(msrs.BitmapBase + (g/32)*4)
				if word&(1<<(g%32)) == 0 {
					t.Fatalf("range covers clear granule %d", g)
				}
			}
		}
		if covered != res.DirtyBytes {
			t.Fatalf("DirtyBytes %d != covered %d", res.DirtyBytes, covered)
		}
		// Clearing the window must leave no set bits inside it.
		Clear(st, msrs, winLo, winHi, true)
		res2 := Inspect(st, msrs, winLo, winHi, true)
		if res2.DirtyBytes != 0 {
			t.Fatalf("bits survived Clear: %d bytes", res2.DirtyBytes)
		}
	})
}

package prosper

import (
	"math/bits"

	"prosper/internal/mem"
)

// Range is one contiguous dirty extent of the tracked region, produced by
// bitmap inspection with coalescing.
type Range struct {
	Addr uint64 // virtual address of the first dirty byte
	Size uint64 // length in bytes (multiple of the granularity)
}

// InspectResult summarizes one bitmap inspection pass.
type InspectResult struct {
	Ranges     []Range
	DirtyBytes uint64 // total dirty payload (sum of range sizes)
	WordsRead  uint64 // bitmap words the OS had to examine
	WordsSet   uint64 // words with at least one bit set
}

// Inspect scans the bitmap for the tracked range [msrs.StackLo,
// msrs.StackHi) restricted to the touched window [winLo, winHi) the
// hardware reported, coalescing adjacent set bits into ranges (the OS
// looks for coalescing opportunities within every eight bytes of bitmap,
// which the word-at-a-time scan with cross-word merging subsumes).
func Inspect(storage *mem.Storage, msrs MSRs, winLo, winHi uint64, any bool) InspectResult {
	var res InspectResult
	if !any || winLo >= winHi {
		return res
	}
	firstWord := ((winLo - msrs.StackLo) / msrs.Gran) / 32
	lastWord := ((winHi - 1 - msrs.StackLo) / msrs.Gran) / 32

	var open bool
	var start, end uint64 // open range in granule units
	flush := func() {
		if !open {
			return
		}
		addr := msrs.StackLo + start*msrs.Gran
		size := (end - start + 1) * msrs.Gran
		if addr+size > msrs.StackHi {
			size = msrs.StackHi - addr
		}
		res.Ranges = append(res.Ranges, Range{Addr: addr, Size: size})
		res.DirtyBytes += size
		open = false
	}
	for w := firstWord; w <= lastWord; w++ {
		res.WordsRead++
		word := storage.ReadU32(msrs.BitmapBase + w*4)
		if word == 0 {
			flush()
			continue
		}
		res.WordsSet++
		for word != 0 {
			b := uint64(bits.TrailingZeros32(word))
			g := w*32 + b
			// Clear the contiguous run of set bits starting at b.
			run := uint64(bits.TrailingZeros32(^(word >> b)))
			word &= ^(((1 << run) - 1) << b)
			if open && g == end+1 {
				end = g + run - 1
				continue
			}
			flush()
			open = true
			start, end = g, g+run-1
		}
	}
	flush()
	return res
}

// Clear zeroes the bitmap words covering the touched window, the OS's
// preparation for the next interval. It returns how many words were
// written.
func Clear(storage *mem.Storage, msrs MSRs, winLo, winHi uint64, any bool) uint64 {
	if !any || winLo >= winHi {
		return 0
	}
	firstWord := ((winLo - msrs.StackLo) / msrs.Gran) / 32
	lastWord := ((winHi - 1 - msrs.StackLo) / msrs.Gran) / 32
	var written uint64
	for w := firstWord; w <= lastWord; w++ {
		addr := msrs.BitmapBase + w*4
		if storage.ReadU32(addr) != 0 {
			storage.WriteU32(addr, 0)
			written++
		}
	}
	return written
}

package prosper

import "testing"

// localityPattern writes runs of adjacent granules: entries fill up and
// hit the HWM (SSSP-like spatial locality).
func localityPattern(tr *Tracker, eng interface{ Run() }, rounds int) {
	for r := 0; r < rounds; r++ {
		for word := 0; word < 8; word++ {
			base := tStackLo + uint64(word)*256
			for g := 0; g < 28; g++ {
				tr.ObserveStore(base+uint64(g)*8, 8)
			}
		}
		eng.Run()
	}
}

// scatterPattern touches one granule in each of many word-regions,
// exceeding the table (mcf-like).
func scatterPattern(tr *Tracker, eng interface{ Run() }, rounds int) {
	for r := 0; r < rounds; r++ {
		for region := 0; region < 48; region++ {
			tr.ObserveStore(tStackLo+uint64(region)*256+uint64(r%8)*32, 8)
		}
		eng.Run()
	}
}

func TestAutoTunerRaisesHWMForLocality(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{HWM: 12, LWM: 4})
	tuner := NewAutoTuner(tr)
	for i := 0; i < 6; i++ {
		localityPattern(tr, eng, 4)
		tr.FlushAndWait(func() {})
		eng.Run()
		tuner.Adjust()
		tr.ResetInterval()
	}
	hwm, _ := tuner.Thresholds()
	if hwm <= 12 {
		t.Fatalf("HWM = %d, expected raise for locality pattern", hwm)
	}
	if tuner.Adjustments == 0 {
		t.Fatal("no adjustments made")
	}
}

func TestAutoTunerLowersHWMForScatter(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{HWM: 24, LWM: 2})
	tuner := NewAutoTuner(tr)
	for i := 0; i < 6; i++ {
		scatterPattern(tr, eng, 6)
		tr.FlushAndWait(func() {})
		eng.Run()
		tuner.Adjust()
		tr.ResetInterval()
	}
	hwm, _ := tuner.Thresholds()
	if hwm >= 24 {
		t.Fatalf("HWM = %d, expected drop for scatter pattern", hwm)
	}
}

func TestAutoTunerRaisesLWMOnRandomEvictions(t *testing.T) {
	// LWM=1 means no entry is ever below the watermark -> every eviction
	// is random -> the tuner must raise the LWM.
	tr, _, _, eng := newTestTracker(Config{HWM: 30, LWM: 1})
	tuner := NewAutoTuner(tr)
	for i := 0; i < 4; i++ {
		scatterPattern(tr, eng, 6)
		tr.FlushAndWait(func() {})
		eng.Run()
		tuner.Adjust()
		tr.ResetInterval()
	}
	_, lwm := tuner.Thresholds()
	if lwm <= 1 {
		t.Fatalf("LWM = %d, expected raise when evictions are random", lwm)
	}
}

func TestAutoTunerRespectsBounds(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{HWM: 28, LWM: 12})
	tuner := NewAutoTuner(tr)
	for i := 0; i < 20; i++ {
		localityPattern(tr, eng, 3)
		tr.FlushAndWait(func() {})
		eng.Run()
		tuner.Adjust()
		tr.ResetInterval()
	}
	hwm, lwm := tuner.Thresholds()
	if hwm > tuner.MaxHWM || lwm > tuner.MaxLWM {
		t.Fatalf("thresholds out of bounds: hwm=%d lwm=%d", hwm, lwm)
	}
}

func TestAutoTunerIdleIntervalNoChange(t *testing.T) {
	tr, _, _, _ := newTestTracker(Config{})
	tuner := NewAutoTuner(tr)
	before, lb := tuner.Thresholds()
	tuner.Adjust()
	after, la := tuner.Thresholds()
	if before != after || lb != la {
		t.Fatal("idle interval changed thresholds")
	}
}

// The tuner must actually reduce bitmap traffic for the locality pattern
// versus the starting configuration.
func TestAutoTunerReducesTrafficForLocality(t *testing.T) {
	measure := func(tune bool) uint64 {
		tr, _, _, eng := newTestTracker(Config{HWM: 10, LWM: 4})
		tuner := NewAutoTuner(tr)
		// Warm phase lets the tuner converge.
		for i := 0; i < 6; i++ {
			localityPattern(tr, eng, 2)
			tr.FlushAndWait(func() {})
			eng.Run()
			if tune {
				tuner.Adjust()
			}
			tr.ResetInterval()
		}
		start := tr.Counters.Get("prosper.bitmap_loads")
		for i := 0; i < 4; i++ {
			localityPattern(tr, eng, 2)
			tr.FlushAndWait(func() {})
			eng.Run()
			tr.ResetInterval()
		}
		return tr.Counters.Get("prosper.bitmap_loads") - start
	}
	fixed := measure(false)
	tuned := measure(true)
	if tuned >= fixed {
		t.Fatalf("autotuned loads (%d) should be below fixed (%d) for locality", tuned, fixed)
	}
}

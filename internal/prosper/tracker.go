// Package prosper implements the paper's primary contribution: a per-core
// hardware dirty tracker that observes the store stream at the L1D port,
// filters stores-of-interest (SOIs) against an OS-configured virtual
// stack range, and records modified sub-page granules in a DRAM bitmap
// through a small coalescing lookup table.
//
// The tracker is configured through model-specific registers (MSRs) by
// the OS component (internal/kernel): stack address range, tracking
// granularity, and bitmap base. At checkpoint end the OS requests a
// flush, polls for quiescence via the tracker's outstanding-request
// counters, inspects and clears the bitmap, and copies the dirty granules
// to NVM.
package prosper

import (
	"fmt"
	"math/bits"

	"prosper/internal/cache"
	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/telemetry"
)

// AllocPolicy selects how the lookup table creates entries for bitmap
// words it has not cached (Section III-B of the paper).
type AllocPolicy int

const (
	// AccumulateApply (the paper's choice) allocates an empty entry
	// immediately; the old bitmap word is loaded only when the entry is
	// written back, then merged and stored if changed.
	AccumulateApply AllocPolicy = iota
	// LoadUpdate loads the old word at allocation so the entry always
	// holds the current value; writebacks need no load.
	LoadUpdate
)

func (p AllocPolicy) String() string {
	if p == LoadUpdate {
		return "load-update"
	}
	return "accumulate-apply"
}

// Config sets the microarchitectural parameters. The defaults (applied by
// New for zero fields) are the paper's: 16 entries, HWM 24, LWM 8.
type Config struct {
	TableSize int
	HWM       int // high-water-mark: writeback when popcount reaches it
	LWM       int // low-water-mark: eviction prefers entries below it
	Policy    AllocPolicy
	Seed      uint64 // seeds the random-victim fallback
}

func (c Config) withDefaults() Config {
	if c.TableSize <= 0 {
		c.TableSize = 16
	}
	if c.HWM <= 0 {
		c.HWM = 24
	}
	if c.LWM <= 0 {
		c.LWM = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// MSRs is the OS-visible register state of one tracker, saved and
// restored across context switches along with the touched-range state.
type MSRs struct {
	StackLo    uint64 // tracked virtual range [StackLo, StackHi)
	StackHi    uint64
	BitmapBase uint64 // physical DRAM base of the dirty bitmap
	Gran       uint64 // tracking granularity, multiple of 8 bytes
	Enabled    bool
}

// State is the full architectural state of a tracker for save/restore.
// The lookup table itself is not part of it: the OS must flush before
// saving, which the kernel's context-switch path does.
type State struct {
	MSRs       MSRs
	TouchedLo  uint64
	TouchedHi  uint64
	AnyTouched bool
}

type entry struct {
	used     bool
	wordAddr uint64 // physical address of the 32-bit bitmap word
	accum    uint32 // bits accumulated (AccumulateApply) or merged value (LoadUpdate)
}

// Tracker is one per-core dirty tracker.
type Tracker struct {
	eng     *sim.Engine
	port    cache.Port   // where bitmap loads/stores are injected (below L1D)
	storage *mem.Storage // functional home of the bitmap
	cfg     Config
	rng     *sim.Rand

	msrs  MSRs
	table []entry //prosperlint:ignore snapshot SaveSnap asserts zero live entries via LiveEntries; a fresh boot's empty table needs no restoring

	outstandingLoads  int //prosperlint:ignore snapshot SaveSnap asserts quiescence via Quiesced; zero at every legal snapshot point
	outstandingStores int //prosperlint:ignore snapshot SaveSnap asserts quiescence via Quiesced; zero at every legal snapshot point

	// loadDoneTok/storeDoneTok retire one outstanding bitmap access; the
	// method values are bound once in New so the injection path allocates
	// nothing per access.
	loadDoneTok  sim.Done
	storeDoneTok sim.Done

	touchedLo, touchedHi uint64
	anyTouched           bool

	Counters   *stats.Counters
	Histograms *stats.Histograms

	// Precomputed handles for the per-store hot path.
	cSOIs         stats.Counter
	cBitmapLoads  stats.Counter
	cBitmapStores stats.Counter

	hFlushEntries *stats.Histogram // live table entries at each Flush
	hFlushWait    *stats.Histogram // FlushAndWait call to quiescence, cycles

	// Trace, when enabled, receives flush / HWM-writeback / eviction
	// instant events on TraceTrack; the kernel wires both at boot. A nil
	// Trace (the default) costs one pointer test per emission site.
	Trace      *telemetry.Tracer
	TraceTrack telemetry.Track
}

// New builds a tracker injecting bitmap traffic into port.
func New(eng *sim.Engine, port cache.Port, storage *mem.Storage, cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	t := &Tracker{
		eng:        eng,
		port:       port,
		storage:    storage,
		cfg:        cfg,
		rng:        sim.NewRand(cfg.Seed),
		table:      make([]entry, cfg.TableSize),
		Counters:   stats.NewCounters(),
		Histograms: stats.NewHistograms(),
	}
	t.loadDoneTok = sim.Thunk(sim.CompProsper, t.loadRetired)
	t.storeDoneTok = sim.Thunk(sim.CompProsper, t.storeRetired)
	t.cSOIs = t.Counters.Handle("prosper.sois")
	t.cBitmapLoads = t.Counters.Handle("prosper.bitmap_loads")
	t.cBitmapStores = t.Counters.Handle("prosper.bitmap_stores")
	t.hFlushEntries = t.Histograms.New("flush_entries")
	t.hFlushWait = t.Histograms.New("flush_wait")
	return t
}

// Configure writes the tracker's MSRs. Granularity must be a positive
// multiple of 8 bytes.
func (t *Tracker) Configure(stackLo, stackHi, bitmapBase, gran uint64) {
	if gran == 0 || gran%8 != 0 {
		panic(fmt.Sprintf("prosper: granularity %d not a multiple of 8", gran))
	}
	if stackLo >= stackHi {
		panic("prosper: empty stack range")
	}
	t.msrs = MSRs{StackLo: stackLo, StackHi: stackHi, BitmapBase: bitmapBase, Gran: gran}
}

// Enable starts SOI filtering; Disable stops it (tracking interval gate).
func (t *Tracker) Enable() { t.msrs.Enabled = true }

// Disable stops SOI filtering without touching the table.
func (t *Tracker) Disable() { t.msrs.Enabled = false }

// MSRState returns the current MSR values (RDMSR).
func (t *Tracker) MSRState() MSRs { return t.msrs }

// SetGranularity reprograms the granularity MSR in place. The OS may only
// do this at an interval boundary with the bitmap clear; the adaptive
// granularity extension uses it.
func (t *Tracker) SetGranularity(gran uint64) {
	if gran == 0 || gran%8 != 0 {
		panic("prosper: bad granularity")
	}
	t.msrs.Gran = gran
}

// BitmapBytes returns the bitmap size in bytes needed to track the
// configured range at the configured granularity, rounded to whole
// 32-bit words.
func BitmapBytes(rangeBytes, gran uint64) uint64 {
	granules := (rangeBytes + gran - 1) / gran
	words := (granules + 31) / 32
	return words * 4
}

// ObserveStore implements machine.StoreObserver: it filters the store
// against the MSR range and records touched granules. It never stalls
// the store itself — all memory traffic it generates is asynchronous.
func (t *Tracker) ObserveStore(vaddr uint64, size int) {
	if !t.msrs.Enabled || size <= 0 {
		return
	}
	if vaddr >= t.msrs.StackHi || vaddr+uint64(size) <= t.msrs.StackLo {
		return
	}
	t.cSOIs.Inc()
	lo, hi := vaddr, vaddr+uint64(size)
	if lo < t.msrs.StackLo {
		lo = t.msrs.StackLo
	}
	if hi > t.msrs.StackHi {
		hi = t.msrs.StackHi
	}
	if !t.anyTouched || lo < t.touchedLo {
		t.touchedLo = lo
	}
	if !t.anyTouched || hi > t.touchedHi {
		t.touchedHi = hi
	}
	t.anyTouched = true

	firstGranule := (lo - t.msrs.StackLo) / t.msrs.Gran
	lastGranule := (hi - 1 - t.msrs.StackLo) / t.msrs.Gran
	for g := firstGranule; g <= lastGranule; g++ {
		t.recordGranule(g)
	}
}

func (t *Tracker) recordGranule(g uint64) {
	wordAddr := t.msrs.BitmapBase + (g/32)*4
	bit := uint32(1) << (g % 32)
	if e := t.find(wordAddr); e != nil {
		e.accum |= bit
		if t.popcount(e) >= t.cfg.HWM {
			t.Counters.Inc("prosper.hwm_writebacks")
			if t.Trace.Enabled() {
				t.Trace.Instant(t.TraceTrack, "hwm_writeback", telemetry.I("bits", int64(t.popcount(e))))
			}
			t.writeback(e)
		}
		return
	}
	e := t.allocate(wordAddr)
	e.accum |= bit
	if t.cfg.Policy == LoadUpdate {
		// Load the old word now so the entry holds the merged value.
		e.accum |= t.storage.ReadU32(wordAddr)
		t.issueLoad(wordAddr)
	}
}

func (t *Tracker) find(wordAddr uint64) *entry {
	for i := range t.table {
		if t.table[i].used && t.table[i].wordAddr == wordAddr {
			return &t.table[i]
		}
	}
	return nil
}

// popcount returns the number of *new* bits an entry would contribute —
// for LoadUpdate the entry holds merged state, which still works as a
// writeback-pressure heuristic.
func (t *Tracker) popcount(e *entry) int { return bits.OnesCount32(e.accum) }

func (t *Tracker) allocate(wordAddr uint64) *entry {
	for i := range t.table {
		if !t.table[i].used {
			t.table[i] = entry{used: true, wordAddr: wordAddr}
			return &t.table[i]
		}
	}
	victim := t.selectVictim()
	t.Counters.Inc("prosper.evictions")
	t.writeback(victim)
	*victim = entry{used: true, wordAddr: wordAddr}
	return victim
}

// selectVictim applies the LWM policy: the first entry with fewer set
// bits than LWM (prioritising eviction of momentarily-touched call/return
// frames), else a random entry.
func (t *Tracker) selectVictim() *entry {
	for i := range t.table {
		if t.table[i].used && t.popcount(&t.table[i]) < t.cfg.LWM {
			t.Counters.Inc("prosper.lwm_evictions")
			if t.Trace.Enabled() {
				t.Trace.Instant(t.TraceTrack, "lwm_eviction", telemetry.I("bits", int64(t.popcount(&t.table[i]))))
			}
			return &t.table[i]
		}
	}
	t.Counters.Inc("prosper.random_evictions")
	if t.Trace.Enabled() {
		t.Trace.Instant(t.TraceTrack, "random_eviction")
	}
	return &t.table[t.rng.Intn(len(t.table))]
}

// writeback flushes one entry to the bitmap and frees it. Under
// AccumulateApply the store request is converted into a load of the old
// word, a merge, and a store only if the merge changed it. The functional
// merge happens atomically here; the load/store traffic is timed.
func (t *Tracker) writeback(e *entry) {
	wordAddr, accum := e.wordAddr, e.accum
	e.used = false
	e.accum = 0
	if accum == 0 {
		return
	}
	old := t.storage.ReadU32(wordAddr)
	merged := old | accum
	switch t.cfg.Policy {
	case AccumulateApply:
		t.issueLoad(wordAddr)
		if merged != old {
			t.storage.WriteU32(wordAddr, merged)
			t.issueStore(wordAddr)
		}
	case LoadUpdate:
		// The entry already holds merged state (loaded at allocation);
		// writeback is a plain store when something changed.
		if merged != old {
			t.storage.WriteU32(wordAddr, merged)
			t.issueStore(wordAddr)
		}
	}
}

func (t *Tracker) loadRetired()  { t.outstandingLoads-- }
func (t *Tracker) storeRetired() { t.outstandingStores-- }

func (t *Tracker) issueLoad(wordAddr uint64) {
	t.outstandingLoads++
	t.cBitmapLoads.Inc()
	t.port.Access(false, wordAddr, t.loadDoneTok)
}

func (t *Tracker) issueStore(wordAddr uint64) {
	t.outstandingStores++
	t.cBitmapStores.Inc()
	t.port.Access(true, wordAddr, t.storeDoneTok)
}

// Flush evicts every table entry (checkpoint end or context switch). The
// OS must then poll Quiesced before inspecting the bitmap.
func (t *Tracker) Flush() {
	t.Counters.Inc("prosper.flushes")
	t.hFlushEntries.Observe(uint64(t.LiveEntries()))
	if t.Trace.Enabled() {
		t.Trace.Instant(t.TraceTrack, "flush", telemetry.I("live_entries", int64(t.LiveEntries())))
	}
	for i := range t.table {
		if t.table[i].used {
			t.writeback(&t.table[i])
		}
	}
}

// Quiesced reports whether all tracker-generated loads and stores have
// completed (the hardware indicator the OS polls in step two of the
// two-step quiescence protocol).
func (t *Tracker) Quiesced() bool {
	return t.outstandingLoads == 0 && t.outstandingStores == 0
}

// FlushAndWait flushes and calls done once quiescent, polling every few
// cycles like the OS loop would.
func (t *Tracker) FlushAndWait(done func()) {
	began := t.eng.Now()
	t.Flush()
	var poll func()
	poll = func() {
		if t.Quiesced() {
			t.hFlushWait.Observe(uint64(t.eng.Now() - began))
			done()
			return
		}
		t.eng.Schedule(sim.CompProsper, 10, poll)
	}
	t.eng.Schedule(sim.CompProsper, 0, poll)
}

// TouchedRange returns the lowest and highest tracked byte touched during
// the interval — the "maximum active stack region" the hardware shares
// with the OS so bitmap inspection and clearing can be bounded.
func (t *Tracker) TouchedRange() (lo, hi uint64, any bool) {
	return t.touchedLo, t.touchedHi, t.anyTouched
}

// WidenTouched extends the touched range to cover [lo, hi); the OS uses
// it when it records dirty granules on the tracker's behalf (inter-thread
// stack writes taking the fault path of Section III-C).
func (t *Tracker) WidenTouched(lo, hi uint64) {
	if lo >= hi {
		return
	}
	if !t.anyTouched || lo < t.touchedLo {
		t.touchedLo = lo
	}
	if !t.anyTouched || hi > t.touchedHi {
		t.touchedHi = hi
	}
	t.anyTouched = true
}

// ResetInterval clears the touched-range state for the next checkpoint
// interval. The bitmap itself is cleared by the OS.
func (t *Tracker) ResetInterval() {
	t.anyTouched = false
	t.touchedLo, t.touchedHi = 0, 0
}

// SaveState captures MSRs and touched-range state for a context switch.
// Callers must have flushed and reached quiescence first; violating that
// is a kernel bug, so it panics.
func (t *Tracker) SaveState() State {
	if !t.Quiesced() {
		panic("prosper: SaveState before quiescence")
	}
	for i := range t.table {
		if t.table[i].used {
			panic("prosper: SaveState with live table entries")
		}
	}
	return State{
		MSRs:       t.msrs,
		TouchedLo:  t.touchedLo,
		TouchedHi:  t.touchedHi,
		AnyTouched: t.anyTouched,
	}
}

// RestoreState loads a previously saved context.
func (t *Tracker) RestoreState(s State) {
	t.msrs = s.MSRs
	t.touchedLo = s.TouchedLo
	t.touchedHi = s.TouchedHi
	t.anyTouched = s.AnyTouched
}

// LiveEntries returns how many lookup-table entries are in use (tests and
// the energy model).
func (t *Tracker) LiveEntries() int {
	n := 0
	for i := range t.table {
		if t.table[i].used {
			n++
		}
	}
	return n
}

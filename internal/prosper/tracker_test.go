package prosper

import (
	"testing"
	"testing/quick"

	"prosper/internal/mem"
	"prosper/internal/sim"
)

const (
	tStackLo = uint64(0x7000_0000)
	tStackHi = uint64(0x7010_0000) // 1 MiB tracked range
	tBitmap  = uint64(0x10_0000)   // physical DRAM bitmap base
)

// countPort counts accesses and completes them after a fixed latency.
type countPort struct {
	eng     *sim.Engine
	reads   int
	writes  int
	latency sim.Time
}

func (p *countPort) Access(write bool, addr uint64, done sim.Done) {
	if write {
		p.writes++
	} else {
		p.reads++
	}
	if done.Valid() {
		p.eng.ScheduleDone(p.latency, done)
	}
}

func newTestTracker(cfg Config) (*Tracker, *countPort, *mem.Storage, *sim.Engine) {
	eng := sim.NewEngine()
	port := &countPort{eng: eng, latency: 50}
	storage := mem.NewStorage()
	tr := New(eng, port, storage, cfg)
	tr.Configure(tStackLo, tStackHi, tBitmap, 8)
	tr.Enable()
	return tr, port, storage, eng
}

// dirtyGranules returns the set of granule indices with bits set in the
// functional bitmap.
func dirtyGranules(storage *mem.Storage, gran uint64) map[uint64]bool {
	out := map[uint64]bool{}
	words := BitmapBytes(tStackHi-tStackLo, gran) / 4
	for w := uint64(0); w < words; w++ {
		v := storage.ReadU32(tBitmap + w*4)
		for b := uint64(0); b < 32; b++ {
			if v&(1<<b) != 0 {
				out[w*32+b] = true
			}
		}
	}
	return out
}

func TestTrackerFiltersSOIs(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{})
	tr.ObserveStore(0x1000, 8)     // heap: ignored
	tr.ObserveStore(tStackHi, 8)   // one past range: ignored
	tr.ObserveStore(tStackLo-8, 8) // just below: ignored
	tr.ObserveStore(tStackLo, 8)   // first granule
	tr.ObserveStore(tStackHi-8, 8) // last granule
	eng.Run()
	if got := tr.Counters.Get("prosper.sois"); got != 2 {
		t.Fatalf("sois = %d, want 2", got)
	}
}

func TestTrackerDisabled(t *testing.T) {
	tr, _, _, _ := newTestTracker(Config{})
	tr.Disable()
	tr.ObserveStore(tStackLo, 8)
	if tr.Counters.Get("prosper.sois") != 0 {
		t.Fatal("disabled tracker observed a store")
	}
}

func TestTrackerBitmapAfterFlush(t *testing.T) {
	tr, _, storage, eng := newTestTracker(Config{})
	tr.ObserveStore(tStackLo+0, 8)     // granule 0
	tr.ObserveStore(tStackLo+16, 8)    // granule 2
	tr.ObserveStore(tStackLo+257*8, 8) // granule 257 (second word region)
	done := false
	tr.FlushAndWait(func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("flush never quiesced")
	}
	got := dirtyGranules(storage, 8)
	want := map[uint64]bool{0: true, 2: true, 257: true}
	if len(got) != len(want) {
		t.Fatalf("granules = %v, want %v", got, want)
	}
	for g := range want {
		if !got[g] {
			t.Fatalf("missing granule %d", g)
		}
	}
}

func TestTrackerUnalignedStoreSpansGranules(t *testing.T) {
	tr, _, storage, eng := newTestTracker(Config{})
	// 8-byte store at offset 4 touches granules 0 and 1.
	tr.ObserveStore(tStackLo+4, 8)
	tr.FlushAndWait(func() {})
	eng.Run()
	got := dirtyGranules(storage, 8)
	if !got[0] || !got[1] || len(got) != 2 {
		t.Fatalf("granules = %v", got)
	}
}

func TestTrackerCoalescingInTable(t *testing.T) {
	tr, port, _, eng := newTestTracker(Config{HWM: 32}) // HWM off effectively
	// 20 stores within one bitmap word's coverage (32 granules * 8 B = 256 B).
	for i := 0; i < 20; i++ {
		tr.ObserveStore(tStackLo+uint64(i*8), 8)
	}
	if port.writes != 0 || port.reads != 0 {
		t.Fatal("traffic issued before flush despite coalescing")
	}
	tr.FlushAndWait(func() {})
	eng.Run()
	// One writeback: one load (accumulate-apply) + one store.
	if got := tr.Counters.Get("prosper.bitmap_stores"); got != 1 {
		t.Fatalf("bitmap stores = %d, want 1", got)
	}
	if got := tr.Counters.Get("prosper.bitmap_loads"); got != 1 {
		t.Fatalf("bitmap loads = %d, want 1", got)
	}
}

func TestTrackerHWMTriggersWriteback(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{HWM: 4})
	for i := 0; i < 4; i++ {
		tr.ObserveStore(tStackLo+uint64(i*8), 8)
	}
	eng.Run()
	if tr.Counters.Get("prosper.hwm_writebacks") != 1 {
		t.Fatalf("hwm writebacks = %d", tr.Counters.Get("prosper.hwm_writebacks"))
	}
	if tr.LiveEntries() != 0 {
		t.Fatal("entry not freed after HWM writeback")
	}
}

func TestTrackerLWMEviction(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{TableSize: 2, HWM: 32, LWM: 8})
	// Fill two entries with single bits each (popcount 1 < LWM).
	tr.ObserveStore(tStackLo+0*256, 8)
	tr.ObserveStore(tStackLo+1*256, 8)
	// Third distinct word forces an eviction of an LWM victim.
	tr.ObserveStore(tStackLo+2*256, 8)
	eng.Run()
	if tr.Counters.Get("prosper.evictions") != 1 {
		t.Fatalf("evictions = %d", tr.Counters.Get("prosper.evictions"))
	}
	if tr.Counters.Get("prosper.lwm_evictions") != 1 {
		t.Fatalf("lwm evictions = %d", tr.Counters.Get("prosper.lwm_evictions"))
	}
}

func TestTrackerRandomEvictionWhenAllHot(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{TableSize: 2, HWM: 32, LWM: 2})
	// Make both entries hot (popcount >= LWM=2).
	for w := 0; w < 2; w++ {
		for b := 0; b < 3; b++ {
			tr.ObserveStore(tStackLo+uint64(w*256+b*8), 8)
		}
	}
	tr.ObserveStore(tStackLo+2*256, 8)
	eng.Run()
	if tr.Counters.Get("prosper.random_evictions") != 1 {
		t.Fatalf("random evictions = %d", tr.Counters.Get("prosper.random_evictions"))
	}
}

func TestTrackerRedundantStoreSkipped(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{})
	tr.ObserveStore(tStackLo, 8)
	tr.FlushAndWait(func() {})
	eng.Run()
	stores := tr.Counters.Get("prosper.bitmap_stores")
	// Same granule again: merge produces no change, store suppressed,
	// load still issued (accumulate-apply must read to merge).
	tr.ObserveStore(tStackLo, 8)
	tr.FlushAndWait(func() {})
	eng.Run()
	if tr.Counters.Get("prosper.bitmap_stores") != stores {
		t.Fatal("redundant bitmap store not suppressed")
	}
	if tr.Counters.Get("prosper.bitmap_loads") != 2 {
		t.Fatalf("loads = %d, want 2", tr.Counters.Get("prosper.bitmap_loads"))
	}
}

func TestLoadUpdatePolicyTrafficShape(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{Policy: LoadUpdate, HWM: 32})
	tr.ObserveStore(tStackLo, 8)
	tr.ObserveStore(tStackLo+8, 8)
	tr.FlushAndWait(func() {})
	eng.Run()
	// One allocation load, one writeback store, no writeback load.
	if got := tr.Counters.Get("prosper.bitmap_loads"); got != 1 {
		t.Fatalf("loads = %d, want 1", got)
	}
	if got := tr.Counters.Get("prosper.bitmap_stores"); got != 1 {
		t.Fatalf("stores = %d, want 1", got)
	}
}

func TestTouchedRange(t *testing.T) {
	tr, _, _, _ := newTestTracker(Config{})
	if _, _, any := tr.TouchedRange(); any {
		t.Fatal("touched before any store")
	}
	tr.ObserveStore(tStackLo+0x800, 8)
	tr.ObserveStore(tStackLo+0x100, 16)
	lo, hi, any := tr.TouchedRange()
	if !any || lo != tStackLo+0x100 || hi != tStackLo+0x808 {
		t.Fatalf("touched = [%#x,%#x) any=%v", lo, hi, any)
	}
	tr.ResetInterval()
	if _, _, any := tr.TouchedRange(); any {
		t.Fatal("touched survives reset")
	}
}

func TestSaveRestoreState(t *testing.T) {
	tr, _, _, eng := newTestTracker(Config{})
	tr.ObserveStore(tStackLo+64, 8)
	tr.FlushAndWait(func() {})
	eng.Run()
	st := tr.SaveState()
	tr.Configure(0x1000, 0x2000, 0x99, 8) // clobber
	tr.RestoreState(st)
	if got := tr.MSRState(); got.StackLo != tStackLo || got.BitmapBase != tBitmap || !got.Enabled {
		t.Fatalf("restored MSRs = %+v", got)
	}
	lo, _, any := tr.TouchedRange()
	if !any || lo != tStackLo+64 {
		t.Fatal("touched range not restored")
	}
}

func TestSaveStateBeforeFlushPanics(t *testing.T) {
	tr, _, _, _ := newTestTracker(Config{})
	tr.ObserveStore(tStackLo, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with live entries")
		}
	}()
	tr.SaveState()
}

func TestBadGranularityPanics(t *testing.T) {
	tr, _, _, _ := newTestTracker(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for granularity 12")
		}
	}()
	tr.Configure(0, 0x1000, 0, 12)
}

func TestBitmapBytes(t *testing.T) {
	if got := BitmapBytes(1<<20, 8); got != (1<<20)/8/32*4 {
		t.Fatalf("BitmapBytes(1MiB,8) = %d", got)
	}
	if got := BitmapBytes(100, 8); got != 4 {
		t.Fatalf("BitmapBytes(100,8) = %d (13 granules -> 1 word)", got)
	}
	if got := BitmapBytes(4096, 128); got != 4 {
		t.Fatalf("BitmapBytes(4096,128) = %d", got)
	}
}

// The central correctness property of the whole mechanism: for any store
// sequence, after flush+quiesce the set of dirty granules in the bitmap
// equals exactly the set of granules touched by in-range stores.
func TestTrackerExactnessProperty(t *testing.T) {
	f := func(offsets []uint32, sizes []uint8, cfgPick uint8) bool {
		cfgs := []Config{
			{},                              // paper defaults
			{TableSize: 2, HWM: 3, LWM: 2},  // tiny, eviction-heavy
			{Policy: LoadUpdate},            // alternative policy
			{TableSize: 4, HWM: 30, LWM: 1}, // random evictions likely
		}
		cfg := cfgs[int(cfgPick)%len(cfgs)]
		tr, _, storage, eng := newTestTracker(cfg)
		want := map[uint64]bool{}
		for i, off := range offsets {
			size := 1
			if i < len(sizes) {
				size = int(sizes[i]%16) + 1
			}
			addr := tStackLo + uint64(off)%(tStackHi-tStackLo-16)
			tr.ObserveStore(addr, size)
			for g := (addr - tStackLo) / 8; g <= (addr+uint64(size)-1-tStackLo)/8; g++ {
				want[g] = true
			}
		}
		quiet := false
		tr.FlushAndWait(func() { quiet = true })
		eng.Run()
		if !quiet {
			return false
		}
		got := dirtyGranules(storage, 8)
		if len(got) != len(want) {
			return false
		}
		for g := range want {
			if !got[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Inspect's coalesced ranges exactly cover the dirty granules.
func TestInspectRoundTripProperty(t *testing.T) {
	f := func(offsets []uint32) bool {
		tr, _, storage, eng := newTestTracker(Config{})
		want := map[uint64]bool{}
		for _, off := range offsets {
			addr := tStackLo + uint64(off)%(tStackHi-tStackLo-8)
			tr.ObserveStore(addr, 8)
			for g := (addr - tStackLo) / 8; g <= (addr+7-tStackLo)/8; g++ {
				want[g] = true
			}
		}
		tr.FlushAndWait(func() {})
		eng.Run()
		lo, hi, any := tr.TouchedRange()
		res := Inspect(storage, tr.MSRState(), lo, hi, any)
		covered := map[uint64]bool{}
		for _, r := range res.Ranges {
			if r.Size == 0 || r.Addr%8 != 0 {
				return false
			}
			for g := (r.Addr - tStackLo) / 8; g < (r.Addr+r.Size-tStackLo)/8; g++ {
				if covered[g] {
					return false // overlapping ranges
				}
				covered[g] = true
			}
		}
		if len(covered) != len(want) {
			return false
		}
		for g := range want {
			if !covered[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInspectCoalescesAdjacent(t *testing.T) {
	tr, _, storage, eng := newTestTracker(Config{})
	// Three adjacent granules + one distant: expect exactly 2 ranges.
	for i := 0; i < 3; i++ {
		tr.ObserveStore(tStackLo+uint64(i*8), 8)
	}
	tr.ObserveStore(tStackLo+0x1000, 8)
	tr.FlushAndWait(func() {})
	eng.Run()
	lo, hi, any := tr.TouchedRange()
	res := Inspect(storage, tr.MSRState(), lo, hi, any)
	if len(res.Ranges) != 2 {
		t.Fatalf("ranges = %+v", res.Ranges)
	}
	if res.Ranges[0].Size != 24 {
		t.Fatalf("first range size = %d, want 24", res.Ranges[0].Size)
	}
	if res.DirtyBytes != 32 {
		t.Fatalf("dirty bytes = %d, want 32", res.DirtyBytes)
	}
}

func TestInspectCrossWordRun(t *testing.T) {
	tr, _, storage, eng := newTestTracker(Config{})
	// Granules 30..33 span the word boundary; must coalesce to one range.
	for g := 30; g <= 33; g++ {
		tr.ObserveStore(tStackLo+uint64(g*8), 8)
	}
	tr.FlushAndWait(func() {})
	eng.Run()
	lo, hi, any := tr.TouchedRange()
	res := Inspect(storage, tr.MSRState(), lo, hi, any)
	if len(res.Ranges) != 1 || res.Ranges[0].Size != 32 {
		t.Fatalf("ranges = %+v", res.Ranges)
	}
}

func TestClearBitmap(t *testing.T) {
	tr, _, storage, eng := newTestTracker(Config{})
	tr.ObserveStore(tStackLo, 8)
	tr.ObserveStore(tStackLo+0x2000, 8)
	tr.FlushAndWait(func() {})
	eng.Run()
	lo, hi, any := tr.TouchedRange()
	n := Clear(storage, tr.MSRState(), lo, hi, any)
	if n != 2 {
		t.Fatalf("cleared words = %d, want 2", n)
	}
	if len(dirtyGranules(storage, 8)) != 0 {
		t.Fatal("bits survived clear")
	}
}

func TestInspectEmptyWindow(t *testing.T) {
	_, _, storage, _ := newTestTracker(Config{})
	res := Inspect(storage, MSRs{StackLo: tStackLo, StackHi: tStackHi, BitmapBase: tBitmap, Gran: 8}, 0, 0, false)
	if len(res.Ranges) != 0 || res.DirtyBytes != 0 {
		t.Fatal("empty window produced ranges")
	}
}

func TestTrackerGranularity128(t *testing.T) {
	eng := sim.NewEngine()
	port := &countPort{eng: eng, latency: 10}
	storage := mem.NewStorage()
	tr := New(eng, port, storage, Config{})
	tr.Configure(tStackLo, tStackHi, tBitmap, 128)
	tr.Enable()
	tr.ObserveStore(tStackLo+5, 8)   // granule 0
	tr.ObserveStore(tStackLo+130, 8) // granule 1
	tr.ObserveStore(tStackLo+127, 2) // spans granules 0,1
	tr.FlushAndWait(func() {})
	eng.Run()
	lo, hi, any := tr.TouchedRange()
	res := Inspect(storage, tr.MSRState(), lo, hi, any)
	if res.DirtyBytes != 256 {
		t.Fatalf("dirty bytes = %d, want 256 (2 granules x 128B)", res.DirtyBytes)
	}
}

// Benchmark used by the ablation study: alloc policies under a
// call-return-heavy pattern.
func BenchmarkObserveStore(b *testing.B) {
	tr, _, _, eng := newTestTracker(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ObserveStore(tStackLo+uint64(i%4096)*8, 8)
		if i%1024 == 0 {
			eng.RunUntil(eng.Now() + 100)
		}
	}
	eng.Run()
}

package prosper

// AutoTuner implements the dynamic HWM/LWM scheme the paper leaves as
// future work (Section V: "a dynamic scheme based on the access pattern
// is left as a future direction"). The OS calls Adjust at every interval
// boundary; the tuner reads the tracker's counters for the elapsed
// interval and steers the thresholds:
//
//   - When HWM writebacks dominate evictions, the workload has spatial
//     locality: raising the HWM lets entries coalesce longer (SSSP's
//     trend in Figure 13a).
//   - When evictions dominate, the table is churning on a scattered
//     working set: lowering the HWM frees slots proactively (mcf's
//     trend in Figure 13c).
//   - When random evictions outnumber LWM evictions, the LWM is too
//     strict to find victims: raising it makes more entries eligible
//     (mcf benefits from more evictions, Figure 13d).
type AutoTuner struct {
	tracker *Tracker

	MinHWM, MaxHWM int
	MinLWM, MaxLWM int

	lastHWMWB    uint64
	lastEvict    uint64
	lastRandEv   uint64
	lastLWMEvict uint64

	Adjustments int
}

// NewAutoTuner wraps a tracker with default bounds (HWM 8..30, LWM 2..12).
func NewAutoTuner(tr *Tracker) *AutoTuner {
	return &AutoTuner{tracker: tr, MinHWM: 8, MaxHWM: 30, MinLWM: 2, MaxLWM: 12}
}

// Thresholds returns the tracker's current settings.
func (a *AutoTuner) Thresholds() (hwm, lwm int) {
	return a.tracker.cfg.HWM, a.tracker.cfg.LWM
}

// Adjust reads the interval's counter deltas and steers the thresholds.
// It must be called at an interval boundary (table flushed).
func (a *AutoTuner) Adjust() {
	c := a.tracker.Counters
	hwmWB := c.Get("prosper.hwm_writebacks") - a.lastHWMWB
	evict := c.Get("prosper.evictions") - a.lastEvict
	randEv := c.Get("prosper.random_evictions") - a.lastRandEv
	lwmEv := c.Get("prosper.lwm_evictions") - a.lastLWMEvict
	a.lastHWMWB = c.Get("prosper.hwm_writebacks")
	a.lastEvict = c.Get("prosper.evictions")
	a.lastRandEv = c.Get("prosper.random_evictions")
	a.lastLWMEvict = c.Get("prosper.lwm_evictions")

	cfg := &a.tracker.cfg
	switch {
	case hwmWB > 2*evict && cfg.HWM < a.MaxHWM:
		cfg.HWM += 4
		if cfg.HWM > a.MaxHWM {
			cfg.HWM = a.MaxHWM
		}
		a.Adjustments++
	case evict > 2*hwmWB && evict > 0 && cfg.HWM > a.MinHWM:
		cfg.HWM -= 4
		if cfg.HWM < a.MinHWM {
			cfg.HWM = a.MinHWM
		}
		a.Adjustments++
	}
	// The LWM only ever rises: random evictions mean the policy cannot
	// find victims, so more entries must become eligible. LWM evictions
	// dominating is the healthy state, not a signal to tighten — a
	// tighten rule would oscillate against the raise rule.
	if randEv > lwmEv && randEv > 0 && cfg.LWM < a.MaxLWM {
		cfg.LWM += 2
		a.Adjustments++
	}
}

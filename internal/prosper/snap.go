package prosper

import (
	"fmt"

	"prosper/internal/snapbuf"
)

// SaveSnap encodes one tracker for a simulator snapshot. Snapshots are
// taken at checkpoint commits, where the kernel has already flushed the
// table and polled for quiescence, so only MSRs, the touched range, the
// victim RNG, and statistics remain; a tracker with live entries or
// outstanding bitmap traffic rejects the snapshot point.
func (t *Tracker) SaveSnap(w *snapbuf.Writer) error {
	if !t.Quiesced() {
		return fmt.Errorf("prosper: tracker has outstanding bitmap traffic at snapshot point")
	}
	if t.LiveEntries() != 0 {
		return fmt.Errorf("prosper: tracker has live table entries at snapshot point")
	}
	w.U64(t.msrs.StackLo)
	w.U64(t.msrs.StackHi)
	w.U64(t.msrs.BitmapBase)
	w.U64(t.msrs.Gran)
	w.Bool(t.msrs.Enabled)
	w.U64(t.touchedLo)
	w.U64(t.touchedHi)
	w.Bool(t.anyTouched)
	w.U64(t.rng.State())
	t.Counters.SaveSnap(w)
	t.Histograms.SaveSnap(w)
	return nil
}

// LoadSnap restores a tracker saved by SaveSnap.
func (t *Tracker) LoadSnap(r *snapbuf.Reader) error {
	t.msrs.StackLo = r.U64()
	t.msrs.StackHi = r.U64()
	t.msrs.BitmapBase = r.U64()
	t.msrs.Gran = r.U64()
	t.msrs.Enabled = r.Bool()
	t.touchedLo = r.U64()
	t.touchedHi = r.U64()
	t.anyTouched = r.Bool()
	t.rng.SetState(r.U64())
	if r.Err() != nil {
		return r.Err()
	}
	if err := t.Counters.LoadSnap(r); err != nil {
		return err
	}
	return t.Histograms.LoadSnap(r)
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersBasic(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("b", 10)
	c.Inc("a")
	if c.Get("a") != 2 {
		t.Fatalf("a = %d, want 2", c.Get("a"))
	}
	if c.Get("b") != 10 {
		t.Fatalf("b = %d, want 10", c.Get("b"))
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter should read zero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestCountersResetKeepsOrder(t *testing.T) {
	c := NewCounters()
	c.Inc("x")
	c.Inc("y")
	c.Reset()
	if c.Get("x") != 0 || c.Get("y") != 0 {
		t.Fatal("reset did not zero counters")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "x" {
		t.Fatalf("order lost after reset: %v", names)
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	c := NewCounters()
	c.Add("a", 5)
	snap := c.Snapshot()
	c.Add("a", 5)
	if snap["a"] != 5 {
		t.Fatal("snapshot mutated by later Add")
	}
}

func TestDistributionMoments(t *testing.T) {
	var d Distribution
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Observe(v)
	}
	if d.N() != 8 {
		t.Fatalf("N = %d", d.N())
	}
	if math.Abs(d.Mean()-5) > 1e-9 {
		t.Fatalf("mean = %f", d.Mean())
	}
	if math.Abs(d.Stddev()-2) > 1e-9 {
		t.Fatalf("stddev = %f", d.Stddev())
	}
	if d.Max() != 9 || d.Min() != 2 {
		t.Fatalf("min/max = %f/%f", d.Min(), d.Max())
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.Stddev() != 0 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Fatal("empty distribution should report zeros")
	}
}

func TestDistributionPercentile(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if got := d.Percentile(50); got != 50 {
		t.Fatalf("p50 = %f", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Fatalf("p100 = %f", got)
	}
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 = %f", got)
	}
}

// Property: percentile is monotonic in p and bounded by min/max.
func TestPercentileMonotonicProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var d Distribution
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			d.Observe(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := d.Percentile(pa), d.Percentile(pb)
		return va <= vb && va >= d.Min() && vb <= d.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4, 16})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean = %f, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("geomean of empty should be 0")
	}
	if g := GeoMean([]float64{-1, 0, 8}); math.Abs(g-8) > 1e-9 {
		t.Fatalf("geomean skipping non-positives = %f, want 8", g)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 12345.0)
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	if !strings.Contains(out, "1.5000") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

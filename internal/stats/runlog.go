package stats

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// RunRecord is one completed simulation run: its display name, how much
// simulated time it covered (in cycles), and how long it took for real.
type RunRecord struct {
	Name      string
	SimCycles int64
	Wall      time.Duration
}

// RunLog collects per-run timing records from a (possibly concurrent)
// experiment executor and optionally streams them to a writer as they
// arrive. It is safe for concurrent use; records are kept in completion
// order, which — unlike result order — may vary between runs.
type RunLog struct {
	mu    sync.Mutex
	w     io.Writer
	jsonW io.Writer
	recs  []RunRecord
}

// NewRunLog returns a RunLog that streams each record to w (nil w keeps
// records without streaming).
func NewRunLog(w io.Writer) *RunLog { return &RunLog{w: w} }

// StreamJSON attaches a second, machine-parseable sink: each record is
// also written to w as one JSON line
// ({"run":...,"sim_cycles":...,"wall_seconds":...}) as it arrives. The
// human-readable stream (and stdout) are unaffected. Records arrive in
// completion order, so line order may vary between parallel runs.
func (l *RunLog) StreamJSON(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.jsonW = w
}

// Record appends one run record and, if a writer is attached, prints a
// single progress line: name, simulated cycles, and wall seconds, plus
// the resulting simulation rate.
func (l *RunLog) Record(r RunRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, r)
	if l.jsonW != nil {
		fmt.Fprintf(l.jsonW, `{"run":%q,"sim_cycles":%d,"wall_seconds":%.6f}`+"\n",
			r.Name, r.SimCycles, r.Wall.Seconds())
	}
	if l.w == nil {
		return
	}
	rate := ""
	if s := r.Wall.Seconds(); s > 0 {
		rate = fmt.Sprintf("  (%.1f Mcycles/s)", float64(r.SimCycles)/s/1e6)
	}
	fmt.Fprintf(l.w, "  run %-44s %12d cycles  %7.3fs%s\n", r.Name, r.SimCycles, r.Wall.Seconds(), rate)
}

// Records returns a copy of the records collected so far, in completion
// order.
func (l *RunLog) Records() []RunRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RunRecord, len(l.recs))
	copy(out, l.recs)
	return out
}

// Summary renders the collected records as a table plus a totals row:
// the cumulative simulated cycles and the cumulative wall time across
// runs (which exceeds elapsed wall time when runs execute in parallel).
func (l *RunLog) Summary() *Table {
	l.mu.Lock()
	defer l.mu.Unlock()
	tb := NewTable("Run log (completion order)", "run", "sim_cycles", "wall_seconds")
	var cycles int64
	var wall time.Duration
	for _, r := range l.recs {
		tb.AddRow(r.Name, r.SimCycles, r.Wall.Seconds())
		cycles += r.SimCycles
		wall += r.Wall
	}
	tb.AddRow("TOTAL", cycles, wall.Seconds())
	return tb
}

package stats

import (
	"fmt"
	"strings"
)

// Table renders rows of labelled values as an aligned ASCII table, used by
// the experiment harnesses to print paper-style figures as text.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; each cell is formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted cell contents.
func (t *Table) Rows() [][]string { return t.rows }

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram accumulates non-negative integer samples (cycle latencies,
// byte counts, occupancies) into power-of-two buckets. Bucket i holds
// samples v with bits.Len64(v) == i, i.e. bucket 0 holds exactly v=0 and
// bucket i>0 holds [2^(i-1), 2^i - 1]. All state is integral, so
// serialized output is deterministic across platforms, and recording is
// a couple of integer ops — cheap enough for per-access hot paths.
//
// All methods are safe on a nil receiver: Observe is a no-op and the
// queries return zeros, mirroring the nil-tracer fast path in telemetry.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest sample, or zero when empty.
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or zero when empty.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, or zero when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// BucketUpper returns the inclusive upper edge of bucket i: 0 for
// bucket 0, 2^i - 1 otherwise.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile returns the upper edge of the bucket holding the q-th
// quantile (q in [0,1]) by nearest rank, clamped to the observed max,
// or zero when empty. Because edges quantize to 2^i - 1, the result is
// an upper bound on the true sample quantile that is exact for
// power-of-two-minus-one values; the clamp keeps every quantile within
// [min, max] (without it, a p50 landing in the max's bucket could
// report above the max itself).
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest rank r (1-based) with r >= q*count.
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			if v := BucketUpper(i); v < h.max {
				return v
			}
			return h.max
		}
	}
	return h.max
}

// Merge adds other's samples into h. Merging is associative and
// commutative: any grouping of Merge calls yields the same state as
// observing every sample into one histogram. No-op when either side is
// nil.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	*h = Histogram{}
}

// Snapshot returns a copy of the histogram (nil-safe; an empty copy for
// a nil receiver).
func (h *Histogram) Snapshot() Histogram {
	if h == nil {
		return Histogram{}
	}
	return *h
}

// String renders the non-empty buckets one per line, for debugging.
func (h *Histogram) String() string {
	if h == nil || h.count == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d sum=%d min=%d max=%d\n", h.count, h.sum, h.min, h.max)
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = BucketUpper(i-1) + 1
		}
		fmt.Fprintf(&b, "  [%d..%d] %d\n", lo, BucketUpper(i), n)
	}
	return b.String()
}

// Histograms is a named, ordered set of histograms, the distribution
// counterpart of Counters: components own one set, and the metrics
// registry serializes it deterministically in registration order.
type Histograms struct {
	byName map[string]*Histogram
	order  []string
}

// NewHistograms returns an empty histogram set.
func NewHistograms() *Histograms {
	return &Histograms{byName: make(map[string]*Histogram)}
}

// New registers (or returns the existing) histogram under name.
func (hs *Histograms) New(name string) *Histogram {
	if hs == nil {
		return nil
	}
	if h, ok := hs.byName[name]; ok {
		return h
	}
	h := NewHistogram()
	hs.byName[name] = h
	hs.order = append(hs.order, name)
	return h
}

// Get returns the named histogram, or nil if absent.
func (hs *Histograms) Get(name string) *Histogram {
	if hs == nil {
		return nil
	}
	return hs.byName[name]
}

// Names returns histogram names in registration order.
func (hs *Histograms) Names() []string {
	if hs == nil {
		return nil
	}
	out := make([]string, len(hs.order))
	copy(out, hs.order)
	return out
}

// Reset clears every histogram but keeps registrations.
func (hs *Histograms) Reset() {
	if hs == nil {
		return
	}
	for _, h := range hs.byName {
		h.Reset()
	}
}

package stats

import (
	"math/rand"
	"testing"
)

// TestHistogramBucketEdges pins the log2 bucketing rule: bucket 0 holds
// exactly v=0, bucket i>0 holds [2^(i-1), 2^i - 1].
func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{^uint64(0), 64},
	}
	for _, tc := range cases {
		h := NewHistogram()
		h.Observe(tc.v)
		if got := h.buckets[tc.bucket]; got != 1 {
			t.Errorf("Observe(%d): bucket %d = %d, want 1", tc.v, tc.bucket, got)
		}
		// The quantile of a single sample is its bucket's upper edge
		// clamped to the observed max, i.e. the sample itself.
		if got := h.Quantile(0.5); got != tc.v {
			t.Errorf("Observe(%d): Quantile(0.5) = %d, want %d", tc.v, got, tc.v)
		}
		if h.Min() != tc.v || h.Max() != tc.v || h.Sum() != tc.v || h.Count() != 1 {
			t.Errorf("Observe(%d): min/max/sum/count = %d/%d/%d/%d",
				tc.v, h.Min(), h.Max(), h.Sum(), h.Count())
		}
	}
}

func TestBucketUpper(t *testing.T) {
	if BucketUpper(0) != 0 || BucketUpper(-1) != 0 {
		t.Fatalf("BucketUpper(<=0) must be 0")
	}
	if BucketUpper(1) != 1 || BucketUpper(3) != 7 || BucketUpper(10) != 1023 {
		t.Fatalf("BucketUpper small edges wrong: %d %d %d",
			BucketUpper(1), BucketUpper(3), BucketUpper(10))
	}
	if BucketUpper(64) != ^uint64(0) || BucketUpper(99) != ^uint64(0) {
		t.Fatalf("BucketUpper(>=64) must saturate")
	}
}

// TestHistogramZeroSamples: every query on an empty (or nil) histogram
// returns zero rather than panicking or yielding NaN.
func TestHistogramZeroSamples(t *testing.T) {
	for _, h := range []*Histogram{NewHistogram(), nil} {
		if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
			t.Errorf("empty histogram scalars non-zero")
		}
		if h.Mean() != 0 {
			t.Errorf("empty Mean = %v, want 0", h.Mean())
		}
		for _, q := range []float64{0, 0.5, 0.95, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
			}
		}
	}
	// Observing on nil is a no-op, not a crash.
	var nilH *Histogram
	nilH.Observe(42)
	nilH.Merge(NewHistogram())
	nilH.Reset()
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 samples of value 10 (bucket 4, upper edge 15) and one of 1000
	// (bucket 10, upper edge 1023).
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	h.Observe(1000)
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("p50 = %d, want 15", got)
	}
	if got := h.Quantile(0.95); got != 15 {
		t.Errorf("p95 = %d, want 15", got)
	}
	// The max's bucket edge (1023) exceeds the max itself; the clamp
	// keeps the reported quantile at the observed max.
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
	if got := h.Quantile(0); got != 15 {
		t.Errorf("p0 (rank 1) = %d, want 15", got)
	}
	if h.Min() != 10 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d, want 10/1000", h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got > h.Max() {
			t.Errorf("Quantile(%v) = %d exceeds Max %d", q, got, h.Max())
		}
	}
}

// TestHistogramMergeAssociative: ((a+b)+c) == (a+(b+c)) == one histogram
// observing every sample, for randomized sample sets.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sets := make([][]uint64, 3)
	for i := range sets {
		n := 50 + rng.Intn(100)
		for j := 0; j < n; j++ {
			sets[i] = append(sets[i], uint64(rng.Int63n(1<<30)))
		}
	}
	fill := func(samples ...[]uint64) *Histogram {
		h := NewHistogram()
		for _, s := range samples {
			for _, v := range s {
				h.Observe(v)
			}
		}
		return h
	}
	all := fill(sets...)

	left := fill(sets[0])
	left.Merge(fill(sets[1]))
	left.Merge(fill(sets[2]))

	bc := fill(sets[1])
	bc.Merge(fill(sets[2]))
	right := fill(sets[0])
	right.Merge(bc)

	for _, m := range []*Histogram{left, right} {
		if *m != *all {
			t.Fatalf("merge not associative/equivalent:\n got %v\nwant %v", *m, *all)
		}
	}
	// Merging an empty histogram is the identity.
	before := *all
	all.Merge(NewHistogram())
	all.Merge(nil)
	if *all != before {
		t.Fatalf("merge with empty changed state")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(7)
	h.Observe(9)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("Reset left state behind: %v", h)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	if h.String() != "(empty)\n" {
		t.Fatalf("empty String = %q", h.String())
	}
	h.Observe(0)
	h.Observe(5)
	s := h.String()
	if s == "" || s == "(empty)\n" {
		t.Fatalf("String after samples = %q", s)
	}
}

func TestHistogramsSet(t *testing.T) {
	hs := NewHistograms()
	a := hs.New("b_second") // registration order, not lexical order
	b := hs.New("a_first")
	if hs.New("b_second") != a {
		t.Fatalf("New must return the existing histogram")
	}
	a.Observe(4)
	b.Observe(8)
	names := hs.Names()
	if len(names) != 2 || names[0] != "b_second" || names[1] != "a_first" {
		t.Fatalf("Names = %v, want registration order", names)
	}
	if hs.Get("b_second").Count() != 1 || hs.Get("missing") != nil {
		t.Fatalf("Get misbehaved")
	}
	hs.Reset()
	if a.Count() != 0 || b.Count() != 0 {
		t.Fatalf("Reset did not clear members")
	}
	// Nil set: every method is a safe no-op.
	var nilHS *Histograms
	if nilHS.New("x") != nil || nilHS.Get("x") != nil || nilHS.Names() != nil {
		t.Fatalf("nil Histograms must act empty")
	}
	nilHS.Reset()
}

func TestCounterHandles(t *testing.T) {
	c := NewCounters()
	h := c.Handle("hits")
	h.Inc()
	h.Add(4)
	if got := c.Get("hits"); got != 5 {
		t.Fatalf("handle writes: Get = %d, want 5", got)
	}
	if h.Get() != 5 {
		t.Fatalf("Counter.Get = %d, want 5", h.Get())
	}
	// Handles survive later registrations growing the set.
	for i := 0; i < 100; i++ {
		c.Inc("other" + string(rune('a'+i%26)))
	}
	h.Inc()
	if got := c.Get("hits"); got != 6 {
		t.Fatalf("handle stale after growth: Get = %d, want 6", got)
	}
	// Mixed access: name-based ops see handle writes and vice versa.
	c.Add("hits", 10)
	if h.Get() != 16 {
		t.Fatalf("mixed access: handle Get = %d, want 16", h.Get())
	}
	c.Reset()
	if h.Get() != 0 {
		t.Fatalf("Reset must zero handle slots")
	}
	// Zero handle and nil set are safe no-ops.
	var zero Counter
	zero.Inc()
	zero.Add(3)
	if zero.Get() != 0 {
		t.Fatalf("zero handle must read 0")
	}
	var nilC *Counters
	nh := nilC.Handle("x")
	nh.Inc()
	if nh.Get() != 0 {
		t.Fatalf("nil Counters handle must be a no-op sink")
	}
}

// BenchmarkHistogramObserve measures the live hot path: a couple of
// integer ops, no allocation.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 0xfff)
	}
}

// BenchmarkHistogramObserveNil measures the disabled fast path.
func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) & 0xfff)
	}
}

// BenchmarkCounterHandle measures the precomputed-handle hot path that
// replaces per-access name concatenation.
func BenchmarkCounterHandle(b *testing.B) {
	c := NewCounters()
	h := c.Handle("cache.hits")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Inc()
	}
}

// BenchmarkCounterNameConcat measures the old pattern the handles
// replace: composing the key on every increment.
func BenchmarkCounterNameConcat(b *testing.B) {
	c := NewCounters()
	name := "cache"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(name + ".hits")
	}
}

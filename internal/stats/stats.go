// Package stats provides the counters, distributions, and table rendering
// used by every simulated component and by the experiment harnesses.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a named set of monotonically increasing counters. The zero
// value is not ready; use NewCounters.
//
// Each counter lives in its own heap slot, so a Counter handle obtained
// with Handle stays valid as the set grows. Hot paths should hold a
// handle instead of calling Add/Inc with a composed name: the handle
// variants are a single pointer dereference with no map lookup and no
// string concatenation.
type Counters struct {
	values map[string]*uint64
	order  []string
}

// Counter is a cheap handle to one counter slot inside a Counters set.
// The zero value is a valid no-op sink, which lets components keep
// unconditional Inc/Add calls even when metrics are disabled.
type Counter struct {
	v *uint64
}

// Inc increments the counter by one. No-op on the zero handle.
func (h Counter) Inc() {
	if h.v != nil {
		*h.v++
	}
}

// Add increments the counter by delta. No-op on the zero handle.
func (h Counter) Add(delta uint64) {
	if h.v != nil {
		*h.v += delta
	}
}

// Get returns the current value (zero for the zero handle).
func (h Counter) Get() uint64 {
	if h.v == nil {
		return 0
	}
	return *h.v
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]*uint64)}
}

// slot returns the value cell for name, creating it on first use.
func (c *Counters) slot(name string) *uint64 {
	p, ok := c.values[name]
	if !ok {
		p = new(uint64) //prosperlint:ignore hotalloc first-use only: counter cells allocate once per distinct key
		c.values[name] = p
		c.order = append(c.order, name) //prosperlint:ignore hotalloc first-use only: counter cells allocate once per distinct key
	}
	return p
}

// Handle registers name (if new) and returns a stable handle to its
// slot. Handles remain valid for the lifetime of the set.
func (c *Counters) Handle(name string) Counter {
	if c == nil {
		return Counter{}
	}
	return Counter{v: c.slot(name)}
}

// Add increments the named counter by delta, creating it on first use.
func (c *Counters) Add(name string, delta uint64) { *c.slot(name) += delta }

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of the named counter (zero if never touched).
func (c *Counters) Get(name string) uint64 {
	if p, ok := c.values[name]; ok {
		return *p
	}
	return 0
}

// Set overwrites the named counter.
func (c *Counters) Set(name string, v uint64) { *c.slot(name) = v }

// Names returns counter names in first-use order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Reset zeroes all counters but keeps their registration order.
func (c *Counters) Reset() {
	for _, p := range c.values {
		*p = 0
	}
}

// Snapshot returns a copy of the current values.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.values))
	for k, p := range c.values {
		out[k] = *p
	}
	return out
}

// String renders the counters one per line in registration order.
func (c *Counters) String() string {
	var b strings.Builder
	for _, name := range c.order {
		fmt.Fprintf(&b, "%-40s %d\n", name, *c.values[name])
	}
	return b.String()
}

// Distribution accumulates scalar samples and reports summary statistics.
type Distribution struct {
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (d *Distribution) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N returns the number of samples.
func (d *Distribution) N() int { return len(d.samples) }

// Sum returns the sum of all samples.
func (d *Distribution) Sum() float64 {
	s := 0.0
	for _, v := range d.samples {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or zero for an empty distribution.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.Sum() / float64(len(d.samples))
}

// Stddev returns the population standard deviation.
func (d *Distribution) Stddev() float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	m := d.Mean()
	ss := 0.0
	for _, v := range d.samples {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n))
}

// Max returns the largest sample, or zero for an empty distribution.
func (d *Distribution) Max() float64 {
	out := 0.0
	for i, v := range d.samples {
		if i == 0 || v > out {
			out = v
		}
	}
	return out
}

// Min returns the smallest sample, or zero for an empty distribution.
func (d *Distribution) Min() float64 {
	out := 0.0
	for i, v := range d.samples {
		if i == 0 || v < out {
			out = v
		}
	}
	return out
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank on the sorted samples.
func (d *Distribution) Percentile(p float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[len(d.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(d.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return d.samples[rank]
}

// GeoMean computes the geometric mean of positive values; non-positive
// inputs are skipped.
func GeoMean(values []float64) float64 {
	logSum := 0.0
	n := 0
	for _, v := range values {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

package stats

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunLogStreamsAndSummarizes(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	l.Record(RunRecord{Name: "fig8/gapbs_pr/base", SimCycles: 600_000, Wall: 20 * time.Millisecond})
	l.Record(RunRecord{Name: "fig8/gapbs_pr/prosper", SimCycles: 300_000, Wall: 10 * time.Millisecond})

	if n := len(l.Records()); n != 2 {
		t.Fatalf("records = %d", n)
	}
	out := buf.String()
	for _, want := range []string{"fig8/gapbs_pr/base", "600000 cycles", "Mcycles/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stream output missing %q:\n%s", want, out)
		}
	}
	sum := l.Summary().String()
	for _, want := range []string{"TOTAL", "900000", "fig8/gapbs_pr/prosper"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestRunLogConcurrentRecords(t *testing.T) {
	l := NewRunLog(nil) // nil writer: collect only
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Record(RunRecord{Name: "r", SimCycles: 1, Wall: time.Microsecond})
		}()
	}
	wg.Wait()
	if n := len(l.Records()); n != 32 {
		t.Fatalf("records = %d, want 32", n)
	}
}

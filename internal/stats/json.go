package stats

import (
	"encoding/json"
	"io"
)

// TableJSON is the machine-readable form of a Table, mirroring the role
// of the paper artifact's stats-parsing scripts: each row becomes a map
// from header to cell string.
type TableJSON struct {
	Title   string              `json:"title"`
	Headers []string            `json:"headers"`
	Rows    []map[string]string `json:"rows"`
}

// JSON converts the table for export.
func (t *Table) JSON() TableJSON {
	out := TableJSON{Title: t.Title, Headers: t.Headers}
	for _, row := range t.rows {
		m := make(map[string]string, len(row))
		for i, cell := range row {
			if i < len(t.Headers) {
				m[t.Headers[i]] = cell
			}
		}
		out.Rows = append(out.Rows, m)
	}
	return out
}

// WriteJSON encodes the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.JSON())
}

package stats

import (
	"strings"
	"testing"
)

func TestChartRendersBarsProportionally(t *testing.T) {
	c := NewChart("Demo", "x")
	c.SetWidth(10)
	c.Add("big", 10)
	c.Add("half", 5)
	c.Add("zero", 0)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 3 bars
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("big bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#####") || strings.Contains(lines[2], "######") {
		t.Fatalf("half bar wrong: %q", lines[2])
	}
	if strings.Contains(lines[3], "#") {
		t.Fatalf("zero bar drawn: %q", lines[3])
	}
}

func TestChartTinyValueVisible(t *testing.T) {
	c := NewChart("", "")
	c.SetWidth(20)
	c.Add("huge", 1000)
	c.Add("tiny", 0.01)
	out := c.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "tiny") && !strings.Contains(line, "#") {
			t.Fatal("tiny non-zero value rendered invisible")
		}
	}
}

func TestChartNegativeClamped(t *testing.T) {
	c := NewChart("", "")
	c.Add("neg", -5)
	if c.NumRows() != 1 || strings.Contains(c.String(), "#") {
		t.Fatal("negative value not clamped")
	}
}

func TestChartFromTable(t *testing.T) {
	tb := NewTable("fig", "bench", "mech", "norm")
	tb.AddRow("a", "prosper", 1.5)
	tb.AddRow("a", "ssp", 3.0)
	tb.AddRow("a", "romulus", "n/a") // unparsable: skipped
	ch := ChartFromTable(tb, "Fig", "x", "norm", "bench", "mech")
	if ch.NumRows() != 2 {
		t.Fatalf("rows = %d", ch.NumRows())
	}
	out := ch.String()
	if !strings.Contains(out, "a/prosper") || !strings.Contains(out, "a/ssp") {
		t.Fatalf("labels missing:\n%s", out)
	}
}

func TestChartFromTableMissingColumn(t *testing.T) {
	tb := NewTable("fig", "x")
	tb.AddRow("v")
	ch := ChartFromTable(tb, "t", "", "nope", "x")
	if ch.NumRows() != 0 {
		t.Fatal("chart built from missing column")
	}
}

package stats

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.AddRow("a", 1.5)
	tb.AddRow("b", 42)
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got TableJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "T" || len(got.Rows) != 2 {
		t.Fatalf("decoded: %+v", got)
	}
	if got.Rows[0]["name"] != "a" || got.Rows[0]["value"] != "1.5000" {
		t.Fatalf("row 0: %+v", got.Rows[0])
	}
	if got.Rows[1]["value"] != "42" {
		t.Fatalf("row 1: %+v", got.Rows[1])
	}
}

func TestTableJSONEmpty(t *testing.T) {
	tb := NewTable("empty", "h")
	j := tb.JSON()
	if len(j.Rows) != 0 || len(j.Headers) != 1 {
		t.Fatalf("%+v", j)
	}
}

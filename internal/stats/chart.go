package stats

import (
	"fmt"
	"strings"
)

// Chart renders a labelled series of values as a horizontal ASCII bar
// chart — the textual stand-in for the paper's figures when a table of
// numbers is hard to eyeball.
type Chart struct {
	Title string
	Unit  string
	rows  []chartRow
	width int
}

type chartRow struct {
	label string
	value float64
}

// NewChart builds a chart with the given title and value unit.
func NewChart(title, unit string) *Chart {
	return &Chart{Title: title, Unit: unit, width: 48}
}

// SetWidth overrides the maximum bar width in characters.
func (c *Chart) SetWidth(w int) {
	if w > 0 {
		c.width = w
	}
}

// Add appends one bar. Negative values are clamped to zero.
func (c *Chart) Add(label string, value float64) {
	if value < 0 {
		value = 0
	}
	c.rows = append(c.rows, chartRow{label: label, value: value})
}

// NumRows returns the number of bars added.
func (c *Chart) NumRows() int { return len(c.rows) }

// String renders the chart. Bars scale to the maximum value; each row
// shows the label, the bar, and the numeric value.
func (c *Chart) String() string {
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	labelW, maxV := 0, 0.0
	for _, r := range c.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
		if r.value > maxV {
			maxV = r.value
		}
	}
	for _, r := range c.rows {
		bar := 0
		if maxV > 0 {
			bar = int(r.value / maxV * float64(c.width))
		}
		if r.value > 0 && bar == 0 {
			bar = 1 // visible sliver for tiny non-zero values
		}
		fmt.Fprintf(&b, "%-*s |%s%s %s %s\n",
			labelW, r.label,
			strings.Repeat("#", bar),
			strings.Repeat(" ", c.width-bar),
			formatFloat(r.value), c.Unit)
	}
	return b.String()
}

// ChartFromTable builds a chart from two columns of a Table: labelCols
// are joined with "/" to form each bar's label; valueCol supplies the
// value (rows whose cell does not parse as a number are skipped).
func ChartFromTable(t *Table, title, unit string, valueCol string, labelCols ...string) *Chart {
	ch := NewChart(title, unit)
	colIdx := map[string]int{}
	for i, h := range t.Headers {
		colIdx[h] = i
	}
	vi, ok := colIdx[valueCol]
	if !ok {
		return ch
	}
	for _, row := range t.rows {
		if vi >= len(row) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(row[vi], "%g", &v); err != nil {
			continue
		}
		parts := make([]string, 0, len(labelCols))
		for _, lc := range labelCols {
			if li, ok := colIdx[lc]; ok && li < len(row) {
				parts = append(parts, row[li])
			}
		}
		ch.Add(strings.Join(parts, "/"), v)
	}
	return ch
}

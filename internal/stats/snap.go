package stats

import (
	"fmt"

	"prosper/internal/snapbuf"
)

// SaveSnap encodes the counter set — names and values in registration
// order — for a simulator snapshot. Registration order is part of the
// encoding because rendered output (DumpStats, metric registries) follows
// it, so a resumed run must reproduce it exactly.
func (c *Counters) SaveSnap(w *snapbuf.Writer) {
	w.U64(uint64(len(c.order)))
	for _, name := range c.order {
		w.String(name)
		w.U64(*c.values[name])
	}
}

// LoadSnap replays a saved counter set into c. Names already registered
// (by the freshly booted components) keep their slots; names first
// touched at runtime in the saved run are appended in saved order. Both
// runs register construction-time names in the same code order, so the
// final registration order matches the saved one exactly.
func (c *Counters) LoadSnap(r *snapbuf.Reader) error {
	n := r.Count(16)
	for i := 0; i < n; i++ {
		name := r.String()
		v := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		*c.slot(name) = v
	}
	return r.Err()
}

// SaveSnap encodes one histogram's full state.
func (h *Histogram) SaveSnap(w *snapbuf.Writer) {
	for _, b := range h.buckets {
		w.U64(b)
	}
	w.U64(h.count)
	w.U64(h.sum)
	w.U64(h.min)
	w.U64(h.max)
}

// LoadSnap overwrites h with a saved histogram state.
func (h *Histogram) LoadSnap(r *snapbuf.Reader) error {
	for i := range h.buckets {
		h.buckets[i] = r.U64()
	}
	h.count = r.U64()
	h.sum = r.U64()
	h.min = r.U64()
	h.max = r.U64()
	return r.Err()
}

// SaveSnap encodes the histogram set in registration order.
func (hs *Histograms) SaveSnap(w *snapbuf.Writer) {
	w.U64(uint64(len(hs.order)))
	for _, name := range hs.order {
		w.String(name)
		hs.byName[name].SaveSnap(w)
	}
}

// LoadSnap replays a saved histogram set into hs, creating histograms
// first observed at runtime in the saved run in saved order.
func (hs *Histograms) LoadSnap(r *snapbuf.Reader) error {
	n := r.Count(16)
	for i := 0; i < n; i++ {
		name := r.String()
		if r.Err() != nil {
			return r.Err()
		}
		h := hs.byName[name]
		if h == nil {
			h = hs.New(name)
		}
		if err := h.LoadSnap(r); err != nil {
			return fmt.Errorf("histogram %q: %w", name, err)
		}
	}
	return r.Err()
}

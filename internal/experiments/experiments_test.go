package experiments

import (
	"strings"
	"testing"

	"prosper/internal/persist"
	"prosper/internal/sim"
)

// The experiment tests run at TestScale and assert the *shape* of each
// figure (who wins, direction of trends), not absolute values — the same
// validity criterion the reproduction targets (DESIGN.md §5).

// perfScale is used by the Fig 8/9 shape tests: the checkpoint interval
// must be long enough to amortize the fixed crash-consistency floor
// (serialized NVM commit writes) that every checkpoint-based mechanism
// pays per interval, or the compressed interval distorts the comparison
// the figures make (see EXPERIMENTS.md on scaling).
func perfScale() Scale {
	s := TestScale()
	s.Interval = 300 * sim.Microsecond
	s.Checkpoints = 2
	s.Warmup = 50 * sim.Microsecond
	return s
}

func fig8Lookup(rows []Fig8Row) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for _, r := range rows {
		if out[r.Benchmark] == nil {
			out[r.Benchmark] = map[string]float64{}
		}
		out[r.Benchmark][r.Mechanism] = r.Normalized
	}
	return out
}

func TestFig1Shape(t *testing.T) {
	rows, tb := Fig1(TestScale())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig1Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	gap := byName["gapbs_pr"]
	ycsb := byName["ycsb_mem"]
	if gap.StackReads+gap.StackWrites < 0.6 {
		t.Fatalf("gapbs stack fraction too low: %+v", gap)
	}
	if ycsb.StackReads+ycsb.StackWrites > 0.3 {
		t.Fatalf("ycsb stack fraction too high: %+v", ycsb)
	}
	if !strings.Contains(tb.String(), "gapbs_pr") {
		t.Fatal("table missing benchmark")
	}
}

func TestFig2Shape(t *testing.T) {
	res, _ := Fig2(TestScale())
	if len(res.Rows) < 50 {
		t.Fatalf("intervals = %d", len(res.Rows))
	}
	if res.AvgBeyondSPFrac < 0.15 || res.AvgBeyondSPFrac > 0.6 {
		t.Fatalf("beyond-SP fraction = %.3f, want ~0.36", res.AvgBeyondSPFrac)
	}
}

func TestFig3Shape(t *testing.T) {
	rows, _ := Fig3(TestScale())
	// Index by (bench, mech, aware).
	val := map[string]float64{}
	for _, r := range rows {
		key := r.Benchmark + "/" + r.Mechanism
		if r.SPAware {
			key += "/aware"
		}
		val[key] = r.Normalized
	}
	for _, bench := range []string{"gapbs_pr", "g500_sssp", "ycsb_mem"} {
		for _, mech := range []string{"flush", "undo", "redo"} {
			unaware := val[bench+"/"+mech]
			aware := val[bench+"/"+mech+"/aware"]
			if aware >= unaware {
				t.Fatalf("%s/%s: SP awareness did not help (%.2f vs %.2f)", bench, mech, aware, unaware)
			}
			// Even SP-aware NVM persistence is far slower than baseline.
			if aware < 1.5 {
				t.Fatalf("%s/%s: aware slowdown %.2f implausibly low", bench, mech, aware)
			}
		}
		// undo costs more than flush (read+log+write per store).
		if val[bench+"/undo"] <= val[bench+"/flush"] {
			t.Fatalf("%s: undo should cost more than flush", bench)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	rows, _ := Fig4(TestScale())
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	gap, sssp, ycsb := byName["gapbs_pr"], byName["g500_sssp"], byName["ycsb_mem"]
	if !(gap.ReductionRatio > sssp.ReductionRatio && sssp.ReductionRatio > ycsb.ReductionRatio) {
		t.Fatalf("reduction ordering violated: %.0f / %.0f / %.0f",
			gap.ReductionRatio, sssp.ReductionRatio, ycsb.ReductionRatio)
	}
	if gap.ReductionRatio < 20 || ycsb.ReductionRatio < 3 {
		t.Fatalf("reductions too small: %.0f / %.0f", gap.ReductionRatio, ycsb.ReductionRatio)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, _ := Fig8(perfScale())
	v := fig8Lookup(rows)
	for _, bench := range []string{"gapbs_pr", "g500_sssp", "ycsb_mem"} {
		m := v[bench]
		// Prosper beats Romulus and every SSP variant.
		if m["prosper"] >= m["romulus"] {
			t.Fatalf("%s: prosper (%.3f) should beat romulus (%.3f)", bench, m["prosper"], m["romulus"])
		}
		if m["prosper"] >= m["ssp-10us"] {
			t.Fatalf("%s: prosper (%.3f) should beat ssp-10us (%.3f)", bench, m["prosper"], m["ssp-10us"])
		}
		if m["prosper"] >= m["ssp-1ms"] {
			t.Fatalf("%s: prosper (%.3f) should beat ssp-1ms (%.3f)", bench, m["prosper"], m["ssp-1ms"])
		}
		// SSP improves with a longer consolidation interval.
		if m["ssp-1ms"] > m["ssp-10us"] {
			t.Fatalf("%s: ssp-1ms (%.3f) should not be slower than ssp-10us (%.3f)", bench, m["ssp-1ms"], m["ssp-10us"])
		}
		// All mechanisms cost something.
		if m["prosper"] < 1.0 {
			t.Fatalf("%s: prosper normalized %.3f < 1", bench, m["prosper"])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, _ := Fig9(perfScale())
	v := map[string]float64{}
	for _, r := range rows {
		v[r.Benchmark+"/"+r.Combination+"/"+r.SSPInterval] = r.Normalized
	}
	for _, bench := range []string{"gapbs_pr", "g500_sssp", "ycsb_mem"} {
		// At 10µs and 100µs consolidation the combination must win
		// outright (the paper's headline claim). At 1 ms the NVM-resident
		// heap dominates both sides under our interval compression
		// (EXPERIMENTS.md), so require near-parity rather than a win.
		for _, iv := range []string{"10us", "100us"} {
			all := v[bench+"/ssp/"+iv]
			pro := v[bench+"/ssp+prosper/"+iv]
			if pro >= all {
				t.Fatalf("%s@%s: ssp+prosper (%.3f) should beat ssp-everywhere (%.3f)", bench, iv, pro, all)
			}
		}
		all := v[bench+"/ssp/1ms"]
		pro := v[bench+"/ssp+prosper/1ms"]
		if pro > all*1.02 {
			t.Fatalf("%s@1ms: ssp+prosper (%.3f) meaningfully worse than ssp-everywhere (%.3f)", bench, pro, all)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, _ := Fig10(TestScale())
	v := map[string]Fig10Row{}
	for _, r := range rows {
		v[r.Benchmark+"/"+r.Granularity] = r
	}
	// Sparse: 8B tracking must shrink checkpoints dramatically vs page.
	sparsePage := v["sparse/page"].MeanBytes
	sparse8 := v["sparse/8B"].MeanBytes
	if sparse8 <= 0 || sparsePage/sparse8 < 50 {
		t.Fatalf("sparse reduction = %.1f (page %.0f, 8B %.0f), want >50x",
			sparsePage/sparse8, sparsePage, sparse8)
	}
	// Stream: fine tracking cannot shrink the copy much (everything dirty).
	streamPage := v["stream/page"].MeanBytes
	stream8 := v["stream/8B"].MeanBytes
	if stream8 < streamPage/4 {
		t.Fatalf("stream: 8B %.0f vs page %.0f — should be comparable", stream8, streamPage)
	}
	// Checkpoint size grows (or stays equal) with granularity for sparse.
	if v["sparse/128B"].MeanBytes < v["sparse/8B"].MeanBytes {
		t.Fatal("sparse checkpoint size should not shrink with coarser granularity")
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, _ := Fig11(TestScale())
	v := map[string]Fig11Row{}
	for _, r := range rows {
		v[r.Benchmark+"/"+r.IntervalName] = r
	}
	// Recursive: size grows with interval length? The paper observes
	// growth for Recursive; require non-decreasing from 1ms to 10ms.
	for _, b := range []string{"rec-4", "rec-8", "rec-16"} {
		if v[b+"/10ms"].MeanBytes+1 < v[b+"/1ms"].MeanBytes {
			t.Fatalf("%s: checkpoint size shrank with longer interval (%.0f -> %.0f)",
				b, v[b+"/1ms"].MeanBytes, v[b+"/10ms"].MeanBytes)
		}
	}
	// Deeper recursion dirties more stack.
	if v["rec-16/10ms"].MeanBytes <= v["rec-4/10ms"].MeanBytes {
		t.Fatal("rec-16 should checkpoint more than rec-4")
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, _ := Fig12(TestScale())
	if len(rows) != 7*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup < 0.85 || r.Speedup > 1.1 {
			t.Fatalf("%s@%s: tracking speedup %.3f outside plausible band", r.Benchmark, r.Granularity, r.Speedup)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, _ := Fig13(TestScale())
	v := map[string]Fig13Row{}
	for _, r := range rows {
		v[r.Benchmark+"/"+r.Param+"/"+string(rune('0'+r.Value/10))+string(rune('0'+r.Value%10))] = r
	}
	// SSSP has spatial locality: traffic at HWM=32 <= traffic at HWM=8,
	// and clearly so for loads (paper Fig 13a).
	ssspLow := v["g500_sssp/hwm/08"]
	ssspHigh := v["g500_sssp/hwm/32"]
	if ssspHigh.BitmapStores > ssspLow.BitmapStores {
		t.Fatalf("sssp: stores rose with HWM (%d -> %d)", ssspLow.BitmapStores, ssspHigh.BitmapStores)
	}
	if ssspHigh.BitmapLoads*3 > ssspLow.BitmapLoads*2 {
		t.Fatalf("sssp: loads should fall markedly with HWM (%d -> %d)", ssspLow.BitmapLoads, ssspHigh.BitmapLoads)
	}
	// mcf lacks spatial locality: the trend reverses — loads must not
	// fall with HWM (paper Fig 13c) and must fall with a larger LWM
	// (paper Fig 13d: more evictions help mcf).
	mcfHwmLow := v["mcf/hwm/08"]
	mcfHwmHigh := v["mcf/hwm/32"]
	if mcfHwmHigh.BitmapLoads < mcfHwmLow.BitmapLoads {
		t.Fatalf("mcf: loads fell with HWM (%d -> %d)", mcfHwmLow.BitmapLoads, mcfHwmHigh.BitmapLoads)
	}
	if v["mcf/lwm/12"].BitmapLoads > v["mcf/lwm/04"].BitmapLoads {
		t.Fatalf("mcf: loads rose with LWM (%d -> %d)",
			v["mcf/lwm/04"].BitmapLoads, v["mcf/lwm/12"].BitmapLoads)
	}
	// Every config produced traffic.
	for k, r := range v {
		if r.BitmapLoads == 0 && r.BitmapStores == 0 {
			t.Fatalf("%s: no bitmap traffic", k)
		}
	}
}

func TestContextSwitchMeasurement(t *testing.T) {
	res, _ := ContextSwitch(TestScale())
	if res.Switches < 4 {
		t.Fatalf("switches = %d", res.Switches)
	}
	// Paper: ~870 cycles; require the right order of magnitude.
	if res.MeanTotal < 100 || res.MeanTotal > 20000 {
		t.Fatalf("mean switch overhead = %.0f cycles", res.MeanTotal)
	}
}

func TestEnergyReport(t *testing.T) {
	rep, _ := Energy(TestScale())
	if rep.TotalNJ <= 0 {
		t.Fatal("no energy computed")
	}
	if rep.DynamicReadNJ <= 0 {
		t.Fatal("no dynamic read energy (no SOIs?)")
	}
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, _ := Ablation(TestScale())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BitmapStores == 0 {
			t.Fatalf("%s/%s: no bitmap stores", r.Benchmark, r.Policy)
		}
	}
}

func TestTrackingCostShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, _ := TrackingCost(TestScale())
	v := map[string]TrackingCostRow{}
	for _, r := range rows {
		v[r.Benchmark+"/"+r.Technique] = r
	}
	for _, bench := range []string{"sparse", "gapbs_pr"} {
		wp := v[bench+"/writeprotect"]
		db := v[bench+"/dirtybit"]
		pr := v[bench+"/prosper"]
		if wp.Normalized < db.Normalized {
			t.Fatalf("%s: writeprotect (%.3f) should cost at least dirtybit (%.3f)",
				bench, wp.Normalized, db.Normalized)
		}
		if pr.Normalized >= db.Normalized {
			t.Fatalf("%s: prosper (%.3f) should beat dirtybit (%.3f)",
				bench, pr.Normalized, db.Normalized)
		}
		if db.Faults != 0 || pr.Faults != 0 {
			t.Fatalf("%s: non-writeprotect techniques took write faults", bench)
		}
	}
	if v["sparse/writeprotect"].Faults == 0 {
		t.Fatal("writeprotect took no faults on sparse")
	}
}

func TestAdaptiveGranularityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, _ := Adaptive(TestScale())
	v := map[string]AdaptiveRow{}
	for _, r := range rows {
		v[r.Benchmark+"/"+r.Mode] = r
	}
	// Stream: adaptive must slash the OS metadata work at (near-)equal
	// copy volume.
	sf, sa := v["stream/fixed-8B"], v["stream/adaptive"]
	if sa.MetaScanned*2 > sf.MetaScanned {
		t.Fatalf("stream: adaptive meta %d not well below fixed %d", sa.MetaScanned, sf.MetaScanned)
	}
	if sa.MeanCkptBytes > sf.MeanCkptBytes*1.1 {
		t.Fatalf("stream: adaptive copy volume ballooned (%.0f vs %.0f)", sa.MeanCkptBytes, sf.MeanCkptBytes)
	}
	// Sparse: adaptive must not escalate (checkpoints stay tiny).
	pf, pa := v["sparse/fixed-8B"], v["sparse/adaptive"]
	if pa.MeanCkptBytes > pf.MeanCkptBytes*2 {
		t.Fatalf("sparse: adaptive checkpoint grew (%.0f vs %.0f)", pa.MeanCkptBytes, pf.MeanCkptBytes)
	}
}

// TestPlanDeterministicAcrossWorkers runs a heavy multi-spec figure
// (Fig 9: 30 specs) serially and on four workers and asserts the
// rendered tables are byte-identical — the executor's core contract:
// parallelism changes wall-clock time only, never results.
func TestPlanDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	serial := TestScale()
	serial.Workers = 1
	parallel := TestScale()
	parallel.Workers = 4
	_, tb1 := Fig9(serial)
	_, tb4 := Fig9(parallel)
	if tb1.String() != tb4.String() {
		t.Fatalf("Fig9 tables differ between workers=1 and workers=4:\n%s\n--- vs ---\n%s",
			tb1.String(), tb4.String())
	}
}

func TestTable1Rendered(t *testing.T) {
	tb := Table1()
	out := tb.String()
	for _, want := range []string{"prosper", "dirtybit", "stack in DRAM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestPauseBreakdownShape checks the stall-attribution table: every
// mechanism records epochs whose per-cause cycles sum exactly to the
// measured pause, and each mechanism's dominant cause matches its design
// (Prosper far below page-granularity Dirtybit; only Prosper charges
// tracker-flush time).
func TestPauseBreakdownShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows, tb := PauseBreakdown(perfScale())
	if len(rows) == 0 || tb.NumRows() != len(rows) {
		t.Fatalf("no pause rows (table has %d)", tb.NumRows())
	}
	byMech := map[string]PauseRow{}
	for _, r := range rows {
		byMech[r.Mechanism] = r
		// Romulus replays its whole store log per epoch; at this
		// compressed scale its first epoch can outlast the window.
		if r.Pauses == 0 && r.Mechanism != "romulus" {
			t.Errorf("%s: no epochs measured", r.Mechanism)
		}
		var sum uint64
		for _, v := range r.Causes {
			sum += v
		}
		if sum != r.Total {
			t.Errorf("%s: causes sum %d != pause_cycles %d", r.Mechanism, sum, r.Total)
		}
	}
	if p, d := byMech["prosper"], byMech["dirtybit"]; p.Pauses > 0 && d.Pauses > 0 {
		if p.Total/p.Pauses >= d.Total/d.Pauses {
			t.Errorf("prosper mean pause (%d) should be below dirtybit's (%d)",
				p.Total/p.Pauses, d.Total/d.Pauses)
		}
	}
	for name, r := range byMech {
		flush := r.Causes[persist.CauseTrackerFlush]
		if name == "prosper" && flush == 0 {
			t.Error("prosper charged no tracker-flush cycles")
		}
		if name != "prosper" && flush != 0 {
			t.Errorf("%s charged tracker-flush cycles (%d)", name, flush)
		}
	}
}

package experiments

import (
	"prosper/internal/persist"
	"prosper/internal/stats"
	"prosper/internal/workload"
)

// AdaptiveRow compares fixed 8-byte tracking against the dynamic
// granularity extension on one workload.
type AdaptiveRow struct {
	Benchmark      string
	Mode           string // "fixed-8B" or "adaptive"
	MeanCkptBytes  float64
	MeanCkptCycles float64
	MetaScanned    uint64 // bitmap words the OS examined across the run
}

// Adaptive evaluates the dynamic-granularity extension (the paper's
// stated future work): for Stream-like dense writers the OS escalates the
// granularity, shrinking the bitmap-inspection work that dominates their
// checkpoints; for Sparse writers it stays fine so checkpoints stay tiny.
//
// In this machine model Stream's checkpoint is copy-bandwidth-bound, so
// the escalation's measurable win is the OS metadata work: the bitmap
// words inspected per checkpoint collapse as the granularity grows, while
// the copy volume stays at the (dense) dirty footprint. Sparse must stay
// at fine granularity with tiny checkpoints.
func Adaptive(s Scale) ([]AdaptiveRow, *stats.Table) {
	s = s.withDefaults()
	benches := []struct {
		name string
		prog func() workload.Program
	}{
		{"stream", func() workload.Program {
			return workload.NewStream(workload.MicroParams{ArrayBytes: 128 << 10})
		}},
		{"sparse", func() workload.Program {
			return workload.NewSparse(workload.MicroParams{ArrayBytes: 64 << 10})
		}},
	}
	modes := []struct {
		name    string
		factory persist.Factory
	}{
		{"fixed-8B", persist.NewProsper(persist.ProsperConfig{})},
		{"adaptive", persist.NewAdaptiveProsper(persist.AdaptiveConfig{})},
	}

	var rcs []runConfig
	for _, b := range benches {
		for _, m := range modes {
			rcs = append(rcs, runConfig{
				name: b.name, label: b.name + "/" + m.name, prog: b.prog,
				stackMech: m.factory, ckpt: true,
				// More checkpoints than usual so the tuner converges
				// within the measured window.
				checkpoints: s.Checkpoints * 6,
			})
		}
	}
	res := s.runPlan("adaptive", rcs)

	tb := stats.NewTable("Extension: dynamic tracking granularity (fixed 8B vs adaptive)",
		"benchmark", "mode", "mean_ckpt_bytes", "mean_ckpt_cycles", "meta_words")
	var rows []AdaptiveRow
	for bi, b := range benches {
		for mi, m := range modes {
			r := res[bi*len(modes)+mi]
			rows = append(rows, AdaptiveRow{
				Benchmark:      b.name,
				Mode:           m.name,
				MeanCkptBytes:  r.MeanStackCkptBytes(),
				MeanCkptCycles: r.MeanStackCkptCycles(),
				MetaScanned:    r.StackCkptMeta,
			})
			tb.AddRow(b.name, m.name, r.MeanStackCkptBytes(), r.MeanStackCkptCycles(), r.StackCkptMeta)
		}
	}
	return rows, tb
}

package experiments

import (
	"prosper/internal/persist"
	"prosper/internal/stats"
	"prosper/internal/workload"
)

// TrackingCostRow compares the standard dirty-tracking techniques of
// Section II-B on one workload.
type TrackingCostRow struct {
	Benchmark  string
	Technique  string
	Normalized float64 // execution time normalized to no tracking
	Faults     uint64  // write-permission faults taken (WriteProtect only)
}

// TrackingCost reproduces the Section II-B comparison LDT [45] makes and
// the paper summarizes: write-protection-based tracking forces a page
// fault on the first store to every page each interval, the Dirtybit
// approach only costs a page-walker dirty-bit update, and Prosper's
// tracker adds sub-page precision at similar cost. Expected shape:
// writeprotect > dirtybit >= prosper in overhead, with writeprotect's
// gap proportional to its fault count.
func TrackingCost(s Scale) ([]TrackingCostRow, *stats.Table) {
	s = s.withDefaults()
	benches := []struct {
		name string
		prog func() workload.Program
	}{
		{"sparse", func() workload.Program {
			return workload.NewSparse(workload.MicroParams{ArrayBytes: 64 << 10})
		}},
		{"gapbs_pr", func() workload.Program { return workload.NewApp(workload.GapbsPR()) }},
	}
	techniques := []struct {
		name    string
		factory persist.Factory
	}{
		{"writeprotect", persist.NewWriteProtect(persist.DirtybitConfig{})},
		{"dirtybit", persist.NewDirtybit(persist.DirtybitConfig{})},
		{"prosper", persist.NewProsper(persist.ProsperConfig{})},
	}

	var rcs []runConfig
	for _, b := range benches {
		rcs = append(rcs, runConfig{name: b.name, label: b.name + "/base", prog: b.prog})
		for _, tech := range techniques {
			rcs = append(rcs, runConfig{
				name: b.name, label: b.name + "/" + tech.name, prog: b.prog,
				stackMech: tech.factory, ckpt: true,
			})
		}
	}
	res := s.runPlan("tracking", rcs)

	tb := stats.NewTable("Section II-B: dirty-tracking technique cost (normalized execution time)",
		"benchmark", "technique", "normalized_time", "write_faults")
	var rows []TrackingCostRow
	stride := 1 + len(techniques)
	for bi, b := range benches {
		base := res[bi*stride]
		for ti, tech := range techniques {
			r := res[bi*stride+1+ti]
			norm := 0.0
			if r.UserOps > 0 {
				norm = float64(base.UserOps) / float64(r.UserOps)
			}
			rows = append(rows, TrackingCostRow{b.name, tech.name, norm, r.WriteFaults})
			tb.AddRow(b.name, tech.name, norm, r.WriteFaults)
		}
	}
	return rows, tb
}

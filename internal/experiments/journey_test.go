package experiments

import (
	"bytes"
	"testing"

	"prosper/internal/journey"
	"prosper/internal/persist"
	"prosper/internal/workload"
)

// journeyPlan is a small four-mechanism plan used by the determinism
// tests: every stack mechanism of the main evaluation, on the micro
// workload, each producing sampled journeys.
func journeyPlan() []runConfig {
	prog := func() workload.Program {
		return workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 96})
	}
	return []runConfig{
		{name: "prosper", prog: prog, stackMech: persist.NewProsper(persist.ProsperConfig{}), ckpt: true},
		{name: "dirtybit", prog: prog, stackMech: persist.NewDirtybit(persist.DirtybitConfig{}), ckpt: true},
		{name: "ssp", prog: prog, stackMech: persist.NewSSP(persist.SSPConfig{}), ckpt: true},
		{name: "romulus", prog: prog, stackMech: persist.NewRomulus(), ckpt: true},
	}
}

// runJourneyPlan executes the plan with the given worker count and seed
// and returns the serialized journal bytes.
func runJourneyPlan(t *testing.T, workers int, seed uint64) []byte {
	t.Helper()
	s := TestScale()
	s.Workers = workers
	s.Seed = seed
	s.Journal = journey.NewJournal()
	s.JourneySampleRate = 64
	s.JourneySeed = seed
	s.runPlan("journeydet", journeyPlan())
	var buf bytes.Buffer
	if err := s.Journal.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJourneyJournalDeterministicAcrossWorkers pins the tentpole
// determinism contract: for each of three seeds, the serialized journey
// journal of a four-mechanism plan is byte-identical whether the plan
// ran on one worker or four — sampling is keyed on the access sequence
// number, recorders are allocated in plan order, and every recorded
// cycle is simulated time.
func TestJourneyJournalDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		serial := runJourneyPlan(t, 1, seed)
		parallel := runJourneyPlan(t, 4, seed)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("seed %d: journal differs between workers=1 and workers=4\n--- serial ---\n%s\n--- parallel ---\n%s",
				seed, serial, parallel)
		}
		// The journal must carry real content for the comparison to mean
		// anything, and must satisfy the attribution invariants for every
		// mechanism in the plan.
		p, err := journey.Parse(bytes.NewReader(serial))
		if err != nil {
			t.Fatalf("seed %d: journal does not parse: %v", seed, err)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: journal fails validation: %v", seed, err)
		}
		if len(p.Runs) != 4 {
			t.Fatalf("seed %d: journal has %d runs, want 4", seed, len(p.Runs))
		}
		for _, run := range p.Runs {
			if run.Sampled == 0 || len(run.Journeys) == 0 {
				t.Fatalf("seed %d: run %s sampled nothing", seed, run.Name)
			}
		}
	}
}

// TestJourneySamplingLeavesStatsUntouched pins that enabling journey
// sampling does not perturb the measured results: the same plan run
// with no journal and with sampling on returns identical RunStats —
// journeys only observe the simulation, they never alter its timing.
func TestJourneySamplingLeavesStatsUntouched(t *testing.T) {
	plain := TestScale()
	base := plain.runPlan("journeyoff", journeyPlan())

	traced := TestScale()
	traced.Journal = journey.NewJournal()
	traced.JourneySampleRate = 64
	traced.JourneySeed = 1
	sampled := traced.runPlan("journeyoff", journeyPlan())

	if len(base) != len(sampled) {
		t.Fatalf("plan sizes differ: %d vs %d", len(base), len(sampled))
	}
	for i := range base {
		if base[i] != sampled[i] {
			t.Fatalf("run %d stats changed with journey sampling on:\n%+v\n--- vs ---\n%+v",
				i, base[i], sampled[i])
		}
	}
}

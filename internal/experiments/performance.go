package experiments

import (
	"fmt"

	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/workload"
)

// stackMechanisms returns the Figure 8 stack-persistence contenders in
// display order. SSP variants are named by the paper's consolidation
// intervals, scaled to the run's interval.
func (s Scale) stackMechanisms() []struct {
	name    string
	factory persist.Factory
} {
	return []struct {
		name    string
		factory persist.Factory
	}{
		{"romulus", persist.NewRomulus()},
		{"ssp-10us", persist.NewSSP(persist.SSPConfig{ConsolidationInterval: s.consolidation(10 * sim.Microsecond)})},
		{"ssp-100us", persist.NewSSP(persist.SSPConfig{ConsolidationInterval: s.consolidation(100 * sim.Microsecond)})},
		{"ssp-1ms", persist.NewSSP(persist.SSPConfig{ConsolidationInterval: s.consolidation(1 * sim.Millisecond)})},
		{"dirtybit", persist.NewDirtybit(persist.DirtybitConfig{})},
		{"prosper", persist.NewProsper(persist.ProsperConfig{})},
	}
}

// Fig8Row is one (benchmark, mechanism) normalized execution time.
type Fig8Row struct {
	Benchmark  string
	Mechanism  string
	Normalized float64 // execution time normalized to no persistence
}

// Fig8 reproduces Figure 8: execution time with each memory-persistence
// mechanism applied to the stack, normalized to execution with no
// persistence. Execution time for a fixed window is measured as
// throughput loss: normalized time = baseline user ops / mechanism user
// ops over the same simulated duration (checkpoint pauses and NVM
// residence both reduce completed work).
//
// Paper shape: Prosper beats Romulus and all SSP variants everywhere,
// beats Dirtybit except on Random and Stream; avg 2.1x (max 3.6x) better
// than SSP-10µs; SSP improves as the consolidation interval grows but
// stays behind Prosper even at 1 ms.
func Fig8(s Scale) ([]Fig8Row, *stats.Table) {
	s = s.withDefaults()
	mechs := s.stackMechanisms()
	benches := apps()

	// Plan: per benchmark, one no-persistence baseline then every
	// mechanism. Stride indexing recovers the pairs after execution.
	var rcs []runConfig
	for _, params := range benches {
		params := params
		prog := func() workload.Program { return workload.NewApp(params) }
		rcs = append(rcs, runConfig{name: params.Name, label: params.Name + "/base", prog: prog})
		for _, m := range mechs {
			rcs = append(rcs, runConfig{
				name: params.Name, label: params.Name + "/" + m.name, prog: prog,
				stackMech: m.factory, ckpt: true,
			})
		}
	}
	res := s.runPlan("fig8", rcs)

	tb := stats.NewTable("Figure 8: stack persistence, execution time normalized to no-persistence",
		"benchmark", "mechanism", "normalized_time")
	var rows []Fig8Row
	stride := 1 + len(mechs)
	for bi, params := range benches {
		base := res[bi*stride]
		for mi, m := range mechs {
			r := res[bi*stride+1+mi]
			norm := 0.0
			if r.UserOps > 0 {
				norm = float64(base.UserOps) / float64(r.UserOps)
			}
			rows = append(rows, Fig8Row{params.Name, m.name, norm})
			tb.AddRow(params.Name, m.name, norm)
		}
	}
	return rows, tb
}

// Fig9Row is one (benchmark, combination, ssp interval) result.
type Fig9Row struct {
	Benchmark   string
	Combination string // heap+stack mechanism combination
	SSPInterval string
	Normalized  float64
}

// Fig9 reproduces Figure 9: whole-memory (heap+stack) persistence with
// (i) SSP for both, (ii) SSP heap + Dirtybit stack, (iii) SSP heap +
// Prosper stack, across the three SSP consolidation intervals,
// normalized to no persistence.
//
// Paper shape: SSP+Prosper wins under every interval; avg 2x (max 2.6x)
// better than SSP-everywhere at 10 µs.
func Fig9(s Scale) ([]Fig9Row, *stats.Table) {
	s = s.withDefaults()
	intervals := []struct {
		name  string
		paper sim.Time
	}{
		{"10us", 10 * sim.Microsecond},
		{"100us", 100 * sim.Microsecond},
		{"1ms", 1 * sim.Millisecond},
	}
	comboNames := []string{"ssp", "ssp+dirtybit", "ssp+prosper"}
	benches := apps()

	var rcs []runConfig
	for _, params := range benches {
		params := params
		prog := func() workload.Program { return workload.NewApp(params) }
		rcs = append(rcs, runConfig{name: params.Name, label: params.Name + "/base", prog: prog})
		for _, iv := range intervals {
			heap := persist.NewSSP(persist.SSPConfig{ConsolidationInterval: s.consolidation(iv.paper)})
			stacks := []persist.Factory{
				persist.NewSSP(persist.SSPConfig{ConsolidationInterval: s.consolidation(iv.paper)}),
				persist.NewDirtybit(persist.DirtybitConfig{}),
				persist.NewProsper(persist.ProsperConfig{}),
			}
			for ci, stack := range stacks {
				rcs = append(rcs, runConfig{
					name:  params.Name,
					label: fmt.Sprintf("%s/%s@%s", params.Name, comboNames[ci], iv.name),
					prog:  prog, stackMech: stack, heapMech: heap, ckpt: true,
				})
			}
		}
	}
	res := s.runPlan("fig9", rcs)

	tb := stats.NewTable("Figure 9: memory-state persistence (heap+stack), normalized to no-persistence",
		"benchmark", "combination", "ssp_interval", "normalized_time")
	var rows []Fig9Row
	stride := 1 + len(intervals)*len(comboNames)
	for bi, params := range benches {
		base := res[bi*stride]
		for ii, iv := range intervals {
			for ci, combo := range comboNames {
				r := res[bi*stride+1+ii*len(comboNames)+ci]
				norm := 0.0
				if r.UserOps > 0 {
					norm = float64(base.UserOps) / float64(r.UserOps)
				}
				rows = append(rows, Fig9Row{params.Name, combo, iv.name, norm})
				tb.AddRow(params.Name, combo, iv.name, norm)
			}
		}
	}
	return rows, tb
}

// Fig10Row is one (micro-benchmark, granularity) checkpoint measurement.
type Fig10Row struct {
	Benchmark   string
	Granularity string // "8B".."128B" or "page"
	MeanBytes   float64
	// TimeVsDirtybit is the stack checkpoint time normalized to the
	// page-level Dirtybit scheme on the same workload.
	TimeVsDirtybit float64
}

// microBenches returns the Table III micro-benchmarks.
func microBenches() []struct {
	name string
	prog func() workload.Program
} {
	mp := workload.MicroParams{ArrayBytes: 64 << 10, WritesPerRun: 512}
	return []struct {
		name string
		prog func() workload.Program
	}{
		{"random", func() workload.Program { return workload.NewRandom(mp) }},
		{"stream", func() workload.Program { return workload.NewStream(mp) }},
		{"sparse", func() workload.Program { return workload.NewSparse(mp) }},
		{"quicksort", func() workload.Program { return workload.NewQuicksort(1024) }},
		{"recursive", func() workload.Program { return workload.NewRecursive(8) }},
		{"normal", func() workload.Program { return workload.NewNormal() }},
		{"poisson", func() workload.Program { return workload.NewPoisson() }},
	}
}

// fig10Grans are the sub-page tracking granularities swept by Figure 10.
var fig10Grans = []uint64{8, 16, 32, 64, 128}

// Fig10 reproduces Figure 10: per-checkpoint stack copy size (a) and
// checkpoint time normalized to page-level Dirtybit (b) for the Table III
// micro-benchmarks across tracking granularities 8..128 bytes.
//
// Paper shape: Sparse benefits most (99% size reduction, ~22x faster
// checkpoints); Stream gains nothing (everything is dirty); granularity
// increases checkpoint size for sparse patterns but shrinks bitmap
// inspection work.
func Fig10(s Scale) ([]Fig10Row, *stats.Table) {
	s = s.withDefaults()
	benches := microBenches()

	var rcs []runConfig
	for _, mb := range benches {
		rcs = append(rcs, runConfig{
			name: mb.name, label: mb.name + "/page", prog: mb.prog,
			stackMech: persist.NewDirtybit(persist.DirtybitConfig{}), ckpt: true,
		})
		for _, gran := range fig10Grans {
			rcs = append(rcs, runConfig{
				name: mb.name, label: fmt.Sprintf("%s/%dB", mb.name, gran), prog: mb.prog,
				stackMech: persist.NewProsper(persist.ProsperConfig{Granularity: gran}), ckpt: true,
			})
		}
	}
	res := s.runPlan("fig10", rcs)

	tb := stats.NewTable("Figure 10: checkpoint size and time vs tracking granularity (micro-benchmarks)",
		"benchmark", "granularity", "mean_ckpt_bytes", "time_vs_dirtybit")
	var rows []Fig10Row
	stride := 1 + len(fig10Grans)
	for bi, mb := range benches {
		dirty := res[bi*stride]
		rows = append(rows, Fig10Row{mb.name, "page", dirty.MeanStackCkptBytes(), 1})
		tb.AddRow(mb.name, "page", dirty.MeanStackCkptBytes(), 1.0)
		for gi, gran := range fig10Grans {
			r := res[bi*stride+1+gi]
			norm := 0.0
			if dirty.MeanStackCkptCycles() > 0 {
				norm = r.MeanStackCkptCycles() / dirty.MeanStackCkptCycles()
			}
			label := fmt.Sprintf("%dB", gran)
			rows = append(rows, Fig10Row{mb.name, label, r.MeanStackCkptBytes(), norm})
			tb.AddRow(mb.name, label, r.MeanStackCkptBytes(), norm)
		}
	}
	return rows, tb
}

// Fig11Row is one (benchmark, interval) checkpoint-size measurement.
type Fig11Row struct {
	Benchmark       string
	IntervalName    string
	MeanBytes       float64
	PerByteCkptTime float64 // cycles per persisted byte
}

// Fig11 reproduces Figure 11: average checkpoint size for the
// function-call benchmarks (Quicksort, Rec-4/8/16) across checkpoint
// intervals (paper: 1/5/10 ms; scaled proportionally here).
//
// Paper shape: Recursive's checkpoint size grows with the interval (no
// coalescing, no shrink); Quicksort benefits from a longer interval; very
// short intervals waste time on empty bitmap inspections (highest
// per-byte cost).
func Fig11(s Scale) ([]Fig11Row, *stats.Table) {
	s = s.withDefaults()
	benches := []struct {
		name string
		prog func() workload.Program
	}{
		{"quicksort", func() workload.Program { return workload.NewQuicksort(1024) }},
		{"rec-4", func() workload.Program { return workload.NewRecursive(4) }},
		{"rec-8", func() workload.Program { return workload.NewRecursive(8) }},
		{"rec-16", func() workload.Program { return workload.NewRecursive(16) }},
	}
	// Paper intervals 1/5/10 ms map to scale 1/10, 1/2, 1/1 of s.Interval.
	intervals := []struct {
		name string
		frac sim.Time // divisor of s.Interval
	}{
		{"1ms", 10},
		{"5ms", 2},
		{"10ms", 1},
	}

	var rcs []runConfig
	for _, b := range benches {
		for _, iv := range intervals {
			rcs = append(rcs, runConfig{
				name: b.name, label: b.name + "@" + iv.name, prog: b.prog,
				stackMech: persist.NewProsper(persist.ProsperConfig{}), ckpt: true,
				interval:    s.Interval / iv.frac,
				checkpoints: s.Checkpoints * int(iv.frac),
			})
		}
	}
	res := s.runPlan("fig11", rcs)

	tb := stats.NewTable("Figure 11: checkpoint size vs checkpoint interval (function-call benchmarks)",
		"benchmark", "interval", "mean_ckpt_bytes", "ns_per_byte")
	var rows []Fig11Row
	for bi, b := range benches {
		for ii, iv := range intervals {
			r := res[bi*len(intervals)+ii]
			perByte := 0.0
			if r.StackCkptBytes > 0 {
				perByte = float64(r.StackCkptCycles) / float64(r.StackCkptBytes) / 3.0 // cycles->ns
			}
			rows = append(rows, Fig11Row{b.name, iv.name, r.MeanStackCkptBytes(), perByte})
			tb.AddRow(b.name, iv.name, r.MeanStackCkptBytes(), perByte)
		}
	}
	return rows, tb
}

package experiments

import (
	"fmt"

	"prosper/internal/energy"
	"prosper/internal/persist"
	"prosper/internal/prosper"
	"prosper/internal/runner"
	"prosper/internal/stats"
	"prosper/internal/workload"
)

// overheadBenches returns the Figure 12/13 workload set: the SPEC CPU
// 2017 subset plus SSSP, PR, and the Stream micro-benchmark.
func overheadBenches() []struct {
	name string
	prog func() workload.Program
} {
	mk := func(p workload.AppParams) func() workload.Program {
		return func() workload.Program { return workload.NewApp(p) }
	}
	return []struct {
		name string
		prog func() workload.Program
	}{
		{"mcf", mk(workload.SpecMCF())},
		{"omnetpp", mk(workload.SpecOmnetpp())},
		{"perlbench", mk(workload.SpecPerlbench())},
		{"leela", mk(workload.SpecLeela())},
		{"g500_sssp", mk(workload.G500SSSP())},
		{"gapbs_pr", mk(workload.GapbsPR())},
		{"stream", func() workload.Program {
			return workload.NewStream(workload.MicroParams{ArrayBytes: 64 << 10})
		}},
	}
}

// Fig12Row is one (benchmark, granularity) tracking-overhead result.
type Fig12Row struct {
	Benchmark   string
	Granularity string
	// Speedup is user-space IPC with Prosper tracking active divided by
	// user-space IPC with no dirty tracking (paper: >= ~0.97 everywhere,
	// i.e. <1% average overhead, max ~3%).
	Speedup float64
}

// Fig12 reproduces Figure 12: the performance overhead Prosper's hardware
// tracking imposes on applications, measured as user-space IPC relative
// to a run with no dirty tracking, for granularities 8/64/128 bytes.
//
// The IPC-window methodology does not produce RunStats, so this figure
// fans out per benchmark with runner.ForEach instead of a plan: each
// iteration owns its baseline and its three tracked runs, and the rows
// are assembled in benchmark order afterwards.
func Fig12(s Scale) ([]Fig12Row, *stats.Table) {
	s = s.withDefaults()
	benches := overheadBenches()
	grans := []uint64{8, 64, 128}
	warmupOps := uint64(s.TraceOps) / 5
	measureOps := uint64(s.TraceOps)

	slots := make([][]Fig12Row, len(benches))
	runner.ForEach(s.Workers, len(benches), func(i int) {
		b := benches[i]
		baseOps, baseCycles := s.runIPCWindow(runConfig{name: b.name, prog: b.prog},
			prosper.Config{}, warmupOps, measureOps)
		var rows []Fig12Row
		for _, gran := range grans {
			ops, cycles := s.runIPCWindow(runConfig{
				name: b.name, prog: b.prog,
				stackMech: persist.NewProsper(persist.ProsperConfig{Granularity: gran}),
				ckpt:      true,
			}, prosper.Config{}, warmupOps, measureOps)
			speedup := 0.0
			if cycles > 0 && baseOps > 0 && baseCycles > 0 {
				baseIPC := float64(baseOps) / float64(baseCycles)
				trackIPC := float64(ops) / float64(cycles)
				speedup = trackIPC / baseIPC
			}
			rows = append(rows, Fig12Row{b.name, fmt.Sprintf("%dB", gran), speedup})
		}
		slots[i] = rows
	})

	tb := stats.NewTable("Figure 12: user-IPC speedup vs no dirty tracking (Prosper tracking active)",
		"benchmark", "granularity", "speedup")
	var rows []Fig12Row
	for _, rs := range slots {
		for _, r := range rs {
			rows = append(rows, r)
			tb.AddRow(r.Benchmark, r.Granularity, r.Speedup)
		}
	}
	return rows, tb
}

// Fig13Row is one (benchmark, parameter value) bitmap-traffic result.
type Fig13Row struct {
	Benchmark    string
	Param        string // "hwm" or "lwm"
	Value        int
	BitmapLoads  uint64
	BitmapStores uint64
}

// Fig13 reproduces Figure 13: sensitivity of the tracker's bitmap load
// and store traffic to the HWM (with LWM fixed at 4) and to the LWM
// (with HWM fixed at 24), for mcf and SSSP.
//
// Paper shape: SSSP's traffic falls as HWM rises (spatial locality in its
// stack accesses) with little LWM sensitivity; mcf's traffic rises with
// HWM (poor locality) and falls with a larger LWM.
func Fig13(s Scale) ([]Fig13Row, *stats.Table) {
	s = s.withDefaults()
	benches := []struct {
		name string
		prog func() workload.Program
	}{
		{"mcf", func() workload.Program { return workload.NewApp(workload.SpecMCF()) }},
		{"g500_sssp", func() workload.Program { return workload.NewApp(workload.G500SSSP()) }},
	}
	type sweep struct {
		param string
		value int
		cfg   prosper.Config
	}
	var sweeps []sweep
	for _, hwm := range []int{8, 16, 24, 32} {
		sweeps = append(sweeps, sweep{"hwm", hwm, prosper.Config{HWM: hwm, LWM: 4}})
	}
	for _, lwm := range []int{2, 4, 8, 12} {
		sweeps = append(sweeps, sweep{"lwm", lwm, prosper.Config{HWM: 24, LWM: lwm}})
	}

	var rcs []runConfig
	for _, b := range benches {
		for _, sw := range sweeps {
			rcs = append(rcs, runConfig{
				name: b.name, label: fmt.Sprintf("%s/%s=%d", b.name, sw.param, sw.value),
				prog:      b.prog,
				stackMech: persist.NewProsper(persist.ProsperConfig{}), ckpt: true,
				tracker: sw.cfg,
			})
		}
	}
	res := s.runPlan("fig13", rcs)

	tb := stats.NewTable("Figure 13: bitmap loads/stores vs HWM (LWM=4) and vs LWM (HWM=24)",
		"benchmark", "param", "value", "bitmap_loads", "bitmap_stores")
	var rows []Fig13Row
	for bi, b := range benches {
		for si, sw := range sweeps {
			r := res[bi*len(sweeps)+si]
			rows = append(rows, Fig13Row{b.name, sw.param, sw.value, r.TrackerBitmapLoads, r.TrackerBitmapStores})
			tb.AddRow(b.name, sw.param, sw.value, r.TrackerBitmapLoads, r.TrackerBitmapStores)
		}
	}
	return rows, tb
}

// AblationRow compares the two lookup-table allocation policies.
type AblationRow struct {
	Benchmark    string
	Policy       string
	BitmapLoads  uint64
	BitmapStores uint64
	IPC          float64
}

// Ablation compares Accumulate-and-Apply (the paper's choice, Section
// III-B) against Load-and-Update on the Figure 13 workloads.
func Ablation(s Scale) ([]AblationRow, *stats.Table) {
	s = s.withDefaults()
	benches := []struct {
		name string
		prog func() workload.Program
	}{
		{"mcf", func() workload.Program { return workload.NewApp(workload.SpecMCF()) }},
		{"g500_sssp", func() workload.Program { return workload.NewApp(workload.G500SSSP()) }},
	}
	policies := []prosper.AllocPolicy{prosper.AccumulateApply, prosper.LoadUpdate}

	var rcs []runConfig
	for _, b := range benches {
		for _, pol := range policies {
			rcs = append(rcs, runConfig{
				name: b.name, label: b.name + "/" + pol.String(), prog: b.prog,
				stackMech: persist.NewProsper(persist.ProsperConfig{}), ckpt: true,
				tracker: prosper.Config{Policy: pol},
			})
		}
	}
	res := s.runPlan("ablation", rcs)

	tb := stats.NewTable("Ablation: lookup-table allocation policy",
		"benchmark", "policy", "bitmap_loads", "bitmap_stores", "ipc")
	var rows []AblationRow
	for bi, b := range benches {
		for pi, pol := range policies {
			r := res[bi*len(policies)+pi]
			rows = append(rows, AblationRow{b.name, pol.String(), r.TrackerBitmapLoads, r.TrackerBitmapStores, r.IPC()})
			tb.AddRow(b.name, pol.String(), r.TrackerBitmapLoads, r.TrackerBitmapStores, r.IPC())
		}
	}
	return rows, tb
}

// CtxSwitchResult is the Section V context-switch overhead measurement.
type CtxSwitchResult struct {
	Switches      uint64
	MeanCyclesIn  float64
	MeanCyclesOut float64
	MeanTotal     float64 // paper: ~870 cycles for tracker save/restore
}

// ContextSwitch reproduces the context-switch overhead study: a
// two-thread micro-benchmark sharing one core with Prosper tracking, the
// kernel flushing/quiescing the outgoing tracker and reloading the
// incoming thread's MSRs at every switch.
func ContextSwitch(s Scale) (CtxSwitchResult, *stats.Table) {
	s = s.withDefaults()
	// No periodic checkpoints: the study isolates the per-switch tracker
	// flush/quiesce/save plus MSR reload on quantum preemptions between
	// the two threads.
	r := s.run(runConfig{
		name: "ctxswitch",
		prog: func() workload.Program {
			return workload.NewRandom(workload.MicroParams{ArrayBytes: 32 << 10, WritesPerRun: 256})
		},
		stackMech: persist.NewProsper(persist.ProsperConfig{}),
		threads:   2,
	})
	var res CtxSwitchResult
	res.Switches = r.CtxSwitches
	if r.CtxSwitches > 0 {
		res.MeanCyclesIn = float64(r.CtxSwitchIn) / float64(r.CtxSwitches)
		res.MeanCyclesOut = float64(r.CtxSwitchOut) / float64(r.CtxSwitches)
		res.MeanTotal = res.MeanCyclesIn + res.MeanCyclesOut
	}
	tb := stats.NewTable("Context-switch overhead (tracker save/restore)",
		"switches", "mean_in_cycles", "mean_out_cycles", "mean_total")
	tb.AddRow(res.Switches, res.MeanCyclesIn, res.MeanCyclesOut, res.MeanTotal)
	return res, tb
}

// Energy reproduces the Section V energy/area estimate for a measured run.
func Energy(s Scale) (energy.Report, *stats.Table) {
	s = s.withDefaults()
	r := s.run(runConfig{
		name:      "gapbs_pr",
		prog:      func() workload.Program { return workload.NewApp(workload.GapbsPR()) },
		stackMech: persist.NewProsper(persist.ProsperConfig{}),
		ckpt:      true,
	})
	rep := energy.Compute(energy.Activity{
		SOIs:         r.TrackerSOIs,
		TableUpdates: r.TrackerUpdates,
		Writebacks:   r.TrackerWritebacks,
		Cycles:       uint64(r.Elapsed),
	})
	tb := stats.NewTable("Lookup-table energy/area (CACTI-P 7nm constants)",
		"dyn_read_nJ", "dyn_write_nJ", "leakage_nJ", "total_nJ", "area_mm2")
	tb.AddRow(rep.DynamicReadNJ, rep.DynamicWriteNJ, rep.LeakageNJ, rep.TotalNJ, rep.AreaMM2)
	return rep, tb
}

// Table1 renders the qualitative mechanism-comparison matrix (Table I).
func Table1() *stats.Table {
	tb := stats.NewTable("Table I: qualitative comparison of memory persistence mechanisms",
		"property", "flush/undo/redo", "romulus", "ssp", "dirtybit", "prosper")
	tb.AddRow("achieves process persistence", "no", "no", "no", "yes", "yes")
	tb.AddRow("works without compiler support", "no", "no", "yes", "yes", "yes")
	tb.AddRow("stack pointer awareness", "no", "no", "no", "yes", "yes")
	tb.AddRow("allows stack in DRAM", "no", "no", "no", "yes", "yes")
	tb.AddRow("sub-page dirty tracking", "n/a", "per-store log", "cache line", "no (page)", "yes (8B..)")
	return tb
}

// Package experiments contains one harness per table and figure of the
// paper's evaluation, each regenerating the corresponding rows/series on
// the simulated machine (see DESIGN.md §5 for the index and EXPERIMENTS.md
// for paper-vs-measured results).
//
// The paper's runs use 10 ms consistency intervals over minutes of
// execution; a dense software simulation cannot afford that, so every
// harness takes a Scale that shrinks the interval and the number of
// checkpoints proportionally (all mechanisms' per-interval work scales
// with the interval, preserving the comparisons; the scaling is recorded
// in EXPERIMENTS.md).
package experiments

import (
	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/prosper"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// Scale bounds an experiment run.
type Scale struct {
	// Interval is the consistency/checkpoint interval (paper: 10 ms).
	Interval sim.Time
	// Checkpoints is how many intervals the measured window covers.
	Checkpoints int
	// Warmup runs before measurement starts.
	Warmup sim.Time
	// TraceOps bounds trace-driven analyses (Figs 1-4).
	TraceOps int
	// StackReserve and HeapSize size the process segments.
	StackReserve uint64
	HeapSize     uint64
	Seed         uint64
}

// DefaultScale is the standard scaled-down configuration: 200 µs
// intervals (1/50 of the paper's 10 ms), 10 checkpoints.
func DefaultScale() Scale {
	return Scale{
		Interval:     200 * sim.Microsecond,
		Checkpoints:  10,
		Warmup:       100 * sim.Microsecond,
		TraceOps:     150_000,
		StackReserve: 1 << 20,
		HeapSize:     64 << 20,
		Seed:         1,
	}
}

// TestScale is a very small configuration for unit tests.
func TestScale() Scale {
	s := DefaultScale()
	s.Interval = 50 * sim.Microsecond
	s.Checkpoints = 3
	s.Warmup = 20 * sim.Microsecond
	s.TraceOps = 40_000
	return s
}

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.Interval == 0 {
		s.Interval = d.Interval
	}
	if s.Checkpoints == 0 {
		s.Checkpoints = d.Checkpoints
	}
	if s.TraceOps == 0 {
		s.TraceOps = d.TraceOps
	}
	if s.StackReserve == 0 {
		s.StackReserve = d.StackReserve
	}
	if s.HeapSize == 0 {
		s.HeapSize = d.HeapSize
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	return s
}

// consolidationScale converts the paper's SSP consolidation-thread
// invocation intervals (10 µs / 100 µs / 1 ms against a 10 ms checkpoint
// interval) to the scaled run, preserving the ratio to the interval.
func (s Scale) consolidation(paperInterval sim.Time) sim.Time {
	scaled := paperInterval * s.Interval / (10 * sim.Millisecond)
	if scaled < 500 { // keep ticks meaningful (>0.16 µs)
		scaled = 500
	}
	return scaled
}

// RunStats is the outcome of one measured workload run.
type RunStats struct {
	Name      string
	Mechanism string

	UserOps    uint64
	UserCycles uint64

	Checkpoints     uint64
	CheckpointBytes uint64
	StackCkptBytes  uint64
	StackCkptCycles uint64
	StackCkptMeta   uint64
	HeapCkptBytes   uint64
	HeapCkptCycles  uint64

	TrackerBitmapLoads  uint64
	TrackerBitmapStores uint64
	TrackerSOIs         uint64
	TrackerUpdates      uint64
	TrackerWritebacks   uint64

	CtxSwitches  uint64
	CtxSwitchIn  uint64
	CtxSwitchOut uint64

	WriteFaults uint64 // write-permission faults (WriteProtect tracking)

	Elapsed sim.Time
}

// IPC returns the user-mode instructions-per-cycle of the run.
func (r RunStats) IPC() float64 {
	if r.UserCycles == 0 {
		return 0
	}
	return float64(r.UserOps) / float64(r.UserCycles)
}

// MeanStackCkptBytes returns the average per-checkpoint stack copy size.
func (r RunStats) MeanStackCkptBytes() float64 {
	if r.Checkpoints == 0 {
		return 0
	}
	return float64(r.StackCkptBytes) / float64(r.Checkpoints)
}

// MeanStackCkptCycles returns the average stack checkpoint duration.
func (r RunStats) MeanStackCkptCycles() float64 {
	if r.Checkpoints == 0 {
		return 0
	}
	return float64(r.StackCkptCycles) / float64(r.Checkpoints)
}

// runConfig describes one run of the standard single-process workload.
type runConfig struct {
	name      string
	prog      func() workload.Program
	stackMech persist.Factory
	heapMech  persist.Factory
	ckpt      bool
	cores     int
	threads   int
}

// run executes one configuration on a fresh kernel and collects stats.
func (s Scale) run(rc runConfig) RunStats {
	return s.runCustom(rc, prosper.Config{})
}

// runCustom is run with an explicit per-core tracker configuration
// (Fig 13's HWM/LWM sweeps and the allocation-policy ablation).
func (s Scale) runCustom(rc runConfig, trCfg prosper.Config) RunStats {
	if rc.cores <= 0 {
		rc.cores = 1
	}
	if rc.threads <= 0 {
		rc.threads = 1
	}
	k := kernel.New(kernel.Config{
		Machine:    machine.Config{Cores: rc.cores},
		Quantum:    s.Interval / 2,
		TrackerCfg: trCfg,
	})
	pc := kernel.ProcessConfig{
		Name:         rc.name,
		StackMech:    rc.stackMech,
		HeapMech:     rc.heapMech,
		StackReserve: s.StackReserve,
		HeapSize:     s.HeapSize,
		PremapHeap:   true, // measure warmed-up steady state (paper warms 1 min)
		Seed:         s.Seed,
	}
	if rc.ckpt {
		pc.CheckpointInterval = s.Interval
	}
	progs := make([]workload.Program, rc.threads)
	for i := range progs {
		progs[i] = rc.prog()
	}
	p := k.Spawn(pc, progs...)
	defer p.Shutdown()

	k.RunFor(s.Warmup)
	var opsBase, cyclesBase uint64
	for _, t := range p.Threads {
		opsBase += t.UserOps
		cyclesBase += t.UserCycles
	}
	ckptBase := p.CheckpointCount
	ckptBytesBase := p.CheckpointBytes
	stackBytesBase := p.Counters.Get("proc.stack_ckpt_bytes")
	stackCyclesBase := p.Counters.Get("proc.stack_ckpt_cycles")
	stackMetaBase := p.Counters.Get("proc.stack_ckpt_meta")
	heapBytesBase := p.Counters.Get("proc.heap_ckpt_bytes")
	heapCyclesBase := p.Counters.Get("proc.heap_ckpt_cycles")
	trSnap := s.trackerSnapshot(k)
	wfBase := uint64(p.AS.WriteFaults())
	start := k.Eng.Now()

	k.RunFor(s.Interval * sim.Time(s.Checkpoints))

	res := RunStats{Name: rc.name, Elapsed: k.Eng.Now() - start}
	for _, t := range p.Threads {
		res.UserOps += t.UserOps
		res.UserCycles += t.UserCycles
	}
	res.UserOps -= opsBase
	res.UserCycles -= cyclesBase
	res.Checkpoints = p.CheckpointCount - ckptBase
	res.CheckpointBytes = p.CheckpointBytes - ckptBytesBase
	res.StackCkptBytes = p.Counters.Get("proc.stack_ckpt_bytes") - stackBytesBase
	res.StackCkptCycles = p.Counters.Get("proc.stack_ckpt_cycles") - stackCyclesBase
	res.StackCkptMeta = p.Counters.Get("proc.stack_ckpt_meta") - stackMetaBase
	res.HeapCkptBytes = p.Counters.Get("proc.heap_ckpt_bytes") - heapBytesBase
	res.HeapCkptCycles = p.Counters.Get("proc.heap_ckpt_cycles") - heapCyclesBase
	trEnd := s.trackerSnapshot(k)
	res.TrackerBitmapLoads = trEnd.loads - trSnap.loads
	res.TrackerBitmapStores = trEnd.stores - trSnap.stores
	res.TrackerSOIs = trEnd.sois - trSnap.sois
	res.TrackerWritebacks = trEnd.writebacks - trSnap.writebacks
	res.TrackerUpdates = res.TrackerSOIs // one table update per SOI granule (approx.)
	res.WriteFaults = uint64(p.AS.WriteFaults()) - wfBase
	res.CtxSwitches = k.Counters.Get("kernel.context_switches")
	res.CtxSwitchIn = k.Counters.Get("kernel.ctxswitch_in_cycles")
	res.CtxSwitchOut = k.Counters.Get("kernel.ctxswitch_out_cycles")
	return res
}

// runIPCWindow measures user cycles spent executing a fixed window of the
// (deterministic) op stream: ops [warmupOps, warmupOps+measureOps). Both
// the baseline and the tracked run execute the identical sequence, so the
// cycle delta isolates the tracking overhead exactly — the user-space IPC
// methodology of Figure 12 without time-window sampling noise.
func (s Scale) runIPCWindow(rc runConfig, trCfg prosper.Config, warmupOps, measureOps uint64) (ops, cycles uint64) {
	if rc.cores <= 0 {
		rc.cores = 1
	}
	k := kernel.New(kernel.Config{
		Machine:    machine.Config{Cores: rc.cores},
		Quantum:    s.Interval / 2,
		TrackerCfg: trCfg,
	})
	pc := kernel.ProcessConfig{
		Name:         rc.name,
		StackMech:    rc.stackMech,
		HeapMech:     rc.heapMech,
		StackReserve: s.StackReserve,
		HeapSize:     s.HeapSize,
		PremapHeap:   true, // measure warmed-up steady state
		Seed:         s.Seed,
	}
	if rc.ckpt {
		pc.CheckpointInterval = s.Interval
	}
	p := k.Spawn(pc, rc.prog())
	defer p.Shutdown()
	th := p.Threads[0]

	deadline := k.Eng.Now() + 60*sim.Millisecond // hard cap
	k.Eng.RunWhile(func() bool { return th.UserOps < warmupOps && k.Eng.Now() < deadline })
	startCycles := th.UserCycles
	startOps := th.UserOps
	target := startOps + measureOps
	k.Eng.RunWhile(func() bool { return th.UserOps < target && k.Eng.Now() < deadline })
	return th.UserOps - startOps, th.UserCycles - startCycles
}

type trackerSnap struct{ loads, stores, sois, writebacks uint64 }

func (s Scale) trackerSnapshot(k *kernel.Kernel) trackerSnap {
	var out trackerSnap
	for _, tr := range k.Trackers {
		out.loads += tr.Counters.Get("prosper.bitmap_loads")
		out.stores += tr.Counters.Get("prosper.bitmap_stores")
		out.sois += tr.Counters.Get("prosper.sois")
		out.writebacks += tr.Counters.Get("prosper.hwm_writebacks") +
			tr.Counters.Get("prosper.evictions") + tr.Counters.Get("prosper.flushes")
	}
	return out
}

// apps returns the three application models of the main evaluation.
func apps() []workload.AppParams {
	return []workload.AppParams{workload.GapbsPR(), workload.G500SSSP(), workload.YcsbMem()}
}

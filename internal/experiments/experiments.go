// Package experiments contains one harness per table and figure of the
// paper's evaluation, each regenerating the corresponding rows/series on
// the simulated machine (see DESIGN.md §5 for the index and EXPERIMENTS.md
// for paper-vs-measured results).
//
// The paper's runs use 10 ms consistency intervals over minutes of
// execution; a dense software simulation cannot afford that, so every
// harness takes a Scale that shrinks the interval and the number of
// checkpoints proportionally (all mechanisms' per-interval work scales
// with the interval, preserving the comparisons; the scaling is recorded
// in EXPERIMENTS.md).
//
// Each figure declares a runner.Plan — a list of independent run specs —
// and hands it to a runner.Executor, which fans the specs out across a
// bounded worker pool (Scale.Workers). Results come back in plan order,
// so the rendered tables are byte-identical regardless of the worker
// count; only wall-clock time changes.
package experiments

import (
	"prosper/internal/journey"
	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/prosper"
	"prosper/internal/runner"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/telemetry"
	"prosper/internal/workload"
)

// Scale bounds an experiment run.
type Scale struct {
	// Interval is the consistency/checkpoint interval (paper: 10 ms).
	Interval sim.Time
	// Checkpoints is how many intervals the measured window covers.
	Checkpoints int
	// Warmup runs before measurement starts.
	Warmup sim.Time
	// TraceOps bounds trace-driven analyses (Figs 1-4).
	TraceOps int
	// StackReserve and HeapSize size the process segments.
	StackReserve uint64
	HeapSize     uint64
	Seed         uint64

	// Workers bounds how many of a figure's runs execute concurrently
	// (<= 0 means GOMAXPROCS). Results are identical for any value.
	Workers int
	// Log, when non-nil, receives one record per completed run (spec
	// label, simulated cycles, wall-clock time) as runs finish.
	Log *stats.RunLog

	// Trace, when non-nil, collects per-run sim-time telemetry: every
	// spec of every plan gets its own tracer lane, allocated in plan
	// order (before execution starts), so the serialized trace bytes are
	// identical for any Workers value.
	Trace *telemetry.Trace
	// SampleEvery is the telemetry occupancy/metrics sampling cadence in
	// cycles (0: the kernel's 10 µs default).
	SampleEvery sim.Time

	// Journal, when non-nil, samples per-access journeys on every run:
	// each spec gets its own recorder, allocated in plan order like the
	// tracer lanes, so the serialized journal is byte-identical for any
	// Workers value. JourneySampleRate is 1-in-N accesses (0 disables);
	// JourneySeed seeds the sequence-number hash.
	Journal           *journey.Journal
	JourneySampleRate uint64
	JourneySeed       uint64
}

// DefaultScale is the standard scaled-down configuration: 200 µs
// intervals (1/50 of the paper's 10 ms), 10 checkpoints.
func DefaultScale() Scale {
	return Scale{
		Interval:     200 * sim.Microsecond,
		Checkpoints:  10,
		Warmup:       100 * sim.Microsecond,
		TraceOps:     150_000,
		StackReserve: 1 << 20,
		HeapSize:     64 << 20,
		Seed:         1,
	}
}

// TestScale is a very small configuration for unit tests.
func TestScale() Scale {
	s := DefaultScale()
	s.Interval = 50 * sim.Microsecond
	s.Checkpoints = 3
	s.Warmup = 20 * sim.Microsecond
	s.TraceOps = 40_000
	return s
}

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.Interval == 0 {
		s.Interval = d.Interval
	}
	if s.Checkpoints == 0 {
		s.Checkpoints = d.Checkpoints
	}
	if s.TraceOps == 0 {
		s.TraceOps = d.TraceOps
	}
	if s.StackReserve == 0 {
		s.StackReserve = d.StackReserve
	}
	if s.HeapSize == 0 {
		s.HeapSize = d.HeapSize
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	return s
}

// consolidationScale converts the paper's SSP consolidation-thread
// invocation intervals (10 µs / 100 µs / 1 ms against a 10 ms checkpoint
// interval) to the scaled run, preserving the ratio to the interval.
func (s Scale) consolidation(paperInterval sim.Time) sim.Time {
	scaled := paperInterval * s.Interval / (10 * sim.Millisecond)
	if scaled < 500 { // keep ticks meaningful (>0.16 µs)
		scaled = 500
	}
	return scaled
}

// RunStats is the outcome of one measured workload run (owned by
// internal/runner; aliased here so figure code and its callers keep the
// historical name).
type RunStats = runner.RunStats

// runConfig describes one run of the standard single-process workload:
// today's spec-builder shorthand, converted to a runner.Spec by
// Scale.spec. The optional fields override the Scale for a single run.
type runConfig struct {
	name      string
	label     string // display label for progress reports (default: name)
	prog      func() workload.Program
	stackMech persist.Factory
	heapMech  persist.Factory
	ckpt      bool
	cores     int
	threads   int
	// tracker configures the per-core Prosper trackers (Fig 13 HWM/LWM
	// sweeps and the allocation-policy ablation).
	tracker prosper.Config
	// interval/checkpoints override the Scale's values when nonzero
	// (Fig 11's interval sweep, the adaptive-granularity convergence).
	interval    sim.Time
	checkpoints int
}

// spec converts a runConfig into a runner.Spec under this scale.
func (s Scale) spec(rc runConfig) runner.Spec {
	label := rc.label
	if label == "" {
		label = rc.name
	}
	iv := s.Interval
	if rc.interval != 0 {
		iv = rc.interval
	}
	cks := s.Checkpoints
	if rc.checkpoints != 0 {
		cks = rc.checkpoints
	}
	return runner.Spec{
		Name:         rc.name,
		Label:        label,
		Prog:         rc.prog,
		StackMech:    rc.stackMech,
		HeapMech:     rc.heapMech,
		Checkpoint:   rc.ckpt,
		Cores:        rc.cores,
		Threads:      rc.threads,
		Tracker:      rc.tracker,
		Interval:     iv,
		Checkpoints:  cks,
		Warmup:       s.Warmup,
		StackReserve: s.StackReserve,
		HeapSize:     s.HeapSize,
		Seed:         s.Seed,
	}
}

// runPlan executes the configs as one named plan on the scale's worker
// pool and returns stats in plan order. A panicking run is re-raised
// here, tagged with its spec label — the same crash a sequential loop
// would have produced, minus the runs that still completed.
func (s Scale) runPlan(figure string, rcs []runConfig) []RunStats {
	specs := make([]runner.Spec, len(rcs))
	for i, rc := range rcs {
		sp := s.spec(rc)
		if figure != "" {
			sp.Label = figure + "/" + sp.DisplayLabel()
		}
		if s.Trace != nil {
			sp.Tracer = s.Trace.NewTracer(sp.DisplayLabel())
			sp.SampleEvery = s.SampleEvery
		}
		if s.Journal != nil {
			sp.Journey = s.Journal.NewRecorder(sp.DisplayLabel(), s.JourneySampleRate, s.JourneySeed)
		}
		specs[i] = sp
	}
	ex := runner.Executor{Workers: s.Workers, OnDone: s.record}
	res, err := ex.Run(runner.Plan{Name: figure, Specs: specs})
	if err != nil {
		panic(err)
	}
	return res
}

// record forwards one completed run to the scale's RunLog, if any.
func (s Scale) record(r runner.Result) {
	if s.Log == nil || r.Err != nil {
		return
	}
	s.Log.Record(stats.RunRecord{
		Name:      r.Spec.DisplayLabel(),
		SimCycles: int64(r.Stats.SimEnd),
		Wall:      r.Wall,
	})
}

// run executes one configuration (a single-spec plan) and collects stats.
func (s Scale) run(rc runConfig) RunStats {
	return s.runPlan("", []runConfig{rc})[0]
}

// runIPCWindow measures user cycles spent executing a fixed window of the
// (deterministic) op stream: ops [warmupOps, warmupOps+measureOps). Both
// the baseline and the tracked run execute the identical sequence, so the
// cycle delta isolates the tracking overhead exactly — the user-space IPC
// methodology of Figure 12 without time-window sampling noise.
func (s Scale) runIPCWindow(rc runConfig, trCfg prosper.Config, warmupOps, measureOps uint64) (ops, cycles uint64) {
	if rc.cores <= 0 {
		rc.cores = 1
	}
	k := kernel.New(kernel.Config{
		Machine:    machine.Config{Cores: rc.cores},
		Quantum:    s.Interval / 2,
		TrackerCfg: trCfg,
	})
	pc := kernel.ProcessConfig{
		Name:         rc.name,
		StackMech:    rc.stackMech,
		HeapMech:     rc.heapMech,
		StackReserve: s.StackReserve,
		HeapSize:     s.HeapSize,
		PremapHeap:   true, // measure warmed-up steady state
		Seed:         s.Seed,
	}
	if rc.ckpt {
		pc.CheckpointInterval = s.Interval
	}
	p := k.Spawn(pc, rc.prog())
	defer p.Shutdown()
	th := p.Threads[0]

	deadline := k.Eng.Now() + 60*sim.Millisecond // hard cap
	k.Eng.RunWhile(func() bool { return th.UserOps < warmupOps && k.Eng.Now() < deadline })
	startCycles := th.UserCycles
	startOps := th.UserOps
	target := startOps + measureOps
	k.Eng.RunWhile(func() bool { return th.UserOps < target && k.Eng.Now() < deadline })
	return th.UserOps - startOps, th.UserCycles - startCycles
}

// apps returns the three application models of the main evaluation.
func apps() []workload.AppParams {
	return []workload.AppParams{workload.GapbsPR(), workload.G500SSSP(), workload.YcsbMem()}
}

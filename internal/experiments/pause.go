package experiments

import (
	"prosper/internal/persist"
	"prosper/internal/stats"
	"prosper/internal/workload"
)

// PauseRow is one mechanism's measured-window checkpoint-pause
// decomposition: the pause distribution (count, log2-bucket quantiles,
// max) and the per-cause stall attribution, whose entries sum exactly to
// Total.
type PauseRow struct {
	Benchmark string
	Mechanism string
	Pauses    uint64
	Total     uint64
	P50       uint64
	P95       uint64
	Max       uint64
	Causes    [persist.NumCauses]uint64
}

// PauseBreakdown measures the stall-attribution report of DESIGN.md §10:
// for every stack mechanism, each checkpoint epoch's stop-the-world pause
// is decomposed into named causes (quiesce, tracker flush, inspect+clear,
// payload copy, NVM drain, commit fence) charged by the kernel and the
// mechanism as the epoch executes. The causes sum exactly to the measured
// pause — the attribution register charges every cycle between quiesce
// start and commit completion to exactly one cause — so the table makes
// visible *where* each mechanism's pause goes: inspect-dominated
// (Dirtybit's PTE walk, Prosper's bitmap scan), copy-dominated (Romulus's
// log replay), or drain-dominated (SSP's clwb sweep).
func PauseBreakdown(s Scale) ([]PauseRow, *stats.Table) {
	s = s.withDefaults()
	mechs := s.stackMechanisms()
	params := workload.GapbsPR()
	prog := func() workload.Program { return workload.NewApp(params) }

	var rcs []runConfig
	for _, m := range mechs {
		rcs = append(rcs, runConfig{
			name: params.Name, label: params.Name + "/" + m.name, prog: prog,
			stackMech: m.factory, ckpt: true,
		})
	}
	res := s.runPlan("pause", rcs)

	headers := []string{"benchmark", "mechanism", "pauses", "pause_cycles", "p50", "p95", "max"}
	headers = append(headers, persist.CauseNames()...)
	tb := stats.NewTable("Pause attribution: per-epoch checkpoint pause by cause (cycles; causes sum to pause_cycles)",
		headers...)
	var rows []PauseRow
	for i, m := range mechs {
		r := res[i]
		rows = append(rows, PauseRow{
			Benchmark: params.Name, Mechanism: m.name,
			Pauses: r.PauseCount, Total: r.PauseTotal,
			P50: r.PauseP50, P95: r.PauseP95, Max: r.PauseMax,
			Causes: r.PauseCauses,
		})
		cells := []interface{}{params.Name, m.name, r.PauseCount, r.PauseTotal,
			r.PauseP50, r.PauseP95, r.PauseMax}
		for _, v := range r.PauseCauses {
			cells = append(cells, v)
		}
		tb.AddRow(cells...)
	}
	return rows, tb
}

package experiments

import (
	"prosper/internal/runner"
	"prosper/internal/stats"
	"prosper/internal/trace"
	"prosper/internal/workload"
)

// captureApp traces one application model for the scale's op budget.
func (s Scale) captureApp(params workload.AppParams) *trace.Trace {
	cfg := trace.DefaultCaptureConfig()
	cfg.MaxOps = s.TraceOps
	cfg.Ctx.Seed = s.Seed
	return trace.Capture(workload.NewApp(params), cfg)
}

// captureApps captures one trace per app model across the scale's worker
// pool. Captures are independent deterministic simulations, so the
// resulting slice (in params order) does not depend on the worker count.
func (s Scale) captureApps(params []workload.AppParams) []*trace.Trace {
	out := make([]*trace.Trace, len(params))
	runner.ForEach(s.Workers, len(params), func(i int) {
		out[i] = s.captureApp(params[i])
	})
	return out
}

// Fig1Row is one benchmark's memory-operation breakdown.
type Fig1Row struct {
	Benchmark   string
	StackReads  float64 // fraction of all memory operations
	StackWrites float64
	HeapReads   float64
	HeapWrites  float64
}

// Fig1 reproduces Figure 1: the fraction of memory operations performed
// on the stack region for the three application benchmarks.
func Fig1(s Scale) ([]Fig1Row, *stats.Table) {
	s = s.withDefaults()
	tb := stats.NewTable("Figure 1: fraction of memory operations to stack vs heap",
		"benchmark", "stack_reads", "stack_writes", "heap_reads", "heap_writes", "stack_total")
	var rows []Fig1Row
	benches := apps()
	for i, tr := range s.captureApps(benches) {
		b := trace.Breakdown(tr)
		total := float64(b.Total())
		row := Fig1Row{
			Benchmark:   benches[i].Name,
			StackReads:  float64(b.StackReads) / total,
			StackWrites: float64(b.StackWrites) / total,
			HeapReads:   float64(b.HeapReads) / total,
			HeapWrites:  float64(b.HeapWrites) / total,
		}
		rows = append(rows, row)
		tb.AddRow(benches[i].Name, row.StackReads, row.StackWrites, row.HeapReads,
			row.HeapWrites, row.StackReads+row.StackWrites)
	}
	return rows, tb
}

// Fig2Row is one consistency interval of the Ycsb_mem beyond-SP study.
type Fig2Row struct {
	Interval      int
	StackWrites   uint64
	BeyondFinalSP uint64
}

// Fig2Result aggregates Figure 2.
type Fig2Result struct {
	Rows            []Fig2Row
	AvgBeyondSPFrac float64
}

// Fig2 reproduces Figure 2: total stack writes vs writes beyond the
// interval-final SP across consistency intervals for Ycsb_mem (paper:
// >36% of stack writes are beyond the final SP on average).
func Fig2(s Scale) (Fig2Result, *stats.Table) {
	s = s.withDefaults()
	tr := s.captureApp(workload.YcsbMem())
	interval := tr.Duration() / 100 // 100 intervals like the paper
	if interval == 0 {
		interval = 1
	}
	ivs := trace.Intervals(tr, interval)
	tb := stats.NewTable("Figure 2: Ycsb_mem stack writes vs writes beyond final SP per interval",
		"interval", "stack_writes", "beyond_final_sp")
	var res Fig2Result
	var writes, beyond uint64
	for i, iv := range ivs {
		res.Rows = append(res.Rows, Fig2Row{Interval: i, StackWrites: iv.StackWrites, BeyondFinalSP: iv.BeyondFinalSP})
		writes += iv.StackWrites
		beyond += iv.BeyondFinalSP
		// Print every 10th interval to keep the table readable.
		if i%10 == 0 {
			tb.AddRow(i, iv.StackWrites, iv.BeyondFinalSP)
		}
	}
	if writes > 0 {
		res.AvgBeyondSPFrac = float64(beyond) / float64(writes)
	}
	tb.AddRow("avg_beyond_frac", res.AvgBeyondSPFrac, "")
	return res, tb
}

// Fig3Row is one (benchmark, mechanism, awareness) replay result.
type Fig3Row struct {
	Benchmark  string
	Mechanism  string
	SPAware    bool
	Normalized float64 // execution time normalized to no persistence
}

// Fig3 reproduces Figure 3: flush/undo/redo persistence for the stack
// with and without SP awareness, normalized to no persistence (stack in
// DRAM). The paper's headline: ~30-33% average improvement from SP
// awareness, but even SP-aware NVM-resident schemes are >35x slower than
// no persistence. Each benchmark's capture-and-replay chain runs as one
// worker-pool iteration; rows are assembled in benchmark order.
func Fig3(s Scale) ([]Fig3Row, *stats.Table) {
	s = s.withDefaults()
	costs := trace.DefaultReplayCosts()
	mechs := []string{trace.MechFlush, trace.MechUndo, trace.MechRedo}
	benches := apps()

	slots := make([][]Fig3Row, len(benches))
	runner.ForEach(s.Workers, len(benches), func(i int) {
		tr := s.captureApp(benches[i])
		interval := tr.Duration() / 20
		var rows []Fig3Row
		for _, mech := range mechs {
			unaware := trace.ReplayNormalized(tr, mech, false, interval, costs)
			aware := trace.ReplayNormalized(tr, mech, true, interval, costs)
			rows = append(rows,
				Fig3Row{benches[i].Name, mech, false, unaware},
				Fig3Row{benches[i].Name, mech, true, aware})
		}
		slots[i] = rows
	})

	tb := stats.NewTable("Figure 3: flush/undo/redo ± SP awareness (exec time normalized to no persistence)",
		"benchmark", "mechanism", "no_sp_aware", "sp_aware", "improvement")
	var rows []Fig3Row
	for _, rs := range slots {
		rows = append(rows, rs...)
		for j := 0; j+1 < len(rs); j += 2 {
			unaware, aware := rs[j], rs[j+1]
			improvement := 0.0
			if unaware.Normalized > 0 {
				improvement = 1 - aware.Normalized/unaware.Normalized
			}
			tb.AddRow(unaware.Benchmark, unaware.Mechanism, unaware.Normalized, aware.Normalized, improvement)
		}
	}
	return rows, tb
}

// Fig4Row is one benchmark's checkpoint copy-size comparison.
type Fig4Row struct {
	Benchmark      string
	PageBytesMean  float64 // per-interval copy size at 4 KiB tracking
	ByteBytesMean  float64 // per-interval copy size at 8 B tracking
	ReductionRatio float64
}

// Fig4 reproduces Figure 4: per-interval checkpoint copy size with page
// (4 KiB) vs byte-level (8 B) dirty tracking for the stack (paper:
// ~300x / ~56x / ~33x reduction for Gapbs_pr / G500_sssp / Ycsb_mem).
func Fig4(s Scale) ([]Fig4Row, *stats.Table) {
	s = s.withDefaults()
	benches := apps()

	slots := make([]Fig4Row, len(benches))
	runner.ForEach(s.Workers, len(benches), func(i int) {
		tr := s.captureApp(benches[i])
		interval := tr.Duration() / 20
		page := trace.CheckpointSizes(tr, interval, 4096)
		fine := trace.CheckpointSizes(tr, interval, 8)
		row := Fig4Row{
			Benchmark:     benches[i].Name,
			PageBytesMean: page.MeanBytes(),
			ByteBytesMean: fine.MeanBytes(),
		}
		if fine.TotalBytes > 0 {
			row.ReductionRatio = float64(page.TotalBytes) / float64(fine.TotalBytes)
		}
		slots[i] = row
	})

	tb := stats.NewTable("Figure 4: stack checkpoint copy size, 4KiB-page vs 8-byte dirty tracking",
		"benchmark", "page_mean_bytes", "8B_mean_bytes", "reduction")
	var rows []Fig4Row
	for _, row := range slots {
		rows = append(rows, row)
		tb.AddRow(row.Benchmark, row.PageBytesMean, row.ByteBytesMean, row.ReductionRatio)
	}
	return rows, tb
}

package sim

import (
	"errors"
	"fmt"
	"slices"

	"prosper/internal/snapbuf"
)

// ErrUnkeyedDone reports a parked continuation token that carries live
// closures but no resume identity. Such a token cannot survive a
// snapshot/resume cycle, so finding one in flight means the machine is
// not at a snapshot-safe quiescent point.
var ErrUnkeyedDone = errors.New("sim: continuation in flight without a resume identity")

// SaveDone encodes a parked continuation token. Invalid (zero) tokens
// encode as absent; valid tokens must carry a resume key.
func SaveDone(w *snapbuf.Writer, d Done) error {
	if !d.Valid() {
		w.Bool(false)
		return nil
	}
	if d.key == 0 {
		return fmt.Errorf("%w (component %s)", ErrUnkeyedDone, d.comp)
	}
	w.Bool(true)
	w.U64(d.key)
	w.U64(d.arg)
	return nil
}

// LoadDone decodes a token written by SaveDone, re-binding it to the
// live continuation registered under the same key in reg. The registry
// maps each resume key to a freshly constructed prototype token; the
// saved argument overrides the prototype's.
func LoadDone(r *snapbuf.Reader, reg map[uint64]Done) (Done, error) {
	if !r.Bool() {
		return Done{}, r.Err()
	}
	key := r.U64()
	arg := r.U64()
	if r.Err() != nil {
		return Done{}, r.Err()
	}
	proto, ok := reg[key]
	if !ok {
		return Done{}, fmt.Errorf("sim: no continuation registered for resume key %#x", key)
	}
	return proto.WithArg(arg), nil
}

// EventClaims accumulates the (when, seq) identities of pending engine
// events that snapshotted components claim ownership of. Save compares
// the claimed multiset against the engine's actual pending queue: any
// unclaimed event would be silently lost across resume, so a mismatch
// rejects the snapshot point.
type EventClaims struct {
	keys []PendingKey
}

// Claim records ownership of the pending event at (when, seq).
func (c *EventClaims) Claim(when Time, seq uint64) {
	c.keys = append(c.keys, PendingKey{When: when, Seq: seq})
}

// Keys returns the claimed identities sorted by (when, seq).
func (c *EventClaims) Keys() []PendingKey {
	out := slices.Clone(c.keys)
	slices.SortFunc(out, func(a, b PendingKey) int {
		if a.When != b.When {
			if a.When < b.When {
				return -1
			}
			return 1
		}
		if a.Seq != b.Seq {
			if a.Seq < b.Seq {
				return -1
			}
			return 1
		}
		return 0
	})
	return out
}

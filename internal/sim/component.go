package sim

// Component identifies which simulated component owns a scheduled event:
// the architectural subsystem whose code the event's callback runs. Every
// Schedule/At/Thunk/Bind/NewTicker call site declares an owner, so the
// dispatch loop can attribute host cost per component (see Profile).
//
// The ID is advisory metadata: it never participates in event ordering,
// and an incorrect tag can skew a profile but cannot change a simulated
// cycle.
//
// Packages map onto components mostly one-to-one (mem, cache, kernel,
// prosper, persist). internal/machine implements several architectural
// components at once, so its call sites tag by role instead of by
// package: page-walk and page-fault continuations are CompVM (the
// address-translation hardware), pipeline/store-buffer continuations are
// CompWorkload (executing the program's instruction stream), and the
// checkpoint copy/fan engines are CompPersist (they move data on behalf
// of persistence mechanisms). CompSim is simulator infrastructure — the
// engine itself, runner plumbing, and telemetry sampling.
type Component uint8

const (
	CompSim Component = iota
	CompMem
	CompCache
	CompVM
	CompKernel
	CompProsper
	CompPersist
	CompWorkload
	CompOther

	// NumComponents sizes per-component accounting arrays.
	NumComponents = int(CompOther) + 1
)

var componentNames = [NumComponents]string{
	CompSim:      "sim",
	CompMem:      "mem",
	CompCache:    "cache",
	CompVM:       "vm",
	CompKernel:   "kernel",
	CompProsper:  "prosper",
	CompPersist:  "persist",
	CompWorkload: "workload",
	CompOther:    "other",
}

// String returns the component's stable lowercase name. These names are
// part of the prosper-bench report schema (host_attribution keys) and of
// prosper-prof's output; renaming one is a breaking change.
func (c Component) String() string {
	if int(c) < NumComponents {
		return componentNames[c]
	}
	return "other"
}

// Components returns every component in declaration order. Callers that
// render per-component tables iterate this instead of a map so output
// order is deterministic.
func Components() [NumComponents]Component {
	var out [NumComponents]Component
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Package sim provides the deterministic discrete-event simulation engine
// that drives every timing component in the repository: cores, caches,
// memory devices, the Prosper dirty tracker, kernel timers, and background
// persistence threads.
//
// The engine is single-threaded and fully deterministic: events scheduled
// for the same cycle fire in the order they were scheduled (FIFO), and all
// randomness in the simulator flows from explicitly seeded sources
// (see Rand). Re-running a configuration always reproduces the same cycle
// counts and statistics.
//
// The event queue is an index-based 4-ary min-heap over a flat []event
// slice: no container/heap, no interface boxing, and the slice backing
// doubles as the event free list (popped slots are reused by later
// pushes), so steady-state scheduling allocates nothing. Ordering is the
// strict total order (when, seq) — seq is unique per event — so any
// correct min-heap pops events in exactly the same sequence; switching
// the heap arity cannot change a single simulated cycle.
package sim

import (
	"fmt"
	"slices"
)

// Time is a simulation timestamp in CPU cycles. The simulated machine runs
// at Frequency cycles per second, so wall-clock intervals convert via
// Millisecond and friends.
type Time = int64

// Frequency is the simulated core clock in cycles per second (3 GHz,
// matching Table II of the paper).
const Frequency = 3_000_000_000

// Convenient durations expressed in cycles at Frequency.
const (
	Nanosecond  Time = 3 // 3 cycles per ns at 3 GHz
	Microsecond Time = 3_000
	Millisecond Time = 3_000_000
	Second      Time = Frequency
)

// event is a scheduled callback. seq breaks ties among events with equal
// timestamps so ordering is deterministic FIFO. An event carries either a
// plain callback (fn) or a prebound single-argument callback (afn+arg);
// the latter lets hot paths schedule completions without materializing a
// fresh closure per event. comp tags the owning simulated component for
// host profiling; it never affects ordering.
type event struct {
	when Time
	seq  uint64
	fn   func()
	afn  func(uint64)
	arg  uint64
	comp Component
}

// less orders events by (when, seq). seq is unique, so this is a strict
// total order: heap pop order is independent of heap shape.
func (ev event) less(other event) bool {
	if ev.when != other.when {
		return ev.when < other.when
	}
	return ev.seq < other.seq
}

// Done is a heap-free completion token: the continuation a component hands
// down the memory hierarchy instead of a freshly allocated `func()`
// closure. It wraps either a plain callback or a callback bound to one
// uint64 argument; components materialize the bound method value once (at
// construction or pool-entry birth) and pass copies of the token through
// the port chain, so the steady-state access path allocates nothing.
//
// The zero value is the "no completion" token (the old nil done):
// Valid() is false and Run() is a no-op.
//
// A token carries the Component that owns its callback, declared once at
// the Thunk/Bind birth site; ScheduleDone/AtDone attribute the resulting
// event to that owner.
// A token also carries an optional journey ID (see internal/journey):
// when a sampled access's completion chain is handed down the hierarchy,
// WithJourney stamps the token and each component reads Journey() to tag
// the spans it records. The slot packs into the struct's existing
// padding next to comp, so carrying it is free, and an unstamped token's
// jid is 0 ("not sampled") — the tracing-off path costs one predictable
// branch per component and zero allocations.
type Done struct {
	fn   func()
	afn  func(uint64)
	arg  uint64
	comp Component
	jid  uint32
	key  uint64
}

// Thunk wraps a plain callback as a completion token owned by comp.
// Wrapping is free; creating fn itself may allocate, so hot paths should
// create it once and reuse the token.
func Thunk(comp Component, fn func()) Done { return Done{fn: fn, comp: comp} }

// Bind wraps a single-argument callback plus its argument as a completion
// token owned by comp. The callback is typically a method value stored
// once on the owning component; Bind itself never allocates.
func Bind(comp Component, fn func(uint64), arg uint64) Done {
	return Done{afn: fn, arg: arg, comp: comp}
}

// KeyedThunk wraps a plain callback as a completion token owned by comp
// and carrying a stable resume identity. Components whose tokens may be
// parked in device queues across a simulator snapshot declare a key at
// the birth site; the snapshot subsystem serializes parked tokens as
// (key, arg) pairs and re-binds them through a key registry on resume.
// Keys must be unique per live callback target; 0 means "no identity"
// (such a token cannot cross a snapshot boundary).
func KeyedThunk(comp Component, key uint64, fn func()) Done {
	return Done{fn: fn, comp: comp, key: key}
}

// KeyedBind wraps a single-argument callback plus its argument as a
// completion token owned by comp with a stable resume identity; see
// KeyedThunk for the key contract.
func KeyedBind(comp Component, key uint64, fn func(uint64), arg uint64) Done {
	return Done{afn: fn, arg: arg, comp: comp, key: key}
}

// Component returns the owner declared when the token was built.
func (d Done) Component() Component { return d.comp }

// Key returns the token's resume identity (0 when none was declared).
func (d Done) Key() uint64 { return d.key }

// Arg returns the bound argument (0 for plain-callback tokens).
func (d Done) Arg() uint64 { return d.arg }

// WithArg returns a copy of the token with its bound argument replaced;
// the snapshot subsystem uses it to rehydrate serialized (key, arg)
// pairs from a registry of key prototypes.
func (d Done) WithArg(arg uint64) Done {
	d.arg = arg
	return d
}

// WithJourney returns a copy of the token stamped with a journey ID;
// components downstream read it back with Journey. Stamping jid 0 is the
// identity (an unsampled access).
func (d Done) WithJourney(jid uint32) Done {
	d.jid = jid
	return d
}

// Journey returns the journey ID the token was stamped with (0 when the
// access is not sampled or tracing is off).
func (d Done) Journey() uint32 { return d.jid }

// Valid reports whether the token carries a callback (the analogue of the
// old `done != nil` check).
func (d Done) Valid() bool { return d.fn != nil || d.afn != nil }

// Run invokes the wrapped callback, if any.
func (d Done) Run() {
	if d.fn != nil {
		d.fn()
		return
	}
	if d.afn != nil {
		d.afn(d.arg)
	}
}

// Engine is the discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	queue []event // flat 4-ary min-heap ordered by (when, seq)
	now   Time
	seq   uint64
	fired uint64
	prof  *Profile // nil unless EnableProfiling was called
}

// NewEngine returns an empty engine at cycle zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in cycles.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events executed so far, useful as a
// progress and determinism check.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// ScheduleSeq returns the sequence number the next scheduled event will
// receive. Because seq is the same-cycle tiebreaker and every Schedule/At
// consumes exactly one, a component that records ScheduleSeq right after
// scheduling an event can later prove "nothing else was scheduled in
// between" by comparing — the foundation of the device's order-safe
// completion batching.
func (e *Engine) ScheduleSeq() uint64 { return e.seq }

// Clock returns the engine's full clock state — current cycle, next
// schedule sequence number, and events fired — for snapshotting.
func (e *Engine) Clock() (now Time, seq, fired uint64) {
	return e.now, e.seq, e.fired
}

// RestoreClock overwrites the engine clock state with a previously
// captured one. The snapshot-resume path calls it after ResetQueue so
// that subsequently injected and scheduled events reproduce the saved
// run's (when, seq) order exactly.
func (e *Engine) RestoreClock(now Time, seq, fired uint64) {
	e.now = now
	e.seq = seq
	e.fired = fired
}

// ResetQueue discards every pending event without firing it. Only the
// snapshot-resume path uses it: a freshly booted kernel's constructor
// events are replaced wholesale by the saved run's re-injected ones.
func (e *Engine) ResetQueue() {
	for i := range e.queue {
		e.queue[i] = event{}
	}
	e.queue = e.queue[:0]
}

// Inject pushes an event with an explicit (when, seq) identity without
// consuming the engine's sequence counter. The snapshot-resume path uses
// it to re-create pending events whose owners recorded their scheduled
// identity; when must not be in the past.
func (e *Engine) Inject(comp Component, when Time, seq uint64, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: inject at %d before now %d", when, e.now))
	}
	e.push(event{when: when, seq: seq, fn: fn, comp: comp})
}

// InjectDone is Inject for a completion token.
func (e *Engine) InjectDone(when Time, seq uint64, d Done) {
	if when < e.now {
		panic(fmt.Sprintf("sim: inject at %d before now %d", when, e.now))
	}
	e.push(event{when: when, seq: seq, fn: d.fn, afn: d.afn, arg: d.arg, comp: d.comp})
}

// PendingKey identifies one queued event by its total-order position.
type PendingKey struct {
	When Time
	Seq  uint64
}

// PendingKeys returns the (when, seq) identity of every queued event in
// ascending order. The snapshot path cross-checks it against the events
// each component claims ownership of, proving the queue was reconstructed
// exactly.
func (e *Engine) PendingKeys() []PendingKey {
	out := make([]PendingKey, len(e.queue))
	for i, ev := range e.queue {
		out[i] = PendingKey{When: ev.when, Seq: ev.seq}
	}
	slices.SortFunc(out, func(a, b PendingKey) int {
		if a.When != b.When {
			if a.When < b.When {
				return -1
			}
			return 1
		}
		if a.Seq != b.Seq {
			if a.Seq < b.Seq {
				return -1
			}
			return 1
		}
		return 0
	})
	return out
}

// AssertDrained returns nil when no events are pending, or an error
// naming the leftover count and the next due timestamp. Tests use it to
// prove a simulation wound down completely instead of abandoning queued
// work (e.g. the runner's per-spec engines after a measured window).
func (e *Engine) AssertDrained() error {
	if len(e.queue) == 0 {
		return nil
	}
	return fmt.Errorf("sim: %d events still pending, next at cycle %d (now %d)",
		len(e.queue), e.queue[0].when, e.now)
}

// Schedule runs fn delay cycles from now, attributing the event to comp.
// A negative delay panics: the simulator never travels backwards.
func (e *Engine) Schedule(comp Component, delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay)) //prosperlint:ignore hotalloc panic path: the message formats only when a negative delay aborts the run
	}
	e.At(comp, e.now+delay, fn)
}

// At runs fn at the absolute cycle t, which must not be in the past,
// attributing the event to comp.
func (e *Engine) At(comp Component, t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now)) //prosperlint:ignore hotalloc panic path: the message formats only when scheduling into the past aborts the run
	}
	e.push(event{when: t, seq: e.seq, fn: fn, comp: comp})
	e.seq++
}

// ScheduleDone runs the completion token delay cycles from now. The event
// is attributed to the token's owner.
func (e *Engine) ScheduleDone(delay Time, d Done) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay)) //prosperlint:ignore hotalloc panic path: the message formats only when a negative delay aborts the run
	}
	e.AtDone(e.now+delay, d)
}

// AtDone runs the completion token at the absolute cycle t. The event is
// attributed to the token's owner.
func (e *Engine) AtDone(t Time, d Done) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now)) //prosperlint:ignore hotalloc panic path: the message formats only when scheduling into the past aborts the run
	}
	e.push(event{when: t, seq: e.seq, fn: d.fn, afn: d.afn, arg: d.arg, comp: d.comp})
	e.seq++
}

// push inserts ev, sifting up through 4-ary parents. Shifting occupied
// slots down and writing ev once at its final position keeps the inner
// loop to one comparison and one copy per level.
func (e *Engine) push(ev event) {
	e.queue = append(e.queue, ev) //prosperlint:ignore hotalloc amortized: the event heap grows to the high-water mark and is reused
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ev.less(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
}

// pop removes and returns the minimum event (the root at index 0, which
// AssertDrained and RunUntil peek directly).
func (e *Engine) pop() event {
	q := e.queue
	root := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // drop callback references so the GC can reclaim them
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return root
}

// siftDown re-inserts ev from the root, descending to the smallest of up
// to four children per level.
func (e *Engine) siftDown(ev event) {
	q := e.queue
	n := len(q)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q[c].less(q[min]) {
				min = c
			}
		}
		if !q[min].less(ev) {
			break
		}
		q[i] = q[min]
		i = min
	}
	q[i] = ev
}

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.when
	e.fired++
	if e.prof != nil {
		e.prof.record(ev.comp)
	}
	if ev.fn != nil {
		ev.fn()
	} else if ev.afn != nil {
		ev.afn(ev.arg)
	}
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later
// events queued. The clock is then advanced to deadline (even when the
// last fired event was earlier), so subsequent Schedule calls are
// relative to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events until cond() reports false or the queue drains.
// cond is evaluated before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Ticker invokes fn every period cycles until Stop is called. The first
// tick fires one period from the time Tick is created. The rescheduling
// callback is bound once at construction and reused every period, so a
// steady ticker contributes zero allocations per tick. Every tick event
// is attributed to the component declared at construction.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	tickFn  func() // t.tick, materialized once
	comp    Component
	stopped bool

	// nextWhen/nextSeq record the scheduled identity of the pending tick
	// so a snapshot can claim (and a resume re-inject) that exact event.
	nextWhen Time
	nextSeq  uint64
}

// NewTicker schedules fn to run every period cycles, attributing tick
// events to comp. period must be positive.
func (e *Engine) NewTicker(comp Component, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn, comp: comp}
	t.tickFn = t.tick
	t.nextWhen, t.nextSeq = e.now+period, e.seq
	e.Schedule(comp, period, t.tickFn)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.nextWhen, t.nextSeq = t.engine.now+t.period, t.engine.seq
		t.engine.Schedule(t.comp, t.period, t.tickFn)
	}
}

// Stop cancels future ticks. It is safe to call from within fn.
func (t *Ticker) Stop() { t.stopped = true }

// Stopped reports whether the ticker has been stopped.
func (t *Ticker) Stopped() bool { return t.stopped }

// NextFire returns the scheduled identity of the pending tick event.
// Meaningless after Stop (the stale event stays queued but is a no-op);
// the snapshot path still claims it so the queue cross-check balances.
func (t *Ticker) NextFire() (when Time, seq uint64) { return t.nextWhen, t.nextSeq }

// Rearm re-injects the pending tick event with an explicit identity on a
// freshly reset engine queue (snapshot resume).
func (t *Ticker) Rearm(when Time, seq uint64) {
	t.nextWhen, t.nextSeq = when, seq
	t.engine.Inject(t.comp, when, seq, t.tickFn)
}

// Package sim provides the deterministic discrete-event simulation engine
// that drives every timing component in the repository: cores, caches,
// memory devices, the Prosper dirty tracker, kernel timers, and background
// persistence threads.
//
// The engine is single-threaded and fully deterministic: events scheduled
// for the same cycle fire in the order they were scheduled (FIFO), and all
// randomness in the simulator flows from explicitly seeded sources
// (see Rand). Re-running a configuration always reproduces the same cycle
// counts and statistics.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in CPU cycles. The simulated machine runs
// at Frequency cycles per second, so wall-clock intervals convert via
// Millisecond and friends.
type Time = int64

// Frequency is the simulated core clock in cycles per second (3 GHz,
// matching Table II of the paper).
const Frequency = 3_000_000_000

// Convenient durations expressed in cycles at Frequency.
const (
	Nanosecond  Time = 3 // 3 cycles per ns at 3 GHz
	Microsecond Time = 3_000
	Millisecond Time = 3_000_000
	Second      Time = Frequency
)

// event is a scheduled callback. seq breaks ties among events with equal
// timestamps so ordering is deterministic FIFO.
type event struct {
	when Time
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	queue eventHeap
	now   Time
	seq   uint64
	fired uint64
}

// NewEngine returns an empty engine at cycle zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in cycles.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events executed so far, useful as a
// progress and determinism check.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// AssertDrained returns nil when no events are pending, or an error
// naming the leftover count and the next due timestamp. Tests use it to
// prove a simulation wound down completely instead of abandoning queued
// work (e.g. the runner's per-spec engines after a measured window).
func (e *Engine) AssertDrained() error {
	if len(e.queue) == 0 {
		return nil
	}
	return fmt.Errorf("sim: %d events still pending, next at cycle %d (now %d)",
		len(e.queue), e.queue[0].when, e.now)
}

// Schedule runs fn delay cycles from now. A negative delay panics: the
// simulator never travels backwards.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute cycle t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	heap.Push(&e.queue, event{when: t, seq: e.seq, fn: fn})
	e.seq++
}

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later
// events queued. The clock is then advanced to deadline (even when the
// last fired event was earlier), so subsequent Schedule calls are
// relative to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events until cond() reports false or the queue drains.
// cond is evaluated before each event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Ticker invokes fn every period cycles until Stop is called. The first
// tick fires one period from the time Tick is created.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	stopped bool
}

// NewTicker schedules fn to run every period cycles. period must be
// positive.
func (e *Engine) NewTicker(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	e.Schedule(period, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.engine.Schedule(t.period, t.tick)
	}
}

// Stop cancels future ticks. It is safe to call from within fn.
func (t *Ticker) Stop() { t.stopped = true }

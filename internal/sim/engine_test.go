package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(CompOther, 10, func() { order = append(order, 2) })
	e.Schedule(CompOther, 5, func() { order = append(order, 1) })
	e.Schedule(CompOther, 20, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %d, want 20", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(CompOther, 7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("event %d fired out of order (got %d)", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 10 {
			e.Schedule(CompOther, 1, rec)
		}
	}
	e.Schedule(CompOther, 0, rec)
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 9 {
		t.Fatalf("clock = %d, want 9", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(CompOther, 5, func() { fired++ })
	e.Schedule(CompOther, 15, func() { fired++ })
	e.RunUntil(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %d, want 10", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	NewEngine().Schedule(CompOther, -1, func() {})
}

func TestEnginePastSchedulePanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(CompOther, 100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for scheduling in the past")
		}
	}()
	e.At(CompOther, 50, func() {})
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := e.NewTicker(CompOther, 10, func() {
		ticks++
	})
	e.RunUntil(55)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	tk.Stop()
	e.RunUntil(200)
	if ticks != 5 {
		t.Fatalf("ticks after stop = %d, want 5", ticks)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tk *Ticker
	tk = e.NewTicker(CompOther, 3, func() {
		ticks++
		if ticks == 4 {
			tk.Stop()
		}
	})
	e.Run()
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4", ticks)
	}
}

// Property: events always fire in nondecreasing time order and FIFO among
// equal timestamps, regardless of the insertion order of delays.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 256 {
			delays = delays[:256]
		}
		e := NewEngine()
		type rec struct {
			when Time
			seq  int
		}
		var fired []rec
		for i, d := range delays {
			when := Time(d)
			i := i
			e.At(CompOther, when, func() { fired = append(fired, rec{e.Now(), i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].when < fired[i-1].when {
				return false
			}
			if fired[i].when == fired[i-1].when && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded sources diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(63, 20)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < 62 || mean > 64 {
		t.Fatalf("normal mean = %f, want ~63", mean)
	}
	if variance < 350 || variance > 450 {
		t.Fatalf("normal variance = %f, want ~400", variance)
	}
}

func TestRandPoissonMean(t *testing.T) {
	r := NewRand(13)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(63)
	}
	mean := float64(sum) / n
	if mean < 62 || mean > 64 {
		t.Fatalf("poisson mean = %f, want ~63", mean)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %f", v)
		}
	}
}

// TestHeapMatchesReferenceSort drives the flat 4-ary heap with an
// adversarial mix of interleaved At/Schedule calls — including events
// scheduled from inside running events — and checks the full dispatch
// order against a stable sort by (when, insertion order). This is the
// exact contract the simulator's determinism rests on: seq numbers are
// unique, so one correct order exists and the heap must produce it.
func TestHeapMatchesReferenceSort(t *testing.T) {
	f := func(delays []uint16, nested []uint8) bool {
		e := NewEngine()
		type rec struct {
			when  Time
			order int
		}
		var want []rec
		var got []int
		order := 0
		add := func(when Time) {
			id := order
			order++
			want = append(want, rec{when, id})
			e.At(CompOther, when, func() { got = append(got, id) })
		}
		for i, d := range delays {
			if i >= 128 {
				break
			}
			add(Time(d))
			// Occasionally schedule a follow-up from inside an event, so
			// pushes interleave with pops mid-run. The follow-up's id is
			// assigned when it is actually scheduled (inside the wrapper),
			// matching the engine's seq assignment: an event scheduled
			// mid-run ties AFTER every pre-run event at the same timestamp.
			if i < len(nested) && nested[i]%3 == 0 {
				extra := Time(d) + Time(nested[i])
				e.At(CompOther, Time(d), func() {
					id := order
					order++
					want = append(want, rec{extra, id})
					e.At(CompOther, extra, func() { got = append(got, id) })
				})
			}
		}
		e.Run()
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].when != want[j].when {
				return want[i].when < want[j].when
			}
			return want[i].order < want[j].order
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i].order {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleSteadyStateAllocs pins the scheduler's hot path at zero
// heap allocations once the event array has grown to working size:
// neither Schedule/ScheduleDone nor dispatch may box events.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	tok := Thunk(CompOther, fn)
	allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 32; i++ {
			e.Schedule(CompOther, Time(i%7), fn)
			e.ScheduleDone(Time(i%5), tok)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("scheduler allocates %.1f objects per batch, want 0", allocs)
	}
}

// TestTickerSteadyStateAllocs pins the recurring-tick path: after the
// first tick the Ticker must reuse its stored callback instead of
// allocating a fresh closure per period.
func TestTickerSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.NewTicker(CompOther, 10, func() { ticks++ })
	e.RunUntil(100) // warm: first ticks grow the queue
	before := ticks
	allocs := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 50)
	})
	if allocs != 0 {
		t.Fatalf("ticker allocates %.1f objects per 5 ticks, want 0", allocs)
	}
	if ticks <= before {
		t.Fatal("ticker stopped firing")
	}
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestComponentNames(t *testing.T) {
	want := []string{"sim", "mem", "cache", "vm", "kernel", "prosper", "persist", "workload", "other"}
	comps := Components()
	if len(comps) != len(want) {
		t.Fatalf("NumComponents = %d, want %d", len(comps), len(want))
	}
	for i, c := range comps {
		if c.String() != want[i] {
			t.Fatalf("component %d = %q, want %q", i, c.String(), want[i])
		}
	}
	if Component(200).String() != "other" {
		t.Fatalf("out-of-range component should stringify as other")
	}
}

func TestProfileCountsSumToFired(t *testing.T) {
	e := NewEngine()
	p := e.EnableProfiling(nil)
	if e.Profiling() != p {
		t.Fatal("Profiling() did not return the attached profile")
	}
	for i := 0; i < 500; i++ {
		c := Component(i % NumComponents)
		e.Schedule(c, Time(i%13), func() {})
	}
	e.ScheduleDone(5, Thunk(CompMem, func() {}))
	e.ScheduleDone(5, Bind(CompCache, func(uint64) {}, 7))
	e.Run()
	snap := p.Snapshot()
	if snap.TotalEvents() != e.Fired() {
		t.Fatalf("counts sum to %d, want Fired() = %d", snap.TotalEvents(), e.Fired())
	}
	if snap.Counts[CompMem] != 500/uint64(NumComponents)+1+1 {
		// 500 events round-robined over 9 components: comps 0..4 get 56,
		// comps 5..8 get 55; CompMem (index 1) gets 56, plus one Thunk.
		t.Fatalf("CompMem count = %d", snap.Counts[CompMem])
	}
	if snap.Counts[CompCache] != 500/uint64(NumComponents)+1+1 {
		t.Fatalf("CompCache count = %d", snap.Counts[CompCache])
	}
}

// TestProfilingPreservesOrder proves the profiled dispatch fires events in
// exactly the same (when, seq) order as the unprofiled dispatch: profiling
// observes the stream, never reorders it.
func TestProfilingPreservesOrder(t *testing.T) {
	run := func(delays []uint16, profile bool) []int {
		e := NewEngine()
		if profile {
			e.EnableProfiling(nil)
		}
		var got []int
		for i, d := range delays {
			id := i
			e.Schedule(Component(i%NumComponents), Time(d), func() { got = append(got, id) })
		}
		e.Run()
		return got
	}
	f := func(delays []uint16) bool {
		if len(delays) > 128 {
			delays = delays[:128]
		}
		plain := run(delays, false)
		profiled := run(delays, true)
		if len(plain) != len(profiled) {
			return false
		}
		for i := range plain {
			if plain[i] != profiled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestProfileBatchedNanos drives the profiler past a batch boundary with a
// synthetic clock and checks the elapsed time is spread over components in
// proportion to their event counts within the batch.
func TestProfileBatchedNanos(t *testing.T) {
	e := NewEngine()
	now := int64(0)
	clock := func() int64 { return now }
	p := e.EnableProfiling(clock)

	// One full batch: 3/4 CompMem, 1/4 CompCache.
	for i := 0; i < profileBatchEvents; i++ {
		c := CompMem
		if i%4 == 0 {
			c = CompCache
		}
		e.Schedule(c, 0, func() {})
	}
	now = 4096 // 4 ns per event
	e.Run()
	snap := p.Snapshot()
	if snap.Counts[CompMem] != profileBatchEvents*3/4 || snap.Counts[CompCache] != profileBatchEvents/4 {
		t.Fatalf("counts = mem:%d cache:%d", snap.Counts[CompMem], snap.Counts[CompCache])
	}
	if snap.Nanos[CompMem] != 4096*3/4 {
		t.Fatalf("CompMem nanos = %d, want %d", snap.Nanos[CompMem], 4096*3/4)
	}
	if snap.Nanos[CompCache] != 4096/4 {
		t.Fatalf("CompCache nanos = %d, want %d", snap.Nanos[CompCache], 4096/4)
	}
	if snap.TotalNanos() != 4096 {
		t.Fatalf("TotalNanos = %d, want 4096", snap.TotalNanos())
	}

	// A partial batch flushes on Snapshot.
	for i := 0; i < 10; i++ {
		e.Schedule(CompVM, 0, func() {})
	}
	now += 1000
	e.Run()
	snap = p.Snapshot()
	if snap.Counts[CompVM] != 10 {
		t.Fatalf("CompVM count = %d, want 10", snap.Counts[CompVM])
	}
	if snap.Nanos[CompVM] != 1000 {
		t.Fatalf("CompVM nanos = %d, want 1000", snap.Nanos[CompVM])
	}
}

// TestProfilingOnSteadyStateAllocs pins the profiled dispatch loop at zero
// allocations too: per-component accounting is plain array arithmetic.
func TestProfilingOnSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	e.EnableProfiling(nil)
	fn := func() {}
	tok := Thunk(CompMem, fn)
	allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 32; i++ {
			e.Schedule(CompCache, Time(i%7), fn)
			e.ScheduleDone(Time(i%5), tok)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("profiled scheduler allocates %.1f objects per batch, want 0", allocs)
	}
}

package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random source
// (xorshift64star). Every component that needs randomness owns a Rand
// seeded from its configuration, so simulations replay identically.
// We do not use math/rand's global source anywhere in the simulator.
type Rand struct {
	state uint64
}

// NewRand returns a source seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift requires non-zero state.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// State returns the generator's internal state for snapshotting.
func (r *Rand) State() uint64 { return r.state }

// SetState overwrites the generator's internal state (snapshot resume).
// A zero state is remapped like NewRand's zero seed.
func (r *Rand) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). n must be positive.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Poisson returns a Poisson-distributed count with rate lambda using
// Knuth's method for small lambda and a normal approximation above 500.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		v := r.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

package sim

// Host-side event-owner profiling. When enabled, the dispatch loop
// accumulates two per-component series:
//
//   - event counts: how many dispatched events each component owned.
//     Pure integer bookkeeping on the deterministic event stream, so the
//     counts are exactly reproducible (and exact-checked by
//     prosper-bench, like sim_cycles).
//
//   - host nanoseconds: how much wall time the dispatch loop spent in
//     each component's callbacks. Reading the host clock per event would
//     dominate the cost being measured, so the profiler samples it once
//     per batch of dispatched events and spreads the batch's elapsed
//     time over the components in proportion to their event counts in
//     that batch. Informational only: it varies run to run and never
//     participates in any determinism check.
//
// Profiling is disabled by default. The off path is a single nil check
// in Step — zero allocations, and (when, seq) dispatch order is
// identical either way (pinned by TestProfilingPreservesOrder and the
// engine allocation tests).
//
// The clock is injected (see EnableProfiling) so this package stays free
// of host time sources; internal/hostprof owns the sanctioned
// time.Now-based clock (prosper-lint's wallclock allowlist).

// profileBatchEvents is how many dispatched events share one host clock
// reading. 1024 keeps clock overhead under ~0.1% of dispatch cost while
// still attributing time at sub-millisecond granularity on typical runs.
const profileBatchEvents = 1024

// Profile accumulates per-component dispatch accounting for one Engine.
// It is owned by exactly one engine and is not safe for concurrent use
// (the engine is single-threaded; read results after the run or between
// Step calls).
type Profile struct {
	clock  func() int64 // monotonic host nanoseconds; nil = counts only
	counts [NumComponents]uint64
	nanos  [NumComponents]int64
	batch  [NumComponents]uint32
	batchN uint32
	lastNS int64
}

// ProfileSnapshot is a copy of a Profile's accumulated series. Counts is
// deterministic for a given binary, suite, and seed; Nanos is
// host-dependent and informational.
type ProfileSnapshot struct {
	Counts [NumComponents]uint64
	Nanos  [NumComponents]int64
}

// EnableProfiling attaches a fresh Profile to the engine and returns it.
// clock must return monotonic host nanoseconds (use hostprof.Nanotime);
// a nil clock records event counts only. Enable before the first Step so
// the per-component counts sum to Fired().
func (e *Engine) EnableProfiling(clock func() int64) *Profile {
	p := &Profile{clock: clock}
	if clock != nil {
		p.lastNS = clock()
	}
	e.prof = p
	return p
}

// Profiling returns the engine's attached Profile, or nil when disabled.
func (e *Engine) Profiling() *Profile { return e.prof }

// record attributes one dispatched event to its owning component.
func (p *Profile) record(c Component) {
	p.counts[c]++
	p.batch[c]++
	p.batchN++
	if p.batchN >= profileBatchEvents {
		p.flushBatch()
	}
}

// flushBatch reads the host clock once and spreads the elapsed time over
// the batch's components in proportion to their event counts. Integer
// division truncates; the remainder (at most batchN-1 nanoseconds per
// batch) is dropped rather than re-attributed, so Nanos slightly
// undercounts total wall time — fine for an informational share.
func (p *Profile) flushBatch() {
	if p.batchN == 0 {
		return
	}
	if p.clock != nil {
		now := p.clock()
		dt := now - p.lastNS
		p.lastNS = now
		if dt > 0 {
			for c := range p.batch {
				if n := p.batch[c]; n > 0 {
					p.nanos[c] += dt * int64(n) / int64(p.batchN)
				}
			}
		}
	}
	p.batch = [NumComponents]uint32{}
	p.batchN = 0
}

// Snapshot flushes the open batch and returns a copy of the accumulated
// per-component series.
func (p *Profile) Snapshot() ProfileSnapshot {
	p.flushBatch()
	return ProfileSnapshot{Counts: p.counts, Nanos: p.nanos}
}

// TotalEvents returns the sum of per-component event counts — by
// construction equal to the number of events dispatched while profiling
// was enabled (Engine.Fired when enabled from birth).
func (s ProfileSnapshot) TotalEvents() uint64 {
	var total uint64
	for _, n := range s.Counts {
		total += n
	}
	return total
}

// TotalNanos returns the sum of attributed host nanoseconds.
func (s ProfileSnapshot) TotalNanos() int64 {
	var total int64
	for _, n := range s.Nanos {
		total += n
	}
	return total
}

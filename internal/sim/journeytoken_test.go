package sim

import (
	"testing"
	"testing/quick"
)

// TestDoneJourneySlot pins the packed journey-ID slot on completion
// tokens: WithJourney is a value transform (the original token is
// untouched), Journey round-trips the ID, and a zero token carries 0.
func TestDoneJourneySlot(t *testing.T) {
	fn := func() {}
	tok := Thunk(CompMem, fn)
	if tok.Journey() != 0 {
		t.Fatalf("fresh token carries jid %d, want 0", tok.Journey())
	}
	tagged := tok.WithJourney(7)
	if tagged.Journey() != 7 {
		t.Fatalf("tagged token carries jid %d, want 7", tagged.Journey())
	}
	if tok.Journey() != 0 {
		t.Fatal("WithJourney mutated the original token")
	}
	bound := Bind(CompCache, func(uint64) {}, 3).WithJourney(9)
	if bound.Journey() != 9 {
		t.Fatalf("bound token carries jid %d, want 9", bound.Journey())
	}
}

// TestJourneyTokenPreservesOrder proves that tagging completion tokens
// with journey IDs never perturbs the engine's (when, seq) firing order:
// the jid rides dead weight in the token, invisible to the scheduler.
func TestJourneyTokenPreservesOrder(t *testing.T) {
	run := func(delays []uint16, tag bool) []int {
		e := NewEngine()
		var got []int
		for i, d := range delays {
			id := i
			tok := Thunk(Component(i%NumComponents), func() { got = append(got, id) })
			if tag {
				tok = tok.WithJourney(uint32(i + 1))
			}
			e.ScheduleDone(Time(d), tok)
		}
		e.Run()
		return got
	}
	f := func(delays []uint16) bool {
		if len(delays) > 128 {
			delays = delays[:128]
		}
		plain := run(delays, false)
		tagged := run(delays, true)
		if len(plain) != len(tagged) {
			return false
		}
		for i := range plain {
			if plain[i] != tagged[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestJourneyTokenSteadyStateAllocs pins that scheduling journey-tagged
// tokens allocates nothing: the slot packs into existing token padding.
func TestJourneyTokenSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	tok := Thunk(CompMem, fn).WithJourney(5)
	allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 32; i++ {
			e.ScheduleDone(Time(i%5), tok)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("journey-tagged scheduling allocates %.1f objects per batch, want 0", allocs)
	}
}

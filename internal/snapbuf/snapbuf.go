// Package snapbuf provides the deterministic binary encoding primitives
// the simulator snapshot format is built from: a little-endian append-only
// Writer and a bounds-checked Reader with a sticky error.
//
// The package is a dependency leaf (standard library only) so every
// simulator layer — mem, machine, persist, kernel — can serialize its own
// unexported state without import cycles. Framing (sections, CRCs,
// versioning) lives in internal/snapshot; this package only encodes
// scalars, byte strings, and counted sequences, always little-endian,
// with no map iteration and no reflection, so identical state always
// encodes to identical bytes.
package snapbuf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports a read past the end of the buffer.
var ErrTruncated = errors.New("snapbuf: truncated input")

// ErrRange reports a decoded length or count that cannot fit the
// remaining input (corrupt or adversarial data).
var ErrRange = errors.New("snapbuf: length out of range")

// Writer accumulates a deterministic little-endian encoding.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
		return
	}
	w.U8(0)
}

// U32 appends a little-endian 32-bit value.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian 64-bit value.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a little-endian signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as a signed 64-bit value.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 by its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes8 appends a 64-bit length prefix followed by the raw bytes.
func (w *Writer) Bytes8(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends bytes with no length prefix; the framing layer uses it for
// section payloads whose length is recorded in the section header.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader decodes a snapbuf encoding with a sticky error: after the first
// failure every subsequent read returns zero values, so decoders can run
// straight-line and check Err once.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many bytes are left to decode.
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.data) - r.off
}

// Fail records err (if none is recorded yet) and returns it.
func (r *Reader) Fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte boolean; any nonzero byte is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian 32-bit value.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int encoded as a signed 64-bit value.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 from its IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes8 reads a 64-bit length-prefixed byte string. The returned slice
// aliases the reader's buffer; callers that retain it must copy.
func (r *Reader) Bytes8() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.err = fmt.Errorf("%w: byte string of %d with %d remaining", ErrRange, n, len(r.data)-r.off)
		return nil
	}
	return r.take(int(n))
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes8()) }

// Raw reads exactly n unprefixed bytes. The returned slice aliases the
// reader's buffer; callers that retain it must copy.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Count reads a sequence count and validates it against the minimum
// per-element encoded size, so corrupt counts fail fast instead of
// driving huge allocations.
func (r *Reader) Count(elemMin int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(len(r.data)-r.off)/uint64(elemMin) {
		r.err = fmt.Errorf("%w: count %d with %d remaining", ErrRange, n, len(r.data)-r.off)
		return 0
	}
	return int(n)
}

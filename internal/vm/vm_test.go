package vm

import (
	"testing"
	"testing/quick"

	"prosper/internal/mem"
)

func testAllocators() (*mem.FrameAllocator, *mem.FrameAllocator) {
	return mem.NewFrameAllocator(mem.DRAMBase, 64<<20),
		mem.NewFrameAllocator(mem.NVMBase, 64<<20)
}

func testPT() *PageTable {
	dram, _ := testAllocators()
	return NewPageTable(func() uint64 {
		f, err := dram.Alloc()
		if err != nil {
			panic(err)
		}
		return f
	})
}

func TestPageTableMapTranslate(t *testing.T) {
	pt := testPT()
	pt.Map(0x7fff_0000_1000, 0x20_3000, FlagWrite|FlagUser)
	paddr, pte, ok := pt.Translate(0x7fff_0000_1abc)
	if !ok {
		t.Fatal("translation missing")
	}
	if paddr != 0x20_3abc {
		t.Fatalf("paddr = %#x", paddr)
	}
	if !pte.Writable() || pte.Dirty() {
		t.Fatalf("flags = %#x", pte.Flags)
	}
	if _, _, ok := pt.Translate(0x7fff_0000_2000); ok {
		t.Fatal("unmapped page translated")
	}
}

func TestPageTableUnmap(t *testing.T) {
	pt := testPT()
	pt.Map(0x1000, 0x9000, FlagWrite)
	if pt.Mapped() != 1 {
		t.Fatalf("mapped = %d", pt.Mapped())
	}
	frame, ok := pt.Unmap(0x1000)
	if !ok || frame != 0x9000 {
		t.Fatalf("unmap = %#x, %v", frame, ok)
	}
	if pt.Mapped() != 0 {
		t.Fatalf("mapped = %d", pt.Mapped())
	}
	if _, ok := pt.Unmap(0x1000); ok {
		t.Fatal("double unmap succeeded")
	}
}

func TestPageTableRemapKeepsCount(t *testing.T) {
	pt := testPT()
	pt.Map(0x1000, 0x9000, 0)
	pt.Map(0x1000, 0xa000, 0)
	if pt.Mapped() != 1 {
		t.Fatalf("mapped = %d after remap", pt.Mapped())
	}
	paddr, _, _ := pt.Translate(0x1010)
	if paddr != 0xa010 {
		t.Fatalf("remap not applied: %#x", paddr)
	}
}

func TestWalkAddrsDepth(t *testing.T) {
	pt := testPT()
	if got := len(pt.WalkAddrs(0x5000)); got != 1 {
		t.Fatalf("unmapped walk depth = %d, want 1 (root only)", got)
	}
	pt.Map(0x5000, 0x8000, 0)
	if got := len(pt.WalkAddrs(0x5000)); got != 4 {
		t.Fatalf("mapped walk depth = %d, want 4", got)
	}
	addrs := pt.WalkAddrs(0x5000)
	seen := map[uint64]bool{}
	for _, a := range addrs {
		if seen[mem.PageOf(a)] {
			t.Fatal("two walk levels share a table page")
		}
		seen[mem.PageOf(a)] = true
	}
}

func TestVisitRange(t *testing.T) {
	pt := testPT()
	for i := uint64(0); i < 10; i++ {
		pt.Map(0x10000+i*mem.PageSize, 0x100000+i*mem.PageSize, FlagWrite)
	}
	var visited []uint64
	pt.VisitRange(0x10000+2*mem.PageSize, 0x10000+7*mem.PageSize, func(va uint64, _ *PTE) {
		visited = append(visited, va)
	})
	if len(visited) != 5 {
		t.Fatalf("visited %d pages, want 5", len(visited))
	}
	for i, va := range visited {
		want := 0x10000 + uint64(i+2)*mem.PageSize
		if va != want {
			t.Fatalf("visit order: got %#x want %#x", va, want)
		}
	}
}

func TestVisitRangeSparse(t *testing.T) {
	pt := testPT()
	// Two mappings gigabytes apart: visiting must skip absent subtrees.
	pt.Map(0x1000, 0x8000, 0)
	pt.Map(0x40_0000_0000, 0x9000, 0)
	count := 0
	pt.VisitRange(0, MaxVirtual, func(uint64, *PTE) { count++ })
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestClearFlagsRange(t *testing.T) {
	pt := testPT()
	for i := uint64(0); i < 4; i++ {
		pt.Map(i*mem.PageSize, 0x10000+i*mem.PageSize, FlagWrite|FlagDirty)
	}
	n := pt.ClearFlagsRange(0, 2*mem.PageSize, FlagDirty)
	if n != 2 {
		t.Fatalf("cleared %d, want 2", n)
	}
	if pt.Lookup(0).Dirty() || pt.Lookup(mem.PageSize).Dirty() {
		t.Fatal("dirty bit survived clear")
	}
	if !pt.Lookup(2 * mem.PageSize).Dirty() {
		t.Fatal("dirty bit cleared outside range")
	}
}

func TestNonCanonicalPanics(t *testing.T) {
	pt := testPT()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pt.Map(MaxVirtual, 0, 0)
}

// Property: for arbitrary map sets, Translate(va) returns frame|offset for
// every mapped page and fails for unmapped pages.
func TestTranslateProperty(t *testing.T) {
	f := func(pages []uint32) bool {
		pt := testPT()
		want := map[uint64]uint64{}
		for i, p := range pages {
			va := uint64(p) << pageShift
			frame := uint64(0x100000 + i*mem.PageSize)
			pt.Map(va, frame, FlagWrite)
			want[va] = frame
		}
		for va, frame := range want {
			paddr, _, ok := pt.Translate(va + 0x123)
			if !ok || paddr != frame+0x123 {
				return false
			}
		}
		return pt.Mapped() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTLBHitMissLRU(t *testing.T) {
	tlb := NewTLB("tlb", 2)
	if tlb.Lookup(0x1000) != nil {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(0x1000, 0xa000, true, false)
	tlb.Insert(0x2000, 0xb000, true, false)
	if e := tlb.Lookup(0x1234); e == nil || e.Frame != 0xa000 {
		t.Fatal("TLB miss after insert")
	}
	// 0x2000 is now LRU; inserting a third entry must evict it.
	tlb.Insert(0x3000, 0xc000, false, false)
	if tlb.Lookup(0x2000) != nil {
		t.Fatal("LRU entry survived")
	}
	if tlb.Lookup(0x1000) == nil {
		t.Fatal("MRU entry evicted")
	}
	if tlb.Counters.Get("tlb.hits") == 0 || tlb.Counters.Get("tlb.misses") == 0 {
		t.Fatal("counters not maintained")
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB("tlb", 8)
	tlb.Insert(0x1000, 0xa000, true, true)
	tlb.Insert(0x2000, 0xb000, true, true)
	tlb.Invalidate(0x1000)
	if tlb.Lookup(0x1000) != nil {
		t.Fatal("invalidated entry still present")
	}
	tlb.InvalidateRange(0, MaxVirtual)
	if tlb.Lookup(0x2000) != nil {
		t.Fatal("range invalidate missed entry")
	}
}

func TestTLBInsertSamePageReplaces(t *testing.T) {
	tlb := NewTLB("tlb", 4)
	tlb.Insert(0x1000, 0xa000, true, false)
	tlb.Insert(0x1000, 0xa000, true, true)
	e := tlb.Lookup(0x1000)
	if e == nil || !e.Dirty {
		t.Fatal("re-insert did not update dirty state")
	}
	// Must occupy a single slot.
	tlb.Insert(0x2000, 0, false, false)
	tlb.Insert(0x3000, 0, false, false)
	tlb.Insert(0x4000, 0, false, false)
	if tlb.Lookup(0x1000) == nil {
		t.Fatal("duplicate insert consumed extra slots")
	}
}

func newTestSpace() *AddressSpace {
	dram, nvm := testAllocators()
	return NewAddressSpace(dram, nvm)
}

func TestAddressSpaceDemandPaging(t *testing.T) {
	as := newTestSpace()
	if err := as.AddVMA(&VMA{Lo: 0x10000, Hi: 0x20000, Kind: KindHeap, Writable: true, ThreadID: -1}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := as.PT.Translate(0x10000); ok {
		t.Fatal("page mapped before fault")
	}
	kind, err := as.HandleFault(0x10abc, true)
	if err != nil || kind != "demand" {
		t.Fatalf("fault: %v %v", kind, err)
	}
	paddr, pte, ok := as.PT.Translate(0x10abc)
	if !ok || !mem.IsDRAM(paddr) {
		t.Fatalf("translate after fault: %#x %v", paddr, ok)
	}
	if !pte.Dirty() {
		t.Fatal("write fault must set dirty")
	}
	if as.DemandFaults() != 1 {
		t.Fatalf("demandFaults = %d", as.DemandFaults())
	}
}

func TestAddressSpaceNVMPlacement(t *testing.T) {
	as := newTestSpace()
	if err := as.AddVMA(&VMA{Lo: 0x30000, Hi: 0x40000, Kind: KindHeap, Writable: true, InNVM: true, ThreadID: -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := as.HandleFault(0x30000, true); err != nil {
		t.Fatal(err)
	}
	paddr, _, _ := as.PT.Translate(0x30000)
	if !mem.IsNVM(paddr) {
		t.Fatalf("NVM VMA got DRAM frame %#x", paddr)
	}
}

func TestStackGrowth(t *testing.T) {
	as := newTestSpace()
	stack := &VMA{Lo: 0x7000_0000, Hi: 0x7001_0000, Kind: KindStack, Writable: true, GrowsDown: true, ThreadID: 0}
	if err := as.AddVMA(stack); err != nil {
		t.Fatal(err)
	}
	kind, err := as.HandleFault(0x7000_0000-100, true)
	if err != nil || kind != "grow" {
		t.Fatalf("growth fault: %v %v", kind, err)
	}
	if stack.Lo != mem.PageOf(0x7000_0000-100) {
		t.Fatalf("stack did not grow: lo=%#x", stack.Lo)
	}
	// Far below the (moved) guard window: segfault.
	if _, err := as.HandleFault(stack.Lo-guardWindow-mem.PageSize, true); err == nil {
		t.Fatal("runaway access below guard window should fault")
	}
}

func TestWritePermissionFault(t *testing.T) {
	as := newTestSpace()
	if err := as.AddVMA(&VMA{Lo: 0x10000, Hi: 0x20000, Kind: KindHeap, Writable: true, ThreadID: -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := as.HandleFault(0x10000, false); err != nil {
		t.Fatal(err)
	}
	// Tracking removes write permission; next store faults and restores it.
	as.PT.ClearFlagsRange(0x10000, 0x20000, FlagWrite|FlagDirty)
	var hooked uint64
	as.FaultHook = func(vaddr uint64, write bool, _ *VMA) { hooked = vaddr }
	kind, err := as.HandleFault(0x10040, true)
	if err != nil || kind != "wperm" {
		t.Fatalf("wperm fault: %v %v", kind, err)
	}
	pte := as.PT.Lookup(0x10000)
	if !pte.Writable() || !pte.Dirty() {
		t.Fatal("wperm fault must restore write and set dirty")
	}
	if hooked != 0x10040 {
		t.Fatal("fault hook not invoked")
	}
	if as.WriteFaults() != 1 {
		t.Fatalf("writeFaults = %d", as.WriteFaults())
	}
}

func TestSegfaultOutsideVMAs(t *testing.T) {
	as := newTestSpace()
	if _, err := as.HandleFault(0xdead000, false); err == nil {
		t.Fatal("expected segfault")
	}
}

func TestVMAOverlapRejected(t *testing.T) {
	as := newTestSpace()
	if err := as.AddVMA(&VMA{Lo: 0x10000, Hi: 0x20000, Writable: true}); err != nil {
		t.Fatal(err)
	}
	if err := as.AddVMA(&VMA{Lo: 0x18000, Hi: 0x28000, Writable: true}); err == nil {
		t.Fatal("overlap accepted")
	}
	if err := as.AddVMA(&VMA{Lo: 0x1001, Hi: 0x2000}); err == nil {
		t.Fatal("unaligned VMA accepted")
	}
}

func TestEnsureAndReleaseRange(t *testing.T) {
	dram, nvm := testAllocators()
	as := NewAddressSpace(dram, nvm)
	if err := as.AddVMA(&VMA{Lo: 0x50000, Hi: 0x58000, Kind: KindBitmap, Writable: true, ThreadID: -1}); err != nil {
		t.Fatal(err)
	}
	// First cycle pays for page-table node pages, which are retained by
	// design; after that, map/release must be frame-neutral.
	as.EnsureRange(0x50000, 0x58000)
	if as.PT.Mapped() != 8 {
		t.Fatalf("mapped = %d, want 8", as.PT.Mapped())
	}
	// Idempotent.
	as.EnsureRange(0x50000, 0x58000)
	if as.PT.Mapped() != 8 {
		t.Fatal("EnsureRange not idempotent")
	}
	as.ReleaseRange(0x50000, 0x58000)
	if as.PT.Mapped() != 0 {
		t.Fatal("release left mappings")
	}
	steady := dram.Allocated()
	as.EnsureRange(0x50000, 0x58000)
	as.ReleaseRange(0x50000, 0x58000)
	if dram.Allocated() != steady {
		t.Fatalf("frames leaked: %d vs %d", dram.Allocated(), steady)
	}
}

// Property: dirty bits after a fault sequence exactly reflect which pages
// saw a write fault (demand or wperm).
func TestDirtyBitProperty(t *testing.T) {
	f := func(ops []struct {
		Page  uint8
		Write bool
	}) bool {
		as := newTestSpace()
		if err := as.AddVMA(&VMA{Lo: 0, Hi: 256 * mem.PageSize, Kind: KindHeap, Writable: true, ThreadID: -1}); err != nil {
			return false
		}
		written := map[uint64]bool{}
		for _, op := range ops {
			va := uint64(op.Page) * mem.PageSize
			pte := as.PT.Lookup(va)
			if pte == nil || !pte.Present() {
				if _, err := as.HandleFault(va, op.Write); err != nil {
					return false
				}
			} else if op.Write {
				pte.Flags |= FlagDirty // page-walker dirty update
			}
			if op.Write {
				written[va] = true
			}
		}
		okAll := true
		as.PT.VisitRange(0, 256*mem.PageSize, func(va uint64, pte *PTE) {
			if pte.Dirty() != written[va] {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package vm

import (
	"fmt"

	"prosper/internal/snapbuf"
)

// This file implements snapshot save/load for the vm layer. The page
// table is serialized structurally (preorder, with each node's synthetic
// physical frame recorded explicitly) so a load rebuilds the exact node
// graph without drawing fresh frames from the allocator — allocator
// state is restored separately and already accounts for these frames.

// SaveSnap encodes the table: mapped count plus the node graph.
func (pt *PageTable) SaveSnap(w *snapbuf.Writer) {
	w.Int(pt.mapped)
	saveNode(w, pt.root, 0)
}

func saveNode(w *snapbuf.Writer, n *node, level int) {
	w.U64(n.physBase)
	if level == levels-1 {
		cnt := 0
		for i := range n.ptes {
			if n.ptes[i] != (PTE{}) {
				cnt++
			}
		}
		w.U64(uint64(cnt))
		for i := range n.ptes {
			if p := n.ptes[i]; p != (PTE{}) {
				w.U32(uint32(i))
				w.U64(p.Frame)
				w.U64(p.Flags)
			}
		}
		return
	}
	var bits [entriesPerLv / 64]uint64
	for i, c := range n.children {
		if c != nil {
			bits[i/64] |= 1 << (i % 64)
		}
	}
	for _, word := range bits {
		w.U64(word)
	}
	for _, c := range n.children {
		if c != nil {
			saveNode(w, c, level+1)
		}
	}
}

// LoadSnap replaces the table's node graph with a saved one. The frame
// source and NodePage hook are not consulted: node frames come from the
// snapshot.
func (pt *PageTable) LoadSnap(r *snapbuf.Reader) error {
	mapped := r.Int()
	root, err := loadNode(r, 0)
	if err != nil {
		return err
	}
	pt.root = root
	pt.mapped = mapped
	return r.Err()
}

func loadNode(r *snapbuf.Reader, level int) (*node, error) {
	if r.Err() != nil {
		return nil, r.Err()
	}
	n := &node{physBase: r.U64()}
	if level == levels-1 {
		n.ptes = make([]PTE, entriesPerLv)
		cnt := r.Count(20)
		for j := 0; j < cnt; j++ {
			idx := int(r.U32())
			frame := r.U64()
			flags := r.U64()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if idx >= entriesPerLv {
				return nil, fmt.Errorf("vm: PTE index %d out of range", idx)
			}
			n.ptes[idx] = PTE{Frame: frame, Flags: flags}
		}
		return n, r.Err()
	}
	var bits [entriesPerLv / 64]uint64
	for i := range bits {
		bits[i] = r.U64()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	for i := 0; i < entriesPerLv; i++ {
		if bits[i/64]&(1<<(i%64)) != 0 {
			c, err := loadNode(r, level+1)
			if err != nil {
				return nil, err
			}
			n.children[i] = c
		}
	}
	return n, nil
}

// SaveSnap encodes the space's mutable state. VMA bounds are recorded
// (stack areas grow downward at runtime); the VMA list itself is
// reconstructed by booting the same process configuration, so only the
// bounds and fault counts ride in the snapshot, followed by the table.
func (as *AddressSpace) SaveSnap(w *snapbuf.Writer) {
	w.U64(uint64(len(as.vmas)))
	for _, v := range as.vmas {
		w.U64(v.Lo)
		w.U64(v.Hi)
	}
	w.Int(as.demandFaults)
	w.Int(as.writeFaults)
	as.PT.SaveSnap(w)
}

// LoadSnap restores VMA bounds and the page table into a space that was
// booted with the identical layout.
func (as *AddressSpace) LoadSnap(r *snapbuf.Reader) error {
	n := r.Count(16)
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(as.vmas) {
		return fmt.Errorf("vm: VMA count mismatch: snapshot %d, machine %d", n, len(as.vmas))
	}
	for _, v := range as.vmas {
		lo := r.U64()
		hi := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		if hi != v.Hi {
			return fmt.Errorf("vm: VMA mismatch: snapshot [%#x,%#x) vs machine [%#x,%#x)", lo, hi, v.Lo, v.Hi)
		}
		v.Lo = lo
	}
	as.demandFaults = r.Int()
	as.writeFaults = r.Int()
	return as.PT.LoadSnap(r)
}

// SaveSnap encodes the TLB's entries, LRU clock, and statistics.
func (t *TLB) SaveSnap(w *snapbuf.Writer) {
	w.U64(t.lruClock)
	w.U64(uint64(len(t.entries)))
	for i := range t.entries {
		e := &t.entries[i]
		w.U64(e.VPN)
		w.U64(e.Frame)
		w.Bool(e.Write)
		w.Bool(e.Dirty)
		w.Bool(e.valid)
		w.U64(e.lru)
	}
	t.Counters.SaveSnap(w)
	t.Histograms.SaveSnap(w)
}

// LoadSnap restores a TLB of identical geometry.
func (t *TLB) LoadSnap(r *snapbuf.Reader) error {
	t.lruClock = r.U64()
	n := r.Count(27)
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(t.entries) {
		return fmt.Errorf("vm: TLB size mismatch: snapshot %d, machine %d", n, len(t.entries))
	}
	for i := range t.entries {
		e := &t.entries[i]
		e.VPN = r.U64()
		e.Frame = r.U64()
		e.Write = r.Bool()
		e.Dirty = r.Bool()
		e.valid = r.Bool()
		e.lru = r.U64()
	}
	if err := t.Counters.LoadSnap(r); err != nil {
		return err
	}
	return t.Histograms.LoadSnap(r)
}

package vm

import (
	"fmt"
	"sort"

	"prosper/internal/mem"
)

// VMAKind classifies a virtual memory area; the checkpoint engine treats
// stack and heap areas differently per the paper's design.
type VMAKind int

// VMA kinds.
const (
	KindCode VMAKind = iota
	KindHeap
	KindStack
	KindBitmap // Prosper dirty-bitmap metadata area
	KindOther
)

func (k VMAKind) String() string {
	switch k {
	case KindCode:
		return "code"
	case KindHeap:
		return "heap"
	case KindStack:
		return "stack"
	case KindBitmap:
		return "bitmap"
	default:
		return "other"
	}
}

// VMA is one virtual memory area of an address space.
type VMA struct {
	Lo, Hi    uint64 // [Lo, Hi), page aligned
	Kind      VMAKind
	Writable  bool
	GrowsDown bool // stack areas grow toward lower addresses on demand
	InNVM     bool // demand frames come from the NVM pool (SSP, Romulus)
	ThreadID  int  // owning thread for stack areas, -1 otherwise
}

// Contains reports whether addr falls inside the area.
func (v *VMA) Contains(addr uint64) bool { return addr >= v.Lo && addr < v.Hi }

// Size returns the area's length in bytes.
func (v *VMA) Size() uint64 { return v.Hi - v.Lo }

// AddressSpace is a process's virtual address space: an ordered VMA list
// over a private page table, with frame pools for hybrid memory.
type AddressSpace struct {
	vmas []*VMA
	PT   *PageTable

	dram *mem.FrameAllocator
	nvm  *mem.FrameAllocator

	// FaultHook, when non-nil, observes every demand-paging and
	// write-permission fault the space resolves (used by the
	// write-protection tracker and SSP).
	FaultHook func(vaddr uint64, write bool, vma *VMA)

	demandFaults int
	writeFaults  int
}

// NewAddressSpace creates an empty space drawing page-table pages and
// anonymous frames from the given pools.
func NewAddressSpace(dram, nvm *mem.FrameAllocator) *AddressSpace {
	as := &AddressSpace{dram: dram, nvm: nvm}
	as.PT = NewPageTable(func() uint64 {
		f, err := dram.Alloc()
		if err != nil {
			panic("vm: out of DRAM frames for page tables: " + err.Error())
		}
		return f
	})
	return as
}

// AddVMA registers an area. Areas must be page aligned and disjoint.
func (as *AddressSpace) AddVMA(v *VMA) error {
	if v.Lo%mem.PageSize != 0 || v.Hi%mem.PageSize != 0 || v.Lo >= v.Hi {
		return fmt.Errorf("vm: VMA [%#x,%#x) not page aligned", v.Lo, v.Hi)
	}
	if v.Hi > MaxVirtual {
		return fmt.Errorf("vm: VMA beyond canonical space")
	}
	for _, existing := range as.vmas {
		if v.Lo < existing.Hi && existing.Lo < v.Hi {
			return fmt.Errorf("vm: VMA [%#x,%#x) overlaps [%#x,%#x)", v.Lo, v.Hi, existing.Lo, existing.Hi)
		}
	}
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Lo < as.vmas[j].Lo })
	return nil
}

// FindVMA returns the area containing addr. For a stack area, addresses
// up to one page below Lo also resolve to it (growth window), mirroring
// on-demand stack extension.
func (as *AddressSpace) FindVMA(addr uint64) *VMA {
	for _, v := range as.vmas {
		if v.Contains(addr) {
			return v
		}
		if v.GrowsDown && addr < v.Lo && v.Lo-addr <= guardWindow {
			return v
		}
	}
	return nil
}

// guardWindow is how far below a grows-down VMA a fault may land and
// still be treated as legitimate stack growth (128 KiB, like Linux's
// stack expansion heuristics allow for large stack frames).
const guardWindow = 128 << 10

// VMAs returns the areas in ascending address order.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// StackVMA returns the stack area of the given thread, or nil.
func (as *AddressSpace) StackVMA(threadID int) *VMA {
	for _, v := range as.vmas {
		if v.Kind == KindStack && v.ThreadID == threadID {
			return v
		}
	}
	return nil
}

// DemandFaults returns how many demand-paging faults were serviced.
func (as *AddressSpace) DemandFaults() int { return as.demandFaults }

// WriteFaults returns how many write-permission faults were serviced.
func (as *AddressSpace) WriteFaults() int { return as.writeFaults }

// allocFrame draws a frame from the pool the VMA is placed in.
func (as *AddressSpace) allocFrame(v *VMA) uint64 {
	pool := as.dram
	if v.InNVM {
		pool = as.nvm
	}
	f, err := pool.Alloc()
	if err != nil {
		panic("vm: " + err.Error())
	}
	return f
}

// HandleFault resolves a page fault at vaddr. It returns the fault kind
// resolved ("demand", "grow", "wperm") or an error for an illegal access
// (segfault). Growth of grows-down areas extends VMA.Lo.
func (as *AddressSpace) HandleFault(vaddr uint64, write bool) (string, error) {
	v := as.FindVMA(vaddr)
	if v == nil {
		return "", fmt.Errorf("vm: segfault at %#x", vaddr)
	}
	if write && !v.Writable {
		return "", fmt.Errorf("vm: write to read-only area at %#x", vaddr)
	}
	kind := "demand"
	if v.GrowsDown && vaddr < v.Lo {
		newLo := mem.PageOf(vaddr)
		v.Lo = newLo
		kind = "grow"
	}
	pte := as.PT.Lookup(vaddr)
	if pte != nil && pte.Present() {
		// Present but faulted: write-permission fault (tracking mechanisms
		// or inter-thread stack protection removed FlagWrite).
		if write && !pte.Writable() {
			pte.Flags |= FlagWrite | FlagDirty | FlagAccess
			as.writeFaults++
			if as.FaultHook != nil {
				as.FaultHook(vaddr, write, v)
			}
			return "wperm", nil
		}
		return "", fmt.Errorf("vm: spurious fault at %#x", vaddr)
	}
	frame := as.allocFrame(v)
	flags := FlagUser | FlagAccess
	if v.Writable {
		flags |= FlagWrite
	}
	if write {
		flags |= FlagDirty
	}
	as.PT.Map(vaddr, frame, flags)
	as.demandFaults++
	if as.FaultHook != nil {
		as.FaultHook(vaddr, write, v)
	}
	return kind, nil
}

// EnsureRange maps every page of [lo, hi) immediately (used for the
// Prosper bitmap area and NVM regions that must not demand-fault).
func (as *AddressSpace) EnsureRange(lo, hi uint64) {
	for va := mem.PageOf(lo); va < hi; va += mem.PageSize {
		if pte := as.PT.Lookup(va); pte != nil && pte.Present() {
			continue
		}
		if _, err := as.HandleFault(va, false); err != nil {
			panic(err.Error())
		}
	}
}

// ReleaseRange unmaps [lo, hi) and returns frames to their pools.
func (as *AddressSpace) ReleaseRange(lo, hi uint64) {
	for va := mem.PageOf(lo); va < hi; va += mem.PageSize {
		if frame, ok := as.PT.Unmap(va); ok {
			if as.nvm != nil && as.nvm.Contains(frame) {
				as.nvm.Free(frame)
			} else {
				as.dram.Free(frame)
			}
		}
	}
}

// Package vm implements the virtual memory substrate of the simulated
// machine: a 4-level x86-64-style page table with accessed/dirty bits, a
// TLB model, and address spaces built from VMAs with demand paging hooks.
//
// The package is purely functional; timing (walk latency, TLB miss cost)
// is charged by the machine's page walker, which reads the synthetic
// physical addresses each table node carries. Host profiling follows the
// same split: the walker's continuations and page-fault events are born
// sim.CompVM, so engine event counts attribute walk/fault work here even
// though this package schedules nothing itself, while pprof samples in
// vm code attribute by package path (prosper-prof maps internal/vm to
// the vm component).
package vm

import "fmt"

// PTE permission and status flags, mirroring the x86-64 bits the paper's
// mechanisms rely on (present, writable, accessed, dirty, plus a soft
// "tracked" bit used by the write-protection tracker).
const (
	FlagPresent uint64 = 1 << 0
	FlagWrite   uint64 = 1 << 1
	FlagUser    uint64 = 1 << 2
	FlagAccess  uint64 = 1 << 5
	FlagDirty   uint64 = 1 << 6
	FlagSoft    uint64 = 1 << 9 // software-defined (SoftDirty-style)
)

// PTE is one page-table entry: the physical frame base plus flag bits.
type PTE struct {
	Frame uint64
	Flags uint64
}

// Present reports whether the entry maps a frame.
func (p *PTE) Present() bool { return p.Flags&FlagPresent != 0 }

// Writable reports whether the entry currently permits stores.
func (p *PTE) Writable() bool { return p.Flags&FlagWrite != 0 }

// Dirty reports the hardware dirty bit.
func (p *PTE) Dirty() bool { return p.Flags&FlagDirty != 0 }

const (
	levels       = 4
	indexBits    = 9
	entriesPerLv = 1 << indexBits
	pageShift    = 12
	vaBits       = pageShift + levels*indexBits // 48-bit canonical VA
)

// MaxVirtual is one past the highest representable virtual address.
const MaxVirtual uint64 = 1 << vaBits

type node struct {
	physBase uint64 // synthetic physical address of this table page
	children [entriesPerLv]*node
	ptes     []PTE // allocated only at the leaf level
}

// FrameSource supplies physical page frames for page-table nodes so that
// hardware walks have real addresses to read.
type FrameSource func() uint64

// PageTable is a 4-level radix page table.
type PageTable struct {
	root     *node
	frames   FrameSource
	mapped   int
	NodePage func(addr uint64) // optional hook when a node page is created
}

// NewPageTable builds an empty table; frames must return a fresh physical
// frame per call and must not be nil.
func NewPageTable(frames FrameSource) *PageTable {
	if frames == nil {
		panic("vm: nil frame source")
	}
	pt := &PageTable{frames: frames}
	pt.root = pt.newNode(false)
	return pt
}

func (pt *PageTable) newNode(leaf bool) *node {
	n := &node{physBase: pt.frames()}
	if leaf {
		n.ptes = make([]PTE, entriesPerLv)
	}
	if pt.NodePage != nil {
		pt.NodePage(n.physBase)
	}
	return n
}

func indexAt(vaddr uint64, level int) int {
	shift := pageShift + indexBits*(levels-1-level)
	return int((vaddr >> shift) & (entriesPerLv - 1))
}

func checkVA(vaddr uint64) {
	if vaddr >= MaxVirtual {
		panic(fmt.Sprintf("vm: non-canonical virtual address %#x", vaddr)) //prosperlint:ignore hotalloc panic path: the message formats only for a non-canonical address abort
	}
}

// Mapped returns the number of present leaf mappings.
func (pt *PageTable) Mapped() int { return pt.mapped }

// Map installs a translation from the page containing vaddr to frame with
// the given flags (FlagPresent is implied).
func (pt *PageTable) Map(vaddr, frame, flags uint64) {
	checkVA(vaddr)
	n := pt.root
	for level := 0; level < levels-1; level++ {
		idx := indexAt(vaddr, level)
		if n.children[idx] == nil {
			n.children[idx] = pt.newNode(level == levels-2)
		}
		n = n.children[idx]
	}
	pte := &n.ptes[indexAt(vaddr, levels-1)]
	if !pte.Present() {
		pt.mapped++
	}
	*pte = PTE{Frame: frame &^ 0xfff, Flags: flags | FlagPresent}
}

// Unmap removes the translation for the page containing vaddr and returns
// the frame it mapped, or ok=false if nothing was mapped.
func (pt *PageTable) Unmap(vaddr uint64) (frame uint64, ok bool) {
	pte := pt.Lookup(vaddr)
	if pte == nil || !pte.Present() {
		return 0, false
	}
	frame = pte.Frame
	*pte = PTE{}
	pt.mapped--
	return frame, true
}

// Lookup returns a pointer to the PTE for vaddr, or nil if no leaf table
// exists on its path. The entry may be non-present.
func (pt *PageTable) Lookup(vaddr uint64) *PTE {
	checkVA(vaddr)
	n := pt.root
	for level := 0; level < levels-1; level++ {
		n = n.children[indexAt(vaddr, level)]
		if n == nil {
			return nil
		}
	}
	return &n.ptes[indexAt(vaddr, levels-1)]
}

// WalkAddrs returns the physical addresses of the 4 table entries a
// hardware walker would read to translate vaddr (whether or not the
// translation exists at every level — missing levels are omitted).
func (pt *PageTable) WalkAddrs(vaddr uint64) []uint64 {
	checkVA(vaddr)
	addrs := make([]uint64, 0, levels)
	n := pt.root
	for level := 0; level < levels; level++ {
		idx := indexAt(vaddr, level)
		addrs = append(addrs, n.physBase+uint64(idx)*8)
		if level == levels-1 {
			break
		}
		n = n.children[idx]
		if n == nil {
			break
		}
	}
	return addrs
}

// WalkAddrsInto is the allocation-free variant of WalkAddrs for the hot
// page-walk path: it fills dst with the walk's physical addresses and
// returns how many levels were present (1..levels).
func (pt *PageTable) WalkAddrsInto(vaddr uint64, dst *[levels]uint64) int {
	checkVA(vaddr)
	n := 0
	nd := pt.root
	for level := 0; level < levels; level++ {
		idx := indexAt(vaddr, level)
		dst[n] = nd.physBase + uint64(idx)*8
		n++
		if level == levels-1 {
			break
		}
		nd = nd.children[idx]
		if nd == nil {
			break
		}
	}
	return n
}

// Translate performs a functional walk: on success it returns the physical
// address corresponding to vaddr and the leaf PTE.
func (pt *PageTable) Translate(vaddr uint64) (paddr uint64, pte *PTE, ok bool) {
	pte = pt.Lookup(vaddr)
	if pte == nil || !pte.Present() {
		return 0, pte, false
	}
	return pte.Frame | (vaddr & 0xfff), pte, true
}

// VisitRange invokes fn for every present PTE whose page base lies in
// [lo, hi), skipping absent subtrees, in ascending address order.
func (pt *PageTable) VisitRange(lo, hi uint64, fn func(pageVA uint64, pte *PTE)) {
	if hi > MaxVirtual {
		hi = MaxVirtual
	}
	if lo >= hi {
		return
	}
	pt.visit(pt.root, 0, 0, lo, hi, fn)
}

func (pt *PageTable) visit(n *node, level int, base uint64, lo, hi uint64, fn func(uint64, *PTE)) {
	span := uint64(1) << (pageShift + indexBits*(levels-1-level)) // bytes per entry at this level
	for i := 0; i < entriesPerLv; i++ {
		entryBase := base + uint64(i)*span
		if entryBase+span <= lo || entryBase >= hi {
			continue
		}
		if level == levels-1 {
			pte := &n.ptes[i]
			if pte.Present() {
				fn(entryBase, pte)
			}
			continue
		}
		child := n.children[i]
		if child != nil {
			pt.visit(child, level+1, entryBase, lo, hi, fn)
		}
	}
}

// ClearFlagsRange clears the given flag bits on every present PTE in
// [lo, hi) and returns how many entries were touched. Used by dirty-bit
// tracking to reset D bits at interval start and by write-protection
// tracking to drop write permission.
func (pt *PageTable) ClearFlagsRange(lo, hi, flags uint64) int {
	n := 0
	pt.VisitRange(lo, hi, func(_ uint64, pte *PTE) {
		pte.Flags &^= flags
		n++
	})
	return n
}

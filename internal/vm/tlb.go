package vm

import "prosper/internal/stats"

// TLBEntry caches one translation, including whether the cached PTE had
// its dirty bit set when the entry was filled. A store through an entry
// with Dirty=false forces a hardware walk so the in-memory PTE's dirty
// bit can be set, exactly the mechanism the Dirtybit tracking baseline
// relies on.
type TLBEntry struct {
	VPN   uint64
	Frame uint64
	Write bool
	Dirty bool
	valid bool
	lru   uint64
}

// TLB is a fully associative translation cache with LRU replacement.
type TLB struct {
	entries  []TLBEntry
	lruClock uint64
	Counters *stats.Counters

	// Histograms holds the TLB's distributions; WalkLatency aliases its
	// "walk_latency" member.
	Histograms *stats.Histograms
	// WalkLatency records the page-walk cycles paid on each TLB miss;
	// the owner (machine.Core) observes into it because the TLB itself
	// has no clock.
	WalkLatency *stats.Histogram

	cHits   stats.Counter
	cMisses stats.Counter
}

// NewTLB returns a TLB with the given number of entries. Counter keys
// are namespaced under the owner's name ("<name>.hits"), so per-core
// TLBs merged into one registry stay distinct.
func NewTLB(name string, size int) *TLB {
	t := &TLB{
		entries:    make([]TLBEntry, size),
		Counters:   stats.NewCounters(),
		Histograms: stats.NewHistograms(),
	}
	t.cHits = t.Counters.Handle(name + ".hits")
	t.cMisses = t.Counters.Handle(name + ".misses")
	t.WalkLatency = t.Histograms.New("walk_latency")
	return t
}

// Lookup returns the entry caching vaddr's page, or nil on a miss.
func (t *TLB) Lookup(vaddr uint64) *TLBEntry {
	vpn := vaddr >> pageShift
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.VPN == vpn {
			t.lruClock++
			e.lru = t.lruClock
			t.cHits.Inc()
			return e
		}
	}
	t.cMisses.Inc()
	return nil
}

// Insert fills an entry for vaddr's page, evicting LRU if needed.
func (t *TLB) Insert(vaddr, frame uint64, write, dirty bool) {
	vpn := vaddr >> pageShift
	victim := &t.entries[0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.VPN == vpn {
			victim = e
			break
		}
		if !e.valid {
			victim = e
			break
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	t.lruClock++
	*victim = TLBEntry{VPN: vpn, Frame: frame, Write: write, Dirty: dirty, valid: true, lru: t.lruClock}
}

// Invalidate drops the entry for vaddr's page if cached.
func (t *TLB) Invalidate(vaddr uint64) {
	vpn := vaddr >> pageShift
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].VPN == vpn {
			t.entries[i].valid = false
		}
	}
}

// InvalidateRange drops all entries whose page lies in [lo, hi).
func (t *TLB) InvalidateRange(lo, hi uint64) {
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		va := e.VPN << pageShift
		if va >= lo && va < hi {
			e.valid = false
		}
	}
}

// Flush empties the TLB (address-space switch).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

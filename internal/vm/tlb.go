package vm

import "prosper/internal/stats"

// TLBEntry caches one translation, including whether the cached PTE had
// its dirty bit set when the entry was filled. A store through an entry
// with Dirty=false forces a hardware walk so the in-memory PTE's dirty
// bit can be set, exactly the mechanism the Dirtybit tracking baseline
// relies on.
type TLBEntry struct {
	VPN   uint64
	Frame uint64
	Write bool
	Dirty bool
	valid bool
	lru   uint64
}

// TLB is a fully associative translation cache with LRU replacement.
type TLB struct {
	entries  []TLBEntry
	lruClock uint64
	Counters *stats.Counters
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(size int) *TLB {
	return &TLB{entries: make([]TLBEntry, size), Counters: stats.NewCounters()}
}

// Lookup returns the entry caching vaddr's page, or nil on a miss.
func (t *TLB) Lookup(vaddr uint64) *TLBEntry {
	vpn := vaddr >> pageShift
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.VPN == vpn {
			t.lruClock++
			e.lru = t.lruClock
			t.Counters.Inc("tlb.hits")
			return e
		}
	}
	t.Counters.Inc("tlb.misses")
	return nil
}

// Insert fills an entry for vaddr's page, evicting LRU if needed.
func (t *TLB) Insert(vaddr, frame uint64, write, dirty bool) {
	vpn := vaddr >> pageShift
	victim := &t.entries[0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.VPN == vpn {
			victim = e
			break
		}
		if !e.valid {
			victim = e
			break
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	t.lruClock++
	*victim = TLBEntry{VPN: vpn, Frame: frame, Write: write, Dirty: dirty, valid: true, lru: t.lruClock}
}

// Invalidate drops the entry for vaddr's page if cached.
func (t *TLB) Invalidate(vaddr uint64) {
	vpn := vaddr >> pageShift
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].VPN == vpn {
			t.entries[i].valid = false
		}
	}
}

// InvalidateRange drops all entries whose page lies in [lo, hi).
func (t *TLB) InvalidateRange(lo, hi uint64) {
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		va := e.VPN << pageShift
		if va >= lo && va < hi {
			e.valid = false
		}
	}
}

// Flush empties the TLB (address-space switch).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

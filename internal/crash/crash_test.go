package crash

import (
	"strings"
	"testing"

	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// sweepPoints scales the per-mechanism point count down under -short.
func sweepPoints(t *testing.T, full int) int {
	if testing.Short() {
		return full / 4
	}
	return full
}

// TestSweepFindsNoViolations is the headline recovery property: across
// many crash points, spanning several checkpoint epochs and clustered
// around the commit windows, every mechanism recovers to a committed
// epoch with the exact committed execution position and stack contents.
func TestSweepFindsNoViolations(t *testing.T) {
	for _, mech := range Mechanisms() {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			cfg := Config{Mechanism: mech, Points: sweepPoints(t, 16), Seed: 1}
			t.Logf("sweep %s: %d points, seed %d", mech, cfg.Points, cfg.Seed)
			res, err := Sweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Log(res.Summary())
			for _, v := range res.Violations() {
				t.Errorf("cycle %d (P=%d S=%d): %s", v.Cycle, v.Commit, v.Epoch, v.Violation)
			}
		})
	}
}

// TestSweepCatchesPlantedBug proves the harness can fail: a mechanism
// whose commit record races its payload (persist.NewBrokenFence) must
// produce at least one violation, or the sweep is checking nothing.
func TestSweepCatchesPlantedBug(t *testing.T) {
	cfg := Config{Mechanism: "brokenfence", Points: sweepPoints(t, 48), Seed: 1}
	t.Logf("sweep brokenfence: %d points, seed %d", cfg.Points, cfg.Seed)
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Summary())
	if len(res.Violations()) == 0 {
		t.Fatal("sweep reported zero violations for the deliberately fenceless mechanism")
	}
}

// TestCrashBeforeFirstCommit: with nothing durable yet, recovery must
// fail with a clean diagnostic and fsck must still pass — the harness
// treats any other outcome as a violation, checked here directly.
func TestCrashBeforeFirstCommit(t *testing.T) {
	cfg := Config{Mechanism: "prosper"}.withDefaults()
	k := kernel.New(kernel.Config{Machine: cfg.machineConfig()})
	if _, _, err := cfg.spawn(k); err != nil {
		t.Fatal(err)
	}
	// Well inside the first 50 µs interval: no checkpoint has started.
	img := Injector{At: 20_000}.Inject(k)
	if rep := kernel.Fsck(img); !rep.OK() {
		t.Fatalf("fsck before first commit: %v", rep.Problems)
	}
	fac, err := factoryFor(cfg.Mechanism)
	if err != nil {
		t.Fatal(err)
	}
	k2 := kernel.New(kernel.Config{Machine: machine.Config{Cores: 1, Storage: img}})
	err = k2.RecoverProcess(kernel.ProcessConfig{
		Name:         "sweep",
		StackMech:    fac,
		StackReserve: cfg.StackReserve,
		HeapSize:     cfg.HeapSize,
	}, []workload.Program{workload.NewCounter(cfg.Iterations)}, nil)
	if err == nil {
		t.Fatal("recovery fabricated a process with no durable checkpoint")
	}
	if !strings.Contains(err.Error(), "no register checkpoint") {
		t.Fatalf("unexpected recovery error: %v", err)
	}
}

// TestInjectorDeterministicAndPure: two injections of the same spec at
// the same cycle yield byte-identical NVM images, and taking an image
// does not perturb the donor simulation (a never-imaged run reaches the
// same state).
func TestInjectorDeterministicAndPure(t *testing.T) {
	cfg := Config{Mechanism: "dirtybit"}.withDefaults()
	const at = 180_000 // inside the second interval, past the first commit
	run := func(image bool) (*mem.Storage, *kernel.Kernel) {
		k := kernel.New(kernel.Config{Machine: cfg.machineConfig()})
		if _, _, err := cfg.spawn(k); err != nil {
			t.Fatal(err)
		}
		var img *mem.Storage
		if image {
			img = Injector{At: at}.Inject(k)
		} else {
			k.Eng.RunUntil(at)
		}
		return img, k
	}
	img1, k1 := run(true)
	img2, _ := run(true)
	// The kernel's NVM allocations for this config all sit in the first
	// MiB above NVMBase; byte-compare that window.
	buf1 := make([]byte, 1<<20)
	buf2 := make([]byte, 1<<20)
	img1.Read(mem.NVMBase, buf1)
	img2.Read(mem.NVMBase, buf2)
	for i := range buf1 {
		if buf1[i] != buf2[i] {
			t.Fatalf("crash images diverge at NVM offset %#x", i)
		}
	}
	// Purity: continue the imaged run and compare against a run that was
	// never imaged.
	_, k3 := run(false)
	k1.Eng.RunUntil(at + 100*sim.Microsecond)
	k3.Eng.RunUntil(at + 100*sim.Microsecond)
	if k1.Eng.Fired() != k3.Eng.Fired() {
		t.Fatalf("CrashImage perturbed the donor run: %d events vs %d", k1.Eng.Fired(), k3.Eng.Fired())
	}
}

// Package crash injects power failures into running simulations and
// sweeps recovery across many crash points.
//
// The harness is differential: a golden run of the same deterministic
// spec records, at every checkpoint commit, the committed execution
// position and the full functional stack image, plus the cycle of every
// stack store. A crash run then replays the identical simulation, cuts
// power at an arbitrary engine cycle via Injector (the surviving NVM
// image comes from the machine's persistence domain — only writes whose
// timed device access completed, plus admitted writes under ADR, are in
// it), boots a fresh kernel on that image, and checks the recovered
// process against the golden history:
//
//   - fsck of the surviving image must be clean at every crash point;
//   - the epoch S the thread recovers to must be P or P+1, where P is
//     the number of process commits durable at the crash instant
//     (P+1 happens when the crash lands between a segment's step-1
//     commit record and the process header commit: roll-forward);
//   - the restored execution position must be exactly the golden
//     position of epoch S;
//   - the recovered stack must match the golden stack of epoch S —
//     byte-for-byte for image-based mechanisms (prosper, dirtybit),
//     all-zero for the no-persistence baseline, and line-by-line for
//     in-place NVM mechanisms (ssp, romulus) excluding lines the
//     program stored to after commit S (those may legitimately hold
//     newer, uncommitted bytes);
//   - before the first durable commit, recovery must fail cleanly
//     ("no register checkpoint"), never fabricate a process.
//
// The sweep's own soundness is provable: running it against
// persist.NewBrokenFence (dirtybit with the commit fence deleted) must
// report violations, or the harness is not checking anything.
package crash

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"prosper/internal/kernel"
	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/runner"
	"prosper/internal/sim"
	"prosper/internal/snapshot"
	"prosper/internal/workload"
)

// Injector schedules a power failure at an arbitrary engine cycle: it
// runs the kernel's simulation up to (and including) cycle At, halts the
// machine there, and returns the NVM image that survives the failure.
// The crashed kernel must not be run further; boot the image with a
// fresh kernel.New(Config{Machine: machine.Config{Storage: img}}).
type Injector struct {
	At sim.Time
}

// Inject cuts power at in.At and returns the surviving NVM image.
func (in Injector) Inject(k *kernel.Kernel) *mem.Storage {
	k.Eng.RunUntil(in.At)
	return k.Mach.CrashImage()
}

// Mechanisms lists the stack persistence mechanisms the sweep covers by
// default (the planted-bug fixture "brokenfence" is resolvable but
// deliberately not listed).
func Mechanisms() []string {
	return []string{"prosper", "dirtybit", "ssp", "romulus", "none"}
}

// factoryFor resolves a mechanism name to its persist factory; nil means
// the kernel's no-persistence baseline.
func factoryFor(name string) (persist.Factory, error) {
	switch name {
	case "prosper":
		return persist.NewProsper(persist.ProsperConfig{}), nil
	case "dirtybit":
		return persist.NewDirtybit(persist.DirtybitConfig{}), nil
	case "ssp":
		return persist.NewSSP(persist.SSPConfig{}), nil
	case "romulus":
		return persist.NewRomulus(), nil
	case "none":
		return nil, nil
	case "brokenfence":
		return persist.NewBrokenFence(persist.DirtybitConfig{}), nil
	default:
		return nil, fmt.Errorf("crash: unknown mechanism %q", name)
	}
}

// Config parameterizes one crash-point sweep of one mechanism.
type Config struct {
	// Mechanism is one of Mechanisms() or "brokenfence".
	Mechanism string
	// Points is how many crash points to sample (default 64). Half are
	// uniform over the sweep window, half cluster around commit instants
	// where the atomicity races live.
	Points int
	// Seed drives the crash-point sampler (default 1). The sweep logs it
	// in its Result so any run can be reproduced exactly.
	Seed int64
	// Interval is the checkpoint interval (default 50 µs — small, so a
	// sweep crosses many commit windows cheaply).
	Interval sim.Time
	// Epochs is how many checkpoint epochs the crash window spans
	// (default 4; the golden run records two more for roll-forward
	// headroom).
	Epochs int
	// StackReserve / HeapSize size the process (defaults 64 KiB / 1 MiB).
	StackReserve uint64
	HeapSize     uint64
	// Iterations sizes the counter workload; the default never finishes
	// inside the window, so every crash point hits a live thread.
	Iterations int
	// ADR selects the flush-on-fail persistence domain; default is the
	// harsher no-ADR domain.
	ADR bool
	// Workers bounds the parallel crash-point runs (<= 0: GOMAXPROCS).
	Workers int
	// Legacy forces every crash point to replay the whole run from cycle
	// zero. By default the sweep forks each point from the golden run's
	// machine snapshot at the last commit before the crash cycle, which
	// skips the shared prefix; the two modes produce identical verdicts
	// (the resume gate guarantees byte-identical replay) and the
	// equivalence test pins it.
	Legacy bool
}

func (cfg Config) withDefaults() Config {
	if cfg.Points <= 0 {
		cfg.Points = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Interval == 0 {
		cfg.Interval = 50 * sim.Microsecond
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 4
	}
	if cfg.StackReserve == 0 {
		cfg.StackReserve = 64 << 10
	}
	if cfg.HeapSize == 0 {
		cfg.HeapSize = 1 << 20
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1 << 30
	}
	return cfg
}

// PointResult is the outcome of one crash point.
type PointResult struct {
	Cycle  sim.Time // engine cycle power was cut at
	Commit uint64   // P: process commits durable at the crash instant
	Epoch  uint64   // S: epoch the thread recovered to (0 when recovery errored)
	// Err is the recovery error, expected (and required) before the
	// first durable commit.
	Err string
	// Violation is non-empty when a recovery invariant broke.
	Violation string
}

// Result is one mechanism's sweep outcome.
type Result struct {
	Mechanism string
	Seed      int64
	ADR       bool
	Commits   int // golden commits recorded
	Points    []PointResult
	// Forked counts the crash points that forked from a golden commit
	// snapshot instead of replaying from cycle zero. Zero in Legacy
	// mode, when a mechanism's commit state cannot be snapshotted, and
	// for points that land before the first commit.
	Forked int
}

// Violations returns the points whose recovery invariant broke.
func (r Result) Violations() []PointResult {
	var out []PointResult
	for _, p := range r.Points {
		if p.Violation != "" {
			out = append(out, p)
		}
	}
	return out
}

// Summary renders a one-line human-readable outcome.
func (r Result) Summary() string {
	errs := 0
	for _, p := range r.Points {
		if p.Err != "" && p.Violation == "" {
			errs++
		}
	}
	return fmt.Sprintf("%-11s %3d points, %d commits, %d pre-commit failures, %d violations (seed %d)",
		r.Mechanism, len(r.Points), r.Commits, errs, len(r.Violations()), r.Seed)
}

// storeRec is one observed stack store: when it was issued and which
// lines it touched (stores never span more than two lines).
type storeRec struct {
	cycle sim.Time
	line  uint64
	n     int
}

// golden is the reference history of one deterministic run: per-commit
// cycles, execution positions, and stack images, plus the store log the
// in-place invariants need. Because every run of the same Config is
// cycle-identical, it describes the crash runs too.
type golden struct {
	lo, hi      uint64
	commitCycle []sim.Time // commitCycle[k-1] = cycle commit k became durable
	snaps       [][]byte   // golden execution position per commit
	stacks      [][]byte   // golden [lo,hi) stack bytes per commit
	sps         []uint64   // golden stack pointer per commit
	stores      []storeRec
	// machSnaps[k-1] is the full machine snapshot taken inside commit k's
	// commit hook; crash points fork from the last one before their crash
	// cycle. Empty when snapErr is set.
	machSnaps [][]byte
	// snapErr records why commit snapshots are unavailable, in which case
	// every crash point replays from cycle zero. No in-tree mechanism
	// trips it — all eight are snapshot-clean at commit — but the sweep
	// must stay correct for one that is not, and the fallback test
	// poisons this field to prove it.
	snapErr error
}

// commitsBy returns P: how many commits were durable by cycle c.
func (g *golden) commitsBy(c sim.Time) uint64 {
	return uint64(sort.Search(len(g.commitCycle), func(i int) bool {
		return g.commitCycle[i] > c
	}))
}

// excluded returns the virtual line addresses stored to after commit s
// and up to the crash cycle c — lines whose in-place durable copy may
// legitimately be newer than epoch s.
func (g *golden) excluded(s uint64, c sim.Time) map[uint64]bool {
	out := make(map[uint64]bool)
	cs := g.commitCycle[s-1]
	for _, r := range g.stores {
		if r.cycle > cs && r.cycle <= c {
			for i := 0; i < r.n; i++ {
				out[r.line+uint64(i)*mem.LineSize] = true
			}
		}
	}
	return out
}

// stackObserver records every store into the swept thread's stack range.
// It is a pure observer on the core's store path: zero timing effect, so
// observed runs stay cycle-identical to unobserved ones.
type stackObserver struct {
	eng *sim.Engine
	g   *golden
}

func (o *stackObserver) ObserveStore(vaddr uint64, size int) {
	if vaddr+uint64(size) <= o.g.lo || vaddr >= o.g.hi {
		return
	}
	o.g.stores = append(o.g.stores, storeRec{ //prosperlint:ignore hotalloc bounded recording: the stack-store log is the harness's product, not sim overhead
		cycle: o.eng.Now(),
		line:  mem.LineOf(vaddr),
		n:     mem.LinesSpanned(vaddr, size),
	})
}

// spawn starts the sweep's process on k. Golden and crash runs call this
// with identical configs, which is what makes them cycle-identical.
func (cfg Config) spawn(k *kernel.Kernel) (*kernel.Process, *workload.CounterProgram, error) {
	fac, err := factoryFor(cfg.Mechanism)
	if err != nil {
		return nil, nil, err
	}
	prog := workload.NewCounter(cfg.Iterations)
	p := k.Spawn(kernel.ProcessConfig{
		Name:               "sweep",
		StackMech:          fac,
		StackReserve:       cfg.StackReserve,
		HeapSize:           cfg.HeapSize,
		CheckpointInterval: cfg.Interval,
	}, prog)
	return p, prog, nil
}

func (cfg Config) machineConfig() machine.Config {
	return machine.Config{Cores: 1, ADR: cfg.ADR}
}

// readStack reads the functional bytes of seg through the page table;
// unmapped pages read as zero, like the hardware's zero-fill.
func readStack(st *mem.Storage, p *kernel.Process, seg persist.Segment) []byte {
	out := make([]byte, seg.Hi-seg.Lo)
	for va := seg.Lo; va < seg.Hi; va += mem.PageSize {
		if paddr, _, ok := p.AS.PT.Translate(va); ok {
			st.Read(paddr, out[va-seg.Lo:va-seg.Lo+mem.PageSize])
		}
	}
	return out
}

// capture performs the golden run: no crash, observers on, recording the
// committed history for Epochs+2 commits.
func (cfg Config) capture() (*golden, error) {
	k := kernel.New(kernel.Config{Machine: cfg.machineConfig()})
	p, prog, err := cfg.spawn(k)
	if err != nil {
		return nil, err
	}
	defer p.Shutdown()
	th := p.Threads[0]
	g := &golden{lo: th.StackSeg.Lo, hi: th.StackSeg.Hi}
	obs := &stackObserver{eng: k.Eng, g: g}
	for _, c := range k.Mach.Cores {
		c.Observer = obs
	}
	p.OnCommit = func(seq uint64) {
		if int(seq) != len(g.commitCycle)+1 {
			panic(fmt.Sprintf("crash: non-sequential commit %d after %d", seq, len(g.commitCycle)))
		}
		g.commitCycle = append(g.commitCycle, k.Eng.Now())
		g.snaps = append(g.snaps, append([]byte(nil), prog.Snapshot()...))
		g.stacks = append(g.stacks, readStack(k.Mach.Storage, p, th.StackSeg))
		g.sps = append(g.sps, th.SP())
	}
	p.CommitHook = func(*kernel.Process) {
		// Capture the machine snapshot crash points will fork from. The
		// first save failure disables forking for the whole sweep: a
		// mechanism that is not snapshot-clean at one commit is not
		// snapshot-clean at any, and a partial snapshot ladder would make
		// point results depend on which rung they happen to land on.
		if cfg.Legacy || g.snapErr != nil {
			return
		}
		var buf bytes.Buffer
		if err := snapshot.Save(&buf, k, nil); err != nil {
			g.snapErr = err
			g.machSnaps = nil
			return
		}
		g.machSnaps = append(g.machSnaps, buf.Bytes())
	}
	// Romulus replays its whole store log entry by entry, so a commit can
	// straddle several intervals (the ticker skips while a checkpoint is
	// in flight); allow plenty of intervals per commit.
	target := cfg.Epochs + 2
	for guard := 0; len(g.commitCycle) < target && guard < target*16; guard++ {
		k.RunFor(cfg.Interval)
	}
	if len(g.commitCycle) < target {
		return nil, fmt.Errorf("crash: golden run recorded %d commits, want %d", len(g.commitCycle), target)
	}
	if r, ok := th.Mech().(*persist.Romulus); ok {
		if of := r.Counters.Get("romulus.log_overflow"); of > 0 {
			return nil, fmt.Errorf("crash: romulus log overflowed %d times; enlarge the meta area or shorten the interval", of)
		}
	}
	return g, nil
}

// samplePoints draws the crash points: even indices uniform over the
// window, odd indices clustered just before/after a commit instant, where
// the persist and commit races live. The window's upper bound keeps the
// roll-forward epoch P+1 inside the recorded golden history.
func (cfg Config) samplePoints(g *golden, rng *rand.Rand) []sim.Time {
	lo := sim.Time(1000)
	hi := g.commitCycle[len(g.commitCycle)-2]
	span := int64(cfg.Interval/3 + cfg.Interval/20)
	pts := make([]sim.Time, 0, cfg.Points)
	for i := 0; i < cfg.Points; i++ {
		var c sim.Time
		if i%2 == 0 {
			c = lo + sim.Time(rng.Int63n(int64(hi-lo)))
		} else {
			commit := g.commitCycle[rng.Intn(len(g.commitCycle)-1)]
			c = commit - cfg.Interval/3 + sim.Time(rng.Int63n(span))
		}
		if c < lo {
			c = lo
		}
		if c > hi {
			c = hi
		}
		pts = append(pts, c)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

// stackCheck classifies the per-mechanism recovered-stack invariant.
type stackCheck int

const (
	checkFullImage stackCheck = iota // recovered == golden[S] byte-for-byte
	checkZero                        // nothing persisted: recovered stack is empty
	checkLines                       // golden[S] per line, modulo post-S stores
)

func (cfg Config) stackCheck() stackCheck {
	switch cfg.Mechanism {
	case "none":
		return checkZero
	case "ssp", "romulus":
		return checkLines
	default:
		return checkFullImage
	}
}

// bootToCrash reproduces the run's state just before the crash cycle:
// a fresh kernel, either forked from the latest golden commit snapshot
// at or before c (the default — the shared prefix is skipped) or, in
// Legacy mode and for un-snapshottable mechanisms, replayed from cycle
// zero. forked reports which path was taken.
func (cfg Config) bootToCrash(g *golden, c sim.Time) (k *kernel.Kernel, forked bool, err error) {
	k = kernel.New(kernel.Config{Machine: cfg.machineConfig()})
	if _, _, err := cfg.spawn(k); err != nil {
		return nil, false, err
	}
	idx := -1
	if !cfg.Legacy && g.snapErr == nil {
		for i := range g.machSnaps {
			if g.commitCycle[i] <= c {
				idx = i
			} else {
				break
			}
		}
	}
	if idx < 0 {
		return k, false, nil
	}
	resumed, err := snapshot.Resume(bytes.NewReader(g.machSnaps[idx]), k)
	if err != nil {
		return nil, false, fmt.Errorf("fork from commit %d snapshot: %w", idx+1, err)
	}
	if err := resumed.Finish(); err != nil {
		return nil, false, fmt.Errorf("fork from commit %d snapshot: %w", idx+1, err)
	}
	return k, true, nil
}

// runPoint replays or forks the spec, cuts power at cycle c, reboots on
// the surviving image, and checks every recovery invariant.
func (cfg Config) runPoint(g *golden, c sim.Time) (PointResult, bool) {
	res := PointResult{Cycle: c, Commit: g.commitsBy(c)}

	k, forked, err := cfg.bootToCrash(g, c)
	if err != nil {
		res.Violation = err.Error()
		return res, forked
	}
	img := Injector{At: c}.Inject(k)

	if rep := kernel.Fsck(img); !rep.OK() {
		res.Violation = fmt.Sprintf("fsck of surviving image: %v", rep.Problems)
		return res, forked
	}

	k2 := kernel.New(kernel.Config{Machine: machine.Config{Cores: 1, ADR: cfg.ADR, Storage: img}})
	fac, err := factoryFor(cfg.Mechanism)
	if err != nil {
		res.Violation = err.Error()
		return res, forked
	}
	prog := workload.NewCounter(cfg.Iterations)
	recovered := false
	var rp *kernel.Process
	err = k2.RecoverProcess(kernel.ProcessConfig{
		Name:         "sweep",
		StackMech:    fac,
		StackReserve: cfg.StackReserve,
		HeapSize:     cfg.HeapSize,
	}, []workload.Program{prog}, func(p *kernel.Process) {
		recovered = true
		rp = p
	})
	if err != nil {
		res.Err = err.Error()
		// Failing to recover is legitimate only before anything durable
		// existed; after a durable commit it is data loss.
		if res.Commit >= 1 {
			res.Violation = "recovery failed after a durable commit: " + err.Error()
		}
		return res, forked
	}
	k2.Eng.RunWhile(func() bool { return !recovered })
	if !recovered {
		res.Violation = "recovery never completed (engine drained)"
		return res, forked
	}
	defer rp.Shutdown()
	th := rp.Threads[0]
	s := th.CkptEpoch()
	res.Epoch = s
	p := res.Commit
	if s != p && s != p+1 {
		res.Violation = fmt.Sprintf("recovered epoch %d, want %d or %d", s, p, p+1)
		return res, forked
	}
	if s < 1 || int(s) > len(g.snaps) {
		res.Violation = fmt.Sprintf("recovered epoch %d outside golden history (%d commits)", s, len(g.snaps))
		return res, forked
	}
	if got, want := prog.Snapshot(), g.snaps[s-1]; !bytes.Equal(got, want) {
		res.Violation = fmt.Sprintf("execution position %x differs from committed epoch %d position %x", got, s, want)
		return res, forked
	}

	rec := readStack(k2.Mach.Storage, rp, th.StackSeg)
	want := g.stacks[s-1]
	switch cfg.stackCheck() {
	case checkZero:
		for i, b := range rec {
			if b != 0 {
				res.Violation = fmt.Sprintf("unpersisted stack holds nonzero byte at %#x", g.lo+uint64(i))
				return res, forked
			}
		}
	case checkFullImage:
		for i := range rec {
			if rec[i] != want[i] {
				res.Violation = fmt.Sprintf("stack byte %#x = %#02x differs from epoch %d image byte %#02x",
					g.lo+uint64(i), rec[i], s, want[i])
				return res, forked
			}
		}
	case checkLines:
		ex := g.excluded(s, c)
		for off := uint64(0); off < uint64(len(rec)); off += mem.LineSize {
			if ex[g.lo+off] {
				continue
			}
			if !bytes.Equal(rec[off:off+mem.LineSize], want[off:off+mem.LineSize]) {
				res.Violation = fmt.Sprintf("unmodified stack line %#x differs from epoch %d image", g.lo+off, s)
				return res, forked
			}
		}
	}
	return res, forked
}

// Sweep runs the full crash-point sweep for cfg.Mechanism: one golden
// run, then Points independent crash+recovery runs in parallel on
// runner's worker pool.
func Sweep(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	g, err := cfg.capture()
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pts := cfg.samplePoints(g, rng)
	res := Result{
		Mechanism: cfg.Mechanism,
		Seed:      cfg.Seed,
		ADR:       cfg.ADR,
		Commits:   len(g.commitCycle),
		Points:    make([]PointResult, len(pts)),
	}
	forked := make([]bool, len(pts))
	runner.ForEach(cfg.Workers, len(pts), func(i int) {
		res.Points[i], forked[i] = cfg.runPoint(g, pts[i])
	})
	for _, f := range forked {
		if f {
			res.Forked++
		}
	}
	return res, nil
}

package crash

import (
	"errors"
	"math/rand"
	"testing"
)

// TestForkedSweepMatchesLegacy is the sweep-equivalence gate: for every
// mechanism, a sweep that forks crash points from golden commit
// snapshots must produce exactly the verdicts of a legacy sweep that
// replays every point from cycle zero — same cycles, same P and S, same
// errors, same violations. The resume gate promises byte-identical
// replay; this test pins that the crash harness actually inherits it.
func TestForkedSweepMatchesLegacy(t *testing.T) {
	// brokenfence rides along: the planted bug corrupts what it
	// persists, not the simulation's own state, so its commits snapshot
	// cleanly and its (expected, required) violations must survive
	// forking verbatim. It sweeps more points for the same reason
	// TestSweepCatchesPlantedBug does — sparse sweeps can land only on
	// cycles where the missing fence happens not to matter.
	for _, mech := range append(Mechanisms(), "brokenfence") {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			t.Parallel()
			points := sweepPoints(t, 16)
			if mech == "brokenfence" {
				points = sweepPoints(t, 48)
			}
			cfg := Config{Mechanism: mech, Points: points, Seed: 1}
			forked, err := Sweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Legacy = true
			legacy, err := Sweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if legacy.Forked != 0 {
				t.Fatalf("legacy sweep forked %d points", legacy.Forked)
			}
			if forked.Forked == 0 {
				t.Fatalf("default sweep forked zero of %d points; the equivalence check is vacuous", len(forked.Points))
			}
			t.Logf("%s: %d of %d points forked", mech, forked.Forked, len(forked.Points))
			if len(forked.Points) != len(legacy.Points) {
				t.Fatalf("point counts differ: %d forked vs %d legacy", len(forked.Points), len(legacy.Points))
			}
			for i := range forked.Points {
				if forked.Points[i] != legacy.Points[i] {
					t.Errorf("point %d verdicts differ:\n  forked: %+v\n  legacy: %+v",
						i, forked.Points[i], legacy.Points[i])
				}
			}
			if mech == "brokenfence" && len(forked.Violations()) == 0 {
				t.Fatal("forked sweep reported zero violations for the deliberately fenceless mechanism")
			}
		})
	}
}

// TestSnapshotFailureFallsBackToLegacy pins the un-snapshottable path:
// when golden capture cannot snapshot a commit, every crash point must
// silently replay from cycle zero and still reach the verdicts the
// forked path reaches. No in-tree mechanism actually fails to snapshot,
// so the test poisons the golden record's snapErr by hand.
func TestSnapshotFailureFallsBackToLegacy(t *testing.T) {
	cfg := Config{Mechanism: "dirtybit", Points: sweepPoints(t, 8), Seed: 1}.withDefaults()
	g, err := cfg.capture()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.machSnaps) == 0 {
		t.Fatal("golden capture recorded no commit snapshots")
	}
	pts := cfg.samplePoints(g, rand.New(rand.NewSource(cfg.Seed)))

	poisoned := *g
	poisoned.snapErr = errors.New("test: mechanism not snapshot-clean")
	poisoned.machSnaps = nil

	for _, c := range pts {
		want, forked := cfg.runPoint(g, c)
		got, fell := cfg.runPoint(&poisoned, c)
		if fell {
			t.Fatalf("cycle %d: point forked despite a poisoned snapshot record", c)
		}
		if got != want {
			t.Errorf("cycle %d verdicts differ (forked=%v):\n  forked:   %+v\n  fallback: %+v",
				c, forked, want, got)
		}
	}
}

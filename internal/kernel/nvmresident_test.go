package kernel

import (
	"testing"

	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// NVM-resident mechanisms (SSP, Romulus) place the stack's working pages
// in NVM, so the bytes themselves survive a power failure in place — the
// property that lets those schemes skip copy-back recovery entirely.
func TestNVMResidentStackSurvivesCrash(t *testing.T) {
	for _, mechName := range []string{"ssp", "romulus"} {
		mechName := mechName
		t.Run(mechName, func(t *testing.T) {
			var factory persist.Factory
			if mechName == "ssp" {
				factory = persist.NewSSP(persist.SSPConfig{ConsolidationInterval: 100 * sim.Microsecond})
			} else {
				factory = persist.NewRomulus()
			}
			k := New(Config{Machine: machine.Config{Cores: 1}})
			p := k.Spawn(ProcessConfig{
				Name:      "nvmres-" + mechName,
				StackMech: factory,
				Seed:      6,
			}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}))
			k.RunFor(200 * sim.Microsecond)

			th := p.Threads[0]
			// Every mapped stack page must be in NVM.
			var stackPages []uint64
			for va := th.StackSeg.Lo; va < th.StackSeg.Hi; va += mem.PageSize {
				if paddr, _, ok := p.AS.PT.Translate(va); ok {
					if !mem.IsNVM(paddr) {
						t.Fatalf("stack page %#x in DRAM (%#x) under %s", va, paddr, mechName)
					}
					stackPages = append(stackPages, paddr)
				}
			}
			if len(stackPages) == 0 {
				t.Fatal("no stack pages mapped")
			}
			// Record contents, crash, verify in-place survival.
			want := make([]byte, mem.PageSize)
			k.Mach.Storage.Read(stackPages[0], want)
			p.Shutdown()
			k.Mach.Crash()
			got := make([]byte, mem.PageSize)
			k.Mach.Storage.Read(stackPages[0], got)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s: NVM-resident stack byte %d lost at crash", mechName, i)
				}
			}
		})
	}
}

// Prosper/Dirtybit place the stack in DRAM: the working pages must be in
// DRAM (that is their performance advantage) and must NOT survive the
// crash in place — recovery must come from the NVM image instead.
func TestDRAMResidentStackDropsAtCrash(t *testing.T) {
	k := New(Config{Machine: machine.Config{Cores: 1}})
	p := k.Spawn(ProcessConfig{
		Name:      "dramres",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
		Seed:      6,
	}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}))
	k.RunFor(200 * sim.Microsecond)
	th := p.Threads[0]
	// Find a stack page with non-zero (written) content; all mapped
	// stack pages must be DRAM-resident.
	var dirtyPage uint64
	page := make([]byte, mem.PageSize)
	for va := th.StackSeg.Lo; va < th.StackSeg.Hi; va += mem.PageSize {
		paddr, _, ok := p.AS.PT.Translate(va)
		if !ok {
			continue
		}
		if !mem.IsDRAM(paddr) {
			t.Fatalf("prosper stack page %#x not in DRAM", paddr)
		}
		if dirtyPage == 0 {
			k.Mach.Storage.Read(paddr, page)
			for _, b := range page {
				if b != 0 {
					dirtyPage = paddr
					break
				}
			}
		}
	}
	if dirtyPage == 0 {
		t.Fatal("no written stack page found before crash")
	}
	p.Shutdown()
	k.Mach.Crash()
	after := make([]byte, mem.PageSize)
	k.Mach.Storage.Read(dirtyPage, after)
	for _, b := range after {
		if b != 0 {
			t.Fatal("DRAM stack bytes survived the crash")
		}
	}
}

package kernel

import (
	"testing"

	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// NVM-resident mechanisms (SSP, Romulus) place the stack's working pages
// in NVM, so the committed bytes survive a power failure in place — but
// only once the persistence hardware has actually written them to the
// media. At the instant a checkpoint commits, the crash image must hold
// the committed stack: for SSP the main frames themselves (every modified
// line was written back), for Romulus the backup twin in the image area
// (the replay completed before the commit).
func TestNVMResidentStackSurvivesCrash(t *testing.T) {
	for _, mechName := range []string{"ssp", "romulus"} {
		mechName := mechName
		t.Run(mechName, func(t *testing.T) {
			var factory persist.Factory
			if mechName == "ssp" {
				factory = persist.NewSSP(persist.SSPConfig{ConsolidationInterval: 100 * sim.Microsecond})
			} else {
				factory = persist.NewRomulus()
			}
			k := New(Config{Machine: machine.Config{Cores: 1}})
			p := k.Spawn(ProcessConfig{
				Name:      "nvmres-" + mechName,
				StackMech: factory,
				Seed:      6,
			}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}))
			k.RunFor(50 * sim.Microsecond)

			th := p.Threads[0]
			// Every mapped stack page must be in NVM.
			var stackVAs []uint64
			for va := th.StackSeg.Lo; va < th.StackSeg.Hi; va += mem.PageSize {
				if paddr, _, ok := p.AS.PT.Translate(va); ok {
					if !mem.IsNVM(paddr) {
						t.Fatalf("stack page %#x in DRAM (%#x) under %s", va, paddr, mechName)
					}
					stackVAs = append(stackVAs, va)
				}
			}
			if len(stackVAs) == 0 {
				t.Fatal("no stack pages mapped")
			}

			// Checkpoint; the done callback fires at commit while the
			// thread is still quiesced, so the functional stack equals
			// the committed epoch exactly there.
			committed := false
			p.Checkpoint(func() {
				committed = true
				img := k.Mach.CrashImage()
				live := make([]byte, mem.PageSize)
				durable := make([]byte, mem.PageSize)
				for _, va := range stackVAs {
					paddr, _, ok := p.AS.PT.Translate(va)
					if !ok {
						t.Fatalf("stack page %#x unmapped at commit", va)
					}
					k.Mach.Storage.Read(paddr, live)
					switch mechName {
					case "ssp":
						img.Read(paddr, durable)
					case "romulus":
						img.Read(th.StackSeg.ImageBase+(va-th.StackSeg.Lo), durable)
					}
					for i := range live {
						if live[i] != durable[i] {
							t.Fatalf("%s: committed stack byte %#x+%d not durable at commit", mechName, va, i)
						}
					}
				}
			})
			// Romulus replays its whole store log entry by entry, so give
			// the commit plenty of simulated time.
			k.RunFor(5000 * sim.Microsecond)
			if !committed {
				t.Fatal("checkpoint never committed")
			}
			p.Shutdown()
		})
	}
}

// Prosper/Dirtybit place the stack in DRAM: the working pages must be in
// DRAM (that is their performance advantage) and must NOT survive the
// crash in place — recovery must come from the NVM image instead.
func TestDRAMResidentStackDropsAtCrash(t *testing.T) {
	k := New(Config{Machine: machine.Config{Cores: 1}})
	p := k.Spawn(ProcessConfig{
		Name:      "dramres",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
		Seed:      6,
	}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}))
	k.RunFor(200 * sim.Microsecond)
	th := p.Threads[0]
	// Find a stack page with non-zero (written) content; all mapped
	// stack pages must be DRAM-resident.
	var dirtyPage uint64
	page := make([]byte, mem.PageSize)
	for va := th.StackSeg.Lo; va < th.StackSeg.Hi; va += mem.PageSize {
		paddr, _, ok := p.AS.PT.Translate(va)
		if !ok {
			continue
		}
		if !mem.IsDRAM(paddr) {
			t.Fatalf("prosper stack page %#x not in DRAM", paddr)
		}
		if dirtyPage == 0 {
			k.Mach.Storage.Read(paddr, page)
			for _, b := range page {
				if b != 0 {
					dirtyPage = paddr
					break
				}
			}
		}
	}
	if dirtyPage == 0 {
		t.Fatal("no written stack page found before crash")
	}
	p.Shutdown()
	k.Mach.Crash()
	after := make([]byte, mem.PageSize)
	k.Mach.Storage.Read(dirtyPage, after)
	for _, b := range after {
		if b != 0 {
			t.Fatal("DRAM stack bytes survived the crash")
		}
	}
}

package kernel

import (
	"testing"

	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// TestPauseAttributionInvariant checks the stall-attribution sum
// invariant for every stack mechanism, in both sequential and parallel
// stack-checkpoint modes: each completed epoch's per-cause cycle counts
// must sum exactly to the measured stop-the-world pause — the attribution
// register charges every cycle between quiesce start and commit
// completion to exactly one named cause.
func TestPauseAttributionInvariant(t *testing.T) {
	mechs := []struct {
		name string
		mk   func() persist.Factory
		run  sim.Time
	}{
		{"prosper", func() persist.Factory { return persist.NewProsper(persist.ProsperConfig{}) }, 800 * sim.Microsecond},
		{"dirtybit", func() persist.Factory { return persist.NewDirtybit(persist.DirtybitConfig{}) }, 800 * sim.Microsecond},
		{"ssp", func() persist.Factory { return persist.NewSSP(persist.SSPConfig{}) }, 800 * sim.Microsecond},
		// Romulus replays its log uncoalesced, so one epoch takes far
		// longer than the other mechanisms' (milliseconds for a 150 µs
		// interval's log).
		{"romulus", func() persist.Factory { return persist.NewRomulus() }, 25 * sim.Millisecond},
	}
	for _, parallel := range []bool{false, true} {
		mode := "sequential"
		if parallel {
			mode = "parallel"
		}
		for _, m := range mechs {
			m := m
			t.Run(m.name+"/"+mode, func(t *testing.T) {
				k := New(Config{
					Machine:                 machine.Config{Cores: 2},
					Quantum:                 200 * sim.Microsecond,
					ParallelStackCheckpoint: parallel,
				})
				p := k.Spawn(ProcessConfig{
					Name:               "attrib",
					StackMech:          m.mk(),
					CheckpointInterval: 150 * sim.Microsecond,
					Seed:               11,
				}, workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 96}),
					workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 96}))
				k.RunFor(m.run)
				p.Shutdown()

				if len(p.EpochPauses) == 0 {
					t.Fatal("no checkpoint epochs recorded")
				}
				if got := p.PauseHist.Count(); got != uint64(len(p.EpochPauses)) {
					t.Fatalf("pause histogram has %d samples, %d epochs recorded",
						got, len(p.EpochPauses))
				}
				for _, ep := range p.EpochPauses {
					var sum uint64
					for _, v := range ep.Causes {
						sum += v
					}
					if sum != uint64(ep.Pause) {
						t.Errorf("epoch %d: causes sum %d != pause %d (%+v)",
							ep.Seq, sum, ep.Pause, ep.Causes)
					}
					if ep.Pause == 0 {
						t.Errorf("epoch %d: zero pause", ep.Seq)
					}
				}
				// The checkpoint engine itself must have charged the
				// bracketing causes for every mechanism.
				var total [persist.NumCauses]uint64
				for _, ep := range p.EpochPauses {
					for c, v := range ep.Causes {
						total[c] += v
					}
				}
				if total[persist.CauseQuiesce] == 0 {
					t.Error("no cycles attributed to quiesce")
				}
				if total[persist.CauseCommitFence] == 0 {
					t.Error("no cycles attributed to commit_fence")
				}
			})
		}
	}
}

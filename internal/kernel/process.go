package kernel

import (
	"fmt"
	"sort"

	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/telemetry"
	"prosper/internal/vm"
	"prosper/internal/workload"
)

// Virtual address-space layout for every process.
const (
	heapBase     = uint64(0x1000_0000)
	stackTopBase = uint64(0x7f00_0000_0000)
	stackSpacing = uint64(64 << 20) // gap between thread stacks
)

// ProcessConfig describes a process to spawn.
type ProcessConfig struct {
	Name string

	// StackMech builds the per-thread stack persistence mechanism
	// (nil: no stack persistence).
	StackMech persist.Factory
	// HeapMech builds the process-wide heap persistence mechanism
	// (nil: no heap persistence).
	HeapMech persist.Factory

	StackReserve uint64 // per-thread stack reserve (default 1 MiB)
	HeapSize     uint64 // heap arena size (default 64 MiB)

	// CheckpointInterval enables periodic process checkpoints (0: none).
	CheckpointInterval sim.Time

	// PremapHeap maps the whole heap arena at spawn instead of demand
	// paging it, modelling the warmed-up steady state the paper measures
	// (its benchmarks run for a minute before measurement starts).
	PremapHeap bool

	Seed uint64
}

func (c ProcessConfig) withDefaults() ProcessConfig {
	if c.StackReserve == 0 {
		c.StackReserve = 1 << 20
	}
	if c.HeapSize == 0 {
		c.HeapSize = 64 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

type threadState int

const (
	threadReady threadState = iota
	threadRunning
	threadPaused
	threadDone
)

// Thread is one schedulable execution context.
type Thread struct {
	TID  int
	Proc *Process
	Prog workload.Program

	Ctx      workload.Context
	StackSeg persist.Segment
	mech     persist.Mechanism
	regArea  uint64 // NVM register-save area (two page-sized slots)

	// ckptEpoch counts this thread's completed register+stack persists.
	// It advances in lockstep with the stack mechanism's durable commit
	// sequence and selects which register slot the next save targets;
	// threads that finish early stop persisting, so it can lag the
	// process-wide commit sequence.
	ckptEpoch uint64

	home  *coreState
	state threadState

	needYield      bool
	pauseRequested bool
	pauseWaiter    func()

	// User-mode accounting (Fig 12's user-space IPC).
	UserOps    uint64
	UserCycles uint64

	storeSeq uint64
	sp       uint64

	// opsConsumed counts Prog.Next calls. Programs are deterministic
	// functions of their Context, so snapshot resume rebuilds a thread's
	// execution position by starting a fresh program and discarding this
	// many ops — no generator state ever needs to be serialized.
	opsConsumed uint64

	// Run-loop continuations, bound once at thread creation so the
	// per-op step/finish cycle allocates nothing: cs is the core the
	// thread currently occupies (set by scheduleNext), opStart the issue
	// cycle of the op in flight, storeBuf the reused store payload.
	cs          *coreState
	opStart     sim.Time
	stepFn      func()
	loadDoneFn  func([]byte)
	storeDoneFn func()
	storeBuf    []byte
}

// State returns a printable thread state (tests and tools).
func (t *Thread) State() string {
	switch t.state {
	case threadReady:
		return "ready"
	case threadRunning:
		return "running"
	case threadPaused:
		return "paused"
	default:
		return "done"
	}
}

// Mech exposes the thread's stack persistence mechanism.
func (t *Thread) Mech() persist.Mechanism { return t.mech }

// CkptEpoch returns the thread's completed checkpoint epoch. On a
// recovered process it is the epoch recovery restored the thread to,
// which the crash-sweep harness checks against the durable commit
// sequence.
func (t *Thread) CkptEpoch() uint64 { return t.ckptEpoch }

// SP returns the thread's last architectural stack pointer (tracing and
// the SP-awareness analyses read it).
func (t *Thread) SP() uint64 { return t.sp }

// EpochPause is one checkpoint epoch's pause decomposition: the measured
// stop-the-world pause and its per-cause cycle attribution. The causes
// sum exactly to Pause — the attribution register charges every cycle
// between quiesce start and commit completion to exactly one cause.
type EpochPause struct {
	Seq    uint64
	Pause  sim.Time
	Causes [persist.NumCauses]uint64
}

// Process is a persistent-capable process.
type Process struct {
	PID  int
	Name string
	Cfg  ProcessConfig

	AS      *vm.AddressSpace
	Threads []*Thread

	HeapSeg  persist.Segment
	heapMech persist.Mechanism

	kern       *Kernel
	headerAddr uint64
	ckptSeq    uint64
	ckptTicker *sim.Ticker

	checkpointing bool
	traceTrack    telemetry.Track // checkpoint-epoch lane (zero when disabled)

	// OnCommit, when set, fires inside every checkpoint's commit callback
	// with the just-committed sequence number, while all threads are
	// still quiesced — the crash-sweep harness snapshots golden state
	// here. It must not block or mutate the process.
	OnCommit func(seq uint64)

	// CommitHook, when set, fires right after OnCommit and before the
	// threads resume — the one point in a run where a simulator snapshot
	// can be taken (snapshot.Save reads the kernel's SnapshotPoint while
	// the hook runs). Like OnCommit it must not mutate simulation state.
	CommitHook func(p *Process)

	// Checkpoints completed and cumulative checkpoint statistics.
	CheckpointCount uint64
	CheckpointBytes uint64
	CheckpointTime  sim.Time
	StackCkptBytes  uint64
	StackCkptTime   sim.Time

	// attrib is the stall-attribution register charged by the kernel's
	// checkpoint engine and the persistence mechanisms between epoch
	// quiesce and commit; EpochPauses records one entry per completed
	// checkpoint and PauseHist the pause distribution.
	attrib      *persist.Attrib
	EpochPauses []EpochPause
	PauseHist   *stats.Histogram

	Counters *stats.Counters
}

// Spawn creates a process with one thread per program and makes its
// threads runnable.
func (k *Kernel) Spawn(cfg ProcessConfig, progs ...workload.Program) *Process {
	cfg = cfg.withDefaults()
	if len(progs) == 0 {
		panic("kernel: Spawn needs at least one program")
	}
	p := &Process{
		PID:       k.nextPID,
		Name:      cfg.Name,
		Cfg:       cfg,
		AS:        vm.NewAddressSpace(k.Mach.DRAMFrames, k.Mach.NVMFrames),
		kern:      k,
		attrib:    persist.NewAttrib(k.Eng),
		PauseHist: stats.NewHistogram(),
		Counters:  stats.NewCounters(),
	}
	k.nextPID++
	if p.Name == "" {
		p.Name = "proc"
	}

	// Heap area + mechanism.
	heapInNVM := false
	if cfg.HeapMech != nil {
		p.heapMech = cfg.HeapMech()
		heapInNVM = p.heapMech.PlaceInNVM()
	}
	check(p.AS.AddVMA(&vm.VMA{
		Lo: heapBase, Hi: heapBase + cfg.HeapSize, Kind: vm.KindHeap,
		Writable: true, InNVM: heapInNVM, ThreadID: -1,
	}))
	if cfg.PremapHeap {
		p.AS.EnsureRange(heapBase, heapBase+cfg.HeapSize)
	}

	// NVM checkpoint areas: header page + heap areas + per-thread areas.
	p.headerAddr = k.super.allocNVM(mem.PageSize)
	if p.heapMech != nil {
		p.HeapSeg = persist.Segment{
			Lo: heapBase, Hi: heapBase + cfg.HeapSize, Kind: vm.KindHeap,
			ImageBase: k.super.allocNVM(cfg.HeapSize),
			MetaBase:  k.super.allocNVM(cfg.HeapSize + (1 << 20)),
			MetaSize:  cfg.HeapSize + (1 << 20),
		}
		p.heapMech.Attach(k.env(p), p.HeapSeg)
		if s, ok := p.heapMech.(persist.Snapshotter); ok {
			s.SetSnapshotID(p.PID, 0) // heap is snapshot segment 0
		}
	}

	for i, prog := range progs {
		t := p.newThread(i, prog)
		p.Threads = append(p.Threads, t)
	}
	p.writeHeader()
	k.super.addProc(p.Name, p.headerAddr)
	k.procs = append(k.procs, p)
	p.traceTrack = k.Trace.Track("ckpt:" + p.Name)
	k.registerProcMetrics(p)

	for _, t := range p.Threads {
		t.Prog.Start(t.Ctx)
		k.enqueue(t)
	}
	if cfg.CheckpointInterval > 0 {
		p.ckptTicker = k.Eng.NewTicker(sim.CompKernel, cfg.CheckpointInterval, func() { k.checkpointProcess(p, nil) })
	}
	return p
}

// newThread lays out one thread's stack, NVM areas, and mechanism.
func (p *Process) newThread(i int, prog workload.Program) *Thread {
	k := p.kern
	cfg := p.Cfg
	stackHi := stackTopBase - uint64(p.PID)*16*stackSpacing - uint64(i)*stackSpacing
	stackLo := stackHi - cfg.StackReserve
	t := &Thread{
		TID:  i,
		Proc: p,
		Prog: prog,
		sp:   stackHi,
		home: k.leastLoadedCore(),
	}
	t.Ctx = workload.Context{
		StackHi:      stackHi,
		StackReserve: cfg.StackReserve,
		HeapLo:       heapBase,
		HeapSize:     cfg.HeapSize,
		Seed:         cfg.Seed + uint64(i)*7919,
	}
	t.bindOps(k)
	if cfg.StackMech != nil {
		t.mech = cfg.StackMech()
	} else {
		t.mech = persist.NewNone()()
	}
	check(p.AS.AddVMA(&vm.VMA{
		Lo: stackLo, Hi: stackHi, Kind: vm.KindStack,
		Writable: true, InNVM: t.mech.PlaceInNVM(), ThreadID: i,
	}))
	t.StackSeg = persist.Segment{
		Lo: stackLo, Hi: stackHi, Kind: vm.KindStack,
		ImageBase: k.super.allocNVM(cfg.StackReserve),
		MetaBase:  k.super.allocNVM(cfg.StackReserve + (1 << 18)),
		MetaSize:  cfg.StackReserve + (1 << 18),
	}
	// Two register slots, alternated by checkpoint epoch: the save for
	// epoch E+1 must not overwrite the last committed epoch's registers
	// before E+1 commits (power can fail in between).
	t.regArea = k.super.allocNVM(2 * mem.PageSize)
	t.mech.Attach(k.env(p), t.StackSeg)
	if s, ok := t.mech.(persist.Snapshotter); ok {
		s.SetSnapshotID(p.PID, i+1) // stacks are snapshot segments 1..n
	}
	return t
}

// registerProcMetrics adopts the process's counters and scalar
// checkpoint/thread statistics into the kernel's metrics registry under
// "proc.<name>", in the order DumpStats prints them: sorted counter
// names, then the checkpoint scalars, then per-thread user accounting,
// then the pause distribution and its per-cause stall attribution.
func (k *Kernel) registerProcMetrics(p *Process) {
	k.Metrics.RegisterFunc("proc."+p.Name, func(emit func(name string, v uint64)) {
		names := p.Counters.Names()
		sort.Strings(names)
		for _, n := range names {
			emit(n, p.Counters.Get(n))
		}
		emit("checkpoints", p.CheckpointCount)
		emit("checkpoint_bytes", p.CheckpointBytes)
		emit("checkpoint_cycles", uint64(p.CheckpointTime))
		for _, t := range p.Threads {
			emit(fmt.Sprintf("thread%d.user_ops", t.TID), t.UserOps)
			emit(fmt.Sprintf("thread%d.user_cycles", t.TID), t.UserCycles)
		}
		emit("pause.count", p.PauseHist.Count())
		emit("pause.cycles", p.PauseHist.Sum())
		emit("pause.max", p.PauseHist.Max())
		emit("pause.p50", p.PauseHist.Quantile(0.50))
		emit("pause.p95", p.PauseHist.Quantile(0.95))
		emit("pause.p99", p.PauseHist.Quantile(0.99))
		var causes [persist.NumCauses]uint64
		for _, ep := range p.EpochPauses {
			for c, v := range ep.Causes {
				causes[c] += v
			}
		}
		for c, v := range causes {
			emit("pause."+persist.Cause(c).String(), v)
		}
	})
}

// routeStore dispatches a store to the mechanism owning its segment,
// including inter-thread stack writes (a thread storing into another
// thread's stack range reaches that thread's mechanism). It returns the
// stall the owning mechanism imposes on the store pipeline.
func (p *Process) routeStore(core *machine.Core, vaddr, paddr uint64, size int) sim.Time {
	if vaddr >= heapBase && vaddr < heapBase+p.Cfg.HeapSize {
		if p.heapMech != nil {
			return p.heapMech.OnStore(core, vaddr, paddr, size)
		}
		return 0
	}
	for _, t := range p.Threads {
		if vaddr >= t.StackSeg.Lo && vaddr < t.StackSeg.Hi {
			return t.mech.OnStore(core, vaddr, paddr, size)
		}
	}
	return 0
}

func (p *Process) heapScheduleIn(core *machine.Core, done func()) {
	if p.heapMech == nil {
		done()
		return
	}
	p.heapMech.OnScheduleIn(core, done)
}

func (p *Process) heapScheduleOut(core *machine.Core, done func()) {
	if p.heapMech == nil {
		done()
		return
	}
	p.heapMech.OnScheduleOut(core, done)
}

// Header layout (one NVM page per process):
//
//	0    ckpt seq (committed)
//	8    thread count
//	16   stack reserve
//	24   heap size
//	32   heap image base | 0
//	40   heap meta base
//	48   heap meta size
//	64+  per thread (64 bytes): stack image, stack meta, meta size, reg area
func (p *Process) writeHeader() {
	st := p.kern.Mach.Storage
	buf := make([]byte, mem.PageSize)
	putU64(buf, 0, p.ckptSeq)
	putU64(buf, 8, uint64(len(p.Threads)))
	putU64(buf, 16, p.Cfg.StackReserve)
	putU64(buf, 24, p.Cfg.HeapSize)
	putU64(buf, 32, p.HeapSeg.ImageBase)
	putU64(buf, 40, p.HeapSeg.MetaBase)
	putU64(buf, 48, p.HeapSeg.MetaSize)
	for i, t := range p.Threads {
		off := 64 + i*64
		putU64(buf, off, t.StackSeg.ImageBase)
		putU64(buf, off+8, t.StackSeg.MetaBase)
		putU64(buf, off+16, t.StackSeg.MetaSize)
		putU64(buf, off+24, t.regArea)
	}
	st.Write(p.headerAddr, buf)
	p.kern.Mach.PersistNVM(p.headerAddr, mem.PageSize)
}

// Done reports whether all threads have finished.
func (p *Process) Done() bool {
	for _, t := range p.Threads {
		if t.state != threadDone {
			return false
		}
	}
	return true
}

// StackMechName returns the name of the stack persistence mechanism
// (thread 0's; all threads share a factory). Snapshot fingerprints use
// it to verify a resume boots the same mechanism the save ran.
func (p *Process) StackMechName() string {
	if len(p.Threads) == 0 {
		return ""
	}
	return p.Threads[0].mech.Name()
}

// HeapMechName returns the heap persistence mechanism's name, or "".
func (p *Process) HeapMechName() string {
	if p.heapMech == nil {
		return ""
	}
	return p.heapMech.Name()
}

// StopCheckpoints cancels the periodic checkpoint ticker.
func (p *Process) StopCheckpoints() {
	if p.ckptTicker != nil {
		p.ckptTicker.Stop()
		p.ckptTicker = nil
	}
}

// Shutdown stops tickers owned by the process (checkpoint ticker and any
// mechanism background threads), used when a run ends.
func (p *Process) Shutdown() {
	p.StopCheckpoints()
	type detacher interface{ Detach() }
	if d, ok := p.heapMech.(detacher); ok {
		d.Detach()
	}
	for _, t := range p.Threads {
		if d, ok := t.mech.(detacher); ok {
			d.Detach()
		}
		t.Prog.Close()
	}
}

// UserIPC aggregates user-mode instructions-per-cycle across threads.
func (p *Process) UserIPC() float64 {
	var ops, cycles uint64
	for _, t := range p.Threads {
		ops += t.UserOps
		cycles += t.UserCycles
	}
	if cycles == 0 {
		return 0
	}
	return float64(ops) / float64(cycles)
}

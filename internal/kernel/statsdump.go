package kernel

import (
	"fmt"
	"io"
	"sort"

	"prosper/internal/stats"
)

// DumpStats writes every counter the simulated system maintains — kernel,
// cores, cache levels, memory devices, trackers, and per-process
// checkpoint statistics — in a stable order, the equivalent of gem5's
// stats.txt dump that the paper's artifact parses.
func (k *Kernel) DumpStats(w io.Writer) {
	section := func(name string, c *stats.Counters) {
		if c == nil {
			return
		}
		names := c.Names()
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "%s.%s %d\n", name, n, c.Get(n))
		}
	}
	section("kernel", k.Counters)
	for i, cs := range k.cores {
		section(fmt.Sprintf("core%d", i), cs.core.Counters)
		section(fmt.Sprintf("core%d.tlb", i), cs.core.TLB.Counters)
	}
	for i, c := range k.Mach.Hier.L1D {
		section(fmt.Sprintf("l1d%d", i), c.Counters)
	}
	for i, c := range k.Mach.Hier.L2 {
		section(fmt.Sprintf("l2_%d", i), c.Counters)
	}
	section("l3", k.Mach.Hier.L3.Counters)
	section("dram", k.Mach.Ctl.DRAM.Counters)
	section("nvm", k.Mach.Ctl.NVM.Counters)
	section("machine", k.Mach.Counters)
	for i, tr := range k.Trackers {
		section(fmt.Sprintf("tracker%d", i), tr.Counters)
	}
	for _, p := range k.procs {
		section(fmt.Sprintf("proc.%s", p.Name), p.Counters)
		fmt.Fprintf(w, "proc.%s.checkpoints %d\n", p.Name, p.CheckpointCount)
		fmt.Fprintf(w, "proc.%s.checkpoint_bytes %d\n", p.Name, p.CheckpointBytes)
		fmt.Fprintf(w, "proc.%s.checkpoint_cycles %d\n", p.Name, uint64(p.CheckpointTime))
		for _, t := range p.Threads {
			fmt.Fprintf(w, "proc.%s.thread%d.user_ops %d\n", p.Name, t.TID, t.UserOps)
			fmt.Fprintf(w, "proc.%s.thread%d.user_cycles %d\n", p.Name, t.TID, t.UserCycles)
		}
	}
	fmt.Fprintf(w, "sim.cycles %d\n", k.Eng.Now())
	fmt.Fprintf(w, "sim.events %d\n", k.Eng.Fired())
}

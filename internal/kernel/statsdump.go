package kernel

import (
	"fmt"
	"io"
)

// DumpStats writes every counter the simulated system maintains — kernel,
// cores, cache levels, memory devices, trackers, and per-process
// checkpoint statistics — in a stable order, the equivalent of gem5's
// stats.txt dump that the paper's artifact parses. The body is the
// metrics registry (telemetry.Registry) the kernel builds at boot; the
// trailing sim.* lines are the engine's own clock and event count.
func (k *Kernel) DumpStats(w io.Writer) {
	k.Metrics.WriteText(w)
	fmt.Fprintf(w, "sim.cycles %d\n", k.Eng.Now())
	fmt.Fprintf(w, "sim.events %d\n", k.Eng.Fired())
}

// DumpStatsJSON writes the same metrics as DumpStats as one flat JSON
// object whose keys appear in exactly the text dump's order (the
// serializer preserves insertion order, so the bytes are deterministic).
func (k *Kernel) DumpStatsJSON(w io.Writer) error {
	return k.Metrics.WriteJSON(w, func(emit func(name string, v uint64)) {
		emit("sim.cycles", uint64(k.Eng.Now()))
		emit("sim.events", k.Eng.Fired())
	})
}

package kernel

import (
	"testing"

	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

func testKernel(cores int) *Kernel {
	return New(Config{Machine: machine.Config{Cores: cores}, Quantum: 200 * sim.Microsecond})
}

func TestSpawnAndRunToCompletion(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{Name: "counter"}, workload.NewCounter(200))
	if !k.RunUntilDone(sim.Second) {
		t.Fatal("process never finished")
	}
	if !p.Done() {
		t.Fatal("Done() false after completion")
	}
	thr := p.Threads[0]
	if thr.UserOps == 0 || thr.UserCycles == 0 {
		t.Fatal("no user accounting")
	}
	if c := thr.Prog.(*workload.CounterProgram); c.Progress() != 200 {
		t.Fatalf("progress = %d", c.Progress())
	}
}

func TestStackAndHeapActuallyWritten(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{Name: "counter"}, workload.NewCounter(100))
	k.RunUntilDone(sim.Second)
	// The counter writes to its stack window and heap log; both must be
	// mapped with real contents.
	thr := p.Threads[0]
	if _, _, ok := p.AS.PT.Translate(thr.Ctx.StackHi - 4096); !ok {
		t.Fatal("stack page never mapped")
	}
	if _, _, ok := p.AS.PT.Translate(heapBase); !ok {
		t.Fatal("heap page never mapped")
	}
	if p.AS.DemandFaults() == 0 {
		t.Fatal("no demand faults recorded")
	}
}

func TestPeriodicCheckpointsHappen(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{
		Name:               "app",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 500 * sim.Microsecond,
	}, workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 64}))
	k.RunFor(5 * sim.Millisecond)
	if p.CheckpointCount < 5 {
		t.Fatalf("checkpoints = %d, want >= 5", p.CheckpointCount)
	}
	if p.CheckpointBytes == 0 {
		t.Fatal("checkpoints copied nothing")
	}
	p.Shutdown()
}

func TestCheckpointPausesAndResumes(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{
		Name:      "app",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
	}, workload.NewStream(workload.MicroParams{ArrayBytes: 8 << 10}))
	k.RunFor(200 * sim.Microsecond)
	opsBefore := p.Threads[0].UserOps
	ckptDone := false
	p.Checkpoint(func() { ckptDone = true })
	k.Eng.RunWhile(func() bool { return !ckptDone })
	if !ckptDone {
		t.Fatal("checkpoint never completed")
	}
	k.RunFor(200 * sim.Microsecond)
	if p.Threads[0].UserOps <= opsBefore {
		t.Fatal("thread did not resume after checkpoint")
	}
	p.Shutdown()
}

func TestTwoThreadsShareOneCore(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{
		Name:      "mt",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
	},
		workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 32}),
		workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 32}),
	)
	k.RunFor(3 * sim.Millisecond)
	t0, t1 := p.Threads[0], p.Threads[1]
	if t0.UserOps == 0 || t1.UserOps == 0 {
		t.Fatalf("starvation: ops = %d / %d", t0.UserOps, t1.UserOps)
	}
	// Context switches with tracker save/restore must have occurred.
	if k.Counters.Get("kernel.context_switches") < 4 {
		t.Fatalf("context switches = %d", k.Counters.Get("kernel.context_switches"))
	}
	if k.Counters.Get("kernel.ctxswitch_out_cycles") == 0 {
		t.Fatal("no tracker save cost recorded")
	}
	p.Shutdown()
}

func TestThreadsSpreadAcrossCores(t *testing.T) {
	k := testKernel(2)
	p := k.Spawn(ProcessConfig{Name: "mt"},
		workload.NewCounter(500), workload.NewCounter(500))
	if p.Threads[0].home == p.Threads[1].home {
		t.Fatal("both threads placed on one core")
	}
	if !k.RunUntilDone(sim.Second) {
		t.Fatal("threads never finished")
	}
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	// Boot, run a checkpointable counter with periodic checkpoints,
	// crash mid-run, reboot on the surviving storage, recover, and finish.
	cfg := ProcessConfig{
		Name:               "svc",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 300 * sim.Microsecond,
	}
	k1 := testKernel(1)
	prog1 := workload.NewCounter(100000) // long enough to be interrupted
	p1 := k1.Spawn(cfg, prog1)
	k1.RunFor(2 * sim.Millisecond)
	if p1.CheckpointCount == 0 {
		t.Fatal("no checkpoints before crash")
	}
	progressAtCrash := prog1.Progress()
	if progressAtCrash == 0 {
		t.Fatal("program made no progress")
	}

	// Power failure.
	k1.Mach.Crash()
	storage := k1.Mach.Storage

	// Reboot on the same NVM.
	k2 := New(Config{
		Machine: machine.Config{Cores: 1, Storage: storage},
		Quantum: 200 * sim.Microsecond,
	})
	var recovered *Process
	prog2 := workload.NewCounter(100000)
	err := k2.RecoverProcess(cfg, []workload.Program{prog2}, func(p *Process) { recovered = p })
	if err != nil {
		t.Fatal(err)
	}
	k2.Eng.RunWhile(func() bool { return recovered == nil })
	if recovered == nil {
		t.Fatal("recovery never completed")
	}
	// The program resumed from the last checkpoint: progress is > 0 (not
	// restarted) and <= the crash progress (no time travel).
	resumeProgress := prog2.Progress()
	if resumeProgress == 0 {
		t.Fatal("execution position not restored from checkpoint")
	}
	if resumeProgress > progressAtCrash {
		t.Fatalf("resumed beyond crash point: %d > %d", resumeProgress, progressAtCrash)
	}
	// And it keeps running.
	k2.RunFor(2 * sim.Millisecond)
	if prog2.Progress() <= resumeProgress {
		t.Fatal("recovered process is not executing")
	}
	recovered.Shutdown()
}

func TestRecoveredStackMatchesCheckpoint(t *testing.T) {
	cfg := ProcessConfig{
		Name:      "svc2",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
	}
	k1 := testKernel(1)
	prog := workload.NewCounter(100000)
	p1 := k1.Spawn(cfg, prog)
	k1.RunFor(1 * sim.Millisecond)
	ckptDone := false
	p1.Checkpoint(func() { ckptDone = true })
	k1.Eng.RunWhile(func() bool { return !ckptDone })

	// Capture the checkpointed stack extent contents right now.
	thr := p1.Threads[0]
	lo := thr.StackSeg.Hi - 8192
	want := make([]byte, 8192)
	for va := lo; va < thr.StackSeg.Hi; va += mem.PageSize {
		if paddr, _, ok := p1.AS.PT.Translate(va); ok {
			k1.Mach.Storage.Read(paddr, want[va-lo:va-lo+mem.PageSize])
		}
	}
	// Keep running (dirtying the stack beyond the checkpoint), then crash.
	k1.RunFor(1 * sim.Millisecond)
	k1.Mach.Crash()

	k2 := New(Config{Machine: machine.Config{Cores: 1, Storage: k1.Mach.Storage}})
	var rec *Process
	err := k2.RecoverProcess(cfg, []workload.Program{workload.NewCounter(100000)}, func(p *Process) { rec = p })
	if err != nil {
		t.Fatal(err)
	}
	k2.Eng.RunWhile(func() bool { return rec == nil })

	got := make([]byte, 8192)
	thr2 := rec.Threads[0]
	for va := lo; va < thr2.StackSeg.Hi; va += mem.PageSize {
		if paddr, _, ok := rec.AS.PT.Translate(va); ok {
			k2.Mach.Storage.Read(paddr, got[va-lo:va-lo+mem.PageSize])
		}
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("stack byte %d differs after recovery: %#x vs %#x", i, want[i], got[i])
		}
	}
	rec.Shutdown()
}

func TestRecoverUnknownProcessFails(t *testing.T) {
	k := testKernel(1)
	err := k.RecoverProcess(ProcessConfig{Name: "ghost"}, []workload.Program{workload.NewCounter(1)}, nil)
	if err == nil {
		t.Fatal("recovering unknown process should fail")
	}
}

func TestCheckpointIdleProcessCopiesNothing(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{
		Name:      "idle",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
	}, workload.NewCounter(10))
	k.RunUntilDone(sim.Second)
	before := p.CheckpointBytes
	done := false
	p.Checkpoint(func() { done = true })
	k.Eng.RunWhile(func() bool { return !done })
	// Process finished: checkpoint of a done process is skipped.
	if p.CheckpointBytes != before {
		t.Fatal("checkpoint of finished process copied data")
	}
}

func TestHeapMechanismCheckpointed(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{
		Name:      "heapy",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
		HeapMech:  persist.NewDirtybit(persist.DirtybitConfig{}),
		HeapSize:  1 << 20,
	}, workload.NewCounter(10_000_000)) // long-lived: still running at checkpoint
	k.RunFor(1 * sim.Millisecond)
	done := false
	p.Checkpoint(func() { done = true })
	k.Eng.RunWhile(func() bool { return !done })
	if p.Counters.Get("proc.heap_ckpt_bytes") == 0 {
		t.Fatal("heap mechanism never persisted anything")
	}
	p.Shutdown()
}

func TestUserIPCPositive(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{Name: "ipc"}, workload.NewCounter(1000))
	k.RunUntilDone(sim.Second)
	ipc := p.UserIPC()
	if ipc <= 0 || ipc > 2 {
		t.Fatalf("user IPC = %f", ipc)
	}
}

func TestSuperblockSurvivesReboot(t *testing.T) {
	k1 := testKernel(1)
	k1.Spawn(ProcessConfig{Name: "a"}, workload.NewCounter(1))
	k1.Spawn(ProcessConfig{Name: "b"}, workload.NewCounter(1))
	k1.RunUntilDone(sim.Second)
	k2 := New(Config{Machine: machine.Config{Cores: 1, Storage: k1.Mach.Storage}})
	if _, ok := k2.super.findProc("a"); !ok {
		t.Fatal("proc a lost across reboot")
	}
	if _, ok := k2.super.findProc("b"); !ok {
		t.Fatal("proc b lost across reboot")
	}
	if _, ok := k2.super.findProc("c"); ok {
		t.Fatal("phantom proc found")
	}
}

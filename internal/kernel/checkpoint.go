package kernel

import (
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/telemetry"
	"prosper/internal/workload"
)

// checkpointProcess runs one incremental process checkpoint: pause every
// thread at an op boundary (mechanism state saved and quiescent), persist
// the register state, the per-thread stacks, and the heap, commit the
// checkpoint sequence number, and resume. done (optional) receives the
// completion callback for synchronous callers.
func (k *Kernel) checkpointProcess(p *Process, done func()) {
	if p.checkpointing || p.Done() {
		if done != nil {
			k.Eng.Schedule(sim.CompKernel, 0, done)
		}
		return
	}
	p.checkpointing = true
	start := k.Eng.Now()
	// Open the stall-attribution epoch: from here to commit completion,
	// every cycle is charged to exactly one cause, starting with the
	// quiesce of all threads (mechanisms refine the cause as they run).
	p.attrib.Begin(persist.CauseQuiesce)
	epoch := k.Trace.Begin(p.traceTrack, "checkpoint")
	quiesce := k.Trace.Begin(p.traceTrack, "quiesce")

	// Phase 1: quiesce all threads.
	remaining := len(p.Threads)
	for _, t := range p.Threads {
		k.pauseThread(t, func() {
			remaining--
			if remaining == 0 {
				quiesce.End(telemetry.I("threads", int64(len(p.Threads))))
				k.checkpointPaused(p, start, epoch, done)
			}
		})
	}
}

// checkpointPaused runs once every thread is parked. epoch is the
// whole-checkpoint telemetry span opened at trigger time (zero when
// telemetry is disabled); phase spans for the stack, heap, and commit
// steps nest under it on the process's checkpoint lane.
func (k *Kernel) checkpointPaused(p *Process, start int64, epoch telemetry.Span, done func()) {
	// Phase 2: register + program state, then segments (thread stacks in
	// TID order — sequential by default, concurrent when configured —
	// then the heap).
	idx := 0
	var ckptBytes uint64
	var stackBytes uint64
	var nextStack func()
	// Quiesce is over; the register save and stack copies start now.
	// Mechanisms immediately refine the cause inside their Checkpoint.
	p.attrib.Switch(persist.CauseCopy)
	stacks := k.Trace.Begin(p.traceTrack, "persist-stacks")
	finish := func() {
		// Phase 4: commit the checkpoint by bumping the sequence number
		// in the header (a single NVM line write is the commit point).
		p.attrib.Switch(persist.CauseCommitFence)
		commit := k.Trace.Begin(p.traceTrack, "commit")
		p.ckptSeq++
		seqBuf := make([]byte, 8)
		putU64(seqBuf, 0, p.ckptSeq)
		k.Mach.WritePhys(p.headerAddr, seqBuf, func() {
			commit.End(telemetry.U("seq", p.ckptSeq))
			elapsed := k.Eng.Now() - start
			causes := p.attrib.End()
			p.EpochPauses = append(p.EpochPauses, EpochPause{
				Seq: p.ckptSeq, Pause: elapsed, Causes: causes,
			})
			p.PauseHist.Observe(uint64(elapsed))
			if k.Trace.Enabled() {
				for c, v := range causes {
					k.Trace.Counter(p.traceTrack, "pause."+persist.Cause(c).String(),
						"cycles", int64(v))
				}
			}
			p.CheckpointCount++
			p.CheckpointBytes += ckptBytes
			p.CheckpointTime += elapsed
			p.Counters.Add("proc.ckpt_bytes", ckptBytes)
			p.Counters.Add("proc.ckpt_cycles", uint64(elapsed))
			p.checkpointing = false
			if p.OnCommit != nil {
				// Threads are still quiesced here: architectural and
				// program state are exactly the committed epoch's.
				p.OnCommit(p.ckptSeq)
			}
			if p.CommitHook != nil {
				// Snapshot point: the machine is at its quietest (threads
				// parked, mechanisms committed), and everything that IS in
				// flight carries a stable resume identity. The hook reads
				// k.SnapshotPoint to learn which commit it is standing in.
				k.hookProc = p
				k.hookSync = done != nil
				p.CommitHook(p)
				k.hookProc = nil
				k.hookSync = false
			}
			k.commitEpilogue(p)
			epoch.End(
				telemetry.U("bytes", ckptBytes),
				telemetry.U("pages", (ckptBytes+mem.PageSize-1)/mem.PageSize),
				telemetry.U("stack_bytes", stackBytes),
				telemetry.U("seq", p.ckptSeq),
			)
			if done != nil {
				done()
			}
		})
	}
	heapPhase := func() {
		stacks.End(
			telemetry.U("bytes", stackBytes),
			telemetry.U("pages", (stackBytes+mem.PageSize-1)/mem.PageSize),
		)
		if p.heapMech == nil {
			finish()
			return
		}
		hs := k.Eng.Now()
		heap := k.Trace.Begin(p.traceTrack, "persist-heap")
		p.heapMech.Checkpoint(func(r persist.Result) {
			ckptBytes += r.BytesCopied
			p.Counters.Add("proc.heap_ckpt_bytes", r.BytesCopied)
			p.Counters.Add("proc.heap_ckpt_cycles", uint64(k.Eng.Now()-hs))
			heap.End(telemetry.U("bytes", r.BytesCopied))
			finish()
		})
	}
	// persistThread checkpoints one thread's registers and stack; the two
	// overlap (the paper overlaps OS prep work with the hardware's
	// flush/quiesce step). next fires when both complete.
	persistThread := func(t *Thread, next func()) {
		ss := k.Eng.Now()
		pendingParts := 2
		partDone := func() {
			pendingParts--
			if pendingParts == 0 {
				t.ckptEpoch++
				next()
			}
		}
		k.saveRegisters(t, partDone)
		t.mech.Checkpoint(func(r persist.Result) {
			ckptBytes += r.BytesCopied
			stackBytes += r.BytesCopied
			p.StackCkptTime += k.Eng.Now() - ss
			p.Counters.Add("proc.stack_ckpt_bytes", r.BytesCopied)
			p.Counters.Add("proc.stack_ckpt_cycles", uint64(k.Eng.Now()-ss))
			p.Counters.Add("proc.stack_ckpt_meta", r.MetaScanned)
			partDone()
		})
	}

	if k.Cfg.ParallelStackCheckpoint {
		// All live threads' stacks at once; their copies overlap in the
		// memory system.
		live := 0
		for _, t := range p.Threads {
			if t.state != threadDone {
				live++
			}
		}
		if live == 0 {
			heapPhase()
			return
		}
		remaining := live
		for _, t := range p.Threads {
			if t.state == threadDone {
				continue
			}
			persistThread(t, func() {
				remaining--
				if remaining == 0 {
					p.StackCkptBytes += stackBytes
					heapPhase()
				}
			})
		}
		return
	}

	nextStack = func() {
		if idx >= len(p.Threads) {
			p.StackCkptBytes += stackBytes
			heapPhase()
			return
		}
		t := p.Threads[idx]
		idx++
		if t.state == threadDone {
			nextStack()
			return
		}
		persistThread(t, nextStack)
	}
	nextStack()
}

// commitEpilogue is checkpoint phase 5: open the new interval and resume
// everything. The resume order rotates across checkpoints so no thread
// monopolizes its core when the checkpoint interval is shorter than the
// quantum. It is shared between the live commit path and snapshot resume
// (a snapshot is taken between commit and epilogue, so a resumed kernel
// runs exactly this to continue the interrupted commit).
func (k *Kernel) commitEpilogue(p *Process) {
	n := len(p.Threads)
	first := int(p.ckptSeq) % n
	for i := 0; i < n; i++ {
		t := p.Threads[(first+i)%n]
		t.mech.BeginInterval()
		k.resumeThread(t)
	}
	if p.heapMech != nil {
		p.heapMech.BeginInterval()
	}
}

// saveRegisters persists the thread's architectural state and, for
// checkpointable programs, the execution position snapshot, into the
// register slot for the epoch being checkpointed. Double-buffering keeps
// the previous committed epoch's registers intact until the new epoch
// commits, and the embedded epoch stamp lets recovery pair registers
// with the matching durable stack image.
//
// Slot layout: sp(8) storeSeq(8) epoch(8) snapLen(8) snapshot bytes.
func (k *Kernel) saveRegisters(t *Thread, done func()) {
	var snap []byte
	if c, ok := t.Prog.(workload.Checkpointable); ok {
		snap = c.Snapshot()
	}
	epoch := t.ckptEpoch + 1
	buf := make([]byte, 32+len(snap))
	putU64(buf, 0, t.sp)
	putU64(buf, 8, t.storeSeq)
	putU64(buf, 16, epoch)
	putU64(buf, 24, uint64(len(snap)))
	copy(buf[32:], snap)
	if len(buf) > mem.PageSize {
		panic("kernel: register snapshot exceeds a page")
	}
	k.Mach.WritePhys(t.regArea+(epoch%2)*mem.PageSize, buf, done)
}

// Checkpoint triggers one synchronous checkpoint of the process; done
// fires when it commits (useful for examples and tests in addition to the
// periodic ticker).
func (p *Process) Checkpoint(done func()) { p.kern.checkpointProcess(p, done) }

package kernel

import (
	"fmt"

	"prosper/internal/mem"
)

// FsckReport is the result of validating the NVM checkpoint areas —
// the recovery-time integrity check a production implementation runs
// before trusting persisted state.
type FsckReport struct {
	Processes int
	Segments  int
	Problems  []string
}

// OK reports whether no inconsistencies were found.
func (r FsckReport) OK() bool { return len(r.Problems) == 0 }

func (r *FsckReport) problemf(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck validates every persisted structure reachable from the NVM
// superblock on the given storage: the superblock itself, the process
// directory, per-process headers, and each segment's commit metadata.
// It is purely functional (no timing) and safe to run on a crashed image.
func Fsck(st *mem.Storage) FsckReport {
	var rep FsckReport
	if st.ReadU64(superBase) != superMagic {
		rep.problemf("superblock: bad magic %#x", st.ReadU64(superBase))
		return rep
	}
	count := st.ReadU64(superBase + 8)
	if count > maxProcRecs {
		rep.problemf("superblock: process count %d exceeds capacity", count)
		return rep
	}
	cursor := st.ReadU64(superBase + 16)
	if cursor < superBase+mem.PageSize || cursor > mem.NVMBase+mem.NVMSize/2 {
		rep.problemf("superblock: NVM cursor %#x out of range", cursor)
	}
	s := &superblock{storage: st}
	for i := 0; i < int(count); i++ {
		rec := s.recAddr(i)
		var nameBuf [48]byte
		st.Read(rec, nameBuf[:])
		name := cstr(nameBuf[:])
		if name == "" {
			rep.problemf("proc record %d: empty name", i)
			continue
		}
		hdr := st.ReadU64(rec + 48)
		if hdr < superBase+mem.PageSize || hdr >= cursor {
			rep.problemf("proc %q: header %#x outside allocated NVM", name, hdr)
			continue
		}
		rep.Processes++
		fsckProcess(st, name, hdr, cursor, &rep)
	}
	return rep
}

func fsckProcess(st *mem.Storage, name string, hdrAddr, cursor uint64, rep *FsckReport) {
	hdr := make([]byte, mem.PageSize)
	st.Read(hdrAddr, hdr)
	nThreads := mustU64(hdr, 8)
	stackReserve := mustU64(hdr, 16)
	heapSize := mustU64(hdr, 24)
	if nThreads == 0 || nThreads > 64 {
		rep.problemf("proc %q: implausible thread count %d", name, nThreads)
		return
	}
	if stackReserve == 0 || stackReserve > 1<<30 {
		rep.problemf("proc %q: implausible stack reserve %d", name, stackReserve)
	}
	if heapImage := mustU64(hdr, 32); heapImage != 0 {
		fsckSegmentMeta(st, name+"/heap", mustU64(hdr, 40), mustU64(hdr, 48), heapSize, rep)
		rep.Segments++
	}
	for i := 0; i < int(nThreads); i++ {
		off := 64 + i*64
		metaBase := mustU64(hdr, off+8)
		metaSize := mustU64(hdr, off+16)
		regArea := mustU64(hdr, off+24)
		if metaBase == 0 || metaBase >= cursor {
			rep.problemf("proc %q thread %d: meta base %#x invalid", name, i, metaBase)
			continue
		}
		if regArea == 0 || regArea >= cursor {
			rep.problemf("proc %q thread %d: register area %#x invalid", name, i, regArea)
		}
		fsckSegmentMeta(st, fmt.Sprintf("%s/stack%d", name, i), metaBase, metaSize, stackReserve, rep)
		rep.Segments++
	}
}

// fsckSegmentMeta validates one segment's commit record and entry table.
func fsckSegmentMeta(st *mem.Storage, label string, metaBase, metaSize, segSize uint64, rep *FsckReport) {
	phase := st.ReadU64(metaBase)
	if phase > 2 {
		rep.problemf("%s: invalid commit phase %d", label, phase)
		return
	}
	if phase == 0 {
		return // never checkpointed
	}
	// The entry table and totals are only guaranteed durable while the
	// commit record is in the temp-valid phase: the step-1 commit write
	// fences them, and recovery replays from them. Once the record is in
	// the applied phase the table may legitimately be mid-overwrite by the
	// next checkpoint's in-flight gather, so it is not validated then.
	if phase == 1 {
		count := st.ReadU64(metaBase + 16)
		total := st.ReadU64(metaBase + 24)
		entryBytes := count * 16
		dataBase := metaBase + 64 + ((entryBytes + 63) &^ 63)
		if dataBase+total > metaBase+metaSize {
			rep.problemf("%s: payload (%d entries, %d bytes) overflows meta area", label, count, total)
			return
		}
		var sum uint64
		for i := uint64(0); i < count; i++ {
			off := st.ReadU64(metaBase + 64 + i*16)
			size := st.ReadU64(metaBase + 64 + i*16 + 8)
			if size == 0 {
				rep.problemf("%s: entry %d has zero size", label, i)
				return
			}
			if off+size > segSize {
				rep.problemf("%s: entry %d [%#x+%d] outside segment (%d bytes)", label, i, off, size, segSize)
				return
			}
			sum += size
		}
		if sum != total {
			rep.problemf("%s: entry sizes sum to %d, header says %d", label, sum, total)
		}
	}
	minOff := st.ReadU64(metaBase + 32)
	if minOff > segSize {
		rep.problemf("%s: image low-water mark %d beyond segment", label, minOff-1)
	}
}

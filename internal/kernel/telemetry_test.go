package kernel

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/telemetry"
	"prosper/internal/workload"
)

// tracedRun executes a small fixed-seed 2-core checkpointing run with
// telemetry enabled and returns the serialized trace bytes.
func tracedRun(t *testing.T) []byte {
	t.Helper()
	trace := telemetry.NewTrace()
	k := New(Config{
		Machine:     machine.Config{Cores: 2},
		Quantum:     200 * sim.Microsecond,
		Tracer:      trace.NewTracer("test-run"),
		SampleEvery: 20 * sim.Microsecond,
	})
	p := k.Spawn(ProcessConfig{
		Name:               "traced",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 200 * sim.Microsecond,
		Seed:               7,
	}, workload.NewRandom(workload.MicroParams{ArrayBytes: 32 << 10, WritesPerRun: 128}),
		workload.NewRandom(workload.MicroParams{ArrayBytes: 32 << 10, WritesPerRun: 128}))
	k.RunFor(900 * sim.Microsecond)
	p.Shutdown()

	if k.Trace.Snapshots() == 0 {
		t.Fatal("sampler recorded no metrics snapshots")
	}
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGoldenShape is the Perfetto-export integration test: a small
// 2-core checkpointing run must produce valid trace-event JSON holding
// checkpoint-epoch phase spans, tracker flush instants, and the
// occupancy counter tracks.
func TestTraceGoldenShape(t *testing.T) {
	out := tracedRun(t)

	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	phasesByName := map[string]map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if phasesByName[e.Name] == nil {
			phasesByName[e.Name] = map[string]bool{}
		}
		phasesByName[e.Name][e.Ph] = true
	}
	for name, ph := range map[string]string{
		"checkpoint":      "X", // epoch span
		"quiesce":         "X",
		"persist-stacks":  "X",
		"commit":          "X",
		"flush":           "i", // tracker flush instant
		"nvm.write_queue": "C", // occupancy counter tracks
		"tracker0.table":  "C",
		"tracker1.table":  "C",
	} {
		if !phasesByName[name][ph] {
			t.Errorf("trace has no %q event with phase %q", name, ph)
		}
	}
	// The checkpoint epoch span must carry its size attributes.
	for _, e := range parsed.TraceEvents {
		if e.Name == "checkpoint" && e.Ph == "X" {
			if _, ok := e.Args["bytes"]; !ok {
				t.Fatalf("checkpoint span missing bytes arg: %v", e.Args)
			}
			if _, ok := e.Args["pages"]; !ok {
				t.Fatalf("checkpoint span missing pages arg: %v", e.Args)
			}
			break
		}
	}
}

// TestTraceDeterministic pins byte-identical trace output for identical
// runs (the per-run half of the -parallel determinism guarantee).
func TestTraceDeterministic(t *testing.T) {
	a := tracedRun(t)
	b := tracedRun(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
}

// TestDumpStatsJSON checks the JSON dump carries exactly the text dump's
// keys and values, in the same stable order.
func TestDumpStatsJSON(t *testing.T) {
	k := testKernel(2)
	p := k.Spawn(ProcessConfig{
		Name:               "jsonme",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 200 * sim.Microsecond,
	}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}))
	k.RunFor(500 * sim.Microsecond)
	p.Shutdown()

	var text, js bytes.Buffer
	k.DumpStats(&text)
	if err := k.DumpStatsJSON(&js); err != nil {
		t.Fatal(err)
	}

	var parsed map[string]uint64
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatalf("DumpStatsJSON output invalid: %v\n%s", err, js.String())
	}

	// Same key order: extract key order from the raw JSON bytes (the
	// writer emits insertion-ordered keys) and from the text dump.
	var textKeys []string
	textVals := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(text.String()), "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("unparseable text line %q", line)
		}
		textKeys = append(textKeys, f[0])
		textVals[f[0]] = f[1]
	}
	var jsonKeys []string
	dec := json.NewDecoder(bytes.NewReader(js.Bytes()))
	if _, err := dec.Token(); err != nil { // opening brace
		t.Fatal(err)
	}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		jsonKeys = append(jsonKeys, tok.(string))
		if _, err := dec.Token(); err != nil { // value
			t.Fatal(err)
		}
	}
	if len(jsonKeys) != len(textKeys) {
		t.Fatalf("JSON has %d keys, text has %d", len(jsonKeys), len(textKeys))
	}
	for i, k := range textKeys {
		if jsonKeys[i] != k {
			t.Fatalf("key %d: JSON %q vs text %q", i, jsonKeys[i], k)
		}
	}
	// Spot-check values survive the format change (sim.cycles differs
	// between dumps only if the engine advanced; it hasn't).
	for _, key := range []string{"kernel.kernel.context_switches", "proc.jsonme.checkpoints", "sim.cycles"} {
		if textVals[key] == "" {
			t.Fatalf("text dump missing %s", key)
		}
	}
}

// TestDumpStatsGoldenOrder pins the section ordering contract of the
// text dump: components print in registration order, and counter names
// sort within each section.
func TestDumpStatsGoldenOrder(t *testing.T) {
	k := testKernel(2)
	p := k.Spawn(ProcessConfig{
		Name:               "ordered",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 200 * sim.Microsecond,
	}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}),
		workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}))
	k.RunFor(500 * sim.Microsecond)
	p.Shutdown()

	var buf bytes.Buffer
	k.DumpStats(&buf)
	out := buf.String()

	sections := []string{
		"kernel.", "core0.core.", "core0.tlb.", "core1.core.", "core1.tlb.",
		"l1d0.", "l1d1.", "l2_0.", "l2_1.", "l3.", "dram.", "nvm.",
		"machine.", "tracker0.", "tracker1.", "proc.ordered.",
		"sim.cycles", "sim.events",
	}
	last := -1
	for _, s := range sections {
		idx := strings.Index(out, "\n"+s)
		if idx < 0 && strings.HasPrefix(out, s) {
			idx = 0
		}
		if idx < 0 {
			t.Fatalf("dump has no section %q", s)
		}
		if idx <= last {
			t.Fatalf("section %q out of order (index %d, previous section ended at %d)", s, idx, last)
		}
		last = idx
	}

	// Within a section, counter names are sorted, and the histogram
	// subsection follows as sorted histogram names expanded with the
	// fixed scalar-suffix order.
	var nvmNames []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "nvm.") {
			nvmNames = append(nvmNames, strings.Fields(line)[0])
		}
	}
	var wantHist []string
	for _, h := range []string{"bank_wait", "read_latency", "read_wait", "write_latency", "write_wait"} {
		for _, s := range []string{"count", "sum", "min", "max", "p50", "p95", "p99"} {
			wantHist = append(wantHist, "nvm."+h+"."+s)
		}
	}
	if len(nvmNames) <= len(wantHist) {
		t.Fatalf("nvm section too short: %d lines", len(nvmNames))
	}
	counters := nvmNames[:len(nvmNames)-len(wantHist)]
	hists := nvmNames[len(nvmNames)-len(wantHist):]
	var prev string
	for _, name := range counters {
		if prev != "" && name < prev {
			t.Fatalf("nvm counters not sorted: %q after %q", name, prev)
		}
		prev = name
	}
	for i, name := range hists {
		if name != wantHist[i] {
			t.Fatalf("nvm histogram line %d: got %q, want %q", i, name, wantHist[i])
		}
	}
}

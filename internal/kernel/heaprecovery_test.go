package kernel

import (
	"bytes"
	"testing"

	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// TestFullMemoryStateRecovery covers the paper's headline use case: the
// whole mutable memory state (heap + stack) persists and is recovered —
// stack via Prosper, heap via Dirtybit in this configuration.
func TestFullMemoryStateRecovery(t *testing.T) {
	cfg := ProcessConfig{
		Name:               "fullmem",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		HeapMech:           persist.NewDirtybit(persist.DirtybitConfig{}),
		HeapSize:           1 << 20,
		CheckpointInterval: 200 * sim.Microsecond,
		Seed:               5,
	}
	k := New(Config{Machine: machine.Config{Cores: 1}})
	p := k.Spawn(cfg, workload.NewCounter(10_000_000))
	k.RunFor(700 * sim.Microsecond)
	if p.CheckpointCount == 0 {
		t.Fatal("no checkpoints")
	}
	// Snapshot the committed heap+stack: stop the periodic ticker (so no
	// newer checkpoint supersedes the snapshot) and take one synchronous
	// checkpoint we know is the last durable state.
	p.StopCheckpoints()
	done := false
	p.Checkpoint(func() { done = true })
	k.Eng.RunWhile(func() bool { return !done })
	wantHeap := readSegment(k, p, p.HeapSeg.Lo, p.HeapSeg.Hi)
	wantStack := readStack(k, p, 0)

	// Keep running past the checkpoint (more dirt), then crash.
	k.RunFor(150 * sim.Microsecond)
	p.Shutdown()
	k.Mach.Crash()

	k2 := New(Config{Machine: machine.Config{Cores: 1, Storage: k.Mach.Storage}})
	var rec *Process
	if err := k2.RecoverProcess(cfg, []workload.Program{workload.NewCounter(10_000_000)},
		func(pr *Process) { rec = pr }); err != nil {
		t.Fatal(err)
	}
	k2.Eng.RunWhile(func() bool { return rec == nil })

	gotHeap := readSegment(k2, rec, rec.HeapSeg.Lo, rec.HeapSeg.Hi)
	gotStack := readStack(k2, rec, 0)
	if !bytes.Equal(gotStack, wantStack) {
		t.Fatal("stack state not recovered to last checkpoint")
	}
	if !bytes.Equal(gotHeap, wantHeap) {
		t.Fatal("heap state not recovered to last checkpoint")
	}
	rec.Shutdown()
}

func readSegment(k *Kernel, p *Process, lo, hi uint64) []byte {
	buf := make([]byte, hi-lo)
	for va := lo; va < hi; va += mem.PageSize {
		if paddr, _, ok := p.AS.PT.Translate(va); ok {
			k.Mach.Storage.Read(paddr, buf[va-lo:va-lo+mem.PageSize])
		}
	}
	return buf
}

package kernel

import (
	"errors"
	"fmt"

	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/snapbuf"
)

// This file implements kernel-level snapshot save/load. Snapshots are
// taken only inside a checkpoint commit hook (Process.CommitHook), where
// every thread of the checkpointing process is parked at an op boundary,
// cores are drained, and the only in-flight simulation state is the
// background apply traffic whose continuations carry resume keys. Save
// is a pure read; the run continues unperturbed afterwards.

// SnapshotPoint reports the commit hook currently executing: the process
// whose checkpoint just committed, and whether the checkpoint was
// triggered synchronously (such a commit carries a host-side done
// closure and cannot be snapshotted). Nil outside a commit hook.
func (k *Kernel) SnapshotPoint() (p *Process, sync bool) { return k.hookProc, k.hookSync }

// SaveSnap encodes the full kernel state: scheduler, trackers, and every
// process with its address space, mechanisms, and threads. claims
// accumulates the (when, seq) identities of the pending engine events
// the kernel owns (quantum and checkpoint tickers).
func (k *Kernel) SaveSnap(w *snapbuf.Writer, claims *sim.EventClaims) error {
	if k.Trace.Enabled() {
		return errors.New("kernel: cannot snapshot a run with telemetry tracing active")
	}
	if k.hookProc == nil {
		return errors.New("kernel: snapshots are taken inside checkpoint commit hooks only")
	}
	if k.hookSync {
		return errors.New("kernel: cannot snapshot a synchronous checkpoint (its completion closure is host state)")
	}
	w.Int(k.hookProc.PID)
	w.Int(k.nextPID)
	k.Counters.SaveSnap(w)

	w.U64(uint64(len(k.cores)))
	for _, cs := range k.cores {
		if cs.cur != nil {
			return fmt.Errorf("kernel: core %d is running thread %d.%d at snapshot point",
				cs.id, cs.cur.Proc.PID, cs.cur.TID)
		}
		w.Bool(cs.idle)
		w.Int(cs.homed)
		w.U64(uint64(len(cs.runq)))
		for _, t := range cs.runq {
			w.Int(t.Proc.PID)
			w.Int(t.TID)
		}
		saveTicker(w, claims, k.Eng, cs.timer)
	}

	for _, tr := range k.Trackers {
		if err := tr.SaveSnap(w); err != nil {
			return err
		}
	}

	w.U64(uint64(len(k.procs)))
	for _, p := range k.procs {
		if err := k.saveProc(w, claims, p); err != nil {
			return fmt.Errorf("process %s: %w", p.Name, err)
		}
	}
	return nil
}

func (k *Kernel) saveProc(w *snapbuf.Writer, claims *sim.EventClaims, p *Process) error {
	if p.checkpointing {
		return errors.New("kernel: process is mid-checkpoint at snapshot point")
	}
	w.String(p.Name)
	w.U64(uint64(p.headerAddr))
	w.U64(p.ckptSeq)
	w.U64(p.CheckpointCount)
	w.U64(p.CheckpointBytes)
	w.I64(int64(p.CheckpointTime))
	w.U64(p.StackCkptBytes)
	w.I64(int64(p.StackCkptTime))
	w.U64(uint64(len(p.EpochPauses)))
	for _, ep := range p.EpochPauses {
		w.U64(ep.Seq)
		w.I64(int64(ep.Pause))
		for _, v := range ep.Causes {
			w.U64(v)
		}
	}
	p.PauseHist.SaveSnap(w)
	p.Counters.SaveSnap(w)
	saveTicker(w, claims, k.Eng, p.ckptTicker)
	p.AS.SaveSnap(w)
	w.Bool(p.heapMech != nil)
	if p.heapMech != nil {
		if err := saveMech(w, claims, p.heapMech); err != nil {
			return fmt.Errorf("heap mechanism: %w", err)
		}
	}
	w.U64(uint64(len(p.Threads)))
	for _, t := range p.Threads {
		if t.pauseWaiter != nil {
			return fmt.Errorf("kernel: thread %d has a pause waiter at snapshot point", t.TID)
		}
		w.U8(uint8(t.state))
		w.Bool(t.needYield)
		w.Bool(t.pauseRequested)
		w.U64(t.ckptEpoch)
		w.U64(t.UserOps)
		w.U64(t.UserCycles)
		w.U64(t.storeSeq)
		w.U64(t.sp)
		w.U64(t.opsConsumed)
		if err := saveMech(w, claims, t.mech); err != nil {
			return fmt.Errorf("thread %d stack mechanism: %w", t.TID, err)
		}
	}
	return nil
}

func saveMech(w *snapbuf.Writer, claims *sim.EventClaims, m persist.Mechanism) error {
	s, ok := m.(persist.Snapshotter)
	if !ok {
		return fmt.Errorf("kernel: mechanism %s does not support snapshots", m.Name())
	}
	return s.SaveSnap(w, claims)
}

// LoadSnap restores kernel state saved by SaveSnap into a freshly booted
// kernel of the identical configuration (same spec, same spawn sequence;
// the engine queue must already be reset and the clock restored). It
// registers every mechanism's resume tokens into reg — call it before
// Machine.LoadSnap so parked tokens in device queues can re-bind — via
// RegisterResumeTokens, which the snapshot orchestrator invokes first.
func (k *Kernel) LoadSnap(r *snapbuf.Reader, reg map[uint64]sim.Done) error {
	hookPID := r.Int()
	k.nextPID = r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if err := k.Counters.LoadSnap(r); err != nil {
		return err
	}

	nc := r.Count(3)
	if r.Err() != nil {
		return r.Err()
	}
	if nc != len(k.cores) {
		return fmt.Errorf("kernel: %d cores in snapshot, %d booted", nc, len(k.cores))
	}
	// Run-queue entries reference threads, which are restored later;
	// collect (pid, tid) pairs and resolve after the process section.
	type runqRef struct{ pid, tid int }
	runqs := make([][]runqRef, len(k.cores))
	for ci, cs := range k.cores {
		cs.cur = nil
		cs.idle = r.Bool()
		cs.homed = r.Int()
		nq := r.Count(2)
		if r.Err() != nil {
			return r.Err()
		}
		cs.runq = cs.runq[:0]
		for i := 0; i < nq; i++ {
			runqs[ci] = append(runqs[ci], runqRef{pid: r.Int(), tid: r.Int()})
		}
		if err := loadTicker(r, k.Eng, cs.timer, fmt.Sprintf("core %d quantum", cs.id)); err != nil {
			return err
		}
	}

	for _, tr := range k.Trackers {
		if err := tr.LoadSnap(r); err != nil {
			return err
		}
	}

	np := r.Count(8)
	if r.Err() != nil {
		return r.Err()
	}
	if np != len(k.procs) {
		return fmt.Errorf("kernel: %d processes in snapshot, %d booted", np, len(k.procs))
	}
	for _, p := range k.procs {
		if err := k.loadProc(r, p); err != nil {
			return fmt.Errorf("process %s: %w", p.Name, err)
		}
	}

	for ci, refs := range runqs {
		for _, ref := range refs {
			t := k.findThread(ref.pid, ref.tid)
			if t == nil {
				return fmt.Errorf("kernel: run queue references unknown thread %d.%d", ref.pid, ref.tid)
			}
			k.cores[ci].runq = append(k.cores[ci].runq, t)
		}
	}

	p := k.findProc(hookPID)
	if p == nil {
		return fmt.Errorf("kernel: snapshot commit hook references unknown process %d", hookPID)
	}
	// Re-enter the commit hook the snapshot was taken in: the resumed
	// kernel is paused between commit and epilogue, exactly like the
	// original; FinishResume runs the epilogue.
	k.hookProc, k.hookSync = p, false
	return nil
}

func (k *Kernel) loadProc(r *snapbuf.Reader, p *Process) error {
	name := r.String()
	headerAddr := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if name != p.Name || headerAddr != p.headerAddr {
		return fmt.Errorf("kernel: process mismatch: snapshot %s@%#x, boot %s@%#x",
			name, headerAddr, p.Name, p.headerAddr)
	}
	p.checkpointing = false
	p.ckptSeq = r.U64()
	p.CheckpointCount = r.U64()
	p.CheckpointBytes = r.U64()
	p.CheckpointTime = sim.Time(r.I64())
	p.StackCkptBytes = r.U64()
	p.StackCkptTime = sim.Time(r.I64())
	ne := r.Count(16 + 8*int(persist.NumCauses))
	p.EpochPauses = p.EpochPauses[:0]
	for i := 0; i < ne; i++ {
		var ep EpochPause
		ep.Seq = r.U64()
		ep.Pause = sim.Time(r.I64())
		for c := range ep.Causes {
			ep.Causes[c] = r.U64()
		}
		p.EpochPauses = append(p.EpochPauses, ep)
	}
	if r.Err() != nil {
		return r.Err()
	}
	if err := p.PauseHist.LoadSnap(r); err != nil {
		return err
	}
	if err := p.Counters.LoadSnap(r); err != nil {
		return err
	}
	if err := loadTicker(r, p.kern.Eng, p.ckptTicker, "checkpoint"); err != nil {
		return err
	}
	if err := p.AS.LoadSnap(r); err != nil {
		return err
	}
	hasHeap := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if hasHeap != (p.heapMech != nil) {
		return fmt.Errorf("kernel: heap mechanism presence mismatch (snapshot %v, boot %v)", hasHeap, p.heapMech != nil)
	}
	if hasHeap {
		if err := loadMech(r, p.heapMech); err != nil {
			return fmt.Errorf("heap mechanism: %w", err)
		}
	}
	nt := r.Count(8)
	if r.Err() != nil {
		return r.Err()
	}
	if nt != len(p.Threads) {
		return fmt.Errorf("kernel: %d threads in snapshot, %d booted", nt, len(p.Threads))
	}
	for _, t := range p.Threads {
		st := r.U8()
		t.needYield = r.Bool()
		t.pauseRequested = r.Bool()
		t.ckptEpoch = r.U64()
		t.UserOps = r.U64()
		t.UserCycles = r.U64()
		t.storeSeq = r.U64()
		t.sp = r.U64()
		ops := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		if st > uint8(threadDone) {
			return fmt.Errorf("kernel: thread %d has invalid state %d", t.TID, st)
		}
		t.state = threadState(st)
		t.pauseWaiter = nil
		// Replay the deterministic program to the saved position. The
		// fresh program was Started at boot; every consumed op is
		// discarded again here, which reproduces generator state exactly.
		for ; t.opsConsumed < ops; t.opsConsumed++ {
			t.Prog.Next()
		}
		if err := loadMech(r, t.mech); err != nil {
			return fmt.Errorf("thread %d stack mechanism: %w", t.TID, err)
		}
	}
	return nil
}

func loadMech(r *snapbuf.Reader, m persist.Mechanism) error {
	s, ok := m.(persist.Snapshotter)
	if !ok {
		return fmt.Errorf("kernel: mechanism %s does not support snapshots", m.Name())
	}
	return s.LoadSnap(r)
}

// RegisterResumeTokens collects every mechanism's keyed continuation
// prototypes. The snapshot orchestrator calls it before any state is
// decoded so parked tokens anywhere in the machine can re-bind.
func (k *Kernel) RegisterResumeTokens(reg map[uint64]sim.Done) {
	for _, p := range k.procs {
		if s, ok := p.heapMech.(persist.Snapshotter); ok && p.heapMech != nil {
			s.ResumeTokens(reg)
		}
		for _, t := range p.Threads {
			if s, ok := t.mech.(persist.Snapshotter); ok {
				s.ResumeTokens(reg)
			}
		}
	}
}

// FinishResume runs the interrupted commit's epilogue (phase 5: begin
// the new interval, resume the threads) on a kernel restored by
// LoadSnap. Call exactly once, after all state is live and before the
// engine runs again.
func (k *Kernel) FinishResume() error {
	p := k.hookProc
	if p == nil {
		return errors.New("kernel: no resumed commit hook to finish")
	}
	k.hookProc, k.hookSync = nil, false
	k.commitEpilogue(p)
	return nil
}

func (k *Kernel) findProc(pid int) *Process {
	for _, p := range k.procs {
		if p.PID == pid {
			return p
		}
	}
	return nil
}

func (k *Kernel) findThread(pid, tid int) *Thread {
	p := k.findProc(pid)
	if p == nil {
		return nil
	}
	for _, t := range p.Threads {
		if t.TID == tid {
			return t
		}
	}
	return nil
}

// saveTicker encodes a ticker's pending tick event and claims it. A
// stopped ticker's stale event may still be queued (Stop does not remove
// it); it is claimed and re-injected too, so the event-count stream of
// the resumed run matches the original exactly.
func saveTicker(w *snapbuf.Writer, claims *sim.EventClaims, eng *sim.Engine, t *sim.Ticker) {
	if t == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	stopped := t.Stopped()
	when, seq := t.NextFire()
	pending := !stopped || when > eng.Now()
	w.Bool(stopped)
	w.Bool(pending)
	if pending {
		w.I64(int64(when))
		w.U64(seq)
		claims.Claim(when, seq)
	}
}

func loadTicker(r *snapbuf.Reader, eng *sim.Engine, t *sim.Ticker, what string) error {
	has := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if has != (t != nil) {
		return fmt.Errorf("kernel: %s ticker presence mismatch (snapshot %v, boot %v)", what, has, t != nil)
	}
	if !has {
		return nil
	}
	stopped := r.Bool()
	pending := r.Bool()
	if pending {
		when := sim.Time(r.I64())
		seq := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		if when < eng.Now() {
			return fmt.Errorf("kernel: %s ticker event at %d is in the past (now %d)", what, when, eng.Now())
		}
		t.Rearm(when, seq)
	}
	if stopped {
		t.Stop()
	}
	return r.Err()
}

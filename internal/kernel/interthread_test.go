package kernel

import (
	"testing"

	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// pokeProgram writes one value into another thread's stack (computed from
// the victim's context) and then idles — the inter-thread stack
// modification scenario of Section III-C.
type pokeProgram struct {
	target uint64
	ctx    workload.Context
	step   int
}

func (p *pokeProgram) Name() string               { return "poke" }
func (p *pokeProgram) Start(ctx workload.Context) { p.ctx = ctx }
func (p *pokeProgram) Close()                     {}
func (p *pokeProgram) Next() workload.Op {
	p.step++
	switch p.step {
	case 1: // touch own stack so the thread is live
		return workload.Op{Kind: workload.Store, Addr: p.ctx.StackHi - 64, Size: 8, SP: p.ctx.StackHi - 64}
	case 2: // write into the sibling's stack
		return workload.Op{Kind: workload.Store, Addr: p.target, Size: 8, SP: p.ctx.StackHi - 64}
	default:
		if p.step < 2000 {
			return workload.Op{Kind: workload.Compute, Cycles: 100}
		}
		return workload.Op{Kind: workload.End}
	}
}

func TestInterThreadStackWriteIsCheckpointed(t *testing.T) {
	k := New(Config{Machine: machine.Config{Cores: 2}, Quantum: 100 * sim.Microsecond})
	poker := &pokeProgram{}
	victim := workload.NewCounter(1_000_000)
	p := k.Spawn(ProcessConfig{
		Name:      "it",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
	}, victim, poker)
	// The poker targets a quiet corner of the victim's stack reserve.
	victimSeg := p.Threads[0].StackSeg
	poker.target = victimSeg.Lo + 0x8000
	k.RunFor(200 * sim.Microsecond)

	done := false
	p.Checkpoint(func() { done = true })
	k.Eng.RunWhile(func() bool { return !done })

	// The cross-thread write must be present in the victim's NVM image.
	got := make([]byte, 8)
	k.Mach.Storage.Read(victimSeg.ImageBase+0x8000, got)
	allZero := true
	for _, b := range got {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("inter-thread stack write missing from the checkpoint image")
	}
	// And it must have gone through the fault-interposition path of the
	// victim's mechanism (the poker's own core tracker cannot see it).
	victimMech := p.Threads[0].Mech().(*persist.Prosper)
	if victimMech.Counters.Get("prosper.interthread_faults") == 0 {
		t.Fatal("inter-thread write did not take the fault path")
	}
	p.Shutdown()
}

func TestOwnStackWritesDoNotFault(t *testing.T) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{
		Name:      "own",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
	}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}))
	k.RunFor(300 * sim.Microsecond)
	mech := p.Threads[0].Mech().(*persist.Prosper)
	if mech.Counters.Get("prosper.interthread_faults") != 0 {
		t.Fatalf("own-stack writes took the fault path %d times",
			mech.Counters.Get("prosper.interthread_faults"))
	}
	p.Shutdown()
}

func TestProsperForHeapSegment(t *testing.T) {
	// Section III: Prosper's design tracks any virtual address range;
	// here it persists the heap instead of SSP/Dirtybit.
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{
		Name:     "heap-prosper",
		HeapMech: persist.NewProsper(persist.ProsperConfig{}),
		HeapSize: 1 << 20,
	}, workload.NewCounter(1_000_000))
	k.RunFor(300 * sim.Microsecond)
	done := false
	p.Checkpoint(func() { done = true })
	k.Eng.RunWhile(func() bool { return !done })
	if p.Counters.Get("proc.heap_ckpt_bytes") == 0 {
		t.Fatal("prosper-on-heap persisted nothing")
	}
	// The counter dirties a dense 8 KiB slot window, so the fine-grained
	// copy equals the dirty footprint (and no more).
	bytesPerCkpt := p.Counters.Get("proc.heap_ckpt_bytes")
	if bytesPerCkpt > 3*mem.PageSize {
		t.Fatalf("heap checkpoint %d bytes exceeds the dirty footprint", bytesPerCkpt)
	}
	// The NVM heap image must match the heap contents at checkpoint time.
	paddr, _, ok := p.AS.PT.Translate(heapBase)
	if !ok {
		t.Fatal("heap not mapped")
	}
	want := make([]byte, 64)
	got := make([]byte, 64)
	k.Mach.Storage.Read(paddr, want)
	k.Mach.Storage.Read(p.HeapSeg.ImageBase, got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("heap image byte %d differs", i)
		}
	}
	p.Shutdown()
}

package kernel

import (
	"testing"

	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// buildCheckpointedState runs a process through a few checkpoints and
// returns the kernel for inspection/corruption.
func buildCheckpointedState(t *testing.T) *Kernel {
	t.Helper()
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{
		Name:               "fscked",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		HeapMech:           persist.NewDirtybit(persist.DirtybitConfig{}),
		HeapSize:           1 << 20,
		CheckpointInterval: 200 * sim.Microsecond,
	}, workload.NewCounter(10_000_000))
	k.RunFor(900 * sim.Microsecond)
	if p.CheckpointCount == 0 {
		t.Fatal("no checkpoints to fsck")
	}
	p.Shutdown()
	return k
}

func TestFsckCleanImage(t *testing.T) {
	k := buildCheckpointedState(t)
	rep := Fsck(k.Mach.Storage)
	if !rep.OK() {
		t.Fatalf("clean image reported problems: %v", rep.Problems)
	}
	if rep.Processes != 1 {
		t.Fatalf("processes = %d", rep.Processes)
	}
	if rep.Segments != 2 { // one stack + one heap
		t.Fatalf("segments = %d", rep.Segments)
	}
}

func TestFsckCleanAfterCrash(t *testing.T) {
	k := buildCheckpointedState(t)
	k.Mach.Crash()
	rep := Fsck(k.Mach.Storage)
	if !rep.OK() {
		t.Fatalf("post-crash NVM reported problems: %v", rep.Problems)
	}
}

func TestFsckDetectsBadMagic(t *testing.T) {
	k := buildCheckpointedState(t)
	k.Mach.Storage.WriteU64(superBase, 0xdeadbeef)
	rep := Fsck(k.Mach.Storage)
	if rep.OK() {
		t.Fatal("bad magic undetected")
	}
}

func TestFsckDetectsCorruptPhase(t *testing.T) {
	k := buildCheckpointedState(t)
	p := k.FindProc("fscked")
	k.Mach.Storage.WriteU64(p.Threads[0].StackSeg.MetaBase, 7)
	rep := Fsck(k.Mach.Storage)
	if rep.OK() {
		t.Fatal("invalid phase undetected")
	}
}

func TestFsckDetectsEntryBeyondSegment(t *testing.T) {
	k := buildCheckpointedState(t)
	p := k.FindProc("fscked")
	meta := p.Threads[0].StackSeg.MetaBase
	// Force phase TempValid with one absurd entry.
	st := k.Mach.Storage
	st.WriteU64(meta, 1)        // phase
	st.WriteU64(meta+16, 1)     // count
	st.WriteU64(meta+24, 64)    // total
	st.WriteU64(meta+64, 1<<40) // offset way beyond segment
	st.WriteU64(meta+64+8, 64)  // size
	rep := Fsck(st)
	if rep.OK() {
		t.Fatal("out-of-segment entry undetected")
	}
}

func TestFsckDetectsSizeMismatch(t *testing.T) {
	k := buildCheckpointedState(t)
	p := k.FindProc("fscked")
	meta := p.Threads[0].StackSeg.MetaBase
	st := k.Mach.Storage
	st.WriteU64(meta, 1)       // temp-valid: the only phase whose table is fenced
	st.WriteU64(meta+16, 1)    // one entry
	st.WriteU64(meta+24, 999)  // header total inconsistent with entry
	st.WriteU64(meta+64, 0)    // off
	st.WriteU64(meta+64+8, 64) // size 64 != 999
	rep := Fsck(st)
	if rep.OK() {
		t.Fatal("size mismatch undetected")
	}
}

func TestFsckDetectsImplausibleThreadCount(t *testing.T) {
	k := buildCheckpointedState(t)
	hdr, _ := k.super.findProc("fscked")
	k.Mach.Storage.WriteU64(hdr+8, 1000)
	rep := Fsck(k.Mach.Storage)
	if rep.OK() {
		t.Fatal("implausible thread count undetected")
	}
}

func TestFsckEmptyNVM(t *testing.T) {
	k := testKernel(1) // superblock initialized, no processes
	rep := Fsck(k.Mach.Storage)
	if !rep.OK() || rep.Processes != 0 {
		t.Fatalf("empty NVM: %+v", rep)
	}
}

package kernel

import (
	"encoding/binary"

	"prosper/internal/sim"
	"prosper/internal/workload"
)

// step executes one operation of the thread on its core, then reschedules
// itself. Preemption and checkpoint pauses happen at op boundaries only,
// which keeps the simulation deterministic and matches the quantum
// granularity of the experiments.
func (k *Kernel) step(t *Thread, cs *coreState) {
	if t.state != threadRunning || cs.cur != t {
		return
	}
	if t.needYield {
		k.yield(cs, t, func() { k.parkOrRequeue(t) })
		return
	}
	op := t.Prog.Next()
	t.opsConsumed++
	t.opStart = k.Eng.Now()
	switch op.Kind {
	case workload.End:
		t.state = threadDone
		cs.cur = nil
		k.Counters.Inc("kernel.threads_done")
		k.scheduleNext(cs)
	case workload.Compute:
		t.UserOps += uint64(op.Cycles) // a compute block is ~1 op/cycle
		t.UserCycles += uint64(op.Cycles)
		k.Eng.Schedule(sim.CompKernel, op.Cycles, t.stepFn)
	case workload.Load:
		if op.SP != 0 {
			t.sp = op.SP
		}
		cs.core.Read(op.Addr, int(op.Size), t.loadDoneFn)
	case workload.Store:
		if op.SP != 0 {
			t.sp = op.SP
		}
		cs.core.Write(op.Addr, t.storeData(op), t.storeDoneFn)
	default:
		panic("kernel: unknown op kind")
	}
}

// bindOps materializes the thread's step/completion callbacks once, at
// thread birth, so the per-op hot loop never allocates a closure. Every
// Thread constructor (spawn and recovery) must call it.
func (t *Thread) bindOps(k *Kernel) {
	t.stepFn = func() { k.step(t, t.cs) }
	t.loadDoneFn = func([]byte) { t.finishOp() }
	t.storeDoneFn = t.finishOp
}

// finishOp retires the load/store in flight and schedules the next step.
// It runs through the thread's once-bound loadDoneFn/storeDoneFn, so the
// per-op completion cycle allocates nothing.
func (t *Thread) finishOp() {
	k := t.Proc.kern
	t.UserOps++
	t.UserCycles += uint64(k.Eng.Now()-t.opStart) + 1
	k.Eng.Schedule(sim.CompKernel, 1, t.stepFn)
}

// storeData produces the deterministic payload for a store: a pattern
// derived from the address and the thread's store sequence number, so
// every write changes memory contents verifiably. The returned slice
// aliases the thread's reused payload buffer; it is stable until the
// store's done callback fires, which is exactly the window Core.Write
// reads it in (threads issue at most one op at a time).
func (t *Thread) storeData(op workload.Op) []byte {
	t.storeSeq++
	if cap(t.storeBuf) < int(op.Size) {
		t.storeBuf = make([]byte, op.Size)
	}
	data := t.storeBuf[:op.Size]
	var seedBuf [8]byte
	binary.LittleEndian.PutUint64(seedBuf[:], op.Addr^t.storeSeq*0x9e3779b97f4a7c15)
	for i := range data {
		data[i] = seedBuf[i%8] ^ byte(i)
	}
	return data
}

// parkOrRequeue handles a thread that just left its core: a requested
// pause parks it (checkpoint); otherwise it goes to the back of the run
// queue (quantum expiry).
func (k *Kernel) parkOrRequeue(t *Thread) {
	if t.pauseRequested {
		t.state = threadPaused
		t.pauseRequested = false
		if w := t.pauseWaiter; w != nil {
			t.pauseWaiter = nil
			w()
		}
		return
	}
	t.state = threadReady
	t.home.runq = append(t.home.runq, t)
}

// pauseThread asks the thread to stop at its next op boundary; done fires
// once it is parked with its mechanism state saved and quiescent.
func (k *Kernel) pauseThread(t *Thread, done func()) {
	switch t.state {
	case threadDone, threadPaused:
		k.Eng.Schedule(sim.CompKernel, 0, done)
	case threadReady:
		// Off-core: its mechanism state was already saved at yield.
		// Remove from the run queue and park directly.
		q := t.home.runq
		for i, q0 := range q {
			if q0 == t {
				t.home.runq = append(q[:i], q[i+1:]...)
				break
			}
		}
		t.state = threadPaused
		k.Eng.Schedule(sim.CompKernel, 0, done)
	case threadRunning:
		t.pauseRequested = true
		t.needYield = true
		t.pauseWaiter = done
	}
}

// resumeThread makes a paused thread runnable again.
func (k *Kernel) resumeThread(t *Thread) {
	if t.state != threadPaused {
		return
	}
	k.enqueue(t)
}

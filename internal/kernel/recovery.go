package kernel

import (
	"fmt"

	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/vm"
	"prosper/internal/workload"
)

// RecoverProcess rebuilds a crashed process from its NVM checkpoint area.
// The caller provides the same ProcessConfig and fresh program instances
// (like an init script relaunching services); the kernel re-binds them to
// the persisted segments, runs each mechanism's recovery path to restore
// DRAM contents (and repair torn applies), restores the register state
// and, for checkpointable programs, the execution position of the last
// committed checkpoint. done fires when the process is runnable again.
func (k *Kernel) RecoverProcess(cfg ProcessConfig, progs []workload.Program, done func(*Process)) error {
	cfg = cfg.withDefaults()
	headerAddr, ok := k.super.findProc(cfg.Name)
	if !ok {
		return fmt.Errorf("kernel: no checkpoint area for process %q", cfg.Name)
	}
	st := k.Mach.Storage
	hdr := make([]byte, mem.PageSize)
	st.Read(headerAddr, hdr)
	seq := mustU64(hdr, 0)
	nThreads := int(mustU64(hdr, 8))
	stackReserve := mustU64(hdr, 16)
	heapSize := mustU64(hdr, 24)
	if nThreads != len(progs) {
		return fmt.Errorf("kernel: %d programs supplied for %d persisted threads", len(progs), nThreads)
	}
	if stackReserve != cfg.StackReserve || heapSize != cfg.HeapSize {
		return fmt.Errorf("kernel: recovery config mismatch (reserve %d vs %d, heap %d vs %d)",
			cfg.StackReserve, stackReserve, cfg.HeapSize, heapSize)
	}

	p := &Process{
		PID:        k.nextPID,
		Name:       cfg.Name,
		Cfg:        cfg,
		AS:         vm.NewAddressSpace(k.Mach.DRAMFrames, k.Mach.NVMFrames),
		kern:       k,
		headerAddr: headerAddr,
		ckptSeq:    seq,
		Counters:   stats.NewCounters(),
	}
	k.nextPID++

	heapInNVM := false
	if cfg.HeapMech != nil {
		p.heapMech = cfg.HeapMech()
		heapInNVM = p.heapMech.PlaceInNVM()
	}
	check(p.AS.AddVMA(&vm.VMA{
		Lo: heapBase, Hi: heapBase + cfg.HeapSize, Kind: vm.KindHeap,
		Writable: true, InNVM: heapInNVM, ThreadID: -1,
	}))
	if p.heapMech != nil {
		p.HeapSeg = persist.Segment{
			Lo: heapBase, Hi: heapBase + cfg.HeapSize, Kind: vm.KindHeap,
			ImageBase: mustU64(hdr, 32),
			MetaBase:  mustU64(hdr, 40),
			MetaSize:  mustU64(hdr, 48),
		}
		p.heapMech.Attach(k.env(p), p.HeapSeg)
	}

	for i := 0; i < nThreads; i++ {
		off := 64 + i*64
		// Recreate the thread against its persisted areas. The stack's
		// virtual placement must match the original layout, which is a
		// pure function of (original PID, TID); the original PID is
		// recoverable from the image segment... we persist layout
		// implicitly by storing the virtual range in the register area at
		// every checkpoint; here we derive it from the recorded reserve
		// and the register save.
		regArea := mustU64(hdr, off+24)
		metaBase := mustU64(hdr, off+8)

		// Per-thread recovery epoch. A power failure inside the commit
		// window leaves the stack segment's step-1 commit record durable
		// at seq+1 while the process header still reads seq; the image may
		// already be partially applied and can only be rolled forward, so
		// the durable stack sequence — not the header — dictates this
		// thread's epoch. Mechanisms without a durable sequence fall back
		// to the committed header epoch.
		epoch := seq
		if ms, ok := persist.DurableSegmentSeq(st, metaBase); ok {
			epoch = ms
		}
		// Pick the register slot stamped with that epoch; fall back to the
		// newest older stamp (threads that finish early stop saving
		// registers, so their stamp can lag). Slots stamped past the epoch
		// belong to a persist whose stack never became durable.
		reg := make([]byte, mem.PageSize)
		slot := make([]byte, mem.PageSize)
		found := false
		var regEpoch uint64
		for s := uint64(0); s < 2; s++ {
			st.Read(regArea+s*mem.PageSize, slot)
			stamp := mustU64(slot, 16)
			if mustU64(slot, 0) == 0 || stamp > epoch {
				continue
			}
			if !found || stamp > regEpoch {
				found, regEpoch = true, stamp
				copy(reg, slot)
			}
		}
		if !found {
			return fmt.Errorf("kernel: thread %d has no register checkpoint", i)
		}
		sp := mustU64(reg, 0)
		storeSeq := mustU64(reg, 8)
		snapLen := mustU64(reg, 24)

		stackHi := ((sp + stackSpacing - 1) / stackSpacing) * stackSpacing
		stackLo := stackHi - cfg.StackReserve
		t := &Thread{
			TID:  i,
			Proc: p,
			Prog: progs[i],
			sp:   sp,
			home: k.leastLoadedCore(),
		}
		t.storeSeq = storeSeq
		t.bindOps(k)
		t.Ctx = workload.Context{
			StackHi:      stackHi,
			StackReserve: cfg.StackReserve,
			HeapLo:       heapBase,
			HeapSize:     cfg.HeapSize,
			Seed:         cfg.Seed + uint64(i)*7919,
		}
		if cfg.StackMech != nil {
			t.mech = cfg.StackMech()
		} else {
			t.mech = persist.NewNone()()
		}
		check(p.AS.AddVMA(&vm.VMA{
			Lo: stackLo, Hi: stackHi, Kind: vm.KindStack,
			Writable: true, InNVM: t.mech.PlaceInNVM(), ThreadID: i,
		}))
		t.StackSeg = persist.Segment{
			Lo: stackLo, Hi: stackHi, Kind: vm.KindStack,
			ImageBase: mustU64(hdr, off),
			MetaBase:  metaBase,
			MetaSize:  mustU64(hdr, off+16),
		}
		t.regArea = regArea
		t.ckptEpoch = regEpoch
		t.mech.Attach(k.env(p), t.StackSeg)

		t.Prog.Start(t.Ctx)
		if c, ok := t.Prog.(workload.Checkpointable); ok && snapLen > 0 {
			c.Restore(reg[32 : 32+snapLen])
		}
		p.Threads = append(p.Threads, t)
	}
	k.procs = append(k.procs, p)
	p.traceTrack = k.Trace.Track("ckpt:" + p.Name)
	k.registerProcMetrics(p)

	// Run every mechanism's recovery path, then make threads runnable.
	pending := len(p.Threads) + 1
	complete := func() {
		pending--
		if pending > 0 {
			return
		}
		for _, t := range p.Threads {
			k.enqueue(t)
		}
		if cfg.CheckpointInterval > 0 {
			p.ckptTicker = k.Eng.NewTicker(sim.CompKernel, cfg.CheckpointInterval, func() { k.checkpointProcess(p, nil) })
		}
		if done != nil {
			done(p)
		}
	}
	for _, t := range p.Threads {
		t.mech.Recover(complete)
	}
	if p.heapMech != nil {
		p.heapMech.Recover(complete)
	} else {
		k.Eng.Schedule(sim.CompKernel, 0, func() { complete() })
	}
	return nil
}

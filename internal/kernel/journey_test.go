package kernel

import (
	"bytes"
	"testing"

	"prosper/internal/journey"
	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// TestJourneyAttributionInvariantPerMechanism drives sampled journeys
// through full kernel runs under every stack mechanism and checks the
// subsystem's core contract end to end: each finished journey's
// per-stage cycle vector sums EXACTLY to its measured latency — the
// same "every cycle charged to exactly one cause" invariant
// persist.Attrib pins for checkpoint pauses — and the serialized
// journal re-validates through the parser.
func TestJourneyAttributionInvariantPerMechanism(t *testing.T) {
	mechs := []struct {
		name string
		mk   func() persist.Factory
		run  sim.Time
	}{
		{"prosper", func() persist.Factory { return persist.NewProsper(persist.ProsperConfig{}) }, 800 * sim.Microsecond},
		{"dirtybit", func() persist.Factory { return persist.NewDirtybit(persist.DirtybitConfig{}) }, 800 * sim.Microsecond},
		{"ssp", func() persist.Factory { return persist.NewSSP(persist.SSPConfig{}) }, 800 * sim.Microsecond},
		{"romulus", func() persist.Factory { return persist.NewRomulus() }, 2 * sim.Millisecond},
	}
	for _, m := range mechs {
		m := m
		t.Run(m.name, func(t *testing.T) {
			r := journey.NewRecorder(m.name, 16, 1)
			k := New(Config{
				Machine: machine.Config{Cores: 2},
				Quantum: 200 * sim.Microsecond,
				Journey: r,
			})
			p := k.Spawn(ProcessConfig{
				Name:               "journeys",
				StackMech:          m.mk(),
				CheckpointInterval: 150 * sim.Microsecond,
				Seed:               11,
			}, workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 96}),
				workload.NewApp(workload.GapbsPR())) // loads as well as stores
			k.RunFor(m.run)
			p.Shutdown()

			accesses, sampled, finished := r.Counts()
			if accesses == 0 || sampled == 0 {
				t.Fatalf("no journeys sampled (accesses %d, sampled %d)", accesses, sampled)
			}
			if finished == 0 {
				t.Fatal("no journeys finished within the run")
			}
			var loads, stores int
			for _, j := range r.Journeys() {
				if !j.Finished() {
					continue
				}
				if j.Write {
					stores++
				} else {
					loads++
				}
				var sum int64
				for s := 0; s < journey.NumStages; s++ {
					sum += int64(j.Vec[s])
				}
				if sum != int64(j.Latency()) {
					t.Fatalf("jid %d (seq %d): vector sums to %d, latency %d\nspans: %+v\nvec: %+v",
						j.JID, j.Seq, sum, j.Latency(), j.Spans, j.Vec)
				}
				for _, sp := range j.Spans {
					if sp.Enter < j.Start || sp.Exit > j.End {
						t.Fatalf("jid %d: span %s/%s [%d,%d) escapes journey [%d,%d]",
							j.JID, sp.Stage, sp.Cause, sp.Enter, sp.Exit, j.Start, j.End)
					}
				}
			}
			if loads == 0 || stores == 0 {
				t.Fatalf("sampled only one access kind (loads %d, stores %d)", loads, stores)
			}

			// The serialized journal must round-trip the same invariants.
			var buf bytes.Buffer
			if err := r.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			parsed, err := journey.Parse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("journal does not re-parse: %v", err)
			}
			if err := parsed.CheckInvariants(); err != nil {
				t.Fatalf("journal fails validation: %v", err)
			}
		})
	}
}

// TestJourneyRecorderOffIsIdentical pins that attaching no recorder and
// attaching none at all produce the same simulation: the journey hooks
// must be invisible to the machine's timing when tracing is off.
func TestJourneyRecorderOffIsIdentical(t *testing.T) {
	run := func(r *journey.Recorder) (uint64, sim.Time) {
		k := New(Config{
			Machine: machine.Config{Cores: 1},
			Quantum: 200 * sim.Microsecond,
			Journey: r,
		})
		p := k.Spawn(ProcessConfig{
			Name:               "off",
			StackMech:          persist.NewProsper(persist.ProsperConfig{}),
			CheckpointInterval: 150 * sim.Microsecond,
			Seed:               5,
		}, workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 96}))
		k.RunFor(600 * sim.Microsecond)
		ops := p.Threads[0].UserOps
		p.Shutdown()
		return ops, k.Eng.Now()
	}
	opsOff, nowOff := run(nil)
	opsOn, nowOn := run(journey.NewRecorder("on", 16, 1))
	if opsOff != opsOn || nowOff != nowOn {
		t.Fatalf("journey recording perturbed the run: ops %d vs %d, now %d vs %d",
			opsOff, opsOn, nowOff, nowOn)
	}
}

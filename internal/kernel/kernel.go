// Package kernel is the GemOS-equivalent operating-system layer of the
// reproduction: processes and threads over the simulated machine, a
// round-robin per-core scheduler that saves/restores Prosper tracker
// state across context switches, the periodic checkpoint engine that
// drives the persistence mechanisms, and the post-crash recovery path
// that rebuilds processes from their NVM checkpoint areas.
package kernel

import (
	"encoding/binary"
	"fmt"

	"prosper/internal/journey"
	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/prosper"
	"prosper/internal/sim"
	"prosper/internal/stats"
	"prosper/internal/telemetry"
)

// Config sizes the kernel and the machine beneath it.
type Config struct {
	Machine machine.Config
	// Quantum is the scheduler time slice (default 1 ms).
	Quantum sim.Time
	// TrackerCfg parameterizes the per-core Prosper dirty trackers.
	TrackerCfg prosper.Config
	// ContextSwitchCost is the fixed kernel-path cost of a switch
	// (excluding mechanism save/restore, which is timed for real).
	ContextSwitchCost sim.Time
	// ParallelStackCheckpoint persists all threads' stacks concurrently
	// during a process checkpoint instead of thread-by-thread; the copies
	// contend in the memory system but overlap their latencies. Still
	// fully deterministic (the event engine fixes the interleaving).
	ParallelStackCheckpoint bool
	// Tracer, when non-nil, receives sim-time telemetry: checkpoint
	// phase spans, tracker flush/HWM/eviction instants, and periodic
	// occupancy samples of the memory system. Nil (the default) keeps
	// every instrumentation site on its zero-cost fast path.
	Tracer *telemetry.Tracer
	// SampleEvery is the occupancy/metrics sampling cadence in cycles
	// (default 10 µs of sim time); only meaningful with a Tracer.
	SampleEvery sim.Time
	// Journey, when non-nil, samples end-to-end access journeys on every
	// component of the memory path (internal/journey). Nil (the default)
	// keeps the access path on its zero-allocation fast path.
	Journey *journey.Recorder
}

func (c Config) withDefaults() Config {
	if c.Quantum <= 0 {
		c.Quantum = sim.Millisecond
	}
	if c.ContextSwitchCost <= 0 {
		c.ContextSwitchCost = 300
	}
	return c
}

// Kernel is one booted OS instance.
type Kernel struct {
	Cfg      Config
	Mach     *machine.Machine
	Eng      *sim.Engine
	Trackers []*prosper.Tracker

	procs   []*Process
	cores   []*coreState
	nextPID int

	super *superblock

	// hookProc/hookSync identify the commit hook currently executing (the
	// only point a simulator snapshot may be taken): the process whose
	// checkpoint just committed, and whether the checkpoint was triggered
	// synchronously (a host-side done closure is pending, which no
	// snapshot can carry). LoadSnap re-enters this state so a resumed
	// kernel is indistinguishable from one paused inside the hook.
	hookProc *Process
	hookSync bool

	Counters *stats.Counters
	// Metrics is the hierarchical registry adopting every component's
	// counters under the stable dotted names DumpStats prints.
	Metrics *telemetry.Registry
	// Trace is the kernel's tracer (nil when telemetry is disabled).
	//prosperlint:ignore snapshot SaveSnap rejects traced kernels; host-side tracer state never crosses a snapshot
	Trace *telemetry.Tracer
}

type coreState struct {
	id    int
	core  *machine.Core
	runq  []*Thread
	cur   *Thread
	idle  bool
	homed int // threads placed on this core (even before first enqueue)
	timer *sim.Ticker
}

// New boots a kernel on a fresh machine (or, when cfg.Machine.Storage is
// set, on surviving NVM contents after a crash).
func New(cfg Config) *Kernel {
	cfg = cfg.withDefaults()
	m := machine.New(cfg.Machine)
	m.AttachJourneys(cfg.Journey)
	k := &Kernel{
		Cfg:      cfg,
		Mach:     m,
		Eng:      m.Eng,
		Counters: stats.NewCounters(),
	}
	for i, c := range m.Cores {
		trCfg := cfg.TrackerCfg
		trCfg.Seed = cfg.TrackerCfg.Seed + uint64(i) + 1
		tr := prosper.New(m.Eng, c.L2(), m.Storage, trCfg)
		k.Trackers = append(k.Trackers, tr)
		k.cores = append(k.cores, &coreState{id: i, core: c, idle: true})
	}
	k.super = loadOrInitSuperblock(m.Storage, m.PersistNVM)
	for _, cs := range k.cores {
		cs := cs
		cs.timer = m.Eng.NewTicker(sim.CompKernel, cfg.Quantum, func() { k.timerTick(cs) })
	}
	k.buildMetrics()
	k.startTelemetry()
	return k
}

// buildMetrics registers every component's counters in the registry, in
// the section order DumpStats has always printed.
func (k *Kernel) buildMetrics() {
	m := k.Mach
	r := telemetry.NewRegistry()
	r.Register("kernel", k.Counters)
	for i, cs := range k.cores {
		r.Register(fmt.Sprintf("core%d", i), cs.core.Counters)
		// TLB counter keys are fully qualified ("core0.tlb.hits"), so the
		// group carries no prefix of its own.
		r.Register("", cs.core.TLB.Counters)
		r.RegisterHistograms(fmt.Sprintf("core%d.tlb", i), cs.core.TLB.Histograms)
	}
	for i, c := range m.Hier.L1D {
		r.Register(fmt.Sprintf("l1d%d", i), c.Counters)
		r.RegisterHistograms(fmt.Sprintf("l1d%d", i), c.Histograms)
	}
	for i, c := range m.Hier.L2 {
		r.Register(fmt.Sprintf("l2_%d", i), c.Counters)
		r.RegisterHistograms(fmt.Sprintf("l2_%d", i), c.Histograms)
	}
	r.Register("l3", m.Hier.L3.Counters)
	r.RegisterHistograms("l3", m.Hier.L3.Histograms)
	r.Register("dram", m.Ctl.DRAM.Counters)
	r.RegisterHistograms("dram", m.Ctl.DRAM.Histograms)
	r.Register("nvm", m.Ctl.NVM.Counters)
	r.RegisterHistograms("nvm", m.Ctl.NVM.Histograms)
	r.Register("machine", m.Counters)
	for i, tr := range k.Trackers {
		r.Register(fmt.Sprintf("tracker%d", i), tr.Counters)
		r.RegisterHistograms(fmt.Sprintf("tracker%d", i), tr.Histograms)
	}
	k.Metrics = r
}

// startTelemetry binds the tracer to the engine, gives the trackers
// their event lanes, and starts the periodic occupancy/metrics sampler.
// With a nil tracer it does nothing: no lanes, no ticker, no events.
func (k *Kernel) startTelemetry() {
	k.Trace = k.Cfg.Tracer
	if !k.Trace.Enabled() {
		return
	}
	m := k.Mach
	k.Trace.Bind(m.Eng)
	var probes []telemetry.CounterProbe
	memTrack := k.Trace.Track("memory")
	for _, d := range []*mem.Device{m.Ctl.DRAM, m.Ctl.NVM} {
		d := d
		probes = append(probes,
			telemetry.CounterProbe{Track: memTrack, Name: d.Name() + ".read_queue", Series: "depth",
				Get: func() int64 { return int64(d.ReadQueueDepth()) }},
			telemetry.CounterProbe{Track: memTrack, Name: d.Name() + ".write_queue", Series: "depth",
				Get: func() int64 { return int64(d.WriteQueueDepth()) }},
		)
	}
	probes = append(probes, telemetry.CounterProbe{Track: memTrack, Name: "l3.mshrs", Series: "in_use",
		Get: func() int64 { return int64(m.Hier.L3.MSHRsInUse()) }})
	for i, c := range m.Hier.L1D {
		c := c
		probes = append(probes, telemetry.CounterProbe{Track: memTrack,
			Name: fmt.Sprintf("l1d%d.mshrs", i), Series: "in_use",
			Get: func() int64 { return int64(c.MSHRsInUse()) }})
	}
	for i, cs := range k.cores {
		core := cs.core
		probes = append(probes, telemetry.CounterProbe{Track: memTrack,
			Name: fmt.Sprintf("core%d.store_buffer", i), Series: "in_use",
			Get: func() int64 { return int64(core.StoreBufferInUse()) }})
	}
	for i, tr := range k.Trackers {
		tr := tr
		tr.Trace = k.Trace
		tr.TraceTrack = k.Trace.Track(fmt.Sprintf("tracker%d", i))
		probes = append(probes, telemetry.CounterProbe{Track: tr.TraceTrack,
			Name: fmt.Sprintf("tracker%d.table", i), Series: "occupancy",
			Get: func() int64 { return int64(tr.LiveEntries()) }})
	}
	every := k.Cfg.SampleEvery
	if every <= 0 {
		every = 10 * sim.Microsecond
	}
	reg := k.Metrics
	m.Eng.NewTicker(sim.CompSim, every, func() {
		k.Trace.Sample(probes)
		k.Trace.SnapshotMetrics(reg)
	})
}

// env builds the mechanism environment for a process.
func (k *Kernel) env(p *Process) *persist.Env {
	return &persist.Env{Mach: k.Mach, AS: p.AS, Trackers: k.Trackers, Attrib: p.attrib}
}

// timerTick preempts the core's current thread at its next op boundary.
func (k *Kernel) timerTick(cs *coreState) {
	if cs.cur == nil {
		return
	}
	// Don't churn tracker state when nothing else wants the core.
	if len(cs.runq) == 0 && !cs.cur.pauseRequested {
		return
	}
	cs.cur.needYield = true
}

// leastLoadedCore places new threads round-robin by home count.
func (k *Kernel) leastLoadedCore() *coreState {
	best := k.cores[0]
	for _, cs := range k.cores[1:] {
		if cs.homed < best.homed {
			best = cs
		}
	}
	best.homed++
	return best
}

// enqueue makes a thread runnable on its core and kicks the core if idle.
func (k *Kernel) enqueue(t *Thread) {
	t.state = threadReady
	cs := t.home
	cs.runq = append(cs.runq, t)
	if cs.cur == nil {
		k.scheduleNext(cs)
	}
}

// scheduleNext installs the next runnable thread on the core.
func (k *Kernel) scheduleNext(cs *coreState) {
	if len(cs.runq) == 0 {
		cs.cur = nil
		cs.idle = true
		return
	}
	t := cs.runq[0]
	cs.runq = cs.runq[1:]
	cs.cur = t
	t.cs = cs
	cs.idle = false
	t.state = threadRunning
	t.needYield = false
	k.Counters.Inc("kernel.context_switches")
	k.installContext(cs, t)
	start := k.Eng.Now()
	k.Eng.Schedule(sim.CompKernel, k.Cfg.ContextSwitchCost, func() {
		t.mech.OnScheduleIn(cs.core, func() {
			t.Proc.heapScheduleIn(cs.core, func() {
				k.Counters.Add("kernel.ctxswitch_in_cycles", uint64(k.Eng.Now()-start))
				k.step(t, cs)
			})
		})
	})
}

// installContext binds the address space, fault handler, and store-hook
// dispatcher (routing stores to the owning segment's mechanism).
func (k *Kernel) installContext(cs *coreState, t *Thread) {
	core := cs.core
	if core.AS != t.Proc.AS {
		core.SwitchContext(t.Proc.AS)
	}
	p := t.Proc
	core.OnFault = func(vaddr uint64, write bool) error {
		k.Counters.Inc("kernel.page_faults")
		_, err := p.AS.HandleFault(vaddr, write)
		return err
	}
	core.StoreHook = func(vaddr, paddr uint64, size int) sim.Time {
		return p.routeStore(core, vaddr, paddr, size)
	}
}

// yield removes the current thread from its core, saving mechanism state.
// afterParked runs once the thread is fully off-core (quiescent).
func (k *Kernel) yield(cs *coreState, t *Thread, afterParked func()) {
	start := k.Eng.Now()
	cs.core.DrainStores(func() {
		t.mech.OnScheduleOut(cs.core, func() {
			t.Proc.heapScheduleOut(cs.core, func() {
				k.Counters.Add("kernel.ctxswitch_out_cycles", uint64(k.Eng.Now()-start))
				cs.cur = nil
				afterParked()
				k.scheduleNext(cs)
			})
		})
	})
}

// Procs returns the kernel's processes.
func (k *Kernel) Procs() []*Process { return k.procs }

// FindProc returns the process with the given name, or nil.
func (k *Kernel) FindProc(name string) *Process {
	for _, p := range k.procs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// RunFor advances simulation by d cycles.
func (k *Kernel) RunFor(d sim.Time) { k.Eng.RunUntil(k.Eng.Now() + d) }

// RunUntilDone runs until every process's threads have finished or the
// deadline passes; it reports whether everything completed.
func (k *Kernel) RunUntilDone(deadline sim.Time) bool {
	for k.Eng.Now() < deadline {
		if k.allDone() {
			return true
		}
		k.Eng.RunUntil(k.Eng.Now() + sim.Millisecond)
	}
	return k.allDone()
}

func (k *Kernel) allDone() bool {
	for _, p := range k.procs {
		for _, t := range p.Threads {
			if t.state != threadDone {
				return false
			}
		}
	}
	return true
}

// --- NVM superblock --------------------------------------------------------

// The first NVM page is the kernel's recovery superblock: a directory of
// process checkpoint areas so a post-crash boot can find them.
const (
	superMagic  = uint64(0x50524f53504552) // "PROSPER"
	superBase   = mem.NVMBase
	maxProcRecs = 32
)

type superblock struct {
	storage *mem.Storage
	// persist promotes superblock words across the NVM persistence
	// domain (the kernel fences its tiny directory updates
	// synchronously); nil means no domain (read-only uses like Fsck).
	persist func(addr, size uint64)
	// nvmCursor is the bump pointer for NVM area allocation, persisted in
	// the superblock so reboots do not re-hand-out used regions.
}

func (s *superblock) fence(addr, size uint64) {
	if s.persist != nil {
		s.persist(addr, size)
	}
}

func loadOrInitSuperblock(st *mem.Storage, persist func(addr, size uint64)) *superblock {
	s := &superblock{storage: st, persist: persist}
	if st.ReadU64(superBase) != superMagic {
		st.WriteU64(superBase, superMagic)
		st.WriteU64(superBase+8, 0)                       // proc count
		st.WriteU64(superBase+16, superBase+mem.PageSize) // NVM bump cursor
		s.fence(superBase, 24)
	}
	return s
}

func (s *superblock) procCount() int { return int(s.storage.ReadU64(superBase + 8)) }

// procRecord is the fixed-size per-process directory entry.
const procRecSize = 128

func (s *superblock) recAddr(i int) uint64 {
	return superBase + 64 + uint64(i)*procRecSize
}

// allocNVM reserves a byte range of the checkpoint half of NVM
// (page-aligned) via the persisted bump cursor. The upper half belongs to
// the machine's NVM frame pool (shadow pages, NVM-placed segments).
func (s *superblock) allocNVM(bytes uint64) uint64 {
	bytes = (bytes + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
	cur := s.storage.ReadU64(superBase + 16)
	if cur+bytes > mem.NVMBase+mem.NVMSize/2 {
		panic("kernel: out of NVM checkpoint space")
	}
	s.storage.WriteU64(superBase+16, cur+bytes)
	s.fence(superBase+16, 8)
	return cur
}

func (s *superblock) addProc(name string, headerAddr uint64) int {
	n := s.procCount()
	if n >= maxProcRecs {
		panic("kernel: superblock full")
	}
	rec := s.recAddr(n)
	var nameBuf [48]byte
	copy(nameBuf[:], name)
	s.storage.Write(rec, nameBuf[:])
	s.storage.WriteU64(rec+48, headerAddr)
	s.fence(rec, 56)
	s.storage.WriteU64(superBase+8, uint64(n+1))
	s.fence(superBase+8, 8)
	return n
}

func (s *superblock) findProc(name string) (headerAddr uint64, ok bool) {
	var nameBuf [48]byte
	for i := 0; i < s.procCount(); i++ {
		rec := s.recAddr(i)
		s.storage.Read(rec, nameBuf[:])
		if cstr(nameBuf[:]) == name {
			return s.storage.ReadU64(rec + 48), true
		}
	}
	return 0, false
}

func cstr(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// sanity check helpers used across the package.
func mustU64(buf []byte, off int) uint64 { return binary.LittleEndian.Uint64(buf[off:]) }

func putU64(buf []byte, off int, v uint64) { binary.LittleEndian.PutUint64(buf[off:], v) }

func check(err error) {
	if err != nil {
		panic(fmt.Sprintf("kernel: %v", err))
	}
}

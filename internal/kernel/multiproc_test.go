package kernel

import (
	"testing"

	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

func TestTwoProcessesIsolatedAddressSpaces(t *testing.T) {
	k := New(Config{Machine: machine.Config{Cores: 2}, Quantum: 100 * sim.Microsecond})
	pa := k.Spawn(ProcessConfig{Name: "a", Seed: 1}, workload.NewCounter(5000))
	pb := k.Spawn(ProcessConfig{Name: "b", Seed: 2}, workload.NewCounter(5000))
	if !k.RunUntilDone(sim.Second) {
		t.Fatal("processes never finished")
	}
	// Same virtual heap base, different physical frames.
	fa, _, okA := pa.AS.PT.Translate(heapBase)
	fb, _, okB := pb.AS.PT.Translate(heapBase)
	if !okA || !okB {
		t.Fatal("heaps not mapped")
	}
	if fa == fb {
		t.Fatal("processes share a physical heap frame")
	}
}

func TestTwoProcessesCheckpointIndependently(t *testing.T) {
	k := New(Config{Machine: machine.Config{Cores: 2}, Quantum: 100 * sim.Microsecond})
	mk := func(name string, interval sim.Time) *Process {
		return k.Spawn(ProcessConfig{
			Name:               name,
			StackMech:          persist.NewProsper(persist.ProsperConfig{}),
			CheckpointInterval: interval,
		}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}))
	}
	fast := mk("fast", 100*sim.Microsecond)
	slow := mk("slow", 400*sim.Microsecond)
	k.RunFor(900 * sim.Microsecond)
	if fast.CheckpointCount <= slow.CheckpointCount {
		t.Fatalf("fast %d vs slow %d checkpoints", fast.CheckpointCount, slow.CheckpointCount)
	}
	if slow.CheckpointCount == 0 {
		t.Fatal("slow process never checkpointed")
	}
	fast.Shutdown()
	slow.Shutdown()
}

func TestTwoProcessesShareOneCore(t *testing.T) {
	// Both processes on a single core: address-space switches must be
	// correct (TLB flushes via SwitchContext) and both must progress.
	k := New(Config{Machine: machine.Config{Cores: 1}, Quantum: 50 * sim.Microsecond})
	pa := k.Spawn(ProcessConfig{Name: "a", Seed: 1}, workload.NewCounter(100_000))
	pb := k.Spawn(ProcessConfig{Name: "b", Seed: 2}, workload.NewCounter(100_000))
	k.RunFor(600 * sim.Microsecond)
	oa, ob := pa.Threads[0].UserOps, pb.Threads[0].UserOps
	if oa == 0 || ob == 0 {
		t.Fatalf("starvation across processes: %d / %d", oa, ob)
	}
	if k.Mach.Cores[0].Counters.Get("core.context_switches") == 0 {
		t.Fatal("no address-space switches recorded")
	}
}

func TestCrashRecoveryWithTwoProcesses(t *testing.T) {
	cfgA := ProcessConfig{
		Name: "svc-a", StackMech: persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 200 * sim.Microsecond, Seed: 1,
	}
	cfgB := ProcessConfig{
		Name: "svc-b", StackMech: persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 200 * sim.Microsecond, Seed: 2,
	}
	k1 := New(Config{Machine: machine.Config{Cores: 2}})
	a1, b1 := workload.NewCounter(10_000_000), workload.NewCounter(10_000_000)
	k1.Spawn(cfgA, a1)
	k1.Spawn(cfgB, b1)
	k1.RunFor(1 * sim.Millisecond)
	k1.Mach.Crash()

	k2 := New(Config{Machine: machine.Config{Cores: 2, Storage: k1.Mach.Storage}})
	a2, b2 := workload.NewCounter(10_000_000), workload.NewCounter(10_000_000)
	var recA, recB *Process
	if err := k2.RecoverProcess(cfgA, []workload.Program{a2}, func(p *Process) { recA = p }); err != nil {
		t.Fatal(err)
	}
	if err := k2.RecoverProcess(cfgB, []workload.Program{b2}, func(p *Process) { recB = p }); err != nil {
		t.Fatal(err)
	}
	k2.Eng.RunWhile(func() bool { return recA == nil || recB == nil })
	if a2.Progress() == 0 || b2.Progress() == 0 {
		t.Fatalf("recovery positions: a=%d b=%d", a2.Progress(), b2.Progress())
	}
	if a2.Progress() > a1.Progress() || b2.Progress() > b1.Progress() {
		t.Fatal("recovered beyond crash point")
	}
	recA.Shutdown()
	recB.Shutdown()
}

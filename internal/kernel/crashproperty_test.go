package kernel

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"prosper/internal/machine"
	"prosper/internal/mem"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// readStack captures the functional contents of a thread's whole stack
// reserve (unmapped pages read as zero).
func readStack(k *Kernel, p *Process, tid int) []byte {
	seg := p.Threads[tid].StackSeg
	buf := make([]byte, seg.Size())
	for va := seg.Lo; va < seg.Hi; va += mem.PageSize {
		if paddr, _, ok := p.AS.PT.Translate(va); ok {
			k.Mach.Storage.Read(paddr, buf[va-seg.Lo:va-seg.Lo+mem.PageSize])
		}
	}
	return buf
}

// The whole-system crash-consistency property: for arbitrary run lengths
// and crash points, the recovered stack equals the stack contents at the
// last *committed* checkpoint — never a torn or stale mix. This is the
// end-to-end version of the per-mechanism property in internal/persist.
func TestCrashConsistencyProperty(t *testing.T) {
	cfg := ProcessConfig{
		Name:      "prop",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
		Seed:      1,
	}
	f := func(phaseSeeds []uint8) bool {
		if len(phaseSeeds) == 0 {
			return true
		}
		if len(phaseSeeds) > 5 {
			phaseSeeds = phaseSeeds[:5]
		}
		k := New(Config{Machine: machine.Config{Cores: 1}})
		prog := workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 64})
		p := k.Spawn(cfg, prog)

		var lastCommit []byte
		for _, s := range phaseSeeds {
			// Run a variable slice, then checkpoint and snapshot.
			k.RunFor(sim.Time(20+int(s)%80) * sim.Microsecond)
			done := false
			p.Checkpoint(func() { done = true })
			k.Eng.RunWhile(func() bool { return !done })
			lastCommit = readStack(k, p, 0)
		}
		// Run past the last commit (dirtying more stack), then crash.
		k.RunFor(sim.Time(10+int(phaseSeeds[0])%50) * sim.Microsecond)
		p.Shutdown()
		k.Mach.Crash()

		k2 := New(Config{Machine: machine.Config{Cores: 1, Storage: k.Mach.Storage}})
		var rec *Process
		err := k2.RecoverProcess(cfg, []workload.Program{
			workload.NewRandom(workload.MicroParams{ArrayBytes: 16 << 10, WritesPerRun: 64}),
		}, func(pr *Process) { rec = pr })
		if err != nil {
			return false
		}
		k2.Eng.RunWhile(func() bool { return rec == nil })
		got := readStack(k2, rec, 0)
		rec.Shutdown()
		return bytes.Equal(got, lastCommit)
	}
	// Pin the generator so a failure reproduces exactly; the seed is
	// logged so a future fuzzier variant can report what it ran with.
	const quickSeed = 1
	t.Logf("testing/quick PRNG seed: %d", quickSeed)
	qc := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(quickSeed))}
	if err := quick.Check(f, qc); err != nil {
		t.Fatal(err)
	}
}

// Crash DURING a checkpoint: whatever the crash point, recovery must land
// on a consistent state — either the previous checkpoint or the new one,
// never a mix. We steer the crash into the commit window by stopping the
// simulation a bounded number of events after the checkpoint starts.
func TestCrashMidCheckpointIsAtomic(t *testing.T) {
	for _, eventsIntoCkpt := range []uint64{1, 10, 100, 1000, 5000} {
		cfg := ProcessConfig{
			Name:      "mid",
			StackMech: persist.NewProsper(persist.ProsperConfig{}),
			Seed:      3,
		}
		k := New(Config{Machine: machine.Config{Cores: 1}})
		prog := workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64})
		p := k.Spawn(cfg, prog)

		// First checkpoint: a known-committed baseline.
		k.RunFor(100 * sim.Microsecond)
		done := false
		p.Checkpoint(func() { done = true })
		k.Eng.RunWhile(func() bool { return !done })
		baseline := readStack(k, p, 0)

		// More dirt, then start a second checkpoint and crash mid-flight.
		k.RunFor(60 * sim.Microsecond)
		second := false
		p.Checkpoint(func() { second = true })
		startEvents := k.Eng.Fired()
		k.Eng.RunWhile(func() bool { return !second && k.Eng.Fired() < startEvents+eventsIntoCkpt })
		committed := second
		var atCommit []byte
		if committed {
			atCommit = readStack(k, p, 0)
		}
		p.Shutdown()
		k.Mach.Crash()

		k2 := New(Config{Machine: machine.Config{Cores: 1, Storage: k.Mach.Storage}})
		var rec *Process
		err := k2.RecoverProcess(cfg, []workload.Program{
			workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}),
		}, func(pr *Process) { rec = pr })
		if err != nil {
			t.Fatal(err)
		}
		k2.Eng.RunWhile(func() bool { return rec == nil })
		got := readStack(k2, rec, 0)
		rec.Shutdown()

		if committed {
			if !bytes.Equal(got, atCommit) {
				t.Fatalf("events=%d: committed checkpoint not recovered", eventsIntoCkpt)
			}
			continue
		}
		if !bytes.Equal(got, baseline) {
			t.Fatalf("events=%d: uncommitted checkpoint leaked into recovery", eventsIntoCkpt)
		}
	}
}

package kernel

import (
	"testing"

	"prosper/internal/machine"
	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

// measureCheckpoint runs a 4-thread process, dirties all stacks, and
// returns the duration of one full process checkpoint.
func measureCheckpoint(t *testing.T, parallel bool) sim.Time {
	t.Helper()
	k := New(Config{
		Machine:                 machine.Config{Cores: 4},
		Quantum:                 200 * sim.Microsecond,
		ParallelStackCheckpoint: parallel,
	})
	progs := make([]workload.Program, 4)
	for i := range progs {
		progs[i] = workload.NewStream(workload.MicroParams{ArrayBytes: 32 << 10})
	}
	p := k.Spawn(ProcessConfig{
		Name:      "par",
		StackMech: persist.NewProsper(persist.ProsperConfig{}),
		Seed:      9,
	}, progs...)
	k.RunFor(150 * sim.Microsecond)
	start := k.Eng.Now()
	done := false
	p.Checkpoint(func() { done = true })
	k.Eng.RunWhile(func() bool { return !done })
	elapsed := k.Eng.Now() - start
	if p.CheckpointBytes == 0 {
		t.Fatal("checkpoint copied nothing")
	}
	p.Shutdown()
	return elapsed
}

func TestParallelStackCheckpointIsFaster(t *testing.T) {
	serial := measureCheckpoint(t, false)
	parallel := measureCheckpoint(t, true)
	if parallel >= serial {
		t.Fatalf("parallel checkpoint (%d cy) not faster than serial (%d cy)", parallel, serial)
	}
}

func TestParallelStackCheckpointSameBytes(t *testing.T) {
	// Both modes must persist identical data volumes for the same
	// deterministic workload slice.
	bytesFor := func(parallel bool) uint64 {
		k := New(Config{
			Machine:                 machine.Config{Cores: 4},
			Quantum:                 200 * sim.Microsecond,
			ParallelStackCheckpoint: parallel,
		})
		progs := make([]workload.Program, 4)
		for i := range progs {
			progs[i] = workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64})
		}
		p := k.Spawn(ProcessConfig{
			Name:      "bytes",
			StackMech: persist.NewProsper(persist.ProsperConfig{}),
			Seed:      11,
		}, progs...)
		k.RunFor(100 * sim.Microsecond)
		done := false
		p.Checkpoint(func() { done = true })
		k.Eng.RunWhile(func() bool { return !done })
		defer p.Shutdown()
		return p.CheckpointBytes
	}
	serialBytes := bytesFor(false)
	parallelBytes := bytesFor(true)
	// Timing differs slightly between modes, so thread progress (and
	// therefore dirty footprints) can differ marginally — but only
	// marginally, since the measured slice before the checkpoint is the
	// same wall duration.
	lo, hi := serialBytes*9/10, serialBytes*11/10
	if parallelBytes < lo || parallelBytes > hi {
		t.Fatalf("parallel bytes %d far from serial %d", parallelBytes, serialBytes)
	}
}

func TestParallelCheckpointRecoverable(t *testing.T) {
	cfg := ProcessConfig{
		Name:               "par-rec",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 200 * sim.Microsecond,
		Seed:               4,
	}
	k := New(Config{Machine: machine.Config{Cores: 2}, ParallelStackCheckpoint: true})
	progs := []workload.Program{workload.NewCounter(10_000_000), workload.NewCounter(10_000_000)}
	p := k.Spawn(cfg, progs...)
	k.RunFor(900 * sim.Microsecond)
	if p.CheckpointCount == 0 {
		t.Fatal("no checkpoints")
	}
	k.Mach.Crash()
	k2 := New(Config{Machine: machine.Config{Cores: 2, Storage: k.Mach.Storage}})
	var rec *Process
	err := k2.RecoverProcess(cfg, []workload.Program{
		workload.NewCounter(10_000_000), workload.NewCounter(10_000_000),
	}, func(pr *Process) { rec = pr })
	if err != nil {
		t.Fatal(err)
	}
	k2.Eng.RunWhile(func() bool { return rec == nil })
	for i, th := range rec.Threads {
		if th.Prog.(*workload.CounterProgram).Progress() == 0 {
			t.Fatalf("thread %d not restored", i)
		}
	}
	rec.Shutdown()
}

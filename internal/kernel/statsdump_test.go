package kernel

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/workload"
)

func TestDumpStatsContainsAllSections(t *testing.T) {
	k := testKernel(2)
	p := k.Spawn(ProcessConfig{
		Name:               "dumpme",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 200 * sim.Microsecond,
	}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 64}))
	k.RunFor(700 * sim.Microsecond)
	p.Shutdown()

	var buf bytes.Buffer
	k.DumpStats(&buf)
	out := buf.String()
	for _, want := range []string{
		"kernel.kernel.context_switches",
		"core0.core.stores",
		"l1d0.l1d.hits",
		"l3.l3.",
		"dram.dram.reads",
		"nvm.nvm.writes",
		"tracker0.prosper.sois",
		"proc.dumpme.checkpoints",
		"proc.dumpme.thread0.user_ops",
		"sim.cycles",
		"sim.events",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out[:min(len(out), 800)])
		}
	}
}

func TestDumpStatsParseable(t *testing.T) {
	k := testKernel(1)
	k.Spawn(ProcessConfig{Name: "p"}, workload.NewCounter(500))
	k.RunUntilDone(sim.Second)
	var buf bytes.Buffer
	k.DumpStats(&buf)
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			t.Fatalf("unparseable line: %q", sc.Text())
		}
	}
	if lines < 25 {
		t.Fatalf("dump suspiciously small: %d lines", lines)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

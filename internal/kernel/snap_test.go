package kernel

import (
	"strings"
	"testing"

	"prosper/internal/persist"
	"prosper/internal/sim"
	"prosper/internal/snapbuf"
	"prosper/internal/workload"
)

// snapBoot builds the fixed two-process kernel the kernel-level snapshot
// tests use: one checkpointing process under prosper and one plain
// counter that finishes before the first commit (so its ticker-less,
// mechanism-less encoding is exercised too). run captures the kernel
// payload at the first commit hook.
func snapBoot() (*Kernel, *Process) {
	k := testKernel(1)
	p := k.Spawn(ProcessConfig{
		Name:               "app",
		StackMech:          persist.NewProsper(persist.ProsperConfig{}),
		CheckpointInterval: 500 * sim.Microsecond,
		StackReserve:       16 << 10,
		HeapSize:           64 << 10,
	}, workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 32}))
	k.Spawn(ProcessConfig{Name: "bg", StackReserve: 16 << 10, HeapSize: 64 << 10},
		workload.NewCounter(50))
	return k, p
}

func captureKernelSnap(t *testing.T) (*Kernel, []byte) {
	t.Helper()
	k, p := snapBoot()
	var saved []byte
	p.CommitHook = func(proc *Process) {
		if saved != nil {
			return
		}
		if hp, sync := k.SnapshotPoint(); hp != proc || sync {
			t.Errorf("SnapshotPoint inside hook = (%v, %v)", hp, sync)
		}
		w := snapbuf.NewWriter()
		var claims sim.EventClaims
		if err := k.SaveSnap(w, &claims); err != nil {
			t.Fatalf("SaveSnap at commit hook: %v", err)
		}
		saved = w.Bytes()
	}
	k.RunFor(2 * sim.Millisecond)
	if saved == nil {
		t.Fatal("no commit hook fired")
	}
	return k, saved
}

func TestKernelSnapRoundTripAndTruncation(t *testing.T) {
	_, data := captureKernelSnap(t)

	fresh, _ := snapBoot()
	if err := fresh.LoadSnap(snapbuf.NewReader(data), nil); err != nil {
		t.Fatalf("full payload LoadSnap: %v", err)
	}
	if hp, _ := fresh.SnapshotPoint(); hp == nil {
		t.Fatal("LoadSnap did not re-enter the commit hook")
	}
	// Every truncation length must be rejected, but booting a kernel per
	// prefix is expensive: sweep the structured head densely and sample
	// the long page-table/mechanism tail (sparser still under -short,
	// where the race detector multiplies every boot).
	dense, stride := 384, 37
	if testing.Short() {
		dense, stride = 96, 211
	}
	lengths := make([]int, 0, 640)
	for n := 0; n < len(data) && n < dense; n++ {
		lengths = append(lengths, n)
	}
	for n := dense; n < len(data); n += stride {
		lengths = append(lengths, n)
	}
	for _, n := range lengths {
		victim, _ := snapBoot()
		if err := victim.LoadSnap(snapbuf.NewReader(data[:n]), nil); err == nil {
			t.Fatalf("LoadSnap accepted a %d/%d-byte prefix", n, len(data))
		}
	}
}

func TestKernelSnapRejectsMismatchedBoot(t *testing.T) {
	_, data := captureKernelSnap(t)
	load := func(k *Kernel) error { return k.LoadSnap(snapbuf.NewReader(data), nil) }

	t.Run("core count", func(t *testing.T) {
		k := testKernel(2)
		if err := load(k); err == nil || !strings.Contains(err.Error(), "cores in snapshot") {
			t.Fatalf("err = %v, want core-count rejection", err)
		}
	})
	t.Run("process count", func(t *testing.T) {
		k := testKernel(1)
		if err := load(k); err == nil || !strings.Contains(err.Error(), "processes in snapshot") {
			t.Fatalf("err = %v, want process-count rejection", err)
		}
	})
	t.Run("process identity", func(t *testing.T) {
		k := testKernel(1)
		k.Spawn(ProcessConfig{Name: "other", StackMech: persist.NewProsper(persist.ProsperConfig{}),
			CheckpointInterval: 500 * sim.Microsecond, StackReserve: 16 << 10, HeapSize: 64 << 10},
			workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 32}))
		k.Spawn(ProcessConfig{Name: "bg", StackReserve: 16 << 10, HeapSize: 64 << 10},
			workload.NewCounter(50))
		if err := load(k); err == nil || !strings.Contains(err.Error(), "process mismatch") {
			t.Fatalf("err = %v, want process-identity rejection", err)
		}
	})
	t.Run("thread count", func(t *testing.T) {
		// A second thread adds a stack VMA, so the address space refuses
		// before the kernel's own thread-count check is reached.
		k := testKernel(1)
		k.Spawn(ProcessConfig{Name: "app", StackMech: persist.NewProsper(persist.ProsperConfig{}),
			CheckpointInterval: 500 * sim.Microsecond, StackReserve: 16 << 10, HeapSize: 64 << 10},
			workload.NewRandom(workload.MicroParams{ArrayBytes: 8 << 10, WritesPerRun: 32}),
			workload.NewCounter(10))
		k.Spawn(ProcessConfig{Name: "bg", StackReserve: 16 << 10, HeapSize: 64 << 10},
			workload.NewCounter(50))
		if err := load(k); err == nil || !strings.Contains(err.Error(), "VMA count mismatch") {
			t.Fatalf("err = %v, want shape rejection", err)
		}
	})
	t.Run("stale ticker", func(t *testing.T) {
		// Loading into a kernel whose clock has advanced past the saved
		// ticker fire times must refuse: a resumed event may never land in
		// the engine's past.
		k, _ := snapBoot()
		k.RunFor(10 * sim.Millisecond)
		if err := load(k); err == nil || !strings.Contains(err.Error(), "in the past") {
			t.Fatalf("err = %v, want past-event rejection", err)
		}
	})
}

func TestKernelSnapRequiresQuiescence(t *testing.T) {
	k, p := snapBoot()
	k.RunFor(200 * sim.Microsecond)

	// Outside any commit hook.
	if hp, _ := k.SnapshotPoint(); hp != nil {
		t.Fatal("SnapshotPoint non-nil outside a commit hook")
	}
	w := snapbuf.NewWriter()
	var claims sim.EventClaims
	if err := k.SaveSnap(w, &claims); err == nil ||
		!strings.Contains(err.Error(), "commit hooks only") {
		t.Fatalf("err = %v, want outside-hook rejection", err)
	}

	// Inside the hook of a synchronous checkpoint: its host-side done
	// closure cannot cross a snapshot.
	var hookErr error
	hooked := false
	p.CommitHook = func(*Process) {
		hooked = true
		w := snapbuf.NewWriter()
		var claims sim.EventClaims
		hookErr = k.SaveSnap(w, &claims)
	}
	done := false
	p.Checkpoint(func() { done = true })
	k.Eng.RunWhile(func() bool { return !done })
	if !hooked {
		t.Fatal("synchronous checkpoint never reached its commit hook")
	}
	if hookErr == nil || !strings.Contains(hookErr.Error(), "synchronous checkpoint") {
		t.Fatalf("err = %v, want synchronous-checkpoint rejection", hookErr)
	}
}

func TestFinishResumeWithoutHook(t *testing.T) {
	k := testKernel(1)
	if err := k.FinishResume(); err == nil {
		t.Fatal("FinishResume succeeded with no resumed commit hook")
	}
}

func TestFindThread(t *testing.T) {
	k, p := snapBoot()
	if got := k.findThread(p.PID, 0); got != p.Threads[0] {
		t.Fatalf("findThread(%d, 0) = %v", p.PID, got)
	}
	if got := k.findThread(p.PID, 99); got != nil {
		t.Fatalf("findThread unknown tid = %v", got)
	}
	if got := k.findThread(999, 0); got != nil {
		t.Fatalf("findThread unknown pid = %v", got)
	}
}

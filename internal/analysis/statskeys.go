package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"go/ast"
)

// StatsKeys enforces metric-name hygiene at every counter/histogram
// registration site:
//
//  1. Constant keys must be lowercase dotted identifiers
//     (segment[.segment...], segments matching [a-z][a-z0-9_]*), the
//     convention DumpStats and the telemetry registry sort and render.
//  2. An *unprefixed* key (no dot) must not be registered from more
//     than one package. Unprefixed keys from different owners collide
//     when adopted under an empty registry prefix — exactly how the
//     per-core TLB counters ("tlb_hits") once aliased each other until
//     they were renamed to "coreN.tlb.hits".
//
// Dynamically-built names (fmt.Sprintf) are out of scope: the pass
// checks what it can prove, the convention covers the rest.
type StatsKeys struct {
	// sites: unprefixed key -> registering package -> positions.
	sites map[string]map[string][]token.Pos
}

// NewStatsKeys returns the pass.
func NewStatsKeys() *StatsKeys {
	return &StatsKeys{sites: make(map[string]map[string][]token.Pos)}
}

// Name implements Pass.
func (*StatsKeys) Name() string { return "statskeys" }

// Doc implements Pass.
func (*StatsKeys) Doc() string {
	return "metric keys must be lowercase dotted identifiers; unprefixed keys must have one owner"
}

// keyRe is the lowercase dotted identifier shape.
var keyRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// metricAPIs maps (defining package suffix, type name) to the methods
// whose first argument is a metric key, split by whether the call
// registers the key (creating it on first use) or merely reads it.
type metricAPI struct {
	pkgSuffix string
	typeName  string
	register  map[string]bool
	read      map[string]bool
	prefix    bool // first arg is a group prefix; empty string allowed
}

var metricAPIs = []metricAPI{
	{
		pkgSuffix: "internal/stats", typeName: "Counters",
		register: map[string]bool{"Handle": true, "Add": true, "Inc": true, "Set": true},
		read:     map[string]bool{"Get": true},
	},
	{
		pkgSuffix: "internal/stats", typeName: "Histograms",
		register: map[string]bool{"New": true},
		read:     map[string]bool{"Get": true},
	},
	{
		pkgSuffix: "internal/telemetry", typeName: "Registry",
		register: map[string]bool{},
		read:     map[string]bool{},
		prefix:   true, // Register / RegisterHistograms / RegisterFunc
	},
}

// registryPrefixMethods take a prefix as their first argument.
var registryPrefixMethods = map[string]bool{
	"Register": true, "RegisterHistograms": true, "RegisterFunc": true,
}

// Run implements Pass.
func (s *StatsKeys) Run(pkg *Package, r *Reporter) {
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvPkg, recvType := namedRecv(info, sel)
			if recvPkg == "" {
				return true
			}
			for _, api := range metricAPIs {
				if !pkgPathSuffix(recvPkg, api.pkgSuffix) || recvType != api.typeName {
					continue
				}
				method := sel.Sel.Name
				if api.prefix {
					if !registryPrefixMethods[method] {
						return true
					}
					if prefix, isConst := constString(info, call.Args[0]); isConst {
						if prefix != "" && !keyRe.MatchString(prefix) {
							r.Report("statskeys", call.Args[0].Pos(), fmt.Sprintf(
								"registry prefix %q is not a lowercase dotted identifier", prefix))
						}
					}
					return true
				}
				isReg := api.register[method]
				if !isReg && !api.read[method] {
					return true
				}
				key, isConst := constString(info, call.Args[0])
				if !isConst {
					return true
				}
				if !keyRe.MatchString(key) {
					r.Report("statskeys", call.Args[0].Pos(), fmt.Sprintf(
						"metric key %q is not a lowercase dotted identifier (want e.g. \"owner.metric_name\")", key))
					return true
				}
				if isReg && !strings.Contains(key, ".") {
					byPkg := s.sites[key]
					if byPkg == nil {
						byPkg = make(map[string][]token.Pos)
						s.sites[key] = byPkg
					}
					byPkg[pkg.Path] = append(byPkg[pkg.Path], call.Args[0].Pos())
				}
				return true
			}
			return true
		})
	}
}

// Finish implements Finisher: cross-package duplicate detection for
// unprefixed keys.
func (s *StatsKeys) Finish(r *Reporter) {
	keys := make([]string, 0, len(s.sites))
	for k := range s.sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		byPkg := s.sites[key]
		if len(byPkg) < 2 {
			continue
		}
		pkgs := make([]string, 0, len(byPkg))
		for p := range byPkg {
			pkgs = append(pkgs, p)
		}
		sort.Strings(pkgs)
		for _, p := range pkgs {
			for _, pos := range byPkg[p] {
				r.Report("statskeys", pos, fmt.Sprintf(
					"unprefixed metric key %q is registered by %d packages (%s): qualify it per owner (e.g. \"owner.%s\")",
					key, len(pkgs), strings.Join(pkgs, ", "), key))
			}
		}
	}
}

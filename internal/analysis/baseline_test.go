package analysis

import (
	"strings"
	"testing"
)

func TestReadBaselineMalformed(t *testing.T) {
	if _, err := ReadBaseline(strings.NewReader("not json")); err == nil {
		t.Error("ReadBaseline accepted malformed input")
	}
}

func TestDiffBaseline(t *testing.T) {
	mk := func(pass, file string, line int, msg string) Finding {
		return Finding{Pass: pass, File: file, Line: line, Message: msg}
	}
	tests := []struct {
		name     string
		current  []Finding
		baseline []Finding
		fresh    int
	}{
		{
			name:    "empty baseline passes everything through",
			current: []Finding{mk("hotalloc", "a.go", 10, "append may grow")},
			fresh:   1,
		},
		{
			name:     "exact match absorbed",
			current:  []Finding{mk("hotalloc", "a.go", 10, "append may grow")},
			baseline: []Finding{mk("hotalloc", "a.go", 10, "append may grow")},
			fresh:    0,
		},
		{
			name:     "line drift still matches",
			current:  []Finding{mk("hotalloc", "a.go", 42, "append may grow")},
			baseline: []Finding{mk("hotalloc", "a.go", 10, "append may grow")},
			fresh:    0,
		},
		{
			name:     "different message is fresh",
			current:  []Finding{mk("hotalloc", "a.go", 10, "make allocates")},
			baseline: []Finding{mk("hotalloc", "a.go", 10, "append may grow")},
			fresh:    1,
		},
		{
			name:     "different file is fresh",
			current:  []Finding{mk("hotalloc", "b.go", 10, "append may grow")},
			baseline: []Finding{mk("hotalloc", "a.go", 10, "append may grow")},
			fresh:    1,
		},
		{
			name:     "different pass is fresh",
			current:  []Finding{mk("ownership", "a.go", 10, "append may grow")},
			baseline: []Finding{mk("hotalloc", "a.go", 10, "append may grow")},
			fresh:    1,
		},
		{
			name: "multiset: one baseline entry absorbs one duplicate only",
			current: []Finding{
				mk("hotalloc", "a.go", 10, "append may grow"),
				mk("hotalloc", "a.go", 20, "append may grow"),
			},
			baseline: []Finding{mk("hotalloc", "a.go", 10, "append may grow")},
			fresh:    1,
		},
		{
			name:    "fixed findings in the baseline are ignored",
			current: nil,
			baseline: []Finding{
				mk("hotalloc", "a.go", 10, "append may grow"),
				mk("ownership", "b.go", 5, "cross write"),
			},
			fresh: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fresh := DiffBaseline(
				&Report{Findings: tt.current},
				&Report{Findings: tt.baseline},
			)
			if len(fresh) != tt.fresh {
				t.Errorf("got %d fresh findings, want %d: %+v", len(fresh), tt.fresh, fresh)
			}
		})
	}
}

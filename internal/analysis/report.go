package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// rel makes file paths portable: relative to base, forward slashes.
// Paths outside base (shouldn't happen) stay absolute.
func rel(base, file string) string {
	if base == "" {
		return file
	}
	r, err := filepath.Rel(base, file)
	if err != nil || len(r) >= 2 && r[:2] == ".." {
		return file
	}
	return filepath.ToSlash(r)
}

// Relativized returns a copy of the report with every finding's File
// rewritten relative to base. Used by both renderers so text, JSON, and
// golden fixtures agree on paths.
func (rep *Report) Relativized(base string) *Report {
	out := *rep
	out.Findings = make([]Finding, len(rep.Findings))
	for i, f := range rep.Findings {
		f.File = rel(base, f.File)
		out.Findings[i] = f
	}
	return &out
}

// WriteText renders one "file:line:col: [pass] message" line per
// finding plus a trailing summary.
func (rep *Report) WriteText(w io.Writer, base string) {
	r := rep.Relativized(base)
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Pass, f.Message)
	}
	fmt.Fprintf(w, "prosper-lint: %d finding(s) in %d package(s), %d suppressed\n",
		len(r.Findings), r.Packages, r.Suppressed)
}

// WriteJSON renders the report as indented JSON. encoding/json with
// pre-sorted findings keeps the bytes deterministic, which lets CI
// archive the output and tests pin goldens.
func (rep *Report) WriteJSON(w io.Writer, base string) error {
	r := rep.Relativized(base)
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePass is the reserved pass name under which malformed
// suppression directives are reported.
const DirectivePass = "directive"

// directivePrefix introduces a suppression directive. Like go:build
// and friends, it must be a line comment with no space after "//".
const directivePrefix = "//prosperlint:"

// Directive is one parsed //prosperlint: comment. Two verbs exist:
//
//	//prosperlint:ignore <pass>[,<pass>...] <reason>
//	//prosperlint:hotpath <reason>
//
// Placement semantics are shared: a directive that shares its line with
// code targets that line; a directive alone on its line targets the
// line directly below it (blank lines do not extend the reach). An
// ignore directive suppresses findings on its target line; a hotpath
// directive declares the function whose `func` keyword sits on its
// target line as a hot-path root for the hotalloc pass (see callgraph.go).
type Directive struct {
	Verb   string   // "ignore" or "hotpath"
	Line   int      // line the comment sits on
	Col    int      // column of the comment
	Target int      // line it applies to
	Passes []string // ignore only: pass names it applies to
	Reason string   // mandatory justification
	Err    string   // non-empty for a malformed directive
}

// matchesPass reports whether the directive suppresses the named pass.
// Only ignore directives suppress anything.
func (d Directive) matchesPass(pass string) bool {
	if d.Verb != "ignore" {
		return false
	}
	for _, p := range d.Passes {
		if p == pass {
			return true
		}
	}
	return false
}

// ParseDirectives extracts every //prosperlint: directive from the
// file. src is the file's source, used to decide whether a directive is
// standalone (suppresses the next line) or trailing (suppresses its own
// line).
func ParseDirectives(fset *token.FileSet, f *ast.File, src []byte) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			d := Directive{Line: pos.Line, Col: pos.Column}
			d.Target = d.Line
			if standalone(src, pos.Offset) {
				d.Target = d.Line + 1
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			verb, args, _ := strings.Cut(rest, " ")
			d.Verb = verb
			args = strings.TrimSpace(args)
			if verb == "hotpath" {
				if args == "" {
					d.Err = "hotpath directive is missing a reason: say why this function is a hot-path root"
				} else {
					d.Reason = args
				}
				out = append(out, d)
				continue
			}
			if verb != "ignore" {
				d.Err = "unknown prosperlint directive //prosperlint:" + verb + " (only \"ignore\" and \"hotpath\" exist)"
				out = append(out, d)
				continue
			}
			passes, reason, _ := strings.Cut(args, " ")
			reason = strings.TrimSpace(reason)
			if passes == "" {
				d.Err = "ignore directive is missing a pass name: want //prosperlint:ignore <pass> <reason>"
				out = append(out, d)
				continue
			}
			for _, p := range strings.Split(passes, ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					d.Err = "ignore directive has an empty pass name in its pass list"
					break
				}
				d.Passes = append(d.Passes, p)
			}
			if d.Err == "" && reason == "" {
				d.Err = "ignore directive is missing a reason: every suppression must say why the finding is safe"
			}
			if d.Err == "" {
				d.Reason = reason
			}
			out = append(out, d)
		}
	}
	return out
}

// standalone reports whether the comment starting at offset is the
// first non-whitespace content on its line.
func standalone(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true // first line of the file
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Per-function summaries: the effect inventory the interprocedural
// passes consume. collectSummary walks one function body (closures
// included, attributed to the enclosing declaration) and records
//
//   - AllocSites: every statically-detectable heap allocation the gc
//     compiler cannot elide regardless of escape analysis mood —
//     capturing closures, interface boxing of non-pointer-shaped
//     values, append, map/slice/&struct literals, make/new, string
//     concatenation, and fmt.* calls;
//   - WriteSites: every write to a package-level variable or to a field
//     of a named struct type, attributed to the component domain that
//     owns the written state.
//
// The summaries are deterministic: sites are recorded in source order
// and carry token positions only.

// AllocKind classifies one allocation site.
type AllocKind uint8

const (
	AllocClosure AllocKind = iota
	AllocBox
	AllocAppend
	AllocLit
	AllocMake
	AllocConcat
	AllocFmt
)

var allocKindNames = [...]string{
	"closure", "box", "append", "lit", "make", "concat", "fmt",
}

// String returns the kind's stable name (used in finding messages).
func (k AllocKind) String() string { return allocKindNames[k] }

// AllocSite is one statically-detected allocation in a function body.
type AllocSite struct {
	Kind AllocKind
	Pos  token.Pos
	Desc string // human-readable site description
}

// WriteSite is one write to shared state: a package-level variable or a
// field of a named struct type.
type WriteSite struct {
	Pos    token.Pos
	Owner  string // component domain owning the written state
	State  string // "Type.Field" or "var Name"
	PkgVar bool   // true for package-level variable writes
}

// domainOf maps an import path to its component ownership domain: the
// path segment after the last "internal/" ("prosper/internal/cache" ->
// "cache"), or the last path segment otherwise. For the simulator's
// packages this coincides with the sim.Component names (machine being
// the documented multi-component package).
func domainOf(path string) string {
	if i := strings.LastIndex(path, "internal/"); i >= 0 {
		rest := path[i+len("internal/"):]
		if j := strings.Index(rest, "/"); j >= 0 {
			rest = rest[:j]
		}
		return rest
	}
	if j := strings.LastIndex(path, "/"); j >= 0 {
		return path[j+1:]
	}
	return path
}

// collectSummary fills n.Allocs and n.Writes from the function body.
func collectSummary(p *Program, n *FuncNode) {
	info := n.Pkg.Info
	body := n.Decl.Body

	addAlloc := func(kind AllocKind, pos token.Pos, format string, args ...any) {
		n.Allocs = append(n.Allocs, AllocSite{
			Kind: kind, Pos: pos, Desc: fmt.Sprintf(format, args...),
		})
	}

	// fmtCalls records calls already flagged as fmt.* so their boxed
	// arguments are not double-reported.
	fmtCalls := make(map[*ast.CallExpr]bool)

	recordWrite := func(pos token.Pos, lhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		// Writing through an index expression mutates the indexed
		// container; attribute the write to the container itself.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			lhs = ast.Unparen(ix.X)
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			v, ok := info.ObjectOf(l).(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return
			}
			n.Writes = append(n.Writes, WriteSite{
				Pos: pos, Owner: domainOf(v.Pkg().Path()),
				State: "var " + v.Name(), PkgVar: true,
			})
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal {
				field, _ := sel.Obj().(*types.Var)
				if field == nil || field.Pkg() == nil {
					return
				}
				// A field write through a value-typed local (op.Kind = ...
				// where op is a plain struct variable) mutates the local
				// copy, not shared state.
				if base, ok := ast.Unparen(l.X).(*ast.Ident); ok {
					if v, ok := info.ObjectOf(base).(*types.Var); ok && !v.IsField() &&
						v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
						if _, isPtr := v.Type().Underlying().(*types.Pointer); !isPtr {
							return
						}
					}
				}
				recv := sel.Recv()
				if ptr, ok := recv.(*types.Pointer); ok {
					recv = ptr.Elem()
				}
				typeName := "?"
				if named, ok := recv.(*types.Named); ok {
					typeName = named.Obj().Name()
				}
				n.Writes = append(n.Writes, WriteSite{
					Pos: pos, Owner: domainOf(field.Pkg().Path()),
					State: typeName + "." + field.Name(),
				})
				return
			}
			// Qualified package-level variable: otherpkg.Var = x.
			if v, ok := info.Uses[l.Sel].(*types.Var); ok &&
				v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				n.Writes = append(n.Writes, WriteSite{
					Pos: pos, Owner: domainOf(v.Pkg().Path()),
					State: "var " + v.Name(), PkgVar: true,
				})
			}
		}
	}

	walkWithStack(body, func(node ast.Node, stack []ast.Node) bool {
		switch e := node.(type) {
		case *ast.AssignStmt:
			if e.Tok != token.DEFINE {
				for _, lhs := range e.Lhs {
					recordWrite(lhs.Pos(), lhs)
				}
			}
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringExpr(info, e.Lhs[0]) {
				addAlloc(AllocConcat, e.Pos(), "string concatenation (+=) builds a new string")
			}
			// Plain assignment of a concrete value into an interface-typed
			// location boxes it.
			if e.Tok == token.ASSIGN && len(e.Lhs) == len(e.Rhs) {
				for i, lhs := range e.Lhs {
					lt := info.TypeOf(lhs)
					if lt != nil && isInterfaceType(lt) && boxes(info, e.Rhs[i]) {
						addAlloc(AllocBox, e.Rhs[i].Pos(), "assignment boxes into %s",
							types.TypeString(lt, shortQualifier))
					}
				}
			}
		case *ast.IncDecStmt:
			recordWrite(e.X.Pos(), e.X)
		case *ast.FuncLit:
			if capt := closureCaptures(info, e); len(capt) > 0 {
				addAlloc(AllocClosure, e.Pos(),
					"func literal captures %s: allocates a closure per evaluation", quoteList(capt))
			}
		case *ast.SelectorExpr:
			// A method value (x.M used as a value, not called) allocates
			// a closure binding the receiver — the reason the hot path
			// materializes method values once at construction time.
			if s, ok := info.Selections[e]; ok && s.Kind() == types.MethodVal &&
				!isCalleePosition(e, stack) {
				addAlloc(AllocClosure, e.Pos(),
					"method value %s allocates a closure per evaluation (bind it once at construction)", e.Sel.Name)
			}
		case *ast.BinaryExpr:
			// Report only the outermost + of an a+b+c chain: the compiler
			// concatenates the whole chain in one runtime call.
			if e.Op == token.ADD && isStringExpr(info, e) && !isConstExpr(info, e) {
				if len(stack) > 0 {
					if p, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok &&
						p.Op == token.ADD && isStringExpr(info, p) {
						return true
					}
				}
				addAlloc(AllocConcat, e.Pos(), "string concatenation builds a new string")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					addAlloc(AllocLit, e.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(e)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				addAlloc(AllocLit, e.Pos(), "map literal allocates")
			case *types.Slice:
				addAlloc(AllocLit, e.Pos(), "slice literal allocates a backing array")
			}
		case *ast.CallExpr:
			classifyCallAlloc(info, e, stack, fmtCalls, addAlloc)
		}
		return true
	})

	sort.SliceStable(n.Allocs, func(i, j int) bool { return n.Allocs[i].Pos < n.Allocs[j].Pos })
	sort.SliceStable(n.Writes, func(i, j int) bool { return n.Writes[i].Pos < n.Writes[j].Pos })
}

// classifyCallAlloc handles the call-shaped allocation sites: builtins
// (append/make/new), fmt.* calls, and interface boxing at argument
// positions.
func classifyCallAlloc(info *types.Info, call *ast.CallExpr, stack []ast.Node,
	fmtCalls map[*ast.CallExpr]bool, addAlloc func(AllocKind, token.Pos, string, ...any)) {

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
			switch fun.Name {
			case "append":
				addAlloc(AllocAppend, call.Pos(), "append may grow the backing array")
			case "new":
				addAlloc(AllocMake, call.Pos(), "new(T) allocates")
			case "make":
				addAlloc(AllocMake, call.Pos(), "make allocates")
			}
			return
		}
	case *ast.SelectorExpr:
		if importedPkgOf(info, fun.X) == "fmt" {
			fmtCalls[call] = true
			addAlloc(AllocFmt, call.Pos(),
				"fmt.%s allocates (formatting machinery and argument boxing)", fun.Sel.Name)
			return
		}
	}

	// Conversions to interface types box non-pointer-shaped values.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isInterfaceType(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			addAlloc(AllocBox, call.Pos(), "conversion to %s boxes its operand", types.TypeString(tv.Type, nil))
		}
		return
	}

	// Boxing at argument positions of ordinary calls: a concrete
	// non-pointer-shaped value passed where an interface is expected.
	// Arguments of fmt.* calls are covered by the fmt finding above.
	if enclosedByFmt(stack, fmtCalls) || fmtCalls[call] {
		return
	}
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var paramType types.Type
		if sig.Variadic() && i >= np-1 {
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element box
			}
			if sl, ok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice); ok {
				paramType = sl.Elem()
			}
		} else if i < np {
			paramType = sig.Params().At(i).Type()
		}
		if paramType == nil || !isInterfaceType(paramType) {
			continue
		}
		if boxes(info, arg) {
			addAlloc(AllocBox, arg.Pos(), "argument boxes into %s parameter",
				types.TypeString(paramType, shortQualifier))
		}
	}
}

// shortQualifier renders foreign package names bare ("any", "io.Writer"
// -> "Writer" would lose too much; keep package base names).
func shortQualifier(pkg *types.Package) string { return pkg.Name() }

// callSignature resolves the signature a call is invoked with, or nil
// for builtins and unresolvable callees.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// enclosedByFmt reports whether one of the node's ancestors is an
// already-flagged fmt call (its arguments are part of that finding).
func enclosedByFmt(stack []ast.Node, fmtCalls map[*ast.CallExpr]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if c, ok := stack[i].(*ast.CallExpr); ok && fmtCalls[c] {
			return true
		}
	}
	return false
}

// boxes reports whether passing expr into an interface slot allocates:
// the static type must be concrete and not pointer-shaped, and the
// value must not be a compile-time constant (the compiler interns
// those) or nil.
func boxes(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return false
	}
	t := tv.Type.Underlying()
	switch t.(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := t.(*types.Basic)
		if b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

// isCalleePosition reports whether expr is the callee of its nearest
// non-paren ancestor call.
func isCalleePosition(expr ast.Expr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return ast.Unparen(p.Fun) == expr
		default:
			return false
		}
	}
	return false
}

// isStringExpr reports whether expr has string type.
func isStringExpr(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether expr folds to a compile-time constant.
func isConstExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}

// closureCaptures returns the (sorted, deduped) names of variables a
// function literal captures from its enclosing function: objects used
// inside the literal but declared outside it, excluding package-level
// variables (no capture needed) and struct fields (reached through a
// captured base).
func closureCaptures(info *types.Info, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: addressed statically
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params included)
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}

// quoteList renders up to three names as a quoted, comma-separated
// list.
func quoteList(names []string) string {
	const max = 3
	quoted := make([]string, 0, max+1)
	for i, n := range names {
		if i == max {
			quoted = append(quoted, fmt.Sprintf("(+%d more)", len(names)-max))
			break
		}
		quoted = append(quoted, fmt.Sprintf("%q", n))
	}
	return strings.Join(quoted, ", ")
}

// OwnershipRow is one line of the component→state write map: a writing
// domain, the state it writes, how many sites do so, and whether the
// pair is same-domain, an allowed boundary, or a violation.
type OwnershipRow struct {
	Writer string
	State  string // "owner.Type.Field" or "owner.var Name"
	Sites  int
	Status string // "own", "boundary", or "cross"
}

// OwnershipMap aggregates every write site in sim-deterministic
// packages into the deterministic component→state write map rendered by
// WriteGraph and extended (via the boundary allowlist) by the future
// internal/sim/par engine.
func (p *Program) OwnershipMap() []OwnershipRow {
	type key struct{ writer, state, status string }
	counts := make(map[key]int)
	for _, n := range p.Nodes {
		if !isDeterministicPkg(n.Pkg.Path) {
			continue
		}
		writer := domainOf(n.Pkg.Path)
		for _, w := range n.Writes {
			status := "own"
			if w.Owner != writer {
				if boundaryAllowed(writer, w.Owner, w.State) {
					status = "boundary"
				} else {
					status = "cross"
				}
			}
			counts[key{writer, w.Owner + "." + w.State, status}]++
		}
	}
	rows := make([]OwnershipRow, 0, len(counts))
	for k, c := range counts {
		rows = append(rows, OwnershipRow{Writer: k.writer, State: k.state, Sites: c, Status: k.status})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Writer != rows[j].Writer {
			return rows[i].Writer < rows[j].Writer
		}
		return rows[i].State < rows[j].State
	})
	return rows
}

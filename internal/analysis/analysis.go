// Package analysis implements prosper-lint: a small, stdlib-only static
// analysis framework (go/ast + go/types, no x/tools) with
// project-specific passes that make the simulator's determinism
// guarantees mechanically checkable instead of review-enforced.
//
// The headline contract being protected: a run plan produces
// byte-identical experiments_output.txt, traces, and bench metrics at
// any -parallel worker count. Every pass exists because that contract
// was broken (or nearly broken) once: map-iteration order leaking into
// timed NVM accesses, host wall-clock reads in sim paths, goroutines
// touching single-threaded sim state, and colliding unprefixed metric
// keys.
//
// Findings can be suppressed, with a mandatory reason, by a directive
// on the offending line or the line directly above it:
//
//	//prosperlint:ignore <pass>[,<pass>...] <reason>
//
// Malformed directives (unknown pass, missing reason) are themselves
// findings, so the suppression inventory stays auditable.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// DeterministicPackages are the sim-time packages (module-relative)
// whose code must be bit-reproducible for a given seed: everything that
// executes between Engine ticks. Host-side orchestration (runner, cmd,
// stats.RunLog, telemetry's cross-run lane allocation) is excluded.
var DeterministicPackages = []string{
	"internal/sim",
	"internal/machine",
	"internal/mem",
	"internal/cache",
	"internal/vm",
	"internal/kernel",
	"internal/journey",
	"internal/prosper",
	"internal/persist",
	"internal/crash",
	"internal/workload",
	"internal/trace",
	"internal/experiments",
}

// Finding is one diagnostic. File is an absolute path at report time;
// renderers relativize it against a base directory.
type Finding struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// Pass is one analyzer. A pass is instantiated per Runner (passes may
// accumulate cross-package state) and invoked once per loaded package.
type Pass interface {
	Name() string
	Doc() string // one-line description for -list
	Run(pkg *Package, r *Reporter)
}

// Finisher is implemented by passes that report whole-program findings
// after every package has been visited (e.g. cross-package duplicate
// metric keys).
type Finisher interface {
	Finish(r *Reporter)
}

// ProgramPass is implemented by interprocedural passes: after every
// package has been visited, the runner builds one shared Program (call
// graph + per-function summaries, see callgraph.go) and hands it to
// each ProgramPass before the Finishers run.
type ProgramPass interface {
	Pass
	RunProgram(prog *Program, r *Reporter)
}

// AllPasses returns fresh instances of every shipped pass, in the order
// they run.
func AllPasses() []Pass {
	return []Pass{
		NewMapRange(),
		NewWallclock(),
		NewConcurrency(),
		NewStatsKeys(),
		NewSnapshot(),
		NewHotAlloc(),
		NewOwnership(),
	}
}

// Report is the outcome of one Runner.Run: sorted findings plus
// bookkeeping for the summary line and the JSON artifact.
type Report struct {
	Module     string    `json:"module"`
	Packages   int       `json:"packages"`
	Findings   []Finding `json:"findings"`
	Suppressed int       `json:"suppressed"`
}

// Runner loads packages and applies passes.
type Runner struct {
	Loader *Loader
	Passes []Pass

	// Program is the interprocedural view built by the last Analyze
	// call, when the pass suite contained a ProgramPass (the CLI's
	// -graph-out renders it). Nil otherwise.
	Program *Program
}

// NewRunner returns a runner over the module containing dir with the
// full pass suite.
func NewRunner(dir string) (*Runner, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	return &Runner{Loader: l, Passes: AllPasses()}, nil
}

// Run loads every package matched by patterns, applies all passes, and
// returns the report. Directive parsing errors surface as findings of
// the reserved "directive" pass.
func (r *Runner) Run(patterns []string) (*Report, error) {
	pkgs, err := r.Loader.Load(patterns)
	if err != nil {
		return nil, err
	}
	return r.Analyze(pkgs), nil
}

// Analyze applies the passes to already-loaded packages.
func (r *Runner) Analyze(pkgs []*Package) *Report {
	known := map[string]bool{DirectivePass: true}
	for _, p := range r.Passes {
		known[p.Name()] = true
	}
	rep := &Reporter{
		fset:       r.Loader.Fset,
		known:      known,
		directives: make(map[string][]Directive),
	}
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			name := pkg.Names[i]
			rep.directives[name] = ParseDirectives(r.Loader.Fset, f, pkg.Src[name])
		}
	}
	for _, pkg := range pkgs {
		for _, pass := range r.Passes {
			pass.Run(pkg, rep)
		}
	}
	needsProgram := false
	for _, pass := range r.Passes {
		if _, ok := pass.(ProgramPass); ok {
			needsProgram = true
			break
		}
	}
	if needsProgram {
		r.Program = BuildProgram(r.Loader, pkgs)
		// A hotpath directive whose target line carries no function
		// declaration marks nothing; surface it as a directive finding.
		for file, ds := range rep.directives {
			for i, d := range ds {
				if d.Verb == "hotpath" && d.Err == "" && !r.Program.HotpathAttached(file, d.Line) {
					rep.directives[file][i].Err = "hotpath directive is not attached to a function declaration (it must sit on the func line or the line directly above)"
				}
			}
		}
		for _, pass := range r.Passes {
			if pp, ok := pass.(ProgramPass); ok {
				pp.RunProgram(r.Program, rep)
			}
		}
	}
	for _, pass := range r.Passes {
		if fin, ok := pass.(Finisher); ok {
			fin.Finish(rep)
		}
	}
	rep.reportBadDirectives()

	out := &Report{
		Module:     r.Loader.Module,
		Packages:   len(pkgs),
		Findings:   rep.findings,
		Suppressed: rep.suppressed,
	}
	sort.Slice(out.Findings, func(i, j int) bool {
		a, b := out.Findings[i], out.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
	return out
}

// Reporter collects findings and applies suppression directives.
type Reporter struct {
	fset       *token.FileSet
	known      map[string]bool        // valid pass names (incl. "directive")
	directives map[string][]Directive // file -> parsed directives
	findings   []Finding
	suppressed int
}

// Report records a finding from pass at pos unless a valid ignore
// directive targets its line.
func (r *Reporter) Report(pass string, pos token.Pos, msg string) {
	p := r.fset.Position(pos)
	for _, d := range r.directives[p.Filename] {
		if d.Err == "" && d.Target == p.Line && d.matchesPass(pass) {
			r.suppressed++
			return
		}
	}
	r.findings = append(r.findings, Finding{
		Pass: pass, File: p.Filename, Line: p.Line, Col: p.Column, Message: msg,
	})
}

// reportBadDirectives converts malformed directives (and directives
// naming unknown passes) into findings. These are deliberately not
// suppressible: the directive inventory must stay self-describing.
func (r *Reporter) reportBadDirectives() {
	files := make([]string, 0, len(r.directives))
	for f := range r.directives {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, d := range r.directives[f] {
			msg := d.Err
			if msg == "" {
				for _, p := range d.Passes {
					if !r.known[p] {
						msg = fmt.Sprintf("directive names unknown pass %q", p)
						break
					}
				}
			}
			if msg != "" {
				r.findings = append(r.findings, Finding{
					Pass: DirectivePass, File: f, Line: d.Line, Col: d.Col, Message: msg,
				})
			}
		}
	}
}

package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// Baseline diff mode: prosper-lint -baseline old.json exits non-zero
// only on findings not present in a previously-archived report,
// enabling incremental adoption of noisy future passes. Findings match
// on (pass, file, message) — line-insensitive, so unrelated edits that
// shift a known finding down a file do not break the build — and
// matching is multiset-style: a baseline entry absorbs at most one
// current finding, so duplicating a known defect still fails.

// ReadBaseline parses a report previously written by WriteJSON. File
// paths in a baseline are module-relative (that is what WriteJSON
// emits), so diffing relativizes the current report the same way.
func ReadBaseline(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("analysis: malformed baseline report: %w", err)
	}
	return &rep, nil
}

// baselineKey is the line-insensitive identity of a finding.
type baselineKey struct {
	Pass, File, Message string
}

// DiffBaseline returns the findings of rep that are not matched by a
// baseline entry. Both reports must use the same path base; pass the
// module root to Relativized first for the live report.
func DiffBaseline(rep, baseline *Report) []Finding {
	have := make(map[baselineKey]int)
	for _, f := range baseline.Findings {
		have[baselineKey{f.Pass, f.File, f.Message}]++
	}
	var fresh []Finding
	for _, f := range rep.Findings {
		k := baselineKey{f.Pass, f.File, f.Message}
		if have[k] > 0 {
			have[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `range` statements over maps in sim-deterministic
// packages whose loop body has order-dependent effects. Go randomizes
// map iteration order, so any such loop makes a run irreproducible —
// the exact bug class behind the SSP consolidateTick nondeterminism.
//
// A loop is accepted when its body is provably order-independent:
//
//   - writes keyed by the loop variables (m2[k] = v, *p = x for the
//     value variable, deletes),
//   - commutative integer accumulation (n += v, n++, bitsets via |= &= ^=),
//   - assignments to variables declared inside the loop,
//   - calls to value-safe builtins and type conversions,
//   - returns of constants (found := searches).
//
// The canonical sorted-iteration idiom — collect keys with append, then
// sort.X/slices.Sort them before use — is recognized and accepted when
// the sort call appears later in the same enclosing block.
type MapRange struct{}

// NewMapRange returns the pass.
func NewMapRange() *MapRange { return &MapRange{} }

// Name implements Pass.
func (*MapRange) Name() string { return "maprange" }

// Doc implements Pass.
func (*MapRange) Doc() string {
	return "map iteration with order-dependent effects in sim-deterministic packages"
}

// Run implements Pass.
func (m *MapRange) Run(pkg *Package, r *Reporter) {
	if !isDeterministicPkg(pkg.Path) {
		return
	}
	for _, f := range pkg.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			la := analyzeLoop(pkg, rs)
			switch {
			case la.effect == "" && len(la.appends) == 0:
				// Provably order-independent.
			case la.effect != "":
				r.Report("maprange", la.effectPos, fmt.Sprintf(
					"map iteration order is random but the loop body %s; sort the keys first or suppress with a reason",
					la.effect))
			default:
				for obj, pos := range la.appends {
					if !sortedLater(pkg, rs, stack, obj) {
						r.Report("maprange", pos, fmt.Sprintf(
							"map keys are collected into %q but never sorted in this block; sort before use or iteration order leaks",
							obj.Name()))
					}
				}
			}
			return true
		})
	}
}

// loopAnalysis is the classification of one range-over-map body.
type loopAnalysis struct {
	effect    string    // first order-dependent effect, "" if none
	effectPos token.Pos // where it happens
	// appends maps collector variables (x = append(x, ...)) to the
	// position of their append; only meaningful when effect is empty.
	appends map[*types.Var]token.Pos
}

// valueSafeBuiltins neither observe nor leak iteration order on their
// own. append is handled separately; panic aborts the run and close is
// the concurrency pass's problem.
var valueSafeBuiltins = map[string]bool{
	"len": true, "cap": true, "delete": true, "new": true, "make": true,
	"copy": true, "min": true, "max": true, "clear": true, "panic": true,
}

func analyzeLoop(pkg *Package, rs *ast.RangeStmt) loopAnalysis {
	la := loopAnalysis{appends: make(map[*types.Var]token.Pos)}
	info := pkg.Info

	loopVar := func(e ast.Expr) *types.Var {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		return nil
	}
	keyVar, valVar := loopVar(rs.Key), loopVar(rs.Value)

	// declaredInside reports whether the identifier's object is declared
	// within the range statement (loop variables included).
	declaredInside := func(id *ast.Ident) bool {
		obj := info.ObjectOf(id)
		return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
	}
	// mentionsLoopVar reports whether expr reads the key or value var.
	mentionsLoopVar := func(expr ast.Expr) bool {
		found := false
		ast.Inspect(expr, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && (obj == keyVar || obj == valVar) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	// rootIdent unwraps selectors, derefs, and indexes to the base
	// identifier of an lvalue (v.field, *p, x[i] -> v, p, x).
	var rootIdent func(e ast.Expr) *ast.Ident
	rootIdent = func(e ast.Expr) *ast.Ident {
		switch e := e.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			return rootIdent(e.X)
		case *ast.StarExpr:
			return rootIdent(e.X)
		case *ast.IndexExpr:
			return rootIdent(e.X)
		case *ast.ParenExpr:
			return rootIdent(e.X)
		}
		return nil
	}
	isInteger := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	}

	flag := func(pos token.Pos, format string, args ...any) {
		if la.effect == "" {
			la.effect = fmt.Sprintf(format, args...)
			la.effectPos = pos
		}
	}

	// assignTarget classifies one assignment LHS; returns "" if safe.
	assignTarget := func(lhs ast.Expr, tok token.Token) string {
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" || declaredInside(l) {
				return ""
			}
			switch tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
				if isInteger(l) {
					return "" // commutative integer accumulation
				}
				return fmt.Sprintf("accumulates into non-integer %q (floating-point and string accumulation depend on order)", l.Name)
			}
			return fmt.Sprintf("assigns to %q declared outside the loop (last writer wins by map order)", l.Name)
		case *ast.IndexExpr:
			if t := info.TypeOf(l.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return "" // keyed map write
				}
			}
			if mentionsLoopVar(l.Index) {
				return "" // slice/array write keyed by the loop variable
			}
			return "writes to an index that does not depend on the loop variable"
		case *ast.StarExpr, *ast.SelectorExpr, *ast.ParenExpr:
			if root := rootIdent(l); root != nil {
				if obj := info.ObjectOf(root); obj != nil && (obj == keyVar || obj == valVar) {
					return "" // writes through the per-entry value
				}
				if declaredInside(root) {
					return ""
				}
				return fmt.Sprintf("writes through %q declared outside the loop", root.Name)
			}
			return "writes through an expression not keyed by the loop variable"
		}
		return "assigns to an unrecognized lvalue"
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if la.effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // new loop-local variables; RHS still walked
			}
			// Recognize the collector idiom x = append(x, ...).
			if n.Tok == token.ASSIGN && len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok && !declaredInside(id) {
					if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isAppendToSame(info, id, call) {
						if v, ok := info.ObjectOf(id).(*types.Var); ok {
							if _, seen := la.appends[v]; !seen {
								la.appends[v] = n.Pos()
							}
							return true
						}
					}
				}
			}
			for _, lhs := range n.Lhs {
				if msg := assignTarget(lhs, n.Tok); msg != "" {
					flag(n.Pos(), "%s", msg)
					return false
				}
			}
		case *ast.IncDecStmt:
			// x++ applies identical commutative increments, so a bare
			// identifier target is order-independent for any numeric
			// type; indexed/selector targets follow the keyed rules.
			if _, isIdent := n.X.(*ast.Ident); !isIdent {
				if msg := assignTarget(n.X, token.ADD_ASSIGN); msg != "" {
					flag(n.Pos(), "%s", msg)
					return false
				}
			}
		case *ast.CallExpr:
			fn := n.Fun
			if p, ok := fn.(*ast.ParenExpr); ok {
				fn = p.X
			}
			if id, ok := fn.(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if id.Name == "append" || valueSafeBuiltins[id.Name] {
						return true
					}
					flag(n.Pos(), "calls builtin %s whose effect depends on iteration order", id.Name)
					return false
				}
			}
			if tv, ok := info.Types[fn]; ok && tv.IsType() {
				return true // conversion
			}
			flag(n.Pos(), "calls %s, whose side effects would occur in random map order", types.ExprString(fn))
			return false
		case *ast.SendStmt:
			flag(n.Pos(), "sends on a channel in map order")
			return false
		case *ast.GoStmt:
			flag(n.Pos(), "spawns goroutines in map order")
			return false
		case *ast.DeferStmt:
			flag(n.Pos(), "defers calls in map order")
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tv, ok := info.Types[res]; !ok || tv.Value == nil {
					flag(n.Pos(), "returns a value selected by map iteration order")
					return false
				}
			}
		}
		return true
	})
	return la
}

// isAppendToSame reports whether call is append(x, ...) for the same
// variable named by id.
func isAppendToSame(info *types.Info, id *ast.Ident, call *ast.CallExpr) bool {
	fid, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := info.Uses[fid].(*types.Builtin); !isBuiltin || fid.Name != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && info.ObjectOf(arg) == info.ObjectOf(id)
}

// sortFuncs are the recognized "sort it" calls: package name ->
// acceptable function names.
var sortFuncs = map[string]map[string]bool{
	"sort": {"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedLater reports whether, in the statement list enclosing rs, a
// recognized sort call whose first argument is (or wraps) obj appears
// after the range statement.
func sortedLater(pkg *Package, rs *ast.RangeStmt, stack []ast.Node, obj *types.Var) bool {
	var list []ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		break
	}
	after := false
	for _, st := range list {
		if st == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after {
			continue
		}
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		fns, ok := sortFuncs[importedPkgOf(pkg.Info, sel.X)]
		if !ok || !fns[sel.Sel.Name] {
			continue
		}
		arg := call.Args[0]
		// Unwrap one conversion/constructor layer: sort.Sort(byAddr(keys)).
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			arg = inner.Args[0]
		}
		if id, ok := arg.(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}

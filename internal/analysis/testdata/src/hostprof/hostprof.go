// Package hostprof is a prosper-lint fixture shaped like the real
// internal/hostprof clock: a monotonic-nanosecond source built on
// time.Now/time.Since. Analyzed under a sim-deterministic import path
// the reads are findings; analyzed under prosper/internal/hostprof the
// allowlist admits them wholesale (see the wallclock tests).
package hostprof

import "time"

// base anchors the monotonic clock at package init.
var base = time.Now() // want:wallclock "time.Now"

// Nanotime returns monotonic nanoseconds since process start.
func Nanotime() int64 {
	return int64(time.Since(base)) // want:wallclock "time.Since"
}

// Sleepy would also be banned outside the allowlist: scheduling by the
// host clock is as irreproducible as reading it.
func Sleepy() {
	time.Sleep(time.Millisecond) // want:wallclock "time.Sleep"
}

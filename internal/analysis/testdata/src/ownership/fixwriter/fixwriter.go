// Package fixwriter is the writing side of the ownership-pass fixture
// pair. It is analyzed under a sim-deterministic import path (posing as
// internal/trace), so its writes are sim-time writes; the fixowner
// package it imports belongs to a different component domain, and no
// boundary-list entry sanctions the coupling.
package fixwriter

import "prosper/internal/fixowner"

// Cursor is fixwriter-owned state.
type Cursor struct {
	pos  int
	tab  *fixowner.Table
	tabs []*fixowner.Table
}

// Step writes state across the component boundary.
func (c *Cursor) Step() {
	c.pos++                  // own state: inventoried, never a finding
	c.tab.Head = c.pos       // want:ownership "writes fixowner-owned state Table.Head"
	c.tab.Entries[0] = c.pos // want:ownership "writes fixowner-owned state Table.Entries"
	fixowner.Epoch = c.pos   // want:ownership "writes fixowner-owned state var Epoch"
	c.tabs[0].Head++         // want:ownership "writes fixowner-owned state Table.Head"
	c.tab.Advance()          // method-mediated mutation: attributed to fixowner itself
}

// Documented exception: the pass accepts a reasoned suppression like
// any other.
func (c *Cursor) Reset() {
	c.tab.Head = 0 //prosperlint:ignore ownership fixture: documented reset-time coupling
}

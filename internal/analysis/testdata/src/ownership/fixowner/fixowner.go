// Package fixowner is the state-owning side of the ownership-pass
// fixture pair: it declares shared machine state (a struct type and a
// package-level variable) that the fixwriter package pokes from a
// different component domain.
package fixowner

// Epoch is package-level mutable state owned by the fixowner domain.
var Epoch int

// Table is shared machine state.
type Table struct {
	Head    int
	Entries []int
}

// Advance is the sanctioned mutation path: fixowner code writing
// fixowner state is same-domain and never a finding.
func (t *Table) Advance() {
	t.Head++
	Epoch++
}

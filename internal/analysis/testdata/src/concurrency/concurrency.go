// Package concurrency is a prosper-lint fixture for the concurrency
// pass; it is type-checked under a sim-deterministic import path.
package concurrency

import "sync"

var mu sync.Mutex // want:concurrency "sync.Mutex"

type gen struct {
	ops chan int // want:concurrency "channel type"
}

func start(g *gen) {
	g.ops = make(chan int) // want:concurrency "channel type"
	go fill(g.ops)         // want:concurrency "goroutine spawn"
}

func fill(ops chan int) { // want:concurrency "channel type"
	for i := 0; i < 4; i++ {
		ops <- i // want:concurrency "channel send"
	}
	close(ops) // want:concurrency "close of a channel"
}

func drainOne(g *gen) int {
	return <-g.ops // want:concurrency "channel receive"
}

func drainAll(g *gen) int {
	n := 0
	for range g.ops { // want:concurrency "range over a channel"
		n++
	}
	return n
}

func either(a, b *gen) int {
	select { // want:concurrency "select statement"
	case v := <-a.ops: // want:concurrency "channel receive"
		return v
	case v := <-b.ops: // want:concurrency "channel receive"
		return v
	}
}

// locked shows that only declaration sites are flagged: the method
// calls below go through a variable, not the sync package selector.
func locked(f func()) {
	mu.Lock()
	defer mu.Unlock()
	f()
}

// handoff documents the deterministic generator exception.
type handoff struct {
	//prosperlint:ignore concurrency fixture: unbuffered handoff keeps the generator deterministic
	stop chan struct{}
}

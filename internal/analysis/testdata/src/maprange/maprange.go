// Package maprange is a prosper-lint fixture: it is type-checked under
// a sim-deterministic import path, and every flagged line carries a
// `want:<pass> "<substring>"` annotation consumed by analysis_test.go.
package maprange

import "sort"

type sched struct{ events []uint64 }

func (s *sched) Schedule(e uint64) { s.events = append(s.events, e) }

// collectSorted is the approved idiom: collect keys, sort, then use.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectUnsorted gathers keys but never establishes an order.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want:maprange "never sorted"
	}
	return keys
}

// accumulate uses commutative integer math: order-independent.
func accumulate(m map[string]uint64) uint64 {
	var sum uint64
	n := 0
	for _, v := range m {
		sum += v
		n++
	}
	return sum + uint64(n)
}

// floatSum rounds differently depending on iteration order.
func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want:maprange "non-integer"
	}
	return sum
}

// keyedWrites only touch entries addressed by the loop variable.
func keyedWrites(m map[uint64]int) map[uint64]int {
	out := make(map[uint64]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	for k := range out {
		if k == 0 {
			delete(out, k)
		}
	}
	return out
}

// schedules leaks iteration order through a side-effecting call.
func schedules(s *sched, m map[uint64]bool) {
	for addr := range m {
		s.Schedule(addr) // want:maprange "side effects"
	}
}

// lastWriterWins keeps whichever key the runtime visited last.
func lastWriterWins(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want:maprange "last writer wins"
	}
	return last
}

// search returns constants only: any visiting order gives the answer.
func search(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// pick returns whichever key comes out first.
func pick(m map[string]int) string {
	for k := range m {
		return k // want:maprange "selected by map iteration order"
	}
	return ""
}

// suppressed documents a known order-independent effect.
func suppressed(s *sched, m map[uint64]bool) {
	for addr := range m {
		//prosperlint:ignore maprange fixture: writes hit disjoint addresses, final state is order-independent
		s.Schedule(addr)
	}
}

// sliceRange is not a map range: collecting without sorting is fine.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Package badimport exercises the Loader's unresolved-import error
// path: the module-local import below maps to no directory in the
// repository, so type-checking must fail with a useful error rather
// than a panic or a silent nil package.
package badimport

import "prosper/internal/definitely/missing"

var _ = missing.Nothing

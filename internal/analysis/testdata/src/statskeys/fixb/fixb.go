// Package fixb completes the cross-package duplicate-key fixture: it
// registers the same unprefixed key as fixa.
package fixb

import "prosper/internal/stats"

func register(c *stats.Counters) {
	c.Inc("tlb_hits") // want:statskeys "registered by 2 packages"
	c.Inc("fixb.hits")
	c.Get("tlb_hits") // reads do not register: no duplicate from here
}

// Package fixa is a prosper-lint fixture for the statskeys pass: it
// registers metric keys against the real stats/telemetry APIs.
package fixa

import (
	"prosper/internal/stats"
	"prosper/internal/telemetry"
)

func register(c *stats.Counters, h *stats.Histograms, r *telemetry.Registry) {
	c.Inc("tlb_hits") // want:statskeys "registered by 2 packages"
	c.Inc("fixa_only_key")
	c.Add("fixa.requests", 1)
	c.Handle("TLB.Hits")     // want:statskeys "not a lowercase dotted identifier"
	c.Set("fixa.bad key", 0) // want:statskeys "not a lowercase dotted identifier"
	h.New("fixa.latency")
	h.New("Latency") // want:statskeys "not a lowercase dotted identifier"
	r.Register("fixa", c)
	r.Register("", c)
	r.RegisterHistograms("Fixa.Hist", h) // want:statskeys "registry prefix"
}

// Package wallclock is a prosper-lint fixture for the wallclock pass;
// it is type-checked under a sim-deterministic import path.
package wallclock

import (
	"math/rand"
	"time"
)

// timeout is duration arithmetic on constants: legal.
const timeout = 5 * time.Millisecond

// tick uses the host clock where sim.Time belongs.
func tick() int64 {
	start := time.Now() // want:wallclock "time.Now"
	busy()
	return int64(time.Since(start)) + int64(timeout) // want:wallclock "time.Since"
}

// globalRand draws from the process-global source.
func globalRand(n int) int {
	return rand.Intn(n) // want:wallclock "process-global"
}

// seeded constructs an explicit source: legal anywhere.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// hostBoundary documents an approved host-side measurement.
func hostBoundary() time.Time {
	//prosperlint:ignore wallclock fixture: host-side progress timestamp, not sim time
	return time.Now()
}

func busy() {}

// Package snapshot is a prosper-lint fixture for the snapshot
// save/load coverage pass: every flagged field carries a
// `want:<pass> "<substring>"` annotation consumed by analysis_test.go.
package snapshot

// buf is a stand-in for the snapshot byte writer/reader.
type buf struct{ b []byte }

func (w *buf) U64(v uint64)        { _ = v }
func (r *buf) ReadU64() (v uint64) { return }

// device is the checked type: it declares both SaveSnap and LoadSnap,
// so every field one side mentions must be covered by the other.
type device struct {
	rows    uint64 // symmetric: saved and restored
	cols    uint64 // symmetric: touched via the saveGeometry helper
	seq     uint64 // want:snapshot "mentioned by SaveSnap but not LoadSnap"
	scratch uint64 // want:snapshot "mentioned by LoadSnap but not SaveSnap"
	//prosperlint:ignore snapshot fixture: documented asymmetry, cleared on load and rebuilt lazily
	cache uint64
	wired func() // mentioned by neither side: boot wiring is out of scope
}

// saveGeometry is a same-receiver helper: its mentions count for
// SaveSnap transitively.
func (d *device) saveGeometry(w *buf) {
	w.U64(d.cols)
}

func (d *device) SaveSnap(w *buf) {
	w.U64(d.rows)
	d.saveGeometry(w)
	w.U64(d.seq)
}

func (d *device) LoadSnap(r *buf) {
	d.rows = r.ReadU64()
	d.cols = r.ReadU64()
	d.scratch = 0
	d.cache = 0
}

// sink has a SaveSnap but no LoadSnap: not a snapshot pair, so the
// pass leaves its asymmetric field alone.
type sink struct{ drained uint64 }

func (s *sink) SaveSnap(w *buf) { w.U64(s.drained) }

// Package fixhot is a hotalloc-pass fixture: a miniature device with a
// declared hot-path root, exercising every allocation-site class the
// summary walker detects, plus continuation-target reachability through
// the real sim package and a cold function proving reachability stops
// at non-hot roots.
package fixhot

import (
	"fmt"

	"prosper/internal/sim"
)

// Dev is the fixture component.
type Dev struct {
	eng   *sim.Engine
	doneT sim.Done
	n     int
	sink  any
	buf   []int
	name  string
	last  *Req
	out   sink
}

// Req is a request record.
type Req struct{ Addr uint64 }

// sink is a local interface: calls through it fan out conservatively to
// every implementing method in the module (here, just *tap.put).
type sink interface{ put(v int) }

// tap implements sink.
type tap struct{ n int }

func (t *tap) put(v int) { t.n += v }

//prosperlint:hotpath fixture hot entry point
func (d *Dev) Access(addr uint64) {
	x := addr
	d.eng.Schedule(sim.CompMem, 1, func() { // want:hotalloc "func literal captures"
		d.n += int(x)
	})
	d.doneT = sim.Thunk(sim.CompMem, d.onDone) // want:hotalloc "method value onDone allocates"
	d.record(addr)
}

// record is reachable from Access through a direct call edge; the
// interface call fans out to *tap.put, making it hot too.
func (d *Dev) record(addr uint64) {
	d.sink = addr                    // want:hotalloc "assignment boxes into any"
	d.buf = append(d.buf, int(addr)) // want:hotalloc "append may grow the backing array"
	d.last = &Req{Addr: addr}        // want:hotalloc "composite literal escapes"
	d.out.put(int(addr))
}

// onDone is reachable from Access only as a sim.Thunk continuation
// target: the engine will dispatch it, so it is hot.
func (d *Dev) onDone() {
	d.name = d.name + "!"      // want:hotalloc "string concatenation"
	fmt.Println(d.name)        // want:hotalloc "fmt.Println allocates"
	d.n += len(make([]int, 8)) // want:hotalloc "make allocates"
}

// cold is not reachable from any hot-path root: the same allocation
// shapes as above produce no findings here (reachability stops at
// non-hot functions).
func (d *Dev) cold() {
	d.sink = d.n
	d.buf = append(d.buf, 1)
	d.name = d.name + "?"
	d.last = &Req{}
}

// ColdEntry calls cold but is itself undeclared, so nothing here is
// hot.
func (d *Dev) ColdEntry() { d.cold() }

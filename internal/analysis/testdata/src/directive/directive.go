// Package directive is a prosper-lint fixture for suppression
// semantics: end-of-line vs preceding-line placement, reach, and
// malformed directives. Expected findings live in analysis_test.go
// (directive-pass findings land on comment lines, which cannot carry a
// second annotation comment).
package directive

import "time"

// eol: the directive trails the offending code.
func eol() time.Time {
	return time.Now() //prosperlint:ignore wallclock fixture: approved host-side timestamp
}

// preceding: the directive sits directly above the offending line.
func preceding() time.Time {
	//prosperlint:ignore wallclock fixture: approved host-side timestamp
	return time.Now()
}

// gap: a blank line breaks the directive's reach.
func gap() time.Time {
	//prosperlint:ignore wallclock fixture: does not reach across the blank line

	return time.Now()
}

// unknownPass: a typo in the pass name suppresses nothing.
func unknownPass() time.Time {
	//prosperlint:ignore wallclocks fixture: typo in the pass name
	return time.Now()
}

// missingReason: a bare pass name is not a justification.
func missingReason() time.Time {
	return time.Now() //prosperlint:ignore wallclock
}

// badVerb: only "ignore" exists.
func badVerb() time.Time {
	return time.Now() //prosperlint:silence wallclock because reasons
}

// commaList: one directive can cover several passes.
func commaList(m map[string]int) int64 {
	var total int64
	for k := range m {
		//prosperlint:ignore maprange,wallclock fixture: host timing in a map loop, order-independent by construction
		total += time.Now().UnixNano()
		_ = k
	}
	return total
}

package analysis

import (
	"bytes"
	"strings"
	"testing"
)

// buildFixhot loads the hotalloc fixture fresh and builds its program.
func buildFixhot(t *testing.T) *Program {
	t.Helper()
	l, pkgs := loadFixtures(t, "testdata/src/hotalloc")
	return BuildProgram(l, pkgs)
}

// TestGraphDeterminism pins the -graph-out contract: two completely
// independent loads of the same sources render byte-identical graphs.
func TestGraphDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildFixhot(t).WriteGraph(&a, "testdata/src"); err != nil {
		t.Fatal(err)
	}
	if err := buildFixhot(t).WriteGraph(&b, "testdata/src"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("graph output is not deterministic:\n--- first ---\n%s--- second ---\n%s", a.String(), b.String())
	}
	if !strings.HasPrefix(a.String(), "# prosper-lint interprocedural graph v1\n") {
		t.Errorf("graph output missing version header:\n%s", a.String())
	}
}

// TestGraphEdges pins the edge model on the fixhot fixture: a direct
// call edge, a continuation edge through sim.Thunk, and reachability
// that stops at undeclared entry points.
func TestGraphEdges(t *testing.T) {
	p := buildFixhot(t)

	access := p.NodeByID("(*internal/fixhot.Dev).Access")
	if access == nil {
		t.Fatal("no node for (*internal/fixhot.Dev).Access")
	}
	if access.HotReason == "" || !access.Hot() {
		t.Errorf("Access is not a hot root: reason=%q via=%v", access.HotReason, access.Via)
	}
	if access.Via != access {
		t.Errorf("root Via should be itself, got %v", access.Via)
	}

	edgeKind := func(from *FuncNode, toID string) (EdgeKind, bool) {
		for _, e := range from.Edges {
			if e.To.ID == toID {
				return e.Kind, true
			}
		}
		return 0, false
	}

	if k, ok := edgeKind(access, "(*internal/fixhot.Dev).record"); !ok || k != EdgeCall {
		t.Errorf("Access -> record: kind=%v found=%v, want call edge", k, ok)
	}
	if k, ok := edgeKind(access, "(*internal/fixhot.Dev).onDone"); !ok || k != EdgeContinuation {
		t.Errorf("Access -> onDone: kind=%v found=%v, want continuation edge", k, ok)
	}

	for _, id := range []string{"(*internal/fixhot.Dev).record", "(*internal/fixhot.Dev).onDone"} {
		n := p.NodeByID(id)
		if n == nil {
			t.Fatalf("no node for %s", id)
		}
		if !n.Hot() {
			t.Errorf("%s is not hot, want reachable from Access", id)
		} else if n.Via != access {
			t.Errorf("%s Via = %s, want %s", id, n.Via.ID, access.ID)
		}
	}

	record := p.NodeByID("(*internal/fixhot.Dev).record")
	if record == nil {
		t.Fatal("no node for (*internal/fixhot.Dev).record")
	}
	if k, ok := edgeKind(record, "(*internal/fixhot.tap).put"); !ok || k != EdgeIface {
		t.Errorf("record -> put: kind=%v found=%v, want iface edge (interface fan-out)", k, ok)
	}
	if put := p.NodeByID("(*internal/fixhot.tap).put"); put == nil || !put.Hot() {
		t.Error("(*internal/fixhot.tap).put should be hot through the interface call")
	}

	for _, id := range []string{"(*internal/fixhot.Dev).cold", "(*internal/fixhot.Dev).ColdEntry"} {
		n := p.NodeByID(id)
		if n == nil {
			t.Fatalf("no node for %s", id)
		}
		if n.Hot() {
			t.Errorf("%s is hot via %s, want cold (reachability must stop at non-root entry points)", id, n.Via.ID)
		}
	}
}

// TestOwnershipMapRows pins the aggregated write inventory on the
// ownership fixture pair: same-domain writes are inventoried as "own",
// cross-domain writes as "cross".
func TestOwnershipMapRows(t *testing.T) {
	l, pkgs := loadFixtures(t, "testdata/src/ownership/fixowner", "testdata/src/ownership/fixwriter")
	p := BuildProgram(l, pkgs)

	rows := p.OwnershipMap()
	byKey := make(map[string]OwnershipRow)
	for _, r := range rows {
		byKey[r.Writer+"->"+r.State] = r
	}

	// The map inventories writes from sim-deterministic packages only:
	// fixowner (a synthetic non-sim domain) contributes no rows, while
	// fixwriter — posing as internal/trace — contributes both its own
	// writes and the cross-domain ones.
	if r, ok := byKey["trace->trace.Cursor.pos"]; !ok || r.Status != "own" {
		t.Errorf("trace's own Cursor.pos write: %+v (found=%v), want status own", r, ok)
	}
	cross, ok := byKey["trace->fixowner.Table.Head"]
	if !ok || cross.Status != "cross" {
		t.Errorf("trace -> Table.Head: %+v (found=%v), want status cross", cross, ok)
	}
	// Step's two Head writes plus Reset's suppressed one: the inventory
	// counts sites regardless of directive suppression (the map is a
	// factual record; suppression only affects findings).
	if ok && cross.Sites < 2 {
		t.Errorf("trace -> Table.Head sites = %d, want >= 2", cross.Sites)
	}
	if r, ok := byKey["trace->fixowner.var Epoch"]; !ok || r.Status != "cross" {
		t.Errorf("trace -> var Epoch: %+v (found=%v), want status cross", r, ok)
	}
}

// TestLoaderUnresolvedImport pins the Loader's failure mode on a
// module-local import that maps to no directory: a descriptive error,
// not a panic or a silent nil package.
func TestLoaderUnresolvedImport(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir("testdata/src/badimport", "prosper/internal/badimport")
	if err == nil {
		t.Fatal("LoadDir succeeded on a package with an unresolvable module-local import")
	}
	if !strings.Contains(err.Error(), "prosper/internal/definitely/missing") {
		t.Errorf("error does not name the missing import path: %v", err)
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module using
// only the standard library: module-local import paths are resolved by
// mapping them onto directories under the module root and recursing,
// everything else (the standard library) is delegated to the stdlib
// source importer. No go/packages, no x/tools.
type Loader struct {
	Fset   *token.FileSet
	Root   string // absolute module root directory (holds go.mod)
	Module string // module path from go.mod

	std     types.Importer
	pkgs    map[string]*Package // import path -> loaded package
	loading map[string]bool     // cycle guard
}

// Package is one loaded, type-checked package plus everything the
// passes need: syntax, type info, and raw source (for directive
// placement decisions).
type Package struct {
	Path  string      // import path (fixtures may use synthetic paths)
	Files []*ast.File // sorted by file name
	Names []string    // absolute file names, parallel to Files
	Pkg   *types.Package
	Info  *types.Info
	Src   map[string][]byte // file name -> source bytes
}

// NewLoader returns a loader anchored at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Root:    root,
		Module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and reads the
// module path from its first "module" directive.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					mod := strings.TrimSpace(rest)
					if mod == "" {
						break
					}
					return dir, mod, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load expands patterns ("./...", "dir/...", or plain directories,
// relative to the module root) and returns the matched packages in
// deterministic (import path) order. Directories named "testdata",
// "vendor", or starting with "." or "_" are skipped by ... expansion,
// matching the go tool's convention.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		switch {
		case pat == "./..." || pat == "...":
			expanded, err := l.expand(l.Root)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.Root, strings.TrimSuffix(pat, "/..."))
			expanded, err := l.expand(base)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		default:
			add(filepath.Join(l.Root, pat))
		}
	}
	var out []*Package
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// expand returns every directory under base that holds at least one
// non-test Go file.
func (l *Loader) expand(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: directory %s is outside module %s", dir, l.Root)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. Test files are excluded: the determinism contract
// is about simulator code, and test-only helpers routinely use host
// facilities on purpose. Returns (nil, nil) for a directory with no
// non-test Go files.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	pkg := &Package{Path: path, Src: make(map[string][]byte)}
	pkgName := ""
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(l.Fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: multiple packages in one directory (%s and %s)",
				dir, pkgName, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Names = append(pkg.Names, name)
		pkg.Src[name] = src
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if len(typeErrs) > 0 {
		max := len(typeErrs)
		if max > 5 {
			max = 5
		}
		msgs := make([]string, 0, max)
		for _, e := range typeErrs[:max] {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s failed:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	pkg.Pkg = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local paths load from the
// repository source tree, anything else falls through to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Pkg, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files for %s", path)
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file grows the per-file pass framework into an interprocedural
// one: a deterministic, module-local call graph built on the Loader's
// type-checked packages. The graph is deliberately conservative and
// cheap — it exists to answer one question well ("which functions can
// run downstream of a declared hot-path root?") and to inventory
// per-function effects (allocation sites, shared-state writes) for the
// hotalloc and ownership passes.
//
// Edge model:
//
//   - call: a direct call to a named function, or a method call whose
//     receiver type is concrete (resolved via go/types Selections).
//   - iface: a call through an interface method, conservatively linked
//     to every module-local method with the same name whose receiver
//     type implements the interface (e.g. Port.Access fans out to
//     Cache.Access, Device.Access, PortFunc.Access, ...).
//   - continuation: a function value handed to the sim event machinery
//     (sim.Thunk/Bind/KeyedThunk/KeyedBind, Engine.Schedule/At/
//     NewTicker/Inject, ...). These are the hot path's dispatch
//     mechanism: the engine will later invoke the value, so the binding
//     site is treated as a potential call site.
//   - ref: any other use of a function value (assigned to a variable or
//     field, passed as an ordinary argument, returned). Calls through
//     function-typed variables cannot be resolved, so the graph instead
//     assumes a referenced function may run wherever its value was
//     taken. This over-approximates (a stored callback "runs" at its
//     binding site) but never loses a target.
//
// Function literals do not get nodes of their own: a closure's body is
// attributed to the enclosing declared function, so reaching the
// function reaches everything its closures do.
//
// Hot-path roots are declared in source with the directive
//
//	//prosperlint:hotpath <reason>
//
// placed on the func line or the line directly above it (same placement
// grammar as ignore directives). Reachability is a breadth-first sweep
// from the roots in sorted-ID order, so the "via" attribution of every
// reachable node is deterministic.

// EdgeKind classifies one call-graph edge.
type EdgeKind uint8

const (
	EdgeCall EdgeKind = iota
	EdgeIface
	EdgeContinuation
	EdgeRef
)

var edgeKindNames = [...]string{"call", "iface", "continuation", "ref"}

// String returns the edge kind's stable name (part of the -graph-out
// format).
func (k EdgeKind) String() string { return edgeKindNames[k] }

// Edge is one outgoing edge of a call-graph node.
type Edge struct {
	Kind EdgeKind
	To   *FuncNode
	Pos  token.Pos // the call or reference site
}

// FuncNode is one declared function or method of a loaded package.
type FuncNode struct {
	ID   string // module-relative, e.g. "(*internal/cache.Cache).Access"
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	File string // absolute file name
	Line int    // line of the func keyword

	Edges  []Edge      // sorted by (To.ID, Kind, Pos)
	Allocs []AllocSite // static allocation sites in the body (summary.go)
	Writes []WriteSite // shared-state write sites in the body (summary.go)

	HotReason string    // non-empty iff this is a declared hot-path root
	Via       *FuncNode // nearest root that reaches this node (nil if cold)
}

// Hot reports whether the node is reachable from any hot-path root
// (roots reach themselves).
func (n *FuncNode) Hot() bool { return n.Via != nil }

// Program is the interprocedural view over one set of loaded packages:
// the call graph plus per-function summaries.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Nodes []*FuncNode // sorted by ID
	Roots []*FuncNode // hot-path roots, sorted by ID

	byObj map[*types.Func]*FuncNode
	// attachedHotpath records which hotpath directives found a function
	// declaration on their target line, keyed by file then target line.
	attachedHotpath map[string]map[int]bool
}

// NodeByID returns the named node, or nil.
func (p *Program) NodeByID(id string) *FuncNode {
	i := sort.Search(len(p.Nodes), func(i int) bool { return p.Nodes[i].ID >= id })
	if i < len(p.Nodes) && p.Nodes[i].ID == id {
		return p.Nodes[i]
	}
	return nil
}

// nodeOf resolves a *types.Func (possibly a generic instance) to its
// node.
func (p *Program) nodeOf(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	if o := obj.Origin(); o != nil {
		obj = o
	}
	return p.byObj[obj]
}

// moduleQualifier renders package paths relative to the module root
// ("prosper/internal/cache" -> "internal/cache") so node IDs stay
// stable however the checkout is named, and readable in messages. The
// module root package itself renders by name.
func moduleQualifier(module string) types.Qualifier {
	return func(pkg *types.Package) string {
		path := pkg.Path()
		if rest, ok := strings.CutPrefix(path, module+"/"); ok {
			return rest
		}
		if path == module {
			return pkg.Name()
		}
		return path
	}
}

// funcID builds the stable node ID for a declared function:
// "pkg.Name" for package functions, "(pkg.Recv).Name" or
// "(*pkg.Recv).Name" for methods, with module-relative pkg paths.
func funcID(obj *types.Func, qual types.Qualifier) string {
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), qual), obj.Name())
	}
	if obj.Pkg() != nil {
		return qual(obj.Pkg()) + "." + obj.Name()
	}
	return obj.Name()
}

// BuildProgram constructs the call graph and per-function summaries for
// the loaded packages. The result is deterministic: nodes and edges are
// fully sorted, and identical sources produce byte-identical WriteGraph
// output.
func BuildProgram(l *Loader, pkgs []*Package) *Program {
	p := &Program{
		Fset:            l.Fset,
		Pkgs:            pkgs,
		byObj:           make(map[*types.Func]*FuncNode),
		attachedHotpath: make(map[string]map[int]bool),
	}
	qual := moduleQualifier(l.Module)

	// Pass 1: one node per function declaration. Multiple init funcs in
	// a package share a FullName, so IDs get a "#n" disambiguator in
	// (file, line) order.
	idCount := make(map[string]int)
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			name := pkg.Names[i]
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				id := funcID(obj, qual)
				idCount[id]++
				if c := idCount[id]; c > 1 {
					id = fmt.Sprintf("%s#%d", id, c)
				}
				pos := l.Fset.Position(fd.Pos())
				n := &FuncNode{
					ID: id, Obj: obj, Decl: fd, Pkg: pkg,
					File: name, Line: pos.Line,
				}
				p.byObj[obj] = n
				p.Nodes = append(p.Nodes, n)
			}
		}
	}
	sort.Slice(p.Nodes, func(i, j int) bool { return p.Nodes[i].ID < p.Nodes[j].ID })

	// Pass 2: hot-path roots from directives. A hotpath directive whose
	// target line carries no func keyword is recorded as unattached; the
	// Runner reports it under the directive pass.
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			name := pkg.Names[i]
			for _, d := range ParseDirectives(l.Fset, f, pkg.Src[name]) {
				if d.Verb != "hotpath" || d.Err != "" {
					continue
				}
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || l.Fset.Position(fd.Pos()).Line != d.Target {
						continue
					}
					if n := p.nodeOf(pkg.Info.Defs[fd.Name].(*types.Func)); n != nil {
						n.HotReason = d.Reason
						if p.attachedHotpath[name] == nil {
							p.attachedHotpath[name] = make(map[int]bool)
						}
						p.attachedHotpath[name][d.Line] = true
					}
					break
				}
			}
		}
	}
	for _, n := range p.Nodes {
		if n.HotReason != "" {
			p.Roots = append(p.Roots, n)
		}
	}

	// Pass 3: edges and summaries.
	ifaceIndex := buildIfaceIndex(p)
	for _, n := range p.Nodes {
		if n.Decl.Body == nil {
			continue
		}
		collectEdges(p, n, ifaceIndex)
		collectSummary(p, n)
		sortEdges(n)
	}

	p.markReachable()
	return p
}

// HotpathAttached reports whether the hotpath directive at (file, line)
// found a function declaration on its target line.
func (p *Program) HotpathAttached(file string, line int) bool {
	return p.attachedHotpath[file][line]
}

// ifaceIndex maps a method name to every module-local concrete method
// with that name, used for conservative interface-call resolution.
type ifaceIndex map[string][]*FuncNode

func buildIfaceIndex(p *Program) ifaceIndex {
	idx := make(ifaceIndex)
	for _, n := range p.Nodes {
		if sig, _ := n.Obj.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); !isIface {
				idx[n.Obj.Name()] = append(idx[n.Obj.Name()], n)
			}
		}
	}
	return idx
}

// continuationFuncs are the internal/sim entry points whose function
// arguments become engine-dispatched continuations.
var continuationFuncs = map[string]bool{
	"Thunk": true, "Bind": true, "KeyedThunk": true, "KeyedBind": true,
	"Schedule": true, "At": true, "NewTicker": true, "Inject": true,
	"RunWhile": true, "AfterFunc": true,
}

// isSimContinuationCall reports whether call resolves to one of the sim
// package's continuation-taking functions or methods.
func isSimContinuationCall(info *types.Info, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !continuationFuncs[fn.Name()] {
		return false
	}
	return pkgPathSuffix(fn.Pkg().Path(), "internal/sim")
}

// collectEdges walks one function body (closures included) and records
// call, iface, continuation, and ref edges.
func collectEdges(p *Program, n *FuncNode, idx ifaceIndex) {
	info := n.Pkg.Info
	add := func(kind EdgeKind, to *FuncNode, pos token.Pos) {
		if to != nil {
			n.Edges = append(n.Edges, Edge{Kind: kind, To: to, Pos: pos})
		}
	}

	// resolveIface fans an interface-method call out to every concrete
	// module-local method implementing it.
	resolveIface := func(obj *types.Func, pos token.Pos) {
		iface, _ := obj.Type().(*types.Signature)
		if iface == nil || iface.Recv() == nil {
			return
		}
		it, _ := iface.Recv().Type().Underlying().(*types.Interface)
		if it == nil {
			return
		}
		for _, cand := range idx[obj.Name()] {
			recv := cand.Obj.Type().(*types.Signature).Recv().Type()
			if types.Implements(recv, it) || types.Implements(types.NewPointer(recv), it) {
				add(EdgeIface, cand, pos)
			}
		}
	}

	walkWithStack(n.Decl.Body, func(node ast.Node, stack []ast.Node) bool {
		// funcRefAt resolves expr to a declared function if it names one.
		funcRefAt := func(expr ast.Expr) (*types.Func, bool) {
			switch e := expr.(type) {
			case *ast.Ident:
				fn, ok := info.Uses[e].(*types.Func)
				return fn, ok
			case *ast.SelectorExpr:
				fn, ok := info.Uses[e.Sel].(*types.Func)
				return fn, ok
			}
			return nil, false
		}
		// callPosition reports whether expr is the callee of its parent.
		callPosition := func(expr ast.Expr) (*ast.CallExpr, bool) {
			for i := len(stack) - 1; i >= 0; i-- {
				switch parent := stack[i].(type) {
				case *ast.ParenExpr:
					continue
				case *ast.CallExpr:
					return parent, ast.Unparen(parent.Fun) == expr ||
						parent.Fun == expr
				default:
					return nil, false
				}
			}
			return nil, false
		}

		switch e := node.(type) {
		case *ast.SelectorExpr:
			fn, ok := funcRefAt(e)
			if !ok {
				return true
			}
			call, isCallee := callPosition(e)
			sig, _ := fn.Type().(*types.Signature)
			isIfaceMethod := sig != nil && sig.Recv() != nil &&
				isInterfaceType(sig.Recv().Type())
			switch {
			case isCallee && isIfaceMethod:
				resolveIface(fn, e.Pos())
			case isCallee:
				add(EdgeCall, p.nodeOf(fn), e.Pos())
			default:
				kind := EdgeRef
				if call != nil && isSimContinuationCall(info, call) {
					kind = EdgeContinuation
				} else if call == nil {
					if c, ok := enclosingCall(stack); ok && isSimContinuationCall(info, c) {
						kind = EdgeContinuation
					}
				}
				if isIfaceMethod {
					resolveIface(fn, e.Pos()) // interface method value
				} else {
					add(kind, p.nodeOf(fn), e.Pos())
				}
			}
			// The Sel ident is handled here; skip the X subtree only when
			// it is a bare package/value ident (no nested calls inside).
			return true
		case *ast.Ident:
			// Skip idents that are the Sel of a selector (handled above)
			// or definitions (the function's own name, labels, etc.).
			if len(stack) > 0 {
				if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == e {
					return true
				}
			}
			fn, ok := info.Uses[e].(*types.Func)
			if !ok {
				return true
			}
			if call, isCallee := callPosition(e); isCallee {
				add(EdgeCall, p.nodeOf(fn), e.Pos())
			} else {
				kind := EdgeRef
				if call != nil && isSimContinuationCall(info, call) {
					kind = EdgeContinuation
				} else if c, ok := enclosingCall(stack); ok && isSimContinuationCall(info, c) {
					kind = EdgeContinuation
				}
				add(kind, p.nodeOf(fn), e.Pos())
			}
		}
		return true
	})
}

// enclosingCall returns the nearest CallExpr ancestor, if any.
func enclosingCall(stack []ast.Node) (*ast.CallExpr, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		if c, ok := stack[i].(*ast.CallExpr); ok {
			return c, true
		}
	}
	return nil, false
}

// isInterfaceType reports whether t's underlying type is an interface.
func isInterfaceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// sortEdges orders and dedupes a node's edges: one edge per
// (kind, target), keeping the earliest site, sorted by target then kind.
func sortEdges(n *FuncNode) {
	sort.SliceStable(n.Edges, func(i, j int) bool {
		a, b := n.Edges[i], n.Edges[j]
		if a.To.ID != b.To.ID {
			return a.To.ID < b.To.ID
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Pos < b.Pos
	})
	out := n.Edges[:0]
	for _, e := range n.Edges {
		if len(out) > 0 && out[len(out)-1].To == e.To && out[len(out)-1].Kind == e.Kind {
			continue
		}
		out = append(out, e)
	}
	n.Edges = out
}

// markReachable runs a breadth-first sweep from the roots in sorted
// order, recording for every reachable node the root that first reached
// it. Root order and edge order are both deterministic, so Via is too.
func (p *Program) markReachable() {
	var queue []*FuncNode
	for _, r := range p.Roots {
		if r.Via == nil {
			r.Via = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if e.To.Via == nil {
				e.To.Via = n.Via
				queue = append(queue, e.To)
			}
		}
	}
}

// WriteGraph renders the call graph and the ownership write inventory
// as a deterministic text artifact (the -graph-out debug dump). File
// paths are relativized against base. Byte-identical output across runs
// over identical sources is a tested invariant.
func (p *Program) WriteGraph(w io.Writer, base string) error {
	bw := &errWriter{w: w}
	edges := 0
	for _, n := range p.Nodes {
		edges += len(n.Edges)
	}
	bw.printf("# prosper-lint interprocedural graph v1\n")
	bw.printf("nodes %d edges %d roots %d\n", len(p.Nodes), edges, len(p.Roots))
	bw.printf("\n[roots]\n")
	for _, r := range p.Roots {
		bw.printf("root %s %s:%d reason %q\n", r.ID, rel(base, r.File), r.Line, r.HotReason)
	}
	bw.printf("\n[nodes]\n")
	for _, n := range p.Nodes {
		hot := ""
		if n.Hot() {
			hot = " hot via " + n.Via.ID
		}
		bw.printf("node %s %s:%d%s\n", n.ID, rel(base, n.File), n.Line, hot)
		for _, e := range n.Edges {
			bw.printf("  %s %s :%d\n", e.Kind, e.To.ID, p.Fset.Position(e.Pos).Line)
		}
	}
	bw.printf("\n[ownership]\n")
	for _, row := range p.OwnershipMap() {
		bw.printf("write %s -> %s sites %d %s\n", row.Writer, row.State, row.Sites, row.Status)
	}
	return bw.err
}

// errWriter folds write errors so the dump code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

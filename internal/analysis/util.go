package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// isDeterministicPkg reports whether the import path belongs to the
// sim-deterministic set. Matching is by module-relative suffix so that
// test fixtures loaded under synthetic paths behave like the real
// packages they stand in for.
func isDeterministicPkg(path string) bool {
	for _, det := range DeterministicPackages {
		if path == det || strings.HasSuffix(path, "/"+det) {
			return true
		}
	}
	return false
}

// pkgPathSuffix reports whether path is, or ends with, the
// module-relative package path p (e.g. "internal/runner").
func pkgPathSuffix(path, p string) bool {
	return path == p || strings.HasSuffix(path, "/"+p)
}

// importedPkgOf resolves a selector base expression to the import path
// of the package it names, or "" if the base is not a package
// identifier (e.g. it is a variable).
func importedPkgOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// namedRecv resolves the method receiver behind a selector call and
// returns the receiver's defining package path and type name, or
// ("", "") when sel is not a method selection on a named type.
func namedRecv(info *types.Info, sel *ast.SelectorExpr) (pkgPath, typeName string) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", ""
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Path(), n.Obj().Name()
}

// constString returns the compile-time constant string value of expr,
// if it has one (string literals and named string constants).
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return "", false
	}
	if tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// walkWithStack traverses the AST rooted at root, calling fn with each
// node and the stack of its ancestors (outermost first, not including
// n itself). Returning false skips the node's children.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// No push: Inspect only delivers the nil pop for nodes
			// whose children were visited.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestNewLoaderFindsModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.Module != "prosper" {
		t.Errorf("Module = %q, want %q", l.Module, "prosper")
	}
	if !filepath.IsAbs(l.Root) {
		t.Errorf("Root = %q, want an absolute path", l.Root)
	}
}

func TestLoadPlainDirectoryPattern(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"internal/stats"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "prosper/internal/stats" {
		t.Fatalf("Load(internal/stats) = %+v", pkgs)
	}
	p := pkgs[0]
	if len(p.Files) == 0 || p.Pkg == nil || p.Info == nil {
		t.Error("loaded package is missing syntax or type info")
	}
	for _, name := range p.Names {
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s was loaded; the contract excludes tests", name)
		}
	}
}

func TestLoadEllipsisSkipsTestdata(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("pattern expansion descended into testdata: %s", p.Path)
		}
	}
	if len(pkgs) != 1 || pkgs[0].Path != "prosper/internal/analysis" {
		t.Errorf("Load(internal/analysis/...) = %v", paths)
	}
}

func TestLoadDirCaches(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.LoadDir("testdata/src/wallclock", "prosper/internal/kernel")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.LoadDir("testdata/src/wallclock", "prosper/internal/kernel")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second LoadDir of the same import path did not hit the cache")
	}
}

func TestLoadDirErrors(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir("testdata/no/such/dir", "prosper/internal/nope"); err == nil {
		t.Error("missing directory did not error")
	}
	// The testdata root itself holds no Go files: that is (nil, nil),
	// not an error, so ... expansion can pass over bare directories.
	pkg, err := l.LoadDir("testdata", "prosper/internal/analysis/testdata")
	if err != nil || pkg != nil {
		t.Errorf("empty directory: got (%v, %v), want (nil, nil)", pkg, err)
	}
}

func TestImportResolvesModuleAndStd(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := l.Import("prosper/internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path() != "prosper/internal/stats" {
		t.Errorf("module import resolved to %q", mod.Path())
	}
	std, err := l.Import("sort")
	if err != nil {
		t.Fatal(err)
	}
	if std.Path() != "sort" {
		t.Errorf("std import resolved to %q", std.Path())
	}
}

package analysis

import "fmt"

// HotAlloc turns the PR 6/7/9 zero-allocation invariant into a
// lint-time gate over the whole reachable hot path, instead of the
// three benchmarked round trips pinned by testing.AllocsPerRun. Hot
// entry points declare themselves with
//
//	//prosperlint:hotpath <reason>
//
// and every function reachable from a root through the interprocedural
// call graph (callgraph.go: calls, conservative interface fan-out,
// sim.Thunk/Bind continuations, function-value refs) is swept for
// statically-detectable allocation sites (summary.go): capturing
// closures, interface boxing, append, heap-bound literals, make/new,
// string concatenation, and fmt.* calls.
//
// Sites that are genuinely amortized or cold (free-list refills,
// boot-time growth, error paths that abort the run) carry reasoned
// //prosperlint:ignore directives, so the suppression inventory is the
// documented list of every allocation the hot path is still allowed.
type HotAlloc struct{}

// NewHotAlloc returns the pass.
func NewHotAlloc() *HotAlloc { return &HotAlloc{} }

// Name implements Pass.
func (*HotAlloc) Name() string { return "hotalloc" }

// Doc implements Pass.
func (*HotAlloc) Doc() string {
	return "allocation sites in functions reachable from //prosperlint:hotpath roots"
}

// Run implements Pass. The work is whole-program; see RunProgram.
func (*HotAlloc) Run(pkg *Package, r *Reporter) {}

// RunProgram implements ProgramPass: report every allocation site in
// every hot-reachable function. Nodes are visited in sorted-ID order
// and sites in source order, so findings are deterministic before the
// report's own sort.
func (*HotAlloc) RunProgram(prog *Program, r *Reporter) {
	for _, n := range prog.Nodes {
		if !n.Hot() {
			continue
		}
		for _, a := range n.Allocs {
			r.Report("hotalloc", a.Pos, fmt.Sprintf(
				"%s in hot function %s (via root %s)", a.Desc, n.ID, n.Via.ID))
		}
	}
}

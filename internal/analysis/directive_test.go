package analysis

import (
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func parseDirectives(t *testing.T, src string) []Directive {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("fixture source does not parse: %v", err)
	}
	return ParseDirectives(fset, f, []byte(src))
}

func TestParseDirectives(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []Directive
	}{
		{
			name: "eol targets its own line",
			src: `package p
func f() {
	g() //prosperlint:ignore wallclock host timing
}
`,
			want: []Directive{{
				Verb: "ignore", Line: 3, Target: 3,
				Passes: []string{"wallclock"},
				Reason: "host timing",
			}},
		},
		{
			name: "standalone targets the next line",
			src: `package p
func f() {
	//prosperlint:ignore maprange order independent
	g()
}
`,
			want: []Directive{{
				Verb: "ignore", Line: 3, Target: 4,
				Passes: []string{"maprange"},
				Reason: "order independent",
			}},
		},
		{
			name: "comma list carries every pass",
			src: `package p
func f() {
	g() //prosperlint:ignore maprange,wallclock both are fine here
}
`,
			want: []Directive{{
				Verb: "ignore", Line: 3, Target: 3,
				Passes: []string{"maprange", "wallclock"},
				Reason: "both are fine here",
			}},
		},
		{
			name: "missing reason is an error",
			src: `package p
func f() {
	g() //prosperlint:ignore wallclock
}
`,
			want: []Directive{{
				Verb: "ignore", Line: 3, Target: 3,
				Passes: []string{"wallclock"},
				Err:    "ignore directive is missing a reason: every suppression must say why the finding is safe",
			}},
		},
		{
			name: "missing pass name is an error",
			src: `package p
func f() {
	g() //prosperlint:ignore
}
`,
			want: []Directive{{
				Verb: "ignore", Line: 3, Target: 3,
				Err: "ignore directive is missing a pass name: want //prosperlint:ignore <pass> <reason>",
			}},
		},
		{
			name: "empty element in a comma list is an error",
			src: `package p
func f() {
	g() //prosperlint:ignore ,maprange trailing comma
}
`,
			want: []Directive{{
				Verb: "ignore", Line: 3, Target: 3,
				Err: "ignore directive has an empty pass name in its pass list",
			}},
		},
		{
			name: "unknown verb is an error",
			src: `package p
func f() {
	g() //prosperlint:silence wallclock because reasons
}
`,
			want: []Directive{{
				Verb: "silence", Line: 3, Target: 3,
				Err: `unknown prosperlint directive //prosperlint:silence (only "ignore" and "hotpath" exist)`,
			}},
		},
		{
			name: "hotpath above a func targets the func line",
			src: `package p
//prosperlint:hotpath per-access entry point
func f() {
}
`,
			want: []Directive{{
				Verb: "hotpath", Line: 2, Target: 3,
				Reason: "per-access entry point",
			}},
		},
		{
			name: "hotpath on the func line targets it",
			src: `package p
func f() { //prosperlint:hotpath per-access entry point
}
`,
			want: []Directive{{
				Verb: "hotpath", Line: 2, Target: 2,
				Reason: "per-access entry point",
			}},
		},
		{
			name: "hotpath without a reason is an error",
			src: `package p
//prosperlint:hotpath
func f() {
}
`,
			want: []Directive{{
				Verb: "hotpath", Line: 2, Target: 3,
				Err: "hotpath directive is missing a reason: say why this function is a hot-path root",
			}},
		},
		{
			name: "spaced comment is not a directive",
			src: `package p
func f() {
	g() // prosperlint:ignore wallclock not machine readable
}
`,
			want: nil,
		},
		{
			name: "unrelated comments produce nothing",
			src: `package p
// just a doc comment
func f() {
	g() // trailing prose
}
`,
			want: nil,
		},
		{
			name: "multi word reason survives intact",
			src: `package p
func f() {
	//prosperlint:ignore concurrency unbuffered handoff; deterministic by construction
	g()
}
`,
			want: []Directive{{
				Verb: "ignore", Line: 3, Target: 4,
				Passes: []string{"concurrency"},
				Reason: "unbuffered handoff; deterministic by construction",
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := parseDirectives(t, tc.src)
			// Column positions depend on tab width in the fixture;
			// zero them so cases only assert semantics.
			for i := range got {
				got[i].Col = 0
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("ParseDirectives =\n%+v\nwant\n%+v", got, tc.want)
			}
		})
	}
}

func TestDirectiveMatchesPass(t *testing.T) {
	d := Directive{Verb: "ignore", Passes: []string{"maprange", "wallclock"}}
	for pass, want := range map[string]bool{
		"maprange":    true,
		"wallclock":   true,
		"concurrency": false,
		"":            false,
	} {
		if got := d.matchesPass(pass); got != want {
			t.Errorf("matchesPass(%q) = %v, want %v", pass, got, want)
		}
	}
	// A hotpath directive never suppresses findings, whatever its target
	// line carries.
	h := Directive{Verb: "hotpath", Passes: []string{"maprange"}}
	if h.matchesPass("maprange") {
		t.Error("hotpath directive matched a pass; only ignore directives suppress")
	}
}

func TestDirectiveOnFirstCodeLine(t *testing.T) {
	src := `package p
//prosperlint:ignore wallclock file-leading directive
var t0 = now()

func now() int64 { return 0 }
`
	got := parseDirectives(t, src)
	if len(got) != 1 {
		t.Fatalf("got %d directives, want 1", len(got))
	}
	if got[0].Err != "" || got[0].Target != 3 {
		t.Errorf("directive = %+v, want valid with Target 3", got[0])
	}
	if !strings.Contains(got[0].Reason, "file-leading") {
		t.Errorf("reason = %q", got[0].Reason)
	}
}

package analysis

import "fmt"

// Ownership is the machine-checked shared-state ownership map that
// ROADMAP item 2 (the deterministic parallel engine) requires before
// the event wheel can be sharded: every write site in sim-deterministic
// code is attributed to the component domain that owns the written
// state (domainOf: the package after internal/, which coincides with
// the sim.Component names), and a write that crosses domains must be on
// the documented boundary list below or it is a finding.
//
// The full inventory — same-domain writes included — is rendered by
// Program.OwnershipMap into the -graph-out artifact, byte-identical
// across runs. internal/sim/par will extend the boundary list with its
// vetted cross-shard channels; until then the list is exactly the
// coupling the current single-threaded machine is known to have.
type Ownership struct{}

// NewOwnership returns the pass.
func NewOwnership() *Ownership { return &Ownership{} }

// Name implements Pass.
func (*Ownership) Name() string { return "ownership" }

// Doc implements Pass.
func (*Ownership) Doc() string {
	return "cross-component writes to shared machine state outside the documented boundary list"
}

// Run implements Pass. The work is whole-program; see RunProgram.
func (*Ownership) Run(pkg *Package, r *Reporter) {}

// ownershipBoundary is one sanctioned cross-domain write: writer-domain
// code may write owner-domain state matching State ("Type.Field",
// "var Name", or "*" for the whole domain pair). Every entry needs a
// reason; the table is documentation as much as configuration.
type ownershipBoundary struct {
	Writer string
	Owner  string
	State  string
	Reason string
}

// ownershipBoundaries is the documented boundary list. Keep it sorted
// by (Writer, Owner, State); DESIGN.md §16 explains each coupling.
var ownershipBoundaries = []ownershipBoundary{
	// internal/machine is the documented multi-component package: it
	// assembles cores, caches, TLBs, and devices, and its per-access
	// plumbing legitimately owns vm-layer bookkeeping at access issue
	// time (sim.Component tags machine's call sites by role for the
	// same reason).
	{"machine", "vm", "*", "machine implements the address-translation path: TLB fills and page-table walk state are written at access issue time"},

	// The kernel is the OS model: it owns process lifecycle across every
	// component (context switches poke core state, checkpoints drive
	// persistence mechanisms, faults update address spaces).
	{"kernel", "machine", "*", "the kernel schedules threads onto cores and drives checkpoint quiesce/resume on the machine"},
	{"kernel", "vm", "*", "the kernel's fault handler and process setup own address-space layout"},
	{"kernel", "prosper", "*", "checkpoint epochs reset the prosper tracker's per-epoch state"},
	{"kernel", "persist", "*", "the kernel sequences persistence mechanisms through checkpoint phases"},
	{"kernel", "workload", "*", "the kernel steps workload threads and consumes their operation streams"},

	// Persistence mechanisms replay stores into the memory image and
	// drive the dirty tracker during checkpoint commit.
	{"persist", "mem", "*", "mechanisms persist pages/lines into the NVM domain at commit time"},
	{"persist", "prosper", "*", "mechanisms flush and clear the prosper tracker during commit"},
	{"persist", "vm", "PTE.Flags", "the dirtybit mechanism's checkpoint scan clears hardware dirty bits — the paper's PTE-based tracking interface"},

	// The tracer tap is machine's documented observation interface:
	// Core.Tracer exists to be installed/removed by the trace recorder.
	{"trace", "machine", "Core.Tracer", "Recorder.Attach installs the per-access tap on a core; detach writes nil"},

	// The crash harness and experiment drivers are sim-deterministic
	// orchestration: they construct, perturb, and inspect whole machines
	// by design.
	{"crash", "*", "*", "the crash harness perturbs and inspects machine state to model power failure"},
	{"experiments", "*", "*", "experiment plans assemble and configure whole machines"},
}

// boundaryAllowed reports whether a writer-domain write to owner-domain
// state is on the boundary list.
func boundaryAllowed(writer, owner, state string) bool {
	for _, b := range ownershipBoundaries {
		if b.Writer != writer {
			continue
		}
		if b.Owner != "*" && b.Owner != owner {
			continue
		}
		if b.State == "*" || b.State == state {
			return true
		}
	}
	return false
}

// RunProgram implements ProgramPass: flag cross-domain writes from
// sim-deterministic code that the boundary list does not sanction.
func (*Ownership) RunProgram(prog *Program, r *Reporter) {
	for _, n := range prog.Nodes {
		if !isDeterministicPkg(n.Pkg.Path) {
			continue
		}
		writer := domainOf(n.Pkg.Path)
		for _, w := range n.Writes {
			if w.Owner == writer || boundaryAllowed(writer, w.Owner, w.State) {
				continue
			}
			r.Report("ownership", w.Pos, fmt.Sprintf(
				"%s code writes %s-owned state %s: cross-component write not on the documented boundary list",
				writer, w.Owner, w.State))
		}
	}
}

package analysis

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// fixturePath maps fixture directories to the synthetic import paths
// they are analyzed under: maprange/wallclock/concurrency/directive
// pose as sim-deterministic packages, the statskeys pair as two
// ordinary component packages.
var fixturePath = map[string]string{
	"testdata/src/maprange":  "prosper/internal/mem",
	"testdata/src/wallclock": "prosper/internal/kernel",
	// concurrency uses internal/machine, not internal/sim: the real
	// telemetry package (pulled in by the statskeys fixtures through a
	// shared loader) imports prosper/internal/sim, and a fixture
	// squatting on that path would shadow it.
	"testdata/src/concurrency":    "prosper/internal/machine",
	"testdata/src/directive":      "prosper/internal/vm",
	"testdata/src/statskeys/fixa": "prosper/internal/fixa",
	"testdata/src/statskeys/fixb": "prosper/internal/fixb",
	// The hostprof fixture poses as a non-sanctioned package (cache) so
	// its clock reads are findings; TestWallclockAllowsHostprofPackage
	// re-analyzes it under the real allowlisted path.
	"testdata/src/hostprof": "prosper/internal/cache",
	// The snapshot pass checks any package with SaveSnap/LoadSnap pairs;
	// the synthetic path just has to dodge the real ones.
	"testdata/src/snapshot": "prosper/internal/fixsnap",
	// hotalloc reaches wherever //prosperlint:hotpath roots are declared,
	// so its fixture needs no deterministic-package pose; it imports the
	// real internal/sim to exercise continuation-edge detection.
	"testdata/src/hotalloc": "prosper/internal/fixhot",
	// The ownership pair: fixowner owns the state under a synthetic
	// domain; fixwriter poses as internal/trace (sim-deterministic) so
	// its pokes count as sim-time writes. fixowner must be loaded first
	// so fixwriter's import resolves from the loader cache.
	"testdata/src/ownership/fixowner":  "prosper/internal/fixowner",
	"testdata/src/ownership/fixwriter": "prosper/internal/trace",
}

func loadFixtures(t *testing.T, dirs ...string) (*Loader, []*Package) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path, ok := fixturePath[dir]
		if !ok {
			t.Fatalf("no fixture path registered for %s", dir)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			t.Fatal(err)
		}
		if pkg == nil {
			t.Fatalf("fixture %s is empty", dir)
		}
		pkgs = append(pkgs, pkg)
	}
	return l, pkgs
}

// want is one expected finding parsed from a fixture annotation.
type want struct {
	file string
	line int
	pass string
	sub  string
}

var wantRe = regexp.MustCompile(`want:([a-z]+)\s+"([^"]*)"`)

func collectWants(pkgs []*Package) []want {
	var out []want
	for _, pkg := range pkgs {
		for _, name := range pkg.Names {
			for i, lineText := range strings.Split(string(pkg.Src[name]), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(lineText, -1) {
					out = append(out, want{file: name, line: i + 1, pass: m[1], sub: m[2]})
				}
			}
		}
	}
	return out
}

// checkAgainstWants verifies findings and annotations cover each other:
// every finding must match some want on its (file, line) with the same
// pass and a contained substring, and every want must match at least
// one finding.
func checkAgainstWants(t *testing.T, rep *Report, wants []want) {
	t.Helper()
	matched := make([]bool, len(wants))
	for _, f := range rep.Findings {
		ok := false
		for i, w := range wants {
			if f.File == w.file && f.Line == w.line && f.Pass == w.pass && strings.Contains(f.Message, w.sub) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding %s:%d [%s] %s", f.File, f.Line, f.Pass, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding %s:%d [%s] matching %q", w.file, w.line, w.pass, w.sub)
		}
	}
}

func runFixture(t *testing.T, passes []Pass, dirs ...string) *Report {
	t.Helper()
	l, pkgs := loadFixtures(t, dirs...)
	r := &Runner{Loader: l, Passes: passes}
	return r.Analyze(pkgs)
}

func TestHotAllocPass(t *testing.T) {
	rep := runFixture(t, []Pass{NewHotAlloc()}, "testdata/src/hotalloc")
	_, pkgs := loadFixtures(t, "testdata/src/hotalloc")
	checkAgainstWants(t, rep, collectWants(pkgs))
	if rep.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0 (fixture has no ignore directives)", rep.Suppressed)
	}
}

func TestOwnershipPass(t *testing.T) {
	rep := runFixture(t, []Pass{NewOwnership()},
		"testdata/src/ownership/fixowner", "testdata/src/ownership/fixwriter")
	_, pkgs := loadFixtures(t, "testdata/src/ownership/fixowner", "testdata/src/ownership/fixwriter")
	checkAgainstWants(t, rep, collectWants(pkgs))
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the documented reset-time coupling)", rep.Suppressed)
	}
}

func TestSnapshotPass(t *testing.T) {
	rep := runFixture(t, []Pass{NewSnapshot()}, "testdata/src/snapshot")
	_, pkgs := loadFixtures(t, "testdata/src/snapshot")
	checkAgainstWants(t, rep, collectWants(pkgs))
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the documented cleared-on-load field)", rep.Suppressed)
	}
}

func TestMapRangePass(t *testing.T) {
	rep := runFixture(t, []Pass{NewMapRange()}, "testdata/src/maprange")
	_, pkgs := loadFixtures(t, "testdata/src/maprange")
	checkAgainstWants(t, rep, collectWants(pkgs))
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the documented Schedule site)", rep.Suppressed)
	}
}

func TestWallclockPass(t *testing.T) {
	rep := runFixture(t, []Pass{NewWallclock()}, "testdata/src/wallclock")
	_, pkgs := loadFixtures(t, "testdata/src/wallclock")
	checkAgainstWants(t, rep, collectWants(pkgs))
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the hostBoundary site)", rep.Suppressed)
	}
}

func TestWallclockAllowsHostTimingPackages(t *testing.T) {
	// The same fixture analyzed under an approved host-side path
	// produces nothing: the allowlist is by package, not by file.
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("testdata/src/wallclock", "prosper/internal/runner")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Loader: l, Passes: []Pass{NewWallclock()}}
	rep := r.Analyze([]*Package{pkg})
	if len(rep.Findings) != 0 {
		t.Errorf("wallclock flagged an allowlisted package: %+v", rep.Findings)
	}
}

// TestWallclockFlagsHostprofShapedCode proves the allowlist extension
// for internal/hostprof did not blunt the pass: the very same clock
// code in any non-sanctioned package is still flagged at every site.
func TestWallclockFlagsHostprofShapedCode(t *testing.T) {
	rep := runFixture(t, []Pass{NewWallclock()}, "testdata/src/hostprof")
	_, pkgs := loadFixtures(t, "testdata/src/hostprof")
	wants := collectWants(pkgs)
	if len(wants) == 0 {
		t.Fatal("hostprof fixture carries no want annotations")
	}
	checkAgainstWants(t, rep, wants)
	if rep.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0 (fixture has no ignore directives)", rep.Suppressed)
	}
}

// TestWallclockAllowsHostprofPackage analyzes the same fixture under the
// sanctioned prosper/internal/hostprof path: the package owns the
// profiling clock, so the allowlist admits it without directives.
func TestWallclockAllowsHostprofPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("testdata/src/hostprof", "prosper/internal/hostprof")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Loader: l, Passes: []Pass{NewWallclock()}}
	rep := r.Analyze([]*Package{pkg})
	if len(rep.Findings) != 0 {
		t.Errorf("wallclock flagged the sanctioned hostprof package: %+v", rep.Findings)
	}
}

func TestConcurrencyPass(t *testing.T) {
	rep := runFixture(t, []Pass{NewConcurrency()}, "testdata/src/concurrency")
	_, pkgs := loadFixtures(t, "testdata/src/concurrency")
	checkAgainstWants(t, rep, collectWants(pkgs))
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the handoff channel field)", rep.Suppressed)
	}
}

func TestStatsKeysPass(t *testing.T) {
	rep := runFixture(t, []Pass{NewStatsKeys()},
		"testdata/src/statskeys/fixa", "testdata/src/statskeys/fixb")
	_, pkgs := loadFixtures(t, "testdata/src/statskeys/fixa", "testdata/src/statskeys/fixb")
	checkAgainstWants(t, rep, collectWants(pkgs))
}

func TestStatsKeysSinglePackageNoDuplicate(t *testing.T) {
	// fixa alone: "tlb_hits" has one owner, so only the three shape
	// violations and the bad registry prefix remain.
	rep := runFixture(t, []Pass{NewStatsKeys()}, "testdata/src/statskeys/fixa")
	for _, f := range rep.Findings {
		if strings.Contains(f.Message, "registered by") {
			t.Errorf("single-package registration reported as duplicate: %s", f.Message)
		}
	}
	if len(rep.Findings) != 4 {
		t.Errorf("got %d findings, want 4: %+v", len(rep.Findings), rep.Findings)
	}
}

// TestDirectiveSemantics pins suppression placement and malformed-
// directive reporting end to end. Directive findings land on comment
// lines, which cannot carry a second annotation comment, so the
// expectations are explicit.
func TestDirectiveSemantics(t *testing.T) {
	rep := runFixture(t, []Pass{NewMapRange(), NewWallclock()}, "testdata/src/directive")
	type exp struct {
		line int
		pass string
		sub  string
	}
	file := "testdata/src/directive/directive.go"
	expected := []exp{
		{25, "wallclock", "time.Now"}, // gap: blank line breaks reach
		{30, "directive", `unknown pass "wallclocks"`},
		{31, "wallclock", "time.Now"}, // unknown pass suppresses nothing
		{36, "wallclock", "time.Now"}, // malformed directive suppresses nothing
		{36, "directive", "missing a reason"},
		{41, "wallclock", "time.Now"},
		{41, "directive", "unknown prosperlint directive"},
	}
	var got []exp
	for _, f := range rep.Findings {
		if f.File != file {
			t.Errorf("finding in unexpected file: %+v", f)
			continue
		}
		got = append(got, exp{f.Line, f.Pass, f.Message})
	}
	if len(got) != len(expected) {
		t.Fatalf("got %d findings, want %d:\n%+v", len(got), len(expected), rep.Findings)
	}
	for i, e := range expected {
		g := got[i]
		if g.line != e.line || g.pass != e.pass || !strings.Contains(g.sub, e.sub) {
			t.Errorf("finding %d = %d [%s] %q, want line %d [%s] containing %q",
				i, g.line, g.pass, g.sub, e.line, e.pass, e.sub)
		}
	}
	// eol + preceding + commaList(maprange, wallclock) = 4 suppressions.
	if rep.Suppressed != 4 {
		t.Errorf("suppressed = %d, want 4", rep.Suppressed)
	}
}

// TestSelfClean is the in-repo version of the CI gate: the shipped
// tree, including the analyzer itself, must lint clean.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	r, err := NewRunner(".")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Pass, f.Message)
	}
	if rep.Packages == 0 {
		t.Error("no packages analyzed")
	}
}

// TestPassNamesStable: directives written in source reference these
// names; renaming a pass is a breaking change and must be deliberate.
func TestPassNamesStable(t *testing.T) {
	var names []string
	for _, p := range AllPasses() {
		if p.Doc() == "" {
			t.Errorf("pass %s has no doc line", p.Name())
		}
		names = append(names, p.Name())
	}
	got := strings.Join(names, " ")
	if got != "maprange wallclock concurrency statskeys snapshot hotalloc ownership" {
		t.Errorf("pass suite = %q", got)
	}
	_ = fmt.Sprintf // keep fmt imported for future debugging ease
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Concurrency flags goroutine spawns, channel machinery, and sync/
// sync.atomic primitives outside the approved host-side packages. Each
// simulation run is single-threaded by contract — parallelism lives
// only in the runner's worker pool (one private machine per run) — so
// concurrency inside sim code either races on shared sim state or, at
// best, introduces scheduler-dependent ordering.
//
// The workload package's pull-based generators are the known exception:
// a producer goroutine synchronized through an unbuffered channel is
// deterministic by construction, and its sites carry reasoned ignore
// directives rather than a blanket exemption.
type Concurrency struct{}

// NewConcurrency returns the pass.
func NewConcurrency() *Concurrency { return &Concurrency{} }

// Name implements Pass.
func (*Concurrency) Name() string { return "concurrency" }

// Doc implements Pass.
func (*Concurrency) Doc() string {
	return "goroutines, channels, and sync primitives outside approved host-side code"
}

// concurrencyAllowed own cross-run machinery by design.
var concurrencyAllowed = []string{
	"internal/runner",    // the worker pool itself
	"internal/stats",     // RunLog's mutex (shared progress writer)
	"internal/telemetry", // Trace lane allocation across parallel runs
}

// Run implements Pass.
func (c *Concurrency) Run(pkg *Package, r *Reporter) {
	for _, allowed := range concurrencyAllowed {
		if pkgPathSuffix(pkg.Path, allowed) {
			return
		}
	}
	info := pkg.Info
	isChan := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Chan)
		return ok
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				r.Report("concurrency", n.Pos(), "goroutine spawn: sim code runs single-threaded per run")
			case *ast.SendStmt:
				r.Report("concurrency", n.Pos(), "channel send in sim code")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					r.Report("concurrency", n.Pos(), "channel receive in sim code")
				}
			case *ast.SelectStmt:
				r.Report("concurrency", n.Pos(), "select statement in sim code")
			case *ast.RangeStmt:
				if isChan(n.X) {
					r.Report("concurrency", n.Pos(), "range over a channel in sim code")
				}
			case *ast.ChanType:
				r.Report("concurrency", n.Pos(), "channel type in sim code")
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						r.Report("concurrency", n.Pos(), "close of a channel in sim code")
					}
				}
			case *ast.SelectorExpr:
				switch importedPkgOf(info, n.X) {
				case "sync", "sync/atomic":
					r.Report("concurrency", n.Pos(), fmt.Sprintf(
						"use of %s.%s: sim code needs no locking (single-threaded per run)",
						importedPkgOf(info, n.X), n.Sel.Name))
				}
			}
			return true
		})
	}
}

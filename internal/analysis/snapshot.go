package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// Snapshot is the snapshot-coverage pass: for every type that
// participates in machine snapshotting (it declares both a SaveSnap and
// a LoadSnap method), each struct field mentioned on one side must be
// mentioned on the other. The asymmetries are exactly the bug class the
// resume gate exists for — a field that is saved but never restored
// resumes stale, and a field restored but never saved resumes from
// garbage — and both survive compilation silently.
//
// Mentions are collected transitively through same-receiver helper
// methods (SaveSnap calling k.saveProc counts saveProc's mentions), and
// a field a helper receives as an argument is counted at the call site.
// Fields mentioned on neither side are deliberately out of scope: types
// are full of boot-time wiring (engine pointers, configs, callbacks)
// that snapshots rebuild rather than serialize. A deliberate asymmetry
// (e.g. scratch state cleared on load) takes an ignore directive on the
// field's declaration line, where the reason documents the field for
// every reader.
type Snapshot struct{}

// NewSnapshot returns the pass.
func NewSnapshot() *Snapshot { return &Snapshot{} }

// Name implements Pass.
func (*Snapshot) Name() string { return "snapshot" }

// Doc implements Pass.
func (*Snapshot) Doc() string {
	return "struct fields touched by SaveSnap and LoadSnap must cover each other"
}

// recvTypeName unwraps a method receiver type expression to its named
// type's identifier ("" when it has no plain name).
func recvTypeName(e ast.Expr) string {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// Run implements Pass.
func (s *Snapshot) Run(pkg *Package, r *Reporter) {
	// Index every method declaration by receiver type name.
	methods := make(map[string]map[string]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := recvTypeName(fd.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = make(map[string]*ast.FuncDecl)
			}
			methods[recv][fd.Name.Name] = fd
		}
	}

	recvs := make([]string, 0, len(methods))
	for recv := range methods {
		recvs = append(recvs, recv)
	}
	sort.Strings(recvs)
	for _, recv := range recvs {
		ms := methods[recv]
		if ms["SaveSnap"] == nil || ms["LoadSnap"] == nil {
			continue
		}
		obj := pkg.Pkg.Scope().Lookup(recv)
		if obj == nil {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		saved := mentionClosure(ms, "SaveSnap")
		loaded := mentionClosure(ms, "LoadSnap")
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			name := field.Name()
			switch {
			case saved[name] && !loaded[name]:
				r.Report("snapshot", field.Pos(), fmt.Sprintf(
					"field %s.%s is mentioned by SaveSnap but not LoadSnap: a resumed machine never restores it", recv, name))
			case loaded[name] && !saved[name]:
				r.Report("snapshot", field.Pos(), fmt.Sprintf(
					"field %s.%s is mentioned by LoadSnap but not SaveSnap: it is restored from state no snapshot carries", recv, name))
			}
		}
	}
}

// mentionClosure collects every selector name mentioned in the given
// method and, transitively, in every same-receiver method it calls.
func mentionClosure(methods map[string]*ast.FuncDecl, root string) map[string]bool {
	out := make(map[string]bool)
	visited := make(map[string]bool)
	var walk func(name string)
	walk = func(name string) {
		fd := methods[name]
		if fd == nil || fd.Body == nil || visited[name] {
			return
		}
		visited[name] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				out[n.Sel.Name] = true
			case *ast.CallExpr:
				switch fun := n.Fun.(type) {
				case *ast.SelectorExpr:
					if _, ok := methods[fun.Sel.Name]; ok {
						walk(fun.Sel.Name)
					}
				case *ast.Ident:
					if _, ok := methods[fun.Name]; ok {
						walk(fun.Name)
					}
				}
			}
			return true
		})
	}
	walk(root)
	return out
}

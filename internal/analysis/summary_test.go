package analysis

import (
	"go/types"
	"testing"
)

func TestDomainOf(t *testing.T) {
	for path, want := range map[string]string{
		"prosper/internal/cache":        "cache",
		"prosper/internal/sim/par":      "sim",
		"prosper/internal/mem":          "mem",
		"example.com/other/internal/vm": "vm",
		"prosper":                       "prosper",
		"some/plain/pkg":                "pkg",
		"pkg":                           "pkg",
	} {
		if got := domainOf(path); got != want {
			t.Errorf("domainOf(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestModuleQualifier(t *testing.T) {
	q := moduleQualifier("prosper")
	for path, want := range map[string]string{
		"prosper/internal/cache": "internal/cache",
		"prosper":                "x", // module root renders by package name
		"fmt":                    "fmt",
	} {
		if got := q(types.NewPackage(path, "x")); got != want {
			t.Errorf("qualifier(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestKindNames(t *testing.T) {
	allocWants := map[AllocKind]string{
		AllocClosure: "closure", AllocBox: "box", AllocAppend: "append",
		AllocLit: "lit", AllocMake: "make", AllocConcat: "concat", AllocFmt: "fmt",
	}
	for k, want := range allocWants {
		if k.String() != want {
			t.Errorf("AllocKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	edgeWants := map[EdgeKind]string{
		EdgeCall: "call", EdgeIface: "iface",
		EdgeContinuation: "continuation", EdgeRef: "ref",
	}
	for k, want := range edgeWants {
		if k.String() != want {
			t.Errorf("EdgeKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestQuoteList(t *testing.T) {
	for _, tc := range []struct {
		in   []string
		want string
	}{
		{[]string{"a"}, `"a"`},
		{[]string{"a", "b", "c"}, `"a", "b", "c"`},
		{[]string{"a", "b", "c", "d", "e"}, `"a", "b", "c", (+2 more)`},
	} {
		if got := quoteList(tc.in); got != tc.want {
			t.Errorf("quoteList(%v) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

// The per-package Run hooks of the interprocedural passes are
// intentionally empty (all work happens in RunProgram); pin that they
// stay no-ops so nothing double-reports.
func TestProgramPassRunIsNoOp(t *testing.T) {
	r := &Reporter{}
	NewHotAlloc().Run(nil, r)
	NewOwnership().Run(nil, r)
	if len(r.findings) != 0 {
		t.Errorf("per-package Run produced findings: %+v", r.findings)
	}
}

package analysis

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenJSON runs the full pass suite over every fixture package in
// one Analyze call and pins the -json rendering byte for byte. This is
// the contract CI archives: stable field names, sorted findings,
// forward-slash relative paths, trailing newline.
func TestGoldenJSON(t *testing.T) {
	dirs := []string{
		"testdata/src/concurrency",
		"testdata/src/directive",
		"testdata/src/hotalloc",
		"testdata/src/maprange",
		// fixowner must precede fixwriter: the writer's import resolves
		// from the loader cache.
		"testdata/src/ownership/fixowner",
		"testdata/src/ownership/fixwriter",
		"testdata/src/snapshot",
		"testdata/src/statskeys/fixa",
		"testdata/src/statskeys/fixb",
		"testdata/src/wallclock",
	}
	l, pkgs := loadFixtures(t, dirs...)
	r := &Runner{Loader: l, Passes: AllPasses()}
	rep := r.Analyze(pkgs)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf, filepath.Join("testdata", "src")); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden", "report.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON report drifted from %s (run with -update if intended)\n--- got ---\n%s", golden, buf.Bytes())
	}
}

// TestGoldenText pins the human-readable rendering's shape on the same
// fixture sweep: one finding per line plus the summary.
func TestGoldenText(t *testing.T) {
	l, pkgs := loadFixtures(t, "testdata/src/wallclock")
	r := &Runner{Loader: l, Passes: []Pass{NewWallclock()}}
	rep := r.Analyze(pkgs)

	var buf bytes.Buffer
	rep.WriteText(&buf, filepath.Join("testdata", "src", "wallclock"))
	got := buf.String()
	want := "" +
		"wallclock.go:15:11: [wallclock] time.Now reads the host clock: sim code must use sim.Time/Engine cycles (host-side timing needs an ignore directive)\n" +
		"wallclock.go:17:15: [wallclock] time.Since reads the host clock: sim code must use sim.Time/Engine cycles (host-side timing needs an ignore directive)\n" +
		"wallclock.go:22:9: [wallclock] rand.Intn uses the process-global random source: use a seeded sim.Rand or rand.New(rand.NewSource(seed))\n" +
		"prosper-lint: 3 finding(s) in 1 package(s), 1 suppressed\n"
	if got != want {
		t.Errorf("text rendering drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

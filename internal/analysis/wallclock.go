package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Wallclock flags host time sources and the global math/rand source.
// Simulated time is sim.Time advanced by the Engine, and every
// simulated component owns a seeded sim.Rand: reading the host clock or
// the process-global RNG from sim code makes runs irreproducible.
//
// The pass scans every package except the approved host-side timing
// owners (internal/runner's executor and internal/stats' RunLog). Host
// tools like cmd/prosper-bench legitimately measure wall time, but they
// must say so with a //prosperlint:ignore directive: the sim/host time
// boundary is documented, never silent.
type Wallclock struct{}

// NewWallclock returns the pass.
func NewWallclock() *Wallclock { return &Wallclock{} }

// Name implements Pass.
func (*Wallclock) Name() string { return "wallclock" }

// Doc implements Pass.
func (*Wallclock) Doc() string {
	return "host wall-clock reads and global math/rand outside approved host-side code"
}

// wallclockAllowed are the packages whose whole job is host-side
// timing; everything else needs a per-site directive.
var wallclockAllowed = []string{
	"internal/runner",   // executor wall-time per run (host metric)
	"internal/stats",    // RunLog progress timestamps (host metric)
	"internal/hostprof", // owns the monotonic clock for host profiling (sim.Profile's injected clock)
}

// bannedTime are the time-package functions that read or schedule by
// the host clock. Duration arithmetic and constants stay legal.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededRandCtors construct explicitly seeded sources and are therefore
// fine anywhere; every other math/rand function uses the global source.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Run implements Pass.
func (w *Wallclock) Run(pkg *Package, r *Reporter) {
	for _, allowed := range wallclockAllowed {
		if pkgPathSuffix(pkg.Path, allowed) {
			return
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch importedPkgOf(pkg.Info, sel.X) {
			case "time":
				if bannedTime[sel.Sel.Name] {
					r.Report("wallclock", sel.Pos(), fmt.Sprintf(
						"time.%s reads the host clock: sim code must use sim.Time/Engine cycles (host-side timing needs an ignore directive)",
						sel.Sel.Name))
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func); isFunc && !seededRandCtors[sel.Sel.Name] {
					r.Report("wallclock", sel.Pos(), fmt.Sprintf(
						"rand.%s uses the process-global random source: use a seeded sim.Rand or rand.New(rand.NewSource(seed))",
						sel.Sel.Name))
				}
			}
			return true
		})
	}
}

// Package telemetry is the sim-time observability layer of the
// simulator: a deterministic tracer that records spans, instant events,
// and counter samples keyed by engine cycles (never wall clock), plus a
// hierarchical metrics registry (registry.go) that adopts the
// per-component stats.Counters under stable dotted names.
//
// Traces serialize to the Chrome trace-event JSON format, which
// ui.perfetto.dev loads directly. Timestamps are emitted in raw engine
// cycles (the viewer labels them as microseconds; at the simulated 3 GHz
// one displayed "us" is one cycle, i.e. 1/3 ns — see DESIGN.md §8).
//
// Everything is nil-safe: a nil *Trace hands out nil *Tracers, and every
// Tracer/Span method no-ops on a nil receiver, so instrumented code runs
// with zero overhead when telemetry is disabled (a single pointer test
// on the hot paths; see BenchmarkNilTracer*).
//
// Determinism: each simulation run owns one Tracer, recorded into only
// from that run's single-threaded event engine; the parent Trace emits
// tracers in creation order (plan order, not completion order), so the
// serialized bytes are identical for any worker count.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"

	"prosper/internal/sim"
)

// Arg is one key/value attribute attached to a span or instant event.
type Arg struct {
	Key   string
	val   int64
	str   string
	isStr bool
}

// I builds an integer-valued attribute.
func I(key string, v int64) Arg { return Arg{Key: key, val: v} }

// U builds an integer attribute from an unsigned counter value.
func U(key string, v uint64) Arg { return Arg{Key: key, val: int64(v)} }

// S builds a string-valued attribute.
func S(key, v string) Arg { return Arg{Key: key, str: v, isStr: true} }

// Track is one named horizontal lane inside a run's trace (a "thread" in
// Chrome trace terms). The zero value is valid and names the run's
// default lane.
type Track struct{ tid int }

// event is one recorded trace event. ph follows the Chrome trace-event
// phase codes: 'X' complete span, 'i' instant, 'C' counter, 'M' metadata,
// and 's'/'t'/'f' flow start/step/finish (id carries the flow identity).
type event struct {
	ph   byte
	tid  int
	name string
	ts   sim.Time
	dur  sim.Time
	id   uint64
	args []Arg
}

// metricsSnap is one registry snapshot at a sim timestamp.
type metricsSnap struct {
	cycle  sim.Time
	names  []string
	values []uint64
}

// Tracer records one simulation run's telemetry. It is not safe for
// concurrent use — by construction a run's tracer is only touched from
// that run's single-threaded sim engine, which is what keeps event order
// deterministic.
type Tracer struct {
	pid     int
	name    string
	eng     *sim.Engine
	nextTID int
	events  []event
	snaps   []metricsSnap
}

// Enabled reports whether the tracer actually records (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Bind attaches the engine whose clock timestamps every event. The
// kernel calls it at boot; events recorded before Bind stamp cycle 0.
func (t *Tracer) Bind(eng *sim.Engine) {
	if t == nil {
		return
	}
	t.eng = eng
}

func (t *Tracer) now() sim.Time {
	if t.eng == nil {
		return 0
	}
	return t.eng.Now()
}

// Track allocates a named lane and emits its thread_name metadata.
func (t *Tracer) Track(name string) Track {
	if t == nil {
		return Track{}
	}
	t.nextTID++
	tid := t.nextTID
	t.events = append(t.events, event{ph: 'M', name: "thread_name", tid: tid, args: []Arg{S("name", name)}})
	return Track{tid: tid}
}

// Span is an in-progress interval opened by Begin. The zero value (from
// a nil tracer) is valid and End on it is a no-op.
type Span struct {
	t     *Tracer
	track Track
	name  string
	start sim.Time
}

// Begin opens a span on the track at the current sim time.
func (t *Tracer) Begin(track Track, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, track: track, name: name, start: t.now()}
}

// End closes the span at the current sim time, attaching args.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.events = append(s.t.events, event{
		ph: 'X', tid: s.track.tid, name: s.name,
		ts: s.start, dur: s.t.now() - s.start, args: args,
	})
}

// SpanAt records a complete span with an explicit start and duration
// instead of the engine clock. Post-hoc exporters (internal/journey)
// use it to serialize spans whose cycles were recorded during the run.
func (t *Tracer) SpanAt(track Track, name string, start, dur sim.Time, args ...Arg) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.events = append(t.events, event{
		ph: 'X', tid: track.tid, name: name, ts: start, dur: dur, args: args,
	})
}

// FlowStart opens a flow arrow (Chrome phase 's') with identity id at an
// explicit timestamp. Perfetto draws an arrow from here through every
// FlowStep with the same id to the matching FlowEnd, linking related
// spans across tracks; the (ts, track) pair should sit inside the span
// the arrow departs from.
func (t *Tracer) FlowStart(track Track, name string, id uint64, ts sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{ph: 's', tid: track.tid, name: name, ts: ts, id: id})
}

// FlowStep continues flow id through an intermediate span ('t').
func (t *Tracer) FlowStep(track Track, name string, id uint64, ts sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{ph: 't', tid: track.tid, name: name, ts: ts, id: id})
}

// FlowEnd terminates flow id ('f'). Emitted with binding point "e"
// (enclosing slice) so the arrowhead attaches to the span containing
// the timestamp, per the trace-event spec.
func (t *Tracer) FlowEnd(track Track, name string, id uint64, ts sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{ph: 'f', tid: track.tid, name: name, ts: ts, id: id})
}

// Instant records a point event on the track.
func (t *Tracer) Instant(track Track, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{ph: 'i', tid: track.tid, name: name, ts: t.now(), args: args}) //prosperlint:ignore hotalloc tracing only: the event buffer exists only when a trace sink is attached
}

// Counter records one sample of a counter-track series; Perfetto renders
// successive samples of the same name as a stepped area chart.
func (t *Tracer) Counter(track Track, name, series string, v int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{ph: 'C', tid: track.tid, name: name, ts: t.now(), args: []Arg{I(series, v)}})
}

// CounterProbe describes one occupancy series to sample periodically:
// Get is polled at every sampling tick and must only read state.
type CounterProbe struct {
	Track  Track
	Name   string // counter-track name, e.g. "nvm.queue"
	Series string // series key inside the track, e.g. "writes"
	Get    func() int64
}

// Sample records one sample from every probe at the current sim time.
func (t *Tracer) Sample(probes []CounterProbe) {
	if t == nil {
		return
	}
	for _, p := range probes {
		t.Counter(p.Track, p.Name, p.Series, p.Get())
	}
}

// SnapshotMetrics captures the registry's full current state, stamped
// with the current sim time, for WriteMetricsJSONL.
func (t *Tracer) SnapshotMetrics(r *Registry) {
	if t == nil || r == nil {
		return
	}
	names, values := r.Snapshot()
	t.snaps = append(t.snaps, metricsSnap{cycle: t.now(), names: names, values: values})
}

// Events returns how many trace events the tracer holds (tests).
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Snapshots returns how many metrics snapshots the tracer holds (tests).
func (t *Tracer) Snapshots() int {
	if t == nil {
		return 0
	}
	return len(t.snaps)
}

// Trace is the top-level collection: one Tracer per simulation run, each
// rendered as its own process lane ("pid") in Perfetto. NewTracer is
// safe for concurrent use; recording into a Tracer is single-run-local.
type Trace struct {
	mu      sync.Mutex
	tracers []*Tracer
}

// NewTrace returns an empty trace collection.
func NewTrace() *Trace { return &Trace{} }

// NewTracer allocates the next run lane. Lanes are numbered in call
// order, so callers creating tracers in plan order get plan-ordered
// output regardless of run interleaving. A nil Trace returns a nil
// (disabled) Tracer.
func (tr *Trace) NewTracer(name string) *Tracer {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t := &Tracer{pid: len(tr.tracers) + 1, name: name}
	t.events = append(t.events, event{ph: 'M', name: "process_name", args: []Arg{S("name", name)}})
	tr.tracers = append(tr.tracers, t)
	return t
}

// WriteJSON serializes the whole trace as Chrome trace-event JSON
// (ui.perfetto.dev opens it directly). Output is byte-deterministic:
// tracers in creation order, each tracer's events in record order.
func (tr *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	for _, t := range tr.tracers {
		for i := range t.events {
			writeEvent(bw, t.pid, &t.events[i], &first)
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func writeEvent(bw *bufio.Writer, pid int, e *event, first *bool) {
	if *first {
		bw.WriteString("\n")
		*first = false
	} else {
		bw.WriteString(",\n")
	}
	fmt.Fprintf(bw, `{"name":%s,"ph":"%c","pid":%d,"tid":%d`, strconv.Quote(e.name), e.ph, pid, e.tid)
	switch e.ph {
	case 'X':
		fmt.Fprintf(bw, `,"ts":%d,"dur":%d`, e.ts, e.dur)
	case 'i':
		// Scope "t": the instant marker spans its thread lane only.
		fmt.Fprintf(bw, `,"ts":%d,"s":"t"`, e.ts)
	case 'C':
		fmt.Fprintf(bw, `,"ts":%d`, e.ts)
	case 's', 't':
		fmt.Fprintf(bw, `,"ts":%d,"id":%d`, e.ts, e.id)
	case 'f':
		fmt.Fprintf(bw, `,"ts":%d,"id":%d,"bp":"e"`, e.ts, e.id)
	}
	if len(e.args) > 0 {
		bw.WriteString(`,"args":{`)
		for i, a := range e.args {
			if i > 0 {
				bw.WriteString(",")
			}
			bw.WriteString(strconv.Quote(a.Key))
			bw.WriteString(":")
			if a.isStr {
				bw.WriteString(strconv.Quote(a.str))
			} else {
				fmt.Fprintf(bw, "%d", a.val)
			}
		}
		bw.WriteString("}")
	}
	bw.WriteString("}")
}

// WriteMetricsJSONL serializes every tracer's periodic registry
// snapshots as JSON lines: {"run":...,"cycle":...,"metrics":{...}}.
// Like WriteJSON the output is byte-deterministic in plan order.
func (tr *Trace) WriteMetricsJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range tr.tracers {
		for _, s := range t.snaps {
			fmt.Fprintf(bw, `{"run":%s,"cycle":%d,"metrics":{`, strconv.Quote(t.name), s.cycle)
			for i, n := range s.names {
				if i > 0 {
					bw.WriteString(",")
				}
				fmt.Fprintf(bw, "%s:%d", strconv.Quote(n), s.values[i])
			}
			bw.WriteString("}}\n")
		}
	}
	return bw.Flush()
}

package telemetry

import (
	"testing"

	"prosper/internal/sim"
)

// The nil-tracer benchmarks pin the disabled fast path: with telemetry
// off, every Tracer call must be a branch on a nil receiver and nothing
// else — no allocation, no time lookup. CI runs these with -benchtime=1x
// as a smoke test that the path stays alive and alloc-free.

func BenchmarkNilTracerSpan(b *testing.B) {
	var tc *Tracer
	track := tc.Track("lane")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tc.Begin(track, "checkpoint")
		sp.End()
	}
}

func BenchmarkNilTracerInstant(b *testing.B) {
	var tc *Tracer
	track := tc.Track("lane")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc.Instant(track, "flush")
	}
}

func BenchmarkNilTracerCounter(b *testing.B) {
	var tc *Tracer
	track := tc.Track("lane")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc.Counter(track, "nvm.write_queue", "depth", int64(i))
	}
}

// BenchmarkEnabledTracerSpan is the comparison point: the live path is
// expected to cost an append; the nil path must cost ~nothing.
func BenchmarkEnabledTracerSpan(b *testing.B) {
	tr := NewTrace()
	tc := tr.NewTracer("bench")
	tc.Bind(sim.NewEngine())
	track := tc.Track("lane")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tc.Begin(track, "checkpoint")
		sp.End()
	}
}

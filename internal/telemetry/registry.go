package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"prosper/internal/stats"
)

// Registry is a hierarchical metrics namespace: it adopts existing
// per-component stats.Counters (and computed gauges via RegisterFunc)
// under stable dotted prefixes, preserving registration order between
// groups and sorting names inside each counter group — exactly the
// ordering contract kernel.DumpStats has always printed.
//
// A Registry is built once at kernel boot and only read afterwards; it
// is not safe for concurrent mutation.
type Registry struct {
	groups []group
}

type group struct {
	prefix string
	c      *stats.Counters
	h      *stats.Histograms
	fn     func(emit func(name string, v uint64))
}

// histoScalars are the summary statistics expanded from every histogram,
// in the fixed order they are emitted under "<name>.<scalar>". All of
// them are integers so the serialized output stays byte-deterministic.
var histoScalars = []struct {
	suffix string
	value  func(h *stats.Histogram) uint64
}{
	{"count", (*stats.Histogram).Count},
	{"sum", (*stats.Histogram).Sum},
	{"min", (*stats.Histogram).Min},
	{"max", (*stats.Histogram).Max},
	{"p50", func(h *stats.Histogram) uint64 { return h.Quantile(0.50) }},
	{"p95", func(h *stats.Histogram) uint64 { return h.Quantile(0.95) }},
	{"p99", func(h *stats.Histogram) uint64 { return h.Quantile(0.99) }},
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adopts a counter set under the prefix; its counters appear as
// "prefix.<name>" in sorted name order. An empty prefix adopts the
// counters under their own (already-qualified) names. A nil counter set
// is ignored.
func (r *Registry) Register(prefix string, c *stats.Counters) {
	if c == nil {
		return
	}
	r.groups = append(r.groups, group{prefix: prefix, c: c})
}

// RegisterHistograms adopts a histogram set under the prefix. Each
// histogram expands to fixed integer summary scalars —
// "prefix.<name>.count/sum/min/max/p50/p95/p99" — in sorted histogram
// name order, so DumpStats and DumpStatsJSON stay byte-deterministic.
// A nil set is ignored.
func (r *Registry) RegisterHistograms(prefix string, h *stats.Histograms) {
	if h == nil {
		return
	}
	r.groups = append(r.groups, group{prefix: prefix, h: h})
}

// RegisterFunc adopts a computed group: fn is invoked at read time and
// emits (name, value) pairs in its own (stable) order, each prefixed
// with "prefix.". Used for per-process scalar stats that are not
// Counters (checkpoint counts, per-thread user cycles).
func (r *Registry) RegisterFunc(prefix string, fn func(emit func(name string, v uint64))) {
	if fn == nil {
		return
	}
	r.groups = append(r.groups, group{prefix: prefix, fn: fn})
}

// Each visits every metric as a fully-qualified dotted name, in the
// registry's stable order.
func (r *Registry) Each(emit func(name string, v uint64)) {
	for _, g := range r.groups {
		prefix := ""
		if g.prefix != "" {
			prefix = g.prefix + "."
		}
		switch {
		case g.c != nil:
			names := g.c.Names()
			sort.Strings(names)
			for _, n := range names {
				emit(prefix+n, g.c.Get(n))
			}
		case g.h != nil:
			names := g.h.Names()
			sort.Strings(names)
			for _, n := range names {
				h := g.h.Get(n)
				for _, s := range histoScalars {
					emit(prefix+n+"."+s.suffix, s.value(h))
				}
			}
		default:
			g.fn(func(n string, v uint64) { emit(prefix+n, v) })
		}
	}
}

// Snapshot captures every metric's current name and value, in Each
// order.
func (r *Registry) Snapshot() (names []string, values []uint64) {
	r.Each(func(n string, v uint64) {
		names = append(names, n)
		values = append(values, v)
	})
	return names, values
}

// WriteText renders "name value" lines in Each order — the DumpStats
// text format.
func (r *Registry) WriteText(w io.Writer) {
	bw := bufio.NewWriter(w)
	r.Each(func(n string, v uint64) {
		fmt.Fprintf(bw, "%s %d\n", n, v)
	})
	bw.Flush()
}

// WriteJSON renders one flat JSON object with keys in Each order (the
// serializer is hand-rolled so key order — and therefore the bytes —
// stay deterministic).
func (r *Registry) WriteJSON(w io.Writer, extra func(emit func(name string, v uint64))) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{")
	first := true
	emit := func(n string, v uint64) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		fmt.Fprintf(bw, "\n%s:%d", strconv.Quote(n), v)
	}
	r.Each(emit)
	if extra != nil {
		extra(emit)
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"prosper/internal/sim"
	"prosper/internal/stats"
)

// TestNilTracerSafe pins the disabled fast path: every operation on a
// nil Trace/Tracer/zero Span is a no-op, never a panic.
func TestNilTracerSafe(t *testing.T) {
	var tr *Trace
	tc := tr.NewTracer("x")
	if tc != nil {
		t.Fatal("nil Trace handed out a live Tracer")
	}
	if tc.Enabled() {
		t.Fatal("nil tracer claims to be enabled")
	}
	tc.Bind(sim.NewEngine())
	track := tc.Track("lane")
	sp := tc.Begin(track, "span")
	sp.End(I("k", 1))
	tc.Instant(track, "i", S("s", "v"))
	tc.Counter(track, "c", "depth", 7)
	tc.Sample([]CounterProbe{{Track: track, Name: "n", Series: "s", Get: func() int64 { return 1 }}})
	tc.SnapshotMetrics(NewRegistry())
	if tc.Events() != 0 || tc.Snapshots() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	var zero Span
	zero.End()
}

// TestTraceJSONGolden pins the exact serialized bytes of a small
// hand-built trace: the Chrome trace-event structure, phase codes,
// cycle timestamps, and arg ordering.
func TestTraceJSONGolden(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTrace()
	tc := tr.NewTracer("run-a")
	tc.Bind(eng)
	track := tc.Track("ckpt")

	eng.RunUntil(100)
	sp := tc.Begin(track, "checkpoint")
	eng.RunUntil(250)
	tc.Instant(track, "flush", I("live_entries", 3))
	sp.End(U("bytes", 4096), S("phase", "commit"))
	tc.Counter(track, "nvm.write_queue", "depth", 12)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"run-a"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"ckpt"}},
{"name":"flush","ph":"i","pid":1,"tid":1,"ts":250,"s":"t","args":{"live_entries":3}},
{"name":"checkpoint","ph":"X","pid":1,"tid":1,"ts":100,"dur":150,"args":{"bytes":4096,"phase":"commit"}},
{"name":"nvm.write_queue","ph":"C","pid":1,"tid":1,"ts":250,"args":{"depth":12}}
]}
`
	if buf.String() != want {
		t.Fatalf("serialized trace differs:\n got: %s\nwant: %s", buf.String(), want)
	}

	// The golden bytes must also be JSON a standard parser accepts.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("golden trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 5 {
		t.Fatalf("parsed %d events, want 5", len(parsed.TraceEvents))
	}
}

// TestTracerLaneOrder pins that lanes are numbered in NewTracer call
// order, independent of which tracer records first.
func TestTracerLaneOrder(t *testing.T) {
	tr := NewTrace()
	a := tr.NewTracer("a")
	b := tr.NewTracer("b")
	eng := sim.NewEngine()
	b.Bind(eng)
	a.Bind(eng)
	b.Instant(b.Track("x"), "later-lane-first")
	a.Instant(a.Track("y"), "earlier-lane-second")

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia := strings.Index(out, `"earlier-lane-second"`)
	ib := strings.Index(out, `"later-lane-first"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("tracer a's events must precede tracer b's:\n%s", out)
	}
}

func TestRegistryOrderingAndSnapshot(t *testing.T) {
	c1 := stats.NewCounters()
	c1.Add("zeta", 3)
	c1.Add("alpha", 1)
	c2 := stats.NewCounters()
	c2.Add("beta", 2)

	r := NewRegistry()
	r.Register("dev", c1)
	r.Register("skip", nil) // ignored
	r.RegisterFunc("proc", func(emit func(string, uint64)) {
		emit("checkpoints", 9)
		emit("thread0.user_ops", 42)
	})
	r.Register("cache", c2)

	names, values := r.Snapshot()
	wantNames := []string{"dev.alpha", "dev.zeta", "proc.checkpoints", "proc.thread0.user_ops", "cache.beta"}
	wantValues := []uint64{1, 3, 9, 42, 2}
	if len(names) != len(wantNames) {
		t.Fatalf("snapshot has %d entries, want %d: %v", len(names), len(wantNames), names)
	}
	for i := range wantNames {
		if names[i] != wantNames[i] || values[i] != wantValues[i] {
			t.Fatalf("entry %d = %s=%d, want %s=%d", i, names[i], values[i], wantNames[i], wantValues[i])
		}
	}

	var text bytes.Buffer
	r.WriteText(&text)
	want := "dev.alpha 1\ndev.zeta 3\nproc.checkpoints 9\nproc.thread0.user_ops 42\ncache.beta 2\n"
	if text.String() != want {
		t.Fatalf("text dump:\n%s\nwant:\n%s", text.String(), want)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js, func(emit func(string, uint64)) { emit("sim.cycles", 77) }); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]uint64
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatalf("registry JSON invalid: %v\n%s", err, js.String())
	}
	if parsed["dev.zeta"] != 3 || parsed["sim.cycles"] != 77 {
		t.Fatalf("registry JSON lost values: %v", parsed)
	}
	// Key order in the raw bytes must match Each order (insertion order).
	raw := js.String()
	if strings.Index(raw, `"dev.alpha"`) > strings.Index(raw, `"dev.zeta"`) ||
		strings.Index(raw, `"cache.beta"`) > strings.Index(raw, `"sim.cycles"`) {
		t.Fatalf("registry JSON key order not preserved:\n%s", raw)
	}
}

func TestMetricsJSONL(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTrace()
	tc := tr.NewTracer("m-run")
	tc.Bind(eng)

	c := stats.NewCounters()
	r := NewRegistry()
	r.Register("dev", c)

	c.Add("ops", 1)
	eng.RunUntil(10)
	tc.SnapshotMetrics(r)
	c.Add("ops", 4)
	eng.RunUntil(20)
	tc.SnapshotMetrics(r)

	var buf bytes.Buffer
	if err := tr.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	type snap struct {
		Run     string            `json:"run"`
		Cycle   int64             `json:"cycle"`
		Metrics map[string]uint64 `json:"metrics"`
	}
	var s0, s1 snap
	if err := json.Unmarshal([]byte(lines[0]), &s0); err != nil {
		t.Fatalf("line 0 invalid JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &s1); err != nil {
		t.Fatalf("line 1 invalid JSON: %v", err)
	}
	if s0.Run != "m-run" || s0.Cycle != 10 || s0.Metrics["dev.ops"] != 1 {
		t.Fatalf("snapshot 0 wrong: %+v", s0)
	}
	if s1.Cycle != 20 || s1.Metrics["dev.ops"] != 5 {
		t.Fatalf("snapshot 1 wrong: %+v", s1)
	}
}

// TestCounterProbeSampling checks Sample polls every probe exactly once
// at the current sim time.
func TestCounterProbeSampling(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTrace()
	tc := tr.NewTracer("probe-run")
	tc.Bind(eng)
	track := tc.Track("memory")
	depth := int64(0)
	probes := []CounterProbe{
		{Track: track, Name: "nvm.write_queue", Series: "depth", Get: func() int64 { return depth }},
		{Track: track, Name: "tracker0.table", Series: "occupancy", Get: func() int64 { return 16 }},
	}
	depth = 5
	eng.RunUntil(30)
	tc.Sample(probes)
	// 1 process_name + 1 thread_name + 2 counter samples
	if tc.Events() != 4 {
		t.Fatalf("recorded %d events, want 4", tc.Events())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`{"name":"nvm.write_queue","ph":"C","pid":1,"tid":1,"ts":30,"args":{"depth":5}}`,
		`{"name":"tracker0.table","ph":"C","pid":1,"tid":1,"ts":30,"args":{"occupancy":16}}`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("trace missing %s:\n%s", want, buf.String())
		}
	}
}

// TestRegistryHistograms pins the deterministic expansion of histogram
// groups: sorted histogram names, each expanded to the fixed scalar
// suffix order count/sum/min/max/p50/p95/p99, interleaved with other
// groups in registration order, in both WriteText and WriteJSON.
func TestRegistryHistograms(t *testing.T) {
	hs := stats.NewHistograms()
	lat := hs.New("z_latency")
	hs.New("a_wait") // registered later than z_latency, sorts first
	for i := 0; i < 10; i++ {
		lat.Observe(10)
	}
	lat.Observe(100)

	c := stats.NewCounters()
	c.Add("ops", 7)

	r := NewRegistry()
	r.Register("dev", c)
	r.RegisterHistograms("dev", hs)
	r.RegisterHistograms("skip", nil) // ignored

	var text bytes.Buffer
	r.WriteText(&text)
	want := "dev.ops 7\n" +
		"dev.a_wait.count 0\ndev.a_wait.sum 0\ndev.a_wait.min 0\ndev.a_wait.max 0\n" +
		"dev.a_wait.p50 0\ndev.a_wait.p95 0\ndev.a_wait.p99 0\n" +
		"dev.z_latency.count 11\ndev.z_latency.sum 200\ndev.z_latency.min 10\ndev.z_latency.max 100\n" +
		"dev.z_latency.p50 15\ndev.z_latency.p95 100\ndev.z_latency.p99 100\n"
	if text.String() != want {
		t.Fatalf("histogram text dump:\n%s\nwant:\n%s", text.String(), want)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js, nil); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]uint64
	if err := json.Unmarshal(js.Bytes(), &parsed); err != nil {
		t.Fatalf("histogram JSON invalid: %v\n%s", err, js.String())
	}
	if parsed["dev.z_latency.p50"] != 15 || parsed["dev.a_wait.count"] != 0 {
		t.Fatalf("histogram JSON values wrong: %v", parsed)
	}
	raw := js.String()
	if strings.Index(raw, `"dev.a_wait.count"`) > strings.Index(raw, `"dev.z_latency.count"`) {
		t.Fatalf("histogram JSON key order not sorted by name:\n%s", raw)
	}
}

// TestRegistryEmptyPrefix: a group registered under "" keeps its own
// fully-qualified names with no leading dot.
func TestRegistryEmptyPrefix(t *testing.T) {
	c := stats.NewCounters()
	c.Add("core0.tlb.hits", 3)
	r := NewRegistry()
	r.Register("", c)
	names, values := r.Snapshot()
	if len(names) != 1 || names[0] != "core0.tlb.hits" || values[0] != 3 {
		t.Fatalf("empty prefix snapshot = %v %v", names, values)
	}
}

// TestFlowEventsGolden pins the serialized form of flow arrows and
// explicit-timestamp spans — the shapes ExportTrace uses to render
// journey span trees with flow links: phase codes s/t/f, the flow id
// field, and the "bp":"e" binding point on the terminator.
func TestFlowEventsGolden(t *testing.T) {
	eng := sim.NewEngine()
	tr := NewTrace()
	tc := tr.NewTracer("flow-run")
	tc.Bind(eng)
	l1 := tc.Track("journey/l1")
	dev := tc.Track("journey/dev_service")

	tc.SpanAt(l1, "l1", 100, 3, U("jid", 7))
	tc.FlowStart(l1, "journey", 7, 100)
	tc.SpanAt(dev, "dev_service", 103, -5) // negative dur clamps to 0
	tc.FlowStep(dev, "journey", 7, 103)
	tc.FlowEnd(dev, "journey", 7, 110)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"flow-run"}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"journey/l1"}},
{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"journey/dev_service"}},
{"name":"l1","ph":"X","pid":1,"tid":1,"ts":100,"dur":3,"args":{"jid":7}},
{"name":"journey","ph":"s","pid":1,"tid":1,"ts":100,"id":7},
{"name":"dev_service","ph":"X","pid":1,"tid":2,"ts":103,"dur":0},
{"name":"journey","ph":"t","pid":1,"tid":2,"ts":103,"id":7},
{"name":"journey","ph":"f","pid":1,"tid":2,"ts":110,"id":7,"bp":"e"}
]}
`
	if buf.String() != want {
		t.Fatalf("serialized flow trace differs:\n got: %s\nwant: %s", buf.String(), want)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("golden flow trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 8 {
		t.Fatalf("parsed %d events, want 8", len(parsed.TraceEvents))
	}

	// The nil tracer stays a no-op for the new shapes too.
	var off *Tracer
	off.SpanAt(l1, "x", 0, 1)
	off.FlowStart(l1, "x", 1, 0)
	off.FlowStep(l1, "x", 1, 0)
	off.FlowEnd(l1, "x", 1, 0)
}
